#include "policy/psfa.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"

namespace sds::policy {
namespace {

std::vector<JobAllocation> run(const Psfa& psfa,
                               const std::vector<JobDemand>& demands,
                               double budget) {
  std::vector<JobAllocation> out;
  psfa.compute(demands, budget, out);
  return out;
}

double total(const std::vector<JobAllocation>& allocations) {
  return std::accumulate(allocations.begin(), allocations.end(), 0.0,
                         [](double acc, const JobAllocation& a) {
                           return acc + a.allocation;
                         });
}

TEST(PsfaTest, EmptyInput) {
  Psfa psfa;
  EXPECT_TRUE(run(psfa, {}, 1000).empty());
}

TEST(PsfaTest, SingleActiveJobCappedByHeadroomTimesDemand) {
  Psfa psfa;  // headroom 1.2
  const auto out = run(psfa, {{JobId{1}, 100.0, 1.0}}, 10'000);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].allocation, 120.0, 1e-9);  // 1.2 × demand, not budget
}

TEST(PsfaTest, SingleJobBudgetConstrained) {
  Psfa psfa;
  const auto out = run(psfa, {{JobId{1}, 1000.0, 1.0}}, 500);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_LE(out[0].allocation, 500.0 + 1e-9);
  EXPECT_NEAR(out[0].allocation, 500.0, 1e-6);  // work-conserving
}

TEST(PsfaTest, EqualWeightsEqualDemandsSplitEvenly) {
  Psfa psfa;
  const auto out = run(psfa,
                       {{JobId{1}, 1000, 1.0}, {JobId{2}, 1000, 1.0}}, 1000);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[0].allocation, 500.0, 1e-9);
  EXPECT_NEAR(out[1].allocation, 500.0, 1e-9);
}

TEST(PsfaTest, WeightsSkewContendedShares) {
  Psfa psfa;
  const auto out = run(
      psfa, {{JobId{1}, 10'000, 3.0}, {JobId{2}, 10'000, 1.0}}, 4000);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[0].allocation, 3000.0, 1e-9);
  EXPECT_NEAR(out[1].allocation, 1000.0, 1e-9);
}

TEST(PsfaTest, NoFalseAllocationToIdleJobs) {
  // An idle job receives only the probe share, not its weighted share.
  Psfa psfa;
  const auto out = run(
      psfa, {{JobId{1}, 0.0, 1.0}, {JobId{2}, 10'000.0, 1.0}}, 1000);
  ASSERT_EQ(out.size(), 2u);
  const double probe = psfa.options().probe_fraction * 1000;
  EXPECT_NEAR(out[0].allocation, probe, 1e-9);
  EXPECT_NEAR(out[1].allocation, 1000 - probe, 1e-9);  // leftover redistributed
}

TEST(PsfaTest, LeftoverFromSatisfiedJobRedistributed) {
  // Job 1 wants little; its unused share must flow to job 2.
  Psfa psfa;
  const auto out = run(
      psfa, {{JobId{1}, 100.0, 1.0}, {JobId{2}, 100'000.0, 1.0}}, 10'000);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[0].allocation, 120.0, 1e-9);  // capped at headroom×demand
  EXPECT_NEAR(out[1].allocation, 10'000 - 120.0, 1e-6);
}

TEST(PsfaTest, CascadingWaterFill) {
  // Three jobs with staggered demands; water-filling needs >1 round.
  Psfa psfa(PsfaOptions{1.0, 1.0, 0.0, true});  // headroom=1 for exactness
  const auto out = run(psfa,
                       {{JobId{1}, 100, 1.0},
                        {JobId{2}, 500, 1.0},
                        {JobId{3}, 10'000, 1.0}},
                       3000);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NEAR(out[0].allocation, 100.0, 1e-9);
  EXPECT_NEAR(out[1].allocation, 500.0, 1e-9);
  EXPECT_NEAR(out[2].allocation, 2400.0, 1e-9);
  EXPECT_NEAR(total(out), 3000.0, 1e-9);
}

TEST(PsfaTest, ZeroBudget) {
  Psfa psfa;
  const auto out = run(psfa, {{JobId{1}, 100, 1.0}}, 0.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].allocation, 0.0);
}

TEST(PsfaTest, NegativeBudgetTreatedAsZero) {
  Psfa psfa;
  const auto out = run(psfa, {{JobId{1}, 100, 1.0}}, -5.0);
  EXPECT_DOUBLE_EQ(out[0].allocation, 0.0);
}

TEST(PsfaTest, UncappedModeIsPureProportionalSharing) {
  Psfa psfa(PsfaOptions{1.0, 1.2, 0.0, /*demand_capped=*/false});
  const auto out = run(
      psfa, {{JobId{1}, 10, 1.0}, {JobId{2}, 10, 3.0}}, 4000);
  EXPECT_NEAR(out[0].allocation, 1000.0, 1e-9);
  EXPECT_NEAR(out[1].allocation, 3000.0, 1e-9);
}

TEST(PsfaTest, OutputOrderMatchesInputOrder) {
  Psfa psfa;
  const auto out = run(psfa,
                       {{JobId{9}, 100, 1.0},
                        {JobId{3}, 0, 1.0},
                        {JobId{7}, 500, 2.0}},
                       1000);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].job_id, JobId{9});
  EXPECT_EQ(out[1].job_id, JobId{3});
  EXPECT_EQ(out[2].job_id, JobId{7});
}

// ---------------------------------------------------------------------------
// Property-based sweep: invariants must hold for random inputs.

struct PsfaPropertyCase {
  std::size_t num_jobs;
  double budget;
  std::uint64_t seed;
};

class PsfaPropertyTest : public ::testing::TestWithParam<PsfaPropertyCase> {};

TEST_P(PsfaPropertyTest, Invariants) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  Psfa psfa;

  std::vector<JobDemand> demands;
  demands.reserve(param.num_jobs);
  for (std::size_t i = 0; i < param.num_jobs; ++i) {
    const bool idle = rng.bernoulli(0.2);
    demands.push_back({JobId{static_cast<std::uint32_t>(i)},
                       idle ? 0.0 : rng.uniform(1.0, 50'000.0),
                       rng.uniform(0.1, 10.0)});
  }
  const auto out = run(psfa, demands, param.budget);

  // I1: one allocation per job, same order.
  ASSERT_EQ(out.size(), demands.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].job_id, demands[i].job_id);
  }

  // I2: allocations are non-negative.
  for (const auto& a : out) EXPECT_GE(a.allocation, 0.0);

  // I3: never over-provision — the sum never exceeds the budget.
  EXPECT_LE(total(out), param.budget * (1 + 1e-9) + 1e-6);

  // I4: no active job exceeds headroom × demand.
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (demands[i].demand >= psfa.options().activity_threshold) {
      EXPECT_LE(out[i].allocation,
                demands[i].demand * psfa.options().headroom + 1e-6);
    }
  }

  // I5: work conservation — if total capped demand exceeds the budget,
  // (almost) the whole budget is handed out.
  double capped_demand = 0;
  for (const auto& d : demands) {
    if (d.demand >= psfa.options().activity_threshold) {
      capped_demand += d.demand * psfa.options().headroom;
    }
  }
  if (capped_demand >= param.budget) {
    EXPECT_GE(total(out), param.budget * 0.999);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweeps, PsfaPropertyTest,
    ::testing::Values(PsfaPropertyCase{1, 100.0, 1},
                      PsfaPropertyCase{2, 1e4, 2},
                      PsfaPropertyCase{5, 1e5, 3},
                      PsfaPropertyCase{10, 5e4, 4},
                      PsfaPropertyCase{50, 1e6, 5},
                      PsfaPropertyCase{100, 1e5, 6},
                      PsfaPropertyCase{200, 1e7, 7},
                      PsfaPropertyCase{500, 2e6, 8},
                      PsfaPropertyCase{1000, 1e6, 9},
                      PsfaPropertyCase{1000, 1e3, 10}));

TEST(PsfaTest, DeterministicAcrossRuns) {
  Rng rng(42);
  std::vector<JobDemand> demands;
  for (std::uint32_t i = 0; i < 64; ++i) {
    demands.push_back({JobId{i}, rng.uniform(0, 1000), rng.uniform(0.5, 2)});
  }
  Psfa psfa;
  const auto a = run(psfa, demands, 12'345.0);
  const auto b = run(psfa, demands, 12'345.0);
  EXPECT_EQ(a, b);
}

TEST(PsfaTest, MonotoneInBudget) {
  // A bigger budget never reduces any job's allocation.
  Rng rng(43);
  std::vector<JobDemand> demands;
  for (std::uint32_t i = 0; i < 32; ++i) {
    demands.push_back({JobId{i}, rng.uniform(10, 5000), 1.0});
  }
  Psfa psfa;
  const auto small = run(psfa, demands, 10'000.0);
  const auto large = run(psfa, demands, 50'000.0);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_GE(large[i].allocation, small[i].allocation - 1e-9);
  }
}

}  // namespace
}  // namespace sds::policy
