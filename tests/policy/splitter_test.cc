#include "policy/splitter.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sds::policy {
namespace {

TEST(SplitterTest, UniformSplitsEvenly) {
  RuleSplitter splitter(SplitStrategy::kUniform);
  std::vector<StageLimit> out;
  splitter.split({{JobAllocation{JobId{1}, 900.0}}},
                 {{StageDemand{StageId{1}, JobId{1}, 10},
                   StageDemand{StageId{2}, JobId{1}, 500},
                   StageDemand{StageId{3}, JobId{1}, 0}}},
                 out);
  ASSERT_EQ(out.size(), 3u);
  for (const auto& limit : out) EXPECT_NEAR(limit.limit, 300.0, 1e-9);
}

TEST(SplitterTest, ProportionalFollowsDemand) {
  RuleSplitter splitter(SplitStrategy::kProportional);
  std::vector<StageLimit> out;
  splitter.split({{JobAllocation{JobId{1}, 1000.0}}},
                 {{StageDemand{StageId{1}, JobId{1}, 100},
                   StageDemand{StageId{2}, JobId{1}, 300}}},
                 out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[0].limit, 250.0, 1e-9);
  EXPECT_NEAR(out[1].limit, 750.0, 1e-9);
}

TEST(SplitterTest, ProportionalFallsBackToUniformWhenJobIdle) {
  RuleSplitter splitter(SplitStrategy::kProportional);
  std::vector<StageLimit> out;
  splitter.split({{JobAllocation{JobId{1}, 100.0}}},
                 {{StageDemand{StageId{1}, JobId{1}, 0},
                   StageDemand{StageId{2}, JobId{1}, 0}}},
                 out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[0].limit, 50.0, 1e-9);
  EXPECT_NEAR(out[1].limit, 50.0, 1e-9);
}

TEST(SplitterTest, StagesOfUnknownJobGetZero) {
  RuleSplitter splitter(SplitStrategy::kProportional);
  std::vector<StageLimit> out;
  splitter.split({{JobAllocation{JobId{1}, 100.0}}},
                 {{StageDemand{StageId{1}, JobId{2}, 50}}}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].limit, 0.0);
}

TEST(SplitterTest, MultipleJobsIndependent) {
  RuleSplitter splitter(SplitStrategy::kProportional);
  std::vector<StageLimit> out;
  splitter.split(
      {{JobAllocation{JobId{1}, 100.0}, JobAllocation{JobId{2}, 200.0}}},
      {{StageDemand{StageId{1}, JobId{1}, 10},
        StageDemand{StageId{2}, JobId{2}, 10},
        StageDemand{StageId{3}, JobId{1}, 30},
        StageDemand{StageId{4}, JobId{2}, 10}}},
      out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_NEAR(out[0].limit, 25.0, 1e-9);
  EXPECT_NEAR(out[1].limit, 100.0, 1e-9);
  EXPECT_NEAR(out[2].limit, 75.0, 1e-9);
  EXPECT_NEAR(out[3].limit, 100.0, 1e-9);
}

TEST(SplitterTest, EmptyInputs) {
  RuleSplitter splitter;
  std::vector<StageLimit> out;
  splitter.split({}, {}, out);
  EXPECT_TRUE(out.empty());
}

TEST(SplitterTest, NegativeDemandTreatedAsZero) {
  RuleSplitter splitter(SplitStrategy::kProportional);
  std::vector<StageLimit> out;
  splitter.split({{JobAllocation{JobId{1}, 100.0}}},
                 {{StageDemand{StageId{1}, JobId{1}, -50},
                   StageDemand{StageId{2}, JobId{1}, 100}}},
                 out);
  EXPECT_NEAR(out[0].limit, 0.0, 1e-9);
  EXPECT_NEAR(out[1].limit, 100.0, 1e-9);
}

/// Conservation property: per-job limits sum to the job's allocation.
class SplitterConservationTest
    : public ::testing::TestWithParam<SplitStrategy> {};

TEST_P(SplitterConservationTest, SumOfLimitsEqualsAllocation) {
  Rng rng(17);
  RuleSplitter splitter(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::vector<JobAllocation> allocations;
    std::vector<StageDemand> stages;
    const std::uint32_t num_jobs = 1 + static_cast<std::uint32_t>(rng.next_below(8));
    std::vector<double> expected(num_jobs);
    std::uint32_t stage_id = 0;
    for (std::uint32_t j = 0; j < num_jobs; ++j) {
      expected[j] = rng.uniform(0, 10'000);
      allocations.push_back({JobId{j}, expected[j]});
      const auto stage_count = 1 + rng.next_below(16);
      for (std::uint64_t s = 0; s < stage_count; ++s) {
        stages.push_back({StageId{stage_id++}, JobId{j},
                          rng.bernoulli(0.2) ? 0.0 : rng.uniform(0, 1000)});
      }
    }
    std::vector<StageLimit> out;
    splitter.split(allocations, stages, out);
    ASSERT_EQ(out.size(), stages.size());

    std::vector<double> sums(num_jobs, 0.0);
    for (std::size_t i = 0; i < stages.size(); ++i) {
      sums[stages[i].job_id.value()] += out[i].limit;
    }
    for (std::uint32_t j = 0; j < num_jobs; ++j) {
      EXPECT_NEAR(sums[j], expected[j], expected[j] * 1e-9 + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, SplitterConservationTest,
                         ::testing::Values(SplitStrategy::kUniform,
                                           SplitStrategy::kProportional));

}  // namespace
}  // namespace sds::policy
