#include "policy/spec.h"

#include <gtest/gtest.h>

namespace sds::policy {
namespace {

TEST(PolicySpecTest, Defaults) {
  auto spec = PolicySpec::from_config(Config{});
  ASSERT_TRUE(spec.is_ok());
  EXPECT_DOUBLE_EQ(spec->data_budget, 1'000'000);
  EXPECT_DOUBLE_EQ(spec->meta_budget, 500'000);
  EXPECT_TRUE(spec->job_weights.empty());
  EXPECT_DOUBLE_EQ(spec->psfa.headroom, PsfaOptions{}.headroom);
}

TEST(PolicySpecTest, ParsesFullSpec) {
  auto config = Config::from_string(
      "budget.data_iops = 200000\n"
      "budget.meta_iops = 4000\n"
      "psfa.headroom = 1.5\n"
      "psfa.activity_threshold = 2.0\n"
      "psfa.probe_fraction = 0.01\n"
      "psfa.demand_capped = false\n"
      "job.3.weight = 2.5\n"
      "job.7.weight = 0.5\n");
  ASSERT_TRUE(config.is_ok());
  auto spec = PolicySpec::from_config(*config);
  ASSERT_TRUE(spec.is_ok()) << spec.status();
  EXPECT_DOUBLE_EQ(spec->data_budget, 200'000);
  EXPECT_DOUBLE_EQ(spec->meta_budget, 4'000);
  EXPECT_DOUBLE_EQ(spec->psfa.headroom, 1.5);
  EXPECT_DOUBLE_EQ(spec->psfa.activity_threshold, 2.0);
  EXPECT_FALSE(spec->psfa.demand_capped);
  ASSERT_EQ(spec->job_weights.size(), 2u);
  EXPECT_DOUBLE_EQ(spec->job_weights.at(3), 2.5);
  EXPECT_DOUBLE_EQ(spec->job_weights.at(7), 0.5);
}

TEST(PolicySpecTest, RejectsBadValues) {
  const char* bad_specs[] = {
      "budget.data_iops = -5\n",
      "psfa.headroom = 0.5\n",
      "psfa.probe_fraction = 2\n",
      "job.x.weight = 1\n",
      "job.3.weight = 0\n",
      "job.3.weight = -1\n",
  };
  for (const char* text : bad_specs) {
    auto config = Config::from_string(text);
    ASSERT_TRUE(config.is_ok()) << text;
    EXPECT_FALSE(PolicySpec::from_config(*config).is_ok()) << text;
  }
}

TEST(PolicySpecTest, IgnoresUnrelatedKeys) {
  auto config = Config::from_string("jobber.3.weight=9\nother=1\njob.weight=2\n");
  ASSERT_TRUE(config.is_ok());
  auto spec = PolicySpec::from_config(*config);
  ASSERT_TRUE(spec.is_ok());
  EXPECT_TRUE(spec->job_weights.empty());
}

TEST(PolicySpecTest, RoundTripsThroughText) {
  PolicySpec spec;
  spec.data_budget = 123456;
  spec.meta_budget = 789;
  spec.psfa.headroom = 1.75;
  spec.job_weights[1] = 3.25;
  spec.job_weights[42] = 0.125;

  auto config = Config::from_string(spec.to_string());
  ASSERT_TRUE(config.is_ok());
  auto parsed = PolicySpec::from_config(*config);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_DOUBLE_EQ(parsed->data_budget, spec.data_budget);
  EXPECT_DOUBLE_EQ(parsed->meta_budget, spec.meta_budget);
  EXPECT_DOUBLE_EQ(parsed->psfa.headroom, spec.psfa.headroom);
  EXPECT_EQ(parsed->job_weights, spec.job_weights);
}

TEST(PolicySpecTest, FromFileMissing) {
  EXPECT_EQ(PolicySpec::from_file("/nonexistent/policy.conf").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace sds::policy
