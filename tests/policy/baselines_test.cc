#include "policy/baselines.h"

#include <gtest/gtest.h>

#include <numeric>

namespace sds::policy {
namespace {

double total(const std::vector<JobAllocation>& allocations) {
  return std::accumulate(allocations.begin(), allocations.end(), 0.0,
                         [](double acc, const JobAllocation& a) {
                           return acc + a.allocation;
                         });
}

TEST(StaticPartitionTest, SplitsByWeightRegardlessOfDemand) {
  StaticPartition algo;
  std::vector<JobAllocation> out;
  algo.compute({{{JobId{1}, 0.0, 1.0}, {JobId{2}, 99.0, 3.0}}}, 4000, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[0].allocation, 1000.0, 1e-9);  // idle job still allocated
  EXPECT_NEAR(out[1].allocation, 3000.0, 1e-9);
}

TEST(StaticPartitionTest, EmptyInput) {
  StaticPartition algo;
  std::vector<JobAllocation> out;
  algo.compute({}, 1000, out);
  EXPECT_TRUE(out.empty());
}

TEST(StaticPartitionTest, ZeroWeightsYieldZero) {
  StaticPartition algo;
  std::vector<JobAllocation> out;
  algo.compute({{{JobId{1}, 10.0, 0.0}}}, 1000, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].allocation, 0.0);
}

TEST(StaticPartitionTest, ExactlyConsumesBudget) {
  StaticPartition algo;
  std::vector<JobAllocation> out;
  algo.compute({{{JobId{1}, 1, 1.0}, {JobId{2}, 1, 1.0}, {JobId{3}, 1, 2.0}}},
               999, out);
  EXPECT_NEAR(total(out), 999.0, 1e-9);
}

TEST(UniformShareTest, ActiveJobsShareEvenly) {
  UniformShare algo;
  std::vector<JobAllocation> out;
  algo.compute({{{JobId{1}, 100.0, 1.0},
                 {JobId{2}, 0.0, 5.0},
                 {JobId{3}, 900.0, 1.0}}},
               600, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NEAR(out[0].allocation, 300.0, 1e-9);
  EXPECT_DOUBLE_EQ(out[1].allocation, 0.0);  // inactive gets nothing
  EXPECT_NEAR(out[2].allocation, 300.0, 1e-9);
}

TEST(UniformShareTest, AllIdleAllocatesNothing) {
  UniformShare algo;
  std::vector<JobAllocation> out;
  algo.compute({{{JobId{1}, 0.0, 1.0}, {JobId{2}, 0.5, 1.0}}}, 600, out);
  EXPECT_DOUBLE_EQ(total(out), 0.0);
}

TEST(PriorityWaterfillTest, HighestWeightServedFirst) {
  PriorityWaterfill algo;
  std::vector<JobAllocation> out;
  algo.compute({{{JobId{1}, 500.0, 1.0}, {JobId{2}, 800.0, 9.0}}}, 1000, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[1].allocation, 800.0, 1e-9);  // priority job fully served
  EXPECT_NEAR(out[0].allocation, 200.0, 1e-9);  // remainder
}

TEST(PriorityWaterfillTest, StarvationUnderPressure) {
  PriorityWaterfill algo;
  std::vector<JobAllocation> out;
  algo.compute({{{JobId{1}, 2000.0, 9.0}, {JobId{2}, 2000.0, 1.0}}}, 1000, out);
  EXPECT_NEAR(out[0].allocation, 1000.0, 1e-9);
  EXPECT_DOUBLE_EQ(out[1].allocation, 0.0);  // starved by design
}

TEST(PriorityWaterfillTest, StableOrderAmongEqualWeights) {
  PriorityWaterfill algo;
  std::vector<JobAllocation> out;
  algo.compute({{{JobId{1}, 600.0, 1.0}, {JobId{2}, 600.0, 1.0}}}, 1000, out);
  EXPECT_NEAR(out[0].allocation, 600.0, 1e-9);  // first in input order wins
  EXPECT_NEAR(out[1].allocation, 400.0, 1e-9);
}

TEST(PriorityWaterfillTest, NeverExceedsBudget) {
  PriorityWaterfill algo;
  std::vector<JobAllocation> out;
  algo.compute({{{JobId{1}, 100.0, 2.0},
                 {JobId{2}, 100.0, 1.0},
                 {JobId{3}, 100.0, 3.0}}},
               150, out);
  EXPECT_LE(total(out), 150.0 + 1e-9);
}

TEST(BaselinesTest, NamesAreStable) {
  EXPECT_EQ(StaticPartition{}.name(), "static");
  EXPECT_EQ(UniformShare{}.name(), "uniform");
  EXPECT_EQ(PriorityWaterfill{}.name(), "priority");
}

}  // namespace
}  // namespace sds::policy
