#include "policy/incremental_psfa.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace sds::policy {
namespace {

std::vector<JobAllocation> run(const ControlAlgorithm& algo,
                               const std::vector<JobDemand>& demands,
                               double budget) {
  std::vector<JobAllocation> out;
  algo.compute(demands, budget, out);
  return out;
}

std::vector<JobDemand> sample_demands(std::size_t n) {
  std::vector<JobDemand> demands;
  demands.reserve(n);
  for (std::uint32_t j = 0; j < n; ++j) {
    demands.push_back({JobId{j}, 100.0 * (j + 1), 1.0 + (j % 3)});
  }
  return demands;
}

TEST(IncrementalPsfaTest, MatchesInnerPsfaBitForBit) {
  IncrementalPsfa memo;
  Psfa plain;
  const auto demands = sample_demands(8);
  const auto cached = run(memo, demands, 2000.0);
  const auto direct = run(plain, demands, 2000.0);
  ASSERT_EQ(cached.size(), direct.size());
  for (std::size_t j = 0; j < direct.size(); ++j) {
    EXPECT_EQ(cached[j].job_id, direct[j].job_id);
    EXPECT_EQ(cached[j].allocation, direct[j].allocation);
  }
}

TEST(IncrementalPsfaTest, RepeatedInputsHitTheCache) {
  IncrementalPsfa memo;
  const auto demands = sample_demands(8);
  const auto first = run(memo, demands, 2000.0);
  EXPECT_EQ(memo.misses(), 1u);
  EXPECT_EQ(memo.hits(), 0u);
  const auto second = run(memo, demands, 2000.0);
  EXPECT_EQ(memo.hits(), 1u);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t j = 0; j < first.size(); ++j) {
    EXPECT_EQ(second[j].allocation, first[j].allocation);
  }
}

TEST(IncrementalPsfaTest, TwoSlotCacheSurvivesDataMetaAlternation) {
  // The controller core alternates data- and meta-dimension calls with
  // different budgets every cycle; both must stay cached.
  IncrementalPsfa memo;
  const auto demands = sample_demands(6);
  (void)run(memo, demands, 100000.0);  // data
  (void)run(memo, demands, 10000.0);   // meta
  EXPECT_EQ(memo.misses(), 2u);
  for (int cycle = 0; cycle < 5; ++cycle) {
    (void)run(memo, demands, 100000.0);
    (void)run(memo, demands, 10000.0);
  }
  EXPECT_EQ(memo.misses(), 2u);
  EXPECT_EQ(memo.hits(), 10u);
}

TEST(IncrementalPsfaTest, AnyInputChangeMisses) {
  IncrementalPsfa memo;
  auto demands = sample_demands(4);
  (void)run(memo, demands, 2000.0);
  (void)run(memo, demands, 2001.0);  // budget moved
  demands[2].demand += 0.5;          // demand moved
  (void)run(memo, demands, 2001.0);
  demands[2].weight = 9.0;           // weight moved
  (void)run(memo, demands, 2001.0);
  EXPECT_EQ(memo.misses(), 4u);
  EXPECT_EQ(memo.hits(), 0u);
}

TEST(IncrementalPsfaTest, RandomizedReplayNeverDiverges) {
  IncrementalPsfa memo;
  Psfa plain;
  Rng rng(0xcac4eu);
  auto demands = sample_demands(10);
  for (int round = 0; round < 300; ++round) {
    // Mostly repeats (cache hits), occasional drift (misses).
    if (rng.bernoulli(0.15)) {
      demands[rng.next_below(10)].demand *= 1.0 + rng.normal(0, 0.05);
    }
    const double budget = rng.bernoulli(0.5) ? 100000.0 : 10000.0;
    const auto cached = run(memo, demands, budget);
    const auto direct = run(plain, demands, budget);
    ASSERT_EQ(cached.size(), direct.size());
    for (std::size_t j = 0; j < direct.size(); ++j) {
      ASSERT_EQ(cached[j].allocation, direct[j].allocation)
          << "round " << round << " job " << j;
    }
  }
  EXPECT_GT(memo.hits(), 0u);
  EXPECT_GT(memo.misses(), 0u);
}

TEST(IncrementalPsfaTest, WrapsArbitraryInnerAlgorithm) {
  IncrementalPsfa memo(std::make_unique<Psfa>(PsfaOptions{}));
  EXPECT_EQ(memo.name(), "incremental-psfa");
  EXPECT_EQ(memo.inner().name(), "psfa");
}

}  // namespace
}  // namespace sds::policy
