#include "workload/generators.h"

#include <gtest/gtest.h>

namespace sds::workload {
namespace {

TEST(GeneratorsTest, ConstantIsTimeInvariant) {
  const auto fn = constant(123.0);
  EXPECT_DOUBLE_EQ(fn(Nanos{0}), 123.0);
  EXPECT_DOUBLE_EQ(fn(seconds(100)), 123.0);
}

TEST(GeneratorsTest, UniformConstantWithinRange) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto fn = uniform_constant(10.0, 20.0, rng);
    const double v = fn(Nanos{0});
    EXPECT_GE(v, 10.0);
    EXPECT_LT(v, 20.0);
    EXPECT_DOUBLE_EQ(fn(seconds(5)), v);  // constant over time
  }
}

TEST(GeneratorsTest, BurstyAlternates) {
  const auto fn = bursty(1000.0, 10.0, seconds(2), seconds(3));
  EXPECT_DOUBLE_EQ(fn(Nanos{0}), 1000.0);
  EXPECT_DOUBLE_EQ(fn(seconds(1)), 1000.0);
  EXPECT_DOUBLE_EQ(fn(seconds(2)), 10.0);
  EXPECT_DOUBLE_EQ(fn(seconds(4)), 10.0);
  EXPECT_DOUBLE_EQ(fn(seconds(5)), 1000.0);  // period = 5 s
  EXPECT_DOUBLE_EQ(fn(seconds(7)), 10.0);
}

TEST(GeneratorsTest, BurstyPhaseShift) {
  const auto fn = bursty(100.0, 0.0, seconds(1), seconds(1), seconds(1));
  EXPECT_DOUBLE_EQ(fn(Nanos{0}), 0.0);  // starts in the off part
  EXPECT_DOUBLE_EQ(fn(seconds(1)), 100.0);
}

TEST(GeneratorsTest, RampInterpolatesLinearly) {
  const auto fn = ramp(0.0, 1000.0, seconds(10));
  EXPECT_DOUBLE_EQ(fn(Nanos{0}), 0.0);
  EXPECT_NEAR(fn(seconds(5)), 500.0, 1e-9);
  EXPECT_DOUBLE_EQ(fn(seconds(10)), 1000.0);
  EXPECT_DOUBLE_EQ(fn(seconds(100)), 1000.0);  // holds after the ramp
}

TEST(GeneratorsTest, RampDownwards) {
  const auto fn = ramp(1000.0, 0.0, seconds(4));
  EXPECT_NEAR(fn(seconds(1)), 750.0, 1e-9);
}

TEST(GeneratorsTest, SinusoidalOscillatesAroundMean) {
  const auto fn = sinusoidal(500.0, 100.0, seconds(4));
  EXPECT_NEAR(fn(Nanos{0}), 500.0, 1e-6);
  EXPECT_NEAR(fn(seconds(1)), 600.0, 1e-6);  // peak at quarter period
  EXPECT_NEAR(fn(seconds(3)), 400.0, 1e-6);  // trough
}

TEST(GeneratorsTest, SinusoidalNeverNegative) {
  const auto fn = sinusoidal(50.0, 500.0, seconds(2));
  for (int ms = 0; ms < 2000; ms += 50) {
    EXPECT_GE(fn(millis(ms)), 0.0);
  }
}

TEST(GeneratorsTest, StepsFollowSchedule) {
  const auto fn = steps({{seconds(1), 10.0}, {seconds(2), 20.0}}, 99.0);
  EXPECT_DOUBLE_EQ(fn(millis(500)), 10.0);
  EXPECT_DOUBLE_EQ(fn(millis(1500)), 20.0);
  EXPECT_DOUBLE_EQ(fn(seconds(3)), 99.0);
}

TEST(JobChurnTest, DeterministicPerSeed) {
  JobChurnOptions options;
  JobChurnSchedule a(options, 7);
  JobChurnSchedule b(options, 7);
  ASSERT_EQ(a.episodes().size(), b.episodes().size());
  for (std::size_t i = 0; i < a.episodes().size(); ++i) {
    EXPECT_EQ(a.episodes()[i].start, b.episodes()[i].start);
    EXPECT_EQ(a.episodes()[i].end, b.episodes()[i].end);
  }
}

TEST(JobChurnTest, EpisodesWithinHorizon) {
  JobChurnOptions options;
  options.horizon = seconds(300);
  JobChurnSchedule schedule(options, 11);
  EXPECT_FALSE(schedule.episodes().empty());
  for (const auto& e : schedule.episodes()) {
    EXPECT_LT(e.start, options.horizon);
    EXPECT_GT(e.end, e.start);
  }
}

TEST(JobChurnTest, ArrivalCountMatchesRate) {
  JobChurnOptions options;
  options.mean_interarrival = seconds(10);
  options.horizon = seconds(10'000);
  JobChurnSchedule schedule(options, 13);
  // Expect ≈ 1000 arrivals ± 15%.
  EXPECT_NEAR(static_cast<double>(schedule.episodes().size()), 1000.0, 150.0);
}

TEST(JobChurnTest, DemandActiveOnlyDuringEpisode) {
  JobChurnOptions options;
  options.active_rate = 555.0;
  JobChurnSchedule schedule(options, 17);
  const auto& episode = schedule.episodes().front();
  const auto fn = schedule.demand_for(0);
  EXPECT_DOUBLE_EQ(fn(episode.start), 555.0);
  EXPECT_DOUBLE_EQ(fn(episode.end), 0.0);
  if (episode.start > Nanos{0}) {
    EXPECT_DOUBLE_EQ(fn(episode.start - Nanos{1}), 0.0);
  }
}

TEST(JobChurnTest, ActiveCountConsistentWithEpisodes) {
  JobChurnOptions options;
  JobChurnSchedule schedule(options, 19);
  const Nanos t = seconds(60);
  std::size_t manual = 0;
  for (const auto& e : schedule.episodes()) {
    if (e.active_at(t)) ++manual;
  }
  EXPECT_EQ(schedule.active_at(t), manual);
}

}  // namespace
}  // namespace sds::workload
