#include "workload/trace.h"

#include <gtest/gtest.h>

namespace sds::workload {
namespace {

TEST(DemandTraceTest, EmptyTraceReplaysZero) {
  DemandTrace trace;
  const auto fn = trace.demand_for(StageId{1}, stage::Dimension::kData);
  EXPECT_DOUBLE_EQ(fn(Nanos{0}), 0.0);
  EXPECT_DOUBLE_EQ(fn(seconds(100)), 0.0);
  EXPECT_EQ(trace.num_stages(), 0u);
  EXPECT_EQ(trace.horizon(), Nanos{0});
}

TEST(DemandTraceTest, PiecewiseConstantHold) {
  DemandTrace trace;
  trace.add(seconds(1), StageId{1}, 100.0, 10.0);
  trace.add(seconds(3), StageId{1}, 300.0, 30.0);

  const auto data = trace.demand_for(StageId{1}, stage::Dimension::kData);
  const auto meta = trace.demand_for(StageId{1}, stage::Dimension::kMeta);
  EXPECT_DOUBLE_EQ(data(millis(500)), 0.0);     // before first sample
  EXPECT_DOUBLE_EQ(data(seconds(1)), 100.0);    // exactly at sample
  EXPECT_DOUBLE_EQ(data(seconds(2)), 100.0);    // hold
  EXPECT_DOUBLE_EQ(data(seconds(3)), 300.0);
  EXPECT_DOUBLE_EQ(data(seconds(99)), 300.0);   // hold after last
  EXPECT_DOUBLE_EQ(meta(seconds(2)), 10.0);
}

TEST(DemandTraceTest, StagesAreIndependent) {
  DemandTrace trace;
  trace.add(Nanos{0}, StageId{1}, 100.0, 0.0);
  trace.add(Nanos{0}, StageId{2}, 200.0, 0.0);
  EXPECT_DOUBLE_EQ(
      trace.demand_for(StageId{1}, stage::Dimension::kData)(seconds(1)), 100.0);
  EXPECT_DOUBLE_EQ(
      trace.demand_for(StageId{2}, stage::Dimension::kData)(seconds(1)), 200.0);
  EXPECT_DOUBLE_EQ(
      trace.demand_for(StageId{3}, stage::Dimension::kData)(seconds(1)), 0.0);
}

TEST(DemandTraceTest, OutOfOrderSamplesSorted) {
  DemandTrace trace;
  trace.add(seconds(5), StageId{1}, 500.0, 0.0);
  trace.add(seconds(1), StageId{1}, 100.0, 0.0);
  const auto fn = trace.demand_for(StageId{1}, stage::Dimension::kData);
  EXPECT_DOUBLE_EQ(fn(seconds(2)), 100.0);
  EXPECT_DOUBLE_EQ(fn(seconds(6)), 500.0);
}

TEST(DemandTraceTest, ReplayOutlivesTrace) {
  stage::DemandFn fn;
  {
    DemandTrace trace;
    trace.add(Nanos{0}, StageId{1}, 42.0, 0.0);
    fn = trace.demand_for(StageId{1}, stage::Dimension::kData);
  }
  EXPECT_DOUBLE_EQ(fn(seconds(1)), 42.0);
}

TEST(DemandTraceTest, CsvRoundTrip) {
  DemandTrace trace;
  trace.add(millis(100), StageId{0}, 123.5, 4.25);
  trace.add(millis(200), StageId{1}, 99.0, 9.0);
  trace.add(millis(300), StageId{0}, 150.0, 5.0);

  const std::string csv = trace.to_csv();
  auto parsed = DemandTrace::parse_csv(csv);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status();
  EXPECT_EQ(parsed->num_stages(), 2u);
  EXPECT_EQ(parsed->num_samples(), 3u);
  EXPECT_EQ(parsed->horizon(), millis(300));
  EXPECT_DOUBLE_EQ(
      parsed->demand_for(StageId{0}, stage::Dimension::kData)(millis(250)),
      123.5);
  EXPECT_DOUBLE_EQ(
      parsed->demand_for(StageId{0}, stage::Dimension::kMeta)(millis(350)),
      5.0);
}

TEST(DemandTraceTest, ParseHandlesHeaderCommentsBlanks) {
  const char* text =
      "time_ms,stage_id,data_iops,meta_iops\n"
      "# a comment\n"
      "\n"
      "100, 7, 1000, 50  # trailing comment\n";
  auto trace = DemandTrace::parse_csv(text);
  ASSERT_TRUE(trace.is_ok()) << trace.status();
  EXPECT_EQ(trace->num_samples(), 1u);
  EXPECT_DOUBLE_EQ(
      trace->demand_for(StageId{7}, stage::Dimension::kData)(millis(150)),
      1000.0);
}

TEST(DemandTraceTest, ParseRejectsMalformedRows) {
  EXPECT_FALSE(DemandTrace::parse_csv("abc,1,2,3\n").is_ok());
  EXPECT_FALSE(DemandTrace::parse_csv("1,notanid,2,3\n").is_ok());
  EXPECT_FALSE(DemandTrace::parse_csv("1,2,xyz,3\n").is_ok());
  EXPECT_FALSE(DemandTrace::parse_csv("1,2,3\n").is_ok());  // missing field
}

TEST(DemandTraceTest, SaveAndLoad) {
  DemandTrace trace;
  trace.add(seconds(1), StageId{3}, 777.0, 77.0);
  const std::string path = ::testing::TempDir() + "/sdscale_trace_test.csv";
  ASSERT_TRUE(trace.save(path).is_ok());
  auto loaded = DemandTrace::load(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status();
  EXPECT_DOUBLE_EQ(
      loaded->demand_for(StageId{3}, stage::Dimension::kData)(seconds(2)),
      777.0);
}

TEST(DemandTraceTest, LoadMissingFileFails) {
  EXPECT_EQ(DemandTrace::load("/nonexistent/trace.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(TraceRecorderTest, RecordsFromStageMetrics) {
  TraceRecorder recorder;
  proto::StageMetrics m;
  m.stage_id = StageId{5};
  m.data_iops = 1234.0;
  m.meta_iops = 56.0;
  recorder.record(millis(10), m);
  recorder.record(millis(20), StageId{5}, 2000.0, 60.0);

  const auto fn =
      recorder.trace().demand_for(StageId{5}, stage::Dimension::kData);
  EXPECT_DOUBLE_EQ(fn(millis(15)), 1234.0);
  EXPECT_DOUBLE_EQ(fn(millis(25)), 2000.0);
}

TEST(TraceRecorderTest, RecordReplayThroughSimulator) {
  // Record a synthetic workload's observed rates, then replay the trace
  // as the demand model of a new run — the record/replay loop closes.
  TraceRecorder recorder;
  for (int t = 0; t < 10; ++t) {
    for (std::uint32_t s = 0; s < 4; ++s) {
      recorder.record(millis(t * 100), StageId{s}, 100.0 * (t + 1), 10.0);
    }
  }
  const DemandTrace trace = recorder.take();
  const auto fn = trace.demand_for(StageId{2}, stage::Dimension::kData);
  EXPECT_DOUBLE_EQ(fn(millis(450)), 500.0);
  EXPECT_DOUBLE_EQ(fn(millis(901)), 1000.0);
  EXPECT_EQ(trace.num_samples(), 40u);
}

}  // namespace
}  // namespace sds::workload
