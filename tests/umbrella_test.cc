// Compile-and-link check for the umbrella header: every public layer is
// reachable through one include and basic objects construct.
#include "sdscale.h"

#include <gtest/gtest.h>

namespace sds {
namespace {

TEST(UmbrellaTest, EveryLayerReachable) {
  // common
  ManualClock clock;
  Rng rng(1);
  Histogram histogram;
  histogram.record(millis(1));

  // wire / proto
  const auto frame = proto::to_frame(proto::EnforceAck{1, 2});
  EXPECT_GT(frame.wire_size(), 0u);

  // policy
  policy::Psfa psfa;
  std::vector<policy::JobAllocation> out;
  psfa.compute({{policy::JobDemand{JobId{1}, 100.0, 1.0}}}, 1000, out);
  EXPECT_EQ(out.size(), 1u);

  // stage
  stage::TokenBucket bucket(100.0, 10.0, clock.now());
  EXPECT_TRUE(bucket.try_acquire(1.0, clock.now()));

  // core
  core::GlobalControllerCore controller;
  EXPECT_EQ(controller.current_cycle(), 0u);
  core::AggregatorCore aggregator(core::AggregatorOptions{ControllerId{1}});
  EXPECT_EQ(aggregator.id(), ControllerId{1});

  // sim
  sim::Engine engine;
  EXPECT_TRUE(engine.empty());
  const sim::FronteraProfile profile = sim::FronteraProfile::calibrated();
  EXPECT_GT(profile.max_connections_per_node, 0u);

  // transport / runtime
  transport::InProcNetwork network;
  auto endpoint = network.bind("umbrella", {});
  EXPECT_TRUE(endpoint.is_ok());

  // workload / monitor
  const auto demand = workload::constant(5.0);
  EXPECT_DOUBLE_EQ(demand(Nanos{0}), 5.0);
  monitor::ResourceMonitor monitor;
  (void)monitor.sample();
}

}  // namespace
}  // namespace sds
