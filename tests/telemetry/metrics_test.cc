// MetricsRegistry: instrument identity, labeled snapshots, collectors,
// and concurrent writers.
#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sds::telemetry {
namespace {

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.counter("requests_total");
  Counter* b = registry.counter("requests_total");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);

  // Label order does not matter: labels are canonicalized by sorting.
  Counter* x = registry.counter("labeled", {{"b", "2"}, {"a", "1"}});
  Counter* y = registry.counter("labeled", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(x, y);
  EXPECT_EQ(registry.size(), 2u);

  // Different label values are different instruments.
  Counter* z = registry.counter("labeled", {{"a", "1"}, {"b", "3"}});
  EXPECT_NE(x, z);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistryTest, CounterConcurrency) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20'000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Each thread looks its instrument up independently, as real
      // components do — the registry must hand back the same counter.
      Counter* counter = registry.counter("shared_total", {{"k", "v"}});
      for (int i = 0; i < kIncrements; ++i) counter->add();
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(registry.counter("shared_total", {{"k", "v"}})->value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.gauge("temperature");
  gauge->set(20.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 20.5);
  gauge->add(-0.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 20.0);
}

TEST(MetricsRegistryTest, HistogramLabeledSnapshots) {
  MetricsRegistry registry;
  HistogramMetric* collect =
      registry.histogram("phase_ns", {{"phase", "collect"}});
  HistogramMetric* enforce =
      registry.histogram("phase_ns", {{"phase", "enforce"}});
  for (int i = 0; i < 10; ++i) collect->record(1000);
  enforce->record(5000);

  const MetricsSnapshot snap = registry.snapshot();
  const MetricSample* c = snap.find("phase_ns", {{"phase", "collect"}});
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, MetricKind::kHistogram);
  EXPECT_EQ(c->hist.count, 10u);
  EXPECT_NEAR(c->hist.mean, 1000.0, 1000.0 * 0.05);

  const MetricSample* e = snap.find("phase_ns", {{"phase", "enforce"}});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->hist.count, 1u);

  // Histograms record Nanos directly too.
  collect->record(micros(2));
  EXPECT_EQ(collect->snapshot().count(), 11u);
}

TEST(MetricsRegistryTest, SnapshotIsDeterministicallyOrdered) {
  MetricsRegistry registry;
  registry.counter("zz_total")->add(1);
  registry.gauge("aa_value")->set(2);
  registry.counter("mm_total", {{"x", "1"}})->add(3);

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].name, "aa_value");
  EXPECT_EQ(snap.samples[1].name, "mm_total");
  EXPECT_EQ(snap.samples[2].name, "zz_total");
  EXPECT_GT(snap.wall_ns, 0);
}

TEST(MetricsRegistryTest, CollectorsRunAtSnapshotTime) {
  MetricsRegistry registry;
  int polls = 0;
  registry.add_collector([&polls](MetricsRegistry& r) {
    ++polls;
    r.gauge("polled_value")->set(static_cast<double>(polls));
  });

  EXPECT_EQ(polls, 0);
  const auto first = registry.snapshot();
  EXPECT_EQ(polls, 1);
  ASSERT_NE(first.find("polled_value"), nullptr);
  EXPECT_DOUBLE_EQ(first.find("polled_value")->value, 1.0);

  const auto second = registry.snapshot();
  EXPECT_EQ(polls, 2);
  EXPECT_DOUBLE_EQ(second.find("polled_value")->value, 2.0);
}

TEST(MetricsRegistryTest, FindByNameAndByLabels) {
  MetricsRegistry registry;
  registry.counter("hits_total", {{"route", "/a"}})->add(1);
  registry.counter("hits_total", {{"route", "/b"}})->add(2);

  const auto snap = registry.snapshot();
  EXPECT_NE(snap.find("hits_total"), nullptr);
  EXPECT_EQ(snap.find("missing"), nullptr);
  const MetricSample* b = snap.find("hits_total", {{"route", "/b"}});
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->value, 2.0);
  EXPECT_EQ(snap.find("hits_total", {{"route", "/c"}}), nullptr);
}

}  // namespace
}  // namespace sds::telemetry
