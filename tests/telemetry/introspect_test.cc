// Live introspection endpoint: route handling for /metrics, /cycles and
// /flight (socket-free via handle()), plus one real HTTP round trip over
// a loopback socket on an ephemeral port.
#include "telemetry/introspect.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/span_tracer.h"

namespace sds::telemetry {
namespace {

TEST(IntrospectionTest, HandleRoutesAllThreeSources) {
  MetricsRegistry registry;
  registry.counter("sds_cycles_total")->add(5);
  FlightRecorder flight;
  Span span;
  span.name = "collect";
  span.trace_id = 1;
  span.span_id = derive_span_id(1, 0, "collect");
  flight.record(span);

  IntrospectionServer::Options options;
  options.component = "global";
  options.registry = &registry;
  options.flight = &flight;
  options.cycles_json = [] { return std::string("{\"cycles\":[]}\n"); };
  const IntrospectionServer server(std::move(options));

  std::string body;
  std::string type;
  ASSERT_TRUE(server.handle("/metrics", body, type));
  EXPECT_NE(body.find("sds_cycles_total 5"), std::string::npos) << body;
  EXPECT_NE(type.find("text/plain"), std::string::npos);

  ASSERT_TRUE(server.handle("/cycles", body, type));
  EXPECT_EQ(body, "{\"cycles\":[]}\n");
  EXPECT_EQ(type, "application/json");

  ASSERT_TRUE(server.handle("/flight", body, type));
  EXPECT_NE(body.find("\"component\":\"global\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"name\":\"collect\""), std::string::npos);
  EXPECT_EQ(type, "application/json");

  // The index page lists the routes; anything else is a 404.
  ASSERT_TRUE(server.handle("/", body, type));
  EXPECT_NE(body.find("/metrics"), std::string::npos);
  EXPECT_FALSE(server.handle("/nope", body, type));
}

TEST(IntrospectionTest, MissingSourcesYield404) {
  const IntrospectionServer server(IntrospectionServer::Options{});
  std::string body;
  std::string type;
  EXPECT_FALSE(server.handle("/metrics", body, type));
  EXPECT_FALSE(server.handle("/cycles", body, type));
  EXPECT_FALSE(server.handle("/flight", body, type));
}

/// Blocking GET against 127.0.0.1:port; returns the raw HTTP response.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(IntrospectionTest, ServesHttpOnEphemeralPort) {
  MetricsRegistry registry;
  registry.counter("sds_cycles_total")->add(2);

  IntrospectionServer::Options options;
  options.port = 0;  // ephemeral
  options.registry = &registry;
  IntrospectionServer server(std::move(options));
  ASSERT_TRUE(server.start().is_ok());
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  const std::string ok = http_get(server.port(), "/metrics");
  EXPECT_NE(ok.find("200 OK"), std::string::npos) << ok;
  EXPECT_NE(ok.find("sds_cycles_total 2"), std::string::npos) << ok;

  const std::string missing = http_get(server.port(), "/flight");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;

  server.stop();
  EXPECT_FALSE(server.running());
  // stop() is idempotent.
  server.stop();
}

}  // namespace
}  // namespace sds::telemetry
