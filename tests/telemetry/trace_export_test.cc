// Chrome-tracing export: run a small hierarchical experiment with a
// SpanTracer attached, export the trace, parse the JSON back with a
// minimal parser, and validate the per-cycle span structure.
#include "telemetry/trace_export.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/experiment.h"
#include "telemetry/span_tracer.h"

namespace sds::telemetry {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON parser — just enough to read a Trace Event Format file
// back. Objects keep insertion order; numbers are doubles.
// ---------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* get(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  /// Parses the whole input; `ok()` reports success.
  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data");
    return value;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  void fail(std::string_view what) {
    if (ok_) {
      ok_ = false;
      error_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    if (!ok_ || pos_ >= text_.size()) {
      fail("unexpected end");
      return {};
    }
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string_value();
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    consume('{');
    if (consume('}')) return value;
    while (ok_) {
      skip_ws();
      std::string key = parse_string();
      if (!consume(':')) fail("expected ':'");
      value.object.emplace_back(std::move(key), parse_value());
      if (consume('}')) break;
      if (!consume(',')) {
        fail("expected ',' or '}'");
        break;
      }
    }
    return value;
  }

  JsonValue parse_array() {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    consume('[');
    if (consume(']')) return value;
    while (ok_) {
      value.array.push_back(parse_value());
      if (consume(']')) break;
      if (!consume(',')) {
        fail("expected ',' or ']'");
        break;
      }
    }
    return value;
  }

  JsonValue parse_string_value() {
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    value.string = parse_string();
    return value;
  }

  std::string parse_string() {
    std::string out;
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      fail("expected string");
      return out;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u':
            pos_ += 4;  // \u00XX only appears for control chars here
            c = '?';
            break;
          default: c = esc;
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
    } else {
      ++pos_;  // closing quote
    }
    return out;
  }

  JsonValue parse_bool() {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      value.boolean = true;
      pos_ += 4;
    } else if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return value;
  }

  JsonValue parse_null() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
    } else {
      fail("bad literal");
    }
    return {};
  }

  JsonValue parse_number() {
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected number");
      return value;
    }
    value.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

TEST(JsonParserTest, ParsesEscapesAndNesting) {
  JsonParser parser(R"({"a":[1,2.5,-3],"b":"x\"y\\z","c":{"d":true}})");
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error();
  ASSERT_NE(root.get("a"), nullptr);
  ASSERT_EQ(root.get("a")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(root.get("a")->array[1].number, 2.5);
  EXPECT_EQ(root.get("b")->string, "x\"y\\z");
  EXPECT_TRUE(root.get("c")->get("d")->boolean);
}

TEST(TraceExportTest, EmptyTracerStillEmitsValidDocument) {
  SpanTracer tracer;
  const std::string json = to_chrome_trace_json(tracer, "empty");
  JsonParser parser(json);
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error();
  EXPECT_EQ(root.get("displayTimeUnit")->string, "ms");
  // Only the process_name metadata event.
  ASSERT_EQ(root.get("traceEvents")->array.size(), 1u);
  const JsonValue& meta = root.get("traceEvents")->array[0];
  EXPECT_EQ(meta.get("ph")->string, "M");
  EXPECT_EQ(meta.get("name")->string, "process_name");
  EXPECT_EQ(meta.get("args")->get("name")->string, "empty");
}

TEST(TraceExportTest, EscapesSpanNames) {
  SpanTracer tracer;
  Span span;
  span.name = "weird\"name\\";
  span.category = "cycle";
  span.start = micros(10);
  span.duration = micros(5);
  tracer.record(span);

  const std::string json = to_chrome_trace_json(tracer, "esc");
  JsonParser parser(json);
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error();
  const auto& events = root.get("traceEvents")->array;
  ASSERT_EQ(events.size(), 2u);  // process metadata + the span
  EXPECT_EQ(events[1].get("name")->string, "weird\"name\\");
  EXPECT_DOUBLE_EQ(events[1].get("ts")->number, 10.0);
  EXPECT_DOUBLE_EQ(events[1].get("dur")->number, 5.0);
}

TEST(TraceExportTest, SimRunYieldsOneSpanPerCyclePhase) {
  SpanTracer tracer;
  sim::ExperimentConfig config;
  config.num_stages = 100;
  config.num_aggregators = 2;
  config.stages_per_job = 50;
  config.max_cycles = 5;
  config.duration = seconds(120);
  config.tracer = &tracer;

  const auto result = sim::run_experiment(config);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const std::uint64_t cycles = result.value().cycles;
  ASSERT_EQ(cycles, 5u);

  const std::string json = to_chrome_trace_json(tracer, "sds simulation");
  JsonParser parser(json);
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error();

  EXPECT_EQ(root.get("displayTimeUnit")->string, "ms");
  const JsonValue* events = root.get("traceEvents");
  ASSERT_NE(events, nullptr);

  bool saw_process_name = false;
  bool saw_track_name = false;
  std::size_t lane_spans = 0;
  // cycle id -> phase name -> occurrence count
  std::map<std::uint64_t, std::map<std::string, int>> phases;
  for (const JsonValue& event : events->array) {
    const std::string& ph = event.get("ph")->string;
    if (ph == "M") {
      if (event.get("name")->string == "process_name") {
        saw_process_name = true;
        EXPECT_EQ(event.get("args")->get("name")->string, "sds simulation");
      }
      if (event.get("name")->string == "thread_name" &&
          event.get("args")->get("name")->string == "global controller") {
        saw_track_name = true;  // lane tracks ("sim lane N") also appear
      }
      continue;
    }
    ASSERT_EQ(ph, "X");
    if (event.get("cat")->string == "sim") {
      // Per-lane summary spans from the lane runner (one per lane, on
      // its own track) — not part of the per-cycle phase accounting.
      ++lane_spans;
      continue;
    }
    if (event.get("cat")->string == "component") {
      // Component hop spans (aggregator/stage collect) live on their own
      // tracks; the per-cycle phase accounting below covers track 0.
      continue;
    }
    EXPECT_EQ(event.get("cat")->string, "cycle");
    EXPECT_GE(event.get("ts")->number, 0.0);
    // aggregate/disseminate sub-segments may be empty in small runs.
    EXPECT_GE(event.get("dur")->number, 0.0);
    ASSERT_NE(event.get("args"), nullptr);
    ASSERT_NE(event.get("args")->get("cycle"), nullptr);
    const auto cycle =
        static_cast<std::uint64_t>(event.get("args")->get("cycle")->number);
    ++phases[cycle][event.get("name")->string];
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_track_name);
  EXPECT_GE(lane_spans, 1u);  // at least one lane even in serial runs

  // Exactly one span per phase per cycle — the three wall phases, the
  // aggregate/disseminate sub-segments — plus the enclosing cycle span.
  ASSERT_EQ(phases.size(), cycles);
  for (const auto& [cycle, counts] : phases) {
    ASSERT_EQ(counts.size(), 6u) << "cycle " << cycle;
    for (const char* name : {"cycle", "collect", "aggregate", "compute",
                             "disseminate", "enforce"}) {
      auto it = counts.find(name);
      ASSERT_NE(it, counts.end()) << "cycle " << cycle << " missing " << name;
      EXPECT_EQ(it->second, 1) << "cycle " << cycle << " phase " << name;
    }
  }

  // Phase spans tile the enclosing cycle span: the simulator emits them
  // back-to-back in virtual time.
  std::map<std::uint64_t, std::map<std::string, std::pair<double, double>>>
      extents;  // cycle -> name -> (ts, dur)
  for (const JsonValue& event : events->array) {
    if (event.get("ph")->string != "X") continue;
    if (event.get("cat")->string != "cycle") continue;  // skip lane spans
    const auto cycle =
        static_cast<std::uint64_t>(event.get("args")->get("cycle")->number);
    extents[cycle][event.get("name")->string] = {event.get("ts")->number,
                                                 event.get("dur")->number};
  }
  for (const auto& [cycle, spans] : extents) {
    const auto& [cycle_ts, cycle_dur] = spans.at("cycle");
    const auto& [collect_ts, collect_dur] = spans.at("collect");
    const auto& [compute_ts, compute_dur] = spans.at("compute");
    const auto& [enforce_ts, enforce_dur] = spans.at("enforce");
    EXPECT_NEAR(collect_ts, cycle_ts, 1e-3) << "cycle " << cycle;
    EXPECT_NEAR(compute_ts, collect_ts + collect_dur, 1e-3);
    EXPECT_NEAR(enforce_ts, compute_ts + compute_dur, 1e-3);
    EXPECT_NEAR(enforce_ts + enforce_dur, cycle_ts + cycle_dur, 1e-3);
    // Sub-segments nest inside their parent phases: aggregate is the
    // collect tail, disseminate the enforce head.
    const auto& [agg_ts, agg_dur] = spans.at("aggregate");
    EXPECT_NEAR(agg_ts + agg_dur, collect_ts + collect_dur, 1e-3);
    EXPECT_GE(agg_ts + 1e-3, collect_ts);
    const auto& [diss_ts, diss_dur] = spans.at("disseminate");
    EXPECT_NEAR(diss_ts, enforce_ts, 1e-3);
    EXPECT_LE(diss_ts + diss_dur, enforce_ts + enforce_dur + 1e-3);
  }
}

TEST(TraceExportTest, RingDropsOldestWhenFull) {
  SpanTracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    Span span;
    span.name = "s" + std::to_string(i);
    span.category = "cycle";
    span.cycle = static_cast<std::uint64_t>(i);
    span.start = micros(i);
    span.duration = micros(1);
    tracer.record(span);
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first, and only the newest four survive.
  EXPECT_EQ(spans.front().name, "s6");
  EXPECT_EQ(spans.back().name, "s9");
}

}  // namespace
}  // namespace sds::telemetry
