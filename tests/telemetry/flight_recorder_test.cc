// Always-on flight recorder: fixed preallocated ring of POD span
// records, oldest-first snapshots, name truncation, and the JSON dump
// served by /flight and written on faults.
#include "telemetry/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "telemetry/span_tracer.h"

namespace sds::telemetry {
namespace {

Span make_span(const std::string& name, std::uint64_t cycle) {
  Span span;
  span.name = name;
  span.category = "cycle";
  span.track = 3;
  span.cycle = cycle;
  span.start = micros(10 * cycle);
  span.duration = micros(7);
  span.trace_id = cycle;
  span.span_id = derive_span_id(cycle, span.track, name);
  span.parent_span = derive_span_id(cycle, span.track, "cycle");
  span.phase = SpanPhase::kCollect;
  return span;
}

TEST(FlightRecordTest, FromSpanCopiesIdentity) {
  const Span span = make_span("collect", 9);
  const FlightRecord rec = FlightRecord::from_span(span);
  EXPECT_EQ(rec.name_view(), "collect");
  EXPECT_EQ(rec.trace_id, 9u);
  EXPECT_EQ(rec.span_id, span.span_id);
  EXPECT_EQ(rec.parent_span, span.parent_span);
  EXPECT_EQ(rec.cycle, 9u);
  EXPECT_EQ(rec.track, 3u);
  EXPECT_EQ(rec.start_ns, span.start.count());
  EXPECT_EQ(rec.duration_ns, span.duration.count());
  EXPECT_EQ(rec.phase, SpanPhase::kCollect);
}

TEST(FlightRecordTest, LongNamesTruncateAtCapacity) {
  FlightRecord rec;
  const std::string long_name(2 * FlightRecord::kNameCapacity, 'x');
  rec.set_name(long_name);
  EXPECT_EQ(rec.name_view().size(), FlightRecord::kNameCapacity);
  EXPECT_EQ(rec.name_view(),
            long_name.substr(0, FlightRecord::kNameCapacity));
  // NUL terminator survives in the last slot.
  EXPECT_EQ(rec.name[FlightRecord::kNameCapacity], '\0');
}

TEST(FlightRecorderTest, RingKeepsNewestOldestFirst) {
  FlightRecorder flight(/*capacity=*/4);
  EXPECT_EQ(flight.capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    flight.record(make_span("s" + std::to_string(i), i));
  }
  EXPECT_EQ(flight.recorded(), 10u);
  EXPECT_EQ(flight.dropped(), 6u);
  const auto records = flight.snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().name_view(), "s6");
  EXPECT_EQ(records.back().name_view(), "s9");
  // Oldest-first means monotone cycle ids here.
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GT(records[i].cycle, records[i - 1].cycle);
  }
}

TEST(FlightRecorderTest, DumpJsonCarriesEnvelopeAndRecords) {
  FlightRecorder flight(/*capacity=*/8);
  flight.record(make_span("collect", 2));
  const std::string json = flight.dump_json("global", "degraded-cycle");
  EXPECT_NE(json.find("\"component\":\"global\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"reason\":\"degraded-cycle\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"collect\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"collect\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\":2"), std::string::npos);
  EXPECT_NE(json.find("\"span\":" +
                      std::to_string(derive_span_id(2, 3, "collect"))),
            std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(FlightRecorderTest, ResetClearsRingAndCounters) {
  FlightRecorder flight(/*capacity=*/4);
  flight.record(make_span("a", 1));
  flight.record(make_span("b", 2));
  flight.reset();
  EXPECT_EQ(flight.recorded(), 0u);
  EXPECT_EQ(flight.dropped(), 0u);
  EXPECT_TRUE(flight.snapshot().empty());
  const std::string json = flight.dump_json("c", "r");
  EXPECT_NE(json.find("\"records\":[]"), std::string::npos) << json;
}

TEST(FlightRecorderTest, ZeroCapacityClampsToOne) {
  FlightRecorder flight(/*capacity=*/0);
  EXPECT_EQ(flight.capacity(), 1u);
  flight.record(make_span("only", 1));
  flight.record(make_span("newer", 2));
  const auto records = flight.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records.front().name_view(), "newer");
}

}  // namespace
}  // namespace sds::telemetry
