// trace_report analysis layer: parse an exported Chrome trace back,
// build per-phase attribution tables, flag duplicated span deliveries,
// and reproduce the CycleStats totals the engine recorded (the CLI's
// acceptance bar is agreement within 1%).
#include "telemetry/trace_report.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "sim/experiment.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/span_tracer.h"
#include "telemetry/trace_export.h"

namespace sds::telemetry {
namespace {

TEST(TraceReportTest, SimRunReportMatchesCycleStatsWithinOnePercent) {
  SpanTracer tracer;
  sim::ExperimentConfig config;
  config.num_stages = 100;
  config.num_aggregators = 2;
  config.stages_per_job = 50;
  config.max_cycles = 5;
  config.duration = seconds(120);
  config.tracer = &tracer;

  const auto result = sim::run_experiment(config);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  ASSERT_EQ(result.value().cycles, 5u);

  const std::string json = to_chrome_trace_json(tracer, "sds simulation");
  const auto parsed = parse_chrome_trace(json);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().process_name, "sds simulation");
  EXPECT_FALSE(parsed.value().track_names.empty());

  const TraceReport report = build_report(parsed.value());
  EXPECT_EQ(report.cycles, 5u);
  EXPECT_EQ(report.duplicate_spans, 0u);
  EXPECT_GT(report.total_spans, 5u * 6u);  // 6 cycle spans + hop spans

  // The root spans carry exactly the per-cycle totals CycleStats
  // recorded: the summed cycle latency must agree within 1% (the only
  // slack is ns -> us rounding in the exporter).
  const auto& stats = result.value().stats;
  const double stats_total_us =
      stats.total().mean() * static_cast<double>(stats.total().count()) / 1e3;
  ASSERT_GT(stats_total_us, 0.0);
  EXPECT_NEAR(report.total_cycle_us, stats_total_us, stats_total_us * 0.01);
  EXPECT_NEAR(report.max_cycle_us,
              static_cast<double>(stats.total().max()) / 1e3,
              static_cast<double>(stats.total().max()) / 1e3 * 0.01);

  // All five phases appear, in canonical order, each once per cycle on
  // the controller track (hop spans add to collect/enforce counts).
  ASSERT_EQ(report.phases.size(), 5u);
  const char* order[] = {"collect", "aggregate", "compute", "disseminate",
                         "enforce"};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(report.phases[i].phase, order[i]);
    EXPECT_GE(report.phases[i].count, 5u) << order[i];
  }

  // The critical path starts at the slowest cycle's root span.
  ASSERT_FALSE(report.critical_path.empty());
  EXPECT_EQ(report.critical_path.front().name, "cycle");
  EXPECT_EQ(report.critical_path.front().component, "global controller");
  EXPECT_GE(report.critical_path.size(), 2u);

  const std::string rendered = format_report(report);
  EXPECT_NE(rendered.find("per-phase breakdown"), std::string::npos);
  EXPECT_NE(rendered.find("collect"), std::string::npos);
  EXPECT_NE(rendered.find("critical path"), std::string::npos);
}

TEST(TraceReportTest, DuplicateSpanIdsAreFlaggedNotDoubleCounted) {
  // Hand-built trace: one cycle with a collect child delivered twice
  // (identical trace/span ids — what a duplicated wire delivery derives).
  const std::string json = R"({"displayTimeUnit":"ms","traceEvents":[
{"ph":"M","name":"process_name","args":{"name":"dup"}},
{"ph":"M","name":"thread_name","tid":0,"args":{"name":"global controller"}},
{"ph":"X","name":"cycle","cat":"cycle","tid":0,"ts":0,"dur":100,"args":{"cycle":1,"trace":1,"span":10,"parent":0}},
{"ph":"X","name":"collect","cat":"cycle","tid":0,"ts":0,"dur":60,"args":{"cycle":1,"trace":1,"span":11,"parent":10,"phase":"collect"}},
{"ph":"X","name":"collect","cat":"cycle","tid":0,"ts":0,"dur":60,"args":{"cycle":1,"trace":1,"span":11,"parent":10,"phase":"collect"}},
{"ph":"X","name":"compute","cat":"cycle","tid":0,"ts":60,"dur":40,"args":{"cycle":1,"trace":1,"span":12,"parent":10,"phase":"compute"}}
]})";

  const auto parsed = parse_chrome_trace(json);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed.value().spans.size(), 4u);

  const TraceReport report = build_report(parsed.value());
  EXPECT_EQ(report.cycles, 1u);
  EXPECT_EQ(report.duplicate_spans, 1u);
  EXPECT_DOUBLE_EQ(report.total_cycle_us, 100.0);
  // The duplicated collect span counts once in the phase rows.
  ASSERT_EQ(report.phases.size(), 2u);
  EXPECT_EQ(report.phases[0].phase, "collect");
  EXPECT_EQ(report.phases[0].count, 1u);
  EXPECT_DOUBLE_EQ(report.phases[0].total_us, 60.0);
  // Critical path: cycle -> compute (latest end time among children).
  ASSERT_EQ(report.critical_path.size(), 2u);
  EXPECT_EQ(report.critical_path[0].name, "cycle");
  EXPECT_EQ(report.critical_path[1].name, "compute");

  const std::string rendered = format_report(report);
  EXPECT_NE(rendered.find("duplicates flagged: 1"), std::string::npos)
      << rendered;
}

TEST(TraceReportTest, ParseRejectsDocumentsWithoutEvents) {
  EXPECT_FALSE(parse_chrome_trace("{}").is_ok());
  EXPECT_FALSE(parse_chrome_trace("not json at all").is_ok());
}

TEST(TraceReportTest, SummarizeMetricsJsonlPicksCycleHistograms) {
  MetricsRegistry registry;
  registry.histogram("sds_cycle_phase_latency_ns", {{"phase", "collect"}})
      ->record(millis(2));
  registry.histogram("sds_cycle_total_latency_ns")->record(millis(3));
  registry.counter("sds_cycles_total")->add(1);  // not a histogram: skipped
  registry.histogram("unrelated_ns")->record(1);  // wrong family: skipped

  const std::string summary = summarize_metrics_jsonl(to_jsonl(registry.snapshot()));
  EXPECT_NE(summary.find("sds_cycle_phase_latency_ns"), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("collect"), std::string::npos);
  EXPECT_NE(summary.find("sds_cycle_total_latency_ns"), std::string::npos);
  EXPECT_EQ(summary.find("unrelated_ns"), std::string::npos);
}

}  // namespace
}  // namespace sds::telemetry
