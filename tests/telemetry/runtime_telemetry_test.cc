// Live-runtime coordinated telemetry: several servers in one process
// share one MetricsRegistry (and one SpanTracer), so transport byte
// counters, cycle histograms, gather stats and per-component counters
// are all visible through a single snapshot.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "runtime/aggregator_server.h"
#include "runtime/global_server.h"
#include "runtime/stage_host.h"
#include "telemetry/metrics.h"
#include "telemetry/span_tracer.h"
#include "transport/inproc.h"
#include "workload/generators.h"

namespace sds::runtime {
namespace {

using telemetry::Labels;
using telemetry::MetricSample;

TEST(RuntimeTelemetryTest, FlatServersShareOneRegistry) {
  telemetry::MetricsRegistry registry;
  telemetry::SpanTracer tracer;
  transport::InProcNetwork net;

  GlobalServerOptions gopts;
  gopts.core.budgets = {4000.0, 400.0};
  gopts.telemetry.enabled = true;
  gopts.telemetry.registry = &registry;
  gopts.telemetry.tracer = &tracer;
  GlobalControllerServer global(net, "global", gopts);
  ASSERT_TRUE(global.start().is_ok());
  EXPECT_EQ(global.metrics(), &registry);
  EXPECT_EQ(global.tracer(), &tracer);

  StageHostOptions hopts;
  hopts.controller_addresses = {"global"};
  hopts.telemetry.enabled = true;
  hopts.telemetry.registry = &registry;
  StageHost host(net, "host0", hopts);
  ASSERT_TRUE(host.start().is_ok());
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(host.add_stage({StageId{i}, NodeId{i}, JobId{0}, "n"},
                               workload::constant(1000),
                               workload::constant(100))
                    .is_ok());
  }
  ASSERT_TRUE(host.register_all().is_ok());
  ASSERT_TRUE(global.run_cycles(3).is_ok());

  const auto snap = registry.snapshot();

  // Transport byte counters from both components, one registry.
  const MetricSample* global_tx =
      snap.find("sds_transport_bytes_sent", Labels{{"component", "global"}});
  ASSERT_NE(global_tx, nullptr);
  EXPECT_GT(global_tx->value, 0.0);
  const MetricSample* host_rx = snap.find(
      "sds_transport_bytes_received", Labels{{"component", "stage_host"}});
  ASSERT_NE(host_rx, nullptr);
  EXPECT_GT(host_rx->value, 0.0);
  // Everything the global sent went to this host (the only peer), so the
  // two series must be in the same ballpark.
  EXPECT_GE(host_rx->value, global_tx->value * 0.5);

  // Cycle histograms land in the same snapshot.
  const MetricSample* total = snap.find("sds_cycle_total_latency_ns",
                                        Labels{{"component", "global"}});
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->hist.count, 3u);
  for (const char* phase : {"collect", "compute", "enforce"}) {
    const MetricSample* sample =
        snap.find("sds_cycle_phase_latency_ns",
                  Labels{{"component", "global"}, {"phase", phase}});
    ASSERT_NE(sample, nullptr) << phase;
    EXPECT_EQ(sample->hist.count, 3u) << phase;
  }
  const MetricSample* cycles =
      snap.find("sds_cycles_total", Labels{{"component", "global"}});
  ASSERT_NE(cycles, nullptr);
  EXPECT_DOUBLE_EQ(cycles->value, 3.0);

  // Gather-layer instruments (collect + enforce fan-outs).
  const MetricSample* gathers = snap.find("sds_rpc_gathers_started_total",
                                          Labels{{"component", "global"}});
  ASSERT_NE(gathers, nullptr);
  EXPECT_GE(gathers->value, 6.0);  // >= 2 gathers per cycle
  const MetricSample* replies =
      snap.find("sds_rpc_replies_total", Labels{{"component", "global"}});
  ASSERT_NE(replies, nullptr);
  EXPECT_GE(replies->value, 24.0);  // 3 cycles × 4 stages × 2 phases

  // Stage-host side counter, same registry.
  const MetricSample* answered =
      snap.find("sds_stage_collects_answered_total",
                Labels{{"component", "stage_host"}});
  ASSERT_NE(answered, nullptr);
  EXPECT_DOUBLE_EQ(answered->value, 12.0);  // 3 cycles × 4 stages

  // The shared tracer holds one cycle + five phase spans per cycle (the
  // three wall phases plus the aggregate/disseminate sub-segments).
  EXPECT_EQ(tracer.recorded(), 18u);
  int cycle_spans = 0;
  for (const auto& span : tracer.snapshot()) {
    EXPECT_EQ(span.category, "cycle");
    EXPECT_GE(span.duration, Nanos{0});  // sub-segments may be empty
    if (span.name == "cycle") ++cycle_spans;
  }
  EXPECT_EQ(cycle_spans, 3);

  host.shutdown();
  global.shutdown();
}

TEST(RuntimeTelemetryTest, HierarchyReportsPerComponentSeries) {
  telemetry::MetricsRegistry registry;
  transport::InProcNetwork net;

  GlobalServerOptions gopts;
  gopts.core.budgets = {2000.0, 200.0};
  gopts.telemetry.enabled = true;
  gopts.telemetry.registry = &registry;
  GlobalControllerServer global(net, "global", gopts);
  ASSERT_TRUE(global.start().is_ok());

  AggregatorServerOptions aopts;
  aopts.id = ControllerId{0};
  aopts.upstream_address = "global";
  aopts.telemetry.enabled = true;
  aopts.telemetry.registry = &registry;
  AggregatorServer agg(net, "agg0", aopts);
  ASSERT_TRUE(agg.start().is_ok());

  StageHostOptions hopts;
  hopts.controller_addresses = {"agg0"};
  hopts.telemetry.enabled = true;
  hopts.telemetry.registry = &registry;
  StageHost host(net, "host0", hopts);
  ASSERT_TRUE(host.start().is_ok());
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(host.add_stage({StageId{i}, NodeId{i}, JobId{0}, "n"},
                               workload::constant(1000),
                               workload::constant(100))
                    .is_ok());
  }
  ASSERT_TRUE(host.register_all().is_ok());

  const auto deadline = SystemClock::instance().now() + seconds(5);
  while (global.registered_stages() < 4 &&
         SystemClock::instance().now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(global.registered_stages(), 4u);
  ASSERT_TRUE(global.run_cycles(2).is_ok());

  const auto snap = registry.snapshot();
  // Each tier contributes its own labeled transport series.
  for (const char* component : {"global", "aggregator", "stage_host"}) {
    const MetricSample* tx = snap.find("sds_transport_bytes_sent",
                                       Labels{{"component", component}});
    ASSERT_NE(tx, nullptr) << component;
    EXPECT_GT(tx->value, 0.0) << component;
  }
  // The aggregator served every cycle and gathered from its stages.
  const MetricSample* served = snap.find(
      "sds_aggregator_cycles_served_total", Labels{{"component", "aggregator"}});
  ASSERT_NE(served, nullptr);
  EXPECT_DOUBLE_EQ(served->value, 2.0);
  const MetricSample* agg_gathers = snap.find(
      "sds_rpc_gathers_started_total", Labels{{"component", "aggregator"}});
  ASSERT_NE(agg_gathers, nullptr);
  EXPECT_GE(agg_gathers->value, 4.0);  // collect + enforce per cycle

  host.shutdown();
  agg.shutdown();
  global.shutdown();
}

}  // namespace
}  // namespace sds::runtime
