// Golden-format tests for the Prometheus text and JSONL exporters.
#include "telemetry/export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace sds::telemetry {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(PrometheusExportTest, CounterAndGaugeGolden) {
  MetricsRegistry registry;
  registry.counter("requests_total", {{"component", "x"}})->add(3);
  registry.gauge("queue_depth")->set(7.5);

  const std::string text = to_prometheus_text(registry.snapshot());
  const auto lines = lines_of(text);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "# TYPE queue_depth gauge");
  EXPECT_EQ(lines[1], "queue_depth 7.5");
  EXPECT_EQ(lines[2], "# TYPE requests_total counter");
  EXPECT_EQ(lines[3], "requests_total{component=\"x\"} 3");
}

TEST(PrometheusExportTest, HistogramRendersAsSummary) {
  MetricsRegistry registry;
  HistogramMetric* hist =
      registry.histogram("latency_ns", {{"phase", "collect"}});
  // A constant distribution keeps quantiles predictable even through the
  // log-bucketed histogram (all values land in one bucket).
  for (int i = 0; i < 100; ++i) hist->record(1000);

  const std::string text = to_prometheus_text(registry.snapshot());
  const auto lines = lines_of(text);
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_EQ(lines[0], "# TYPE latency_ns summary");
  EXPECT_EQ(lines[1].rfind("latency_ns{phase=\"collect\",quantile=\"0.5\"} ", 0),
            0u)
      << lines[1];
  EXPECT_EQ(lines[2].rfind("latency_ns{phase=\"collect\",quantile=\"0.9\"} ", 0),
            0u)
      << lines[2];
  EXPECT_EQ(
      lines[3].rfind("latency_ns{phase=\"collect\",quantile=\"0.99\"} ", 0), 0u)
      << lines[3];
  EXPECT_EQ(lines[4], "latency_ns_sum{phase=\"collect\"} 100000");
  EXPECT_EQ(lines[5], "latency_ns_count{phase=\"collect\"} 100");
}

TEST(PrometheusExportTest, FamilyHeaderEmittedOncePerName) {
  MetricsRegistry registry;
  registry.counter("hits_total", {{"route", "/a"}})->add(1);
  registry.counter("hits_total", {{"route", "/b"}})->add(2);

  const std::string text = to_prometheus_text(registry.snapshot());
  const auto lines = lines_of(text);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "# TYPE hits_total counter");
  EXPECT_EQ(lines[1], "hits_total{route=\"/a\"} 1");
  EXPECT_EQ(lines[2], "hits_total{route=\"/b\"} 2");
}

TEST(PrometheusExportTest, EscapesLabelValues) {
  // Prometheus text format requires backslash, double-quote and line-feed
  // escaped inside label values; everything else passes through verbatim.
  EXPECT_EQ(prom_escape_label_value("plain"), "plain");
  EXPECT_EQ(prom_escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prom_escape_label_value("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(prom_escape_label_value("C:\\tmp\n\"x\""),
            "C:\\\\tmp\\n\\\"x\\\"");

  MetricsRegistry registry;
  registry.counter("hits_total", {{"path", "C:\\tmp\n\"x\""}})->add(1);
  const std::string text = to_prometheus_text(registry.snapshot());
  EXPECT_NE(text.find("hits_total{path=\"C:\\\\tmp\\n\\\"x\\\"\"} 1"),
            std::string::npos)
      << text;
}

TEST(JsonlExportTest, CounterGolden) {
  MetricsRegistry registry;
  registry.counter("requests_total", {{"component", "x"}})->add(3);

  MetricsSnapshot snap = registry.snapshot();
  snap.wall_ns = 1234;  // pin the timestamp for an exact golden line
  EXPECT_EQ(to_jsonl(snap),
            "{\"ts_ns\":1234,\"name\":\"requests_total\",\"kind\":\"counter\","
            "\"labels\":{\"component\":\"x\"},\"value\":3}\n");
}

TEST(JsonlExportTest, HistogramLineHasAllFields) {
  MetricsRegistry registry;
  HistogramMetric* hist = registry.histogram("latency_ns");
  // Values near INT64-scale magnitudes used to truncate the tail of the
  // record (min/max/p50/p90/p99 share one snprintf); keep them large.
  for (int i = 0; i < 10; ++i) hist->record(3'000'000'000'000);

  const std::string text = to_jsonl(registry.snapshot());
  const auto lines = lines_of(text);
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  // Structural checks: every field key present, line is brace-balanced and
  // newline-terminated (i.e. not truncated mid-record).
  for (const char* key :
       {"\"ts_ns\":", "\"name\":\"latency_ns\"", "\"kind\":\"histogram\"",
        "\"labels\":{}", "\"count\":10", "\"sum\":", "\"mean\":",
        "\"stddev\":", "\"min\":", "\"max\":", "\"p50\":", "\"p90\":",
        "\"p99\":"}) {
    EXPECT_NE(line.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_EQ(line.back(), '}');
  int depth = 0;
  for (char c : line) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
  }
  EXPECT_EQ(depth, 0) << "unbalanced braces: " << line;
}

TEST(JsonlExportTest, EscapesQuotesAndBackslashes) {
  MetricsRegistry registry;
  registry.gauge("g", {{"path", "C:\\tmp\"x\""}})->set(1);

  const std::string text = to_jsonl(registry.snapshot());
  EXPECT_NE(text.find("\"path\":\"C:\\\\tmp\\\"x\\\"\""), std::string::npos)
      << text;
}

TEST(ExportFileTest, WritePrometheusTruncatesAndAppendJsonlAppends) {
  MetricsRegistry registry;
  registry.counter("ticks_total")->add(1);

  const std::string dir = ::testing::TempDir();
  const std::string prom_path = dir + "/export_test.prom";
  const std::string jsonl_path = dir + "/export_test.jsonl";
  std::remove(prom_path.c_str());
  std::remove(jsonl_path.c_str());

  ASSERT_TRUE(write_prometheus(prom_path, registry.snapshot()).is_ok());
  ASSERT_TRUE(append_jsonl(jsonl_path, registry.snapshot()).is_ok());
  registry.counter("ticks_total")->add(1);
  ASSERT_TRUE(write_prometheus(prom_path, registry.snapshot()).is_ok());
  ASSERT_TRUE(append_jsonl(jsonl_path, registry.snapshot()).is_ok());

  std::ifstream prom(prom_path);
  std::stringstream prom_text;
  prom_text << prom.rdbuf();
  // Truncated on rewrite: exactly one scrape's worth of lines.
  EXPECT_EQ(lines_of(prom_text.str()).size(), 2u);
  EXPECT_NE(prom_text.str().find("ticks_total 2"), std::string::npos);

  std::ifstream jsonl(jsonl_path);
  std::stringstream jsonl_text;
  jsonl_text << jsonl.rdbuf();
  // Appended: one line per snapshot.
  EXPECT_EQ(lines_of(jsonl_text.str()).size(), 2u);
}

}  // namespace
}  // namespace sds::telemetry
