// End-to-end tests for tools/sdslint: every rule fires on its positive
// fixture, suppressions silence it, clean fixtures stay clean, and —
// the reason the linter exists — the real src/sim and bench trees lint
// clean. SDSLINT_BIN / SDSLINT_FIXTURES / SDSLINT_REPO_ROOT are injected
// by CMake as compile definitions.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

/// Run the sdslint binary against `args` and capture its output.
RunResult run_sdslint(const std::string& args) {
  const std::string cmd = std::string(SDSLINT_BIN) + " " + args + " 2>&1";
  RunResult result;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.output.append(buf.data(), n);
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string fixture(const std::string& rel) {
  return std::string(SDSLINT_FIXTURES) + "/" + rel;
}

std::string repo(const std::string& rel) {
  return std::string(SDSLINT_REPO_ROOT) + "/" + rel;
}

TEST(SdslintRules, WallClockHitsInSim) {
  const RunResult r = run_sdslint(fixture("sim/bad_wallclock.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[sim-wallclock]"), std::string::npos) << r.output;
  // file:line anchors on the three offending lines.
  EXPECT_NE(r.output.find("bad_wallclock.cc:9:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_wallclock.cc:10:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_wallclock.cc:11:"), std::string::npos);
  // Comment/string mentions and identifier substrings must not fire.
  EXPECT_EQ(r.output.find("bad_wallclock.cc:19:"), std::string::npos);
  EXPECT_EQ(r.output.find("bad_wallclock.cc:22:"), std::string::npos);
}

TEST(SdslintRules, RandHitsInSim) {
  const RunResult r = run_sdslint(fixture("sim/bad_rand.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[sim-rand]"), std::string::npos) << r.output;
  // The seeded-PRNG function is legitimate.
  EXPECT_EQ(r.output.find("bad_rand.cc:16:"), std::string::npos) << r.output;
}

TEST(SdslintRules, SleepHitsInSim) {
  const RunResult r = run_sdslint(fixture("sim/bad_sleep.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[sim-sleep]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("bad_sleep.cc:9:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_sleep.cc:10:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_sleep.cc:11:"), std::string::npos);
}

TEST(SdslintRules, ThreadSpawnHitsInSim) {
  const RunResult r = run_sdslint(fixture("sim/bad_thread.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[sim-thread]"), std::string::npos) << r.output;
  // An unqualified identifier named `thread` is not a spawn.
  EXPECT_EQ(r.output.find("bad_thread.cc:16:"), std::string::npos) << r.output;
}

TEST(SdslintRules, LaneRunnerRegionScopesThreadRule) {
  // Inside a `// sdslint: lane-runner` region, thread spawns are the
  // sanctioned lane-team implementation and must not be flagged.
  const RunResult clean = run_sdslint(fixture("sim/lane_runner.cc"));
  EXPECT_EQ(clean.exit_code, 0) << clean.output;

  // The region ends at `end-lane-runner`: spawns after it still fire.
  const RunResult bad = run_sdslint(fixture("sim/bad_lane_runner.cc"));
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
  EXPECT_NE(bad.output.find("[sim-thread]"), std::string::npos) << bad.output;
  EXPECT_EQ(bad.output.find("bad_lane_runner.cc:7:"), std::string::npos)
      << bad.output;
  EXPECT_NE(bad.output.find("bad_lane_runner.cc:11:"), std::string::npos)
      << bad.output;
}

TEST(SdslintRules, UnorderedIterationHitsInSimAndBench) {
  const RunResult sim = run_sdslint(fixture("sim/bad_unordered_iter.cc"));
  EXPECT_EQ(sim.exit_code, 1) << sim.output;
  EXPECT_NE(sim.output.find("[unordered-iter]"), std::string::npos);

  const RunResult bench = run_sdslint(fixture("bench/bad_unordered_iter.cc"));
  EXPECT_EQ(bench.exit_code, 1) << bench.output;
  EXPECT_NE(bench.output.find("[unordered-iter]"), std::string::npos);
  // bench/ is exempt from the sim determinism rules: the steady_clock
  // read in the same fixture must not be reported.
  EXPECT_EQ(bench.output.find("[sim-wallclock]"), std::string::npos)
      << bench.output;
}

TEST(SdslintRules, SpanStampWallClockHitsInSimAndBench) {
  // bench/: wall clocks are fine for throughput measurement (wall_ns),
  // but a statement that stamps a span with one is flagged, and the
  // inline allow() suppresses the second occurrence.
  const RunResult bench = run_sdslint(fixture("bench/bad_span_wallclock.cc"));
  EXPECT_EQ(bench.exit_code, 1) << bench.output;
  EXPECT_NE(bench.output.find("[span-wallclock]"), std::string::npos)
      << bench.output;
  EXPECT_NE(bench.output.find("bad_span_wallclock.cc:21:"), std::string::npos)
      << bench.output;
  EXPECT_EQ(bench.output.find("bad_span_wallclock.cc:16:"), std::string::npos)
      << bench.output;
  EXPECT_EQ(bench.output.find("bad_span_wallclock.cc:26:"), std::string::npos)
      << bench.output;

  // sim/: fires alongside the general sim-wallclock determinism rule.
  const RunResult sim = run_sdslint(fixture("sim/bad_span_wallclock.cc"));
  EXPECT_EQ(sim.exit_code, 1) << sim.output;
  EXPECT_NE(sim.output.find("[span-wallclock]"), std::string::npos)
      << sim.output;
  EXPECT_NE(sim.output.find("[sim-wallclock]"), std::string::npos)
      << sim.output;
}

TEST(SdslintRules, WallClockHitsInFault) {
  const RunResult r = run_sdslint(fixture("fault/bad_wallclock.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[fault-wallclock]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("bad_wallclock.cc:9:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_wallclock.cc:10:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_wallclock.cc:11:"), std::string::npos);
  // `phase_timeout` must not match the time() pattern.
  EXPECT_EQ(r.output.find("bad_wallclock.cc:18:"), std::string::npos)
      << r.output;
  // fault/ is outside src/sim: the sim rule names must not appear.
  EXPECT_EQ(r.output.find("[sim-wallclock]"), std::string::npos) << r.output;
}

TEST(SdslintRules, RandHitsInFault) {
  const RunResult r = run_sdslint(fixture("fault/bad_rand.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[fault-rand]"), std::string::npos) << r.output;
  // The seeded-PRNG function is the sanctioned idiom.
  EXPECT_EQ(r.output.find("bad_rand.cc:16:"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("bad_rand.cc:17:"), std::string::npos) << r.output;
}

TEST(SdslintRules, HotpathAllocHitsOnlyInsideRegion) {
  const RunResult r = run_sdslint(fixture("hotpath/bad_hotpath_alloc.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[hotpath-alloc]"), std::string::npos) << r.output;
  // heap new[], make_unique, std::function, malloc, to_string, and a
  // by-value container declaration, in fixture order.
  EXPECT_NE(r.output.find("bad_hotpath_alloc.cc:17:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_hotpath_alloc.cc:18:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_hotpath_alloc.cc:19:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_hotpath_alloc.cc:20:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_hotpath_alloc.cc:21:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_hotpath_alloc.cc:22:"), std::string::npos);
  // Allocations before/after the region, placement new inside it, and a
  // reference-bound container parameter are all unrestricted.
  EXPECT_EQ(r.output.find("bad_hotpath_alloc.cc:13:"), std::string::npos);
  EXPECT_EQ(r.output.find("bad_hotpath_alloc.cc:31:"), std::string::npos);
  EXPECT_EQ(r.output.find("bad_hotpath_alloc.cc:35:"), std::string::npos);
  EXPECT_EQ(r.output.find("bad_hotpath_alloc.cc:39:"), std::string::npos);
}

// The rule exists for the PR-7 hot paths: the columnar MetricsStore's
// per-report fold/apply_delta and the incremental-PSFA compute must stay
// allocation-free in steady state. Lint the real files and require both
// that they are clean and that their regions are actually present (a
// deleted marker would silently disable the rule).
TEST(SdslintTree, StoreAndIncrementalPsfaHotPathsStayClean) {
  const std::string files = repo("src/core/metrics_store.cc") + " " +
                            repo("src/core/global.cc") + " " +
                            repo("src/policy/incremental_psfa.cc") + " " +
                            repo("src/core/aggregator.cc");
  const RunResult r = run_sdslint(files);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const char* file :
       {"src/core/metrics_store.cc", "src/core/global.cc",
        "src/policy/incremental_psfa.cc", "src/core/aggregator.cc"}) {
    std::ifstream in(repo(file));
    ASSERT_TRUE(in.is_open()) << file;
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("sdslint: hotpath"), std::string::npos) << file;
    EXPECT_NE(text.find("sdslint: end-hotpath"), std::string::npos) << file;
  }
}

// Regions nest: the inner region's end (spelled with the
// hotpath-begin/hotpath-end aliases) must not terminate the outer
// region, so the allocation after it still fires.
TEST(SdslintRegions, NestedHotpathRegionsTrackDepth) {
  const RunResult r = run_sdslint(fixture("hotpath/nested.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("nested.cc:15:"), std::string::npos) << r.output;
  // The regression this guards: after the inner hotpath-end, the outer
  // region is still open.
  EXPECT_NE(r.output.find("nested.cc:19:"), std::string::npos) << r.output;
  // Outside every region allocation is unrestricted again.
  EXPECT_EQ(r.output.find("nested.cc:25:"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("[unbalanced-directive]"), std::string::npos)
      << r.output;
}

TEST(SdslintRegions, EndWithoutBeginIsAnError) {
  const RunResult r = run_sdslint(fixture("hotpath/unbalanced_end.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[unbalanced-directive]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("unbalanced_end.cc:5:"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("unbalanced_end.cc:7:"), std::string::npos)
      << r.output;
}

TEST(SdslintRegions, RegionOpenAtEofReportsTheBeginLine) {
  const RunResult r = run_sdslint(fixture("hotpath/unbalanced_open.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("unbalanced_open.cc:5:"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("never closed"), std::string::npos) << r.output;
}

TEST(SdslintSuppression, AllowDirectivesSilenceFindings) {
  const RunResult r = run_sdslint(fixture("sim/suppressed.cc") + " " +
                                  fixture("hotpath/suppressed.cc"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("OK"), std::string::npos) << r.output;
}

TEST(SdslintSuppression, CleanFixturesStayClean) {
  const RunResult r =
      run_sdslint(fixture("sim/clean.cc") + " " + fixture("bench/clean.cc") +
                  " " + fixture("hotpath/clean.cc") + " " +
                  fixture("fault/clean.cc"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(SdslintCli, ListRulesNamesEveryRule) {
  const RunResult r = run_sdslint("--list-rules");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const char* rule :
       {"sim-wallclock", "sim-rand", "sim-sleep", "sim-thread",
        "unordered-iter", "hotpath-alloc", "fault-wallclock", "fault-rand"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos) << rule;
  }
}

TEST(SdslintCli, NoInputIsAUsageError) {
  const RunResult r = run_sdslint("");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

// The linter's actual job: the real simulation and bench trees carry no
// determinism violations. If this fails, fix the code (or justify a
// suppression in place) — do not weaken the rule.
TEST(SdslintTree, RealSimAndBenchTreesAreClean) {
  const RunResult r =
      run_sdslint(repo("src") + " " + repo("bench") + " " + repo("apps") +
                  " " + repo("examples"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

}  // namespace
