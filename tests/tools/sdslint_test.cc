// End-to-end tests for tools/sdslint: every rule fires on its positive
// fixture, suppressions silence it, clean fixtures stay clean, and —
// the reason the linter exists — the real src/sim and bench trees lint
// clean. SDSLINT_BIN / SDSLINT_FIXTURES / SDSLINT_REPO_ROOT are injected
// by CMake as compile definitions.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

/// Run the sdslint binary against `args` and capture its output.
RunResult run_sdslint(const std::string& args) {
  const std::string cmd = std::string(SDSLINT_BIN) + " " + args + " 2>&1";
  RunResult result;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.output.append(buf.data(), n);
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string fixture(const std::string& rel) {
  return std::string(SDSLINT_FIXTURES) + "/" + rel;
}

std::string repo(const std::string& rel) {
  return std::string(SDSLINT_REPO_ROOT) + "/" + rel;
}

TEST(SdslintRules, WallClockHitsInSim) {
  const RunResult r = run_sdslint(fixture("sim/bad_wallclock.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[sim-wallclock]"), std::string::npos) << r.output;
  // file:line anchors on the three offending lines.
  EXPECT_NE(r.output.find("bad_wallclock.cc:9:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_wallclock.cc:10:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_wallclock.cc:11:"), std::string::npos);
  // Comment/string mentions and identifier substrings must not fire.
  EXPECT_EQ(r.output.find("bad_wallclock.cc:19:"), std::string::npos);
  EXPECT_EQ(r.output.find("bad_wallclock.cc:22:"), std::string::npos);
}

TEST(SdslintRules, RandHitsInSim) {
  const RunResult r = run_sdslint(fixture("sim/bad_rand.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[sim-rand]"), std::string::npos) << r.output;
  // The seeded-PRNG function is legitimate.
  EXPECT_EQ(r.output.find("bad_rand.cc:16:"), std::string::npos) << r.output;
}

TEST(SdslintRules, SleepHitsInSim) {
  const RunResult r = run_sdslint(fixture("sim/bad_sleep.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[sim-sleep]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("bad_sleep.cc:9:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_sleep.cc:10:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_sleep.cc:11:"), std::string::npos);
}

TEST(SdslintRules, ThreadSpawnHitsInSim) {
  const RunResult r = run_sdslint(fixture("sim/bad_thread.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[sim-thread]"), std::string::npos) << r.output;
  // An unqualified identifier named `thread` is not a spawn.
  EXPECT_EQ(r.output.find("bad_thread.cc:16:"), std::string::npos) << r.output;
}

TEST(SdslintRules, LaneRunnerRegionScopesThreadRule) {
  // Inside a `// sdslint: lane-runner` region, thread spawns are the
  // sanctioned lane-team implementation and must not be flagged.
  const RunResult clean = run_sdslint(fixture("sim/lane_runner.cc"));
  EXPECT_EQ(clean.exit_code, 0) << clean.output;

  // The region ends at `end-lane-runner`: spawns after it still fire.
  const RunResult bad = run_sdslint(fixture("sim/bad_lane_runner.cc"));
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
  EXPECT_NE(bad.output.find("[sim-thread]"), std::string::npos) << bad.output;
  EXPECT_EQ(bad.output.find("bad_lane_runner.cc:7:"), std::string::npos)
      << bad.output;
  EXPECT_NE(bad.output.find("bad_lane_runner.cc:11:"), std::string::npos)
      << bad.output;
}

TEST(SdslintRules, UnorderedIterationHitsInSimAndBench) {
  const RunResult sim = run_sdslint(fixture("sim/bad_unordered_iter.cc"));
  EXPECT_EQ(sim.exit_code, 1) << sim.output;
  EXPECT_NE(sim.output.find("[unordered-iter]"), std::string::npos);

  const RunResult bench = run_sdslint(fixture("bench/bad_unordered_iter.cc"));
  EXPECT_EQ(bench.exit_code, 1) << bench.output;
  EXPECT_NE(bench.output.find("[unordered-iter]"), std::string::npos);
  // bench/ is exempt from the sim determinism rules: the steady_clock
  // read in the same fixture must not be reported.
  EXPECT_EQ(bench.output.find("[sim-wallclock]"), std::string::npos)
      << bench.output;
}

TEST(SdslintRules, SpanStampWallClockHitsInSimAndBench) {
  // bench/: wall clocks are fine for throughput measurement (wall_ns),
  // but a statement that stamps a span with one is flagged, and the
  // inline allow() suppresses the second occurrence.
  const RunResult bench = run_sdslint(fixture("bench/bad_span_wallclock.cc"));
  EXPECT_EQ(bench.exit_code, 1) << bench.output;
  EXPECT_NE(bench.output.find("[span-wallclock]"), std::string::npos)
      << bench.output;
  EXPECT_NE(bench.output.find("bad_span_wallclock.cc:21:"), std::string::npos)
      << bench.output;
  EXPECT_EQ(bench.output.find("bad_span_wallclock.cc:16:"), std::string::npos)
      << bench.output;
  EXPECT_EQ(bench.output.find("bad_span_wallclock.cc:26:"), std::string::npos)
      << bench.output;

  // sim/: fires alongside the general sim-wallclock determinism rule.
  const RunResult sim = run_sdslint(fixture("sim/bad_span_wallclock.cc"));
  EXPECT_EQ(sim.exit_code, 1) << sim.output;
  EXPECT_NE(sim.output.find("[span-wallclock]"), std::string::npos)
      << sim.output;
  EXPECT_NE(sim.output.find("[sim-wallclock]"), std::string::npos)
      << sim.output;
}

TEST(SdslintRules, WallClockHitsInFault) {
  const RunResult r = run_sdslint(fixture("fault/bad_wallclock.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[fault-wallclock]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("bad_wallclock.cc:9:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_wallclock.cc:10:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_wallclock.cc:11:"), std::string::npos);
  // `phase_timeout` must not match the time() pattern.
  EXPECT_EQ(r.output.find("bad_wallclock.cc:18:"), std::string::npos)
      << r.output;
  // fault/ is outside src/sim: the sim rule names must not appear.
  EXPECT_EQ(r.output.find("[sim-wallclock]"), std::string::npos) << r.output;
}

TEST(SdslintRules, RandHitsInFault) {
  const RunResult r = run_sdslint(fixture("fault/bad_rand.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[fault-rand]"), std::string::npos) << r.output;
  // The seeded-PRNG function is the sanctioned idiom.
  EXPECT_EQ(r.output.find("bad_rand.cc:16:"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("bad_rand.cc:17:"), std::string::npos) << r.output;
}

TEST(SdslintRules, HotpathAllocHitsOnlyInsideRegion) {
  const RunResult r = run_sdslint(fixture("hotpath/bad_hotpath_alloc.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[hotpath-alloc]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("bad_hotpath_alloc.cc:14:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_hotpath_alloc.cc:15:"), std::string::npos);
  EXPECT_NE(r.output.find("bad_hotpath_alloc.cc:16:"), std::string::npos);
  // Allocations before/after the region and placement new inside it are
  // all unrestricted.
  EXPECT_EQ(r.output.find("bad_hotpath_alloc.cc:10:"), std::string::npos);
  EXPECT_EQ(r.output.find("bad_hotpath_alloc.cc:23:"), std::string::npos);
  EXPECT_EQ(r.output.find("bad_hotpath_alloc.cc:27:"), std::string::npos);
}

TEST(SdslintSuppression, AllowDirectivesSilenceFindings) {
  const RunResult r = run_sdslint(fixture("sim/suppressed.cc") + " " +
                                  fixture("hotpath/suppressed.cc"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("OK"), std::string::npos) << r.output;
}

TEST(SdslintSuppression, CleanFixturesStayClean) {
  const RunResult r =
      run_sdslint(fixture("sim/clean.cc") + " " + fixture("bench/clean.cc") +
                  " " + fixture("hotpath/clean.cc") + " " +
                  fixture("fault/clean.cc"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(SdslintCli, ListRulesNamesEveryRule) {
  const RunResult r = run_sdslint("--list-rules");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const char* rule :
       {"sim-wallclock", "sim-rand", "sim-sleep", "sim-thread",
        "unordered-iter", "hotpath-alloc", "fault-wallclock", "fault-rand"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos) << rule;
  }
}

TEST(SdslintCli, NoInputIsAUsageError) {
  const RunResult r = run_sdslint("");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

// The linter's actual job: the real simulation and bench trees carry no
// determinism violations. If this fails, fix the code (or justify a
// suppression in place) — do not weaken the rule.
TEST(SdslintTree, RealSimAndBenchTreesAreClean) {
  const RunResult r =
      run_sdslint(repo("src") + " " + repo("bench") + " " + repo("apps") +
                  " " + repo("examples"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

}  // namespace
