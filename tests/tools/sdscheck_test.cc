// End-to-end tests for tools/sdscheck: each pass fires on its positive
// fixture with exact file:line diagnostics, accepts its negative
// fixture, and — the analyzer's actual job — the real repo is clean
// under all four passes. SDSCHECK_BIN / SDSCHECK_FIXTURES /
// SDSCHECK_REPO_ROOT are injected by CMake as compile definitions.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult run_sdscheck(const std::string& args) {
  const std::string cmd = std::string(SDSCHECK_BIN) + " " + args + " 2>&1";
  RunResult result;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.output.append(buf.data(), n);
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string fixture(const std::string& rel) {
  return std::string(SDSCHECK_FIXTURES) + "/" + rel;
}

// --- lockgraph -------------------------------------------------------------

TEST(SdscheckLockGraph, AbBaCycleIsReportedWithThePath) {
  const RunResult r =
      run_sdscheck("--pass=lockgraph " + fixture("lock_cycle"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[lock-cycle]"), std::string::npos) << r.output;
  // Exact diagnostic: the cycle path and the anchor at a_'s declaration.
  EXPECT_NE(r.output.find("Pair::a_ -> Pair::b_ -> Pair::a_"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("pair.h:23:"), std::string::npos) << r.output;
}

TEST(SdscheckLockGraph, AcyclicDiamondIsClean) {
  const RunResult r =
      run_sdscheck("--pass=lockgraph " + fixture("lock_diamond"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("OK"), std::string::npos) << r.output;
}

TEST(SdscheckLockGraph, UnrankedMutexWithoutMarkerIsReported) {
  const RunResult r =
      run_sdscheck("--pass=lockgraph " + fixture("lock_unranked"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[lock-rank]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("unranked.h:11:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("Unranked::mu_"), std::string::npos) << r.output;
}

TEST(SdscheckLockGraph, RankInversionIsReportedAtTheAcquisition) {
  const RunResult r =
      run_sdscheck("--pass=lockgraph " + fixture("lock_inversion"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[lock-order]"), std::string::npos) << r.output;
  // Anchored at the inner acquisition, naming both ranks.
  EXPECT_NE(r.output.find("inversion.h:15:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("LockRank::kLow"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("LockRank::kHigh"), std::string::npos) << r.output;
}

// --- layering --------------------------------------------------------------

TEST(SdscheckLayering, RankBanAndTransitiveRoutesAreReported) {
  const RunResult r =
      run_sdscheck("--pass=layering " + fixture("layering_bad"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // Plain rank violation: common reaching up into fault.
  EXPECT_NE(r.output.find("upward.h:4:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("may not include 'fault'"), std::string::npos)
      << r.output;
  // Direct banned include.
  EXPECT_NE(r.output.find("direct.h:4:"), std::string::npos) << r.output;
  // Transitive route, with the full chain spelled out.
  EXPECT_NE(
      r.output.find(
          "sim/engine.h -> fault/chaos.h -> transport/socket.h"),
      std::string::npos)
      << r.output;
}

// --- annotations -----------------------------------------------------------

TEST(SdscheckAnnotations, UnguardedFieldIsReportedAndMarkerSuppresses) {
  const RunResult r =
      run_sdscheck("--pass=annotations " + fixture("annotations_bad"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[unguarded-field]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("counter.h:19:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("Counter::count_"), std::string::npos) << r.output;
  // The marked field on line 20 must not be reported.
  EXPECT_EQ(r.output.find("Counter::named_"), std::string::npos) << r.output;
}

// --- protocoverage ---------------------------------------------------------

TEST(SdscheckProto, MessageWithoutRoundTripTestIsReported) {
  const RunResult r =
      run_sdscheck("--pass=protocoverage " + fixture("proto_bad"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[proto-coverage]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("messages.h:16:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("proto::Pong"), std::string::npos) << r.output;
  // Ping has a round-trip test and must not be reported.
  EXPECT_EQ(r.output.find("proto::Ping "), std::string::npos) << r.output;
}

// --- CLI -------------------------------------------------------------------

TEST(SdscheckCli, UnknownPassIsAUsageError) {
  const RunResult r = run_sdscheck("--pass=nonsense .");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(SdscheckCli, MissingRootIsAUsageError) {
  const RunResult r = run_sdscheck("");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

// The analyzer's actual job: the real repo conforms under all four
// passes. If this fails, fix the violation (or add a documented
// layering.toml entry / allow marker in place) — do not weaken the pass.
TEST(SdscheckTree, RealRepoIsCleanUnderAllPasses) {
  const RunResult r = run_sdscheck(std::string(SDSCHECK_REPO_ROOT));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("OK"), std::string::npos) << r.output;
}

}  // namespace
