// sdslint fixture: a region opened and never closed — reported at the
// begin line, not at end of file.
namespace fixture {

// sdslint: hotpath
void stuck(int* out) { *out = 1; }

}  // namespace fixture
