// sdslint fixture: an allocation-lean hot path — must produce no
// findings even with the region markers active.
#include <cstddef>
#include <string_view>
#include <vector>

namespace fixture {

struct Cell {
  alignas(8) unsigned char storage[64];
};

// sdslint: hotpath
// Placement new into pooled storage and container reuse: allowed.
void run(std::vector<Cell>& pool, std::size_t slot) {
  new (pool[slot].storage) int(42);
  pool[slot] = Cell{};
}

// The store/incremental-PSFA reuse idioms: reference-bound buffers,
// amortized push_back into capacity reserved outside the region, and
// string_view (no ownership) all pass.
void drain(std::vector<unsigned>& scratch, std::string_view tag) {
  scratch.clear();
  scratch.push_back(1u);
  (void)tag;
}

// A function *returning* a container by value is a declaration, not a
// per-event construction; the allocation is charged where it is called.
std::vector<unsigned> snapshot();
// sdslint: end-hotpath

}  // namespace fixture
