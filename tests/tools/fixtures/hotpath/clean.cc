// sdslint fixture: an allocation-lean hot path — must produce no
// findings even with the region markers active.
#include <cstddef>
#include <vector>

namespace fixture {

struct Cell {
  alignas(8) unsigned char storage[64];
};

// sdslint: hotpath
// Placement new into pooled storage and container reuse: allowed.
void run(std::vector<Cell>& pool, std::size_t slot) {
  new (pool[slot].storage) int(42);
  pool[slot] = Cell{};
}
// sdslint: end-hotpath

}  // namespace fixture
