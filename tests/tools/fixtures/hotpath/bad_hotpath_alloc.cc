// sdslint fixture: allocations inside a hot-path region. This path has
// no `sim`/`bench` component, so only hotpath-alloc can fire — and only
// between the region markers.
#include <functional>
#include <memory>

namespace fixture {

// Outside any region: allocation is unrestricted.
int* setup() { return new int(7); }

// sdslint: hotpath
void per_event(std::size_t n) {
  int* scratch = new int[n];                          // HIT hotpath-alloc
  auto owned = std::make_unique<int>(3);              // HIT hotpath-alloc
  std::function<void()> cb = [] {};                   // HIT hotpath-alloc
  delete[] scratch;
  (void)owned;
  cb();
}

// Placement new constructs into caller-owned storage: allowed.
void emplace_cell(void* cell) { new (cell) int(0); }
// sdslint: end-hotpath

// After the region closes, allocation is unrestricted again.
int* teardown() { return new int(9); }

}  // namespace fixture
