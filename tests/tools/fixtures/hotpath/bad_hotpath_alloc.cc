// sdslint fixture: allocations inside a hot-path region. This path has
// no `sim`/`bench` component, so only hotpath-alloc can fire — and only
// between the region markers.
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace fixture {

// Outside any region: allocation is unrestricted.
int* setup() { return new int(7); }

// sdslint: hotpath
void per_event(std::size_t n) {
  int* scratch = new int[n];                          // HIT hotpath-alloc
  auto owned = std::make_unique<int>(3);              // HIT hotpath-alloc
  std::function<void()> cb = [] {};                   // HIT hotpath-alloc
  void* raw = std::malloc(n);                         // HIT hotpath-alloc
  std::string label = std::to_string(n);              // HIT hotpath-alloc
  std::vector<int> fresh;                             // HIT hotpath-alloc
  fresh.push_back(1);
  delete[] scratch;
  (void)owned;
  (void)label;
  cb();
  std::free(raw);
}

// Placement new constructs into caller-owned storage: allowed.
void emplace_cell(void* cell) { new (cell) int(0); }

// Binding by reference (the buffer-reuse idiom) does not allocate.
void drain(std::vector<int>& out) { out.clear(); }
// sdslint: end-hotpath

// After the region closes, allocation is unrestricted again.
int* teardown() { return new int(9); }

}  // namespace fixture
