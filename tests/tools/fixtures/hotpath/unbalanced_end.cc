// sdslint fixture: an end marker with no matching begin.
namespace fixture {

void fine() {}
// sdslint: end-hotpath
void also_fine() {}
// sdslint: end-lane-runner

}  // namespace fixture
