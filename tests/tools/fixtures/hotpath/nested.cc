// sdslint fixture: nested hot-path regions. The inner region (using the
// hotpath-begin/hotpath-end alias spelling) closes before the outer one
// does — an allocation after the inner end must still fire, because the
// outer region is still open. Both regions are balanced, so no
// unbalanced-directive errors.
#include <vector>

namespace fixture {

// sdslint: hotpath
void outer_work(std::vector<int>& out) {
  out.clear();

  // sdslint: hotpath-begin
  int* inner = new int(1);  // HIT hotpath-alloc (line 15)
  delete inner;
  // sdslint: hotpath-end

  int* still_hot = new int(2);  // HIT hotpath-alloc (line 19)
  delete still_hot;
}
// sdslint: end-hotpath

// Outside every region again: unrestricted.
int* relax() { return new int(3); }

}  // namespace fixture
