// sdslint fixture: hotpath-alloc hits under suppression lint clean.
#include <memory>

namespace fixture {

// sdslint: hotpath
void warmup() {
  // One-time pool growth is a deliberate exception here:
  auto pool = std::make_unique<int[]>(1024);  // sdslint: allow(hotpath-alloc)
  (void)pool;
}
// sdslint: end-hotpath

}  // namespace fixture
