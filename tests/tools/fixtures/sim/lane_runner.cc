// sdslint fixture: a `// sdslint: lane-runner` region is the one
// sanctioned thread-spawn site in simulation code — sim-thread is
// suspended inside it (all other rules still apply).
#include <thread>
#include <vector>

namespace fixture {

// sdslint: lane-runner
class LaneTeam {
 public:
  void start() {
    workers_.emplace_back([] {});  // OK: inside the lane-runner region
  }

 private:
  std::vector<std::thread> workers_;  // OK: inside the lane-runner region
};
// sdslint: end-lane-runner

}  // namespace fixture
