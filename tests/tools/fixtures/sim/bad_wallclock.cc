// sdslint fixture: wall-clock reads inside a `sim` path component.
// Expected: sim-wallclock on the marked lines, nothing else.
#include <chrono>
#include <ctime>

namespace fixture {

long wall_now() {
  auto t = std::chrono::system_clock::now();              // HIT sim-wallclock
  auto m = std::chrono::steady_clock::now();              // HIT sim-wallclock
  std::time_t raw = std::time(nullptr);                   // HIT sim-wallclock
  (void)t;
  (void)m;
  return static_cast<long>(raw);
}

// Mentions of system_clock in comments and "steady_clock" in strings
// must NOT be flagged:
const char* label() { return "system_clock steady_clock time()"; }

// Identifier substrings must not match: `timeline` is not `time`.
int timeline(int runtime) { return runtime; }

}  // namespace fixture
