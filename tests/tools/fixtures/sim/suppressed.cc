// sdslint fixture: every hit carries an allow() suppression, so the
// file must lint clean.
#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <string>
#include <thread>
#include <unordered_map>

namespace fixture {

void suppressed() {
  // Same-line suppression form:
  auto t = std::chrono::steady_clock::now();  // sdslint: allow(sim-wallclock)
  int r = rand();                             // sdslint: allow(sim-rand)
  // Standalone-comment form covers the next code line:
  // sdslint: allow(sim-sleep)
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // Multiple rules in one directive:
  // sdslint: allow(sim-thread, sim-wallclock)
  std::thread watcher([] { std::chrono::system_clock::now(); });
  watcher.join();
  (void)t;
  (void)r;
}

void suppressed_iter() {
  std::unordered_map<int, std::string> table;
  // sdslint: allow(unordered-iter)
  for (const auto& [key, value] : table) {
    std::printf("%d=%s\n", key, value.c_str());
  }
}

}  // namespace fixture
