// sdslint fixture: thread spawns inside a `sim` path component.
#include <future>
#include <thread>

namespace fixture {

void spawn() {
  std::thread worker([] {});                    // HIT sim-thread
  auto handle = std::async([] { return 1; });   // HIT sim-thread
  worker.join();
  (void)handle;
}

// Unqualified identifiers named `thread` (e.g. a loop variable) are not
// spawns and must not be flagged.
int thread_count(int thread) { return thread; }

}  // namespace fixture
