// sdslint fixture: span stamped with wall-clock time in a `sim` path
// component — fires span-wallclock on top of the general sim-wallclock
// determinism rule.
#include <chrono>
#include <cstdint>

namespace fixture {

struct Span {
  std::int64_t start = 0;
};

Span stamp(std::int64_t virtual_now) {
  Span span;
  span.start = std::chrono::steady_clock::now()  // HIT span-wallclock
                   .time_since_epoch()
                   .count();
  span.start = virtual_now;  // OK: virtual clock
  return span;
}

}  // namespace fixture
