// sdslint fixture: real-time sleeps inside a `sim` path component.
#include <chrono>
#include <thread>
#include <unistd.h>

namespace fixture {

void nap() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // HIT sim-sleep
  usleep(100);                                                // HIT sim-sleep
  sleep(1);                                                   // HIT sim-sleep
}

// `sleep` as a substring of another identifier is fine.
void sleepless(int oversleep) { (void)oversleep; }

}  // namespace fixture
