// sdslint fixture: sim-thread resumes after `end-lane-runner`.
#include <thread>

namespace fixture {

// sdslint: lane-runner
inline void sanctioned() { std::thread t([] {}); t.join(); }  // OK
// sdslint: end-lane-runner

inline void rogue() {
  std::thread t([] {});  // HIT sim-thread (outside the region)
  t.join();
}

}  // namespace fixture
