// sdslint fixture: ambient randomness inside a `sim` path component.
#include <cstdlib>
#include <random>

namespace fixture {

int roll() {
  std::random_device entropy;   // HIT sim-rand
  (void)entropy;
  return rand() % 6;            // HIT sim-rand
}

// Seeded PRNGs are fine — determinism comes from the owned seed.
int roll_seeded(unsigned seed) {
  std::mt19937_64 rng(seed);
  return static_cast<int>(rng() % 6);
}

}  // namespace fixture
