// sdslint fixture: idiomatic simulation code — must produce no findings.
#include <cstdio>
#include <map>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

// Simulated time is plain integer nanoseconds owned by the engine.
struct Clock {
  long long now_ns = 0;
  void advance(long long delta) { now_ns += delta; }
};

// Seeded PRNG: deterministic given the experiment config.
int jitter(unsigned seed) {
  std::mt19937_64 rng(seed);
  return static_cast<int>(rng() % 100);
}

// Keyed unordered lookups are fine; emitting sorted output goes through
// an ordered container.
void emit(const std::unordered_map<int, std::string>& index,
          const std::vector<int>& ids) {
  std::map<int, std::string> ordered;
  for (int id : ids) {
    auto it = index.find(id);
    if (it != index.end()) ordered[id] = it->second;
  }
  for (const auto& [id, name] : ordered) {
    std::printf("%d %s\n", id, name.c_str());
  }
}

}  // namespace fixture
