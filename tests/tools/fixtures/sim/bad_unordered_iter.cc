// sdslint fixture: iterating unordered containers inside `sim`.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

void emit() {
  std::unordered_map<int, std::string> table;
  std::unordered_set<int> members;
  for (const auto& [key, value] : table) {          // HIT unordered-iter
    std::printf("%d=%s\n", key, value.c_str());
  }
  for (auto it = members.begin(); it != members.end(); ++it) {  // HIT
    std::printf("%d\n", *it);
  }
}

// Keyed lookups don't depend on hash order and are fine.
bool probe(const std::unordered_map<int, std::string>& index, int key) {
  return index.find(key) != index.end();
}

}  // namespace fixture
