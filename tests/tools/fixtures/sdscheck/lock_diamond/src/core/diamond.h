// Fixture: a diamond-shaped acquisition graph (outer -> left -> inner,
// outer -> right -> inner) is acyclic and rank-increasing on every path,
// so sdscheck accepts it even though `inner_` has two predecessors.
#pragma once

#include "common/lock_rank.h"
#include "common/mutex.h"

namespace fixture {

class Diamond {
 public:
  void via_left() {
    MutexLock outer(outer_);
    MutexLock left(left_);
    MutexLock inner(inner_);
  }

  void via_right() {
    MutexLock outer(outer_);
    MutexLock right(right_);
    MutexLock inner(inner_);
  }

 private:
  Mutex outer_{LockRank::kOuter};
  Mutex left_{LockRank::kLeft};
  Mutex right_{LockRank::kRight};
  Mutex inner_{LockRank::kInner};
};

}  // namespace fixture
