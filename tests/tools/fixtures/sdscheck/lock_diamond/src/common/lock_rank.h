// Fixture rank table (parsed by sdscheck like the real one).
#pragma once

namespace sds {

enum class LockRank : unsigned short {
  kUnranked = 0,
  kOuter = 10,
  kLeft = 20,
  kRight = 30,
  kInner = 40,
};

}  // namespace sds
