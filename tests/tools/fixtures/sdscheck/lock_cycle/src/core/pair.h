// Fixture: two functions acquire the same pair of mutexes in opposite
// orders — the classic AB/BA deadlock. Both mutexes opt out of ranking so
// the lock-graph cycle (not a rank inversion) is what sdscheck reports.
#pragma once

#include "common/mutex.h"

namespace fixture {

class Pair {
 public:
  void forward() {
    MutexLock lock_a(a_);
    MutexLock lock_b(b_);
  }

  void backward() {
    MutexLock lock_b(b_);
    MutexLock lock_a(a_);
  }

 private:
  Mutex a_;  // sdscheck: allow(lock-rank)
  Mutex b_;  // sdscheck: allow(lock-rank)
};

}  // namespace fixture
