// Fixture: live-I/O layer header; sim must never see it.
#pragma once

#include "common/base.h"
