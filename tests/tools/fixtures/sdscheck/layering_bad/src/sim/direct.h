// Fixture: a direct banned include (sim -> transport).
#pragma once

#include "transport/socket.h"
