// Fixture: no direct banned include — but fault/chaos.h pulls in
// transport, so the transitive closure check must report the chain.
#pragma once

#include "fault/chaos.h"
