// Fixture: a plain rank violation — the bottom layer reaching up.
#pragma once

#include "fault/chaos.h"
