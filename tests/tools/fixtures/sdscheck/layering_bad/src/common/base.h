// Fixture: bottom-layer header, freely includable.
#pragma once
