// Fixture: fault may include transport (rank 30 < 40) — but this makes
// it a smuggling route for sim, which the transitive check must catch.
#pragma once

#include "transport/socket.h"
