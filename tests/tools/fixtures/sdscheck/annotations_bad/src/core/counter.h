// Fixture: `count_` sits below the mutex with no SDS_GUARDED_BY and no
// allow marker — the annotations pass must flag it. `named_` shows the
// same-line marker suppressing the finding.
#pragma once

#include "common/mutex.h"

namespace fixture {

class Counter {
 public:
  void bump() {
    MutexLock lock(mu_);
    ++count_;
  }

 private:
  Mutex mu_;  // sdscheck: allow(lock-rank)
  int count_ = 0;
  int named_ = 0;  // sdscheck: allow(unguarded-field)
};

}  // namespace fixture
