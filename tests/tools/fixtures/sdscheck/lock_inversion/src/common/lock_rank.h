// Fixture rank table (parsed by sdscheck like the real one).
#pragma once

namespace sds {

enum class LockRank : unsigned short {
  kUnranked = 0,
  kLow = 10,
  kHigh = 20,
};

}  // namespace sds
