// Fixture: both mutexes are ranked, but the nesting acquires the
// lower-ranked one while holding the higher-ranked one — a rank
// inversion even though the graph itself is acyclic.
#pragma once

#include "common/lock_rank.h"
#include "common/mutex.h"

namespace fixture {

class Inversion {
 public:
  void wrong_way() {
    MutexLock high(high_);
    MutexLock low(low_);
  }

 private:
  Mutex low_{LockRank::kLow};
  Mutex high_{LockRank::kHigh};
};

}  // namespace fixture
