// Fixture: a mutex with neither a LockRank stamp nor an
// `// sdscheck: allow(lock-rank)` marker must be reported.
#pragma once

#include "common/mutex.h"

namespace fixture {

class Unranked {
 private:
  Mutex mu_;
  int value_ SDS_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
