// Fixture: two message kinds; only Ping has a round-trip test.
#pragma once

namespace fixture::proto {

enum class MessageType : unsigned short {
  kPing = 1,
  kPong = 2,
};

struct Ping {
  static constexpr MessageType kType = MessageType::kPing;
};

struct Pong {
  static constexpr MessageType kType = MessageType::kPong;
};

}  // namespace fixture::proto
