// Fixture test file: round-trips Ping but never decodes Pong.
#include "proto/messages.h"

void roundtrip_ping() {
  // to_frame(ping); from_frame<Ping>(frame);
  auto frame = to_frame(fixture::proto::Ping{});
  (void)from_frame<fixture::proto::Ping>(frame);
}
