// sdslint fixture: idiomatic fault-plan code — must produce no findings.
// Everything is virtual time plus a seeded PRNG, exactly the contract
// fault/plan.h documents.
#include <cstdint>
#include <random>
#include <vector>

namespace fixture {

// Virtual Nanos from the run epoch; no clock is ever read.
struct Outage {
  long long from_ns = 0;
  long long until_ns = 0;
};

// All draws derive from the plan seed: compile-time expansion of a
// Poisson churn schedule is a pure function of (seed, stage).
std::vector<Outage> expand_churn(std::uint64_t seed, int stages,
                                 long long horizon_ns, long long mtbf_ns) {
  std::vector<Outage> outages;
  for (int stage = 0; stage < stages; ++stage) {
    std::mt19937_64 rng(seed ^ static_cast<std::uint64_t>(stage));
    std::exponential_distribution<double> gap(1.0 / static_cast<double>(mtbf_ns));
    long long t = static_cast<long long>(gap(rng));
    while (t < horizon_ns) {
      outages.push_back({t, t + 1'000'000});
      t += static_cast<long long>(gap(rng)) + 1'000'000;
    }
  }
  return outages;
}

// Mentions of system_clock or rand() in comments and strings are fine:
const char* contract() { return "no system_clock, no rand()"; }

}  // namespace fixture
