// sdslint fixture: wall-clock reads inside a `fault` path component.
// Expected: fault-wallclock on the marked lines, nothing else.
#include <chrono>
#include <ctime>

namespace fixture {

long stamp_outage() {
  auto t = std::chrono::system_clock::now();     // HIT fault-wallclock
  auto m = std::chrono::steady_clock::now();     // HIT fault-wallclock
  std::time_t raw = std::time(nullptr);          // HIT fault-wallclock
  (void)t;
  (void)m;
  return static_cast<long>(raw);
}

// Identifier substrings must not match: `timeout` is not `time`.
long rearm(long phase_timeout) { return phase_timeout * 2; }

}  // namespace fixture
