// sdslint fixture: unseeded randomness inside a `fault` path component.
// Expected: fault-rand on the marked lines, nothing else.
#include <cstdlib>
#include <random>

namespace fixture {

double draw_fate() {
  std::random_device entropy;                       // HIT fault-rand
  (void)entropy;
  return static_cast<double>(rand()) / RAND_MAX;    // HIT fault-rand
}

// Seeded PRNGs are the sanctioned source: pure in the plan seed.
double draw_fate_seeded(unsigned long long seed) {
  std::mt19937_64 rng(seed);
  return static_cast<double>(rng() % 1000) / 1000.0;
}

}  // namespace fixture
