// sdslint fixture: idiomatic bench code — wall clocks are fine here,
// and sorted emission of unordered data is the approved pattern.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <unordered_map>
#include <vector>

namespace fixture {

void report(const std::unordered_map<int, double>& latencies,
            const std::vector<int>& ids) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<int> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  for (int id : sorted) {
    auto it = latencies.find(id);
    if (it != latencies.end()) std::printf("%d %.3f\n", id, it->second);
  }
  (void)t0;
}

}  // namespace fixture
