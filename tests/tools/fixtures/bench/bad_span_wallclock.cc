// sdslint fixture: span stamped with wall-clock time in a `bench` path
// component. Wall clocks are legal in bench for throughput measurement,
// but not on statements that stamp a trace span — span times must come
// from the virtual clock so traces stitch with sim time.
#include <chrono>
#include <cstdint>

namespace fixture {

struct Span {
  std::int64_t start = 0;
  std::int64_t duration = 0;
};

std::int64_t wall_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // OK
}

Span stamp() {
  Span span;
  span.start = std::chrono::steady_clock::now()  // HIT span-wallclock
                   .time_since_epoch()
                   .count();
  span.duration = 1;
  // sdslint: allow(span-wallclock)
  span.start = std::chrono::steady_clock::now().time_since_epoch().count();
  return span;
}

}  // namespace fixture
