// sdslint fixture: unordered iteration in a `bench` path component.
// bench/ gets only the unordered-iter rule — steady_clock is fine here.
#include <chrono>
#include <cstdio>
#include <unordered_map>

namespace fixture {

void report() {
  auto t0 = std::chrono::steady_clock::now();  // OK in bench
  std::unordered_map<int, double> latencies;
  for (const auto& [id, ms] : latencies) {     // HIT unordered-iter
    std::printf("%d %.3f\n", id, ms);
  }
  (void)t0;
}

}  // namespace fixture
