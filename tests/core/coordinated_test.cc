#include "core/coordinated.h"

#include <gtest/gtest.h>

#include <numeric>

namespace sds::core {
namespace {

proto::StageMetrics metrics(std::uint32_t stage, std::uint32_t job,
                            double data, double meta) {
  proto::StageMetrics m;
  m.cycle_id = 1;
  m.stage_id = StageId{stage};
  m.job_id = JobId{job};
  m.data_iops = data;
  m.meta_iops = meta;
  return m;
}

TEST(CoordinatedTest, SummarizeMatchesAggregatorSemantics) {
  CoordinatedControllerCore peer(ControllerId{1}, {1000.0, 100.0});
  const std::vector<proto::StageMetrics> input = {metrics(1, 0, 100, 10),
                                                  metrics(2, 0, 300, 30)};
  const auto summary = peer.summarize(4, input);
  EXPECT_EQ(summary.from, ControllerId{1});
  EXPECT_EQ(summary.total_stages, 2u);
  ASSERT_EQ(summary.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(summary.jobs[0].data_iops, 400.0);
}

TEST(CoordinatedTest, TwoPeersProduceRulesForOwnStagesOnly) {
  const Budgets budgets{1000.0, 100.0};
  CoordinatedControllerCore peer_a(ControllerId{0}, budgets);
  CoordinatedControllerCore peer_b(ControllerId{1}, budgets);

  const std::vector<proto::StageMetrics> a_local = {metrics(0, 0, 600, 60),
                                                    metrics(1, 0, 600, 60)};
  const std::vector<proto::StageMetrics> b_local = {metrics(2, 1, 1200, 120)};

  const std::vector<proto::AggregatedMetrics> summaries = {
      peer_a.summarize(1, a_local), peer_b.summarize(1, b_local)};

  const auto a_rules = peer_a.compute_own_rules(1, summaries, a_local);
  const auto b_rules = peer_b.compute_own_rules(1, summaries, b_local);
  ASSERT_EQ(a_rules.size(), 2u);
  ASSERT_EQ(b_rules.size(), 1u);
  EXPECT_EQ(a_rules[0].stage_id, StageId{0});
  EXPECT_EQ(b_rules[0].stage_id, StageId{2});
}

TEST(CoordinatedTest, GlobalBudgetRespectedAcrossPeers) {
  // The combined enforcement of all peers must not exceed the global
  // budget — the property that makes coordination equivalent to a
  // central controller.
  const Budgets budgets{1000.0, 100.0};
  CoordinatedControllerCore peer_a(ControllerId{0}, budgets);
  CoordinatedControllerCore peer_b(ControllerId{1}, budgets);

  const std::vector<proto::StageMetrics> a_local = {metrics(0, 0, 2000, 200),
                                                    metrics(1, 1, 2000, 200)};
  const std::vector<proto::StageMetrics> b_local = {metrics(2, 0, 2000, 200),
                                                    metrics(3, 2, 2000, 200)};
  const std::vector<proto::AggregatedMetrics> summaries = {
      peer_a.summarize(1, a_local), peer_b.summarize(1, b_local)};

  double data_total = 0;
  for (const auto& rule : peer_a.compute_own_rules(1, summaries, a_local)) {
    data_total += rule.data_iops_limit;
  }
  for (const auto& rule : peer_b.compute_own_rules(1, summaries, b_local)) {
    data_total += rule.data_iops_limit;
  }
  EXPECT_LE(data_total, 1000.0 + 1e-6);
  EXPECT_GE(data_total, 990.0);  // and it is work-conserving
}

TEST(CoordinatedTest, DeterministicRegardlessOfSummaryOrder) {
  const Budgets budgets{5000.0, 500.0};
  CoordinatedControllerCore peer(ControllerId{0}, budgets);
  const std::vector<proto::StageMetrics> local = {metrics(0, 0, 900, 90),
                                                  metrics(1, 1, 400, 40)};
  CoordinatedControllerCore other(ControllerId{1}, budgets);
  const std::vector<proto::StageMetrics> other_local = {
      metrics(2, 0, 700, 70), metrics(3, 2, 100, 10)};

  const auto s0 = peer.summarize(1, local);
  const auto s1 = other.summarize(1, other_local);
  const std::vector<proto::AggregatedMetrics> forward = {s0, s1};
  const std::vector<proto::AggregatedMetrics> reversed = {s1, s0};

  const auto rules_fwd = peer.compute_own_rules(1, forward, local);
  const auto rules_rev = peer.compute_own_rules(1, reversed, local);
  ASSERT_EQ(rules_fwd.size(), rules_rev.size());
  for (std::size_t i = 0; i < rules_fwd.size(); ++i) {
    EXPECT_DOUBLE_EQ(rules_fwd[i].data_iops_limit, rules_rev[i].data_iops_limit);
    EXPECT_DOUBLE_EQ(rules_fwd[i].meta_iops_limit, rules_rev[i].meta_iops_limit);
  }
}

TEST(CoordinatedTest, PeerWithoutLocalStagesProducesNoRules) {
  const Budgets budgets{1000.0, 100.0};
  CoordinatedControllerCore peer(ControllerId{0}, budgets);
  CoordinatedControllerCore other(ControllerId{1}, budgets);
  const std::vector<proto::StageMetrics> other_local = {metrics(1, 0, 500, 50)};
  const std::vector<proto::AggregatedMetrics> summaries = {
      peer.summarize(1, {}), other.summarize(1, other_local)};
  EXPECT_TRUE(peer.compute_own_rules(1, summaries, {}).empty());
}

TEST(CoordinatedTest, WeightsApplyGlobally) {
  const Budgets budgets{1000.0, 100.0};
  CoordinatedControllerCore peer_a(ControllerId{0}, budgets);
  CoordinatedControllerCore peer_b(ControllerId{1}, budgets);
  peer_a.policies().set_weight(JobId{0}, 3.0);
  peer_b.policies().set_weight(JobId{0}, 3.0);  // peers share policy config

  const std::vector<proto::StageMetrics> a_local = {metrics(0, 0, 5000, 500)};
  const std::vector<proto::StageMetrics> b_local = {metrics(1, 1, 5000, 500)};
  const std::vector<proto::AggregatedMetrics> summaries = {
      peer_a.summarize(1, a_local), peer_b.summarize(1, b_local)};

  const auto a_rules = peer_a.compute_own_rules(1, summaries, a_local);
  const auto b_rules = peer_b.compute_own_rules(1, summaries, b_local);
  ASSERT_EQ(a_rules.size(), 1u);
  ASSERT_EQ(b_rules.size(), 1u);
  EXPECT_NEAR(a_rules[0].data_iops_limit, 3 * b_rules[0].data_iops_limit, 1e-6);
}

}  // namespace
}  // namespace sds::core
