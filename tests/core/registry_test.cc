#include "core/registry.h"

#include <gtest/gtest.h>

namespace sds::core {
namespace {

StageRecord record(std::uint32_t stage, std::uint32_t job,
                   std::uint32_t via = ControllerId::kInvalid) {
  StageRecord r;
  r.info = {StageId{stage}, NodeId{stage}, JobId{job}, "n"};
  r.conn = ConnId{stage};
  r.via = ControllerId{via};
  return r;
}

TEST(RegistryTest, AddAndFind) {
  Registry registry;
  ASSERT_TRUE(registry.add(record(1, 10)).is_ok());
  EXPECT_EQ(registry.size(), 1u);
  const StageRecord* found = registry.find(StageId{1});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->info.job_id, JobId{10});
  EXPECT_TRUE(registry.contains(StageId{1}));
  EXPECT_FALSE(registry.contains(StageId{2}));
}

TEST(RegistryTest, DuplicateRejected) {
  Registry registry;
  ASSERT_TRUE(registry.add(record(1, 10)).is_ok());
  const Status dup = registry.add(record(1, 11));
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(RegistryTest, InvalidStageIdRejected) {
  Registry registry;
  StageRecord r = record(1, 1);
  r.info.stage_id = StageId::invalid();
  EXPECT_EQ(registry.add(r).code(), StatusCode::kInvalidArgument);
}

TEST(RegistryTest, RemoveUpdatesCounts) {
  Registry registry;
  ASSERT_TRUE(registry.add(record(1, 10)).is_ok());
  ASSERT_TRUE(registry.add(record(2, 10)).is_ok());
  EXPECT_EQ(registry.job_stage_count(JobId{10}), 2u);
  ASSERT_TRUE(registry.remove(StageId{1}).is_ok());
  EXPECT_EQ(registry.job_stage_count(JobId{10}), 1u);
  ASSERT_TRUE(registry.remove(StageId{2}).is_ok());
  EXPECT_EQ(registry.job_stage_count(JobId{10}), 0u);
  EXPECT_EQ(registry.remove(StageId{2}).code(), StatusCode::kNotFound);
}

TEST(RegistryTest, StagesInRegistrationOrder) {
  Registry registry;
  for (const std::uint32_t id : {5u, 1u, 9u, 3u}) {
    ASSERT_TRUE(registry.add(record(id, 0)).is_ok());
  }
  const auto& order = registry.stages();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], StageId{5});
  EXPECT_EQ(order[1], StageId{1});
  EXPECT_EQ(order[2], StageId{9});
  EXPECT_EQ(order[3], StageId{3});
}

TEST(RegistryTest, JobsInFirstSeenOrder) {
  Registry registry;
  ASSERT_TRUE(registry.add(record(1, 7)).is_ok());
  ASSERT_TRUE(registry.add(record(2, 3)).is_ok());
  ASSERT_TRUE(registry.add(record(3, 7)).is_ok());
  const auto jobs = registry.jobs();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0], JobId{7});
  EXPECT_EQ(jobs[1], JobId{3});
}

TEST(RegistryTest, ForEachVisitsAllInOrder) {
  Registry registry;
  for (std::uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(registry.add(record(i, i / 3)).is_ok());
  }
  std::uint32_t expected = 0;
  registry.for_each([&](const StageRecord& r) {
    EXPECT_EQ(r.info.stage_id, StageId{expected});
    ++expected;
  });
  EXPECT_EQ(expected, 10u);
}

TEST(RegistryTest, EvictViaRemovesSubtree) {
  Registry registry;
  ASSERT_TRUE(registry.add(record(1, 0, 100)).is_ok());
  ASSERT_TRUE(registry.add(record(2, 0, 101)).is_ok());
  ASSERT_TRUE(registry.add(record(3, 0, 100)).is_ok());
  ASSERT_TRUE(registry.add(record(4, 1, 100)).is_ok());

  const auto evicted = registry.evict_via(ControllerId{100});
  EXPECT_EQ(evicted.size(), 3u);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(registry.contains(StageId{2}));
  EXPECT_EQ(registry.job_stage_count(JobId{0}), 1u);
  EXPECT_EQ(registry.job_stage_count(JobId{1}), 0u);
}

TEST(RegistryTest, EvictViaNoMatches) {
  Registry registry;
  ASSERT_TRUE(registry.add(record(1, 0, 100)).is_ok());
  EXPECT_TRUE(registry.evict_via(ControllerId{999}).empty());
  EXPECT_EQ(registry.size(), 1u);
}

}  // namespace
}  // namespace sds::core
