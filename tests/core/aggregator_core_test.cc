#include "core/aggregator.h"

#include <gtest/gtest.h>

namespace sds::core {
namespace {

proto::StageMetrics metrics(std::uint32_t stage, std::uint32_t job,
                            double data, double meta) {
  proto::StageMetrics m;
  m.cycle_id = 1;
  m.stage_id = StageId{stage};
  m.job_id = JobId{job};
  m.data_iops = data;
  m.meta_iops = meta;
  return m;
}

TEST(AggregatorCoreTest, AggregateMergesPerJob) {
  AggregatorCore agg(AggregatorOptions{ControllerId{3}, true, false});
  const std::vector<proto::StageMetrics> input = {
      metrics(1, 0, 100, 10), metrics(2, 0, 200, 20), metrics(3, 1, 50, 5)};
  const auto report = agg.aggregate(9, input);
  EXPECT_EQ(report.cycle_id, 9u);
  EXPECT_EQ(report.from, ControllerId{3});
  EXPECT_EQ(report.total_stages, 3u);
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0].job_id, JobId{0});
  EXPECT_DOUBLE_EQ(report.jobs[0].data_iops, 300.0);
  EXPECT_DOUBLE_EQ(report.jobs[0].meta_iops, 30.0);
  EXPECT_EQ(report.jobs[0].stage_count, 2u);
  EXPECT_EQ(report.jobs[1].stage_count, 1u);
  EXPECT_TRUE(report.digests.empty());
}

TEST(AggregatorCoreTest, AggregateWithDigests) {
  AggregatorCore agg(AggregatorOptions{ControllerId{3}, true, true});
  const std::vector<proto::StageMetrics> input = {metrics(1, 0, 100, 10),
                                                  metrics(2, 0, 200, 20)};
  const auto report = agg.aggregate(1, input);
  ASSERT_EQ(report.digests.size(), 2u);
  EXPECT_EQ(report.digests[0].stage_id, StageId{1});
  EXPECT_FLOAT_EQ(report.digests[1].data_iops, 200.0f);
}

TEST(AggregatorCoreTest, AggregateNegativeRatesClamped) {
  AggregatorCore agg(AggregatorOptions{ControllerId{1}});
  const std::vector<proto::StageMetrics> input = {metrics(1, 0, -50, -5)};
  const auto report = agg.aggregate(1, input);
  EXPECT_DOUBLE_EQ(report.jobs[0].data_iops, 0.0);
}

TEST(AggregatorCoreTest, AggregateEmptyInput) {
  AggregatorCore agg(AggregatorOptions{ControllerId{1}});
  const auto report = agg.aggregate(1, {});
  EXPECT_EQ(report.total_stages, 0u);
  EXPECT_TRUE(report.jobs.empty());
}

TEST(AggregatorCoreTest, PassthroughRelaysRawEntries) {
  AggregatorCore agg(AggregatorOptions{ControllerId{2}, false});
  const std::vector<proto::StageMetrics> input = {metrics(1, 0, 100, 10),
                                                  metrics(2, 1, 200, 20)};
  const auto batch = agg.passthrough(5, input);
  EXPECT_EQ(batch.cycle_id, 5u);
  EXPECT_EQ(batch.from, ControllerId{2});
  ASSERT_EQ(batch.entries.size(), 2u);
  EXPECT_EQ(batch.entries[1].stage_id, StageId{2});
}

TEST(AggregatorCoreTest, RouteSeparatesOwnedFromUnknown) {
  AggregatorCore agg(AggregatorOptions{ControllerId{1}});
  ASSERT_TRUE(agg.registry()
                  .add({{StageId{1}, NodeId{1}, JobId{0}, "n"},
                        ConnId{1},
                        ControllerId::invalid()})
                  .is_ok());
  proto::EnforceBatch batch;
  batch.cycle_id = 1;
  proto::Rule owned;
  owned.stage_id = StageId{1};
  proto::Rule foreign;
  foreign.stage_id = StageId{99};
  batch.rules = {owned, foreign};

  const auto routed = agg.route(batch);
  ASSERT_EQ(routed.owned.size(), 1u);
  EXPECT_EQ(routed.owned[0].stage_id, StageId{1});
  ASSERT_EQ(routed.unknown.size(), 1u);
  EXPECT_EQ(routed.unknown[0].stage_id, StageId{99});
}

TEST(AggregatorCoreTest, MergeAcksSumsMatchingCycle) {
  AggregatorCore agg(AggregatorOptions{ControllerId{1}});
  const std::vector<proto::EnforceAck> acks = {
      {7, 3}, {7, 2}, {6, 100}};  // stale cycle ignored
  const auto merged = agg.merge_acks(7, acks);
  EXPECT_EQ(merged.cycle_id, 7u);
  EXPECT_EQ(merged.applied, 5u);
}

TEST(AggregatorCoreTest, LocalComputeRespectsLease) {
  AggregatorCore agg(AggregatorOptions{ControllerId{1}});
  proto::BudgetLease lease;
  lease.cycle_id = 1;
  lease.data_budget = 500.0;
  lease.meta_budget = 50.0;
  lease.valid_until_ns = 1'000'000;
  agg.set_lease(lease);

  const std::vector<proto::StageMetrics> input = {metrics(1, 0, 1000, 100),
                                                  metrics(2, 0, 1000, 100)};
  const auto rules = agg.local_compute(1, input, /*now_ns=*/500'000);
  ASSERT_EQ(rules.size(), 2u);
  double data_sum = 0;
  for (const auto& rule : rules) data_sum += rule.data_iops_limit;
  EXPECT_LE(data_sum, 500.0 + 1e-6);
  EXPECT_GE(data_sum, 499.0);  // work-conserving under contention
}

TEST(AggregatorCoreTest, LocalComputeExpiredLeaseYieldsNothing) {
  AggregatorCore agg(AggregatorOptions{ControllerId{1}});
  proto::BudgetLease lease;
  lease.valid_until_ns = 100;
  agg.set_lease(lease);
  const std::vector<proto::StageMetrics> input = {metrics(1, 0, 1000, 100)};
  EXPECT_TRUE(agg.local_compute(1, input, /*now_ns=*/200).empty());
}

}  // namespace
}  // namespace sds::core
