#include "core/metrics_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace sds::core {
namespace {

proto::StageMetrics metrics(std::uint32_t stage, std::uint32_t job,
                            std::uint64_t cycle, double data, double meta,
                            double data_limit = proto::kUnlimited,
                            double meta_limit = proto::kUnlimited) {
  proto::StageMetrics m;
  m.cycle_id = cycle;
  m.stage_id = StageId{stage};
  m.job_id = JobId{job};
  m.data_iops = data;
  m.meta_iops = meta;
  m.data_limit = data_limit;
  m.meta_limit = meta_limit;
  return m;
}

TEST(MetricsStoreTest, BindAssignsDenseSlotsAndIsIdempotent) {
  MetricsStore store;
  EXPECT_EQ(store.bind(StageId{10}, JobId{0}), 0u);
  EXPECT_EQ(store.bind(StageId{20}, JobId{1}), 1u);
  EXPECT_EQ(store.bind(StageId{10}, JobId{0}), 0u);  // idempotent
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.index_of(StageId{20}), 1u);
  EXPECT_EQ(store.index_of(StageId{99}), MetricsStore::kInvalidIndex);
}

TEST(MetricsStoreTest, BindBumpsStructureEpochAndMarksSlotDirty) {
  MetricsStore store;
  const std::uint64_t epoch0 = store.structure_epoch();
  (void)store.bind(StageId{1}, JobId{0});
  EXPECT_GT(store.structure_epoch(), epoch0);
  EXPECT_TRUE(store.any_dirty());  // fresh slot visible to next compute
}

TEST(MetricsStoreTest, UpdateWritesColumnsAndReportedRoundTrips) {
  MetricsStore store;
  (void)store.bind(StageId{7}, JobId{3});
  const proto::StageMetrics m = metrics(7, 3, 5, 123.5, 4.25, 900.0, 10.0);
  EXPECT_EQ(store.update(m), 0u);
  EXPECT_EQ(store.data_iops()[0], 123.5);
  EXPECT_EQ(store.meta_iops()[0], 4.25);
  EXPECT_EQ(store.last_cycle()[0], 5u);
  EXPECT_EQ(store.reported(0), m);  // bit-exact reconstruction
}

TEST(MetricsStoreTest, UpdateUnknownStageReturnsInvalidIndex) {
  MetricsStore store;
  EXPECT_EQ(store.update(metrics(1, 0, 1, 10, 1)), MetricsStore::kInvalidIndex);
}

TEST(MetricsStoreTest, StaleFullFrameDropped) {
  MetricsStore store;
  (void)store.bind(StageId{1}, JobId{0});
  (void)store.update(metrics(1, 0, 5, 100, 10));
  (void)store.update(metrics(1, 0, 3, 999, 99));  // older cycle: dropped
  EXPECT_EQ(store.data_iops()[0], 100.0);
  EXPECT_EQ(store.counters().stale_full_frames, 1u);
}

TEST(MetricsStoreTest, DeltaChainReproducesReportsBitForBit) {
  MetricsStore store;
  (void)store.bind(StageId{1}, JobId{0});
  proto::StageMetrics prev = metrics(1, 0, 1, 100.125, 10.5);
  (void)store.update(prev);
  for (std::uint64_t cycle = 2; cycle <= 20; ++cycle) {
    proto::StageMetrics curr = prev;
    curr.cycle_id = cycle;
    curr.data_iops += 0.1 * static_cast<double>(cycle);
    curr.meta_iops -= 0.01;
    const auto delta =
        proto::StageMetricsDelta::make(prev, curr, /*include_stage_id=*/true);
    ASSERT_EQ(store.apply_delta(delta), DeltaStatus::kApplied);
    EXPECT_EQ(store.reported(0), curr);
    prev = curr;
  }
  EXPECT_EQ(store.counters().deltas_applied, 19u);
}

TEST(MetricsStoreTest, DeltaWithoutStageIdUsesConnHint) {
  MetricsStore store;
  (void)store.bind(StageId{1}, JobId{0});
  (void)store.bind(StageId{2}, JobId{0});
  const proto::StageMetrics prev = metrics(2, 0, 1, 50, 5);
  (void)store.update(prev);
  proto::StageMetrics curr = prev;
  curr.cycle_id = 2;
  curr.data_iops = 60;
  const auto delta =
      proto::StageMetricsDelta::make(prev, curr, /*include_stage_id=*/false);
  EXPECT_EQ(store.apply_delta(delta), DeltaStatus::kUnknownStage);  // no hint
  EXPECT_EQ(store.apply_delta(delta, 1), DeltaStatus::kApplied);
  EXPECT_EQ(store.reported(1), curr);
  EXPECT_EQ(store.counters().deltas_unknown_stage, 1u);
}

TEST(MetricsStoreTest, DuplicateAndOutOfOrderDeltasRejected) {
  MetricsStore store;
  (void)store.bind(StageId{1}, JobId{0});
  const proto::StageMetrics base = metrics(1, 0, 4, 100, 10);
  (void)store.update(base);
  proto::StageMetrics next = base;
  next.cycle_id = 5;
  next.data_iops = 110;
  const auto delta = proto::StageMetricsDelta::make(base, next, true);
  ASSERT_EQ(store.apply_delta(delta), DeltaStatus::kApplied);
  // Re-delivery of the same frame (ChaosNetwork duplicate fate).
  EXPECT_EQ(store.apply_delta(delta), DeltaStatus::kDuplicate);
  EXPECT_EQ(store.reported(0), next);  // value unchanged
  EXPECT_EQ(store.counters().deltas_duplicate, 1u);
}

TEST(MetricsStoreTest, BrokenBaseChainRejected) {
  MetricsStore store;
  (void)store.bind(StageId{1}, JobId{0});
  const proto::StageMetrics base = metrics(1, 0, 4, 100, 10);
  (void)store.update(base);
  proto::StageMetrics skipped = base;
  skipped.cycle_id = 5;  // this report never arrives
  proto::StageMetrics next = skipped;
  next.cycle_id = 6;
  next.data_iops = 120;
  const auto delta = proto::StageMetricsDelta::make(skipped, next, true);
  EXPECT_EQ(store.apply_delta(delta), DeltaStatus::kBaseMismatch);
  EXPECT_EQ(store.reported(0), base);  // old value stays in force
  EXPECT_EQ(store.counters().deltas_base_mismatch, 1u);
}

TEST(MetricsStoreTest, ActivityThresholdGatesComputeViewNotReported) {
  MetricsStore store(MetricsStoreOptions{/*activity_threshold=*/5.0});
  (void)store.bind(StageId{1}, JobId{0});
  (void)store.update(metrics(1, 0, 1, 100, 10));
  std::vector<std::uint32_t> dirty;
  store.drain_dirty(dirty);

  // Jitter below the threshold: reported column follows, view doesn't.
  (void)store.update(metrics(1, 0, 2, 103, 10));
  EXPECT_EQ(store.reported(0).data_iops, 103.0);
  EXPECT_EQ(store.data_iops()[0], 100.0);
  EXPECT_FALSE(store.any_dirty());

  // A move past the threshold propagates and dirties the slot.
  (void)store.update(metrics(1, 0, 3, 110, 10));
  EXPECT_EQ(store.data_iops()[0], 110.0);
  EXPECT_TRUE(store.any_dirty());
}

TEST(MetricsStoreTest, DrainDirtySortedAscendingAndClears) {
  MetricsStore store;
  for (std::uint32_t i = 0; i < 8; ++i) (void)store.bind(StageId{i}, JobId{0});
  std::vector<std::uint32_t> dirty;
  store.drain_dirty(dirty);  // consume the bind-time dirtiness
  // Touch slots in descending order; drain must come back ascending.
  for (std::uint32_t i = 8; i-- > 0;) {
    (void)store.update(metrics(i, 0, 1, 10.0 + i, 1));
  }
  store.drain_dirty(dirty);
  ASSERT_EQ(dirty.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(dirty[i], i);
  EXPECT_FALSE(store.any_dirty());
  // A second touch re-dirties exactly once.
  (void)store.update(metrics(3, 0, 2, 99, 1));
  (void)store.update(metrics(3, 0, 3, 98, 1));
  store.drain_dirty(dirty);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], 3u);
}

TEST(MetricsStoreTest, ClearDirtyDropsWithoutConsuming) {
  MetricsStore store;
  (void)store.bind(StageId{1}, JobId{0});
  EXPECT_TRUE(store.any_dirty());
  store.clear_dirty();
  EXPECT_FALSE(store.any_dirty());
}

TEST(MetricsStoreTest, ResetDropsSlotsAndBumpsEpoch) {
  MetricsStore store;
  (void)store.bind(StageId{1}, JobId{0});
  (void)store.update(metrics(1, 0, 1, 100, 10));
  const std::uint64_t epoch = store.structure_epoch();
  store.reset(4);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.empty());
  EXPECT_GT(store.structure_epoch(), epoch);
  EXPECT_EQ(store.index_of(StageId{1}), MetricsStore::kInvalidIndex);
}

TEST(MetricsStoreTest, RandomizedDeltaChainMatchesFullFrames) {
  // Two stores fed the same walk — one via full frames, one via deltas —
  // must agree bit-for-bit on every column.
  MetricsStore full_store;
  MetricsStore delta_store;
  (void)full_store.bind(StageId{1}, JobId{0});
  (void)delta_store.bind(StageId{1}, JobId{0});
  Rng rng(0xfeedu);
  proto::StageMetrics prev = metrics(1, 0, 1, 1000, 100, 900, 90);
  (void)full_store.update(prev);
  (void)delta_store.update(prev);
  for (std::uint64_t cycle = 2; cycle < 300; ++cycle) {
    proto::StageMetrics curr = prev;
    curr.cycle_id = cycle;
    if (rng.bernoulli(0.7)) curr.data_iops *= 1.0 + rng.normal(0, 0.01);
    if (rng.bernoulli(0.5)) curr.meta_iops += rng.normal(0, 0.5);
    if (rng.bernoulli(0.1)) curr.data_limit = rng.uniform01() * 2000.0;
    (void)full_store.update(curr);
    const auto delta = proto::StageMetricsDelta::make(prev, curr, true);
    ASSERT_EQ(delta_store.apply_delta(delta), DeltaStatus::kApplied);
    ASSERT_EQ(delta_store.reported(0), full_store.reported(0));
    prev = curr;
  }
  EXPECT_EQ(delta_store.data_iops()[0], full_store.data_iops()[0]);
  EXPECT_EQ(delta_store.meta_iops()[0], full_store.meta_iops()[0]);
}

}  // namespace
}  // namespace sds::core
