// Property tests for GlobalControllerCore::compute_from_store: the
// incremental pipeline (dirty-set re-sums, memoized water-filling,
// partial re-splits) must be BIT-identical to the batch compute() over
// the same compute-view values — across randomized demand walks,
// activity thresholds, activity flips, cap transitions, weight and
// budget changes, and the --psfa-full-recompute ablation.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/global.h"
#include "core/metrics_store.h"

namespace sds::core {
namespace {

struct Fixture {
  explicit Fixture(std::size_t stages, std::size_t jobs, double threshold,
                   Budgets budgets = {100000.0, 10000.0})
      : store(MetricsStoreOptions{threshold}) {
    GlobalOptions options;
    options.budgets = budgets;
    core = std::make_unique<GlobalControllerCore>(options);
    reference = std::make_unique<GlobalControllerCore>(options);
    for (std::uint32_t i = 0; i < stages; ++i) {
      (void)store.bind(StageId{i}, JobId{static_cast<std::uint32_t>(i % jobs)});
    }
  }

  /// Batch-path input mirroring the store's compute view in slot order —
  /// by construction the same values, job order, and FP sum order the
  /// incremental path sees.
  [[nodiscard]] std::vector<proto::StageMetrics> view_snapshot() const {
    std::vector<proto::StageMetrics> out;
    out.reserve(store.size());
    for (std::uint32_t i = 0; i < store.size(); ++i) {
      proto::StageMetrics m;
      m.stage_id = store.stage_ids()[i];
      m.job_id = store.job_ids()[i];
      m.data_iops = store.data_iops()[i];
      m.meta_iops = store.meta_iops()[i];
      out.push_back(m);
    }
    return out;
  }

  /// One incremental cycle checked against the batch reference,
  /// bit-for-bit (no tolerances anywhere).
  void check_cycle() {
    const std::vector<proto::StageMetrics> snapshot = view_snapshot();
    const ComputeResult& incremental = core->compute_from_store(store);
    const ComputeResult batch = reference->compute(
        std::span<const proto::StageMetrics>(snapshot.data(), snapshot.size()));
    ASSERT_EQ(incremental.rules.size(), batch.rules.size());
    for (std::size_t i = 0; i < batch.rules.size(); ++i) {
      ASSERT_EQ(incremental.rules[i].stage_id, batch.rules[i].stage_id);
      ASSERT_EQ(incremental.rules[i].job_id, batch.rules[i].job_id);
      ASSERT_EQ(incremental.rules[i].data_iops_limit,
                batch.rules[i].data_iops_limit)
          << "slot " << i;
      ASSERT_EQ(incremental.rules[i].meta_iops_limit,
                batch.rules[i].meta_iops_limit)
          << "slot " << i;
    }
    ASSERT_EQ(incremental.data_allocations.size(),
              batch.data_allocations.size());
    for (std::size_t j = 0; j < batch.data_allocations.size(); ++j) {
      ASSERT_EQ(incremental.data_allocations[j].allocation,
                batch.data_allocations[j].allocation);
      ASSERT_EQ(incremental.meta_allocations[j].allocation,
                batch.meta_allocations[j].allocation);
    }
  }

  MetricsStore store;
  std::unique_ptr<GlobalControllerCore> core;
  std::unique_ptr<GlobalControllerCore> reference;
};

proto::StageMetrics report(const MetricsStore& store, std::uint32_t slot,
                           std::uint64_t cycle, double data, double meta) {
  proto::StageMetrics m;
  m.cycle_id = cycle;
  m.stage_id = store.stage_ids()[slot];
  m.job_id = store.job_ids()[slot];
  m.data_iops = data;
  m.meta_iops = meta;
  return m;
}

TEST(StoreComputeTest, SteadyStateSkipsAlgorithmRuns) {
  Fixture fx(64, 8, 0.0);
  for (std::uint32_t i = 0; i < 64; ++i) {
    (void)fx.store.update(report(fx.store, i, 1, 100.0 + i, 10.0));
  }
  fx.check_cycle();
  const std::uint64_t runs = fx.core->store_compute_stats().algorithm_runs;
  // Identical re-reports: nothing dirties, the algorithm never re-runs,
  // and the persistent result stays bit-identical to the batch path.
  for (std::uint64_t cycle = 2; cycle <= 5; ++cycle) {
    for (std::uint32_t i = 0; i < 64; ++i) {
      (void)fx.store.update(report(fx.store, i, cycle, 100.0 + i, 10.0));
    }
    fx.check_cycle();
  }
  EXPECT_EQ(fx.core->store_compute_stats().algorithm_runs, runs);
}

TEST(StoreComputeTest, SingleStageChangeOnlyResplitsItsJob) {
  Fixture fx(100, 10, 0.0);
  for (std::uint32_t i = 0; i < 100; ++i) {
    (void)fx.store.update(report(fx.store, i, 1, 50.0, 5.0));
  }
  fx.check_cycle();
  const std::uint64_t resummed = fx.core->store_compute_stats().jobs_resummed;
  (void)fx.store.update(report(fx.store, 42, 2, 500.0, 5.0));
  fx.check_cycle();
  // One dirty stage dirties exactly one job's re-sum; the budget shift
  // may legitimately re-split other jobs whose allocation moved.
  EXPECT_EQ(fx.core->store_compute_stats().jobs_resummed, resummed + 1);
}

class StoreComputeWalkTest : public ::testing::TestWithParam<double> {};

TEST_P(StoreComputeWalkTest, RandomWalkMatchesBatchBitForBit) {
  const double threshold = GetParam();
  constexpr std::size_t kStages = 120;
  constexpr std::size_t kJobs = 11;
  Fixture fx(kStages, kJobs, threshold);
  Rng rng(0x5eedu + static_cast<std::uint64_t>(threshold));
  std::vector<double> data(kStages);
  std::vector<double> meta(kStages);
  for (std::size_t i = 0; i < kStages; ++i) {
    data[i] = 500.0 + rng.uniform01() * 1000.0;
    meta[i] = 20.0 + rng.uniform01() * 50.0;
  }
  for (std::uint64_t cycle = 1; cycle <= 120; ++cycle) {
    for (std::uint32_t i = 0; i < kStages; ++i) {
      // Low-churn walk: most stages re-report unchanged values; some
      // drift; a few flip activity entirely (idle <-> busy), moving
      // jobs across the active/capped boundary of the water-fill.
      const double roll = rng.uniform01();
      if (roll < 0.10) {
        data[i] *= 1.0 + rng.normal(0, 0.05);
        meta[i] += rng.normal(0, 1.0);
        if (meta[i] < 0) meta[i] = 0;
      } else if (roll < 0.12) {
        data[i] = data[i] > 0 ? 0.0 : 800.0 + rng.uniform01() * 400.0;
      }
      (void)fx.store.update(
          report(fx.store, i, cycle, data[i], meta[i]));
    }
    // Administrative churn: QoS weight and budget moves mid-walk.
    if (cycle == 40) {
      fx.core->policies().set_weight(JobId{3}, 4.0);
      fx.reference->policies().set_weight(JobId{3}, 4.0);
    }
    if (cycle == 80) {
      fx.core->policies().set_budgets({60000.0, 6000.0});
      fx.reference->policies().set_budgets({60000.0, 6000.0});
    }
    fx.check_cycle();
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "diverged at cycle " << cycle << " threshold " << threshold;
    }
  }
  // The incremental machinery actually took its shortcuts: fewer
  // re-sums than a full pipeline would have done every cycle.
  const auto& stats = fx.core->store_compute_stats();
  EXPECT_LT(stats.jobs_resummed, stats.cycles * kJobs);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, StoreComputeWalkTest,
                         ::testing::Values(0.0, 5.0, 50.0));

TEST(StoreComputeTest, FullRecomputeAblationBitIdentical) {
  // --psfa-full-recompute semantics: forcing the whole pipeline each
  // cycle must not change a single output bit vs the incremental path.
  constexpr std::size_t kStages = 80;
  Fixture incremental(kStages, 7, 0.0);
  Fixture full(kStages, 7, 0.0);
  Rng rng(0xab1eu);
  std::vector<double> data(kStages, 100.0);
  for (std::uint64_t cycle = 1; cycle <= 60; ++cycle) {
    for (std::uint32_t i = 0; i < kStages; ++i) {
      if (rng.bernoulli(0.05)) data[i] *= 1.0 + rng.normal(0, 0.1);
      const auto m = report(incremental.store, i, cycle, data[i], 10.0);
      (void)incremental.store.update(m);
      (void)full.store.update(m);
    }
    const ComputeResult& a =
        incremental.core->compute_from_store(incremental.store, false);
    const ComputeResult& b = full.core->compute_from_store(full.store, true);
    ASSERT_EQ(a.rules.size(), b.rules.size());
    for (std::size_t i = 0; i < a.rules.size(); ++i) {
      ASSERT_EQ(a.rules[i].data_iops_limit, b.rules[i].data_iops_limit);
      ASSERT_EQ(a.rules[i].meta_iops_limit, b.rules[i].meta_iops_limit);
      ASSERT_EQ(a.rules[i].epoch, b.rules[i].epoch);
    }
  }
  // The ablation really did run the full pipeline every cycle...
  EXPECT_EQ(full.core->store_compute_stats().jobs_resummed, 60u * 7u);
  // ...while the incremental path skipped most of it.
  EXPECT_LT(incremental.core->store_compute_stats().jobs_resummed, 60u * 7u);
}

TEST(StoreComputeTest, StructureChangeRebuildsAndStaysIdentical) {
  Fixture fx(10, 2, 0.0);
  for (std::uint32_t i = 0; i < 10; ++i) {
    (void)fx.store.update(report(fx.store, i, 1, 100.0, 10.0));
  }
  fx.check_cycle();
  // A late bind (new stage registered) bumps the structure epoch; the
  // next compute must transparently rebuild and still match batch.
  const std::uint32_t slot = fx.store.bind(StageId{999}, JobId{1});
  (void)fx.store.update(report(fx.store, slot, 2, 250.0, 25.0));
  fx.check_cycle();
}

TEST(StoreComputeTest, DeltaFedStoreMatchesBatch) {
  // End-to-end over the wire form: updates arrive as StageMetricsDelta
  // frames, and the compute over the folded store still matches batch.
  constexpr std::size_t kStages = 40;
  Fixture fx(kStages, 5, 0.0);
  Rng rng(0x0ddu);
  std::vector<proto::StageMetrics> last(kStages);
  for (std::uint32_t i = 0; i < kStages; ++i) {
    last[i] = report(fx.store, i, 1, 300.0 + i, 30.0);
    (void)fx.store.update(last[i]);
  }
  fx.check_cycle();
  for (std::uint64_t cycle = 2; cycle <= 40; ++cycle) {
    for (std::uint32_t i = 0; i < kStages; ++i) {
      proto::StageMetrics curr = last[i];
      curr.cycle_id = cycle;
      if (rng.bernoulli(0.2)) curr.data_iops *= 1.0 + rng.normal(0, 0.02);
      const auto delta = proto::StageMetricsDelta::make(last[i], curr, true);
      ASSERT_EQ(fx.store.apply_delta(delta), DeltaStatus::kApplied);
      last[i] = curr;
    }
    fx.check_cycle();
  }
}

}  // namespace
}  // namespace sds::core
