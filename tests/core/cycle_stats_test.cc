#include "core/cycle_stats.h"

#include <gtest/gtest.h>

namespace sds::core {
namespace {

TEST(PhaseBreakdownTest, TotalIsSumOfPhases) {
  PhaseBreakdown b{millis(10), millis(5), millis(15)};
  EXPECT_EQ(b.total(), millis(30));
}

TEST(CycleStatsTest, RecordsPerPhaseDistributions) {
  CycleStats stats;
  stats.record({millis(10), millis(5), millis(15)});
  stats.record({millis(20), millis(5), millis(25)});
  EXPECT_EQ(stats.cycles(), 2u);
  EXPECT_NEAR(stats.mean_collect_ms(), 15.0, 0.5);
  EXPECT_NEAR(stats.mean_compute_ms(), 5.0, 0.25);
  EXPECT_NEAR(stats.mean_enforce_ms(), 20.0, 0.7);
  EXPECT_NEAR(stats.mean_total_ms(), 40.0, 1.3);
}

TEST(CycleStatsTest, MeansAreConsistentWithHistograms) {
  CycleStats stats;
  stats.record({millis(1), millis(2), millis(3)});
  EXPECT_DOUBLE_EQ(stats.mean_collect_ms(), stats.collect().mean() * 1e-6);
  EXPECT_DOUBLE_EQ(stats.mean_total_ms(), stats.total().mean() * 1e-6);
}

TEST(CycleStatsTest, ResetClearsEverything) {
  CycleStats stats;
  stats.record({millis(1), millis(1), millis(1)});
  stats.reset();
  EXPECT_EQ(stats.cycles(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean_total_ms(), 0.0);
}

TEST(PhaseBreakdownTest, SubSegmentsPartitionCollectAndEnforce) {
  PhaseBreakdown b;
  b.collect = millis(10);
  b.compute = millis(5);
  b.enforce = millis(15);
  b.aggregate = millis(4);
  b.disseminate = millis(6);
  // The sub-segments refine, never extend: total is still the triple.
  EXPECT_EQ(b.total(), millis(30));
  EXPECT_EQ(b.collect_stages(), millis(6));
  EXPECT_EQ(b.enforce_apply(), millis(9));
}

TEST(CycleStatsTest, FullDetailRecordFeedsAttributedHistograms) {
  CycleStats stats;
  PhaseBreakdown clean;
  clean.collect = millis(10);
  clean.compute = millis(5);
  clean.enforce = millis(15);
  clean.aggregate = millis(4);
  clean.disseminate = millis(6);
  PhaseBreakdown slow = clean;
  slow.collect = millis(20);
  stats.record(/*cycle_id=*/1, clean, /*degraded=*/false);
  stats.record(/*cycle_id=*/2, slow, /*degraded=*/true, /*stale_stages=*/3);

  EXPECT_EQ(stats.cycles(), 2u);
  EXPECT_EQ(stats.aggregate().count(), 2u);
  EXPECT_EQ(stats.aggregate().max(), millis(4).count());
  EXPECT_EQ(stats.disseminate().max(), millis(6).count());
  // Only the degraded cycle lands in the degraded-latency histogram.
  EXPECT_EQ(stats.degraded_total_latency().count(), 1u);
  EXPECT_EQ(stats.degraded_total_latency().max(), slow.total().count());

  // The recent ring keeps full per-cycle detail for /cycles.
  const auto recent = stats.recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].cycle, 1u);
  EXPECT_FALSE(recent[0].degraded);
  EXPECT_EQ(recent[1].cycle, 2u);
  EXPECT_TRUE(recent[1].degraded);
  EXPECT_EQ(recent[1].stale_stages, 3u);
  EXPECT_EQ(recent[1].breakdown.collect, millis(20));
}

TEST(CycleStatsTest, RecentRingIsBounded) {
  CycleStats stats;
  for (std::uint64_t i = 1; i <= CycleStats::kRecentCapacity + 10; ++i) {
    stats.record(i, {millis(1), millis(1), millis(1)}, false);
  }
  const auto recent = stats.recent();
  ASSERT_EQ(recent.size(), CycleStats::kRecentCapacity);
  // Oldest entries were evicted; the ring ends at the last cycle.
  EXPECT_EQ(recent.front().cycle, 11u);
  EXPECT_EQ(recent.back().cycle, CycleStats::kRecentCapacity + 10);
}

TEST(CycleStatsTest, RecentCyclesJsonCarriesAttributedFields) {
  CycleStats stats;
  PhaseBreakdown b;
  b.collect = Nanos{100};
  b.compute = Nanos{50};
  b.enforce = Nanos{150};
  b.aggregate = Nanos{40};
  b.disseminate = Nanos{60};
  stats.record(/*cycle_id=*/7, b, /*degraded=*/true, /*stale_stages=*/2);

  const std::string json = recent_cycles_json(stats);
  for (const char* key :
       {"\"cycle\":7", "\"total_ns\":300", "\"collect_ns\":100",
        "\"aggregate_ns\":40", "\"compute_ns\":50", "\"disseminate_ns\":60",
        "\"enforce_ns\":150", "\"degraded\":true", "\"stale_stages\":2"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << "\n"
                                                 << json;
  }
  EXPECT_EQ(json.back(), '\n');
}

TEST(PhaseTest, Names) {
  EXPECT_EQ(to_string(Phase::kCollect), "collect");
  EXPECT_EQ(to_string(Phase::kCompute), "compute");
  EXPECT_EQ(to_string(Phase::kEnforce), "enforce");
}

}  // namespace
}  // namespace sds::core
