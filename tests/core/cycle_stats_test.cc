#include "core/cycle_stats.h"

#include <gtest/gtest.h>

namespace sds::core {
namespace {

TEST(PhaseBreakdownTest, TotalIsSumOfPhases) {
  PhaseBreakdown b{millis(10), millis(5), millis(15)};
  EXPECT_EQ(b.total(), millis(30));
}

TEST(CycleStatsTest, RecordsPerPhaseDistributions) {
  CycleStats stats;
  stats.record({millis(10), millis(5), millis(15)});
  stats.record({millis(20), millis(5), millis(25)});
  EXPECT_EQ(stats.cycles(), 2u);
  EXPECT_NEAR(stats.mean_collect_ms(), 15.0, 0.5);
  EXPECT_NEAR(stats.mean_compute_ms(), 5.0, 0.25);
  EXPECT_NEAR(stats.mean_enforce_ms(), 20.0, 0.7);
  EXPECT_NEAR(stats.mean_total_ms(), 40.0, 1.3);
}

TEST(CycleStatsTest, MeansAreConsistentWithHistograms) {
  CycleStats stats;
  stats.record({millis(1), millis(2), millis(3)});
  EXPECT_DOUBLE_EQ(stats.mean_collect_ms(), stats.collect().mean() * 1e-6);
  EXPECT_DOUBLE_EQ(stats.mean_total_ms(), stats.total().mean() * 1e-6);
}

TEST(CycleStatsTest, ResetClearsEverything) {
  CycleStats stats;
  stats.record({millis(1), millis(1), millis(1)});
  stats.reset();
  EXPECT_EQ(stats.cycles(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean_total_ms(), 0.0);
}

TEST(PhaseTest, Names) {
  EXPECT_EQ(to_string(Phase::kCollect), "collect");
  EXPECT_EQ(to_string(Phase::kCompute), "compute");
  EXPECT_EQ(to_string(Phase::kEnforce), "enforce");
}

}  // namespace
}  // namespace sds::core
