#include "core/global.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/aggregator.h"

namespace sds::core {
namespace {

proto::StageMetrics metrics(std::uint32_t stage, std::uint32_t job,
                            double data, double meta) {
  proto::StageMetrics m;
  m.cycle_id = 1;
  m.stage_id = StageId{stage};
  m.job_id = JobId{job};
  m.data_iops = data;
  m.meta_iops = meta;
  return m;
}

GlobalOptions small_budget_options() {
  GlobalOptions options;
  options.budgets = {1000.0, 100.0};
  return options;
}

double sum_data_limits(const ComputeResult& result) {
  return std::accumulate(result.rules.begin(), result.rules.end(), 0.0,
                         [](double acc, const proto::Rule& r) {
                           return acc + r.data_iops_limit;
                         });
}

TEST(GlobalCoreTest, BeginCycleIncrements) {
  GlobalControllerCore core;
  EXPECT_EQ(core.current_cycle(), 0u);
  const auto req = core.begin_cycle();
  EXPECT_EQ(req.cycle_id, 1u);
  EXPECT_EQ(core.current_cycle(), 1u);
  (void)core.begin_cycle();
  EXPECT_EQ(core.current_cycle(), 2u);
}

TEST(GlobalCoreTest, FlatComputeOneRulePerStage) {
  GlobalControllerCore core(small_budget_options());
  const std::vector<proto::StageMetrics> input = {
      metrics(1, 0, 400, 40), metrics(2, 0, 400, 40), metrics(3, 1, 800, 80)};
  const auto result = core.compute(input);
  ASSERT_EQ(result.rules.size(), 3u);
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_EQ(result.rules[i].stage_id, input[i].stage_id);
    EXPECT_EQ(result.rules[i].job_id, input[i].job_id);
  }
}

TEST(GlobalCoreTest, FlatComputeRespectsBudget) {
  GlobalControllerCore core(small_budget_options());
  const std::vector<proto::StageMetrics> input = {
      metrics(1, 0, 5000, 500), metrics(2, 1, 5000, 500)};
  const auto result = core.compute(input);
  EXPECT_LE(sum_data_limits(result), 1000.0 + 1e-6);

  const double meta_sum = std::accumulate(
      result.rules.begin(), result.rules.end(), 0.0,
      [](double acc, const proto::Rule& r) { return acc + r.meta_iops_limit; });
  EXPECT_LE(meta_sum, 100.0 + 1e-6);
}

TEST(GlobalCoreTest, FlatComputeProportionalWithinJob) {
  GlobalControllerCore core(small_budget_options());
  // One job, two stages with 1:3 demand; the job is contended so its
  // allocation splits 1:3 between stages.
  const std::vector<proto::StageMetrics> input = {metrics(1, 0, 1000, 10),
                                                  metrics(2, 0, 3000, 30)};
  const auto result = core.compute(input);
  ASSERT_EQ(result.rules.size(), 2u);
  EXPECT_NEAR(result.rules[1].data_iops_limit,
              3 * result.rules[0].data_iops_limit, 1e-6);
}

TEST(GlobalCoreTest, WeightsAffectAllocations) {
  GlobalControllerCore core(small_budget_options());
  core.policies().set_weight(JobId{0}, 4.0);
  core.policies().set_weight(JobId{1}, 1.0);
  const std::vector<proto::StageMetrics> input = {metrics(1, 0, 5000, 50),
                                                  metrics(2, 1, 5000, 50)};
  const auto result = core.compute(input);
  ASSERT_EQ(result.data_allocations.size(), 2u);
  EXPECT_NEAR(result.data_allocations[0].allocation,
              4 * result.data_allocations[1].allocation, 1e-6);
}

TEST(GlobalCoreTest, RuleEpochEncodesEpochAboveCycle) {
  GlobalOptions options;
  options.epoch = 2;
  GlobalControllerCore core(options);
  (void)core.begin_cycle();
  const std::uint64_t before = core.rule_epoch();
  (void)core.begin_cycle();
  const std::uint64_t later_cycle = core.rule_epoch();
  EXPECT_GT(later_cycle, before);

  core.advance_epoch();  // failover takeover
  EXPECT_GT(core.rule_epoch(), later_cycle);
  EXPECT_EQ(core.epoch(), 3u);
}

TEST(GlobalCoreTest, RulesCarryCurrentRuleEpoch) {
  GlobalControllerCore core(small_budget_options());
  (void)core.begin_cycle();
  const auto result = core.compute(
      std::vector<proto::StageMetrics>{metrics(1, 0, 100, 10)});
  ASSERT_EQ(result.rules.size(), 1u);
  EXPECT_EQ(result.rules[0].epoch, core.rule_epoch());
}

// ---------------------------------------------------------------------------
// Hierarchical path

AggregatorCore make_aggregator(std::uint32_t id, bool digests = true) {
  return AggregatorCore(
      AggregatorOptions{ControllerId{id}, true, digests});
}

TEST(GlobalCoreTest, HierarchicalComputeFromAggregates) {
  GlobalControllerCore core(small_budget_options());
  // Register stages routed via two aggregators.
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(core.registry()
                    .add({{StageId{i}, NodeId{i}, JobId{i / 2}, "n"},
                          ConnId{i},
                          ControllerId{i / 2}})
                    .is_ok());
  }
  AggregatorCore agg0 = make_aggregator(0);
  AggregatorCore agg1 = make_aggregator(1);
  const std::vector<proto::StageMetrics> left = {metrics(0, 0, 600, 60),
                                                 metrics(1, 0, 600, 60)};
  const std::vector<proto::StageMetrics> right = {metrics(2, 1, 600, 60),
                                                  metrics(3, 1, 600, 60)};
  const std::vector<proto::AggregatedMetrics> reports = {
      agg0.aggregate(1, left), agg1.aggregate(1, right)};

  const auto result = core.compute(reports);
  EXPECT_EQ(result.rules.size(), 4u);
  EXPECT_LE(sum_data_limits(result), 1000.0 + 1e-6);
}

TEST(GlobalCoreTest, HierarchicalDigestsEnableProportionalSplit) {
  GlobalControllerCore core(small_budget_options());
  for (std::uint32_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(core.registry()
                    .add({{StageId{i}, NodeId{i}, JobId{0}, "n"},
                          ConnId{i},
                          ControllerId{0}})
                    .is_ok());
  }
  AggregatorCore agg = make_aggregator(0, /*digests=*/true);
  const std::vector<proto::StageMetrics> input = {metrics(0, 0, 1000, 10),
                                                  metrics(1, 0, 3000, 30)};
  const std::vector<proto::AggregatedMetrics> reports = {
      agg.aggregate(1, input)};
  const auto result = core.compute(reports);
  ASSERT_EQ(result.rules.size(), 2u);
  EXPECT_NEAR(result.rules[1].data_iops_limit,
              3 * result.rules[0].data_iops_limit, 1.0);
}

TEST(GlobalCoreTest, HierarchicalWithoutDigestsSplitsUniformly) {
  GlobalControllerCore core(small_budget_options());
  for (std::uint32_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(core.registry()
                    .add({{StageId{i}, NodeId{i}, JobId{0}, "n"},
                          ConnId{i},
                          ControllerId{0}})
                    .is_ok());
  }
  AggregatorCore agg = make_aggregator(0, /*digests=*/false);
  const std::vector<proto::StageMetrics> input = {metrics(0, 0, 1000, 10),
                                                  metrics(1, 0, 3000, 30)};
  const std::vector<proto::AggregatedMetrics> reports = {
      agg.aggregate(1, input)};
  const auto result = core.compute(reports);
  ASSERT_EQ(result.rules.size(), 2u);
  EXPECT_NEAR(result.rules[0].data_iops_limit, result.rules[1].data_iops_limit,
              1e-6);
}

TEST(GlobalCoreTest, GroupRulesByAggregator) {
  GlobalControllerCore core(small_budget_options());
  for (std::uint32_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(core.registry()
                    .add({{StageId{i}, NodeId{i}, JobId{0}, "n"},
                          ConnId{i},
                          i < 4 ? ControllerId{i / 2} : ControllerId::invalid()})
                    .is_ok());
  }
  ComputeResult result;
  for (std::uint32_t i = 0; i < 6; ++i) {
    proto::Rule rule;
    rule.stage_id = StageId{i};
    rule.job_id = JobId{0};
    result.rules.push_back(rule);
  }
  const auto grouped = core.group_rules(result);
  ASSERT_EQ(grouped.size(), 3u);  // agg0, agg1, direct
  EXPECT_EQ(grouped.at(ControllerId{0}).rules.size(), 2u);
  EXPECT_EQ(grouped.at(ControllerId{1}).rules.size(), 2u);
  EXPECT_EQ(grouped.at(ControllerId::invalid()).rules.size(), 2u);
}

TEST(GlobalCoreTest, FlatVsHierarchicalSameJobAllocations) {
  // The same demand picture must produce identical job-level allocations
  // whether it arrives raw (flat) or pre-aggregated (hierarchical).
  GlobalOptions options;
  options.budgets = {10'000.0, 1'000.0};

  std::vector<proto::StageMetrics> all;
  for (std::uint32_t i = 0; i < 40; ++i) {
    all.push_back(metrics(i, i / 10, 500.0 + i, 50.0));
  }

  GlobalControllerCore flat_core(options);
  const auto flat_result = flat_core.compute(all);

  GlobalControllerCore hier_core(options);
  for (std::uint32_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(hier_core.registry()
                    .add({{StageId{i}, NodeId{i}, JobId{i / 10}, "n"},
                          ConnId{i},
                          ControllerId{i / 20}})
                    .is_ok());
  }
  AggregatorCore agg0 = make_aggregator(0);
  AggregatorCore agg1 = make_aggregator(1);
  const std::vector<proto::StageMetrics> left(all.begin(), all.begin() + 20);
  const std::vector<proto::StageMetrics> right(all.begin() + 20, all.end());
  const std::vector<proto::AggregatedMetrics> reports = {
      agg0.aggregate(1, left), agg1.aggregate(1, right)};
  const auto hier_result = hier_core.compute(reports);

  ASSERT_EQ(flat_result.data_allocations.size(),
            hier_result.data_allocations.size());
  for (std::size_t i = 0; i < flat_result.data_allocations.size(); ++i) {
    EXPECT_EQ(flat_result.data_allocations[i].job_id,
              hier_result.data_allocations[i].job_id);
    EXPECT_NEAR(flat_result.data_allocations[i].allocation,
                hier_result.data_allocations[i].allocation, 1e-6);
  }
}

TEST(GlobalCoreTest, EmptyMetricsYieldNoRules) {
  GlobalControllerCore core;
  const auto result = core.compute(std::span<const proto::StageMetrics>{});
  EXPECT_TRUE(result.rules.empty());
  EXPECT_TRUE(result.data_allocations.empty());
}

}  // namespace
}  // namespace sds::core
