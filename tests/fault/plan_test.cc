// FaultPlan / CompiledPlan unit tests: text-format parsing, field
// validation, deterministic compilation, and the pure message-fate
// function the simulator's lane-invariance rests on.
#include "fault/plan.h"

#include <gtest/gtest.h>

#include <set>

namespace sds::fault {
namespace {

TEST(FaultPlanTest, DefaultPlanIsEmpty) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.validate().is_ok());
}

TEST(FaultPlanTest, BuildersMakePlanNonEmpty) {
  FaultPlan plan;
  plan.crash_stage(3, millis(10), millis(5));
  EXPECT_FALSE(plan.empty());
  FaultPlan churny;
  churny.stage_mtbf_s = 30;
  EXPECT_FALSE(churny.empty());
  FaultPlan droppy;
  droppy.drop_probability = 0.01;
  EXPECT_FALSE(droppy.empty());
}

TEST(FaultPlanTest, ValidateRejectsBadFields) {
  FaultPlan plan;
  plan.drop_probability = 0.7;
  plan.duplicate_probability = 0.5;  // sum > 1
  EXPECT_FALSE(plan.validate().is_ok());

  FaultPlan quorum;
  quorum.quorum = 1.5;
  EXPECT_FALSE(quorum.validate().is_ok());
  quorum.quorum = -0.1;
  EXPECT_FALSE(quorum.validate().is_ok());

  FaultPlan timeout;
  timeout.phase_timeout = Nanos{0};
  EXPECT_FALSE(timeout.validate().is_ok());

  FaultPlan slow;
  slow.slow(0, 9, millis(0), millis(10), 0.5);  // multiplier < 1
  EXPECT_FALSE(slow.validate().is_ok());
}

TEST(FaultPlanTest, ParsesEveryDirective) {
  const auto plan = FaultPlan::parse(R"(# full-format fixture
seed 7
quorum 0.9
timeout_ms 15
churn stage mtbf_s 30 downtime_s 5
churn aggregator mtbf_s 120 downtime_s 10
drop 0.01
duplicate 0.005
delay 0.02 200
crash stage 17 at_ms 120 for_ms 500
crash aggregator 0 at_ms 50 for_ms 0
slow 0 99 from_ms 0 until_ms 1000 x 4
partition 100 199 from_ms 50 until_ms 250
)");
  ASSERT_TRUE(plan.is_ok()) << plan.status();
  EXPECT_EQ(plan->seed, 7u);
  EXPECT_DOUBLE_EQ(plan->quorum, 0.9);
  EXPECT_EQ(plan->phase_timeout, millis(15));
  EXPECT_DOUBLE_EQ(plan->stage_mtbf_s, 30);
  EXPECT_DOUBLE_EQ(plan->aggregator_mtbf_s, 120);
  EXPECT_DOUBLE_EQ(plan->drop_probability, 0.01);
  EXPECT_DOUBLE_EQ(plan->duplicate_probability, 0.005);
  EXPECT_DOUBLE_EQ(plan->delay_probability, 0.02);
  EXPECT_EQ(plan->delay, micros(200));
  ASSERT_EQ(plan->stage_crashes.size(), 1u);
  EXPECT_EQ(plan->stage_crashes[0].stage, 17u);
  EXPECT_EQ(plan->stage_crashes[0].at, millis(120));
  EXPECT_EQ(plan->stage_crashes[0].down_for, millis(500));
  ASSERT_EQ(plan->aggregator_crashes.size(), 1u);
  EXPECT_EQ(plan->aggregator_crashes[0].down_for, Nanos{0});  // forever
  ASSERT_EQ(plan->slow_windows.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->slow_windows[0].multiplier, 4);
  ASSERT_EQ(plan->partitions.size(), 1u);
  EXPECT_EQ(plan->partitions[0].first_stage, 100u);
}

TEST(FaultPlanTest, ParseReportsLineNumbers) {
  const auto plan = FaultPlan::parse("seed 1\nfrobnicate 3\n");
  ASSERT_FALSE(plan.is_ok());
  EXPECT_NE(plan.status().message().find("line 2"), std::string::npos)
      << plan.status();
}

TEST(FaultPlanTest, LoadMissingFileIsNotFound) {
  const auto plan = FaultPlan::load("/nonexistent/fault.plan");
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);
}

TEST(CompiledPlanTest, ScriptedCrashesGateUp) {
  FaultPlan plan;
  plan.crash_stage(2, millis(10), millis(5));
  plan.crash_aggregator(1, millis(20), Nanos{0});  // never returns
  const auto compiled = CompiledPlan::compile(plan, 8, 2, seconds(1));
  EXPECT_TRUE(compiled.stage_up(2, millis(9)));
  EXPECT_FALSE(compiled.stage_up(2, millis(10)));
  EXPECT_FALSE(compiled.stage_up(2, millis(14)));
  EXPECT_TRUE(compiled.stage_up(2, millis(15)));
  EXPECT_TRUE(compiled.stage_up(3, millis(12)));  // neighbours unaffected
  EXPECT_TRUE(compiled.aggregator_up(1, millis(19)));
  EXPECT_FALSE(compiled.aggregator_up(1, millis(20)));
  EXPECT_FALSE(compiled.aggregator_up(1, seconds(100)));
  EXPECT_EQ(compiled.total_outages(), 2u);
  ASSERT_EQ(compiled.stage_outages(2).size(), 1u);
  EXPECT_EQ(compiled.stage_outages(2)[0].from, millis(10));
  EXPECT_EQ(compiled.stage_outages(2)[0].until, millis(15));
  ASSERT_EQ(compiled.aggregator_outages(1).size(), 1u);
  EXPECT_EQ(compiled.aggregator_outages(1)[0].until, CompiledPlan::kNever);
}

TEST(CompiledPlanTest, SlowAndPartitionWindows) {
  FaultPlan plan;
  plan.slow(0, 3, millis(10), millis(20), 4.0);
  plan.partition(4, 7, millis(5), millis(15));
  const auto compiled = CompiledPlan::compile(plan, 8, 0, seconds(1));
  EXPECT_DOUBLE_EQ(compiled.service_multiplier(2, millis(12)), 4.0);
  EXPECT_DOUBLE_EQ(compiled.service_multiplier(2, millis(25)), 1.0);
  EXPECT_DOUBLE_EQ(compiled.service_multiplier(5, millis(12)), 1.0);
  EXPECT_TRUE(compiled.partitioned(5, millis(10)));
  EXPECT_FALSE(compiled.partitioned(5, millis(20)));
  EXPECT_FALSE(compiled.partitioned(2, millis(10)));
}

TEST(CompiledPlanTest, ChurnIsDeterministicPerSeed) {
  FaultPlan plan;
  plan.seed = 11;
  plan.stage_mtbf_s = 0.05;  // dense churn inside a 1 s horizon
  plan.stage_downtime_s = 0.01;
  const auto a = CompiledPlan::compile(plan, 16, 0, seconds(1));
  const auto b = CompiledPlan::compile(plan, 16, 0, seconds(1));
  EXPECT_GT(a.total_outages(), 0u);
  EXPECT_EQ(a.total_outages(), b.total_outages());
  for (std::size_t i = 0; i < 16; ++i) {
    ASSERT_EQ(a.stage_outages(i).size(), b.stage_outages(i).size());
    for (std::size_t k = 0; k < a.stage_outages(i).size(); ++k) {
      EXPECT_EQ(a.stage_outages(i)[k].from, b.stage_outages(i)[k].from);
      EXPECT_EQ(a.stage_outages(i)[k].until, b.stage_outages(i)[k].until);
    }
  }
  plan.seed = 12;
  const auto c = CompiledPlan::compile(plan, 16, 0, seconds(1));
  bool differs = c.total_outages() != a.total_outages();
  for (std::size_t i = 0; !differs && i < 16; ++i) {
    differs = a.stage_outages(i).size() != c.stage_outages(i).size() ||
              (!a.stage_outages(i).empty() &&
               a.stage_outages(i)[0].from != c.stage_outages(i)[0].from);
  }
  EXPECT_TRUE(differs) << "different seeds produced identical churn";
}

TEST(CompiledPlanTest, MessageFateIsPureAndCoversAllFates) {
  FaultPlan plan;
  plan.seed = 5;
  plan.drop_probability = 0.2;
  plan.duplicate_probability = 0.2;
  plan.delay_probability = 0.2;
  const auto compiled = CompiledPlan::compile(plan, 4, 0, seconds(1));
  std::set<MessageFate> seen;
  for (std::uint64_t cycle = 0; cycle < 64; ++cycle) {
    for (std::uint64_t entity = 0; entity < 4; ++entity) {
      const MessageFate fate =
          compiled.message_fate(MessageKind::kCollectReply, cycle, entity);
      // Pure: the same key always draws the same fate.
      EXPECT_EQ(fate,
                compiled.message_fate(MessageKind::kCollectReply, cycle, entity));
      seen.insert(fate);
      // Kinds draw independent streams; at these rates at least one key
      // must differ between kinds (checked in aggregate below).
    }
  }
  EXPECT_EQ(seen.size(), 4u) << "expected all four fates at p=0.2 each";
}

TEST(CompiledPlanTest, NoMessageFaultsAlwaysDeliver) {
  FaultPlan plan;
  plan.crash_stage(0, millis(1));
  const auto compiled = CompiledPlan::compile(plan, 4, 0, seconds(1));
  for (std::uint64_t cycle = 0; cycle < 32; ++cycle) {
    EXPECT_EQ(compiled.message_fate(MessageKind::kEnforceAck, cycle, 1),
              MessageFate::kDeliver);
  }
}

TEST(CompiledPlanTest, QuorumCountCeilsAndClamps) {
  FaultPlan plan;
  plan.quorum = 0.9;
  plan.drop_probability = 0.01;
  const auto compiled = CompiledPlan::compile(plan, 4, 0, seconds(1));
  EXPECT_EQ(compiled.quorum_count(0), 0u);
  EXPECT_EQ(compiled.quorum_count(1), 1u);
  EXPECT_EQ(compiled.quorum_count(10), 9u);
  EXPECT_EQ(compiled.quorum_count(11), 10u);  // ceil(9.9)
  FaultPlan all;
  all.drop_probability = 0.01;  // quorum defaults to 1.0
  const auto strict = CompiledPlan::compile(all, 4, 0, seconds(1));
  EXPECT_EQ(strict.quorum_count(10), 10u);
}

TEST(CompiledPlanTest, LastStageRestartBefore) {
  FaultPlan plan;
  plan.crash_stage(1, millis(10), millis(5));
  plan.crash_stage(1, millis(40), millis(5));
  const auto compiled = CompiledPlan::compile(plan, 4, 0, seconds(1));
  EXPECT_EQ(compiled.last_stage_restart_before(1, millis(9)), Nanos{-1});
  EXPECT_EQ(compiled.last_stage_restart_before(1, millis(20)), millis(15));
  EXPECT_EQ(compiled.last_stage_restart_before(1, millis(50)), millis(45));
  EXPECT_EQ(compiled.last_stage_restart_before(0, millis(50)), Nanos{-1});
}

}  // namespace
}  // namespace sds::fault
