// FaultDriver — replaying a compiled FaultPlan against a live
// Deployment — plus the sim-vs-runtime cross-validation: both sides
// consume the *same* CompiledPlan timeline, so the runtime's
// kill/restart sequence and the simulator's availability gates must
// agree at every instant of virtual time. Also covers the runtime
// degraded-cycle contract end to end: a silent-but-connected stage
// under a collect quorum closes the cycle degraded, and its first
// fresh reply afterwards records a recovery sample.
#include "runtime/fault_driver.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "fault/plan.h"
#include "runtime/deployment.h"
#include "sim/experiment.h"
#include "transport/inproc.h"
#include "workload/generators.h"

namespace sds::runtime {
namespace {

template <typename Pred>
bool eventually(Pred pred, Nanos deadline = seconds(5)) {
  const Nanos until = SystemClock::instance().now() + deadline;
  while (SystemClock::instance().now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

TEST(FaultDriverTest, AppliesScriptedTimelineInOrder) {
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 4;
  options.stages_per_host = 1;  // plan stage index == host index
  auto deployment = Deployment::create(net, options).value();
  ASSERT_EQ(deployment->global().registered_stages(), 4u);

  fault::FaultPlan plan;
  plan.crash_stage(2, millis(10), millis(10));
  plan.crash_stage(0, millis(5));  // never restarts
  FaultDriver driver(*deployment, plan);
  EXPECT_EQ(driver.events_total(), 3u);  // 2 kills + 1 restart
  EXPECT_EQ(driver.next_event_at(), millis(5));

  ASSERT_TRUE(driver.advance_to(millis(4)).is_ok());
  EXPECT_EQ(driver.events_applied(), 0u);
  EXPECT_EQ(deployment->global().registered_stages(), 4u);

  // Crossing both kill timestamps applies them in order; the dead hosts'
  // dropped connections evict their stages from the global roster.
  ASSERT_TRUE(driver.advance_to(millis(12)).is_ok());
  EXPECT_EQ(driver.events_applied(), 2u);
  EXPECT_TRUE(eventually(
      [&] { return deployment->global().registered_stages() == 2; }));

  // Host 2's scripted restart re-registers its stage; host 0 stays dead.
  const Status restarted = driver.advance_to(millis(30));
  ASSERT_TRUE(restarted.is_ok()) << restarted;
  EXPECT_EQ(driver.events_applied(), 3u);
  EXPECT_EQ(driver.next_event_at(), fault::CompiledPlan::kNever);
  EXPECT_TRUE(eventually(
      [&] { return deployment->global().registered_stages() == 3; }));
  EXPECT_TRUE(deployment->global().run_cycle().is_ok());
}

TEST(FaultDriverTest, AggregatorKillAndRestartViaPlan) {
  // The failover scenario the bespoke tests used to drive by hand
  // (aggregators()[0]->shutdown()) expressed as a fault plan.
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 8;
  options.num_aggregators = 2;
  options.stages_per_host = 4;
  auto deployment = Deployment::create(net, options).value();
  ASSERT_EQ(deployment->global().known_aggregators(), 2u);

  fault::FaultPlan plan;
  plan.crash_aggregator(0, millis(1), millis(20));
  FaultDriver driver(*deployment, plan);

  ASSERT_TRUE(driver.advance_to(millis(5)).is_ok());
  // Aggregator 0's subtree fails over to aggregator 1 and re-registers.
  EXPECT_TRUE(eventually([&] {
    return deployment->global().known_aggregators() == 1 &&
           deployment->global().registered_stages() == 8;
  }));
  EXPECT_TRUE(deployment->global().run_cycle().is_ok());

  // The scripted restart brings aggregator 0 back online.
  ASSERT_TRUE(driver.advance_to(millis(25)).is_ok());
  EXPECT_TRUE(eventually(
      [&] { return deployment->global().known_aggregators() == 2; }));
  EXPECT_TRUE(deployment->global().run_cycle().is_ok());
}

TEST(FaultDriverTest, SimAndRuntimeAgreeOnPlanTimeline) {
  // Cross-validation: compile one plan, replay it against a live
  // deployment with FaultDriver, and check that at every checkpoint the
  // set of live stage hosts matches the availability gates
  // (CompiledPlan::stage_up) the simulator consults for the same plan —
  // then run the plan through the simulator itself and check it
  // completes with the faults accounted.
  const auto plan = fault::FaultPlan::parse(R"(quorum 0.7
timeout_ms 2
crash stage 1 at_ms 1 for_ms 4
crash stage 3 at_ms 2 for_ms 0
)");
  ASSERT_TRUE(plan.is_ok()) << plan.status();

  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 4;
  options.stages_per_host = 1;
  options.collect_quorum = plan->quorum;
  auto deployment = Deployment::create(net, options).value();
  FaultDriver driver(*deployment, *plan);

  const auto live_per_compiled = [&](Nanos t) {
    std::size_t up = 0;
    for (std::size_t i = 0; i < driver.compiled().num_stages(); ++i) {
      if (driver.compiled().stage_up(i, t)) ++up;
    }
    return up;
  };
  for (const Nanos t :
       {micros(500), micros(1500), millis(3), millis(8), millis(12)}) {
    ASSERT_TRUE(driver.advance_to(t).is_ok());
    const std::size_t expected = live_per_compiled(t);
    EXPECT_TRUE(eventually([&] {
      return deployment->global().registered_stages() == expected;
    })) << "at t=" << to_millis(t) << "ms: runtime="
        << deployment->global().registered_stages()
        << " compiled=" << expected;
  }
  // The control plane stays live over the survivors.
  EXPECT_TRUE(deployment->global().run_cycle().is_ok());

  // Same plan through the simulator: the run completes every cycle, the
  // crash windows inject faults, and the dead stage degrades cycles.
  sim::ExperimentConfig config;
  config.num_stages = 4;
  config.stages_per_job = 4;
  config.max_cycles = 8;
  config.duration = millis(200);
  config.fault_plan = &*plan;
  const auto result = sim::run_experiment(config);
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(result->cycles, 8u);
  EXPECT_GT(result->faults_injected, 0u);
  EXPECT_GT(result->degraded_cycles, 0u);
  EXPECT_GE(result->stale_stage_reports, result->degraded_cycles);
}

/// A hand-rolled direct stage whose collect-reply behaviour the test
/// controls exactly: it can be muted (wedged: connected but silent), and
/// it can slow its replies so another stage's fresh reply wins the race
/// into a quorum wave. Enforce batches are always acked promptly.
class ScriptedStage {
 public:
  ScriptedStage(transport::InProcNetwork& net, std::string address,
                StageId stage)
      : endpoint_(net.bind(address, {}).value()), stage_(stage) {
    up_ = endpoint_->connect("global").value();
    endpoint_->set_frame_handler([this](ConnId conn, wire::Frame frame) {
      switch (static_cast<proto::MessageType>(frame.type)) {
        case proto::MessageType::kCollectRequest: {
          if (muted.load()) return;
          if (const Nanos delay{reply_delay.load()}; delay > Nanos{0}) {
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(delay.count()));
          }
          const auto collect = proto::from_frame<proto::CollectRequest>(frame);
          if (!collect.is_ok()) return;
          proto::StageMetrics reply;
          reply.cycle_id = collect->cycle_id;
          reply.stage_id = stage_;
          reply.job_id = JobId{0};
          reply.data_iops = 300;
          (void)endpoint_->send(conn, proto::to_frame(reply));
          return;
        }
        case proto::MessageType::kEnforceBatch: {
          const auto batch = proto::from_frame<proto::EnforceBatch>(frame);
          if (!batch.is_ok()) return;
          proto::EnforceAck ack;
          ack.cycle_id = batch->cycle_id;
          ack.applied = static_cast<std::uint32_t>(batch->rules.size());
          (void)endpoint_->send(conn, proto::to_frame(ack));
          return;
        }
        default:
          return;
      }
    });
  }

  Status register_with_global() {
    proto::RegisterRequest request;
    request.info = {stage_, NodeId{stage_.value()}, JobId{0}, "scripted"};
    return endpoint_->send(up_, proto::to_frame(request));
  }

  void shutdown() { endpoint_->shutdown(); }

  std::atomic<bool> muted{false};
  std::atomic<std::int64_t> reply_delay{0};  // ns before a collect reply

 private:
  std::unique_ptr<transport::Endpoint> endpoint_;
  StageId stage_;
  ConnId up_;
};

TEST(RuntimeDegradedCycleTest, QuorumClosesCycleAndRecordsRecovery) {
  // A silent-but-connected stage (the hard failure mode: process alive,
  // thread wedged) under a collect quorum: the cycle closes on quorum,
  // is recorded degraded with the silent stage stale, and the stage's
  // first fresh reply afterwards yields a recovery-time sample.
  transport::InProcNetwork net;
  GlobalServerOptions gopts;
  gopts.core.budgets = {1000.0, 100.0};
  gopts.collect_quorum = 0.5;  // 1 of 2 replies closes a wave
  gopts.phase_timeout = millis(250);
  GlobalControllerServer global(net, "global", gopts);
  ASSERT_TRUE(global.start().is_ok());

  // `steady` answers every wave but slowly; `flaky` wedges for cycle 1.
  ScriptedStage steady(net, "steady", StageId{1});
  steady.reply_delay.store(millis(5).count());
  ScriptedStage flaky(net, "flaky", StageId{2});
  flaky.muted.store(true);
  ASSERT_TRUE(steady.register_with_global().is_ok());
  ASSERT_TRUE(flaky.register_with_global().is_ok());
  ASSERT_TRUE(eventually([&] { return global.registered_stages() == 2; }));

  // Cycle 1: the wedged stage misses the wave; quorum closes the cycle
  // degraded (stale = 1) instead of stalling the control plane.
  ASSERT_TRUE(global.run_cycle().is_ok());
  EXPECT_EQ(global.stats().degraded_cycles(), 1u);
  EXPECT_EQ(global.stats().stale_stages(), 1u);
  EXPECT_EQ(global.stats().recovery().count(), 0u);

  // Cycle 2: the stage answers again — and first, since `steady` delays
  // its replies — so its outage window closes and the gap is recorded as
  // recovery time before the quorum wave returns.
  flaky.muted.store(false);
  ASSERT_TRUE(global.run_cycle().is_ok());
  EXPECT_EQ(global.stats().recovery().count(), 1u);
  EXPECT_GT(global.stats().recovery().mean(), 0.0);
  EXPECT_GE(global.stats().degraded_cycles(), 1u);

  flaky.shutdown();
  steady.shutdown();
  global.shutdown();
}

}  // namespace
}  // namespace sds::runtime
