// Trace-context propagation under chaos: dropped, duplicated and
// delayed deliveries must never corrupt or leak the wire-level trace
// trailer. Duplicates carry the identical context — so they derive
// identical span ids downstream, which is how trace_report flags them.
#include "fault/chaos_transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "telemetry/span_tracer.h"
#include "transport/inproc.h"

namespace sds::fault {
namespace {

using namespace std::chrono_literals;

wire::Frame traced_frame(std::uint64_t trace_id) {
  wire::Frame frame;
  frame.type = 1;
  frame.payload.assign(4, 0x5A);
  frame.trace = wire::TraceContext{
      trace_id, telemetry::derive_span_id(trace_id, 0, "collect")};
  return frame;
}

template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds deadline = 2000ms) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

/// Thread-safe sink recording each delivered frame's trace context.
struct ContextSink {
  std::mutex mu;
  std::vector<std::optional<wire::TraceContext>> seen;

  auto handler() {
    return [this](ConnId, wire::Frame frame) {
      const std::lock_guard<std::mutex> lock(mu);
      seen.push_back(frame.trace);
    };
  }
  std::size_t count() {
    const std::lock_guard<std::mutex> lock(mu);
    return seen.size();
  }
  std::vector<std::optional<wire::TraceContext>> snapshot() {
    const std::lock_guard<std::mutex> lock(mu);
    return seen;
  }
};

TEST(ChaosTraceTest, DroppedTracedFramesVanishCleanly) {
  transport::InProcNetwork base;
  ChaosNetwork::Options options;
  options.drop_probability = 1.0;
  ChaosNetwork net(base, options);
  auto server = net.bind("server", {}).value();
  auto client = net.bind("client", {}).value();
  ContextSink sink;
  server->set_frame_handler(sink.handler());
  const ConnId conn = client->connect("server").value();
  for (std::uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(client->send(conn, traced_frame(i)).is_ok());
  }
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(net.stats().dropped, 10u);
}

TEST(ChaosTraceTest, DuplicatedFramesCarryIdenticalContext) {
  transport::InProcNetwork base;
  ChaosNetwork::Options options;
  options.duplicate_probability = 1.0;
  ChaosNetwork net(base, options);
  auto server = net.bind("server", {}).value();
  auto client = net.bind("client", {}).value();
  ContextSink sink;
  server->set_frame_handler(sink.handler());
  const ConnId conn = client->connect("server").value();
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(client->send(conn, traced_frame(i)).is_ok());
  }
  ASSERT_TRUE(eventually([&] { return sink.count() == 10; }));
  EXPECT_EQ(net.stats().duplicated, 5u);

  // Every delivery kept its context; both copies of each frame carry the
  // same (trace, parent) pair, so downstream derive_span_id yields the
  // same id twice — detectable, never corrupted.
  std::map<std::uint64_t, int> per_trace;
  for (const auto& ctx : sink.snapshot()) {
    ASSERT_TRUE(ctx.has_value());
    EXPECT_EQ(ctx->parent_span,
              telemetry::derive_span_id(ctx->trace_id, 0, "collect"));
    ++per_trace[ctx->trace_id];
  }
  ASSERT_EQ(per_trace.size(), 5u);
  for (const auto& [trace, copies] : per_trace) {
    EXPECT_EQ(copies, 2) << "trace " << trace;
  }
}

TEST(ChaosTraceTest, DelayedFramesArriveWithContextIntact) {
  transport::InProcNetwork base;
  ChaosNetwork::Options options;
  options.delay_probability = 1.0;
  options.delay = millis(5);
  ChaosNetwork net(base, options);
  auto server = net.bind("server", {}).value();
  auto client = net.bind("client", {}).value();
  ContextSink sink;
  server->set_frame_handler(sink.handler());
  const ConnId conn = client->connect("server").value();
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(client->send(conn, traced_frame(i)).is_ok());
  }
  ASSERT_TRUE(eventually([&] { return sink.count() == 5; }));
  EXPECT_EQ(net.stats().delayed, 5u);
  for (const auto& ctx : sink.snapshot()) {
    ASSERT_TRUE(ctx.has_value());
    EXPECT_EQ(ctx->parent_span,
              telemetry::derive_span_id(ctx->trace_id, 0, "collect"));
  }
}

TEST(ChaosTraceTest, ContextNeverLeaksAcrossFrames) {
  // Interleave traced and untraced frames through the chaos shim: an
  // untraced frame must never pick up a neighbor's context.
  transport::InProcNetwork base;
  ChaosNetwork net(base, ChaosNetwork::Options{});
  auto server = net.bind("server", {}).value();
  auto client = net.bind("client", {}).value();
  ContextSink sink;
  server->set_frame_handler(sink.handler());
  const ConnId conn = client->connect("server").value();
  for (std::uint64_t i = 1; i <= 10; ++i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(client->send(conn, traced_frame(i)).is_ok());
    } else {
      wire::Frame bare;
      bare.type = 1;
      bare.payload.assign(4, 0x5A);
      ASSERT_TRUE(client->send(conn, bare).is_ok());
    }
  }
  ASSERT_TRUE(eventually([&] { return sink.count() == 10; }));
  std::size_t traced = 0;
  for (const auto& ctx : sink.snapshot()) {
    if (ctx.has_value()) {
      ++traced;
      EXPECT_EQ(ctx->trace_id % 2, 0u);
    }
  }
  EXPECT_EQ(traced, 5u);
}

}  // namespace
}  // namespace sds::fault
