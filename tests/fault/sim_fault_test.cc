// Fault-injection determinism and degraded-cycle semantics in the
// simulator: a faulted run must be bit-identical across lane counts and
// repeated runs (injection is a pure function of plan seed, cycle,
// entity and virtual time), crashed stages must surface as degraded
// cycles with stale-stage accounting instead of hangs, and restarts
// must produce recovery-time samples.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "fault/plan.h"
#include "sim/experiment.h"

namespace sds::sim {
namespace {

std::string bits(double v) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(v));
  std::memcpy(&u, &v, sizeof(u));
  std::ostringstream out;
  out << std::hex << u;
  return std::move(out).str();
}

/// Bit-exact digest of everything a faulted run reports.
std::string fingerprint(const ExperimentResult& r) {
  std::ostringstream out;
  out << r.cycles << ';' << r.elapsed.count() << ';' << r.events_executed
      << ';' << bits(r.stats.mean_total_ms()) << ';'
      << bits(r.final_data_limit_sum) << ',' << bits(r.final_meta_limit_sum)
      << ';';
  for (const double v : r.final_data_limits) out << bits(v) << ',';
  out << ';' << r.degraded_cycles << ';' << r.stale_stage_reports << ';'
      << r.faults_injected << ';' << bits(r.mean_recovery_ms) << ';'
      << bits(r.mean_data_utilization);
  return std::move(out).str();
}

ExperimentConfig base_config(std::size_t stages, std::size_t aggregators) {
  ExperimentConfig config;
  config.num_stages = stages;
  config.num_aggregators = aggregators;
  config.stages_per_job = 10;
  config.duration = millis(120);
  config.max_cycles = 12;
  config.lanes = 1;
  return config;
}

/// A plan exercising every injection class at once.
fault::FaultPlan busy_plan() {
  fault::FaultPlan plan;
  plan.seed = 3;
  plan.quorum = 0.85;
  plan.phase_timeout = millis(2);
  plan.drop_probability = 0.05;
  plan.duplicate_probability = 0.03;
  plan.delay_probability = 0.05;
  plan.delay = micros(137);
  plan.crash_stage(2, millis(5), millis(15));
  plan.slow(0, 5, millis(0), millis(40), 3.0);
  plan.partition(8, 11, millis(10), millis(30));
  plan.stage_mtbf_s = 0.2;
  plan.stage_downtime_s = 0.02;
  return plan;
}

TEST(SimFaultTest, FaultedRunIsBitIdenticalAcrossLanesAndRepeats) {
  const fault::FaultPlan plan = busy_plan();
  struct Topo {
    const char* name;
    std::size_t stages;
    std::size_t aggregators;
  };
  for (const Topo topo : {Topo{"flat", 60, 0}, Topo{"hier", 64, 4}}) {
    for (const std::uint64_t seed : {42u, 7u}) {
      ExperimentConfig config = base_config(topo.stages, topo.aggregators);
      config.seed = seed;
      config.fault_plan = &plan;
      const auto reference = run_experiment(config);
      ASSERT_TRUE(reference.is_ok())
          << topo.name << ": " << reference.status();
      EXPECT_GT(reference->faults_injected, 0u) << topo.name;
      const std::string want = fingerprint(*reference);
      for (const std::size_t lanes : {1u, 2u, 4u}) {
        config.lanes = lanes;
        const auto result = run_experiment(config);
        ASSERT_TRUE(result.is_ok()) << topo.name << " lanes=" << lanes;
        EXPECT_EQ(fingerprint(*result), want)
            << topo.name << " seed=" << seed << " lanes=" << lanes;
      }
    }
  }
}

TEST(SimFaultTest, PermanentStageCrashDegradesCyclesInsteadOfHanging) {
  ExperimentConfig config = base_config(40, 0);
  fault::FaultPlan plan;
  plan.quorum = 0.9;
  plan.phase_timeout = millis(2);
  plan.crash_stage(3, millis(1));  // never comes back
  config.fault_plan = &plan;
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_GT(result->cycles, 1u);  // progress despite the dead stage
  EXPECT_GT(result->degraded_cycles, 0u);
  EXPECT_GT(result->stale_stage_reports, 0u);
  EXPECT_GT(result->faults_injected, 0u);
  EXPECT_EQ(result->stats.degraded_cycles(), result->degraded_cycles);
  EXPECT_EQ(result->stats.stale_stages(), result->stale_stage_reports);
}

TEST(SimFaultTest, RestartProducesRecoverySample) {
  ExperimentConfig config = base_config(40, 0);
  fault::FaultPlan plan;
  plan.quorum = 0.9;
  plan.phase_timeout = millis(2);
  // Stress cycles run back-to-back (cycle_period = 0), so the whole run
  // covers only a few ms of virtual time; keep the outage inside it.
  plan.crash_stage(5, millis(1), millis(5));
  config.fault_plan = &plan;
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_GT(result->mean_recovery_ms, 0.0);
  EXPECT_GT(result->stats.recovery().count(), 0u);
}

TEST(SimFaultTest, AggregatorCrashMarksWholeSubtreeStale) {
  ExperimentConfig config = base_config(64, 4);
  fault::FaultPlan plan;
  plan.quorum = 0.7;
  plan.phase_timeout = millis(2);
  plan.crash_aggregator(0, millis(1));  // never comes back
  config.fault_plan = &plan;
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_GT(result->cycles, 1u);
  EXPECT_GT(result->degraded_cycles, 0u);
  // Each degraded cycle loses aggregator 0's 16-stage subtree.
  EXPECT_GE(result->stale_stage_reports, result->degraded_cycles * 16);
}

TEST(SimFaultTest, NullAndEmptyPlansMatchAndReportNothing) {
  ExperimentConfig config = base_config(50, 0);
  const auto bare = run_experiment(config);
  ASSERT_TRUE(bare.is_ok());
  fault::FaultPlan empty;
  config.fault_plan = &empty;  // empty plan: hooks must vanish entirely
  const auto with_empty = run_experiment(config);
  ASSERT_TRUE(with_empty.is_ok());
  EXPECT_EQ(fingerprint(*bare), fingerprint(*with_empty));
  EXPECT_EQ(bare->degraded_cycles, 0u);
  EXPECT_EQ(bare->faults_injected, 0u);
  EXPECT_DOUBLE_EQ(bare->mean_recovery_ms, 0.0);
}

TEST(SimFaultTest, UnsupportedTopologiesRejected) {
  fault::FaultPlan plan;
  plan.drop_probability = 0.01;

  ExperimentConfig coordinated = base_config(40, 0);
  coordinated.coordinated_peers = 2;
  coordinated.fault_plan = &plan;
  EXPECT_EQ(run_experiment(coordinated).status().code(),
            StatusCode::kInvalidArgument);

  ExperimentConfig deep = base_config(64, 4);
  deep.num_super_aggregators = 2;
  deep.fault_plan = &plan;
  EXPECT_EQ(run_experiment(deep).status().code(),
            StatusCode::kInvalidArgument);

  ExperimentConfig serial = base_config(64, 4);
  serial.parallel_fanout = false;
  serial.fault_plan = &plan;
  EXPECT_EQ(run_experiment(serial).status().code(),
            StatusCode::kInvalidArgument);

  ExperimentConfig invalid = base_config(40, 0);
  fault::FaultPlan bad;
  bad.drop_probability = 2.0;
  invalid.fault_plan = &bad;
  EXPECT_EQ(run_experiment(invalid).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SimFaultTest, MessageFaultsAloneStillCompleteEveryStage) {
  // Pure message chaos (no crashes): every cycle still terminates and
  // the run stays deterministic.
  ExperimentConfig config = base_config(48, 0);
  fault::FaultPlan plan;
  plan.seed = 9;
  plan.quorum = 0.8;
  plan.phase_timeout = millis(2);
  plan.drop_probability = 0.1;
  plan.duplicate_probability = 0.05;
  plan.delay_probability = 0.1;
  config.fault_plan = &plan;
  const auto a = run_experiment(config);
  const auto b = run_experiment(config);
  ASSERT_TRUE(a.is_ok()) << a.status();
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a->cycles, config.max_cycles);
  EXPECT_GT(a->faults_injected, 0u);
  EXPECT_EQ(fingerprint(*a), fingerprint(*b));
}

}  // namespace
}  // namespace sds::sim
