// Fault metrics through the existing exporters: the degraded-cycle
// counters and the recovery histogram that CycleStats::bind registers,
// and the injection counter a faulted sim run feeds — golden Prometheus
// lines for the deterministic parts, value cross-checks against the
// ExperimentResult for the end-to-end run.
#include <gtest/gtest.h>

#include <string>

#include "core/cycle_stats.h"
#include "fault/plan.h"
#include "sim/experiment.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"

namespace sds {
namespace {

TEST(FaultTelemetryTest, CycleStatsExportsDegradedCountersGolden) {
  telemetry::MetricsRegistry registry;
  core::CycleStats stats;
  stats.bind(&registry, {{"configuration", "test"}});

  stats.record_degraded(/*stale_stages=*/3);
  stats.record_degraded(/*stale_stages=*/2);
  stats.record_recovery(millis(5));

  const std::string prom = telemetry::to_prometheus_text(registry.snapshot());
  EXPECT_NE(prom.find("# TYPE sds_cycle_degraded_total counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("sds_cycle_degraded_total{configuration=\"test\"} 2"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("sds_stage_stale_total{configuration=\"test\"} 5"),
            std::string::npos)
      << prom;
  // Histograms render as summaries; sum and count are exact.
  EXPECT_NE(prom.find("sds_recovery_time_ns_sum{configuration=\"test\"} "
                      "5000000"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("sds_recovery_time_ns_count{configuration=\"test\"} 1"),
            std::string::npos)
      << prom;
}

TEST(FaultTelemetryTest, FaultedSimRunFeedsExportersEndToEnd) {
  // A faulted run with a registry attached must surface the same numbers
  // the ExperimentResult reports, through both exporter formats.
  const auto plan = fault::FaultPlan::parse(R"(seed 11
quorum 0.7
timeout_ms 2
crash stage 1 at_ms 1 for_ms 4
drop 0.05
)");
  ASSERT_TRUE(plan.is_ok()) << plan.status();

  telemetry::MetricsRegistry registry;
  sim::ExperimentConfig config;
  config.num_stages = 4;
  config.stages_per_job = 4;
  config.max_cycles = 8;
  config.duration = millis(200);
  config.fault_plan = &*plan;
  config.metrics = &registry;
  config.telemetry_label = "faulted";
  const auto result = sim::run_experiment(config);
  ASSERT_TRUE(result.is_ok()) << result.status();
  ASSERT_GT(result->faults_injected, 0u);
  ASSERT_GT(result->degraded_cycles, 0u);

  const std::string prom = telemetry::to_prometheus_text(registry.snapshot());
  EXPECT_NE(
      prom.find("sds_fault_injected_total{component=\"sim\","
                "configuration=\"faulted\"} " +
                std::to_string(result->faults_injected)),
      std::string::npos)
      << prom;
  EXPECT_NE(prom.find("sds_cycle_degraded_total{component=\"sim\","
                      "configuration=\"faulted\"} " +
                      std::to_string(result->degraded_cycles)),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("sds_stage_stale_total{component=\"sim\","
                      "configuration=\"faulted\"} " +
                      std::to_string(result->stale_stage_reports)),
            std::string::npos)
      << prom;
  // The recovery histogram is registered by the run's bind() even before
  // any sample lands, so the family is always scrapeable.
  EXPECT_NE(prom.find("sds_recovery_time_ns"), std::string::npos) << prom;

  const std::string jsonl = telemetry::to_jsonl(registry.snapshot());
  for (const char* name :
       {"sds_fault_injected_total", "sds_cycle_degraded_total",
        "sds_stage_stale_total", "sds_recovery_time_ns"}) {
    EXPECT_NE(jsonl.find(std::string("\"name\":\"") + name + "\""),
              std::string::npos)
        << "missing " << name;
  }
}

}  // namespace
}  // namespace sds
