// ChaosNetwork: the fault-wrapping transport shim the live runtime uses
// to inject message drop/duplication/delay. Probabilities of 0 and 1
// give exact expectations; the delay path must deliver eventually.
#include "fault/chaos_transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/queue.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "transport/inproc.h"

namespace sds::fault {
namespace {

using namespace std::chrono_literals;

wire::Frame test_frame(std::uint16_t type) {
  wire::Frame frame;
  frame.type = type;
  frame.payload.assign(4, 0x5A);
  return frame;
}

template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds deadline = 2000ms) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

TEST(ChaosTransportTest, ZeroProbabilitiesPassThrough) {
  transport::InProcNetwork base;
  ChaosNetwork net(base, ChaosNetwork::Options{});
  auto server = net.bind("server", {}).value();
  auto client = net.bind("client", {}).value();
  std::atomic<int> received{0};
  server->set_frame_handler([&](ConnId, wire::Frame) { ++received; });
  const ConnId conn = client->connect("server").value();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client->send(conn, test_frame(1)).is_ok());
  }
  ASSERT_TRUE(eventually([&] { return received.load() == 50; }));
  EXPECT_EQ(net.stats().total(), 0u);
}

TEST(ChaosTransportTest, DropProbabilityOneDropsEverything) {
  transport::InProcNetwork base;
  ChaosNetwork::Options options;
  options.drop_probability = 1.0;
  ChaosNetwork net(base, options);
  auto server = net.bind("server", {}).value();
  auto client = net.bind("client", {}).value();
  std::atomic<int> received{0};
  server->set_frame_handler([&](ConnId, wire::Frame) { ++received; });
  const ConnId conn = client->connect("server").value();
  for (int i = 0; i < 20; ++i) {
    // A dropped send still reports OK — the sender cannot tell.
    ASSERT_TRUE(client->send(conn, test_frame(1)).is_ok());
  }
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(received.load(), 0);
  EXPECT_EQ(net.stats().dropped, 20u);
}

TEST(ChaosTransportTest, DuplicateProbabilityOneDoublesDelivery) {
  transport::InProcNetwork base;
  ChaosNetwork::Options options;
  options.duplicate_probability = 1.0;
  ChaosNetwork net(base, options);
  auto server = net.bind("server", {}).value();
  auto client = net.bind("client", {}).value();
  std::atomic<int> received{0};
  server->set_frame_handler([&](ConnId, wire::Frame) { ++received; });
  const ConnId conn = client->connect("server").value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client->send(conn, test_frame(1)).is_ok());
  }
  ASSERT_TRUE(eventually([&] { return received.load() == 20; }));
  EXPECT_EQ(net.stats().duplicated, 10u);
}

TEST(ChaosTransportTest, DelayedFramesStillArrive) {
  transport::InProcNetwork base;
  ChaosNetwork::Options options;
  options.delay_probability = 1.0;
  options.delay = millis(5);
  ChaosNetwork net(base, options);
  auto server = net.bind("server", {}).value();
  auto client = net.bind("client", {}).value();
  std::atomic<int> received{0};
  server->set_frame_handler([&](ConnId, wire::Frame) { ++received; });
  const ConnId conn = client->connect("server").value();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client->send(conn, test_frame(1)).is_ok());
  }
  ASSERT_TRUE(eventually([&] { return received.load() == 5; }));
  EXPECT_EQ(net.stats().delayed, 5u);
}

TEST(ChaosTransportTest, PlanConvenienceConstructorAndMetrics) {
  transport::InProcNetwork base;
  FaultPlan plan;
  plan.seed = 4;
  plan.drop_probability = 1.0;
  telemetry::MetricsRegistry metrics;
  ChaosNetwork net(base, plan, &metrics);
  auto server = net.bind("server", {}).value();
  auto client = net.bind("client", {}).value();
  server->set_frame_handler([](ConnId, wire::Frame) {});
  const ConnId conn = client->connect("server").value();
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(client->send(conn, test_frame(1)).is_ok());
  }
  EXPECT_EQ(net.stats().dropped, 7u);
  const std::string text = telemetry::to_prometheus_text(metrics.snapshot());
  EXPECT_NE(text.find("sds_fault_injected_total"), std::string::npos) << text;
}

}  // namespace
}  // namespace sds::fault
