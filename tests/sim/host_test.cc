#include "sim/host.h"

#include <gtest/gtest.h>

namespace sds::sim {
namespace {

FronteraProfile simple_profile() {
  FronteraProfile p;
  p.wire_latency = micros(10);
  p.nic_bytes_per_ns = 1.0;  // 1 GB/s
  p.msg_overhead_bytes = 0;
  p.cpu_send_fixed = micros(2);
  p.cpu_send_per_byte_ns = 0;
  p.cpu_recv_fixed = micros(3);
  p.cpu_recv_per_byte_ns = 0;
  return p;
}

TEST(SimHostTest, RunSerializesCpuWork) {
  Engine engine;
  FronteraProfile profile = simple_profile();
  SimHost host(engine, profile, "h");

  std::vector<Nanos> completions;
  host.run(micros(5), [&] { completions.push_back(engine.now()); });
  host.run(micros(5), [&] { completions.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], micros(5));
  EXPECT_EQ(completions[1], micros(10));  // queued behind the first
  EXPECT_EQ(host.busy(), micros(10));
}

TEST(SimHostTest, SendChargesCpuAndDelaysByWire) {
  Engine engine;
  FronteraProfile profile = simple_profile();
  SimHost host(engine, profile, "h");

  Nanos arrival{-1};
  host.send(1000, [&] { arrival = engine.now(); });
  engine.run();
  // send CPU 2 us + serialization 1000 B at 1 B/ns = 1 us + latency 10 us.
  EXPECT_EQ(arrival, micros(2) + micros(1) + micros(10));
  EXPECT_EQ(host.bytes_tx(), 1000u);
  EXPECT_EQ(host.messages_tx(), 1u);
}

TEST(SimHostTest, ExtraCpuAddsToSendCost) {
  Engine engine;
  FronteraProfile profile = simple_profile();
  SimHost host(engine, profile, "h");
  Nanos arrival{-1};
  host.send(0, [&] { arrival = engine.now(); }, micros(7));
  engine.run();
  EXPECT_EQ(arrival, micros(2) + micros(7) + micros(10));
}

TEST(SimHostTest, NicSerializesConcurrentSends) {
  Engine engine;
  FronteraProfile profile = simple_profile();
  profile.cpu_send_fixed = Nanos{0};
  SimHost host(engine, profile, "h");

  std::vector<Nanos> arrivals;
  for (int i = 0; i < 3; ++i) {
    host.send(1000, [&] { arrivals.push_back(engine.now()); });
  }
  engine.run();
  ASSERT_EQ(arrivals.size(), 3u);
  // Each 1000-byte message takes 1 us on the NIC; they queue.
  EXPECT_EQ(arrivals[0], micros(1) + micros(10));
  EXPECT_EQ(arrivals[1], micros(2) + micros(10));
  EXPECT_EQ(arrivals[2], micros(3) + micros(10));
}

TEST(SimHostTest, ReceiveCountsBytesAndChargesCpu) {
  Engine engine;
  FronteraProfile profile = simple_profile();
  SimHost host(engine, profile, "h");

  Nanos processed{-1};
  host.receive(500, [&] { processed = engine.now(); });
  engine.run();
  EXPECT_EQ(processed, micros(3));
  EXPECT_EQ(host.bytes_rx(), 500u);
  EXPECT_EQ(host.messages_rx(), 1u);
}

TEST(SimHostTest, MessageOverheadCountedOnWire) {
  Engine engine;
  FronteraProfile profile = simple_profile();
  profile.msg_overhead_bytes = 64;
  SimHost host(engine, profile, "h");
  host.send(100, [] {});
  host.receive(100, [] {});
  engine.run();
  EXPECT_EQ(host.bytes_tx(), 164u);
  EXPECT_EQ(host.bytes_rx(), 164u);
}

TEST(SimHostTest, CpuAndNicPipelineOverlap) {
  // CPU keeps producing while the NIC drains: total time for n messages
  // is ~max(n*cpu, n*wire), not their sum.
  Engine engine;
  FronteraProfile profile = simple_profile();
  profile.cpu_send_fixed = micros(2);
  profile.wire_latency = Nanos{0};
  SimHost host(engine, profile, "h");

  Nanos last{0};
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    host.send(1000, [&] { last = engine.now(); });  // 1 us wire each
  }
  engine.run();
  // CPU path: 200 us total; wire adds only its last microsecond.
  EXPECT_GE(last, micros(200));
  EXPECT_LE(last, micros(202));
}

TEST(SimHostTest, ResetAccounting) {
  Engine engine;
  FronteraProfile profile = simple_profile();
  SimHost host(engine, profile, "h");
  host.send(100, [] {});
  host.run(micros(1), [] {});
  engine.run();
  host.reset_accounting();
  EXPECT_EQ(host.bytes_tx(), 0u);
  EXPECT_EQ(host.busy(), Nanos{0});
  EXPECT_EQ(host.messages_tx(), 0u);
}

}  // namespace
}  // namespace sds::sim
