// Multi-lane parallel simulation (sim/parallel.h): the tentpole claim is
// that a lane count never changes results. These tests pin that down at
// three levels — the Engine's lane hooks, the LaneRunner's merge/barrier
// semantics, and whole experiments fingerprinted bit-for-bit across lane
// counts, topologies, and seeds (a doubled field differing in one ULP
// fails the fingerprint comparison).

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "common/thread_pool.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "sim/parallel.h"
#include "telemetry/metrics.h"

namespace sds::sim {
namespace {

// ---------------------------------------------------------------------------
// Engine lane hooks

TEST(EngineLaneHooks, SameLaneScheduleCrossRunsLocally) {
  Engine e;
  e.configure_lane(3, /*capture_cross=*/true);
  std::vector<int> ran;
  e.schedule_cross(3, Nanos{10}, [&] { ran.push_back(1); });
  EXPECT_TRUE(e.outbox_empty());
  e.run();
  EXPECT_EQ(ran, std::vector<int>{1});
}

TEST(EngineLaneHooks, SerialEngineRoutesCrossCallsLocally) {
  // An unconfigured (serial) engine treats any destination lane as local:
  // schedule_cross degenerates to schedule_at.
  Engine e;
  std::vector<int> ran;
  e.schedule_cross(7, Nanos{20}, [&] { ran.push_back(7); });
  e.schedule_cross(0, Nanos{10}, [&] { ran.push_back(0); });
  EXPECT_TRUE(e.outbox_empty());
  e.run();
  EXPECT_EQ(ran, (std::vector<int>{0, 7}));
  EXPECT_EQ(e.now(), Nanos{20});
}

TEST(EngineLaneHooks, CrossLaneCallsBufferInCreationOrder) {
  Engine e;
  e.configure_lane(0, /*capture_cross=*/true);
  std::vector<int> ran;
  e.schedule_cross(1, Nanos{100}, [&] { ran.push_back(100); });
  e.schedule_cross(2, Nanos{50}, [&] { ran.push_back(50); });
  e.schedule_cross(0, Nanos{10}, [&] { ran.push_back(10); });
  ASSERT_EQ(e.outbox().size(), 2u);
  // Outbox keeps creation order; src_seq is the strictly increasing
  // per-engine merge tie-break.
  EXPECT_EQ(e.outbox()[0].at, Nanos{100});
  EXPECT_EQ(e.outbox()[0].dest_lane, 1u);
  EXPECT_EQ(e.outbox()[1].at, Nanos{50});
  EXPECT_EQ(e.outbox()[1].dest_lane, 2u);
  EXPECT_LT(e.outbox()[0].src_seq, e.outbox()[1].src_seq);
  e.run();  // only the local event executes
  EXPECT_EQ(ran, std::vector<int>{10});
}

TEST(EngineLaneHooks, RunBeforeIsStrictAndLeavesClockAtLastEvent) {
  Engine e;
  std::vector<std::int64_t> ran;
  for (const std::int64_t t : {10, 20, 30}) {
    e.schedule_at(Nanos{t}, [&ran, t] { ran.push_back(t); });
  }
  Nanos next{0};
  ASSERT_TRUE(e.peek_next(next));
  EXPECT_EQ(next, Nanos{10});
  // The bound is exclusive: the event *at* 20 must not run.
  e.run_before(Nanos{20});
  EXPECT_EQ(ran, std::vector<std::int64_t>{10});
  // Unlike run_until, the clock stays at the last executed event so the
  // lane cannot advance past events other lanes may still mail it.
  EXPECT_EQ(e.now(), Nanos{10});
  e.run_before(Nanos{31});
  EXPECT_EQ(ran, (std::vector<std::int64_t>{10, 20, 30}));
  EXPECT_EQ(e.now(), Nanos{30});
  EXPECT_TRUE(e.empty());
}

TEST(EngineLaneHooks, AdvanceToNeverRewinds) {
  Engine e;
  e.advance_to(Nanos{50});
  EXPECT_EQ(e.now(), Nanos{50});
  e.advance_to(Nanos{10});
  EXPECT_EQ(e.now(), Nanos{50});
}

// ---------------------------------------------------------------------------
// LaneRunner semantics

/// Thread-safe event recorder: lane windows may run on worker threads.
struct Recorder {
  Mutex mu;
  std::vector<std::string> order;

  void add(std::string entry) {
    MutexLock lock(mu);
    order.push_back(std::move(entry));
  }
};

/// A cross-lane ping-pong chain: the same logical schedule executed with
/// any lane count. Each hop records its virtual time; the chain's trace
/// must be identical whether hops cross lanes or stay local.
std::vector<std::string> run_pingpong(std::size_t lanes,
                                      bool force_threads = false) {
  LaneRunner::Options opt;
  opt.lanes = lanes;
  opt.lookahead = micros(5);
  opt.seed = 1;
  opt.force_threads = force_threads;
  LaneRunner runner(opt);
  EXPECT_EQ(runner.threaded(), force_threads && lanes > 1);
  const auto n = static_cast<std::uint32_t>(runner.lanes());
  Recorder rec;
  std::function<void(std::uint32_t, int)> hop;
  hop = [&](std::uint32_t at_lane, int depth) {
    Engine& e = runner.lane(at_lane);
    rec.add("hop" + std::to_string(depth) + "@" +
            std::to_string(e.now().count()));
    if (depth == 6) return;
    const std::uint32_t next = (at_lane + 1) % n;
    e.schedule_cross(next, e.now() + opt.lookahead,
                     [&hop, next, depth] { hop(next, depth + 1); });
  };
  runner.lane(0).schedule_at(Nanos{0}, [&hop] { hop(0, 0); });
  runner.run();
  EXPECT_EQ(runner.total_executed(), 7u);
  if (lanes > 1) {
    EXPECT_GT(runner.cross_messages(), 0u);
  }
  return rec.order;
}

TEST(LaneRunnerTest, CrossLanePingPongMatchesSerialTrace) {
  const auto serial = run_pingpong(1);
  ASSERT_EQ(serial.size(), 7u);
  EXPECT_EQ(serial.front(), "hop0@0");
  EXPECT_EQ(serial.back(), "hop6@30000");  // 6 hops x 5 us lookahead
  EXPECT_EQ(run_pingpong(2), serial);
  EXPECT_EQ(run_pingpong(3), serial);
}

// Same schedule through the worker team (forced on, so the cross-thread
// round hand-off runs — and runs under TSan — even on a 1-core box,
// where the runner would otherwise always fall back to inline lanes).
TEST(LaneRunnerTest, WorkerTeamMatchesInlineTrace) {
  const auto serial = run_pingpong(1);
  EXPECT_EQ(run_pingpong(2, /*force_threads=*/true), serial);
  EXPECT_EQ(run_pingpong(3, /*force_threads=*/true), serial);
  EXPECT_EQ(run_pingpong(7, /*force_threads=*/true), serial);
}

TEST(LaneRunnerTest, BarriersRunBeforeSameTimestampLaneEvents) {
  LaneRunner::Options opt;
  opt.lanes = 2;
  opt.lookahead = micros(1);
  LaneRunner runner(opt);
  Recorder rec;
  runner.lane(0).schedule_at(Nanos{10}, [&rec] { rec.add("lane0@10"); });
  runner.lane(1).schedule_at(Nanos{10}, [&rec] { rec.add("lane1@10"); });
  runner.schedule_barrier_at(Nanos{10}, [&rec, &runner] {
    rec.add("barrier@10");
    EXPECT_EQ(runner.barrier_now(), Nanos{10});
  });
  runner.schedule_barrier_at(Nanos{20}, [&rec] { rec.add("barrier@20"); });
  runner.run();
  ASSERT_EQ(rec.order.size(), 4u);
  // The barrier at t runs before any lane event at t; the trailing
  // barrier fires after the lanes drain. Lane events of one window may
  // interleave in any thread order, so only the barrier positions are
  // asserted.
  EXPECT_EQ(rec.order.front(), "barrier@10");
  EXPECT_EQ(rec.order.back(), "barrier@20");
  EXPECT_EQ(runner.barriers_run(), 2u);
}

TEST(LaneRunnerTest, RngStreamsIndependentOfLaneCount) {
  LaneRunner::Options two;
  two.lanes = 2;
  two.lookahead = micros(1);
  two.seed = 99;
  LaneRunner::Options four = two;
  four.lanes = 4;
  LaneRunner r2(two);
  LaneRunner r4(four);
  for (std::size_t lane = 0; lane < 2; ++lane) {
    for (int draw = 0; draw < 8; ++draw) {
      EXPECT_EQ(r2.lane_rng(lane).next_u64(), r4.lane_rng(lane).next_u64())
          << "lane " << lane << " draw " << draw;
    }
  }
}

TEST(LaneRunnerTest, IdleCallbackSeedsNewWork) {
  LaneRunner::Options opt;
  opt.lanes = 2;
  opt.lookahead = micros(1);
  LaneRunner runner(opt);
  Recorder rec;
  int waves = 0;
  runner.set_idle_callback([&] {
    if (waves == 2) return false;
    ++waves;
    const Nanos at = runner.max_lane_now() + micros(1);
    runner.lane(1).schedule_at(at, [&rec, at] {
      rec.add("wave@" + std::to_string(at.count()));
    });
    return true;
  });
  runner.lane(0).schedule_at(Nanos{0}, [&rec] { rec.add("start"); });
  runner.run();
  EXPECT_EQ(rec.order,
            (std::vector<std::string>{"start", "wave@1000", "wave@2000"}));
}

// ---------------------------------------------------------------------------
// Whole-experiment bit-identity

/// Hex image of a double's exact bit pattern: one ULP of drift between a
/// serial and a parallel run changes the fingerprint.
std::string bits(double v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  return buf;
}

void append_hist(std::ostringstream& out, const Histogram& h) {
  out << h.count() << ',' << h.min() << ',' << h.max() << ',' << bits(h.mean())
      << ',' << bits(h.stddev()) << ';';
}

void append_usage(std::ostringstream& out, const ControllerUsage& u) {
  out << bits(u.cpu_percent) << ',' << bits(u.memory_gb) << ','
      << bits(u.transmitted_mbps) << ',' << bits(u.received_mbps) << ';';
}

/// Every externally visible field of an ExperimentResult, bit-exact.
std::string fingerprint(const ExperimentResult& r) {
  std::ostringstream out;
  append_hist(out, r.stats.collect());
  append_hist(out, r.stats.compute());
  append_hist(out, r.stats.enforce());
  append_hist(out, r.stats.total());
  out << r.cycles << ';' << r.elapsed.count() << ';';
  append_usage(out, r.global);
  append_usage(out, r.aggregator);
  append_usage(out, r.super_aggregator);
  out << r.events_executed << ';' << bits(r.final_data_limit_sum) << ','
      << bits(r.final_meta_limit_sum) << ';';
  for (const double v : r.final_data_limits) out << bits(v) << ',';
  out << ';';
  for (const double v : r.final_meta_limits) out << bits(v) << ',';
  out << ';' << bits(r.mean_data_utilization) << ','
      << bits(r.mean_meta_utilization);
  return std::move(out).str();
}

struct Topology {
  const char* name;
  std::size_t stages;
  std::size_t aggregators;
  std::size_t super_aggregators;
  std::size_t peers;
};

ExperimentConfig make_config(const Topology& topo, std::uint64_t seed) {
  ExperimentConfig config;
  config.num_stages = topo.stages;
  config.num_aggregators = topo.aggregators;
  config.num_super_aggregators = topo.super_aggregators;
  config.coordinated_peers = topo.peers;
  config.stages_per_job = 10;
  config.duration = millis(200);
  config.max_cycles = 12;
  config.seed = seed;
  config.lanes = 1;  // explicit: callers override; never the env default
  return config;
}

TEST(ParallelExperimentTest, BitIdenticalAcrossLaneCountsTopologiesSeeds) {
  // Lane counts beyond, below, and not dividing the unit count; a
  // non-divisible hierarchy (7 aggregators); a deep tree; coordinated
  // peers whose completion is joined by the idle callback.
  const Topology topologies[] = {
      {"flat", 120, 0, 0, 0},
      {"hier", 250, 7, 0, 0},
      {"deep", 200, 8, 2, 0},
      {"coordinated", 120, 0, 0, 3},
  };
  for (const auto& topo : topologies) {
    for (const std::uint64_t seed : {42ULL, 7ULL}) {
      auto config = make_config(topo, seed);
      const auto reference = run_experiment(config);
      ASSERT_TRUE(reference.is_ok())
          << topo.name << ": " << reference.status();
      const std::string want = fingerprint(*reference);
      for (const std::size_t lanes : {2, 4, 7}) {
        config.lanes = lanes;
        const auto result = run_experiment(config);
        ASSERT_TRUE(result.is_ok())
            << topo.name << " lanes=" << lanes << ": " << result.status();
        EXPECT_EQ(fingerprint(*result), want)
            << topo.name << " lanes=" << lanes << " seed=" << seed;
      }
    }
  }
}

TEST(ParallelExperimentTest, DeltaCollectBitIdenticalAcrossLaneCounts) {
  // The delta-collect path keeps per-stage framing state on the stage's
  // lane and wire counters per receiving lane, so sharding must not
  // change a single output bit — including the wire-byte accounting.
  const Topology topologies[] = {
      {"flat-delta", 120, 0, 0, 0},
      {"hier-delta", 250, 7, 0, 0},
  };
  for (const auto& topo : topologies) {
    auto config = make_config(topo, 42);
    config.delta_collect = true;
    config.delta_refresh = 8;  // several refresh waves within 12 cycles
    const auto reference = run_experiment(config);
    ASSERT_TRUE(reference.is_ok()) << topo.name << ": " << reference.status();
    ASSERT_GT(reference->collect_frames_delta, 0u) << topo.name;
    const std::string want = fingerprint(*reference);
    for (const std::size_t lanes : {2, 4}) {
      config.lanes = lanes;
      const auto result = run_experiment(config);
      ASSERT_TRUE(result.is_ok())
          << topo.name << " lanes=" << lanes << ": " << result.status();
      EXPECT_EQ(fingerprint(*result), want) << topo.name << " lanes=" << lanes;
      EXPECT_EQ(result->collect_wire_bytes, reference->collect_wire_bytes)
          << topo.name << " lanes=" << lanes;
      EXPECT_EQ(result->collect_frames_delta, reference->collect_frames_delta)
          << topo.name << " lanes=" << lanes;
    }
  }
}

TEST(ParallelExperimentTest, Fig6StyleSweepIsLaneCountInvariant) {
  // The fig6 comparison (flat vs one-aggregator hierarchy at equal
  // scale), diffed between serial and 4-lane runs.
  const Topology sweep[] = {
      {"fig6-flat", 500, 0, 0, 0},
      {"fig6-hier", 500, 1, 0, 0},
  };
  for (const auto& topo : sweep) {
    auto config = make_config(topo, 42);
    config.max_cycles = 5;
    const auto serial = run_experiment(config);
    ASSERT_TRUE(serial.is_ok()) << serial.status();
    config.lanes = 4;
    const auto parallel = run_experiment(config);
    ASSERT_TRUE(parallel.is_ok()) << parallel.status();
    EXPECT_EQ(fingerprint(*parallel), fingerprint(*serial)) << topo.name;
  }
}

/// Number of `sds_sim_lane_events_executed` gauges — one per effective
/// lane, the only externally observable trace of the lane count.
std::size_t lane_gauge_count(telemetry::MetricsRegistry& registry) {
  std::size_t count = 0;
  for (const auto& sample : registry.snapshot().samples) {
    if (sample.name == "sds_sim_lane_events_executed") ++count;
  }
  return count;
}

TEST(ParallelExperimentTest, EffectiveLanesClampToTopologyUnits) {
  // Hierarchical: lanes clamp to the aggregator count (subtrees are the
  // unit of lane-locality).
  {
    auto config = make_config({"hier", 120, 3, 0, 0}, 42);
    config.lanes = 7;
    telemetry::MetricsRegistry registry;
    config.metrics = &registry;
    ASSERT_TRUE(run_experiment(config).is_ok());
    EXPECT_EQ(lane_gauge_count(registry), 3u);
  }
  // Flat: stages are the unit, so the request is honored as-is.
  {
    auto config = make_config({"flat", 120, 0, 0, 0}, 42);
    config.lanes = 4;
    telemetry::MetricsRegistry registry;
    config.metrics = &registry;
    ASSERT_TRUE(run_experiment(config).is_ok());
    EXPECT_EQ(lane_gauge_count(registry), 4u);
  }
  // No wire latency means no conservative lookahead: forced serial.
  {
    auto config = make_config({"flat", 60, 0, 0, 0}, 42);
    config.lanes = 4;
    config.profile.wire_latency = Nanos{0};
    telemetry::MetricsRegistry registry;
    config.metrics = &registry;
    ASSERT_TRUE(run_experiment(config).is_ok());
    EXPECT_EQ(lane_gauge_count(registry), 1u);
  }
}

TEST(ParallelExperimentTest, EnvVarSelectsLaneCountWhenUnset) {
  const char* saved = std::getenv("SDSCALE_SIM_LANES");
  const std::string restore = saved == nullptr ? "" : saved;

  auto config = make_config({"flat", 60, 0, 0, 0}, 42);
  const auto reference = run_experiment(config);
  ASSERT_TRUE(reference.is_ok());
  const std::string want = fingerprint(*reference);

  // lanes == 0 defers to the environment.
  ::setenv("SDSCALE_SIM_LANES", "3", 1);
  config.lanes = 0;
  {
    telemetry::MetricsRegistry registry;
    config.metrics = &registry;
    const auto result = run_experiment(config);
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(lane_gauge_count(registry), 3u);
    config.metrics = nullptr;
    EXPECT_EQ(fingerprint(*run_experiment(config)), want);
  }
  // An explicit lane count beats the environment.
  {
    telemetry::MetricsRegistry registry;
    config.lanes = 2;
    config.metrics = &registry;
    ASSERT_TRUE(run_experiment(config).is_ok());
    EXPECT_EQ(lane_gauge_count(registry), 2u);
    config.metrics = nullptr;
  }
  // Garbage in the environment falls back to serial.
  {
    ::setenv("SDSCALE_SIM_LANES", "banana", 1);
    telemetry::MetricsRegistry registry;
    config.lanes = 0;
    config.metrics = &registry;
    ASSERT_TRUE(run_experiment(config).is_ok());
    EXPECT_EQ(lane_gauge_count(registry), 1u);
  }

  if (restore.empty()) {
    ::unsetenv("SDSCALE_SIM_LANES");
  } else {
    ::setenv("SDSCALE_SIM_LANES", restore.c_str(), 1);
  }
}

TEST(ParallelExperimentTest, ComposesWithBenchJobsPool) {
  // bench --jobs runs whole experiments on ThreadPool workers; a lane
  // runner invoked there must fall back to inline execution (the sweep
  // already owns the cores) and still produce bit-identical results.
  auto config = make_config({"hier", 120, 3, 0, 0}, 42);
  const auto reference = run_experiment(config);
  ASSERT_TRUE(reference.is_ok());
  const std::string want = fingerprint(*reference);

  config.lanes = 3;
  ThreadPool pool(3);
  std::vector<std::string> got(3);
  pool.parallel_for(got.size(), [&](std::size_t i) {
    const auto result = run_experiment(config);
    got[i] = result.is_ok() ? fingerprint(*result)
                            : "error: " + result.status().to_string();
  });
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want) << "pool slot " << i;
  }
}

}  // namespace
}  // namespace sds::sim
