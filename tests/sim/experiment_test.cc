#include "sim/experiment.h"

#include <gtest/gtest.h>

namespace sds::sim {
namespace {

ExperimentConfig quick(std::size_t stages, std::size_t aggregators = 0) {
  ExperimentConfig config;
  config.num_stages = stages;
  config.num_aggregators = aggregators;
  config.stages_per_job = 10;
  config.duration = millis(200);
  config.max_cycles = 20;
  return config;
}

TEST(ExperimentTest, FlatRunsCycles) {
  auto result = run_experiment(quick(50));
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_GT(result->cycles, 0u);
  EXPECT_GT(result->stats.mean_total_ms(), 0.0);
  EXPECT_GT(result->elapsed, Nanos{0});
}

TEST(ExperimentTest, ZeroStagesRejected) {
  auto result = run_experiment(quick(0));
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExperimentTest, PhaseBreakdownSumsToTotal) {
  auto result = run_experiment(quick(100));
  ASSERT_TRUE(result.is_ok());
  const auto& stats = result->stats;
  EXPECT_NEAR(stats.mean_collect_ms() + stats.mean_compute_ms() +
                  stats.mean_enforce_ms(),
              stats.mean_total_ms(), stats.mean_total_ms() * 0.02);
}

TEST(ExperimentTest, FlatConnectionCapEnforced) {
  ExperimentConfig config = quick(2501);
  EXPECT_EQ(run_experiment(config).status().code(),
            StatusCode::kResourceExhausted);
  config.num_stages = 2500;
  config.max_cycles = 1;
  EXPECT_TRUE(run_experiment(config).is_ok());
}

TEST(ExperimentTest, HierAllowsBeyondFlatCap) {
  ExperimentConfig config = quick(4000, 2);
  config.max_cycles = 2;
  EXPECT_TRUE(run_experiment(config).is_ok());
}

TEST(ExperimentTest, HierAggregatorSubtreeCapEnforced) {
  ExperimentConfig config = quick(6000, 2);  // 3000 per aggregator > 2500
  EXPECT_EQ(run_experiment(config).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ExperimentTest, DeterministicForSameSeed) {
  const auto a = run_experiment(quick(80));
  const auto b = run_experiment(quick(80));
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a->cycles, b->cycles);
  EXPECT_DOUBLE_EQ(a->stats.mean_total_ms(), b->stats.mean_total_ms());
  EXPECT_DOUBLE_EQ(a->final_data_limit_sum, b->final_data_limit_sum);
  EXPECT_EQ(a->events_executed, b->events_executed);
}

TEST(ExperimentTest, DifferentSeedsChangeDemands) {
  ExperimentConfig config_a = quick(80);
  ExperimentConfig config_b = quick(80);
  config_b.seed = 99;
  const auto a = run_experiment(config_a);
  const auto b = run_experiment(config_b);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_NE(a->final_data_limit_sum, b->final_data_limit_sum);
}

TEST(ExperimentTest, EnforcedLimitsRespectBudget) {
  // After the control loop settles, the sum of enforced per-stage data
  // limits never exceeds the configured PFS budget (plus PSFA headroom
  // slack when demand is below budget).
  ExperimentConfig config = quick(100);
  config.budgets = {20'000.0, 2'000.0};
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.is_ok());
  // Total demand ≈ 100 × ~1000 = 100k data ops/s >> 20k budget: the
  // budget binds.
  EXPECT_LE(result->final_data_limit_sum, 20'000.0 * 1.001);
  EXPECT_GE(result->final_data_limit_sum, 20'000.0 * 0.95);
  EXPECT_LE(result->final_meta_limit_sum, 2'000.0 * 1.001);
}

TEST(ExperimentTest, HierEnforcedLimitsRespectBudget) {
  ExperimentConfig config = quick(100, 4);
  config.budgets = {20'000.0, 2'000.0};
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.is_ok());
  EXPECT_LE(result->final_data_limit_sum, 20'000.0 * 1.001);
  EXPECT_GE(result->final_data_limit_sum, 20'000.0 * 0.95);
}

TEST(ExperimentTest, LatencyGrowsWithScale) {
  ExperimentConfig small = quick(50);
  ExperimentConfig large = quick(500);
  const auto a = run_experiment(small);
  const auto b = run_experiment(large);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_GT(b->stats.mean_total_ms(), 3 * a->stats.mean_total_ms());
}

TEST(ExperimentTest, EnforceDominatesCollectDominatesCompute) {
  // The paper's flat-phase ordering (Fig. 4).
  const auto result = run_experiment(quick(500));
  ASSERT_TRUE(result.is_ok());
  EXPECT_GT(result->stats.mean_enforce_ms(), result->stats.mean_collect_ms());
  EXPECT_GT(result->stats.mean_collect_ms(), result->stats.mean_compute_ms());
}

TEST(ExperimentTest, MoreAggregatorsReduceLatency) {
  ExperimentConfig few = quick(2000, 2);
  ExperimentConfig many = quick(2000, 8);
  few.max_cycles = many.max_cycles = 5;
  const auto a = run_experiment(few);
  const auto b = run_experiment(many);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_LT(b->stats.mean_total_ms(), a->stats.mean_total_ms());
  // Compute phase is aggregator-count-independent (Fig. 5).
  EXPECT_NEAR(b->stats.mean_compute_ms(), a->stats.mean_compute_ms(),
              a->stats.mean_compute_ms() * 0.05);
}

TEST(ExperimentTest, HierarchyAddsLatencyAtEqualScale) {
  // Fig. 6: flat vs hierarchical with one aggregator at the same size.
  ExperimentConfig flat = quick(500);
  ExperimentConfig hier = quick(500, 1);
  flat.max_cycles = hier.max_cycles = 5;
  const auto a = run_experiment(flat);
  const auto b = run_experiment(hier);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_GT(b->stats.mean_total_ms(), a->stats.mean_total_ms());
  // Observation #7: compute shrinks under the hierarchy.
  EXPECT_LT(b->stats.mean_compute_ms(), a->stats.mean_compute_ms());
}

TEST(ExperimentTest, SerialFanoutSlowerThanParallel) {
  ExperimentConfig parallel = quick(1000, 4);
  ExperimentConfig serial = quick(1000, 4);
  serial.parallel_fanout = false;
  parallel.max_cycles = serial.max_cycles = 3;
  const auto a = run_experiment(parallel);
  const auto b = run_experiment(serial);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_GT(b->stats.mean_total_ms(), a->stats.mean_total_ms());
}

TEST(ExperimentTest, PassthroughShiftsComputeToGlobal) {
  ExperimentConfig preagg = quick(1000, 4);
  ExperimentConfig passthrough = quick(1000, 4);
  passthrough.preaggregate = false;
  preagg.max_cycles = passthrough.max_cycles = 3;
  const auto a = run_experiment(preagg);
  const auto b = run_experiment(passthrough);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  // Without pre-aggregation the global controller must merge raw
  // entries itself: its compute phase grows (Observation #7 inverted).
  EXPECT_GT(b->stats.mean_compute_ms(), a->stats.mean_compute_ms());
}

TEST(ExperimentTest, LocalDecisionsShrinkGlobalCompute) {
  ExperimentConfig central = quick(1000, 4);
  ExperimentConfig local = quick(1000, 4);
  local.local_decisions = true;
  central.max_cycles = local.max_cycles = 3;
  const auto a = run_experiment(central);
  const auto b = run_experiment(local);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_LT(b->stats.mean_compute_ms(), a->stats.mean_compute_ms());
  EXPECT_LT(b->global.cpu_percent, a->global.cpu_percent);
}

TEST(ExperimentTest, LocalDecisionsStillRespectBudget) {
  ExperimentConfig config = quick(100, 4);
  config.local_decisions = true;
  config.budgets = {20'000.0, 2'000.0};
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.is_ok());
  EXPECT_LE(result->final_data_limit_sum, 20'000.0 * 1.02);
}

TEST(ExperimentTest, ResourceUsagePopulated) {
  const auto flat = run_experiment(quick(200));
  ASSERT_TRUE(flat.is_ok());
  EXPECT_GT(flat->global.cpu_percent, 0.0);
  EXPECT_GT(flat->global.memory_gb, 0.0);
  EXPECT_GT(flat->global.transmitted_mbps, 0.0);
  EXPECT_GT(flat->global.received_mbps, 0.0);
  EXPECT_DOUBLE_EQ(flat->aggregator.cpu_percent, 0.0);  // no aggregators

  const auto hier = run_experiment(quick(200, 2));
  ASSERT_TRUE(hier.is_ok());
  EXPECT_GT(hier->aggregator.cpu_percent, 0.0);
  EXPECT_GT(hier->aggregator.memory_gb, 0.0);
}

TEST(ExperimentTest, GlobalMemoryGrowsWithStages) {
  const auto small = run_experiment(quick(100));
  const auto large = run_experiment(quick(1000));
  ASSERT_TRUE(small.is_ok());
  ASSERT_TRUE(large.is_ok());
  EXPECT_GT(large->global.memory_gb, small->global.memory_gb);
}

TEST(ExperimentTest, MaxCyclesCapsExecution) {
  ExperimentConfig config = quick(50);
  config.max_cycles = 7;
  config.duration = seconds(60);
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->cycles, 7u);
}

TEST(ExperimentTest, CustomDemandFactoryUsed) {
  ExperimentConfig config = quick(20);
  config.budgets = {1e9, 1e9};  // effectively uncapped
  config.demand_factory = [](StageId, stage::Dimension dim) {
    return [dim](Nanos) {
      return dim == stage::Dimension::kData ? 777.0 : 77.0;
    };
  };
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.is_ok());
  // With a huge budget PSFA grants headroom × demand to each stage.
  EXPECT_NEAR(result->final_data_limit_sum, 20 * 777.0 * 1.2, 20.0);
}

// ---------------------------------------------------------------------------
// Three-level hierarchies (global -> super-aggregators -> aggregators)

TEST(DeepHierarchyTest, RunsCycles) {
  ExperimentConfig config = quick(400, 8);
  config.num_super_aggregators = 2;
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_GT(result->cycles, 0u);
  EXPECT_GT(result->super_aggregator.cpu_percent, 0.0);
  EXPECT_GT(result->aggregator.cpu_percent, 0.0);
}

TEST(DeepHierarchyTest, BudgetRespected) {
  ExperimentConfig config = quick(200, 8);
  config.num_super_aggregators = 4;
  config.budgets = {20'000.0, 2'000.0};
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_LE(result->final_data_limit_sum, 20'000.0 * 1.001);
  EXPECT_GE(result->final_data_limit_sum, 20'000.0 * 0.95);
}

TEST(DeepHierarchyTest, MatchesTwoLevelAllocations) {
  // Adding a control level must not change the decisions, only latency.
  ExperimentConfig two_level = quick(200, 8);
  two_level.budgets = {20'000.0, 2'000.0};
  ExperimentConfig three_level = two_level;
  three_level.num_super_aggregators = 2;
  const auto a = run_experiment(two_level);
  const auto b = run_experiment(three_level);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  ASSERT_EQ(a->final_data_limits.size(), b->final_data_limits.size());
  for (std::size_t i = 0; i < a->final_data_limits.size(); ++i) {
    EXPECT_NEAR(a->final_data_limits[i], b->final_data_limits[i], 1e-6)
        << "stage " << i;
  }
}

TEST(DeepHierarchyTest, ThirdLevelAddsLatency) {
  ExperimentConfig two_level = quick(1000, 8);
  two_level.max_cycles = 3;
  ExperimentConfig three_level = two_level;
  three_level.num_super_aggregators = 2;
  const auto a = run_experiment(two_level);
  const auto b = run_experiment(three_level);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_GT(b->stats.mean_total_ms(), a->stats.mean_total_ms());
}

TEST(DeepHierarchyTest, EnablesScaleBeyondTwoLevelCap) {
  // With a tiny cap the 2-level tree cannot cover the cluster but a
  // 3-level tree can.
  ExperimentConfig config = quick(10'000, 64);
  config.profile.max_connections_per_node = 64;
  config.max_cycles = 1;
  EXPECT_EQ(run_experiment(config).status().code(),
            StatusCode::kResourceExhausted);

  config.num_aggregators = 200;
  config.num_super_aggregators = 40;
  EXPECT_TRUE(run_experiment(config).is_ok());
}

TEST(DeepHierarchyTest, RequiresCompatibleModes) {
  ExperimentConfig config = quick(200, 8);
  config.num_super_aggregators = 2;
  config.preaggregate = false;
  EXPECT_EQ(run_experiment(config).status().code(),
            StatusCode::kInvalidArgument);

  config.preaggregate = true;
  config.local_decisions = true;
  EXPECT_EQ(run_experiment(config).status().code(),
            StatusCode::kInvalidArgument);

  config.local_decisions = false;
  config.num_super_aggregators = 16;  // more supers than aggregators
  config.num_aggregators = 8;
  EXPECT_EQ(run_experiment(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DeepHierarchyTest, Deterministic) {
  ExperimentConfig config = quick(300, 6);
  config.num_super_aggregators = 3;
  const auto a = run_experiment(config);
  const auto b = run_experiment(config);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a->events_executed, b->events_executed);
  EXPECT_DOUBLE_EQ(a->stats.mean_total_ms(), b->stats.mean_total_ms());
}

// ---------------------------------------------------------------------------
// Coordinated flat multi-controller mode (paper §VI future work #1)

TEST(CoordinatedSimTest, RunsCycles) {
  ExperimentConfig config = quick(200);
  config.coordinated_peers = 4;
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_GT(result->cycles, 0u);
  EXPECT_GT(result->aggregator.cpu_percent, 0.0);  // peer usage reported
}

TEST(CoordinatedSimTest, MutuallyExclusiveWithAggregators) {
  ExperimentConfig config = quick(200, 2);
  config.coordinated_peers = 2;
  EXPECT_EQ(run_experiment(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CoordinatedSimTest, ConnectionCapIncludesPeerLinks) {
  ExperimentConfig config = quick(10'000);
  config.coordinated_peers = 2;  // 5000 stages + 1 peer conn > 2500 cap
  EXPECT_EQ(run_experiment(config).status().code(),
            StatusCode::kResourceExhausted);
  config.coordinated_peers = 4;  // 2500 + 3 > 2500: still over
  EXPECT_EQ(run_experiment(config).status().code(),
            StatusCode::kResourceExhausted);
  config.coordinated_peers = 5;  // 2000 + 4 <= 2500
  config.max_cycles = 1;
  EXPECT_TRUE(run_experiment(config).is_ok());
}

TEST(CoordinatedSimTest, BudgetRespectedAcrossPeers) {
  ExperimentConfig config = quick(100);
  config.coordinated_peers = 4;
  config.budgets = {20'000.0, 2'000.0};
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.is_ok());
  EXPECT_LE(result->final_data_limit_sum, 20'000.0 * 1.001);
  EXPECT_GE(result->final_data_limit_sum, 20'000.0 * 0.95);
}

TEST(CoordinatedSimTest, Deterministic) {
  ExperimentConfig config = quick(120);
  config.coordinated_peers = 3;
  const auto a = run_experiment(config);
  const auto b = run_experiment(config);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a->events_executed, b->events_executed);
  EXPECT_DOUBLE_EQ(a->stats.mean_total_ms(), b->stats.mean_total_ms());
}

TEST(CoordinatedSimTest, MatchesFlatAllocations) {
  // The coordinated design's raison d'être: identical global outcomes to
  // a single flat controller over the same demands.
  ExperimentConfig flat_config = quick(100);
  flat_config.budgets = {20'000.0, 2'000.0};
  ExperimentConfig coord_config = flat_config;
  coord_config.coordinated_peers = 4;
  const auto flat_result = run_experiment(flat_config);
  const auto coord_result = run_experiment(coord_config);
  ASSERT_TRUE(flat_result.is_ok());
  ASSERT_TRUE(coord_result.is_ok());
  EXPECT_NEAR(coord_result->final_data_limit_sum,
              flat_result->final_data_limit_sum,
              flat_result->final_data_limit_sum * 0.02);
}

TEST(CoordinatedSimTest, FasterThanHierarchyAtScale) {
  ExperimentConfig hier = quick(5000, 4);
  hier.max_cycles = 3;
  ExperimentConfig coord = quick(5000);
  coord.coordinated_peers = 4;
  coord.max_cycles = 3;
  const auto h = run_experiment(hier);
  const auto c = run_experiment(coord);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(c.is_ok());
  // No top-level per-stage rule building: the coordinated design wins.
  EXPECT_LT(c->stats.mean_total_ms(), h->stats.mean_total_ms());
}

// ---- Columnar store / delta-collect path ----------------------------

TEST(StoreCollectTest, FlatStorePathBitIdenticalToLegacyBatch) {
  ExperimentConfig legacy = quick(120);
  legacy.store_collect = false;
  ExperimentConfig store = quick(120);
  store.store_collect = true;
  const auto a = run_experiment(legacy);
  const auto b = run_experiment(store);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  ASSERT_EQ(a->final_data_limits.size(), b->final_data_limits.size());
  for (std::size_t i = 0; i < a->final_data_limits.size(); ++i) {
    ASSERT_EQ(a->final_data_limits[i], b->final_data_limits[i]) << i;
    ASSERT_EQ(a->final_meta_limits[i], b->final_meta_limits[i]) << i;
  }
  EXPECT_EQ(a->final_data_limit_sum, b->final_data_limit_sum);
}

TEST(StoreCollectTest, FullRecomputeAblationBitIdentical) {
  ExperimentConfig incremental = quick(150);
  ExperimentConfig full = quick(150);
  full.psfa_full_recompute = true;
  const auto a = run_experiment(incremental);
  const auto b = run_experiment(full);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  ASSERT_EQ(a->final_data_limits.size(), b->final_data_limits.size());
  for (std::size_t i = 0; i < a->final_data_limits.size(); ++i) {
    ASSERT_EQ(a->final_data_limits[i], b->final_data_limits[i]) << i;
    ASSERT_EQ(a->final_meta_limits[i], b->final_meta_limits[i]) << i;
  }
  EXPECT_EQ(a->cycles, b->cycles);
}

TEST(StoreCollectTest, HierStorePathMatchesLegacyWithinTolerance) {
  // Hierarchical summaries are slot-ordered on the store path (vs
  // arrival-ordered legacy): FP sums may differ in the last bit, so the
  // comparison is tight but not bitwise.
  ExperimentConfig legacy = quick(400, 4);
  legacy.store_collect = false;
  ExperimentConfig store = quick(400, 4);
  const auto a = run_experiment(legacy);
  const auto b = run_experiment(store);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_NEAR(a->final_data_limit_sum, b->final_data_limit_sum,
              a->final_data_limit_sum * 1e-9);
}

TEST(StoreCollectTest, DeltaCollectBitIdenticalAndCheaperOnTheWire) {
  ExperimentConfig base = quick(200);
  base.max_cycles = 30;
  ExperimentConfig delta = base;
  delta.delta_collect = true;
  const auto a = run_experiment(base);
  const auto b = run_experiment(delta);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  // Deltas reproduce the full reports bit-for-bit, so decisions match.
  ASSERT_EQ(a->final_data_limits.size(), b->final_data_limits.size());
  for (std::size_t i = 0; i < a->final_data_limits.size(); ++i) {
    ASSERT_EQ(a->final_data_limits[i], b->final_data_limits[i]) << i;
  }
  // Wire accounting: the full-frame path ships what it accounts...
  EXPECT_EQ(a->collect_wire_bytes, a->collect_wire_bytes_full);
  EXPECT_EQ(a->collect_frames_delta, 0u);
  // ...while the delta path ships mostly deltas at a fraction of the
  // bytes (first-cycle refreshes and the periodic stagger stay full).
  EXPECT_GT(b->collect_frames_delta, b->collect_frames_full);
  EXPECT_LT(b->collect_wire_bytes, b->collect_wire_bytes_full);
  EXPECT_EQ(b->collect_wire_bytes_full, a->collect_wire_bytes_full);
}

TEST(StoreCollectTest, DeltaCollectSteadyStateCompressionAtLeast3x) {
  // Past the warmup cycle, low-churn stages drift one field at a time:
  // the aggregate byte ratio must clear the tentpole's 3x floor even
  // with the periodic full refresh mixed in.
  ExperimentConfig config = quick(300);
  config.max_cycles = 50;
  config.delta_collect = true;
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.is_ok());
  EXPECT_GE(static_cast<double>(result->collect_wire_bytes_full),
            3.0 * static_cast<double>(result->collect_wire_bytes));
}

TEST(StoreCollectTest, DeltaCollectWorksHierPreaggregated) {
  ExperimentConfig config = quick(400, 4);
  config.delta_collect = true;
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.is_ok());
  EXPECT_GT(result->collect_frames_delta, 0u);
  EXPECT_LE(result->final_data_limit_sum,
            config.budgets.data_iops * 1.2 + 1e-6);
}

TEST(StoreCollectTest, DeltaCollectRequiresStorePath) {
  ExperimentConfig config = quick(50);
  config.store_collect = false;
  config.delta_collect = true;
  EXPECT_EQ(run_experiment(config).status().code(),
            StatusCode::kInvalidArgument);
  config.store_collect = true;
  config.delta_refresh = 0;
  EXPECT_EQ(run_experiment(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StoreCollectTest, ActivityThresholdStillRespectsBudget) {
  ExperimentConfig config = quick(100);
  config.budgets = {20'000.0, 2'000.0};
  config.activity_threshold = 25.0;  // ignore small jitter
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.is_ok());
  EXPECT_LE(result->final_data_limit_sum, 20'000.0 * 1.001);
  EXPECT_GE(result->final_data_limit_sum, 20'000.0 * 0.90);
}

struct ScaleCase {
  std::size_t stages;
  std::size_t aggregators;
};

class ExperimentScaleSweep : public ::testing::TestWithParam<ScaleCase> {};

TEST_P(ExperimentScaleSweep, CompletesWithSaneStats) {
  ExperimentConfig config = quick(GetParam().stages, GetParam().aggregators);
  config.max_cycles = 3;
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(result->cycles, 3u);
  EXPECT_GT(result->stats.mean_total_ms(), 0.0);
  EXPECT_LT(result->stats.mean_total_ms(), 1000.0);
  // Latency CV must be tiny in a deterministic simulator (paper: < 6%).
  EXPECT_LT(result->stats.total().stddev() / result->stats.total().mean(),
            0.06);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, ExperimentScaleSweep,
    ::testing::Values(ScaleCase{50, 0}, ScaleCase{500, 0}, ScaleCase{1250, 0},
                      ScaleCase{2500, 0}, ScaleCase{1000, 1},
                      ScaleCase{1000, 2}, ScaleCase{2000, 4},
                      ScaleCase{5000, 4}, ScaleCase{5000, 10}));

}  // namespace
}  // namespace sds::sim
