#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace sds::sim {
namespace {

TEST(EngineTest, StartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), Nanos{0});
  EXPECT_TRUE(engine.empty());
}

TEST(EngineTest, ExecutesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(millis(3), [&] { order.push_back(3); });
  engine.schedule_at(millis(1), [&] { order.push_back(1); });
  engine.schedule_at(millis(2), [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), millis(3));
}

TEST(EngineTest, TiesBreakByInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(millis(5), [&, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EngineTest, ScheduleInIsRelative) {
  Engine engine;
  Nanos fired{-1};
  engine.schedule_at(millis(10), [&] {
    engine.schedule_in(millis(5), [&] { fired = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired, millis(15));
}

TEST(EngineTest, PastTimesClampToNow) {
  Engine engine;
  Nanos fired{-1};
  engine.schedule_at(millis(10), [&] {
    engine.schedule_at(millis(1), [&] { fired = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired, millis(10));
}

TEST(EngineTest, EventsCanCascade) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) engine.schedule_in(micros(1), recurse);
  };
  engine.schedule_at(Nanos{0}, recurse);
  engine.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(engine.executed(), 100u);
}

TEST(EngineTest, RunUntilStopsAtDeadline) {
  Engine engine;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    engine.schedule_at(millis(i), [&] { ++fired; });
  }
  engine.run_until(millis(5));
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(engine.now(), millis(5));
  EXPECT_EQ(engine.pending(), 5u);
  engine.run();
  EXPECT_EQ(fired, 10);
}

TEST(EngineTest, RunUntilAdvancesClockWhenQueueEmpty) {
  Engine engine;
  engine.run_until(seconds(3));
  EXPECT_EQ(engine.now(), seconds(3));
}

TEST(EngineTest, StepReturnsFalseWhenEmpty) {
  Engine engine;
  EXPECT_FALSE(engine.step());
  engine.schedule_at(millis(1), [] {});
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
}

TEST(EngineTest, ManyEventsStress) {
  Engine engine;
  std::uint64_t sum = 0;
  for (int i = 0; i < 100'000; ++i) {
    engine.schedule_at(micros(i % 977), [&] { ++sum; });
  }
  engine.run();
  EXPECT_EQ(sum, 100'000u);
}

}  // namespace
}  // namespace sds::sim
