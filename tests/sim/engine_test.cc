#include "sim/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace sds::sim {
namespace {

TEST(EngineTest, StartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), Nanos{0});
  EXPECT_TRUE(engine.empty());
}

TEST(EngineTest, ExecutesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(millis(3), [&] { order.push_back(3); });
  engine.schedule_at(millis(1), [&] { order.push_back(1); });
  engine.schedule_at(millis(2), [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), millis(3));
}

TEST(EngineTest, TiesBreakByInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(millis(5), [&, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EngineTest, ScheduleInIsRelative) {
  Engine engine;
  Nanos fired{-1};
  engine.schedule_at(millis(10), [&] {
    engine.schedule_in(millis(5), [&] { fired = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired, millis(15));
}

TEST(EngineTest, PastTimesClampToNow) {
  Engine engine;
  Nanos fired{-1};
  engine.schedule_at(millis(10), [&] {
    engine.schedule_at(millis(1), [&] { fired = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired, millis(10));
}

TEST(EngineTest, EventsCanCascade) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) engine.schedule_in(micros(1), recurse);
  };
  engine.schedule_at(Nanos{0}, recurse);
  engine.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(engine.executed(), 100u);
}

TEST(EngineTest, RunUntilStopsAtDeadline) {
  Engine engine;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    engine.schedule_at(millis(i), [&] { ++fired; });
  }
  engine.run_until(millis(5));
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(engine.now(), millis(5));
  EXPECT_EQ(engine.pending(), 5u);
  engine.run();
  EXPECT_EQ(fired, 10);
}

TEST(EngineTest, RunUntilAdvancesClockWhenQueueEmpty) {
  Engine engine;
  engine.run_until(seconds(3));
  EXPECT_EQ(engine.now(), seconds(3));
}

TEST(EngineTest, StepReturnsFalseWhenEmpty) {
  Engine engine;
  EXPECT_FALSE(engine.step());
  engine.schedule_at(millis(1), [] {});
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
}

TEST(EngineTest, ManyEventsStress) {
  Engine engine;
  std::uint64_t sum = 0;
  for (int i = 0; i < 100'000; ++i) {
    engine.schedule_at(micros(i % 977), [&] { ++sum; });
  }
  engine.run();
  EXPECT_EQ(sum, 100'000u);
}

// -- Calendar-wheel regressions (the rewrite must preserve the exact
// -- (time, insertion-order) execution sequence of the old global heap).

TEST(EngineTest, FarFutureEventsCrossOverflowHorizon) {
  // The wheel horizon is a few milliseconds; seconds-scale timers take
  // the overflow heap and must still run in exact time order.
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(seconds(3), [&] { order.push_back(3); });
  engine.schedule_at(millis(1), [&] { order.push_back(0); });
  engine.schedule_at(seconds(1), [&] { order.push_back(1); });
  engine.schedule_at(seconds(2), [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(engine.now(), seconds(3));
}

TEST(EngineTest, TiesBreakByInsertionOrderBeyondHorizon) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(seconds(7), [&, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EngineTest, OverflowMigrationPreservesTiesWithWheelEvents) {
  // An overflow event and a later-scheduled wheel event with the same
  // timestamp: insertion order must still decide.
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(seconds(1), [&] { order.push_back(0); });  // overflow
  engine.schedule_at(millis(999), [&] {
    // By now seconds(1) has migrated into the wheel; this tie inserts after.
    engine.schedule_at(seconds(1), [&] { order.push_back(1); });
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EngineTest, RandomizedOrderMatchesStableSortReference) {
  // Deterministic pseudo-random times spanning active bucket, wheel, and
  // overflow; execution order must equal a stable sort by time.
  Engine engine;
  std::vector<std::pair<std::int64_t, int>> reference;
  std::vector<int> order;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    // Mix of ns-scale (active), µs-scale (wheel), and ms/s-scale (overflow).
    const std::int64_t at = static_cast<std::int64_t>(
        (state >> 33) % 50'000'000);  // up to 50 ms
    reference.emplace_back(at, i);
    engine.schedule_at(Nanos{at}, [&, i] { order.push_back(i); });
  }
  std::stable_sort(reference.begin(), reference.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  engine.run();
  ASSERT_EQ(order.size(), reference.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], reference[i].second) << "at position " << i;
  }
}

TEST(EngineTest, RunUntilWithFarFuturePending) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(millis(1), [&] { order.push_back(1); });
  engine.schedule_at(seconds(10), [&] { order.push_back(2); });
  engine.run_until(seconds(5));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(engine.now(), seconds(5));
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(engine.now(), seconds(10));
}

TEST(EngineTest, ScheduleBatchMatchesSequentialScheduleAt) {
  Engine sequential;
  Engine batched;
  std::vector<std::pair<std::int64_t, int>> seq_trace;
  std::vector<std::pair<std::int64_t, int>> batch_trace;
  std::vector<Engine::TimedEvent> batch;
  for (int i = 0; i < 100; ++i) {
    const Nanos at = micros((i * 37) % 250);
    sequential.schedule_at(at, [&, i] {
      seq_trace.emplace_back(sequential.now().count(), i);
    });
    batch.push_back(Engine::TimedEvent{
        at, [&, i] { batch_trace.emplace_back(batched.now().count(), i); }});
  }
  batched.schedule_batch(batch);
  EXPECT_TRUE(batch.empty());  // consumed, reusable as scratch
  sequential.run();
  batched.run();
  EXPECT_EQ(seq_trace, batch_trace);
}

TEST(EngineTest, ScheduleBatchClampsPastTimes) {
  Engine engine;
  Nanos fired{-1};
  engine.schedule_at(millis(10), [&] {
    std::vector<Engine::TimedEvent> batch;
    batch.push_back(Engine::TimedEvent{millis(1), [&] { fired = engine.now(); }});
    engine.schedule_batch(batch);
  });
  engine.run();
  EXPECT_EQ(fired, millis(10));
}

TEST(EngineTest, PendingTracksAllContainers) {
  Engine engine;
  engine.schedule_at(micros(1), [] {});    // active bucket
  engine.schedule_at(millis(1), [] {});    // wheel
  engine.schedule_at(seconds(30), [] {});  // overflow
  EXPECT_EQ(engine.pending(), 3u);
  EXPECT_FALSE(engine.empty());
  engine.run();
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_TRUE(engine.empty());
  EXPECT_EQ(engine.executed(), 3u);
}

TEST(EngineTest, SparseTimersJumpEmptyWheelRegions) {
  // Widely spaced timers force the cursor to rebase across empty wheel
  // revolutions; each must fire exactly once at its exact time.
  Engine engine;
  std::vector<std::int64_t> fired;
  for (int i = 1; i <= 20; ++i) {
    engine.schedule_at(seconds(i * 7), [&] { fired.push_back(engine.now().count()); });
  }
  engine.run();
  ASSERT_EQ(fired.size(), 20u);
  for (int i = 1; i <= 20; ++i) {
    EXPECT_EQ(fired[static_cast<std::size_t>(i - 1)], seconds(i * 7).count());
  }
}

}  // namespace
}  // namespace sds::sim
