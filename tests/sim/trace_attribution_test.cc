// Causal cycle tracing in the simulator: every cycle yields one span per
// phase with deterministic derive_span_id identities and correct
// parent/child links across components (controller track 0, aggregator /
// stage tracks), traces are invariant under lane sharding, and attaching
// a tracer or flight recorder never perturbs simulated results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "sim/experiment.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/span_tracer.h"

namespace sds::sim {
namespace {

using telemetry::Span;
using telemetry::derive_span_id;

ExperimentConfig base_config(std::size_t aggregators) {
  ExperimentConfig config;
  config.num_stages = 8;
  config.num_aggregators = aggregators;
  config.stages_per_job = 4;
  config.max_cycles = 3;
  config.duration = seconds(60);
  config.lanes = 1;
  return config;
}

/// Cycle-phase and component spans only (lane-summary spans carry the
/// "sim" category and are per-lane bookkeeping, not per-cycle trace).
std::vector<Span> trace_spans(const telemetry::SpanTracer& tracer) {
  std::vector<Span> out;
  for (const auto& span : tracer.snapshot()) {
    if (span.category == "sim") continue;
    out.push_back(span);
  }
  return out;
}

TEST(TraceAttributionTest, FlatSimLinksPhasesAndStageHop) {
  telemetry::SpanTracer tracer;
  const auto result = run_experiment([&] {
    auto config = base_config(/*aggregators=*/0);
    config.tracer = &tracer;
    return config;
  }());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  ASSERT_EQ(result.value().cycles, 3u);

  const auto spans = trace_spans(tracer);
  std::set<std::uint64_t> traces;
  std::set<std::uint32_t> tracks;
  for (const auto& span : spans) {
    if (span.name == "cycle") traces.insert(span.trace_id);
    tracks.insert(span.track);
  }
  ASSERT_EQ(traces.size(), 3u);  // one trace per cycle
  EXPECT_GE(tracks.size(), 2u);  // controller + stage component

  for (const std::uint64_t trace : traces) {
    const auto root = derive_span_id(trace, 0, "cycle");
    const auto collect = derive_span_id(trace, 0, "collect");
    const auto enforce = derive_span_id(trace, 0, "enforce");
    // Expected parent by span name; every controller-track span id must
    // be derive_span_id(trace, 0, name).
    const std::vector<std::pair<std::string, std::uint64_t>> expect = {
        {"cycle", 0},          {"collect", root},
        {"aggregate", collect}, {"compute", root},
        {"disseminate", enforce}, {"enforce", root},
    };
    for (const auto& [name, parent] : expect) {
      const auto it = std::find_if(
          spans.begin(), spans.end(), [&, trace = trace](const Span& s) {
            return s.trace_id == trace && s.track == 0 && s.name == name;
          });
      ASSERT_NE(it, spans.end()) << "trace " << trace << " missing " << name;
      EXPECT_EQ(it->span_id, derive_span_id(trace, 0, name)) << name;
      EXPECT_EQ(it->parent_span, parent) << name;
      EXPECT_EQ(it->cycle, trace) << name;
    }
    // Cross-component link: the representative stage hop's parent is the
    // controller's collect span in the same trace.
    const auto hop = std::find_if(
        spans.begin(), spans.end(), [trace = trace](const Span& s) {
          return s.trace_id == trace && s.name == "stage.collect";
        });
    ASSERT_NE(hop, spans.end()) << "trace " << trace;
    EXPECT_EQ(hop->category, "component");
    EXPECT_NE(hop->track, 0u);
    EXPECT_EQ(hop->parent_span, collect);
    EXPECT_EQ(hop->span_id, derive_span_id(trace, hop->track, "stage.collect"));
    EXPECT_EQ(hop->phase, telemetry::SpanPhase::kCollect);
  }
}

TEST(TraceAttributionTest, HierSimLinksAggregatorHops) {
  telemetry::SpanTracer tracer;
  const auto result = run_experiment([&] {
    auto config = base_config(/*aggregators=*/2);
    config.tracer = &tracer;
    return config;
  }());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();

  const auto spans = trace_spans(tracer);
  std::set<std::uint64_t> traces;
  for (const auto& span : spans) {
    if (span.name == "cycle") traces.insert(span.trace_id);
  }
  ASSERT_EQ(traces.size(), 3u);

  for (const std::uint64_t trace : traces) {
    const auto collect = derive_span_id(trace, 0, "collect");
    std::set<std::uint32_t> agg_tracks;
    for (const auto& span : spans) {
      if (span.trace_id != trace || span.name != "agg.collect") continue;
      EXPECT_EQ(span.category, "component");
      EXPECT_EQ(span.parent_span, collect);
      EXPECT_EQ(span.span_id,
                derive_span_id(trace, span.track, "agg.collect"));
      agg_tracks.insert(span.track);
    }
    // Both aggregators report their sub-collect on their own track.
    EXPECT_EQ(agg_tracks.size(), 2u) << "trace " << trace;
  }
}

/// Bitwise comparison of everything a bench fingerprints.
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.final_data_limit_sum, b.final_data_limit_sum);
  EXPECT_EQ(a.final_meta_limit_sum, b.final_meta_limit_sum);
  EXPECT_EQ(a.mean_data_utilization, b.mean_data_utilization);
  EXPECT_EQ(a.mean_meta_utilization, b.mean_meta_utilization);
  ASSERT_EQ(a.final_data_limits.size(), b.final_data_limits.size());
  for (std::size_t i = 0; i < a.final_data_limits.size(); ++i) {
    EXPECT_EQ(a.final_data_limits[i], b.final_data_limits[i]) << i;
  }
}

TEST(TraceAttributionTest, TracingDoesNotPerturbSimulatedResults) {
  const auto plain = run_experiment(base_config(/*aggregators=*/2));
  ASSERT_TRUE(plain.is_ok());

  telemetry::SpanTracer tracer;
  telemetry::FlightRecorder flight;
  const auto traced = run_experiment([&] {
    auto config = base_config(/*aggregators=*/2);
    config.tracer = &tracer;
    config.flight = &flight;
    return config;
  }());
  ASSERT_TRUE(traced.is_ok());

  expect_identical(plain.value(), traced.value());
  EXPECT_GT(tracer.recorded(), 0u);
  EXPECT_GT(flight.recorded(), 0u);
}

TEST(TraceAttributionTest, LaneShardingPreservesSpansAndResults) {
  const auto run_with_lanes = [](std::size_t lanes, telemetry::SpanTracer* t) {
    auto config = base_config(/*aggregators=*/2);
    config.lanes = lanes;
    config.tracer = t;
    return run_experiment(config);
  };
  telemetry::SpanTracer serial_tracer;
  telemetry::SpanTracer sharded_tracer;
  const auto serial = run_with_lanes(1, &serial_tracer);
  const auto sharded = run_with_lanes(2, &sharded_tracer);
  ASSERT_TRUE(serial.is_ok()) << serial.status().to_string();
  ASSERT_TRUE(sharded.is_ok()) << sharded.status().to_string();
  expect_identical(serial.value(), sharded.value());

  // The per-cycle trace (identity, timing and lineage of every span) is
  // invariant under lane count; only the per-lane "sim" summary tracks
  // differ. Compare as sorted multisets — recording order may differ.
  using Key = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                         std::int64_t, std::int64_t, std::string,
                         std::uint32_t>;
  const auto keys = [](const telemetry::SpanTracer& tracer) {
    std::vector<Key> out;
    for (const auto& span : trace_spans(tracer)) {
      out.emplace_back(span.trace_id, span.span_id, span.parent_span,
                       span.start.count(), span.duration.count(), span.name,
                       span.track);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(keys(serial_tracer), keys(sharded_tracer));
}

TEST(TraceAttributionTest, FlightRecorderAloneCapturesPhaseSpans) {
  telemetry::FlightRecorder flight;
  const auto result = run_experiment([&] {
    auto config = base_config(/*aggregators=*/0);
    config.flight = &flight;
    return config;
  }());
  ASSERT_TRUE(result.is_ok());
  // 3 cycles x 6 phase spans minimum, with no SpanTracer attached.
  EXPECT_GE(flight.recorded(), 18u);
  bool saw_cycle = false;
  for (const auto& rec : flight.snapshot()) {
    if (rec.name_view() == "cycle") saw_cycle = true;
  }
  EXPECT_TRUE(saw_cycle);
}

}  // namespace
}  // namespace sds::sim
