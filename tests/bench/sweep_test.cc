// bench::Sweep — ordered emission, flag parsing, and the load-bearing
// guarantee: a parallel sweep's output is byte-identical to a serial run
// of the same configurations.
#include "bench/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"

namespace sds::bench {
namespace {

TEST(SweepTest, JobsFlagBeatsEnvBeatsHardware) {
  char prog[] = "bench";
  char flag[] = "--jobs=3";
  char* argv_flag[] = {prog, flag};
  EXPECT_EQ(sweep_jobs(2, argv_flag), 3u);

  ::setenv("SDSCALE_BENCH_JOBS", "5", 1);
  char* argv_none[] = {prog};
  EXPECT_EQ(sweep_jobs(1, argv_none), 5u);
  // The explicit flag still wins over the env var.
  EXPECT_EQ(sweep_jobs(2, argv_flag), 3u);
  ::unsetenv("SDSCALE_BENCH_JOBS");

  char bad[] = "--jobs=0";
  char* argv_bad[] = {prog, bad};
  EXPECT_GE(sweep_jobs(2, argv_bad), 1u);
}

TEST(SweepTest, SerialSweepRunsJobsInline) {
  Sweep sweep(1);
  const auto main_id = std::this_thread::get_id();
  std::thread::id job_id;
  sweep.add([&] {
    job_id = std::this_thread::get_id();
    return [] {};
  });
  sweep.finish();
  EXPECT_EQ(job_id, main_id);
}

TEST(SweepTest, EmitOrderMatchesSubmissionOrder) {
  Sweep sweep(4);
  std::vector<int> emitted;
  for (int i = 0; i < 8; ++i) {
    sweep.add([i, &emitted] {
      // Earlier jobs sleep longer, so completion order is reversed; the
      // emit order must still follow submission order.
      std::this_thread::sleep_for(std::chrono::milliseconds((8 - i) * 2));
      return [i, &emitted] { emitted.push_back(i); };
    });
  }
  sweep.finish();
  ASSERT_EQ(emitted.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(emitted[static_cast<std::size_t>(i)], i);
}

TEST(SweepTest, FinishRethrowsFirstJobException) {
  Sweep sweep(2);
  sweep.add([]() -> Sweep::Emit { throw std::runtime_error("job failed"); });
  sweep.add([] { return [] {}; });
  EXPECT_THROW(sweep.finish(), std::runtime_error);
}

// The acceptance property for parallel bench sweeps: running the same
// simulator configurations through a parallel Sweep produces output that
// is byte-for-byte identical to the serial run. The simulator is
// deterministic by seed, and Sweep defers all side effects to the
// ordered emit phase, so the formatted rows must match exactly.
std::string run_sweep(std::size_t jobs) {
  struct Point {
    std::size_t stages;
    std::size_t aggregators;
  };
  const Point points[] = {{50, 0}, {100, 0}, {200, 2}, {400, 4}};

  std::string out;
  Sweep sweep(jobs);
  for (const auto& point : points) {
    sim::ExperimentConfig config;
    config.num_stages = point.stages;
    config.num_aggregators = point.aggregators;
    config.duration = seconds(1);
    sweep.add([&out, point, config] {
      auto result = run_repeated(config);
      return [&out, point, result] {
        if (!result.is_ok()) {
          out += "error: " + result.status().to_string() + "\n";
          return;
        }
        char row[256];
        std::snprintf(row, sizeof(row),
                      "N=%zu A=%zu total=%.6f collect=%.6f compute=%.6f "
                      "enforce=%.6f cycles=%.1f\n",
                      point.stages, point.aggregators,
                      result->total_ms.mean(), result->collect_ms.mean(),
                      result->compute_ms.mean(), result->enforce_ms.mean(),
                      result->cycles.mean());
        out += row;
      };
    });
  }
  sweep.finish();
  return out;
}

TEST(SweepTest, ParallelSweepIsByteIdenticalToSerial) {
  const std::string serial = run_sweep(1);
  const std::string parallel = run_sweep(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace sds::bench
