#include "monitor/resource_monitor.h"

#include <gtest/gtest.h>

#include <vector>

#include "transport/inproc.h"

namespace sds::monitor {
namespace {

TEST(ProcfsTest, CpuTimeReadable) {
  const auto cpu = read_process_cpu_time();
  ASSERT_TRUE(cpu.has_value());
  EXPECT_GE(cpu->count(), 0);
}

TEST(ProcfsTest, CpuTimeMonotone) {
  const auto before = read_process_cpu_time();
  // Burn a little CPU.
  volatile double sink = 0;
  // (plain assignment: compound ops on volatile are deprecated in C++20)
  for (int i = 0; i < 2'000'000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
  const auto after = read_process_cpu_time();
  ASSERT_TRUE(before.has_value());
  ASSERT_TRUE(after.has_value());
  EXPECT_GE(*after, *before);
}

TEST(ProcfsTest, RssReadable) {
  const auto rss = read_process_rss_bytes();
  ASSERT_TRUE(rss.has_value());
  EXPECT_GT(*rss, 1024u * 1024);  // a test binary uses > 1 MiB
}

TEST(ResourceMonitorTest, SampleCollectsEndpointBytes) {
  transport::InProcNetwork net;
  auto a = net.bind("a", {}).value();
  auto b = net.bind("b", {}).value();
  b->set_frame_handler([](ConnId, wire::Frame) {});

  ResourceMonitor mon({a.get()});
  const auto before = mon.sample();

  const ConnId conn = a->connect("b").value();
  wire::Frame frame;
  frame.type = 1;
  frame.payload.resize(1000);
  ASSERT_TRUE(a->send(conn, frame).is_ok());

  const auto after = mon.sample();
  EXPECT_EQ(after.bytes_tx - before.bytes_tx, frame.wire_size());
}

TEST(ResourceMonitorTest, UsageBetweenComputesRates) {
  ResourceSample a;
  a.wall = seconds(0);
  a.cpu_time = Nanos{0};
  a.bytes_tx = 0;
  a.bytes_rx = 0;
  ResourceSample b;
  b.wall = seconds(2);
  b.cpu_time = millis(500);
  b.rss_bytes = 3'000'000'000;
  b.bytes_tx = 20'000'000;
  b.bytes_rx = 10'000'000;

  const auto usage = ResourceMonitor::usage_between(a, b);
  EXPECT_NEAR(usage.cpu_percent, 25.0, 1e-9);        // 0.5 s CPU over 2 s
  EXPECT_NEAR(usage.rss_gb, 3.0, 1e-9);
  EXPECT_NEAR(usage.transmitted_mbps, 10.0, 1e-9);   // 20 MB over 2 s
  EXPECT_NEAR(usage.received_mbps, 5.0, 1e-9);
}

TEST(ResourceMonitorTest, ZeroWallIntervalYieldsZeroRates) {
  // Regression: back-to-back samples used to divide by a clamped ~1e-9 s
  // wall time, producing absurd CPU percentages and bandwidths.
  ResourceSample a;
  a.wall = seconds(5);
  a.cpu_time = millis(100);
  ResourceSample b = a;
  b.rss_bytes = 2'000'000'000;
  b.cpu_time = millis(200);
  b.bytes_tx = 1'000'000;
  b.bytes_rx = 1'000'000;

  const auto usage = ResourceMonitor::usage_between(a, b);
  EXPECT_EQ(usage.cpu_percent, 0.0);
  EXPECT_EQ(usage.transmitted_mbps, 0.0);
  EXPECT_EQ(usage.received_mbps, 0.0);
  EXPECT_NEAR(usage.rss_gb, 2.0, 1e-9);  // rss is still reported
}

TEST(ResourceMonitorTest, NegativeWallIntervalYieldsZeroRates) {
  ResourceSample a;
  a.wall = seconds(10);
  ResourceSample b;
  b.wall = seconds(8);  // clock skew: b taken "before" a
  b.cpu_time = millis(500);
  b.rss_bytes = 1'000'000'000;
  b.bytes_tx = 42;

  const auto usage = ResourceMonitor::usage_between(a, b);
  EXPECT_EQ(usage.cpu_percent, 0.0);
  EXPECT_EQ(usage.transmitted_mbps, 0.0);
  EXPECT_EQ(usage.received_mbps, 0.0);
  EXPECT_NEAR(usage.rss_gb, 1.0, 1e-9);
}

TEST(ResourceMonitorTest, BindPublishesGaugesOnSnapshot) {
  transport::InProcNetwork net;
  auto a = net.bind("a", {}).value();
  ResourceMonitor mon({a.get()});

  telemetry::MetricsRegistry registry;
  mon.bind(registry, {{"component", "test"}});

  const auto snap = registry.snapshot();
  const telemetry::Labels labels{{"component", "test"}};
  ASSERT_NE(snap.find("sds_process_rss_bytes", labels), nullptr);
  EXPECT_GT(snap.find("sds_process_rss_bytes", labels)->value, 0.0);
  ASSERT_NE(snap.find("sds_process_cpu_percent", labels), nullptr);
  ASSERT_NE(snap.find("sds_transport_tx_mbps", labels), nullptr);
  ASSERT_NE(snap.find("sds_transport_rx_mbps", labels), nullptr);
}

TEST(PhaseResourceProbeTest, AttributesCpuAndRssPerPhase) {
  telemetry::MetricsRegistry registry;
  PhaseResourceProbe probe;
  probe.bind(registry, {{"component", "test"}});

  probe.cycle_start();
  // Burn CPU inside the "collect" window so its delta is non-trivial.
  volatile double sink = 0;
  for (int i = 0; i < 2'000'000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
  probe.mark("collect");
  probe.mark("compute");

  // Deltas are non-negative and cumulative across cycles.
  EXPECT_GE(probe.cpu_time("collect").count(), 0);
  EXPECT_GE(probe.cpu_time("compute").count(), 0);
  const Nanos first_collect = probe.cpu_time("collect");
  probe.cycle_start();
  probe.mark("collect");
  EXPECT_GE(probe.cpu_time("collect"), first_collect);
  // Never-marked phases report zero.
  EXPECT_EQ(probe.cpu_time("enforce").count(), 0);
  EXPECT_EQ(probe.rss_delta("enforce"), 0);

  const auto snap = registry.snapshot();
  const telemetry::Labels collect_labels{{"component", "test"},
                                         {"phase", "collect"}};
  ASSERT_NE(snap.find("sds_phase_cpu_time_ns", collect_labels), nullptr);
  EXPECT_GE(snap.find("sds_phase_cpu_time_ns", collect_labels)->value, 0.0);
  ASSERT_NE(snap.find("sds_phase_rss_delta_bytes", collect_labels), nullptr);
  const telemetry::Labels compute_labels{{"component", "test"},
                                         {"phase", "compute"}};
  ASSERT_NE(snap.find("sds_phase_cpu_time_ns", compute_labels), nullptr);
}

TEST(PhaseResourceProbeTest, UnboundProbeStillAccounts) {
  PhaseResourceProbe probe;
  probe.cycle_start();
  probe.mark("collect");
  EXPECT_GE(probe.cpu_time("collect").count(), 0);
}

TEST(ResourceMonitorTest, AddEndpointAfterConstruction) {
  transport::InProcNetwork net;
  auto a = net.bind("a", {}).value();
  ResourceMonitor mon;
  mon.add_endpoint(a.get());
  const auto sample = mon.sample();
  EXPECT_EQ(sample.bytes_tx, 0u);
}

}  // namespace
}  // namespace sds::monitor
