#include "common/status.h"

#include <gtest/gtest.h>

namespace sds {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode expected;
  };
  const Case cases[] = {
      {Status::invalid_argument("a"), StatusCode::kInvalidArgument},
      {Status::not_found("b"), StatusCode::kNotFound},
      {Status::already_exists("c"), StatusCode::kAlreadyExists},
      {Status::resource_exhausted("d"), StatusCode::kResourceExhausted},
      {Status::unavailable("e"), StatusCode::kUnavailable},
      {Status::deadline_exceeded("f"), StatusCode::kDeadlineExceeded},
      {Status::failed_precondition("g"), StatusCode::kFailedPrecondition},
      {Status::internal("h"), StatusCode::kInternal},
      {Status::cancelled("i"), StatusCode::kCancelled},
      {Status::out_of_range("j"), StatusCode::kOutOfRange},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.is_ok());
    EXPECT_EQ(c.status.code(), c.expected);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::not_found("stage 7");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: stage 7");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::not_found("x"), Status::not_found("y"));
  EXPECT_FALSE(Status::not_found("x") == Status::unavailable("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::not_found("gone");
  EXPECT_FALSE(r.is_ok());
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.is_ok());
  auto owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Status fails() { return Status::internal("boom"); }
Status propagates() {
  SDS_RETURN_IF_ERROR(fails());
  return Status::ok();
}
Status succeeds_then_ok() {
  SDS_RETURN_IF_ERROR(Status::ok());
  return Status::invalid_argument("reached");
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_EQ(propagates().code(), StatusCode::kInternal);
  EXPECT_EQ(succeeds_then_ok().code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_EQ(to_string(StatusCode::kOk), "OK");
  EXPECT_EQ(to_string(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
  EXPECT_EQ(to_string(StatusCode::kDeadlineExceeded), "DEADLINE_EXCEEDED");
}

}  // namespace
}  // namespace sds
