#include "common/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace sds {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
  EXPECT_EQ(h.percentile(0.5), 1000);
  EXPECT_EQ(h.percentile(1.0), 1000);
}

TEST(HistogramTest, ExactForSmallValues) {
  // Values below kSubBuckets land in exact unit buckets.
  Histogram h;
  for (int v = 0; v < Histogram::kSubBuckets; ++v) h.record(v);
  EXPECT_EQ(h.percentile(0.0), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), Histogram::kSubBuckets - 1);
}

TEST(HistogramTest, MeanAndStddevMatchExact) {
  Histogram h;
  for (const std::int64_t v : {10, 20, 30, 40}) h.record(v);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
  EXPECT_NEAR(h.stddev(), 12.909944, 1e-5);
}

TEST(HistogramTest, PercentileBoundedRelativeError) {
  Histogram h;
  Rng rng(99);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 100'000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_below(50'000'000));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    const auto approx = h.percentile(q);
    // Log-bucketing with 32 sub-buckets: relative error < ~6%.
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.07 + 1)
        << "quantile " << q;
  }
}

TEST(HistogramTest, PercentileIsMonotoneInQ) {
  Histogram h;
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    h.record(static_cast<std::int64_t>(rng.next_below(1'000'000)));
  }
  std::int64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const auto v = h.percentile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.record(-100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
}

TEST(HistogramTest, RecordNanos) {
  Histogram h;
  h.record(millis(5));
  EXPECT_EQ(h.max(), 5'000'000);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.record(100);
  a.record(200);
  b.record(300);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 100);
  EXPECT_EQ(a.max(), 300);
  EXPECT_DOUBLE_EQ(a.mean(), 200.0);
}

TEST(HistogramTest, MergeWithEmpty) {
  Histogram a;
  Histogram b;
  a.record(42);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.min(), 42);
}

TEST(HistogramTest, MergeMatchesHistogramOfConcatenation) {
  // merge(a, b) must be indistinguishable from recording the concatenated
  // stream into one histogram: same buckets, same exact moments, same
  // percentile at every quantile.
  Histogram left;
  Histogram right;
  Histogram all;
  Rng rng(17);
  for (int i = 0; i < 20'000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_below(10'000'000));
    all.record(v);
    (i % 3 == 0 ? left : right).record(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
  // Moments are exact up to floating-point summation order (the split
  // streams accumulate sum/sum_sq in a different order).
  EXPECT_NEAR(left.mean(), all.mean(), std::abs(all.mean()) * 1e-12);
  EXPECT_NEAR(left.stddev(), all.stddev(), std::abs(all.stddev()) * 1e-9);
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    EXPECT_EQ(left.percentile(q), all.percentile(q)) << "quantile " << q;
  }
}

TEST(HistogramTest, PercentileAtBucketBoundaries) {
  // q=0 must return the exact recorded minimum and q=1 the exact maximum,
  // even when those values sit on log-bucket boundaries far apart.
  Histogram h;
  h.record(3);
  h.record(1'000);
  h.record(1'048'576);  // 2^20, a bucket edge
  EXPECT_EQ(h.percentile(0.0), 3);
  EXPECT_EQ(h.percentile(1.0), 1'048'576);
  // A two-value histogram: the median rank lands on the lower value.
  Histogram two;
  two.record(10);
  two.record(1'000'000);
  EXPECT_EQ(two.percentile(0.0), 10);
  EXPECT_EQ(two.percentile(1.0), 1'000'000);
  EXPECT_LE(two.percentile(0.5), two.percentile(0.51));
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.record(1);
  h.record(1'000'000);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SummaryStringContainsFields) {
  Histogram h;
  h.record(millis(1));
  const std::string s = h.summary_ms();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("mean="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.record(std::int64_t{1} << 62);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.percentile(1.0), 0);
}

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, CvMatchesDefinition) {
  RunningStats s;
  s.add(90);
  s.add(100);
  s.add(110);
  EXPECT_NEAR(s.cv(), s.stddev() / s.mean(), 1e-12);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(3);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(50, 10);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

}  // namespace
}  // namespace sds
