#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace sds {
namespace {

TEST(WaitGroupTest, WaitReturnsWhenDone) {
  WaitGroup wg;
  wg.add(2);
  std::thread a([&] { wg.done(); });
  std::thread b([&] { wg.done(); });
  wg.wait();
  a.join();
  b.join();
}

TEST(WaitGroupTest, WaitOnZeroReturnsImmediately) {
  WaitGroup wg;
  wg.wait();
}

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  WaitGroup wg;
  for (int i = 0; i < 100; ++i) {
    wg.add();
    ASSERT_TRUE(pool.submit([&] {
      count.fetch_add(1);
      wg.done();
    }));
  }
  wg.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SizeClampsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ParallelForSmallerThanPool) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
    }
    pool.shutdown();
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool(4);
  std::vector<long long> partial(10'000);
  pool.parallel_for(partial.size(),
                    [&](std::size_t i) { partial[i] = static_cast<long long>(i); });
  const long long sum = std::accumulate(partial.begin(), partial.end(), 0LL);
  EXPECT_EQ(sum, 10'000LL * 9'999 / 2);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      if (i == 17) throw std::runtime_error("boom at 17");
      ran.fetch_add(1);
    });
    FAIL() << "expected exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 17");
  }
  // Every chunk other than the throwing one ran to completion before the
  // rethrow; only indices after 17 inside its own chunk may be skipped.
  EXPECT_GE(ran.load(), 64 - 4);
  EXPECT_LT(ran.load(), 64);
}

TEST(ThreadPoolTest, ParallelForExceptionLeavesPoolUsable) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   8, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, NoLostTasksUnderContention) {
  // Many producer threads hammer submit while the pool drains; every task
  // accepted (submit returned true) must run exactly once.
  ThreadPool pool(4);
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 500;
  std::atomic<int> accepted{0};
  std::atomic<int> executed{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (pool.submit([&] { executed.fetch_add(1); })) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.shutdown();
  EXPECT_EQ(accepted.load(), kProducers * kPerProducer);
  EXPECT_EQ(executed.load(), accepted.load());
}

TEST(ThreadPoolTest, SubmitDuringShutdownNeverLosesAcceptedTasks) {
  // Race submit against shutdown: tasks for which submit returned true
  // must all execute even when shutdown lands mid-burst.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> accepted{0};
    std::atomic<int> executed{0};
    ThreadPool pool(2);
    std::thread producer([&] {
      for (int i = 0; i < 200; ++i) {
        if (pool.submit([&] { executed.fetch_add(1); })) {
          accepted.fetch_add(1);
        }
      }
    });
    pool.shutdown();
    producer.join();
    EXPECT_EQ(executed.load(), accepted.load()) << "round " << round;
  }
}

TEST(ThreadPoolTest, InWorkerReflectsCallingThread) {
  EXPECT_FALSE(ThreadPool::in_worker());
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  pool.parallel_for(8, [&](std::size_t) {
    if (ThreadPool::in_worker()) inside.fetch_add(1);
  });
  EXPECT_EQ(inside.load(), 8);
  // The flag is thread-local: it never leaks back to the caller.
  EXPECT_FALSE(ThreadPool::in_worker());
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  // A worker that calls parallel_for again must not submit-and-wait: on a
  // small pool every worker could end up parked behind its own nested
  // chunks. The nested call runs all indices inline on the worker.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(16, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 4 * 16);
}

TEST(ThreadPoolTest, NestedCallIntoDifferentPoolAlsoRunsInline) {
  // in_worker() is global across pools: a second pool's parallel_for
  // invoked from another pool's worker stays inline rather than stacking
  // thread teams on the same cores.
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> total{0};
  std::atomic<int> seen_in_worker{0};
  outer.parallel_for(4, [&](std::size_t) {
    inner.parallel_for(8, [&](std::size_t) {
      if (ThreadPool::in_worker()) seen_in_worker.fetch_add(1);
      total.fetch_add(1);
    });
  });
  EXPECT_EQ(total.load(), 4 * 8);
  EXPECT_EQ(seen_in_worker.load(), 4 * 8);
}

TEST(ThreadPoolTest, NestedParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  std::atomic<int> outer_failures{0};
  pool.parallel_for(4, [&](std::size_t) {
    try {
      pool.parallel_for(8, [](std::size_t i) {
        if (i == 5) throw std::runtime_error("nested boom");
      });
    } catch (const std::runtime_error& e) {
      if (std::string(e.what()) == "nested boom") outer_failures.fetch_add(1);
    }
  });
  EXPECT_EQ(outer_failures.load(), 4);
}

TEST(ThreadPoolTest, StealsWorkFromBusySiblings) {
  // One long task pins a worker; the remaining short tasks must finish
  // long before the pinned task does, which requires stealing.
  ThreadPool pool(4);
  std::atomic<bool> release{false};
  std::atomic<int> shorts_done{0};
  WaitGroup wg;
  wg.add();
  ASSERT_TRUE(pool.submit([&] {
    while (!release.load()) std::this_thread::yield();
    wg.done();
  }));
  constexpr int kShorts = 64;
  WaitGroup shorts;
  for (int i = 0; i < kShorts; ++i) {
    shorts.add();
    ASSERT_TRUE(pool.submit([&] {
      shorts_done.fetch_add(1);
      shorts.done();
    }));
  }
  shorts.wait();  // completes while the long task still holds its worker
  EXPECT_EQ(shorts_done.load(), kShorts);
  release.store(true);
  wg.wait();
}

}  // namespace
}  // namespace sds
