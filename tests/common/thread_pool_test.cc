#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace sds {
namespace {

TEST(WaitGroupTest, WaitReturnsWhenDone) {
  WaitGroup wg;
  wg.add(2);
  std::thread a([&] { wg.done(); });
  std::thread b([&] { wg.done(); });
  wg.wait();
  a.join();
  b.join();
}

TEST(WaitGroupTest, WaitOnZeroReturnsImmediately) {
  WaitGroup wg;
  wg.wait();
}

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  WaitGroup wg;
  for (int i = 0; i < 100; ++i) {
    wg.add();
    ASSERT_TRUE(pool.submit([&] {
      count.fetch_add(1);
      wg.done();
    }));
  }
  wg.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SizeClampsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ParallelForSmallerThanPool) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
    }
    pool.shutdown();
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool(4);
  std::vector<long long> partial(10'000);
  pool.parallel_for(partial.size(),
                    [&](std::size_t i) { partial[i] = static_cast<long long>(i); });
  const long long sum = std::accumulate(partial.begin(), partial.end(), 0LL);
  EXPECT_EQ(sum, 10'000LL * 9'999 / 2);
}

}  // namespace
}  // namespace sds
