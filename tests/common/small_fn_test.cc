#include "common/small_fn.h"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>

namespace sds {
namespace {

TEST(SmallFnTest, DefaultConstructedIsEmpty) {
  SmallFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(SmallFnTest, InvokesInlineClosure) {
  int calls = 0;
  SmallFn fn = [&calls] { ++calls; };
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(SmallFnTest, InvokesHeapClosure) {
  // A capture larger than the inline buffer takes the heap path.
  std::array<std::byte, kSmallFnInlineBytes * 2> big{};
  big[0] = std::byte{42};
  int observed = 0;
  SmallFn fn = [big, &observed] { observed = std::to_integer<int>(big[0]); };
  fn();
  EXPECT_EQ(observed, 42);
}

TEST(SmallFnTest, MoveTransfersInlineTarget) {
  int calls = 0;
  SmallFn a = [&calls] { ++calls; };
  SmallFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(SmallFnTest, MoveTransfersHeapTarget) {
  std::array<std::byte, kSmallFnInlineBytes * 2> big{};
  int calls = 0;
  SmallFn a = [big, &calls] { ++calls; };
  SmallFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(calls, 1);
}

TEST(SmallFnTest, MoveOnlyCapturesWork) {
  auto value = std::make_unique<int>(7);
  int observed = 0;
  SmallFn fn = [value = std::move(value), &observed] { observed = *value; };
  fn();
  EXPECT_EQ(observed, 7);
}

TEST(SmallFnTest, DestroysTargetExactlyOnce) {
  auto tracker = std::make_shared<int>(0);
  EXPECT_EQ(tracker.use_count(), 1);
  {
    SmallFn fn = [tracker] {};
    EXPECT_EQ(tracker.use_count(), 2);
    SmallFn moved = std::move(fn);
    EXPECT_EQ(tracker.use_count(), 2);  // relocated, not copied
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(SmallFnTest, DestroysHeapTargetExactlyOnce) {
  auto tracker = std::make_shared<int>(0);
  std::array<std::byte, kSmallFnInlineBytes * 2> big{};
  {
    SmallFn fn = [tracker, big] {};
    EXPECT_EQ(tracker.use_count(), 2);
    SmallFn moved = std::move(fn);
    EXPECT_EQ(tracker.use_count(), 2);
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(SmallFnTest, ResetDestroysTarget) {
  auto tracker = std::make_shared<int>(0);
  SmallFn fn = [tracker] {};
  EXPECT_EQ(tracker.use_count(), 2);
  fn.reset();
  EXPECT_EQ(tracker.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(SmallFnTest, MoveAssignReplacesExistingTarget) {
  auto old_target = std::make_shared<int>(0);
  int calls = 0;
  SmallFn fn = [old_target] {};
  fn = SmallFn([&calls] { ++calls; });
  EXPECT_EQ(old_target.use_count(), 1);  // old target destroyed
  fn();
  EXPECT_EQ(calls, 1);
}

TEST(SmallFnTest, AcceptsLvalueStdFunction) {
  // The engine's cascade pattern copies a std::function into the event.
  int calls = 0;
  std::function<void()> source = [&calls] { ++calls; };
  SmallFn fn = source;
  fn();
  source();
  EXPECT_EQ(calls, 2);
}

TEST(SmallFnTest, NestedSmallFnStaysFunctional) {
  // SimHost::send wraps an arrival continuation inside the NIC closure;
  // SmallFn must nest (possibly via the heap path) without slicing.
  int observed = 0;
  SmallFn inner = [&observed] { observed = 11; };
  SmallFn outer = [inner = std::move(inner)]() mutable { inner(); };
  outer();
  EXPECT_EQ(observed, 11);
}

TEST(SmallFnTest, SelfMoveAssignIsSafe) {
  int calls = 0;
  SmallFn fn = [&calls] { ++calls; };
  SmallFn& alias = fn;
  fn = std::move(alias);
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace sds
