// Shutdown-while-waiting ordering for Queue and ThreadPool: a close()
// or shutdown() racing blocked waiters must always wake them with a
// coherent answer (drain semantics for queues, full execution for
// accepted pool work). Run race-checked via `ctest -L tsan` in an
// SDS_TSAN build — the predicates these tests exercise are exactly the
// ones the thread-safety annotations in common/queue.h and
// common/thread_pool.h pin down.

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "common/thread_pool.h"

namespace sds {
namespace {

TEST(QueueShutdownTest, CloseWakesBlockedPoppers) {
  Queue<int> queue;
  constexpr int kPoppers = 8;
  std::atomic<int> woke{0};
  std::vector<std::thread> poppers;
  poppers.reserve(kPoppers);
  for (int i = 0; i < kPoppers; ++i) {
    poppers.emplace_back([&queue, &woke] {
      const std::optional<int> item = queue.pop();  // blocks: queue empty
      EXPECT_FALSE(item.has_value());
      woke.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Give the poppers a chance to actually park in the predicate wait;
  // close() must wake them whether they got there or not.
  std::this_thread::yield();
  queue.close();
  for (auto& popper : poppers) popper.join();
  EXPECT_EQ(woke.load(), kPoppers);
}

TEST(QueueShutdownTest, CloseWakesBlockedPushersOnFullQueue) {
  Queue<int> queue(/*capacity=*/2);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  constexpr int kPushers = 4;
  std::atomic<int> rejected{0};
  std::vector<std::thread> pushers;
  pushers.reserve(kPushers);
  for (int i = 0; i < kPushers; ++i) {
    pushers.emplace_back([&queue, &rejected] {
      if (!queue.push(99)) rejected.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::this_thread::yield();
  queue.close();
  for (auto& pusher : pushers) pusher.join();
  // Every pusher was blocked on a full queue; close() rejects them all.
  EXPECT_EQ(rejected.load(), kPushers);
  // Items accepted before the close still drain in order.
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(QueueShutdownTest, CloseRacingPoppersDrainsEveryAcceptedItem) {
  // close() concurrent with a popper crowd: each accepted item is
  // delivered exactly once, and every popper eventually returns.
  constexpr int kItems = 64;
  constexpr int kPoppers = 6;
  Queue<int> queue;
  std::atomic<int> popped{0};
  std::vector<std::thread> poppers;
  poppers.reserve(kPoppers);
  for (int i = 0; i < kPoppers; ++i) {
    poppers.emplace_back([&queue, &popped] {
      while (queue.pop().has_value()) {
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread producer([&queue] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(queue.push(i));
    queue.close();
  });
  producer.join();
  for (auto& popper : poppers) popper.join();
  EXPECT_EQ(popped.load(), kItems);
  EXPECT_TRUE(queue.closed());
}

TEST(QueueShutdownTest, PopForTimesOutWithoutCloseAndReturnsOnClose) {
  Queue<int> queue;
  // Timeout path: no producer, short deadline.
  EXPECT_EQ(queue.pop_for(Nanos{1'000'000}), std::nullopt);
  // Close path: a waiter with a generous deadline returns promptly on
  // close rather than burning the full timeout.
  std::thread waiter([&queue] {
    EXPECT_EQ(queue.pop_for(Nanos{60'000'000'000}), std::nullopt);
  });
  std::this_thread::yield();
  queue.close();
  waiter.join();
}

TEST(ThreadPoolShutdownTest, ShutdownRunsAllAcceptedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 256; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor performs the shutdown: accepted tasks all run.
  }
  EXPECT_EQ(ran.load(), 256);
}

TEST(ThreadPoolShutdownTest, SubmitRacingShutdownNeverLosesAcceptedWork) {
  // Tasks submitted concurrently with shutdown either run (accepted) or
  // are rejected — but an accepted submit must never be dropped.
  std::atomic<int> ran{0};
  std::atomic<int> accepted{0};
  ThreadPool pool(2);
  std::vector<std::thread> submitters;
  submitters.reserve(4);
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &ran, &accepted] {
      for (int i = 0; i < 128; ++i) {
        if (pool.submit(
                [&ran] { ran.fetch_add(1, std::memory_order_relaxed); })) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  pool.shutdown();
  for (auto& submitter : submitters) submitter.join();
  // Late submits may be rejected, but the accounting must balance.
  EXPECT_EQ(ran.load(), accepted.load());
}

}  // namespace
}  // namespace sds
