#include "common/log.h"

#include <gtest/gtest.h>

namespace sds {
namespace {

TEST(LogTest, LevelThresholdGates) {
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();

  logger.set_level(LogLevel::kWARN);
  EXPECT_FALSE(logger.enabled(LogLevel::kDEBUG));
  EXPECT_FALSE(logger.enabled(LogLevel::kINFO));
  EXPECT_TRUE(logger.enabled(LogLevel::kWARN));
  EXPECT_TRUE(logger.enabled(LogLevel::kERROR));

  logger.set_level(LogLevel::kTRACE);
  EXPECT_TRUE(logger.enabled(LogLevel::kTRACE));

  logger.set_level(LogLevel::kOFF);
  EXPECT_FALSE(logger.enabled(LogLevel::kERROR));

  logger.set_level(original);
}

TEST(LogTest, MacroCompilesAndStreams) {
  Logger::instance().set_level(LogLevel::kOFF);
  SDS_LOG(INFO) << "value " << 42 << " and " << 1.5;  // gated, no output
  Logger::instance().set_level(LogLevel::kWARN);
}

TEST(LogTest, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kTRACE), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kDEBUG), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kINFO), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWARN), "WARN");
  EXPECT_EQ(to_string(LogLevel::kERROR), "ERROR");
}

TEST(LogTest, WriteDoesNotCrashWithEmptyMessage) {
  Logger::instance().write(LogLevel::kERROR, "file.cc", 1, "");
}

}  // namespace
}  // namespace sds
