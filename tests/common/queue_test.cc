#include "common/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace sds {
namespace {

TEST(QueueTest, PushPopSingleThread) {
  Queue<int> q;
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
}

TEST(QueueTest, TryPopEmptyReturnsNullopt) {
  Queue<int> q;
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(QueueTest, PopForTimesOut) {
  Queue<int> q;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(q.pop_for(millis(30)), std::nullopt);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
}

TEST(QueueTest, BoundedTryPushFailsWhenFull) {
  Queue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.try_pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(QueueTest, CloseRejectsPushAndDrains) {
  Queue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop(), 1);  // drains existing items
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);  // then returns nullopt
}

TEST(QueueTest, CloseWakesBlockedPop) {
  Queue<int> q;
  std::thread t([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  t.join();
}

TEST(QueueTest, CloseWakesBlockedPush) {
  Queue<int> q(1);
  q.push(1);
  std::thread t([&] { EXPECT_FALSE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  t.join();
}

TEST(QueueTest, MoveOnlyItems) {
  Queue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(9));
  auto item = q.pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 9);
}

TEST(QueueTest, MpmcStressPreservesAllItems) {
  Queue<int> q(64);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5'000;

  std::atomic<long long> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto item = q.pop()) {
        sum.fetch_add(*item);
        consumed.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (int c = kProducers; c < kProducers + kConsumers; ++c) threads[c].join();

  const long long total = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(sum.load(), total * (total - 1) / 2);
}

}  // namespace
}  // namespace sds
