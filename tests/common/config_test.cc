#include "common/config.h"

#include <gtest/gtest.h>

namespace sds {
namespace {

TEST(ConfigTest, ParseBasicKeyValues) {
  auto config = Config::from_string("a=1\nb = two\nc.d = 3.5\n");
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config->get("a"), "1");
  EXPECT_EQ(config->get("b"), "two");
  EXPECT_EQ(config->get("c.d"), "3.5");
}

TEST(ConfigTest, CommentsAndBlankLines) {
  auto config = Config::from_string(
      "# full comment line\n"
      "\n"
      "key = value # trailing comment\n"
      "   \n");
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config->get("key"), "value");
  EXPECT_EQ(config->entries().size(), 1u);
}

TEST(ConfigTest, MissingEqualsIsError) {
  auto config = Config::from_string("just a line\n");
  EXPECT_FALSE(config.is_ok());
  EXPECT_EQ(config.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConfigTest, EmptyKeyIsError) {
  auto config = Config::from_string("= nope\n");
  EXPECT_FALSE(config.is_ok());
}

TEST(ConfigTest, LaterKeysWin) {
  auto config = Config::from_string("x=1\nx=2\n");
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config->get_int_or("x", 0), 2);
}

TEST(ConfigTest, TypedGetters) {
  auto config = Config::from_string(
      "int=42\nneg=-7\ndouble=2.5\nbool_t=true\nbool_1=1\nbool_f=off\n");
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config->get_int("int").value(), 42);
  EXPECT_EQ(config->get_int("neg").value(), -7);
  EXPECT_DOUBLE_EQ(config->get_double("double").value(), 2.5);
  EXPECT_TRUE(config->get_bool("bool_t").value());
  EXPECT_TRUE(config->get_bool("bool_1").value());
  EXPECT_FALSE(config->get_bool("bool_f").value());
}

TEST(ConfigTest, TypedGetterErrors) {
  auto config = Config::from_string("s=hello\npartial=12x\n");
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config->get_int("s").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(config->get_int("partial").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(config->get_int("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(config->get_bool("s").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ConfigTest, FallbackGetters) {
  Config config;
  EXPECT_EQ(config.get_int_or("x", 5), 5);
  EXPECT_DOUBLE_EQ(config.get_double_or("x", 1.5), 1.5);
  EXPECT_TRUE(config.get_bool_or("x", true));
  EXPECT_EQ(config.get_or("x", "d"), "d");
}

TEST(ConfigTest, ApplyArgsParsesFlags) {
  Config config;
  const char* argv[] = {"prog", "--a=1", "positional", "--b.c=x", "--noval"};
  const auto rest = config.apply_args(5, argv);
  EXPECT_EQ(config.get_int_or("a", 0), 1);
  EXPECT_EQ(config.get("b.c"), "x");
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0], "prog");
  EXPECT_EQ(rest[1], "positional");
  EXPECT_EQ(rest[2], "--noval");
}

TEST(ConfigTest, MergeFromOtherWins) {
  auto base = Config::from_string("a=1\nb=2\n").value();
  auto overlay = Config::from_string("b=3\nc=4\n").value();
  base.merge_from(overlay);
  EXPECT_EQ(base.get_int_or("a", 0), 1);
  EXPECT_EQ(base.get_int_or("b", 0), 3);
  EXPECT_EQ(base.get_int_or("c", 0), 4);
}

TEST(ConfigTest, FromFileNotFound) {
  auto config = Config::from_file("/nonexistent/sdscale.conf");
  EXPECT_FALSE(config.is_ok());
  EXPECT_EQ(config.status().code(), StatusCode::kNotFound);
}

TEST(ConfigTest, ContainsAndSet) {
  Config config;
  EXPECT_FALSE(config.contains("k"));
  config.set("k", "v");
  EXPECT_TRUE(config.contains("k"));
}

}  // namespace
}  // namespace sds
