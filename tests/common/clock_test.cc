#include "common/clock.h"

#include <gtest/gtest.h>

namespace sds {
namespace {

TEST(ClockTest, UnitHelpers) {
  EXPECT_EQ(nanos(5).count(), 5);
  EXPECT_EQ(micros(2).count(), 2'000);
  EXPECT_EQ(millis(3).count(), 3'000'000);
  EXPECT_EQ(seconds(1).count(), 1'000'000'000);
}

TEST(ClockTest, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(to_millis(millis(7)), 7.0);
  EXPECT_DOUBLE_EQ(to_micros(micros(9)), 9.0);
}

TEST(ManualClockTest, StartsAtGivenTime) {
  ManualClock clock(millis(5));
  EXPECT_EQ(clock.now(), millis(5));
}

TEST(ManualClockTest, AdvanceAndSet) {
  ManualClock clock;
  EXPECT_EQ(clock.now(), Nanos{0});
  clock.advance(micros(10));
  EXPECT_EQ(clock.now(), micros(10));
  clock.advance(micros(5));
  EXPECT_EQ(clock.now(), micros(15));
  clock.set(seconds(1));
  EXPECT_EQ(clock.now(), seconds(1));
}

TEST(SystemClockTest, MonotonicallyNonDecreasing) {
  const SystemClock& clock = SystemClock::instance();
  const Nanos a = clock.now();
  const Nanos b = clock.now();
  EXPECT_LE(a, b);
}

TEST(StopwatchTest, MeasuresManualClock) {
  ManualClock clock;
  Stopwatch watch(clock);
  clock.advance(millis(3));
  EXPECT_EQ(watch.elapsed(), millis(3));
  watch.restart();
  EXPECT_EQ(watch.elapsed(), Nanos{0});
  clock.advance(micros(7));
  EXPECT_EQ(watch.elapsed(), micros(7));
}

}  // namespace
}  // namespace sds
