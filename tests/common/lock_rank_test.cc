// Tests for the debug-build lock-order validator (common/lock_rank.h).
//
// The validator is compiled out unless SDS_LOCK_ORDER_CHECKS is on
// (Debug builds, -DSDS_LOCK_ORDER=ON, or -DSDS_TSAN=ON), so in release
// configurations this file degenerates to a single skip. When the
// checks are live we install a capturing violation handler — the
// default one aborts — and drive real Mutex / MutexLock objects
// through ordered, inverted, and try-lock acquisition patterns.

#include "common/lock_rank.h"

#include <gtest/gtest.h>

#include <string>

#include "common/mutex.h"

#if defined(SDS_LOCK_ORDER_CHECKS) && SDS_LOCK_ORDER_CHECKS

namespace {

int g_violations = 0;
std::string g_last_message;

void capture_violation(const char* message) {
  ++g_violations;
  g_last_message = message;
}

// Installs the capturing handler for one test and restores whatever was
// there before (the default abort handler under ctest).
class CaptureViolations {
 public:
  CaptureViolations() {
    g_violations = 0;
    g_last_message.clear();
    previous_ = sds::lock_order::set_violation_handler(capture_violation);
  }
  ~CaptureViolations() {
    sds::lock_order::set_violation_handler(previous_);
  }

 private:
  sds::lock_order::ViolationHandler previous_;
};

TEST(LockOrder, OrderedNestingIsClean) {
  CaptureViolations capture;
  sds::Mutex outer{sds::LockRank::kQueue};
  sds::Mutex inner{sds::LockRank::kLog};
  {
    sds::MutexLock hold_outer(outer);
    sds::MutexLock hold_inner(inner);
    EXPECT_EQ(sds::lock_order::held_count(), 2u);
  }
  EXPECT_EQ(g_violations, 0) << g_last_message;
  EXPECT_EQ(sds::lock_order::held_count(), 0u);
}

TEST(LockOrder, InversionReportsBeforeBlocking) {
  CaptureViolations capture;
  sds::Mutex high{sds::LockRank::kTelemetryRegistry};
  sds::Mutex low{sds::LockRank::kQueue};
  {
    sds::MutexLock hold_high(high);
    sds::MutexLock hold_low(low);  // kQueue < kTelemetryRegistry: violation
  }
  EXPECT_EQ(g_violations, 1);
  EXPECT_NE(g_last_message.find("kQueue"), std::string::npos)
      << g_last_message;
  EXPECT_NE(g_last_message.find("kTelemetryRegistry"), std::string::npos)
      << g_last_message;
  EXPECT_EQ(sds::lock_order::held_count(), 0u);
}

TEST(LockOrder, EqualRanksMayNotNest) {
  CaptureViolations capture;
  sds::Mutex a{sds::LockRank::kStage};
  sds::Mutex b{sds::LockRank::kStage};
  {
    sds::MutexLock hold_a(a);
    sds::MutexLock hold_b(b);  // same rank: must use try_lock instead
  }
  EXPECT_EQ(g_violations, 1) << g_last_message;
}

TEST(LockOrder, TryLockIsExemptFromOrdering) {
  CaptureViolations capture;
  sds::Mutex high{sds::LockRank::kLog};
  sds::Mutex low{sds::LockRank::kQueue};
  {
    sds::MutexLock hold_high(high);
    // try_lock cannot deadlock, so rank inversion is permitted.
    ASSERT_TRUE(low.try_lock());
    EXPECT_EQ(sds::lock_order::held_count(), 2u);
    low.unlock();
  }
  EXPECT_EQ(g_violations, 0) << g_last_message;
  EXPECT_EQ(sds::lock_order::held_count(), 0u);
}

TEST(LockOrder, UnrankedMutexesAreNeverCompared) {
  CaptureViolations capture;
  sds::Mutex ranked{sds::LockRank::kLeaf};
  sds::Mutex unranked;  // legacy-style, no rank
  {
    sds::MutexLock hold_ranked(ranked);
    sds::MutexLock hold_unranked(unranked);
    EXPECT_EQ(sds::lock_order::held_count(), 2u);
  }
  {
    // The reverse nesting is equally silent. Fresh instances: nesting
    // the SAME pair both ways would be a genuine A/B cycle, and under
    // TSan its own deadlock detector would (correctly) flag it.
    sds::Mutex ranked2{sds::LockRank::kLeaf};
    sds::Mutex unranked2;
    sds::MutexLock hold_unranked(unranked2);
    sds::MutexLock hold_ranked(ranked2);
  }
  EXPECT_EQ(g_violations, 0) << g_last_message;
}

TEST(LockOrder, OutOfOrderReleaseIsTracked) {
  CaptureViolations capture;
  sds::Mutex a{sds::LockRank::kQueue};
  sds::Mutex b{sds::LockRank::kThreadPool};
  a.lock();
  b.lock();
  a.unlock();  // released before b: stack must drop the right entry
  EXPECT_EQ(sds::lock_order::held_count(), 1u);
  b.unlock();
  EXPECT_EQ(sds::lock_order::held_count(), 0u);
  EXPECT_EQ(g_violations, 0) << g_last_message;
}

TEST(LockOrder, ViolationMessageNamesTheHeader) {
  CaptureViolations capture;
  sds::Mutex high{sds::LockRank::kLeaf};
  sds::Mutex low{sds::LockRank::kRuntimeServer};
  {
    sds::MutexLock hold_high(high);
    sds::MutexLock hold_low(low);
  }
  ASSERT_EQ(g_violations, 1);
  EXPECT_NE(g_last_message.find("common/lock_rank.h"), std::string::npos)
      << g_last_message;
}

TEST(LockOrder, RankAccessorReflectsConstruction) {
  sds::Mutex mu{sds::LockRank::kMonitor};
  EXPECT_EQ(mu.rank(), sds::LockRank::kMonitor);
  sds::Mutex plain;
  EXPECT_EQ(plain.rank(), sds::LockRank::kUnranked);
}

TEST(LockOrder, ToStringCoversTheTable) {
  EXPECT_STREQ(sds::to_string(sds::LockRank::kUnranked), "kUnranked");
  EXPECT_STREQ(sds::to_string(sds::LockRank::kQueue), "kQueue");
  EXPECT_STREQ(sds::to_string(sds::LockRank::kLeaf), "kLeaf");
}

}  // namespace

#else  // !SDS_LOCK_ORDER_CHECKS

TEST(LockOrder, ChecksAreCompiledOut) {
  GTEST_SKIP() << "built without SDS_LOCK_ORDER_CHECKS; configure with "
                  "-DSDS_LOCK_ORDER=ON (or a Debug / TSan build) to "
                  "exercise the runtime validator";
}

#endif  // SDS_LOCK_ORDER_CHECKS
