#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace sds {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(13);
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneAlwaysZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(19);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t x = rng.uniform_int(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(29);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);  // mean = 1/rate
}

TEST(RngTest, ExponentialAlwaysPositive) {
  Rng rng(31);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GT(rng.exponential(0.001), 0.0);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(37);
  double sum = 0;
  double sum_sq = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, PoissonMeanSmallLambda) {
  Rng rng(41);
  double sum = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, PoissonMeanLargeLambda) {
  Rng rng(43);
  double sum = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(RngTest, PoissonZeroLambdaIsZero) {
  Rng rng(47);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(53);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(59);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // compiles = concept satisfied
  EXPECT_EQ(v.size(), 5u);
}

}  // namespace
}  // namespace sds
