#include "transport/tcp.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/queue.h"

namespace sds::transport {
namespace {

using namespace std::chrono_literals;

wire::Frame test_frame(std::uint16_t type, std::size_t payload_size = 8) {
  wire::Frame frame;
  frame.type = type;
  frame.payload.resize(payload_size);
  for (std::size_t i = 0; i < payload_size; ++i) {
    frame.payload[i] = static_cast<std::uint8_t>(i);
  }
  return frame;
}

template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds deadline = 3000ms) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

TEST(TcpTest, BindEphemeralPortReportsAddress) {
  TcpNetwork net;
  auto endpoint = net.bind("127.0.0.1:0", {}).value();
  const std::string& addr = endpoint->address();
  EXPECT_NE(addr.find("127.0.0.1:"), std::string::npos);
  EXPECT_NE(addr, "127.0.0.1:0");  // a real port was chosen
}

TEST(TcpTest, BadAddressRejected) {
  TcpNetwork net;
  EXPECT_FALSE(net.bind("notanaddress", {}).is_ok());
  EXPECT_FALSE(net.bind("127.0.0.1:99999", {}).is_ok());
  EXPECT_FALSE(net.bind("300.1.1.1:80", {}).is_ok());
}

TEST(TcpTest, ConnectAndExchangeFrames) {
  TcpNetwork net;
  auto server = net.bind("127.0.0.1:0", {}).value();
  auto client = net.bind("127.0.0.1:0", {}).value();

  Queue<std::pair<ConnId, wire::Frame>> at_server;
  Queue<wire::Frame> at_client;
  server->set_frame_handler(
      [&](ConnId c, wire::Frame f) { at_server.push({c, std::move(f)}); });
  client->set_frame_handler(
      [&](ConnId, wire::Frame f) { at_client.push(std::move(f)); });

  auto conn = client->connect(server->address());
  ASSERT_TRUE(conn.is_ok()) << conn.status();

  const wire::Frame request = test_frame(5, 64);
  ASSERT_TRUE(client->send(conn.value(), request).is_ok());
  auto received = at_server.pop_for(seconds(3));
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->second.type, 5);
  EXPECT_EQ(received->second.payload, request.payload);

  // Reply over the server-side connection.
  ASSERT_TRUE(server->send(received->first, test_frame(6, 16)).is_ok());
  auto reply = at_client.pop_for(seconds(3));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, 6);
}

TEST(TcpTest, ConnectToClosedPortFails) {
  TcpNetwork net;
  auto client = net.bind("127.0.0.1:0", {}).value();
  // Grab a port then free it so nothing is listening.
  std::string dead_address;
  {
    auto temp = net.bind("127.0.0.1:0", {}).value();
    dead_address = temp->address();
    temp->shutdown();
  }
  auto conn = client->connect(dead_address);
  EXPECT_FALSE(conn.is_ok());
}

TEST(TcpTest, LargeFrameCrossesReadChunks) {
  TcpNetwork net;
  auto server = net.bind("127.0.0.1:0", {}).value();
  auto client = net.bind("127.0.0.1:0", {}).value();

  Queue<wire::Frame> received;
  server->set_frame_handler(
      [&](ConnId, wire::Frame f) { received.push(std::move(f)); });

  const ConnId conn = client->connect(server->address()).value();
  const wire::Frame big = test_frame(9, 1 << 20);  // 1 MiB
  ASSERT_TRUE(client->send(conn, big).is_ok());

  auto frame = received.pop_for(seconds(5));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload.size(), big.payload.size());
  EXPECT_EQ(frame->payload, big.payload);
}

TEST(TcpTest, ManyFramesInOrder) {
  TcpNetwork net;
  auto server = net.bind("127.0.0.1:0", {}).value();
  auto client = net.bind("127.0.0.1:0", {}).value();

  std::vector<std::uint16_t> order;
  std::mutex mu;
  server->set_frame_handler([&](ConnId, wire::Frame f) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(f.type);
  });

  const ConnId conn = client->connect(server->address()).value();
  constexpr int kFrames = 2000;
  for (std::uint16_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(client->send(conn, test_frame(i, 32)).is_ok());
  }
  ASSERT_TRUE(eventually(
      [&] {
        std::lock_guard<std::mutex> lock(mu);
        return order.size() == kFrames;
      },
      5000ms));
  std::lock_guard<std::mutex> lock(mu);
  for (std::uint16_t i = 0; i < kFrames; ++i) EXPECT_EQ(order[i], i);
}

TEST(TcpTest, ConnectionCapRejectsExtraDials) {
  TcpNetwork net;
  EndpointOptions capped;
  capped.max_connections = 2;
  auto server = net.bind("127.0.0.1:0", capped).value();
  auto client = net.bind("127.0.0.1:0", {}).value();

  ASSERT_TRUE(client->connect(server->address()).is_ok());
  ASSERT_TRUE(client->connect(server->address()).is_ok());
  // The third dial succeeds at TCP level but the server closes it
  // immediately; observe via the rejected counter.
  (void)client->connect(server->address());
  EXPECT_TRUE(eventually(
      [&] { return server->counters().connections_rejected >= 1; }));
}

TEST(TcpTest, PeerShutdownNotifiesClient) {
  TcpNetwork net;
  auto server = net.bind("127.0.0.1:0", {}).value();
  auto client = net.bind("127.0.0.1:0", {}).value();

  std::atomic<int> closed{0};
  client->set_conn_handler([&](ConnId, ConnEvent e) {
    if (e == ConnEvent::kClosed) closed.fetch_add(1);
  });
  (void)client->connect(server->address()).value();
  // Let the server finish the accept before shutting down.
  ASSERT_TRUE(
      eventually([&] { return server->counters().connections_accepted == 1; }));
  server->shutdown();
  EXPECT_TRUE(eventually([&] { return closed.load() == 1; }));
}

TEST(TcpTest, CountersTrackTraffic) {
  TcpNetwork net;
  auto server = net.bind("127.0.0.1:0", {}).value();
  auto client = net.bind("127.0.0.1:0", {}).value();
  server->set_frame_handler([](ConnId, wire::Frame) {});

  const ConnId conn = client->connect(server->address()).value();
  const wire::Frame frame = test_frame(1, 100);
  ASSERT_TRUE(client->send(conn, frame).is_ok());

  EXPECT_TRUE(eventually(
      [&] { return server->counters().bytes_received == frame.wire_size(); }));
  EXPECT_EQ(client->counters().bytes_sent, frame.wire_size());
  EXPECT_EQ(client->counters().messages_sent, 1u);
}

TEST(TcpTest, SendAfterShutdownFails) {
  TcpNetwork net;
  auto server = net.bind("127.0.0.1:0", {}).value();
  auto client = net.bind("127.0.0.1:0", {}).value();
  const ConnId conn = client->connect(server->address()).value();
  client->shutdown();
  EXPECT_FALSE(client->send(conn, test_frame(1)).is_ok());
}

TEST(TcpTest, StressManyClientsConcurrently) {
  TcpNetwork net;
  auto server = net.bind("127.0.0.1:0", {}).value();
  std::atomic<int> received{0};
  server->set_frame_handler([&](ConnId, wire::Frame) { received.fetch_add(1); });

  constexpr int kClients = 6;
  constexpr int kPerClient = 300;
  std::vector<std::unique_ptr<Endpoint>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(net.bind("127.0.0.1:0", {}).value());
  }
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      const ConnId conn = clients[i]->connect(server->address()).value();
      for (int j = 0; j < kPerClient; ++j) {
        ASSERT_TRUE(clients[i]->send(conn, test_frame(3, 48)).is_ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(eventually(
      [&] { return received.load() == kClients * kPerClient; }, 10000ms));
}

}  // namespace
}  // namespace sds::transport
