// SharedFrame broadcast through real endpoints: exactly-one-encode,
// refcount/lifetime across delivery threads, and tcp writev paths.
#include "rpc/broadcast.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "proto/messages.h"
#include "transport/inproc.h"
#include "transport/tcp.h"
#include "wire/shared_frame.h"

namespace sds::transport {
namespace {

using namespace std::chrono_literals;

template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds deadline = 2000ms) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

proto::CollectRequest make_request(std::uint64_t cycle) {
  proto::CollectRequest request;
  request.cycle_id = cycle;
  return request;
}

TEST(BroadcastTest, InprocBroadcastEncodesExactlyOnce) {
  InProcNetwork net;
  auto sender = net.bind("sender", {}).value();

  constexpr std::size_t kReceivers = 4;
  std::vector<std::unique_ptr<Endpoint>> receivers;
  std::atomic<std::size_t> delivered{0};
  for (std::size_t i = 0; i < kReceivers; ++i) {
    auto ep = net.bind("recv" + std::to_string(i), {}).value();
    ep->set_frame_handler([&](ConnId, wire::Frame frame) {
      auto request = proto::from_frame<proto::CollectRequest>(frame);
      if (request.is_ok() && request->cycle_id == 42) {
        delivered.fetch_add(1);
      }
    });
    receivers.push_back(std::move(ep));
  }

  std::vector<ConnId> conns;
  for (std::size_t i = 0; i < kReceivers; ++i) {
    conns.push_back(sender->connect("recv" + std::to_string(i)).value());
  }

  const auto encodes_before = wire::EncodeStats::frames_encoded.load();
  const std::size_t queued =
      rpc::broadcast(*sender, conns, make_request(42));
  EXPECT_EQ(queued, kReceivers);
  // One message, N destinations: exactly one encode.
  EXPECT_EQ(wire::EncodeStats::frames_encoded.load() - encodes_before, 1u);
  EXPECT_TRUE(eventually([&] { return delivered.load() == kReceivers; }));

  const auto counters = sender->counters();
  EXPECT_EQ(counters.messages_sent, kReceivers);
}

TEST(BroadcastTest, SharedImageRefcountDropsAfterDelivery) {
  InProcNetwork net;
  auto sender = net.bind("sender", {}).value();
  constexpr std::size_t kReceivers = 3;
  std::vector<std::unique_ptr<Endpoint>> receivers;
  // Addresses built in two steps: GCC 12's -Wrestrict misfires on the
  // `"r" + std::to_string(i)` temporary under -O2 (PR 105329).
  const auto addr = [](std::size_t i) {
    std::string a = "r";
    a += std::to_string(i);
    return a;
  };
  std::atomic<std::size_t> delivered{0};
  for (std::size_t i = 0; i < kReceivers; ++i) {
    auto ep = net.bind(addr(i), {}).value();
    ep->set_frame_handler(
        [&](ConnId, wire::Frame) { delivered.fetch_add(1); });
    receivers.push_back(std::move(ep));
  }
  std::vector<ConnId> conns;
  for (std::size_t i = 0; i < kReceivers; ++i) {
    conns.push_back(sender->connect(addr(i)).value());
  }

  const wire::SharedFrame shared =
      proto::to_shared_frame(make_request(7));
  EXPECT_EQ(shared.use_count(), 1);
  rpc::broadcast_shared(*sender, conns, shared);
  ASSERT_TRUE(eventually([&] { return delivered.load() == kReceivers; }));
  // Each delivery queue entry held one reference; after all deliveries
  // materialize their copy, only the test's handle remains.
  EXPECT_TRUE(eventually([&] { return shared.use_count() == 1; }));
}

TEST(BroadcastTest, SharedImageOutlivesSenderHandle) {
  // Dropping the caller's SharedFrame right after queueing must not
  // invalidate in-flight deliveries: the queues co-own the image.
  InProcNetwork net;
  auto sender = net.bind("sender", {}).value();
  auto receiver = net.bind("receiver", {}).value();
  Queue<wire::Frame> received;
  receiver->set_frame_handler(
      [&](ConnId, wire::Frame frame) { received.push(std::move(frame)); });
  const ConnId conn = sender->connect("receiver").value();

  {
    const wire::SharedFrame shared = proto::to_shared_frame(make_request(9));
    ASSERT_TRUE(sender->send_shared(conn, shared).is_ok());
  }  // sender's handle gone; only the delivery queue holds the image

  auto frame = received.pop_for(seconds(2));
  ASSERT_TRUE(frame.has_value());
  const auto request = proto::from_frame<proto::CollectRequest>(*frame);
  ASSERT_TRUE(request.is_ok());
  EXPECT_EQ(request->cycle_id, 9u);
}

TEST(BroadcastTest, TcpSendSharedRoundTrips) {
  TcpNetwork net;
  auto server = net.bind("127.0.0.1:0", {}).value();
  auto client = net.bind("127.0.0.1:0", {}).value();

  Queue<wire::Frame> received;
  server->set_frame_handler(
      [&](ConnId, wire::Frame frame) { received.push(std::move(frame)); });

  const ConnId conn = client->connect(server->address()).value();
  const wire::SharedFrame shared = proto::to_shared_frame(make_request(11));
  ASSERT_TRUE(client->send_shared(conn, shared).is_ok());

  auto frame = received.pop_for(seconds(5));
  ASSERT_TRUE(frame.has_value());
  const auto request = proto::from_frame<proto::CollectRequest>(*frame);
  ASSERT_TRUE(request.is_ok());
  EXPECT_EQ(request->cycle_id, 11u);
  // The TCP write queue dropped its reference once flushed.
  EXPECT_TRUE(eventually([&] { return shared.use_count() == 1; }));
}

TEST(BroadcastTest, TcpWritevCoalescesBurstOfFrames) {
  // Queue a burst of shared + owned frames; all must arrive intact and
  // in order through the vectored write path.
  TcpNetwork net;
  auto server = net.bind("127.0.0.1:0", {}).value();
  auto client = net.bind("127.0.0.1:0", {}).value();

  Queue<wire::Frame> received;
  server->set_frame_handler(
      [&](ConnId, wire::Frame frame) { received.push(std::move(frame)); });

  const ConnId conn = client->connect(server->address()).value();
  constexpr std::uint64_t kFrames = 200;
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(
          client->send_shared(conn, proto::to_shared_frame(make_request(i)))
              .is_ok());
    } else {
      ASSERT_TRUE(
          client->send(conn, proto::to_frame(make_request(i))).is_ok());
    }
  }
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    auto frame = received.pop_for(seconds(5));
    ASSERT_TRUE(frame.has_value()) << "frame " << i;
    const auto request = proto::from_frame<proto::CollectRequest>(*frame);
    ASSERT_TRUE(request.is_ok());
    EXPECT_EQ(request->cycle_id, i);  // in order
  }
}

TEST(BroadcastTest, SendSharedOnClosedConnectionFails) {
  InProcNetwork net;
  auto sender = net.bind("sender", {}).value();
  auto receiver = net.bind("receiver", {}).value();
  const ConnId conn = sender->connect("receiver").value();
  sender->close(conn);
  const Status status =
      sender->send_shared(conn, proto::to_shared_frame(make_request(1)));
  EXPECT_FALSE(status.is_ok());
}

}  // namespace
}  // namespace sds::transport
