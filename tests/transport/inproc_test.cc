#include "transport/inproc.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/queue.h"
#include "proto/messages.h"

namespace sds::transport {
namespace {

using namespace std::chrono_literals;

wire::Frame test_frame(std::uint16_t type, std::size_t payload_size = 4) {
  wire::Frame frame;
  frame.type = type;
  frame.payload.assign(payload_size, 0x5A);
  return frame;
}

/// Waits for a condition with a deadline (events are asynchronous).
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds deadline = 2000ms) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

TEST(InProcTest, BindConnectSend) {
  InProcNetwork net;
  auto server = net.bind("server", {}).value();
  auto client = net.bind("client", {}).value();

  Queue<wire::Frame> received;
  server->set_frame_handler(
      [&](ConnId, wire::Frame frame) { received.push(std::move(frame)); });

  auto conn = client->connect("server");
  ASSERT_TRUE(conn.is_ok());
  ASSERT_TRUE(client->send(conn.value(), test_frame(7)).is_ok());

  auto frame = received.pop_for(seconds(2));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, 7);
  EXPECT_EQ(frame->payload.size(), 4u);
}

TEST(InProcTest, DuplicateBindRejected) {
  InProcNetwork net;
  auto a = net.bind("addr", {}).value();
  auto b = net.bind("addr", {});
  EXPECT_FALSE(b.is_ok());
  EXPECT_EQ(b.status().code(), StatusCode::kAlreadyExists);
}

TEST(InProcTest, RebindAfterShutdown) {
  InProcNetwork net;
  {
    auto a = net.bind("addr", {}).value();
    a->shutdown();
  }
  auto b = net.bind("addr", {});
  EXPECT_TRUE(b.is_ok());
}

TEST(InProcTest, ConnectUnknownAddressFails) {
  InProcNetwork net;
  auto client = net.bind("client", {}).value();
  auto conn = client->connect("nowhere");
  EXPECT_FALSE(conn.is_ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kNotFound);
}

TEST(InProcTest, BidirectionalTraffic) {
  InProcNetwork net;
  auto a = net.bind("a", {}).value();
  auto b = net.bind("b", {}).value();

  Queue<std::uint16_t> at_a;
  Queue<std::pair<ConnId, std::uint16_t>> at_b;
  a->set_frame_handler([&](ConnId, wire::Frame f) { at_a.push(f.type); });
  b->set_frame_handler(
      [&](ConnId c, wire::Frame f) { at_b.push({c, f.type}); });

  const ConnId a_to_b = a->connect("b").value();
  ASSERT_TRUE(a->send(a_to_b, test_frame(1)).is_ok());
  auto got = at_b.pop_for(seconds(2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->second, 1);

  // Reply on the b-side connection id.
  ASSERT_TRUE(b->send(got->first, test_frame(2)).is_ok());
  auto reply = at_a.pop_for(seconds(2));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, 2);
}

TEST(InProcTest, OrderedDeliveryPerConnection) {
  InProcNetwork net;
  auto server = net.bind("server", {}).value();
  auto client = net.bind("client", {}).value();

  std::vector<std::uint16_t> order;
  std::mutex mu;
  server->set_frame_handler([&](ConnId, wire::Frame f) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(f.type);
  });

  const ConnId conn = client->connect("server").value();
  for (std::uint16_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(client->send(conn, test_frame(i)).is_ok());
  }
  ASSERT_TRUE(eventually([&] {
    std::lock_guard<std::mutex> lock(mu);
    return order.size() == 500;
  }));
  std::lock_guard<std::mutex> lock(mu);
  for (std::uint16_t i = 0; i < 500; ++i) EXPECT_EQ(order[i], i);
}

TEST(InProcTest, ConnectionCapEnforced) {
  InProcNetwork net;
  EndpointOptions capped;
  capped.max_connections = 3;
  auto server = net.bind("server", capped).value();
  auto client = net.bind("client", {}).value();

  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(client->connect("server").is_ok()) << "conn " << i;
  }
  auto over = client->connect("server");
  EXPECT_FALSE(over.is_ok());
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server->counters().connections_rejected, 1u);

  // Closing one frees a slot.
  // (Dial a fresh endpoint to avoid client-side bookkeeping noise.)
}

TEST(InProcTest, CapFreedAfterClose) {
  InProcNetwork net;
  EndpointOptions capped;
  capped.max_connections = 1;
  auto server = net.bind("server", capped).value();
  auto client = net.bind("client", {}).value();

  const ConnId first = client->connect("server").value();
  EXPECT_FALSE(client->connect("server").is_ok());
  client->close(first);
  ASSERT_TRUE(eventually(
      [&] { return server->counters().current_connections == 0; }));
  EXPECT_TRUE(client->connect("server").is_ok());
}

TEST(InProcTest, CloseNotifiesBothSides) {
  InProcNetwork net;
  auto a = net.bind("a", {}).value();
  auto b = net.bind("b", {}).value();

  std::atomic<int> a_closed{0};
  std::atomic<int> b_closed{0};
  a->set_conn_handler([&](ConnId, ConnEvent e) {
    if (e == ConnEvent::kClosed) a_closed.fetch_add(1);
  });
  b->set_conn_handler([&](ConnId, ConnEvent e) {
    if (e == ConnEvent::kClosed) b_closed.fetch_add(1);
  });

  const ConnId conn = a->connect("b").value();
  a->close(conn);
  EXPECT_TRUE(eventually([&] { return a_closed.load() == 1; }));
  EXPECT_TRUE(eventually([&] { return b_closed.load() == 1; }));
}

TEST(InProcTest, SendOnClosedConnectionFails) {
  InProcNetwork net;
  auto a = net.bind("a", {}).value();
  auto b = net.bind("b", {}).value();
  const ConnId conn = a->connect("b").value();
  a->close(conn);
  EXPECT_FALSE(a->send(conn, test_frame(1)).is_ok());
}

TEST(InProcTest, ShutdownClosesPeerConnections) {
  InProcNetwork net;
  auto a = net.bind("a", {}).value();
  auto b = net.bind("b", {}).value();

  std::atomic<int> b_closed{0};
  b->set_conn_handler([&](ConnId, ConnEvent e) {
    if (e == ConnEvent::kClosed) b_closed.fetch_add(1);
  });
  (void)a->connect("b").value();
  a->shutdown();
  EXPECT_TRUE(eventually([&] { return b_closed.load() == 1; }));
}

TEST(InProcTest, CountersTrackBytesAndMessages) {
  InProcNetwork net;
  auto a = net.bind("a", {}).value();
  auto b = net.bind("b", {}).value();
  b->set_frame_handler([](ConnId, wire::Frame) {});

  const ConnId conn = a->connect("b").value();
  const wire::Frame frame = test_frame(1, 100);
  ASSERT_TRUE(a->send(conn, frame).is_ok());

  const auto a_counters = a->counters();
  EXPECT_EQ(a_counters.messages_sent, 1u);
  EXPECT_EQ(a_counters.bytes_sent, frame.wire_size());
  EXPECT_EQ(a_counters.connections_dialed, 1u);

  const auto b_counters = b->counters();
  EXPECT_EQ(b_counters.messages_received, 1u);
  EXPECT_EQ(b_counters.bytes_received, frame.wire_size());
  EXPECT_EQ(b_counters.connections_accepted, 1u);
}

TEST(InProcTest, ManyConcurrentSenders) {
  InProcNetwork net;
  auto server = net.bind("server", {}).value();
  std::atomic<int> received{0};
  server->set_frame_handler([&](ConnId, wire::Frame) { received.fetch_add(1); });

  constexpr int kClients = 8;
  constexpr int kPerClient = 200;
  std::vector<std::unique_ptr<Endpoint>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(net.bind("client" + std::to_string(i), {}).value());
  }
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      const ConnId conn = clients[i]->connect("server").value();
      for (int j = 0; j < kPerClient; ++j) {
        ASSERT_TRUE(clients[i]->send(conn, test_frame(1)).is_ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(
      eventually([&] { return received.load() == kClients * kPerClient; }));
}

TEST(InProcTest, SelfConnectionWorks) {
  InProcNetwork net;
  auto node = net.bind("node", {}).value();
  std::atomic<int> received{0};
  node->set_frame_handler([&](ConnId, wire::Frame) { received.fetch_add(1); });
  const ConnId conn = node->connect("node").value();
  ASSERT_TRUE(node->send(conn, test_frame(1)).is_ok());
  EXPECT_TRUE(eventually([&] { return received.load() == 1; }));
}

}  // namespace
}  // namespace sds::transport
