#include "proto/messages.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sds::proto {
namespace {

/// Round-trip any message through a Frame and verify equality plus that
/// wire_size() is exact.
template <typename M>
void expect_roundtrip(const M& msg) {
  wire::Encoder enc;
  msg.encode(enc);
  EXPECT_EQ(enc.size(), msg.wire_size()) << "wire_size mismatch";

  const wire::Frame frame = to_frame(msg);
  EXPECT_EQ(frame.type, static_cast<std::uint16_t>(M::kType));
  EXPECT_EQ(frame.payload.size(), msg.wire_size());

  auto decoded = from_frame<M>(frame);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status();
  EXPECT_EQ(*decoded, msg);
}

StageMetrics sample_metrics(std::uint32_t i) {
  StageMetrics m;
  m.cycle_id = 77;
  m.stage_id = StageId{i};
  m.job_id = JobId{i / 4};
  m.data_iops = 1000.5 + i;
  m.meta_iops = 50.25 + i;
  m.data_limit = 900.0;
  m.meta_limit = kUnlimited;
  return m;
}

TEST(MessagesTest, RegisterRequestRoundTrip) {
  RegisterRequest msg;
  msg.info = {StageId{1}, NodeId{2}, JobId{3}, "c101-001.frontera"};
  expect_roundtrip(msg);
}

TEST(MessagesTest, RegisterRequestEmptyHostname) {
  RegisterRequest msg;
  msg.info = {StageId{1}, NodeId{2}, JobId{3}, ""};
  expect_roundtrip(msg);
}

TEST(MessagesTest, RegisterAckRoundTrip) {
  expect_roundtrip(RegisterAck{true, 42});
  expect_roundtrip(RegisterAck{false, 0});
}

TEST(MessagesTest, CollectRequestRoundTrip) {
  expect_roundtrip(CollectRequest{0, false});
  expect_roundtrip(CollectRequest{1'000'000'000'000ull, true});
}

TEST(MessagesTest, StageMetricsRoundTrip) { expect_roundtrip(sample_metrics(9)); }

TEST(MessagesTest, StageMetricsUnlimitedLimits) {
  StageMetrics m = sample_metrics(1);
  m.data_limit = kUnlimited;
  m.meta_limit = kUnlimited;
  expect_roundtrip(m);
}

TEST(MessagesTest, MetricsBatchRoundTrip) {
  MetricsBatch batch;
  batch.cycle_id = 3;
  batch.from = ControllerId{7};
  for (std::uint32_t i = 0; i < 100; ++i) batch.entries.push_back(sample_metrics(i));
  expect_roundtrip(batch);
}

TEST(MessagesTest, MetricsBatchEmpty) {
  MetricsBatch batch;
  batch.cycle_id = 1;
  batch.from = ControllerId{0};
  expect_roundtrip(batch);
}

TEST(MessagesTest, AggregatedMetricsRoundTrip) {
  AggregatedMetrics agg;
  agg.cycle_id = 12;
  agg.from = ControllerId{2};
  agg.total_stages = 2500;
  agg.jobs.push_back({JobId{1}, 120000.0, 8000.0, 1250});
  agg.jobs.push_back({JobId{2}, 60000.0, 4000.0, 1250});
  agg.digests.push_back({StageId{0}, 1000.0f, 50.0f});
  agg.digests.push_back({StageId{1}, 2000.0f, 75.0f});
  expect_roundtrip(agg);
}

TEST(MessagesTest, AggregatedMetricsWithoutDigests) {
  AggregatedMetrics agg;
  agg.cycle_id = 1;
  agg.from = ControllerId{9};
  agg.total_stages = 10;
  agg.jobs.push_back({JobId{1}, 10.0, 1.0, 10});
  expect_roundtrip(agg);
}

TEST(MessagesTest, EnforceBatchRoundTrip) {
  EnforceBatch batch;
  batch.cycle_id = 55;
  for (std::uint32_t i = 0; i < 64; ++i) {
    batch.rules.push_back({StageId{i}, JobId{i / 8}, 100.0 + i, 10.0 + i, 99});
  }
  expect_roundtrip(batch);
}

TEST(MessagesTest, EnforceAckRoundTrip) { expect_roundtrip(EnforceAck{55, 64}); }

TEST(MessagesTest, HeartbeatRoundTrip) {
  expect_roundtrip(Heartbeat{ControllerId{3}, 1234});
  expect_roundtrip(HeartbeatAck{1234});
}

TEST(MessagesTest, BudgetLeaseRoundTrip) {
  expect_roundtrip(BudgetLease{9, 1e6, 5e5, 123456789});
}

TEST(MessagesTest, ErrorMessageRoundTrip) {
  expect_roundtrip(ErrorMessage{404, "stage not found"});
}

TEST(MessagesTest, FromFrameRejectsWrongType) {
  const wire::Frame frame = to_frame(EnforceAck{1, 2});
  auto decoded = from_frame<CollectRequest>(frame);
  EXPECT_FALSE(decoded.is_ok());
}

TEST(MessagesTest, FromFrameRejectsTrailingBytes) {
  wire::Frame frame = to_frame(EnforceAck{1, 2});
  frame.payload.push_back(0xFF);
  auto decoded = from_frame<EnforceAck>(frame);
  EXPECT_FALSE(decoded.is_ok());
}

TEST(MessagesTest, TruncatedPayloadRejected) {
  wire::Frame frame = to_frame(sample_metrics(3));
  frame.payload.resize(frame.payload.size() / 2);
  auto decoded = from_frame<StageMetrics>(frame);
  EXPECT_FALSE(decoded.is_ok());
}

TEST(MessagesTest, BatchCountOverflowRejected) {
  // Hand-craft a batch whose count field claims 2^30 entries.
  wire::Frame frame;
  frame.type = static_cast<std::uint16_t>(MessageType::kEnforceBatch);
  wire::Encoder enc(frame.payload);
  enc.put_varint(1);           // cycle
  enc.put_varint(1ull << 30);  // absurd count
  auto decoded = from_frame<EnforceBatch>(frame);
  EXPECT_FALSE(decoded.is_ok());
}

TEST(MessagesTest, MessageTypeNames) {
  EXPECT_EQ(to_string(MessageType::kCollectRequest), "CollectRequest");
  EXPECT_EQ(to_string(MessageType::kEnforceBatch), "EnforceBatch");
  EXPECT_EQ(to_string(MessageType::kAggregatedMetrics), "AggregatedMetrics");
}

TEST(MessagesTest, RandomGarbagePayloadsNeverCrash) {
  Rng rng(5);
  for (int round = 0; round < 3000; ++round) {
    wire::Frame frame;
    frame.type = static_cast<std::uint16_t>(1 + rng.next_below(13));
    frame.payload.resize(rng.next_below(128));
    for (auto& b : frame.payload) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    // Try to decode as every message type; failure is fine, UB is not.
    (void)from_frame<RegisterRequest>(frame);
    (void)from_frame<RegisterAck>(frame);
    (void)from_frame<CollectRequest>(frame);
    (void)from_frame<StageMetrics>(frame);
    (void)from_frame<StageMetricsDelta>(frame);
    (void)from_frame<MetricsBatch>(frame);
    (void)from_frame<AggregatedMetrics>(frame);
    (void)from_frame<EnforceBatch>(frame);
    (void)from_frame<EnforceAck>(frame);
    (void)from_frame<Heartbeat>(frame);
    (void)from_frame<HeartbeatAck>(frame);
    (void)from_frame<BudgetLease>(frame);
    (void)from_frame<ErrorMessage>(frame);
  }
}

TEST(StageMetricsDeltaTest, MakeApplyReproducesBitForBit) {
  const StageMetrics prev = sample_metrics(5);
  StageMetrics curr = prev;
  curr.cycle_id = prev.cycle_id + 1;
  curr.data_iops = prev.data_iops * 1.0001;
  curr.meta_iops = prev.meta_iops - 0.125;
  const auto delta = StageMetricsDelta::make(prev, curr, true);
  EXPECT_EQ(delta.fields & StageMetricsDelta::kDataIops,
            StageMetricsDelta::kDataIops);
  EXPECT_EQ(delta.fields & StageMetricsDelta::kMetaIops,
            StageMetricsDelta::kMetaIops);
  EXPECT_EQ(delta.fields & StageMetricsDelta::kDataLimit, 0);
  EXPECT_EQ(delta.apply(prev), curr);
}

TEST(StageMetricsDeltaTest, RoundTripWithAndWithoutStageId) {
  const StageMetrics prev = sample_metrics(5);
  StageMetrics curr = prev;
  curr.cycle_id = prev.cycle_id + 1;
  curr.data_iops += 17.5;
  curr.data_limit = 1234.0;
  expect_roundtrip(StageMetricsDelta::make(prev, curr, true));
  expect_roundtrip(StageMetricsDelta::make(prev, curr, false));
}

TEST(StageMetricsDeltaTest, UnchangedMetricsEncodeNoFields) {
  StageMetrics prev = sample_metrics(5);
  StageMetrics curr = prev;
  curr.cycle_id = prev.cycle_id + 1;
  const auto delta = StageMetricsDelta::make(prev, curr, false);
  EXPECT_EQ(delta.fields & 0x0f, 0);
  // cycle varint + flags byte only: the idle-stage floor.
  EXPECT_LE(delta.wire_size(), 3u);
  EXPECT_EQ(delta.apply(prev), curr);
  expect_roundtrip(delta);
}

TEST(StageMetricsDeltaTest, ExplicitBaseAgeRoundTrips) {
  StageMetrics prev = sample_metrics(5);
  StageMetrics curr = prev;
  curr.cycle_id = prev.cycle_id + 4;  // three reports skipped
  curr.meta_iops += 1.0;
  const auto delta = StageMetricsDelta::make(prev, curr, true);
  EXPECT_EQ(delta.base_cycle_id, prev.cycle_id);
  // The non-default base age costs an extra varint on the wire.
  StageMetricsDelta adjacent = delta;
  adjacent.base_cycle_id = delta.cycle_id - 1;
  EXPECT_GT(delta.wire_size(), adjacent.wire_size());
  expect_roundtrip(delta);
  EXPECT_EQ(delta.apply(prev), curr);
}

TEST(StageMetricsDeltaTest, LimitTransitionsToAndFromUnlimited) {
  StageMetrics prev = sample_metrics(5);
  prev.data_limit = kUnlimited;
  StageMetrics curr = prev;
  curr.cycle_id = prev.cycle_id + 1;
  curr.data_limit = 512.0;
  const auto to_capped = StageMetricsDelta::make(prev, curr, true);
  EXPECT_EQ(to_capped.apply(prev), curr);
  StageMetrics next = curr;
  next.cycle_id = curr.cycle_id + 1;
  next.data_limit = kUnlimited;
  const auto to_uncapped = StageMetricsDelta::make(curr, next, true);
  EXPECT_EQ(to_uncapped.apply(curr), next);
  expect_roundtrip(to_capped);
  expect_roundtrip(to_uncapped);
}

TEST(StageMetricsDeltaTest, ReservedFlagBitsRejected) {
  StageMetrics prev = sample_metrics(5);
  StageMetrics curr = prev;
  curr.cycle_id = prev.cycle_id + 1;
  curr.data_iops += 1.0;
  const auto delta = StageMetricsDelta::make(prev, curr, true);
  wire::Frame frame = to_frame(delta);
  for (const unsigned reserved : {0x40u, 0x80u, 0xc0u}) {
    wire::Frame bad;
    bad.type = frame.type;
    wire::Encoder enc(bad.payload);
    enc.put_varint(delta.cycle_id);
    enc.put_u8(static_cast<std::uint8_t>(delta.fields | reserved));
    auto decoded = from_frame<StageMetricsDelta>(bad);
    EXPECT_FALSE(decoded.is_ok()) << "reserved bit 0x" << std::hex
                                  << int(reserved) << " accepted";
  }
}

TEST(StageMetricsDeltaTest, LowChurnDeltaIsAFractionOfFullFrame) {
  // The wire-bytes claim behind the tentpole: a one-field drift on a
  // per-stage connection (no stage id) stays well under a third of the
  // full StageMetrics frame.
  const StageMetrics prev = sample_metrics(5);
  StageMetrics curr = prev;
  curr.cycle_id = prev.cycle_id + 1;
  curr.data_iops = prev.data_iops * (1.0 + 1e-9);
  const auto delta = StageMetricsDelta::make(prev, curr, false);
  EXPECT_LE(delta.wire_size() * 3, curr.wire_size());
}

TEST(StageMetricsDeltaTest, RandomWalkRoundTripsAndApplies) {
  Rng rng(0xd17a);
  StageMetrics prev = sample_metrics(1);
  for (int round = 0; round < 500; ++round) {
    StageMetrics curr = prev;
    curr.cycle_id = prev.cycle_id + 1 + rng.next_below(3);
    if (rng.bernoulli(0.8)) curr.data_iops *= 1.0 + rng.normal(0, 0.02);
    if (rng.bernoulli(0.4)) curr.meta_iops += rng.normal(0, 1.0);
    if (rng.bernoulli(0.05)) {
      curr.data_limit = rng.bernoulli(0.5) ? kUnlimited : rng.uniform01() * 1e4;
    }
    const bool with_id = rng.bernoulli(0.5);
    const auto delta = StageMetricsDelta::make(prev, curr, with_id);
    expect_roundtrip(delta);
    ASSERT_EQ(delta.apply(prev), curr);
    prev = curr;
  }
}

TEST(StageMetricsDeltaTest, FullFrameGoldenBytesPinned) {
  // The delta path leaves full StageMetrics frames byte-identical: pin
  // the exact encoding so a codec change can't silently slip past the
  // compatibility claim.
  StageMetrics m;
  m.cycle_id = 7;
  m.stage_id = StageId{3};
  m.job_id = JobId{1};
  m.data_iops = 2.0;
  m.meta_iops = 0.5;
  m.data_limit = kUnlimited;
  m.meta_limit = kUnlimited;
  const wire::Frame frame = to_frame(m);
  wire::Encoder expected;
  expected.put_varint(7);
  expected.put_u32(3);
  expected.put_u32(1);
  expected.put_double(2.0);
  expected.put_double(0.5);
  expected.put_double(kUnlimited);
  expected.put_double(kUnlimited);
  EXPECT_EQ(frame.payload, expected.bytes());
}

class MetricsBatchSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MetricsBatchSizeTest, RoundTripAtSize) {
  MetricsBatch batch;
  batch.cycle_id = 42;
  batch.from = ControllerId{1};
  for (std::uint32_t i = 0; i < GetParam(); ++i) {
    batch.entries.push_back(sample_metrics(i));
  }
  expect_roundtrip(batch);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MetricsBatchSizeTest,
                         ::testing::Values(0, 1, 2, 50, 500, 2500));

}  // namespace
}  // namespace sds::proto
