#include "proto/messages.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sds::proto {
namespace {

/// Round-trip any message through a Frame and verify equality plus that
/// wire_size() is exact.
template <typename M>
void expect_roundtrip(const M& msg) {
  wire::Encoder enc;
  msg.encode(enc);
  EXPECT_EQ(enc.size(), msg.wire_size()) << "wire_size mismatch";

  const wire::Frame frame = to_frame(msg);
  EXPECT_EQ(frame.type, static_cast<std::uint16_t>(M::kType));
  EXPECT_EQ(frame.payload.size(), msg.wire_size());

  auto decoded = from_frame<M>(frame);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status();
  EXPECT_EQ(*decoded, msg);
}

StageMetrics sample_metrics(std::uint32_t i) {
  StageMetrics m;
  m.cycle_id = 77;
  m.stage_id = StageId{i};
  m.job_id = JobId{i / 4};
  m.data_iops = 1000.5 + i;
  m.meta_iops = 50.25 + i;
  m.data_limit = 900.0;
  m.meta_limit = kUnlimited;
  return m;
}

TEST(MessagesTest, RegisterRequestRoundTrip) {
  RegisterRequest msg;
  msg.info = {StageId{1}, NodeId{2}, JobId{3}, "c101-001.frontera"};
  expect_roundtrip(msg);
}

TEST(MessagesTest, RegisterRequestEmptyHostname) {
  RegisterRequest msg;
  msg.info = {StageId{1}, NodeId{2}, JobId{3}, ""};
  expect_roundtrip(msg);
}

TEST(MessagesTest, RegisterAckRoundTrip) {
  expect_roundtrip(RegisterAck{true, 42});
  expect_roundtrip(RegisterAck{false, 0});
}

TEST(MessagesTest, CollectRequestRoundTrip) {
  expect_roundtrip(CollectRequest{0, false});
  expect_roundtrip(CollectRequest{1'000'000'000'000ull, true});
}

TEST(MessagesTest, StageMetricsRoundTrip) { expect_roundtrip(sample_metrics(9)); }

TEST(MessagesTest, StageMetricsUnlimitedLimits) {
  StageMetrics m = sample_metrics(1);
  m.data_limit = kUnlimited;
  m.meta_limit = kUnlimited;
  expect_roundtrip(m);
}

TEST(MessagesTest, MetricsBatchRoundTrip) {
  MetricsBatch batch;
  batch.cycle_id = 3;
  batch.from = ControllerId{7};
  for (std::uint32_t i = 0; i < 100; ++i) batch.entries.push_back(sample_metrics(i));
  expect_roundtrip(batch);
}

TEST(MessagesTest, MetricsBatchEmpty) {
  MetricsBatch batch;
  batch.cycle_id = 1;
  batch.from = ControllerId{0};
  expect_roundtrip(batch);
}

TEST(MessagesTest, AggregatedMetricsRoundTrip) {
  AggregatedMetrics agg;
  agg.cycle_id = 12;
  agg.from = ControllerId{2};
  agg.total_stages = 2500;
  agg.jobs.push_back({JobId{1}, 120000.0, 8000.0, 1250});
  agg.jobs.push_back({JobId{2}, 60000.0, 4000.0, 1250});
  agg.digests.push_back({StageId{0}, 1000.0f, 50.0f});
  agg.digests.push_back({StageId{1}, 2000.0f, 75.0f});
  expect_roundtrip(agg);
}

TEST(MessagesTest, AggregatedMetricsWithoutDigests) {
  AggregatedMetrics agg;
  agg.cycle_id = 1;
  agg.from = ControllerId{9};
  agg.total_stages = 10;
  agg.jobs.push_back({JobId{1}, 10.0, 1.0, 10});
  expect_roundtrip(agg);
}

TEST(MessagesTest, EnforceBatchRoundTrip) {
  EnforceBatch batch;
  batch.cycle_id = 55;
  for (std::uint32_t i = 0; i < 64; ++i) {
    batch.rules.push_back({StageId{i}, JobId{i / 8}, 100.0 + i, 10.0 + i, 99});
  }
  expect_roundtrip(batch);
}

TEST(MessagesTest, EnforceAckRoundTrip) { expect_roundtrip(EnforceAck{55, 64}); }

TEST(MessagesTest, HeartbeatRoundTrip) {
  expect_roundtrip(Heartbeat{ControllerId{3}, 1234});
  expect_roundtrip(HeartbeatAck{1234});
}

TEST(MessagesTest, BudgetLeaseRoundTrip) {
  expect_roundtrip(BudgetLease{9, 1e6, 5e5, 123456789});
}

TEST(MessagesTest, ErrorMessageRoundTrip) {
  expect_roundtrip(ErrorMessage{404, "stage not found"});
}

TEST(MessagesTest, FromFrameRejectsWrongType) {
  const wire::Frame frame = to_frame(EnforceAck{1, 2});
  auto decoded = from_frame<CollectRequest>(frame);
  EXPECT_FALSE(decoded.is_ok());
}

TEST(MessagesTest, FromFrameRejectsTrailingBytes) {
  wire::Frame frame = to_frame(EnforceAck{1, 2});
  frame.payload.push_back(0xFF);
  auto decoded = from_frame<EnforceAck>(frame);
  EXPECT_FALSE(decoded.is_ok());
}

TEST(MessagesTest, TruncatedPayloadRejected) {
  wire::Frame frame = to_frame(sample_metrics(3));
  frame.payload.resize(frame.payload.size() / 2);
  auto decoded = from_frame<StageMetrics>(frame);
  EXPECT_FALSE(decoded.is_ok());
}

TEST(MessagesTest, BatchCountOverflowRejected) {
  // Hand-craft a batch whose count field claims 2^30 entries.
  wire::Frame frame;
  frame.type = static_cast<std::uint16_t>(MessageType::kEnforceBatch);
  wire::Encoder enc(frame.payload);
  enc.put_varint(1);           // cycle
  enc.put_varint(1ull << 30);  // absurd count
  auto decoded = from_frame<EnforceBatch>(frame);
  EXPECT_FALSE(decoded.is_ok());
}

TEST(MessagesTest, MessageTypeNames) {
  EXPECT_EQ(to_string(MessageType::kCollectRequest), "CollectRequest");
  EXPECT_EQ(to_string(MessageType::kEnforceBatch), "EnforceBatch");
  EXPECT_EQ(to_string(MessageType::kAggregatedMetrics), "AggregatedMetrics");
}

TEST(MessagesTest, RandomGarbagePayloadsNeverCrash) {
  Rng rng(5);
  for (int round = 0; round < 3000; ++round) {
    wire::Frame frame;
    frame.type = static_cast<std::uint16_t>(1 + rng.next_below(12));
    frame.payload.resize(rng.next_below(128));
    for (auto& b : frame.payload) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    // Try to decode as every message type; failure is fine, UB is not.
    (void)from_frame<RegisterRequest>(frame);
    (void)from_frame<RegisterAck>(frame);
    (void)from_frame<CollectRequest>(frame);
    (void)from_frame<StageMetrics>(frame);
    (void)from_frame<MetricsBatch>(frame);
    (void)from_frame<AggregatedMetrics>(frame);
    (void)from_frame<EnforceBatch>(frame);
    (void)from_frame<EnforceAck>(frame);
    (void)from_frame<Heartbeat>(frame);
    (void)from_frame<HeartbeatAck>(frame);
    (void)from_frame<BudgetLease>(frame);
    (void)from_frame<ErrorMessage>(frame);
  }
}

class MetricsBatchSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MetricsBatchSizeTest, RoundTripAtSize) {
  MetricsBatch batch;
  batch.cycle_id = 42;
  batch.from = ControllerId{1};
  for (std::uint32_t i = 0; i < GetParam(); ++i) {
    batch.entries.push_back(sample_metrics(i));
  }
  expect_roundtrip(batch);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MetricsBatchSizeTest,
                         ::testing::Values(0, 1, 2, 50, 500, 2500));

}  // namespace
}  // namespace sds::proto
