#include "stage/virtual_stage.h"

#include <gtest/gtest.h>

namespace sds::stage {
namespace {

proto::StageInfo info(std::uint32_t id = 1) {
  return {StageId{id}, NodeId{id}, JobId{id / 10}, "node"};
}

proto::Rule rule(double data, double meta, std::uint64_t epoch) {
  proto::Rule r;
  r.stage_id = StageId{1};
  r.job_id = JobId{0};
  r.data_iops_limit = data;
  r.meta_iops_limit = meta;
  r.epoch = epoch;
  return r;
}

TEST(VirtualStageTest, ReportsDemandWhenUnlimited) {
  VirtualStage stage(info(), [](Nanos) { return 1000.0; },
                     [](Nanos) { return 100.0; });
  const auto m = stage.collect(7, Nanos{0});
  EXPECT_EQ(m.cycle_id, 7u);
  EXPECT_EQ(m.stage_id, StageId{1});
  EXPECT_DOUBLE_EQ(m.data_iops, 1000.0);
  EXPECT_DOUBLE_EQ(m.meta_iops, 100.0);
  EXPECT_DOUBLE_EQ(m.data_limit, proto::kUnlimited);
}

TEST(VirtualStageTest, ThrottlesReportedRateToLimit) {
  VirtualStage stage(info(), [](Nanos) { return 1000.0; },
                     [](Nanos) { return 100.0; });
  ASSERT_TRUE(stage.apply(rule(400.0, 50.0, 1)));
  const auto m = stage.collect(8, Nanos{0});
  EXPECT_DOUBLE_EQ(m.data_iops, 400.0);  // min(demand, limit)
  EXPECT_DOUBLE_EQ(m.meta_iops, 50.0);
  EXPECT_DOUBLE_EQ(m.data_limit, 400.0);
  EXPECT_DOUBLE_EQ(m.meta_limit, 50.0);
}

TEST(VirtualStageTest, LimitAboveDemandReportsDemand) {
  VirtualStage stage(info(), [](Nanos) { return 300.0; }, nullptr);
  ASSERT_TRUE(stage.apply(rule(5000.0, 100.0, 1)));
  EXPECT_DOUBLE_EQ(stage.collect(1, Nanos{0}).data_iops, 300.0);
}

TEST(VirtualStageTest, TimeVaryingDemand) {
  VirtualStage stage(
      info(), [](Nanos t) { return t < seconds(1) ? 100.0 : 900.0; }, nullptr);
  EXPECT_DOUBLE_EQ(stage.collect(1, millis(500)).data_iops, 100.0);
  EXPECT_DOUBLE_EQ(stage.collect(2, seconds(2)).data_iops, 900.0);
}

TEST(VirtualStageTest, StaleRuleRejected) {
  VirtualStage stage(info(), [](Nanos) { return 1000.0; }, nullptr);
  ASSERT_TRUE(stage.apply(rule(400.0, 50.0, 10)));
  EXPECT_FALSE(stage.apply(rule(999.0, 99.0, 9)));
  EXPECT_DOUBLE_EQ(stage.limit(Dimension::kData), 400.0);
  EXPECT_EQ(stage.epoch(), 10u);
}

TEST(VirtualStageTest, NullDemandFnMeansIdle) {
  VirtualStage stage(info(), nullptr, nullptr);
  const auto m = stage.collect(1, Nanos{0});
  EXPECT_DOUBLE_EQ(m.data_iops, 0.0);
  EXPECT_DOUBLE_EQ(m.meta_iops, 0.0);
}

TEST(VirtualStageTest, NegativeDemandClampedToZero) {
  VirtualStage stage(info(), [](Nanos) { return -5.0; }, nullptr);
  EXPECT_DOUBLE_EQ(stage.collect(1, Nanos{0}).data_iops, 0.0);
}

TEST(VirtualStageTest, DemandIntrospection) {
  VirtualStage stage(info(), [](Nanos) { return 123.0; },
                     [](Nanos) { return 45.0; });
  EXPECT_DOUBLE_EQ(stage.demand(Dimension::kData, Nanos{0}), 123.0);
  EXPECT_DOUBLE_EQ(stage.demand(Dimension::kMeta, Nanos{0}), 45.0);
}

}  // namespace
}  // namespace sds::stage
