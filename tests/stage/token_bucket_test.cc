#include "stage/token_bucket.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sds::stage {
namespace {

TEST(TokenBucketTest, StartsFull) {
  TokenBucket bucket(100.0, 10.0, Nanos{0});
  EXPECT_TRUE(bucket.try_acquire(10.0, Nanos{0}));
  EXPECT_FALSE(bucket.try_acquire(1.0, Nanos{0}));
}

TEST(TokenBucketTest, RefillsAtConfiguredRate) {
  TokenBucket bucket(100.0, 10.0, Nanos{0});  // 100 tokens/s
  ASSERT_TRUE(bucket.try_acquire(10.0, Nanos{0}));
  EXPECT_FALSE(bucket.try_acquire(1.0, Nanos{0}));
  // After 50 ms, 5 tokens refilled.
  EXPECT_TRUE(bucket.try_acquire(5.0, millis(50)));
  EXPECT_FALSE(bucket.try_acquire(1.0, millis(50)));
}

TEST(TokenBucketTest, BurstCapsAccumulation) {
  TokenBucket bucket(1000.0, 50.0, Nanos{0});
  ASSERT_TRUE(bucket.try_acquire(50.0, Nanos{0}));
  // A long idle period still refills at most `burst` tokens.
  EXPECT_DOUBLE_EQ(bucket.tokens(seconds(100)), 50.0);
  EXPECT_TRUE(bucket.try_acquire(50.0, seconds(100)));
  EXPECT_FALSE(bucket.try_acquire(1.0, seconds(100)));
}

TEST(TokenBucketTest, UnlimitedAlwaysAdmits) {
  TokenBucket bucket(-1.0, 1.0, Nanos{0});
  EXPECT_TRUE(bucket.unlimited());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bucket.try_acquire(1e9, Nanos{0}));
  }
  EXPECT_EQ(bucket.time_until(1e9, Nanos{0}), Nanos{0});
}

TEST(TokenBucketTest, ZeroRateNeverRefills) {
  TokenBucket bucket(0.0, 5.0, Nanos{0});
  ASSERT_TRUE(bucket.try_acquire(5.0, Nanos{0}));  // initial burst
  EXPECT_FALSE(bucket.try_acquire(1.0, seconds(1000)));
  EXPECT_EQ(bucket.time_until(1.0, seconds(1000)), Nanos::max());
}

TEST(TokenBucketTest, TimeUntilPredictsAdmission) {
  TokenBucket bucket(100.0, 10.0, Nanos{0});
  ASSERT_TRUE(bucket.try_acquire(10.0, Nanos{0}));
  const Nanos wait = bucket.time_until(1.0, Nanos{0});
  EXPECT_GT(wait, Nanos{0});
  // Just before `wait` the op is rejected; at `wait` it is admitted.
  EXPECT_FALSE(bucket.try_acquire(1.0, wait - micros(100)));
  EXPECT_TRUE(bucket.try_acquire(1.0, wait));
}

TEST(TokenBucketTest, SetRateReconfigures) {
  TokenBucket bucket(10.0, 10.0, Nanos{0});
  ASSERT_TRUE(bucket.try_acquire(10.0, Nanos{0}));
  bucket.set_rate(1000.0, 100.0, Nanos{0});
  EXPECT_DOUBLE_EQ(bucket.rate(), 1000.0);
  // After 10 ms the faster rate yields 10 tokens.
  EXPECT_TRUE(bucket.try_acquire(10.0, millis(10)));
}

TEST(TokenBucketTest, SetRateClampsRetainedTokensToNewBurst) {
  TokenBucket bucket(100.0, 100.0, Nanos{0});
  // Full bucket (100 tokens); shrink burst to 5 — tokens clamp.
  bucket.set_rate(100.0, 5.0, Nanos{0});
  EXPECT_FALSE(bucket.try_acquire(6.0, Nanos{0}));
  EXPECT_TRUE(bucket.try_acquire(5.0, Nanos{0}));
}

TEST(TokenBucketTest, NonMonotonicTimeIsSafe) {
  TokenBucket bucket(100.0, 10.0, Nanos{0});
  ASSERT_TRUE(bucket.try_acquire(5.0, millis(100)));
  // Time going backwards must not refill or crash.
  EXPECT_DOUBLE_EQ(bucket.tokens(millis(50)), bucket.tokens(millis(50)));
  EXPECT_TRUE(bucket.try_acquire(5.0, millis(50)));
}

TEST(TokenBucketTest, LongRunRateAdherence) {
  // Property: admitted ops over a long window ≈ rate × window.
  const double rate = 5000.0;
  TokenBucket bucket(rate, rate * 0.01, Nanos{0});
  Rng rng(3);
  Nanos now{0};
  std::uint64_t admitted = 0;
  const Nanos horizon = seconds(10);
  while (now < horizon) {
    if (bucket.try_acquire(1.0, now)) ++admitted;
    now += micros(rng.uniform_int(10, 200));
  }
  const double expected = rate * to_seconds(horizon);
  EXPECT_NEAR(static_cast<double>(admitted), expected, expected * 0.02);
}

class TokenBucketRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(TokenBucketRateSweep, AdmitsAtConfiguredRate) {
  const double rate = GetParam();
  TokenBucket bucket(rate, std::max(1.0, rate / 100), Nanos{0});
  // Drain the initial burst.
  while (bucket.try_acquire(1.0, Nanos{0})) {
  }
  std::uint64_t admitted = 0;
  for (Nanos now{0}; now < seconds(4); now += micros(50)) {
    if (bucket.try_acquire(1.0, now)) ++admitted;
  }
  const double expected = rate * 4.0;
  EXPECT_NEAR(static_cast<double>(admitted), expected,
              expected * 0.05 + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, TokenBucketRateSweep,
                         ::testing::Values(10.0, 100.0, 1'000.0, 10'000.0));

}  // namespace
}  // namespace sds::stage
