#include "stage/posix_stage.h"

#include <gtest/gtest.h>

#include <thread>

namespace sds::stage {
namespace {

proto::StageInfo info() { return {StageId{1}, NodeId{1}, JobId{1}, "node"}; }

proto::Rule rule(double data, double meta, std::uint64_t epoch = 1) {
  proto::Rule r;
  r.stage_id = StageId{1};
  r.job_id = JobId{1};
  r.data_iops_limit = data;
  r.meta_iops_limit = meta;
  r.epoch = epoch;
  return r;
}

TEST(PosixStageTest, UnlimitedAdmitsEverything) {
  ManualClock clock;
  PosixStage stage(info(), clock);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(stage.try_submit(OpClass::kRead));
    EXPECT_TRUE(stage.try_submit(OpClass::kStat));
  }
}

TEST(PosixStageTest, CollectReportsObservedRates) {
  ManualClock clock;
  PosixStage stage(info(), clock);
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(stage.try_submit(OpClass::kWrite));
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(stage.try_submit(OpClass::kOpen));
  clock.advance(seconds(2));
  const auto m = stage.collect(1);
  EXPECT_NEAR(m.data_iops, 250.0, 1e-9);  // 500 ops over 2 s
  EXPECT_NEAR(m.meta_iops, 25.0, 1e-9);
  EXPECT_EQ(m.cycle_id, 1u);
}

TEST(PosixStageTest, CollectResetsWindow) {
  ManualClock clock;
  PosixStage stage(info(), clock);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(stage.try_submit(OpClass::kRead));
  clock.advance(seconds(1));
  (void)stage.collect(1);
  clock.advance(seconds(1));
  const auto m = stage.collect(2);
  EXPECT_DOUBLE_EQ(m.data_iops, 0.0);  // nothing since the last collect
}

TEST(PosixStageTest, RuleThrottlesSubmissions) {
  ManualClock clock;
  PosixStage stage(info(), clock, LimiterOptions{0.01, 1.0});
  ASSERT_TRUE(stage.apply(rule(100.0, 10.0)));
  // Burst is tiny (1 op); drain and count over 1 simulated second.
  std::uint64_t admitted = 0;
  for (int step = 0; step < 10'000; ++step) {
    if (stage.try_submit(OpClass::kRead)) ++admitted;
    clock.advance(micros(100));
  }
  EXPECT_NEAR(static_cast<double>(admitted), 100.0, 5.0);
  EXPECT_GT(stage.throttled(Dimension::kData), 0u);
}

TEST(PosixStageTest, ThrottledCountResetOnCollect) {
  ManualClock clock;
  PosixStage stage(info(), clock, LimiterOptions{0.01, 1.0});
  ASSERT_TRUE(stage.apply(rule(1.0, 1.0)));
  for (int i = 0; i < 10; ++i) (void)stage.try_submit(OpClass::kRead);
  EXPECT_GT(stage.throttled(Dimension::kData), 0u);
  clock.advance(seconds(1));
  (void)stage.collect(1);
  EXPECT_EQ(stage.throttled(Dimension::kData), 0u);
}

TEST(PosixStageTest, AdmissionDelayGuidesRetry) {
  ManualClock clock;
  PosixStage stage(info(), clock, LimiterOptions{0.01, 1.0});
  ASSERT_TRUE(stage.apply(rule(10.0, 10.0)));
  while (stage.try_submit(OpClass::kRead)) {
  }
  const Nanos delay = stage.admission_delay(OpClass::kRead);
  EXPECT_GT(delay, Nanos{0});
  clock.advance(delay + micros(1));
  EXPECT_TRUE(stage.try_submit(OpClass::kRead));
}

TEST(PosixStageTest, StaleRuleRejected) {
  ManualClock clock;
  PosixStage stage(info(), clock);
  ASSERT_TRUE(stage.apply(rule(100.0, 10.0, 5)));
  EXPECT_FALSE(stage.apply(rule(999.0, 99.0, 3)));
  EXPECT_DOUBLE_EQ(stage.limit(Dimension::kData), 100.0);
}

TEST(PosixStageTest, CollectEchoesCurrentLimits) {
  ManualClock clock;
  PosixStage stage(info(), clock);
  ASSERT_TRUE(stage.apply(rule(100.0, 10.0)));
  clock.advance(seconds(1));
  const auto m = stage.collect(1);
  EXPECT_DOUBLE_EQ(m.data_limit, 100.0);
  EXPECT_DOUBLE_EQ(m.meta_limit, 10.0);
}

TEST(PosixStageTest, ConcurrentSubmittersAreSafe) {
  ManualClock clock;
  PosixStage stage(info(), clock);
  constexpr int kThreads = 8;
  constexpr int kOps = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        ASSERT_TRUE(stage.try_submit(OpClass::kRead));
      }
    });
  }
  for (auto& t : threads) t.join();
  clock.advance(seconds(1));
  const auto m = stage.collect(1);
  EXPECT_DOUBLE_EQ(m.data_iops, kThreads * kOps);
}

}  // namespace
}  // namespace sds::stage
