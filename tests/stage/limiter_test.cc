#include "stage/limiter.h"

#include <gtest/gtest.h>

namespace sds::stage {
namespace {

proto::Rule make_rule(double data_limit, double meta_limit,
                      std::uint64_t epoch) {
  proto::Rule rule;
  rule.stage_id = StageId{1};
  rule.job_id = JobId{1};
  rule.data_iops_limit = data_limit;
  rule.meta_iops_limit = meta_limit;
  rule.epoch = epoch;
  return rule;
}

TEST(RateLimiterTest, StartsUnlimited) {
  RateLimiter limiter(Nanos{0});
  EXPECT_EQ(limiter.limit(Dimension::kData), proto::kUnlimited);
  EXPECT_EQ(limiter.limit(Dimension::kMeta), proto::kUnlimited);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(limiter.try_admit(OpClass::kRead, Nanos{0}));
    EXPECT_TRUE(limiter.try_admit(OpClass::kOpen, Nanos{0}));
  }
}

TEST(RateLimiterTest, AppliesRuleLimits) {
  RateLimiter limiter(Nanos{0});
  ASSERT_TRUE(limiter.apply(make_rule(100.0, 10.0, 1), Nanos{0}));
  EXPECT_DOUBLE_EQ(limiter.limit(Dimension::kData), 100.0);
  EXPECT_DOUBLE_EQ(limiter.limit(Dimension::kMeta), 10.0);
}

TEST(RateLimiterTest, DimensionsAreIndependent) {
  RateLimiter limiter(Nanos{0}, LimiterOptions{0.1, 1.0});
  ASSERT_TRUE(limiter.apply(make_rule(1'000'000.0, 0.0, 1), Nanos{0}));
  // Metadata exhausted after its burst; data keeps flowing.
  while (limiter.try_admit(OpClass::kStat, Nanos{0})) {
  }
  EXPECT_TRUE(limiter.try_admit(OpClass::kWrite, Nanos{0}));
  EXPECT_FALSE(limiter.try_admit(OpClass::kStat, Nanos{0}));
}

TEST(RateLimiterTest, StaleEpochRejected) {
  RateLimiter limiter(Nanos{0});
  ASSERT_TRUE(limiter.apply(make_rule(100.0, 10.0, 5), Nanos{0}));
  EXPECT_FALSE(limiter.apply(make_rule(999.0, 999.0, 4), Nanos{0}));
  EXPECT_DOUBLE_EQ(limiter.limit(Dimension::kData), 100.0);  // unchanged
  EXPECT_EQ(limiter.epoch(), 5u);
}

TEST(RateLimiterTest, EqualEpochAccepted) {
  // Same-epoch reapplication is idempotent (retries after timeouts).
  RateLimiter limiter(Nanos{0});
  ASSERT_TRUE(limiter.apply(make_rule(100.0, 10.0, 5), Nanos{0}));
  EXPECT_TRUE(limiter.apply(make_rule(200.0, 20.0, 5), Nanos{0}));
  EXPECT_DOUBLE_EQ(limiter.limit(Dimension::kData), 200.0);
}

TEST(RateLimiterTest, NewerEpochSupersedes) {
  RateLimiter limiter(Nanos{0});
  ASSERT_TRUE(limiter.apply(make_rule(100.0, 10.0, 1), Nanos{0}));
  EXPECT_TRUE(limiter.apply(make_rule(300.0, 30.0, 2), Nanos{0}));
  EXPECT_DOUBLE_EQ(limiter.limit(Dimension::kData), 300.0);
}

TEST(RateLimiterTest, AdmissionDelayReflectsBucket) {
  RateLimiter limiter(Nanos{0}, LimiterOptions{0.01, 1.0});
  ASSERT_TRUE(limiter.apply(make_rule(10.0, 10.0, 1), Nanos{0}));
  while (limiter.try_admit(OpClass::kRead, Nanos{0})) {
  }
  const Nanos delay = limiter.admission_delay(OpClass::kRead, Nanos{0});
  EXPECT_GT(delay, Nanos{0});
  EXPECT_TRUE(limiter.try_admit(OpClass::kRead, delay + micros(1)));
}

TEST(RateLimiterTest, UnlimitedRuleRestoresFreeFlow) {
  RateLimiter limiter(Nanos{0});
  ASSERT_TRUE(limiter.apply(make_rule(1.0, 1.0, 1), Nanos{0}));
  ASSERT_TRUE(
      limiter.apply(make_rule(proto::kUnlimited, proto::kUnlimited, 2), Nanos{0}));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(limiter.try_admit(OpClass::kRead, Nanos{0}));
  }
}

TEST(OpClassTest, DimensionMapping) {
  EXPECT_EQ(dimension_of(OpClass::kRead), Dimension::kData);
  EXPECT_EQ(dimension_of(OpClass::kWrite), Dimension::kData);
  EXPECT_EQ(dimension_of(OpClass::kOpen), Dimension::kMeta);
  EXPECT_EQ(dimension_of(OpClass::kStat), Dimension::kMeta);
  EXPECT_EQ(dimension_of(OpClass::kCreate), Dimension::kMeta);
  EXPECT_EQ(dimension_of(OpClass::kUnlink), Dimension::kMeta);
  EXPECT_EQ(dimension_of(OpClass::kRename), Dimension::kMeta);
  EXPECT_EQ(dimension_of(OpClass::kReaddir), Dimension::kMeta);
  EXPECT_EQ(dimension_of(OpClass::kClose), Dimension::kMeta);
}

TEST(OpClassTest, Names) {
  EXPECT_EQ(to_string(OpClass::kRead), "read");
  EXPECT_EQ(to_string(OpClass::kReaddir), "readdir");
  EXPECT_EQ(to_string(Dimension::kData), "data");
  EXPECT_EQ(to_string(Dimension::kMeta), "meta");
}

}  // namespace
}  // namespace sds::stage
