#include "wire/shared_frame.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "wire/frame.h"

namespace sds::wire {
namespace {

Frame make_frame(std::uint16_t type, std::size_t payload_size) {
  Frame frame;
  frame.type = type;
  frame.payload.resize(payload_size);
  for (std::size_t i = 0; i < payload_size; ++i) {
    frame.payload[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  return frame;
}

TEST(SharedFrameTest, DefaultIsEmpty) {
  SharedFrame shared;
  EXPECT_TRUE(shared.empty());
  EXPECT_EQ(shared.wire_size(), 0u);
  EXPECT_TRUE(shared.payload().empty());
}

TEST(SharedFrameTest, WireImageHasValidHeaderAndPayload) {
  const Frame frame = make_frame(7, 33);
  const SharedFrame shared = SharedFrame::from_frame(frame);
  ASSERT_FALSE(shared.empty());
  EXPECT_EQ(shared.type(), 7);
  EXPECT_EQ(shared.wire_size(), kFrameHeaderSize + 33);

  const auto header = FrameHeader::decode(shared.wire_image());
  ASSERT_TRUE(header.is_ok());
  EXPECT_EQ(header->type, 7);
  EXPECT_EQ(header->length, 33u);

  const auto payload = shared.payload();
  ASSERT_EQ(payload.size(), frame.payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), frame.payload.begin()));
}

TEST(SharedFrameTest, ToFrameRoundTrips) {
  const Frame frame = make_frame(3, 100);
  const Frame round = SharedFrame::from_frame(frame).to_frame();
  EXPECT_EQ(round.type, frame.type);
  EXPECT_EQ(round.payload, frame.payload);
}

TEST(SharedFrameTest, MatchesFrameSerialize) {
  // The shared wire image must be byte-identical to Frame::serialize(),
  // since TCP peers decode either form from the same stream.
  const Frame frame = make_frame(11, 57);
  const Bytes serialized = frame.serialize();
  const auto image = SharedFrame::from_frame(frame).wire_image();
  ASSERT_EQ(image.size(), serialized.size());
  EXPECT_TRUE(std::equal(image.begin(), image.end(), serialized.begin()));
}

TEST(SharedFrameTest, HeaderLengthPatchedFromActualBytes) {
  // A size hint that undershoots must not corrupt the header.
  const SharedFrame shared =
      SharedFrame::encode(5, 1, [](Encoder& enc) {
        for (int i = 0; i < 40; ++i) enc.put_u8(0xAA);
      });
  const auto header = FrameHeader::decode(shared.wire_image());
  ASSERT_TRUE(header.is_ok());
  EXPECT_EQ(header->length, 40u);
  EXPECT_EQ(shared.payload().size(), 40u);
}

TEST(SharedFrameTest, CopiesShareOneImage) {
  const SharedFrame a = SharedFrame::from_frame(make_frame(2, 16));
  EXPECT_EQ(a.use_count(), 1);
  const SharedFrame b = a;
  const SharedFrame c = a;
  EXPECT_EQ(a.use_count(), 3);
  EXPECT_EQ(b.wire_image().data(), a.wire_image().data());  // same bytes
  EXPECT_EQ(c.wire_image().data(), a.wire_image().data());
  {
    const SharedFrame d = b;
    EXPECT_EQ(a.use_count(), 4);
  }
  EXPECT_EQ(a.use_count(), 3);
}

TEST(SharedFrameTest, EncodeCountsOncePerMessageNotPerCopy) {
  const auto before = EncodeStats::frames_encoded.load();
  const SharedFrame shared = SharedFrame::from_frame(make_frame(9, 8));
  std::vector<SharedFrame> fanout(100, shared);
  EXPECT_EQ(EncodeStats::frames_encoded.load() - before, 1u);
  EXPECT_EQ(shared.use_count(), 101);
}

TEST(SharedFrameTest, BufferReturnsToPoolAndIsReused) {
  // Warm the pool, then check a release→acquire cycle hits it.
  { auto warm = SharedFrame::from_frame(make_frame(1, 64)); }
  const auto hits_before = EncodeStats::pool_hits.load();
  { auto shared = SharedFrame::from_frame(make_frame(1, 64)); }
  EXPECT_GT(EncodeStats::pool_hits.load(), hits_before);
}

TEST(SharedFrameTest, ReleaseOnAnotherThreadIsSafe) {
  // The last reference may drop on a different thread (TCP event loop);
  // the buffer joins that thread's pool. Run under TSan via -L tsan.
  SharedFrame shared = SharedFrame::from_frame(make_frame(4, 256));
  std::thread consumer([moved = std::move(shared)]() mutable {
    const Frame frame = moved.to_frame();
    EXPECT_EQ(frame.payload.size(), 256u);
    moved = SharedFrame{};  // last ref dies here, off-thread
  });
  consumer.join();
}

}  // namespace
}  // namespace sds::wire
