#include "wire/frame.h"

#include <gtest/gtest.h>

namespace sds::wire {
namespace {

TEST(FrameTest, HeaderRoundTrip) {
  Encoder enc;
  FrameHeader header{42, 0, 1234};
  header.encode(enc);
  EXPECT_EQ(enc.size(), kFrameHeaderSize);

  auto decoded = FrameHeader::decode(enc.bytes());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded->type, 42);
  EXPECT_EQ(decoded->length, 1234u);
}

TEST(FrameTest, ShortHeaderRejected) {
  const Bytes data{1, 2, 3};
  auto decoded = FrameHeader::decode(data);
  EXPECT_FALSE(decoded.is_ok());
}

TEST(FrameTest, BadMagicRejected) {
  Encoder enc;
  enc.put_u32(0xBADC0DE);
  enc.put_u16(1);
  enc.put_u16(0);
  enc.put_u32(0);
  auto decoded = FrameHeader::decode(enc.bytes());
  EXPECT_FALSE(decoded.is_ok());
}

TEST(FrameTest, OversizedPayloadRejected) {
  Encoder enc;
  FrameHeader header{1, 0, kMaxFramePayload + 1};
  header.encode(enc);
  auto decoded = FrameHeader::decode(enc.bytes());
  EXPECT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kOutOfRange);
}

TEST(FrameTest, SerializeIncludesHeaderAndPayload) {
  Frame frame;
  frame.type = 9;
  frame.payload = {10, 20, 30};
  EXPECT_EQ(frame.wire_size(), kFrameHeaderSize + 3);

  const Bytes bytes = frame.serialize();
  ASSERT_EQ(bytes.size(), frame.wire_size());

  auto header = FrameHeader::decode(bytes);
  ASSERT_TRUE(header.is_ok());
  EXPECT_EQ(header->type, 9);
  EXPECT_EQ(header->length, 3u);
  EXPECT_EQ(bytes[kFrameHeaderSize], 10);
  EXPECT_EQ(bytes[kFrameHeaderSize + 2], 30);
}

TEST(FrameTest, EmptyPayloadSerializes) {
  Frame frame;
  frame.type = 1;
  const Bytes bytes = frame.serialize();
  EXPECT_EQ(bytes.size(), kFrameHeaderSize);
}

}  // namespace
}  // namespace sds::wire
