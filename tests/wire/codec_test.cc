#include "wire/codec.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace sds::wire {
namespace {

TEST(CodecTest, FixedWidthRoundTrip) {
  Encoder enc;
  enc.put_u8(0xAB);
  enc.put_u16(0xBEEF);
  enc.put_u32(0xDEADBEEF);
  enc.put_u64(0x0123456789ABCDEFULL);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u8(), 0xAB);
  EXPECT_EQ(dec.get_u16(), 0xBEEF);
  EXPECT_EQ(dec.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(dec.fully_consumed());
}

TEST(CodecTest, VarintKnownEncodings) {
  {
    Encoder enc;
    enc.put_varint(0);
    EXPECT_EQ(enc.bytes(), (Bytes{0x00}));
  }
  {
    Encoder enc;
    enc.put_varint(127);
    EXPECT_EQ(enc.bytes(), (Bytes{0x7F}));
  }
  {
    Encoder enc;
    enc.put_varint(128);
    EXPECT_EQ(enc.bytes(), (Bytes{0x80, 0x01}));
  }
  {
    Encoder enc;
    enc.put_varint(300);
    EXPECT_EQ(enc.bytes(), (Bytes{0xAC, 0x02}));
  }
}

TEST(CodecTest, VarintRoundTripBoundaries) {
  const std::uint64_t cases[] = {
      0, 1, 127, 128, 16383, 16384, (1ull << 32) - 1, 1ull << 32,
      std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : cases) {
    Encoder enc;
    enc.put_varint(v);
    EXPECT_EQ(enc.size(), Encoder::varint_size(v));
    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.get_varint(), v);
    EXPECT_TRUE(dec.fully_consumed());
  }
}

TEST(CodecTest, VarintSizeExhaustiveSevenBitBoundaries) {
  // Every 7-bit group boundary: 2^(7k)-1 needs k bytes, 2^(7k) needs k+1.
  // Also cross-checks varint_size (bit_width arithmetic) against a
  // reference per-byte loop and the actual encoded length.
  const auto reference_size = [](std::uint64_t v) {
    std::size_t n = 1;
    while (v >= 0x80) {
      v >>= 7;
      ++n;
    }
    return n;
  };
  const auto check = [&](std::uint64_t v, std::size_t expected) {
    EXPECT_EQ(Encoder::varint_size(v), expected) << "value " << v;
    EXPECT_EQ(Encoder::varint_size(v), reference_size(v)) << "value " << v;
    Encoder enc;
    enc.put_varint(v);
    EXPECT_EQ(enc.size(), expected) << "value " << v;
    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.get_varint(), v);
    EXPECT_TRUE(dec.fully_consumed());
  };
  check(0, 1);
  for (std::size_t k = 1; k <= 9; ++k) {
    const std::uint64_t boundary = std::uint64_t{1} << (7 * k);
    check(boundary - 1, k);      // 0x7f, 0x3fff, ... last k-byte value
    check(boundary, k + 1);      // 0x80, 0x4000, ... first (k+1)-byte value
    check(boundary + 1, k + 1);
  }
  check(std::numeric_limits<std::uint64_t>::max(), 10);
  static_assert(Encoder::varint_size(0) == 1);
  static_assert(Encoder::varint_size(0x7F) == 1);
  static_assert(Encoder::varint_size(0x80) == 2);
  static_assert(Encoder::varint_size(std::numeric_limits<std::uint64_t>::max()) == 10);
}

TEST(CodecTest, VarintAppendsAfterExistingBytes) {
  // put_varint resizes the buffer in one step; earlier content and
  // later writes must be untouched by the in-place byte loop.
  Encoder enc;
  enc.put_u8(0xEE);
  enc.put_varint(std::numeric_limits<std::uint64_t>::max());
  enc.put_u8(0xDD);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u8(), 0xEE);
  EXPECT_EQ(dec.get_varint(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(dec.get_u8(), 0xDD);
  EXPECT_TRUE(dec.fully_consumed());
}

TEST(CodecTest, VarintRandomRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng.next_u64() >> (rng.next_below(64));
    Encoder enc;
    enc.put_varint(v);
    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.get_varint(), v);
  }
}

TEST(CodecTest, SignedVarintRoundTrip) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
        std::int64_t{-64}, std::int64_t{63},
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()}) {
    Encoder enc;
    enc.put_svarint(v);
    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.get_svarint(), v);
  }
}

TEST(CodecTest, ZigzagSmallMagnitudeIsCompact) {
  Encoder enc;
  enc.put_svarint(-1);
  EXPECT_EQ(enc.size(), 1u);  // zigzag(-1) = 1
}

TEST(CodecTest, DoubleRoundTrip) {
  for (const double v : {0.0, -0.0, 1.5, -3.25e10, 1e-300,
                         std::numeric_limits<double>::infinity()}) {
    Encoder enc;
    enc.put_double(v);
    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.get_double(), v);
  }
}

TEST(CodecTest, NanRoundTripsAsNan) {
  Encoder enc;
  enc.put_double(std::numeric_limits<double>::quiet_NaN());
  Decoder dec(enc.bytes());
  EXPECT_TRUE(std::isnan(dec.get_double()));
}

TEST(CodecTest, F32RoundTrip) {
  Encoder enc;
  enc.put_f32(1234.5f);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_f32(), 1234.5f);
}

TEST(CodecTest, BoolRoundTrip) {
  Encoder enc;
  enc.put_bool(true);
  enc.put_bool(false);
  Decoder dec(enc.bytes());
  EXPECT_TRUE(dec.get_bool());
  EXPECT_FALSE(dec.get_bool());
}

TEST(CodecTest, StringRoundTrip) {
  Encoder enc;
  enc.put_string("");
  enc.put_string("hello");
  enc.put_string(std::string(1000, 'x'));
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string(), "");
  EXPECT_EQ(dec.get_string(), "hello");
  EXPECT_EQ(dec.get_string(), std::string(1000, 'x'));
  EXPECT_TRUE(dec.fully_consumed());
}

TEST(CodecTest, StringWithEmbeddedNul) {
  Encoder enc;
  enc.put_string(std::string("a\0b", 3));
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string(), std::string("a\0b", 3));
}

TEST(CodecTest, RawBytes) {
  Encoder enc;
  const Bytes payload{1, 2, 3, 4};
  enc.put_raw(payload);
  Decoder dec(enc.bytes());
  const auto raw = dec.get_raw(4);
  ASSERT_EQ(raw.size(), 4u);
  EXPECT_EQ(raw[2], 3);
}

TEST(CodecTest, UnderflowSetsStickyError) {
  const Bytes data{0x01};
  Decoder dec(data);
  dec.get_u32();  // needs 4 bytes, only 1 available
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.get_u64(), 0u);  // subsequent reads return zero
  EXPECT_FALSE(dec.fully_consumed());
}

TEST(CodecTest, TruncatedVarintFails) {
  const Bytes data{0x80, 0x80};  // continuation bits never end
  Decoder dec(data);
  dec.get_varint();
  EXPECT_FALSE(dec.ok());
}

TEST(CodecTest, OverlongVarintFails) {
  const Bytes data{0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                   0xFF, 0xFF, 0xFF, 0xFF, 0x7F};  // > 64 bits
  Decoder dec(data);
  dec.get_varint();
  EXPECT_FALSE(dec.ok());
}

TEST(CodecTest, StringLengthBeyondBufferFails) {
  Encoder enc;
  enc.put_varint(100);  // claims 100 bytes follow
  enc.put_u8('x');
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string(), "");
  EXPECT_FALSE(dec.ok());
}

TEST(CodecTest, ExternalBufferEncoder) {
  Bytes out;
  Encoder enc(out);
  enc.put_u32(7);
  EXPECT_EQ(out.size(), 4u);
}

TEST(CodecTest, RandomBytesNeverCrashDecoder) {
  // Fuzz-ish: feed random garbage through every getter.
  Rng rng(77);
  for (int round = 0; round < 2000; ++round) {
    Bytes garbage(rng.next_below(64));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_below(256));
    Decoder dec(garbage);
    (void)dec.get_varint();
    (void)dec.get_string();
    (void)dec.get_double();
    (void)dec.get_u32();
    (void)dec.get_svarint();
    // No assertion: completing without UB/crash is the property.
  }
}

}  // namespace
}  // namespace sds::wire
