// Wire-level trace-context propagation: the 16-byte (trace_id,
// parent_span) trailer rides *after* the message payload, flagged by
// header-flags bit 0, and every decode path strips it back off so the
// message codecs see exactly the bytes they always saw.
#include "wire/frame.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>

#include "proto/messages.h"
#include "telemetry/span_tracer.h"
#include "wire/shared_frame.h"

namespace sds::wire {
namespace {

TEST(TraceContextTest, SerializeAppendsFlaggedTrailer) {
  Frame frame;
  frame.type = 7;
  frame.payload = {1, 2, 3, 4, 5};
  frame.trace = TraceContext{0x1122334455667788ull, 0xAABBCCDDEEFF0011ull};

  const Bytes bytes = frame.serialize();
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + 5 + kTraceContextSize);
  EXPECT_EQ(frame.wire_size(), bytes.size());

  const auto header = FrameHeader::decode(bytes).value();
  EXPECT_EQ(header.type, 7);
  EXPECT_NE(header.flags & kFlagTraceContext, 0);
  // The length covers payload + trailer, so pre-tracing framers still
  // consume the right number of stream bytes.
  EXPECT_EQ(header.length, 5u + kTraceContextSize);

  const auto ctx = TraceContext::decode_trailer(
      std::span<const std::uint8_t>(bytes).last(kTraceContextSize));
  EXPECT_EQ(ctx, *frame.trace);
}

TEST(TraceContextTest, UntracedFrameKeepsPreTracingFormat) {
  Frame frame;
  frame.type = 3;
  frame.payload = {9, 9, 9};
  const Bytes bytes = frame.serialize();
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + 3);
  const auto header = FrameHeader::decode(bytes).value();
  EXPECT_EQ(header.flags, 0);
  EXPECT_EQ(header.length, 3u);
}

TEST(TraceContextTest, SharedFramePayloadExcludesTrailer) {
  const TraceContext ctx{42, 99};
  const SharedFrame shared = SharedFrame::encode(
      11, 4, [](Encoder& enc) { enc.put_u32(0xDEADBEEF); }, ctx);

  // The wire image carries header + payload + trailer; the payload view
  // the frame handler sees is exactly the 4 message bytes.
  EXPECT_EQ(shared.wire_size(), kFrameHeaderSize + 4 + kTraceContextSize);
  EXPECT_EQ(shared.payload().size(), 4u);

  const Frame frame = shared.to_frame();
  EXPECT_EQ(frame.type, 11);
  EXPECT_EQ(frame.payload.size(), 4u);
  ASSERT_TRUE(frame.trace.has_value());
  EXPECT_EQ(*frame.trace, ctx);
}

TEST(TraceContextTest, FromFrameRoundTripsContext) {
  Frame frame;
  frame.type = 5;
  frame.payload = {1};
  frame.trace = TraceContext{7, 8};
  const Frame round = SharedFrame::from_frame(frame).to_frame();
  EXPECT_EQ(round.payload, frame.payload);
  ASSERT_TRUE(round.trace.has_value());
  EXPECT_EQ(*round.trace, *frame.trace);

  frame.trace.reset();
  const Frame bare = SharedFrame::from_frame(frame).to_frame();
  EXPECT_FALSE(bare.trace.has_value());
}

TEST(TraceContextTest, ProtoEncodersThreadTheContext) {
  proto::CollectRequest request;
  request.cycle_id = 12;
  const TraceContext ctx{12, telemetry::derive_span_id(12, 0, "collect")};

  const Frame framed = proto::to_frame(request, ctx);
  ASSERT_TRUE(framed.trace.has_value());
  EXPECT_EQ(*framed.trace, ctx);

  const Frame via_shared = proto::to_shared_frame(request, ctx).to_frame();
  ASSERT_TRUE(via_shared.trace.has_value());
  EXPECT_EQ(*via_shared.trace, ctx);
  // Both paths produce identical message payloads: the trailer never
  // perturbs the encoding.
  EXPECT_EQ(via_shared.payload, framed.payload);
  EXPECT_EQ(framed.payload, proto::to_frame(request).payload);

  EXPECT_FALSE(proto::to_frame(request).trace.has_value());
  EXPECT_FALSE(proto::to_shared_frame(request).to_frame().trace.has_value());
}

TEST(TraceContextTest, DeriveSpanIdIsDeterministicAndKeyed) {
  constexpr std::uint64_t id = telemetry::derive_span_id(5, 0, "collect");
  static_assert(id != 0, "0 is reserved for 'no span'");
  EXPECT_EQ(id, telemetry::derive_span_id(5, 0, "collect"));
  // Every key component participates in the hash.
  EXPECT_NE(id, telemetry::derive_span_id(6, 0, "collect"));
  EXPECT_NE(id, telemetry::derive_span_id(5, 1, "collect"));
  EXPECT_NE(id, telemetry::derive_span_id(5, 0, "enforce"));
}

}  // namespace
}  // namespace sds::wire
