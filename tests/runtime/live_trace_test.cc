// End-to-end causal traces in the live in-process runtime: one shared
// SpanTracer across the global controller, an aggregator and a stage
// host (each on its own track), stitched per cycle by the wire-level
// trace context — plus the always-on flight recorders and the live
// introspection endpoint.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "runtime/aggregator_server.h"
#include "runtime/global_server.h"
#include "runtime/stage_host.h"
#include "telemetry/metrics.h"
#include "telemetry/span_tracer.h"
#include "transport/inproc.h"
#include "workload/generators.h"

namespace sds::runtime {
namespace {

using telemetry::Span;
using telemetry::derive_span_id;

/// Spans of `name` grouped by trace id.
std::set<std::uint64_t> traces_of(const std::vector<Span>& spans,
                                  const std::string& name) {
  std::set<std::uint64_t> out;
  for (const auto& span : spans) {
    if (span.name == name) out.insert(span.trace_id);
  }
  return out;
}

const Span* find_span(const std::vector<Span>& spans, std::uint64_t trace,
                      const std::string& name) {
  for (const auto& span : spans) {
    if (span.trace_id == trace && span.name == name) return &span;
  }
  return nullptr;
}

TEST(LiveTraceTest, FlatRuntimeStitchesStageHops) {
  telemetry::MetricsRegistry registry;
  telemetry::SpanTracer tracer;
  transport::InProcNetwork net;

  GlobalServerOptions gopts;
  gopts.core.budgets = {4000.0, 400.0};
  gopts.telemetry.enabled = true;
  gopts.telemetry.registry = &registry;
  gopts.telemetry.tracer = &tracer;
  gopts.telemetry.track = 0;
  GlobalControllerServer global(net, "global", gopts);
  ASSERT_TRUE(global.start().is_ok());

  StageHostOptions hopts;
  hopts.controller_addresses = {"global"};
  hopts.telemetry.enabled = true;
  hopts.telemetry.registry = &registry;
  hopts.telemetry.tracer = &tracer;
  hopts.telemetry.track = 1;
  StageHost host(net, "host0", hopts);
  ASSERT_TRUE(host.start().is_ok());
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(host.add_stage({StageId{i}, NodeId{i}, JobId{0}, "n"},
                               workload::constant(1000),
                               workload::constant(100))
                    .is_ok());
  }
  ASSERT_TRUE(host.register_all().is_ok());
  ASSERT_TRUE(global.run_cycles(2).is_ok());

  const auto spans = tracer.snapshot();
  const auto traces = traces_of(spans, "cycle");
  ASSERT_EQ(traces.size(), 2u);

  for (const std::uint64_t trace : traces) {
    // Controller-side phase spans, ids derived from (trace, track 0).
    for (const char* name : {"cycle", "collect", "aggregate", "compute",
                             "disseminate", "enforce"}) {
      const Span* span = find_span(spans, trace, name);
      ASSERT_NE(span, nullptr) << "trace " << trace << " missing " << name;
      EXPECT_EQ(span->track, 0u) << name;
      EXPECT_EQ(span->span_id, derive_span_id(trace, 0, name)) << name;
    }
    // The stage host's hop spans hang off the controller's wave spans —
    // the wire trailer carried (trace, parent) across the transport.
    const Span* collect_hop = find_span(spans, trace, "stage.collect");
    ASSERT_NE(collect_hop, nullptr) << "trace " << trace;
    EXPECT_EQ(collect_hop->track, 1u);
    EXPECT_EQ(collect_hop->category, "component");
    EXPECT_EQ(collect_hop->parent_span, derive_span_id(trace, 0, "collect"));
    EXPECT_EQ(collect_hop->phase, telemetry::SpanPhase::kCollect);

    const Span* enforce_hop = find_span(spans, trace, "stage.enforce");
    ASSERT_NE(enforce_hop, nullptr) << "trace " << trace;
    EXPECT_EQ(enforce_hop->parent_span,
              derive_span_id(trace, 0, "disseminate"));
    EXPECT_EQ(enforce_hop->phase, telemetry::SpanPhase::kEnforce);
  }

  // Always-on flight recorders captured the same identities.
  EXPECT_GE(global.flight().recorded(), 12u);  // 2 cycles x 6 phase spans
  EXPECT_GE(host.flight().recorded(), 2u);

  host.shutdown();
  global.shutdown();
}

TEST(LiveTraceTest, HierRuntimeStitchesThreeComponentsAndServesIntrospection) {
  telemetry::MetricsRegistry registry;
  telemetry::SpanTracer tracer;
  transport::InProcNetwork net;

  GlobalServerOptions gopts;
  gopts.core.budgets = {2000.0, 200.0};
  gopts.telemetry.enabled = true;
  gopts.telemetry.registry = &registry;
  gopts.telemetry.tracer = &tracer;
  gopts.telemetry.track = 0;
  gopts.telemetry.introspect = true;
  gopts.telemetry.introspect_port = 0;  // ephemeral
  GlobalControllerServer global(net, "global", gopts);
  ASSERT_TRUE(global.start().is_ok());

  AggregatorServerOptions aopts;
  aopts.id = ControllerId{0};
  aopts.upstream_address = "global";
  aopts.telemetry.enabled = true;
  aopts.telemetry.registry = &registry;
  aopts.telemetry.tracer = &tracer;
  aopts.telemetry.track = 1;
  AggregatorServer agg(net, "agg0", aopts);
  ASSERT_TRUE(agg.start().is_ok());

  StageHostOptions hopts;
  hopts.controller_addresses = {"agg0"};
  hopts.telemetry.enabled = true;
  hopts.telemetry.registry = &registry;
  hopts.telemetry.tracer = &tracer;
  hopts.telemetry.track = 2;
  StageHost host(net, "host0", hopts);
  ASSERT_TRUE(host.start().is_ok());
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(host.add_stage({StageId{i}, NodeId{i}, JobId{0}, "n"},
                               workload::constant(1000),
                               workload::constant(100))
                    .is_ok());
  }
  ASSERT_TRUE(host.register_all().is_ok());
  const auto deadline = SystemClock::instance().now() + seconds(5);
  while (global.registered_stages() < 4 &&
         SystemClock::instance().now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(global.registered_stages(), 4u);
  ASSERT_TRUE(global.run_cycles(2).is_ok());

  const auto spans = tracer.snapshot();
  const auto traces = traces_of(spans, "cycle");
  ASSERT_EQ(traces.size(), 2u);

  for (const std::uint64_t trace : traces) {
    // global (track 0) -> aggregator (track 1) -> stage host (track 2):
    // each hop's parent is the upstream component's span in this trace.
    const Span* agg_collect = find_span(spans, trace, "agg.collect");
    ASSERT_NE(agg_collect, nullptr) << "trace " << trace;
    EXPECT_EQ(agg_collect->track, 1u);
    EXPECT_EQ(agg_collect->parent_span, derive_span_id(trace, 0, "collect"));
    EXPECT_EQ(agg_collect->span_id, derive_span_id(trace, 1, "agg.collect"));

    const Span* stage_collect = find_span(spans, trace, "stage.collect");
    ASSERT_NE(stage_collect, nullptr) << "trace " << trace;
    EXPECT_EQ(stage_collect->track, 2u);
    EXPECT_EQ(stage_collect->parent_span,
              derive_span_id(trace, 1, "agg.collect"));

    const Span* agg_enforce = find_span(spans, trace, "agg.enforce");
    ASSERT_NE(agg_enforce, nullptr) << "trace " << trace;
    EXPECT_EQ(agg_enforce->parent_span,
              derive_span_id(trace, 0, "disseminate"));

    const Span* stage_enforce = find_span(spans, trace, "stage.enforce");
    ASSERT_NE(stage_enforce, nullptr) << "trace " << trace;
    EXPECT_EQ(stage_enforce->parent_span,
              derive_span_id(trace, 1, "agg.enforce"));
  }

  // Every tier's always-on flight ring saw its hops.
  EXPECT_GT(global.flight().recorded(), 0u);
  EXPECT_GT(agg.flight().recorded(), 0u);
  EXPECT_GT(host.flight().recorded(), 0u);

  // Live introspection on the global controller: bound to an ephemeral
  // port, all three routes serve this run's data.
  telemetry::IntrospectionServer* introspection = global.introspection();
  ASSERT_NE(introspection, nullptr);
  EXPECT_TRUE(introspection->running());
  EXPECT_NE(introspection->port(), 0);
  std::string body;
  std::string type;
  ASSERT_TRUE(introspection->handle("/metrics", body, type));
  EXPECT_NE(body.find("sds_cycles_total"), std::string::npos);
  ASSERT_TRUE(introspection->handle("/cycles", body, type));
  EXPECT_NE(body.find("\"cycle\":"), std::string::npos) << body;
  EXPECT_NE(body.find("\"disseminate_ns\":"), std::string::npos) << body;
  ASSERT_TRUE(introspection->handle("/flight", body, type));
  EXPECT_NE(body.find("\"records\":["), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"cycle\""), std::string::npos) << body;

  host.shutdown();
  agg.shutdown();
  global.shutdown();
}

}  // namespace
}  // namespace sds::runtime
