// End-to-end integration for the delta collect path: stage hosts answer
// collects with StageMetricsDelta frames, the flat global controller
// folds them through its columnar MetricsStore, and decisions stay
// bit-identical to the full-frame pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "runtime/deployment.h"
#include "workload/generators.h"

namespace sds::runtime {
namespace {

DeploymentOptions contended_options() {
  DeploymentOptions options;
  options.num_stages = 16;
  options.stages_per_host = 4;
  options.stages_per_job = 4;
  options.budgets = {8000.0, 800.0};  // contended: 16 × 1000 demand
  options.demand_factory = [](StageId stage, stage::Dimension dim) {
    // Deterministic but varied per stage so deltas carry real changes.
    const double rate = 500.0 + 100.0 * static_cast<double>(stage.value());
    return workload::constant(dim == stage::Dimension::kData ? rate
                                                             : rate / 10);
  };
  return options;
}

std::vector<double> collect_limits(Deployment& deployment,
                                   std::size_t num_stages) {
  std::vector<double> limits;
  for (std::uint32_t i = 0; i < num_stages; ++i) {
    for (const auto dim : {stage::Dimension::kData, stage::Dimension::kMeta}) {
      auto limit = deployment.stage_limit(StageId{i}, dim);
      EXPECT_TRUE(limit.is_ok()) << limit.status();
      limits.push_back(limit.is_ok() ? *limit : -1.0);
    }
  }
  return limits;
}

TEST(DeltaRuntimeTest, DeltaCollectsMatchFullFramesBitForBit) {
  transport::InProcNetwork net_full;
  auto full = Deployment::create(net_full, contended_options()).value();

  transport::InProcNetwork net_delta;
  auto options = contended_options();
  options.delta_metrics = true;
  options.delta_refresh = 4;  // several full refreshes inside the run
  auto delta = Deployment::create(net_delta, options).value();

  ASSERT_TRUE(full->global().run_cycles(12).is_ok());
  ASSERT_TRUE(delta->global().run_cycles(12).is_ok());

  const auto limits_full = collect_limits(*full, 16);
  const auto limits_delta = collect_limits(*delta, 16);
  ASSERT_EQ(limits_full.size(), limits_delta.size());
  for (std::size_t i = 0; i < limits_full.size(); ++i) {
    EXPECT_EQ(limits_full[i], limits_delta[i]) << "limit " << i;
  }
}

TEST(DeltaRuntimeTest, DeltaCollectsShrinkInboundWireBytes) {
  // Steady-state demands: after the first full report every delta frame
  // carries only the cycle header, so the controller's inbound byte rate
  // must drop. Inbound also carries per-stage enforce acks (identical in
  // both modes), so assert the per-collect saving rather than a gross
  // ratio — the ≥3× payload gate lives in the sim's exact accounting
  // (StoreCollectTest.DeltaCollectSteadyStateCompressionAtLeast3x).
  auto make = [](bool delta_on) {
    DeploymentOptions options;
    options.num_stages = 32;
    options.stages_per_host = 8;
    options.budgets = {1'000'000.0, 100'000.0};  // uncontended, stable
    options.delta_metrics = delta_on;
    options.delta_refresh = 1000;  // no periodic refresh inside the run
    return options;
  };

  transport::InProcNetwork net_full;
  auto full = Deployment::create(net_full, make(false)).value();
  transport::InProcNetwork net_delta;
  auto delta = Deployment::create(net_delta, make(true)).value();

  // Warm up (registration + first full reports), then measure.
  ASSERT_TRUE(full->global().run_cycles(2).is_ok());
  ASSERT_TRUE(delta->global().run_cycles(2).is_ok());
  const auto full_before = full->global().endpoint()->counters();
  const auto delta_before = delta->global().endpoint()->counters();
  ASSERT_TRUE(full->global().run_cycles(20).is_ok());
  ASSERT_TRUE(delta->global().run_cycles(20).is_ok());
  const std::uint64_t full_bytes =
      full->global().endpoint()->counters().bytes_received -
      full_before.bytes_received;
  const std::uint64_t delta_bytes =
      delta->global().endpoint()->counters().bytes_received -
      delta_before.bytes_received;
  EXPECT_LT(delta_bytes, full_bytes);
  // A full StageMetrics payload is ~42 bytes; a steady-state delta is a
  // varint cycle id + empty flags (~3). Require ≥30 bytes saved per
  // collect reply: 20 cycles × 32 stages.
  EXPECT_GE(full_bytes - delta_bytes, 20u * 32u * 30u)
      << "full=" << full_bytes << " delta=" << delta_bytes;
}

TEST(DeltaRuntimeTest, BatchPipelineAblationMatchesStorePath) {
  // With every stage reporting every cycle, the store compute path and
  // the legacy batch pipeline make bit-identical decisions.
  transport::InProcNetwork net_store;
  auto store = Deployment::create(net_store, contended_options()).value();

  transport::InProcNetwork net_batch;
  auto options = contended_options();
  options.use_metrics_store = false;
  auto batch = Deployment::create(net_batch, options).value();

  ASSERT_TRUE(store->global().run_cycles(8).is_ok());
  ASSERT_TRUE(batch->global().run_cycles(8).is_ok());

  const auto limits_store = collect_limits(*store, 16);
  const auto limits_batch = collect_limits(*batch, 16);
  for (std::size_t i = 0; i < limits_store.size(); ++i) {
    EXPECT_EQ(limits_store[i], limits_batch[i]) << "limit " << i;
  }
}

TEST(DeltaRuntimeTest, FullRecomputeAblationMatchesIncremental) {
  transport::InProcNetwork net_inc;
  auto inc_options = contended_options();
  inc_options.delta_metrics = true;
  auto incremental = Deployment::create(net_inc, inc_options).value();

  transport::InProcNetwork net_ful;
  auto ful_options = contended_options();
  ful_options.delta_metrics = true;
  ful_options.psfa_full_recompute = true;
  auto recompute = Deployment::create(net_ful, ful_options).value();

  ASSERT_TRUE(incremental->global().run_cycles(10).is_ok());
  ASSERT_TRUE(recompute->global().run_cycles(10).is_ok());

  const auto limits_inc = collect_limits(*incremental, 16);
  const auto limits_ful = collect_limits(*recompute, 16);
  for (std::size_t i = 0; i < limits_inc.size(); ++i) {
    EXPECT_EQ(limits_inc[i], limits_ful[i]) << "limit " << i;
  }
}

TEST(DeltaRuntimeTest, DeltaChainSurvivesStageHostRestart) {
  transport::InProcNetwork net;
  auto options = contended_options();
  options.delta_metrics = true;
  options.delta_refresh = 1000;  // restart must not depend on a refresh
  auto deployment = Deployment::create(net, options).value();
  ASSERT_TRUE(deployment->global().run_cycles(4).is_ok());

  ASSERT_TRUE(deployment->kill_stage_host(1).is_ok());
  const auto deadline = SystemClock::instance().now() + seconds(5);
  while (deployment->global().registered_stages() != 12 &&
         SystemClock::instance().now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(deployment->global().registered_stages(), 12u);
  // Survivors keep their delta chains across the roster change.
  ASSERT_TRUE(deployment->global().run_cycles(3).is_ok());

  ASSERT_TRUE(deployment->restart_stage_host(1).is_ok());
  while (deployment->global().registered_stages() != 16 &&
         SystemClock::instance().now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(deployment->global().registered_stages(), 16u);
  ASSERT_TRUE(deployment->global().run_cycles(10).is_ok());

  // Every stage (including the restarted host's) is back under control:
  // limits present, within budget, and work-conserving under contention.
  double data_sum = 0;
  for (std::uint32_t i = 0; i < 16; ++i) {
    auto limit = deployment->stage_limit(StageId{i}, stage::Dimension::kData);
    ASSERT_TRUE(limit.is_ok()) << "stage " << i << ": " << limit.status();
    EXPECT_GE(*limit, 0.0);
    data_sum += *limit;
  }
  EXPECT_LE(data_sum, 8000.0 * 1.001);
  EXPECT_GE(data_sum, 8000.0 * 0.9);
}

TEST(DeltaRuntimeTest, DeltaMetricsRejectedWithAggregators) {
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 8;
  options.num_aggregators = 2;
  options.delta_metrics = true;
  const auto deployment = Deployment::create(net, options);
  ASSERT_FALSE(deployment.is_ok());
  EXPECT_EQ(deployment.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeltaRuntimeTest, DeltaMetricsRejectsZeroRefresh) {
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 8;
  options.delta_metrics = true;
  options.delta_refresh = 0;
  const auto deployment = Deployment::create(net, options);
  ASSERT_FALSE(deployment.is_ok());
  EXPECT_EQ(deployment.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sds::runtime
