// Cross-validation: the discrete-event simulator and the live runtime
// share the controller logic, so the *decisions* (enforced per-stage
// limits) for the same workload must agree — this is what justifies
// trusting 10,000-node simulated results from code validated live.
#include <gtest/gtest.h>

#include "runtime/deployment.h"
#include "sim/experiment.h"
#include "workload/generators.h"

namespace sds {
namespace {

/// Deterministic demand: stage i wants 400 + 150*i data ops/s and a
/// tenth of that in metadata ops/s.
stage::DemandFn demand_for(StageId stage, stage::Dimension dim) {
  const double base = 400.0 + 150.0 * stage.value();
  return workload::constant(dim == stage::Dimension::kData ? base
                                                           : base / 10.0);
}

struct Topology {
  std::size_t stages;
  std::size_t aggregators;
  std::size_t stages_per_job;
};

class CrossValidationTest : public ::testing::TestWithParam<Topology> {};

TEST_P(CrossValidationTest, SimAndLiveEnforceSameLimits) {
  const Topology& topo = GetParam();
  const core::Budgets budgets{4000.0, 400.0};  // heavily contended

  // --- Simulated run -------------------------------------------------
  sim::ExperimentConfig sim_config;
  sim_config.num_stages = topo.stages;
  sim_config.num_aggregators = topo.aggregators;
  sim_config.stages_per_job = topo.stages_per_job;
  sim_config.budgets = budgets;
  sim_config.max_cycles = 4;
  sim_config.duration = seconds(60);
  sim_config.demand_factory = demand_for;
  const auto sim_result = sim::run_experiment(sim_config);
  ASSERT_TRUE(sim_result.is_ok()) << sim_result.status();

  // --- Live run (in-process transport) ---------------------------------
  transport::InProcNetwork network;
  runtime::DeploymentOptions live_options;
  live_options.num_stages = topo.stages;
  live_options.num_aggregators = topo.aggregators;
  live_options.stages_per_job = topo.stages_per_job;
  live_options.budgets = budgets;
  live_options.demand_factory = demand_for;
  auto deployment = runtime::Deployment::create(network, live_options);
  ASSERT_TRUE(deployment.is_ok()) << deployment.status();
  ASSERT_TRUE((*deployment)->global().run_cycles(4).is_ok());

  // --- Compare per-stage enforced limits --------------------------------
  ASSERT_EQ(sim_result->final_data_limits.size(), topo.stages);
  for (std::uint32_t i = 0; i < topo.stages; ++i) {
    const double sim_limit = sim_result->final_data_limits[i];
    const auto live_limit =
        (*deployment)->stage_limit(StageId{i}, stage::Dimension::kData);
    ASSERT_TRUE(live_limit.is_ok());
    EXPECT_NEAR(*live_limit, sim_limit, std::abs(sim_limit) * 0.01 + 0.5)
        << "stage " << i;

    const double sim_meta = sim_result->final_meta_limits[i];
    const auto live_meta =
        (*deployment)->stage_limit(StageId{i}, stage::Dimension::kMeta);
    ASSERT_TRUE(live_meta.is_ok());
    EXPECT_NEAR(*live_meta, sim_meta, std::abs(sim_meta) * 0.01 + 0.5)
        << "stage " << i << " (meta)";
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, CrossValidationTest,
                         ::testing::Values(Topology{8, 0, 4},
                                           Topology{12, 0, 3},
                                           Topology{8, 2, 4},
                                           Topology{12, 3, 4}));

}  // namespace
}  // namespace sds
