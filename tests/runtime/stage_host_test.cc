#include "runtime/stage_host.h"

#include <gtest/gtest.h>

#include "transport/inproc.h"
#include "workload/generators.h"

namespace sds::runtime {
namespace {

proto::StageInfo info(std::uint32_t id) {
  return {StageId{id}, NodeId{id}, JobId{id / 4}, "host"};
}

/// Minimal fake controller capturing registrations and serving one conn.
class FakeController {
 public:
  explicit FakeController(transport::Network& net) {
    endpoint_ = net.bind("ctrl", {}).value();
    endpoint_->set_frame_handler([this](ConnId conn, wire::Frame frame) {
      std::lock_guard<std::mutex> lock(mu_);
      if (frame.type ==
          static_cast<std::uint16_t>(proto::MessageType::kRegisterRequest)) {
        auto request = proto::from_frame<proto::RegisterRequest>(frame);
        if (request.is_ok()) registered_.push_back(request->info);
        proto::RegisterAck ack;
        ack.accepted = accept_;
        ack.epoch = 1;
        (void)endpoint_->send(conn, proto::to_frame(ack));
      } else {
        frames_.push_back({conn, std::move(frame)});
      }
    });
  }

  std::size_t registered() const {
    std::lock_guard<std::mutex> lock(mu_);
    return registered_.size();
  }

  void set_accept(bool accept) {
    std::lock_guard<std::mutex> lock(mu_);
    accept_ = accept;
  }

  transport::Endpoint& endpoint() { return *endpoint_; }

  std::vector<std::pair<ConnId, wire::Frame>> take_frames() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(frames_);
  }

 private:
  std::unique_ptr<transport::Endpoint> endpoint_;
  mutable std::mutex mu_;
  std::vector<proto::StageInfo> registered_;
  std::vector<std::pair<ConnId, wire::Frame>> frames_;
  bool accept_ = true;
};

TEST(StageHostTest, StartAndAddStages) {
  transport::InProcNetwork net;
  StageHost host(net, "host0", {{"ctrl"}});
  ASSERT_TRUE(host.start().is_ok());
  EXPECT_TRUE(host.add_stage(info(1), workload::constant(100),
                             workload::constant(10))
                  .is_ok());
  EXPECT_TRUE(host.add_stage(info(2), workload::constant(100),
                             workload::constant(10))
                  .is_ok());
  EXPECT_EQ(host.stage_count(), 2u);
}

TEST(StageHostTest, DuplicateStageRejected) {
  transport::InProcNetwork net;
  StageHost host(net, "host0", {{"ctrl"}});
  ASSERT_TRUE(host.start().is_ok());
  ASSERT_TRUE(host.add_stage(info(1), nullptr, nullptr).is_ok());
  EXPECT_EQ(host.add_stage(info(1), nullptr, nullptr).code(),
            StatusCode::kAlreadyExists);
}

TEST(StageHostTest, RegisterAllConnectsEachStage) {
  transport::InProcNetwork net;
  FakeController controller(net);
  StageHost host(net, "host0", {{"ctrl"}});
  ASSERT_TRUE(host.start().is_ok());
  for (std::uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(host.add_stage(info(i), workload::constant(100), nullptr)
                    .is_ok());
  }
  ASSERT_TRUE(host.register_all().is_ok());
  EXPECT_EQ(controller.registered(), 5u);
  // One connection per stage, as in the paper's deployment.
  EXPECT_EQ(controller.endpoint().counters().current_connections, 5u);
}

TEST(StageHostTest, RegisterWithoutControllerFails) {
  transport::InProcNetwork net;
  StageHost host(net, "host0", {{}});
  ASSERT_TRUE(host.start().is_ok());
  ASSERT_TRUE(host.add_stage(info(1), nullptr, nullptr).is_ok());
  EXPECT_FALSE(host.register_all().is_ok());
}

TEST(StageHostTest, RegistrationRejectedSurfacesError) {
  transport::InProcNetwork net;
  FakeController controller(net);
  controller.set_accept(false);
  StageHost host(net, "host0", {{"ctrl"}, millis(200)});
  ASSERT_TRUE(host.start().is_ok());
  ASSERT_TRUE(host.add_stage(info(1), nullptr, nullptr).is_ok());
  EXPECT_FALSE(host.register_all().is_ok());
}

TEST(StageHostTest, RegisterBeforeStartFails) {
  transport::InProcNetwork net;
  StageHost host(net, "host0", {{"ctrl"}});
  EXPECT_EQ(host.register_all().code(), StatusCode::kFailedPrecondition);
}

TEST(StageHostTest, StageLimitLookup) {
  transport::InProcNetwork net;
  StageHost host(net, "host0", {{"ctrl"}});
  ASSERT_TRUE(host.start().is_ok());
  ASSERT_TRUE(host.add_stage(info(1), nullptr, nullptr).is_ok());
  auto limit = host.stage_limit(StageId{1}, stage::Dimension::kData);
  ASSERT_TRUE(limit.is_ok());
  EXPECT_DOUBLE_EQ(*limit, proto::kUnlimited);
  EXPECT_FALSE(host.stage_limit(StageId{9}, stage::Dimension::kData).is_ok());
}

TEST(StageHostTest, DoubleStartFails) {
  transport::InProcNetwork net;
  StageHost host(net, "host0", {{"ctrl"}});
  ASSERT_TRUE(host.start().is_ok());
  EXPECT_FALSE(host.start().is_ok());
}

}  // namespace
}  // namespace sds::runtime
