// End-to-end integration: flat control plane over the in-process (and
// TCP) transports — registration, control cycles, QoS convergence.
#include <gtest/gtest.h>

#include <numeric>

#include "runtime/deployment.h"
#include "transport/tcp.h"
#include "wire/shared_frame.h"
#include "workload/generators.h"

namespace sds::runtime {
namespace {

TEST(FlatRuntimeTest, DeploymentRegistersAllStages) {
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 12;
  options.stages_per_host = 4;
  auto deployment = Deployment::create(net, options);
  ASSERT_TRUE(deployment.is_ok()) << deployment.status();
  EXPECT_EQ((*deployment)->global().registered_stages(), 12u);
  EXPECT_EQ((*deployment)->stage_hosts().size(), 3u);
}

TEST(FlatRuntimeTest, CycleWithoutStagesFails) {
  transport::InProcNetwork net;
  GlobalControllerServer server(net, "global", {});
  ASSERT_TRUE(server.start().is_ok());
  EXPECT_FALSE(server.run_cycle().is_ok());
}

TEST(FlatRuntimeTest, RunCycleProducesBreakdown) {
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 8;
  auto deployment = Deployment::create(net, options).value();

  auto breakdown = deployment->global().run_cycle();
  ASSERT_TRUE(breakdown.is_ok()) << breakdown.status();
  EXPECT_GT(breakdown->total(), Nanos{0});
  EXPECT_EQ(deployment->global().stats().cycles(), 1u);
}

TEST(FlatRuntimeTest, BroadcastWavesEncodeExactlyOncePerMessage) {
  // The collect and heartbeat waves send one identical message to every
  // stage connection; the shared-frame fast path must encode it exactly
  // once per wave regardless of fan-out.
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 16;
  options.stages_per_host = 4;
  auto deployment = Deployment::create(net, options).value();

  const auto counters_before = deployment->global().endpoint()->counters();
  auto encodes_before = wire::EncodeStats::frames_encoded.load();
  ASSERT_TRUE(deployment->global().run_cycle().is_ok());
  // The CollectRequest is the cycle's only broadcast (enforce batches are
  // per-connection-unique and take the unicast path).
  EXPECT_EQ(wire::EncodeStats::frames_encoded.load() - encodes_before, 1u);
  const auto counters_after = deployment->global().endpoint()->counters();
  // ...yet all 16 stages were sent the request (plus enforce batches).
  EXPECT_GE(counters_after.messages_sent - counters_before.messages_sent, 16u);

  encodes_before = wire::EncodeStats::frames_encoded.load();
  ASSERT_TRUE(deployment->global().probe_liveness(millis(500)).is_ok());
  EXPECT_EQ(wire::EncodeStats::frames_encoded.load() - encodes_before, 1u);
}

TEST(FlatRuntimeTest, EnforcedLimitsReachStages) {
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 8;
  options.stages_per_job = 4;
  options.budgets = {4000.0, 400.0};   // contended: 8 × 1000 demand
  auto deployment = Deployment::create(net, options).value();

  ASSERT_TRUE(deployment->global().run_cycles(3).is_ok());

  double data_sum = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    auto limit = deployment->stage_limit(StageId{i}, stage::Dimension::kData);
    ASSERT_TRUE(limit.is_ok());
    EXPECT_GE(*limit, 0.0);
    data_sum += *limit;
  }
  EXPECT_LE(data_sum, 4000.0 * 1.001);
  EXPECT_GE(data_sum, 4000.0 * 0.9);  // work-conserving under contention
}

TEST(FlatRuntimeTest, WeightsShiftAllocations) {
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 8;
  options.stages_per_job = 4;  // jobs 0 and 1
  options.budgets = {4000.0, 400.0};
  auto deployment = Deployment::create(net, options).value();

  deployment->global().set_job_weight(JobId{0}, 3.0);
  ASSERT_TRUE(deployment->global().run_cycles(3).is_ok());

  double job0 = 0;
  double job1 = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const double limit =
        deployment->stage_limit(StageId{i}, stage::Dimension::kData).value();
    (i < 4 ? job0 : job1) += limit;
  }
  EXPECT_NEAR(job0, 3 * job1, job1 * 0.05);
}

TEST(FlatRuntimeTest, IdleJobYieldsBudgetToActiveJob) {
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 8;
  options.stages_per_job = 4;
  options.budgets = {4000.0, 400.0};
  options.demand_factory = [](StageId stage, stage::Dimension dim) {
    const bool idle_job = stage.value() < 4;  // job 0 idle
    const double rate = idle_job ? 0.0 : 5000.0;
    return workload::constant(dim == stage::Dimension::kData ? rate
                                                             : rate / 10);
  };
  auto deployment = Deployment::create(net, options).value();
  ASSERT_TRUE(deployment->global().run_cycles(3).is_ok());

  double job1 = 0;
  for (std::uint32_t i = 4; i < 8; ++i) {
    job1 += deployment->stage_limit(StageId{i}, stage::Dimension::kData).value();
  }
  // PSFA: nearly the whole budget flows to the only active job.
  EXPECT_GE(job1, 4000.0 * 0.95);
}

TEST(FlatRuntimeTest, ConvergenceUnderDemandShift) {
  // A stage's demand jumps; within a couple of cycles its limit follows
  // (headroom ramp: each cycle the limit may grow by 1.2×).
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 2;
  options.stages_per_job = 1;
  options.budgets = {100'000.0, 10'000.0};
  std::atomic<double> demand0{100.0};
  options.demand_factory = [&](StageId stage, stage::Dimension dim) {
    if (dim == stage::Dimension::kMeta) return workload::constant(10.0);
    if (stage.value() == 0) {
      return stage::DemandFn([&](Nanos) { return demand0.load(); });
    }
    return workload::constant(100.0);
  };
  auto deployment = Deployment::create(net, options).value();
  ASSERT_TRUE(deployment->global().run_cycles(2).is_ok());
  const double before =
      deployment->stage_limit(StageId{0}, stage::Dimension::kData).value();
  EXPECT_NEAR(before, 120.0, 1.0);  // 1.2 × 100

  demand0.store(10'000.0);
  // Limit ratchets by ×1.2 per cycle from the observed (throttled) rate.
  ASSERT_TRUE(deployment->global().run_cycles(30).is_ok());
  const double after =
      deployment->stage_limit(StageId{0}, stage::Dimension::kData).value();
  EXPECT_GE(after, 10'000.0);
}

TEST(FlatRuntimeTest, WorksOverTcpTransport) {
  transport::TcpNetwork net;
  GlobalServerOptions server_options;
  server_options.core.budgets = {1000.0, 100.0};
  GlobalControllerServer server(net, "127.0.0.1:0", server_options);
  ASSERT_TRUE(server.start().is_ok());

  StageHostOptions host_options;
  host_options.controller_addresses = {server.address()};
  StageHost host(net, "127.0.0.1:0", host_options);
  ASSERT_TRUE(host.start().is_ok());
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(host.add_stage({StageId{i}, NodeId{i}, JobId{0}, "n"},
                               workload::constant(1000), workload::constant(100))
                    .is_ok());
  }
  ASSERT_TRUE(host.register_all().is_ok());
  EXPECT_EQ(server.registered_stages(), 4u);

  ASSERT_TRUE(server.run_cycles(3).is_ok());
  EXPECT_EQ(server.stats().cycles(), 3u);
  double sum = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    sum += host.stage_limit(StageId{i}, stage::Dimension::kData).value();
  }
  EXPECT_LE(sum, 1000.0 * 1.001);
  EXPECT_GE(sum, 900.0);
  host.shutdown();
  server.shutdown();
}

TEST(FlatRuntimeTest, StageDepartureShrinksRoster) {
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 6;
  options.stages_per_host = 3;
  auto deployment = Deployment::create(net, options).value();
  ASSERT_EQ(deployment->global().registered_stages(), 6u);

  // Kill one stage host (3 stages leave).
  deployment->stage_hosts()[0]->shutdown();
  const auto deadline = SystemClock::instance().now() + seconds(5);
  while (deployment->global().registered_stages() != 3 &&
         SystemClock::instance().now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(deployment->global().registered_stages(), 3u);

  // The control loop keeps working with the survivors.
  EXPECT_TRUE(deployment->global().run_cycle().is_ok());
}

TEST(FlatRuntimeTest, StressManyCycles) {
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 16;
  auto deployment = Deployment::create(net, options).value();
  ASSERT_TRUE(deployment->global().run_cycles(50).is_ok());
  EXPECT_EQ(deployment->global().stats().cycles(), 50u);
  // Every cycle collected from every stage.
  std::uint64_t answered = 0;
  for (auto& host : deployment->stage_hosts()) {
    answered += host->collects_answered();
  }
  EXPECT_EQ(answered, 50u * 16u);
}

}  // namespace
}  // namespace sds::runtime
