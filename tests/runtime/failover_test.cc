// Dependability tests (paper §VI): stale-rule rejection across controller
// epochs, aggregator failure with stage re-registration, and continued
// operation with outdated rules while the control plane is degraded.
#include <gtest/gtest.h>

#include "runtime/deployment.h"
#include "runtime/fault_driver.h"
#include "workload/generators.h"

namespace sds::runtime {
namespace {

template <typename Pred>
bool eventually(Pred pred, Nanos deadline = seconds(5)) {
  const Nanos until = SystemClock::instance().now() + deadline;
  while (SystemClock::instance().now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

TEST(FailoverTest, EpochAdvanceSupersedesOldRules) {
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 4;
  options.budgets = {4000.0, 400.0};
  auto deployment = Deployment::create(net, options).value();

  ASSERT_TRUE(deployment->global().run_cycle().is_ok());
  const std::uint32_t epoch_before = deployment->global().epoch();
  deployment->global().advance_epoch();
  EXPECT_EQ(deployment->global().epoch(), epoch_before + 1);
  // Rules from the new epoch still apply cleanly.
  ASSERT_TRUE(deployment->global().run_cycle().is_ok());
  const double limit =
      deployment->stage_limit(StageId{0}, stage::Dimension::kData).value();
  EXPECT_GT(limit, 0.0);
}

TEST(FailoverTest, StageKeepsEnforcingOldRulesWhileControllerDown) {
  // Paper §VI: controller failure does not stop the data plane — stages
  // keep mediating I/O with possibly outdated rules.
  transport::InProcNetwork net;

  GlobalServerOptions gopts;
  gopts.core.budgets = {1000.0, 100.0};
  auto global = std::make_unique<GlobalControllerServer>(net, "global", gopts);
  ASSERT_TRUE(global->start().is_ok());

  StageHostOptions hopts;
  hopts.controller_addresses = {"global"};
  hopts.auto_failover = false;  // nothing to fail over to
  StageHost host(net, "host0", hopts);
  ASSERT_TRUE(host.start().is_ok());
  ASSERT_TRUE(host.add_stage({StageId{0}, NodeId{0}, JobId{0}, "n"},
                             workload::constant(5000),
                             workload::constant(500))
                  .is_ok());
  ASSERT_TRUE(host.register_all().is_ok());
  ASSERT_TRUE(global->run_cycle().is_ok());
  const double enforced =
      host.stage_limit(StageId{0}, stage::Dimension::kData).value();
  EXPECT_GT(enforced, 0.0);

  global->shutdown();
  global.reset();
  // The stage still holds (and would keep enforcing) the last rule.
  EXPECT_DOUBLE_EQ(
      host.stage_limit(StageId{0}, stage::Dimension::kData).value(), enforced);
  host.shutdown();
}

TEST(FailoverTest, AggregatorFailureEvictsSubtreeAtGlobal) {
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 8;
  options.num_aggregators = 2;
  options.stages_per_host = 4;
  auto deployment = Deployment::create(net, options).value();
  ASSERT_EQ(deployment->global().registered_stages(), 8u);

  // Kill aggregator 0 via a scripted fault plan (the canonical way to
  // drive kill sequences; see FaultDriver). Its stages should fail over
  // to aggregator 1 and re-register through it; the global roster should
  // recover to 8.
  fault::FaultPlan plan;
  plan.crash_aggregator(0, millis(1));  // never restarts
  FaultDriver driver(*deployment, plan);
  ASSERT_TRUE(driver.advance_to(millis(1)).is_ok());
  ASSERT_EQ(driver.events_applied(), 1u);

  EXPECT_TRUE(eventually([&] {
    return deployment->global().known_aggregators() == 1 &&
           deployment->global().registered_stages() == 8;
  })) << "stages="
      << deployment->global().registered_stages()
      << " aggs=" << deployment->global().known_aggregators();

  // Control cycles continue over the surviving aggregator.
  ASSERT_TRUE(deployment->global().run_cycle().is_ok());
  EXPECT_EQ(deployment->aggregators()[1]->registered_stages(), 8u);
}

TEST(FailoverTest, StageFailoverBetweenControllers) {
  // Two independent flat controllers; the stage re-registers with the
  // second when the first dies.
  transport::InProcNetwork net;
  GlobalServerOptions gopts;
  auto primary = std::make_unique<GlobalControllerServer>(net, "ctl0", gopts);
  ASSERT_TRUE(primary->start().is_ok());
  GlobalControllerServer backup(net, "ctl1", gopts);
  ASSERT_TRUE(backup.start().is_ok());

  StageHostOptions hopts;
  hopts.controller_addresses = {"ctl0", "ctl1"};
  StageHost host(net, "host0", hopts);
  ASSERT_TRUE(host.start().is_ok());
  ASSERT_TRUE(host.add_stage({StageId{0}, NodeId{0}, JobId{0}, "n"},
                             workload::constant(100), nullptr)
                  .is_ok());
  ASSERT_TRUE(host.register_all().is_ok());
  ASSERT_EQ(primary->registered_stages(), 1u);
  ASSERT_EQ(backup.registered_stages(), 0u);

  primary->shutdown();
  primary.reset();
  EXPECT_TRUE(eventually([&] { return backup.registered_stages() == 1; }));
  EXPECT_TRUE(backup.run_cycle().is_ok());
  host.shutdown();
  backup.shutdown();
}

TEST(FailoverTest, LivenessProbeAllHealthy) {
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 6;
  options.num_aggregators = 2;
  options.stages_per_host = 3;
  auto deployment = Deployment::create(net, options).value();

  auto dead = deployment->global().probe_liveness(seconds(2));
  ASSERT_TRUE(dead.is_ok()) << dead.status();
  EXPECT_TRUE(dead->empty());
}

TEST(FailoverTest, LivenessProbeWithNoPeers) {
  transport::InProcNetwork net;
  GlobalControllerServer server(net, "global", {});
  ASSERT_TRUE(server.start().is_ok());
  auto dead = server.probe_liveness(millis(100));
  ASSERT_TRUE(dead.is_ok());
  EXPECT_TRUE(dead->empty());
}

TEST(FailoverTest, LivenessProbeDetectsHungAggregator) {
  // A peer whose connection is open but whose process is wedged: an
  // endpoint that introduces itself as an aggregator and then never
  // answers anything.
  transport::InProcNetwork net;
  GlobalServerOptions gopts;
  GlobalControllerServer global(net, "global", gopts);
  ASSERT_TRUE(global.start().is_ok());

  auto zombie = net.bind("zombie", {}).value();
  zombie->set_frame_handler([](ConnId, wire::Frame) { /* wedged */ });
  const ConnId up = zombie->connect("global").value();
  proto::Heartbeat intro;
  intro.from = ControllerId{7};
  intro.seq = 0;
  ASSERT_TRUE(zombie->send(up, proto::to_frame(intro)).is_ok());
  ASSERT_TRUE(eventually([&] { return global.known_aggregators() == 1; }));

  auto dead = global.probe_liveness(millis(150));
  ASSERT_TRUE(dead.is_ok());
  ASSERT_EQ(dead->size(), 1u);
  EXPECT_EQ((*dead)[0].aggregator, ControllerId{7});

  // Evicting clears the roster.
  global.evict((*dead)[0]);
  EXPECT_TRUE(eventually([&] { return global.known_aggregators() == 0; }));
  zombie->shutdown();
  global.shutdown();
}

TEST(FailoverTest, LivenessProbeCoversDirectStages) {
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 4;  // flat: direct stage connections
  auto deployment = Deployment::create(net, options).value();
  auto dead = deployment->global().probe_liveness(seconds(2));
  ASSERT_TRUE(dead.is_ok());
  EXPECT_TRUE(dead->empty());
}

TEST(FailoverTest, StaleRuleFromOldEpochRejectedByStage) {
  // Simulate a delayed rule from a superseded controller epoch arriving
  // after a newer rule: the stage must keep the newer one.
  stage::VirtualStage stage({StageId{1}, NodeId{1}, JobId{1}, "n"},
                            workload::constant(1000), nullptr);
  proto::Rule newer;
  newer.stage_id = StageId{1};
  newer.data_iops_limit = 500.0;
  newer.epoch = (2ull << 40) | 1;  // epoch 2, cycle 1
  ASSERT_TRUE(stage.apply(newer));

  proto::Rule stale;
  stale.stage_id = StageId{1};
  stale.data_iops_limit = 9999.0;
  stale.epoch = (1ull << 40) | 999;  // epoch 1, much later cycle
  EXPECT_FALSE(stage.apply(stale));
  EXPECT_DOUBLE_EQ(stage.limit(stage::Dimension::kData), 500.0);
}

}  // namespace
}  // namespace sds::runtime
