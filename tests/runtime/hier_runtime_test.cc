// End-to-end integration: hierarchical control plane (global controller,
// aggregators, stage hosts) over the in-process transport.
#include <gtest/gtest.h>

#include "runtime/deployment.h"
#include "workload/generators.h"

namespace sds::runtime {
namespace {

TEST(HierRuntimeTest, RegistrationsForwardToGlobal) {
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 12;
  options.num_aggregators = 3;
  options.stages_per_host = 4;
  auto deployment = Deployment::create(net, options);
  ASSERT_TRUE(deployment.is_ok()) << deployment.status();
  EXPECT_EQ((*deployment)->global().registered_stages(), 12u);
  EXPECT_EQ((*deployment)->global().known_aggregators(), 3u);
  std::size_t at_aggs = 0;
  for (auto& agg : (*deployment)->aggregators()) {
    at_aggs += agg->registered_stages();
  }
  EXPECT_EQ(at_aggs, 12u);
}

TEST(HierRuntimeTest, CyclesFlowThroughAggregators) {
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 8;
  options.num_aggregators = 2;
  auto deployment = Deployment::create(net, options).value();

  ASSERT_TRUE(deployment->global().run_cycles(5).is_ok());
  EXPECT_EQ(deployment->global().stats().cycles(), 5u);
  for (auto& agg : deployment->aggregators()) {
    EXPECT_EQ(agg->cycles_served(), 5u);
  }
  // Every stage answered every cycle via its aggregator.
  std::uint64_t answered = 0;
  for (auto& host : deployment->stage_hosts()) {
    answered += host->collects_answered();
  }
  EXPECT_EQ(answered, 5u * 8u);
}

TEST(HierRuntimeTest, BudgetEnforcedThroughHierarchy) {
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 8;
  options.num_aggregators = 2;
  options.stages_per_job = 4;
  options.budgets = {4000.0, 400.0};
  auto deployment = Deployment::create(net, options).value();

  ASSERT_TRUE(deployment->global().run_cycles(3).is_ok());
  double data_sum = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto limit =
        deployment->stage_limit(StageId{i}, stage::Dimension::kData);
    ASSERT_TRUE(limit.is_ok());
    data_sum += *limit;
  }
  EXPECT_LE(data_sum, 4000.0 * 1.001);
  EXPECT_GE(data_sum, 4000.0 * 0.9);
}

TEST(HierRuntimeTest, DigestsPreserveProportionalSplit) {
  // Stages of the same job with unequal demand get proportional limits
  // even through the aggregated path, thanks to StageDigests.
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 2;
  options.num_aggregators = 1;
  options.stages_per_job = 2;
  options.budgets = {1000.0, 100.0};
  options.demand_factory = [](StageId stage, stage::Dimension dim) {
    const double base = stage.value() == 0 ? 1000.0 : 3000.0;
    return workload::constant(dim == stage::Dimension::kData ? base
                                                             : base / 10);
  };
  auto deployment = Deployment::create(net, options).value();
  ASSERT_TRUE(deployment->global().run_cycles(2).is_ok());

  const double limit0 =
      deployment->stage_limit(StageId{0}, stage::Dimension::kData).value();
  const double limit1 =
      deployment->stage_limit(StageId{1}, stage::Dimension::kData).value();
  EXPECT_NEAR(limit1, 3 * limit0, limit0 * 0.1);
}

TEST(HierRuntimeTest, FlatAndHierSameAllocations) {
  // The same workload yields (approximately) the same stage limits under
  // both designs — the defining correctness property of the hierarchy.
  const DeploymentOptions base = [] {
    DeploymentOptions o;
    o.num_stages = 8;
    o.stages_per_job = 2;
    o.budgets = {4000.0, 400.0};
    return o;
  }();

  transport::InProcNetwork flat_net;
  auto flat = Deployment::create(flat_net, base).value();
  ASSERT_TRUE(flat->global().run_cycles(3).is_ok());

  DeploymentOptions hier_options = base;
  hier_options.num_aggregators = 2;
  transport::InProcNetwork hier_net;
  auto hier = Deployment::create(hier_net, hier_options).value();
  ASSERT_TRUE(hier->global().run_cycles(3).is_ok());

  for (std::uint32_t i = 0; i < 8; ++i) {
    const double f =
        flat->stage_limit(StageId{i}, stage::Dimension::kData).value();
    const double h =
        hier->stage_limit(StageId{i}, stage::Dimension::kData).value();
    EXPECT_NEAR(f, h, f * 0.05 + 1.0) << "stage " << i;
  }
}

TEST(HierRuntimeTest, MixedTopologyWorks) {
  // Stages attached both directly and via an aggregator.
  transport::InProcNetwork net;

  GlobalServerOptions gopts;
  gopts.core.budgets = {2000.0, 200.0};
  GlobalControllerServer global(net, "global", gopts);
  ASSERT_TRUE(global.start().is_ok());

  AggregatorServerOptions aopts;
  aopts.id = ControllerId{0};
  aopts.upstream_address = "global";
  AggregatorServer agg(net, "agg0", aopts);
  ASSERT_TRUE(agg.start().is_ok());

  StageHost direct(net, "direct", {{"global"}});
  ASSERT_TRUE(direct.start().is_ok());
  ASSERT_TRUE(direct
                  .add_stage({StageId{0}, NodeId{0}, JobId{0}, "d"},
                             workload::constant(1000), workload::constant(100))
                  .is_ok());
  ASSERT_TRUE(direct.register_all().is_ok());

  StageHost via_agg(net, "viaagg", {{"agg0"}});
  ASSERT_TRUE(via_agg.start().is_ok());
  ASSERT_TRUE(via_agg
                  .add_stage({StageId{1}, NodeId{1}, JobId{0}, "a"},
                             workload::constant(1000), workload::constant(100))
                  .is_ok());
  ASSERT_TRUE(via_agg.register_all().is_ok());

  const auto deadline = SystemClock::instance().now() + seconds(5);
  while (global.registered_stages() < 2 &&
         SystemClock::instance().now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(global.registered_stages(), 2u);

  ASSERT_TRUE(global.run_cycles(3).is_ok());
  const double l0 =
      direct.stage_limit(StageId{0}, stage::Dimension::kData).value();
  const double l1 =
      via_agg.stage_limit(StageId{1}, stage::Dimension::kData).value();
  EXPECT_GT(l0, 0.0);
  EXPECT_GT(l1, 0.0);
  EXPECT_LE(l0 + l1, 2000.0 * 1.001);

  via_agg.shutdown();
  direct.shutdown();
  agg.shutdown();
  global.shutdown();
}

TEST(HierRuntimeTest, LocalDecisionModeEnforcesBudget) {
  // Paper §VI: the global controller only grants budget leases; the
  // aggregators run PSFA locally. Same budget guarantees must hold.
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 8;
  options.num_aggregators = 2;
  options.stages_per_job = 4;
  options.budgets = {4000.0, 400.0};
  options.local_decisions = true;
  auto deployment = Deployment::create(net, options).value();

  ASSERT_TRUE(deployment->global().run_cycles(3).is_ok());
  double data_sum = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto limit =
        deployment->stage_limit(StageId{i}, stage::Dimension::kData);
    ASSERT_TRUE(limit.is_ok());
    EXPECT_GE(*limit, 0.0);
    data_sum += *limit;
  }
  // Lease sums never exceed the global budget, so neither do the rules.
  EXPECT_LE(data_sum, 4000.0 * 1.001);
  EXPECT_GE(data_sum, 4000.0 * 0.9);
}

TEST(HierRuntimeTest, LocalDecisionModeRejectsDirectStages) {
  transport::InProcNetwork net;
  GlobalServerOptions gopts;
  gopts.local_decisions = true;
  GlobalControllerServer global(net, "global", gopts);
  ASSERT_TRUE(global.start().is_ok());

  StageHost host(net, "host0", {{"global"}});
  ASSERT_TRUE(host.start().is_ok());
  ASSERT_TRUE(host.add_stage({StageId{0}, NodeId{0}, JobId{0}, "n"},
                             workload::constant(100), nullptr)
                  .is_ok());
  ASSERT_TRUE(host.register_all().is_ok());
  auto cycle = global.run_cycle();
  EXPECT_FALSE(cycle.is_ok());
  EXPECT_EQ(cycle.status().code(), StatusCode::kFailedPrecondition);
  host.shutdown();
  global.shutdown();
}

TEST(HierRuntimeTest, ManyCyclesStress) {
  transport::InProcNetwork net;
  DeploymentOptions options;
  options.num_stages = 24;
  options.num_aggregators = 4;
  options.stages_per_host = 6;
  auto deployment = Deployment::create(net, options).value();
  ASSERT_TRUE(deployment->global().run_cycles(30).is_ok());
  EXPECT_EQ(deployment->global().stats().cycles(), 30u);
}

}  // namespace
}  // namespace sds::runtime
