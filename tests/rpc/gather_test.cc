#include "rpc/gather.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "transport/inproc.h"

namespace sds::rpc {
namespace {

wire::Frame metrics_frame(std::uint64_t cycle, StageId stage) {
  proto::StageMetrics m;
  m.cycle_id = cycle;
  m.stage_id = stage;
  m.job_id = JobId{0};
  return proto::to_frame(m);
}

TEST(PeekCycleIdTest, ReadsLeadingVarint) {
  const auto frame = metrics_frame(12345, StageId{1});
  EXPECT_EQ(peek_cycle_id(frame), 12345u);
}

TEST(PeekCycleIdTest, EmptyPayloadIsNullopt) {
  wire::Frame frame;
  frame.type = 4;
  EXPECT_EQ(peek_cycle_id(frame), std::nullopt);
}

TEST(GatherTest, CompletesWhenAllReplyArrive) {
  Gather gather(proto::MessageType::kStageMetrics, 7,
                {ConnId{1}, ConnId{2}, ConnId{3}});
  EXPECT_EQ(gather.pending(), 3u);
  EXPECT_TRUE(gather.offer(ConnId{1}, metrics_frame(7, StageId{1})));
  EXPECT_TRUE(gather.offer(ConnId{2}, metrics_frame(7, StageId{2})));
  EXPECT_TRUE(gather.offer(ConnId{3}, metrics_frame(7, StageId{3})));
  EXPECT_TRUE(gather.wait_for(millis(10)).is_ok());
  EXPECT_EQ(gather.take_replies().size(), 3u);
}

TEST(GatherTest, RejectsWrongType) {
  Gather gather(proto::MessageType::kEnforceAck, 7, {ConnId{1}});
  EXPECT_FALSE(gather.offer(ConnId{1}, metrics_frame(7, StageId{1})));
}

TEST(GatherTest, RejectsWrongCycle) {
  Gather gather(proto::MessageType::kStageMetrics, 7, {ConnId{1}});
  EXPECT_FALSE(gather.offer(ConnId{1}, metrics_frame(8, StageId{1})));
}

TEST(GatherTest, RejectsUnexpectedConn) {
  Gather gather(proto::MessageType::kStageMetrics, 7, {ConnId{1}});
  EXPECT_FALSE(gather.offer(ConnId{99}, metrics_frame(7, StageId{1})));
}

TEST(GatherTest, DuplicateReplyConsumedOnce) {
  Gather gather(proto::MessageType::kStageMetrics, 7, {ConnId{1}, ConnId{2}});
  EXPECT_TRUE(gather.offer(ConnId{1}, metrics_frame(7, StageId{1})));
  EXPECT_FALSE(gather.offer(ConnId{1}, metrics_frame(7, StageId{1})));
  EXPECT_EQ(gather.pending(), 1u);
}

TEST(GatherTest, NoCycleFilterAcceptsAny) {
  Gather gather(proto::MessageType::kStageMetrics, std::nullopt, {ConnId{1}});
  EXPECT_TRUE(gather.offer(ConnId{1}, metrics_frame(999, StageId{1})));
}

TEST(GatherTest, TimesOutWithMissingReplies) {
  Gather gather(proto::MessageType::kStageMetrics, 7, {ConnId{1}, ConnId{2}});
  EXPECT_TRUE(gather.offer(ConnId{1}, metrics_frame(7, StageId{1})));
  const Status status = gather.wait_for(millis(20));
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(gather.take_replies().size(), 1u);  // partial results available
}

TEST(GatherTest, FailedConnUnblocksWait) {
  Gather gather(proto::MessageType::kStageMetrics, 7, {ConnId{1}, ConnId{2}});
  EXPECT_TRUE(gather.offer(ConnId{1}, metrics_frame(7, StageId{1})));
  gather.fail(ConnId{2});
  const Status status = gather.wait_for(millis(10));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(gather.take_replies().size(), 1u);
}

TEST(GatherTest, QuorumReturnsBeforeStragglers) {
  Gather gather(proto::MessageType::kStageMetrics, 7,
                {ConnId{1}, ConnId{2}, ConnId{3}});
  EXPECT_TRUE(gather.offer(ConnId{1}, metrics_frame(7, StageId{1})));
  EXPECT_TRUE(gather.offer(ConnId{2}, metrics_frame(7, StageId{2})));
  // Quorum of 2 is already met: returns OK without waiting out the
  // deadline even though ConnId{3} never answers.
  EXPECT_TRUE(gather.wait_for(seconds(10), 2).is_ok());
  EXPECT_EQ(gather.missing(), 1u);
  EXPECT_EQ(gather.reply_count(), 2u);
  const auto bitmap = gather.reply_bitmap();
  EXPECT_TRUE(bitmap[0]);
  EXPECT_TRUE(bitmap[1]);
  EXPECT_FALSE(bitmap[2]);
  EXPECT_EQ(gather.take_replies().size(), 2u);  // partial results
}

TEST(GatherTest, QuorumStillTimesOutBelowThreshold) {
  Gather gather(proto::MessageType::kStageMetrics, 7,
                {ConnId{1}, ConnId{2}, ConnId{3}});
  EXPECT_TRUE(gather.offer(ConnId{1}, metrics_frame(7, StageId{1})));
  const Status status = gather.wait_for(millis(20), 2);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(gather.missing(), 2u);
  EXPECT_EQ(gather.take_replies().size(), 1u);
}

TEST(GatherTest, QuorumUnblocksFromAnotherThread) {
  Gather gather(proto::MessageType::kStageMetrics, 7,
                {ConnId{1}, ConnId{2}, ConnId{3}});
  std::thread replier([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gather.offer(ConnId{1}, metrics_frame(7, StageId{1}));
    gather.offer(ConnId{2}, metrics_frame(7, StageId{2}));
  });
  EXPECT_TRUE(gather.wait_for(seconds(5), 2).is_ok());
  EXPECT_EQ(gather.missing(), 1u);
  replier.join();
}

TEST(GatherTest, EmptyExpectationCompletesImmediately) {
  Gather gather(proto::MessageType::kStageMetrics, 7, {});
  EXPECT_TRUE(gather.wait_for(Nanos{0}).is_ok());
}

TEST(GatherTest, WaitUnblocksFromAnotherThread) {
  Gather gather(proto::MessageType::kStageMetrics, 7, {ConnId{1}});
  std::thread replier([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gather.offer(ConnId{1}, metrics_frame(7, StageId{1}));
  });
  EXPECT_TRUE(gather.wait_for(seconds(2)).is_ok());
  replier.join();
}

TEST(DispatcherTest, RoutesToMatchingGather) {
  Dispatcher dispatcher;
  std::atomic<int> fallback_hits{0};
  dispatcher.set_fallback([&](ConnId, wire::Frame) { fallback_hits.fetch_add(1); });

  auto gather = dispatcher.start_gather(proto::MessageType::kStageMetrics, 7,
                                        {ConnId{1}});
  dispatcher.on_frame(ConnId{1}, metrics_frame(7, StageId{1}));
  EXPECT_TRUE(gather->wait_for(Nanos{0}).is_ok());
  EXPECT_EQ(fallback_hits.load(), 0);
}

TEST(DispatcherTest, UnmatchedFramesFallThrough) {
  Dispatcher dispatcher;
  std::atomic<int> fallback_hits{0};
  dispatcher.set_fallback([&](ConnId, wire::Frame) { fallback_hits.fetch_add(1); });

  auto gather = dispatcher.start_gather(proto::MessageType::kStageMetrics, 7,
                                        {ConnId{1}});
  dispatcher.on_frame(ConnId{1}, metrics_frame(8, StageId{1}));  // wrong cycle
  dispatcher.on_frame(ConnId{2}, metrics_frame(7, StageId{2}));  // wrong conn
  EXPECT_EQ(fallback_hits.load(), 2);
  dispatcher.finish(gather);
}

TEST(DispatcherTest, FinishedGatherNoLongerRoutes) {
  Dispatcher dispatcher;
  std::atomic<int> fallback_hits{0};
  dispatcher.set_fallback([&](ConnId, wire::Frame) { fallback_hits.fetch_add(1); });

  auto gather = dispatcher.start_gather(proto::MessageType::kStageMetrics, 7,
                                        {ConnId{1}});
  dispatcher.finish(gather);
  dispatcher.on_frame(ConnId{1}, metrics_frame(7, StageId{1}));
  EXPECT_EQ(fallback_hits.load(), 1);
}

TEST(DispatcherTest, ConnClosedFailsPendingGathers) {
  Dispatcher dispatcher;
  auto gather = dispatcher.start_gather(proto::MessageType::kStageMetrics, 7,
                                        {ConnId{1}});
  dispatcher.on_conn_event(ConnId{1}, transport::ConnEvent::kClosed);
  EXPECT_EQ(gather->wait_for(Nanos{0}).code(), StatusCode::kUnavailable);
}

TEST(RpcCallTest, RoundTripOverInProc) {
  transport::InProcNetwork net;
  auto server = net.bind("server", {}).value();
  auto client = net.bind("client", {}).value();

  // Server: answer RegisterRequest with RegisterAck.
  server->set_frame_handler([&](ConnId conn, wire::Frame frame) {
    auto request = proto::from_frame<proto::RegisterRequest>(frame);
    ASSERT_TRUE(request.is_ok());
    proto::RegisterAck ack;
    ack.accepted = true;
    ack.epoch = 5;
    (void)server->send(conn, proto::to_frame(ack));
  });

  Dispatcher dispatcher;
  client->set_frame_handler([&](ConnId conn, wire::Frame frame) {
    dispatcher.on_frame(conn, std::move(frame));
  });

  const ConnId conn = client->connect("server").value();
  proto::RegisterRequest request;
  request.info = {StageId{1}, NodeId{1}, JobId{1}, "n1"};
  auto ack = call<proto::RegisterAck>(*client, dispatcher, conn, request,
                                      seconds(2));
  ASSERT_TRUE(ack.is_ok()) << ack.status();
  EXPECT_TRUE(ack->accepted);
  EXPECT_EQ(ack->epoch, 5u);
}

TEST(RpcCallTest, TimesOutWithoutReply) {
  transport::InProcNetwork net;
  auto server = net.bind("server", {}).value();
  auto client = net.bind("client", {}).value();
  server->set_frame_handler([](ConnId, wire::Frame) { /* never reply */ });

  Dispatcher dispatcher;
  client->set_frame_handler([&](ConnId conn, wire::Frame frame) {
    dispatcher.on_frame(conn, std::move(frame));
  });

  const ConnId conn = client->connect("server").value();
  proto::RegisterRequest request;
  request.info = {StageId{1}, NodeId{1}, JobId{1}, "n1"};
  auto ack = call<proto::RegisterAck>(*client, dispatcher, conn, request,
                                      millis(50));
  EXPECT_FALSE(ack.is_ok());
  EXPECT_EQ(ack.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace sds::rpc
