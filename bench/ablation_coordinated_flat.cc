// Ablation — coordinated flat multi-controller design (paper §VI future
// work #1): "flat control designs with multiple controllers that
// coordinate their actions ... each orchestrating different sets of
// nodes while maintaining global visibility".
//
// Compares, at 10,000 nodes, the hierarchical design against K
// coordinated flat peers. The coordinated design removes the global
// controller's per-stage rule-building bottleneck (each peer splits only
// its own subtree) at the cost of (a) K-fold duplicated PSFA compute,
// (b) an O(K^2) all-to-all summary exchange per cycle, and (c) K
// controller nodes each holding a full stage fan-out — so it only fits
// under the connection cap for K >= 4.
#include "bench/harness.h"
#include "bench/sweep.h"

using namespace sds;

int main(int argc, char** argv) {
  bench::print_lanes_note(bench::sim_lanes(argc, argv));
  bench::print_title(
      "Ablation — hierarchical vs coordinated flat at 10,000 nodes");
  bench::print_latency_header();
  bench::Telemetry telemetry("ablation_coordinated_flat", argc, argv);
  bench::Sweep sweep(argc, argv);

  int rc = 0;
  for (const std::size_t k : {4ul, 5ul, 10ul, 20ul}) {
    const std::string hier_label = "hierarchical A=" + std::to_string(k);
    sim::ExperimentConfig hier;
    hier.num_stages = 10'000;
    hier.num_aggregators = k;
    hier.duration = bench::bench_duration();
    telemetry.attach(hier, hier_label);
    sweep.add([&, hier_label, k, hier] {
      auto result = bench::run_repeated(hier);
      return [&, hier_label, k, result] {
        if (!result.is_ok()) {
          std::printf("hier A=%zu: %s\n", k,
                      result.status().to_string().c_str());
          rc = 1;
          return;
        }
        bench::print_latency_row(hier_label, *result, 0.0);
        telemetry.observe(hier_label, *result, 0.0);
      };
    });

    const std::string coord_label = "coordinated K=" + std::to_string(k);
    sim::ExperimentConfig coord;
    coord.num_stages = 10'000;
    coord.coordinated_peers = k;
    coord.duration = bench::bench_duration();
    telemetry.attach(coord, coord_label);
    sweep.add([&, coord_label, k, coord] {
      auto result = bench::run_repeated(coord);
      return [&, coord_label, k, result] {
        if (!result.is_ok()) {
          // K=4 genuinely does not fit: each peer would hold 2,500 stage
          // connections + 3 peer links, above the per-node cap — the
          // coordinated design needs one more controller than the
          // hierarchy at this scale.
          std::printf("coordinated K=%zu        %s\n", k,
                      result.status().to_string().c_str());
          return;
        }
        bench::print_latency_row(coord_label, *result, 0.0);
        telemetry.observe(coord_label, *result, 0.0);
        bench::print_resource_row("  per peer", "peer", result->aggregator);
        telemetry.observe_usage(coord_label, "peer", result->aggregator);
      };
    });
  }
  sweep.finish();
  if (rc != 0) return rc;
  std::printf(
      "\nExpected: the coordinated design beats the hierarchy on latency\n"
      "(no top-level per-stage rule building) but each peer carries flat-\n"
      "controller-grade CPU/memory, and the K^2 exchange erodes the win\n"
      "as K grows — the resource/latency trade-off of paper Obs. #5, in\n"
      "a different shape.\n");
  return 0;
}
