// Ablation — parallel vs serialized aggregator fan-out (DESIGN.md
// decision #3).
//
// The hierarchical design's scalability depends on aggregator subtrees
// working concurrently. Serializing the walk (global contacts aggregator
// k+1 only after k finished) degrades the design toward flat latency
// plus per-hop overheads.
#include "bench/harness.h"
#include "bench/sweep.h"

using namespace sds;

int main(int argc, char** argv) {
  bench::print_lanes_note(bench::sim_lanes(argc, argv));
  bench::print_title("Ablation — parallel vs serialized aggregator fan-out");
  bench::print_latency_header();
  bench::Telemetry telemetry("ablation_fanout", argc, argv);
  bench::Sweep sweep(argc, argv);

  int rc = 0;
  for (const std::size_t aggs : {4ul, 10ul, 20ul}) {
    for (const bool parallel : {true, false}) {
      sim::ExperimentConfig config;
      config.num_stages = 10'000;
      config.num_aggregators = aggs;
      config.parallel_fanout = parallel;
      config.duration = bench::bench_duration();
      config.max_cycles = parallel ? 0 : 40;  // serial cycles are long
      const std::string label = "A=" + std::to_string(aggs) +
                                (parallel ? " parallel" : " serial");
      telemetry.attach(config, label);
      sweep.add([&, label, config] {
        auto result = bench::run_repeated(config);
        return [&, label, result] {
          if (!result.is_ok()) {
            std::printf("error: %s\n", result.status().to_string().c_str());
            rc = 1;
            return;
          }
          bench::print_latency_row(label, *result, 0.0);
          telemetry.observe(label, *result, 0.0);
        };
      });
    }
  }
  sweep.finish();
  if (rc != 0) return rc;
  std::printf(
      "\nExpected: with parallel fan-out, latency falls as aggregators are\n"
      "added; serialized fan-out loses that benefit (collect/enforce grow\n"
      "with the *sum* of subtree times instead of their max).\n");
  return 0;
}
