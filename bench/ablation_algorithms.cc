// Ablation — PSFA vs baseline control algorithms.
//
// Runs each algorithm over the same contended demand picture and reports
// (a) budget adherence, (b) wasted allocation (granted to jobs that
// cannot use it — PSFA's "false allocation"), and (c) Jain's fairness
// index over the demand-normalized allocations of active jobs.
#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "bench/harness.h"
#include "bench/sweep.h"
#include "common/rng.h"
#include "policy/baselines.h"
#include "policy/psfa.h"

using namespace sds;
using namespace sds::policy;

namespace {

struct Metrics {
  double granted = 0;
  double wasted = 0;    // allocation beyond what the job can use
  double fairness = 0;  // Jain's index over allocation/demand of active jobs
};

Metrics evaluate(const ControlAlgorithm& algo,
                 const std::vector<JobDemand>& demands, double budget) {
  std::vector<JobAllocation> out;
  algo.compute(demands, budget, out);

  Metrics m;
  std::vector<double> normalized;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    m.granted += out[i].allocation;
    const double usable = demands[i].demand * 1.2;  // same headroom as PSFA
    if (out[i].allocation > usable) m.wasted += out[i].allocation - usable;
    if (demands[i].demand >= 1.0) {
      normalized.push_back(out[i].allocation / demands[i].demand);
    }
  }
  double sum = 0;
  double sum_sq = 0;
  for (const double x : normalized) {
    sum += x;
    sum_sq += x * x;
  }
  m.fairness = normalized.empty() || sum_sq == 0
                   ? 1.0
                   : sum * sum / (static_cast<double>(normalized.size()) * sum_sq);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_lanes_note(bench::sim_lanes(argc, argv));
  std::printf("\nAblation — PSFA vs baselines (same demands, budget 100k)\n");
  std::printf("=========================================================\n");
  bench::Telemetry telemetry("ablation_algorithms", argc, argv);

  // 200 jobs: 30% idle, the rest uniform demand in [100, 5000) ops/s.
  Rng rng(7);
  std::vector<JobDemand> demands;
  for (std::uint32_t j = 0; j < 200; ++j) {
    const bool idle = rng.bernoulli(0.3);
    demands.push_back(
        {JobId{j}, idle ? 0.0 : rng.uniform(100.0, 5000.0), 1.0});
  }
  const double budget = 100'000.0;

  std::vector<std::unique_ptr<ControlAlgorithm>> algorithms;
  algorithms.push_back(std::make_unique<Psfa>());
  algorithms.push_back(std::make_unique<StaticPartition>());
  algorithms.push_back(std::make_unique<UniformShare>());
  algorithms.push_back(std::make_unique<PriorityWaterfill>());

  std::printf("%-12s %14s %14s %12s\n", "algorithm", "granted(ops/s)",
              "wasted(ops/s)", "fairness");
  bench::Sweep sweep(argc, argv);
  for (const auto& algo : algorithms) {
    const ControlAlgorithm* a = algo.get();
    sweep.add([&, a] {
      const Metrics m = evaluate(*a, demands, budget);
      return [&, a, m] {
        std::printf("%-12s %14.0f %14.0f %12.4f\n",
                    std::string(a->name()).c_str(), m.granted, m.wasted,
                    m.fairness);
        if (telemetry.enabled()) {
          const telemetry::Labels labels{{"algorithm", std::string(a->name())}};
          auto& registry = telemetry.registry();
          registry.gauge("bench_granted_ops", labels)->set(m.granted);
          registry.gauge("bench_wasted_ops", labels)->set(m.wasted);
          registry.gauge("bench_fairness_index", labels)->set(m.fairness);
        }
      };
    });
  }
  sweep.finish();
  std::printf(
      "\nExpected: PSFA wastes ~nothing (no false allocation) with high\n"
      "fairness; static partitioning wastes the idle jobs' shares; strict\n"
      "priority has the worst fairness (starvation).\n");
  return 0;
}
