// Parallel sweep runner for the figure/table/ablation benches.
//
// Each bench enumerates independent (scale, topology) configurations.
// Sweep runs them across cores on the work-stealing ThreadPool while
// keeping all observable output deterministic: a job's side effects are
// split into a `run` step (executed on a worker, touches nothing shared)
// and an `emit` step it returns (executed by finish() on the calling
// thread, strictly in submission order). stdout, .dat files, and metric
// gauges are therefore byte-identical to a --jobs=1 run; the simulations
// themselves are deterministic by seed, so the *results* are too. The
// only artifact allowed to reorder under parallelism is the optional
// chrome-trace span dump (ring-buffer insertion order is scheduling-
// dependent).
//
// Job count: --jobs=N beats SDSCALE_BENCH_JOBS beats
// std::thread::hardware_concurrency().
#pragma once

#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <utility>

#include "common/thread_pool.h"

namespace sds::bench {

/// Resolve the sweep width: --jobs=N flag, then SDSCALE_BENCH_JOBS, then
/// hardware concurrency. Values below 1 fall back to 1 (serial).
inline std::size_t sweep_jobs(int argc, char** argv) {
  std::size_t jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  if (const char* env = std::getenv("SDSCALE_BENCH_JOBS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) jobs = static_cast<std::size_t>(parsed);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      const long parsed = std::strtol(argv[i] + 7, nullptr, 10);
      if (parsed > 0) jobs = static_cast<std::size_t>(parsed);
    }
  }
  return jobs;
}

class Sweep {
 public:
  /// The deferred, ordered half of a job: prints rows, writes .dat lines,
  /// records gauges. Runs on the thread that calls finish().
  using Emit = std::function<void()>;
  /// The parallel half: runs the simulation(s) and returns the Emit step.
  using Job = std::function<Emit()>;

  Sweep(int argc, char** argv) : Sweep(sweep_jobs(argc, argv)) {}

  explicit Sweep(std::size_t jobs) : jobs_(jobs < 1 ? 1 : jobs) {
    if (jobs_ > 1) pool_ = std::make_unique<ThreadPool>(jobs_);
  }

  ~Sweep() { finish(); }

  Sweep(const Sweep&) = delete;
  Sweep& operator=(const Sweep&) = delete;

  [[nodiscard]] std::size_t jobs() const { return jobs_; }

  /// Schedule one configuration. With --jobs=1 the job runs right here
  /// (its emit is still deferred to finish(), so output ordering is the
  /// same in both modes).
  void add(Job job) {
    slots_.emplace_back();
    Slot& slot = slots_.back();
    if (pool_ == nullptr) {
      run_into(slot, job);
      return;
    }
    wg_.add();
    // deque references stay valid across push_back, so a worker can fill
    // its slot while later add() calls grow the container.
    pool_->submit([this, &slot, job = std::move(job)] {
      run_into(slot, job);
      wg_.done();
    });
  }

  /// Wait for every job, then run the emit steps in submission order.
  /// The first exception thrown by any job is rethrown here.
  void finish() {
    if (finished_) return;
    finished_ = true;
    wg_.wait();
    for (Slot& slot : slots_) {
      if (slot.error != nullptr) std::rethrow_exception(slot.error);
      if (slot.emit) slot.emit();
    }
    slots_.clear();
  }

 private:
  struct Slot {
    Emit emit;
    std::exception_ptr error;
  };

  static void run_into(Slot& slot, const Job& job) {
    try {
      slot.emit = job();
    } catch (...) {
      slot.error = std::current_exception();
    }
  }

  std::size_t jobs_;
  std::unique_ptr<ThreadPool> pool_;
  std::deque<Slot> slots_;
  WaitGroup wg_;
  bool finished_ = false;
};

}  // namespace sds::bench
