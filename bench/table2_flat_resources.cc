// Table II — Resource utilization (CPU, memory, network) for a flat
// control plane with a single global controller, for 50 / 500 / 1,250 /
// 2,500 compute nodes.
//
// Paper reference: CPU 6.07→10.34%, memory 0.07→1.18 GB, transmitted
// 5.67→9.73 MB/s, received 3.74→5.36 MB/s.
#include "bench/harness.h"
#include "bench/sweep.h"

using namespace sds;

int main(int argc, char** argv) {
  bench::print_lanes_note(bench::sim_lanes(argc, argv));
  bench::print_title(
      "Table II — flat design: global-controller resource utilization");
  bench::print_resource_header();
  bench::Telemetry telemetry("table2_flat_resources", argc, argv);
  bench::Sweep sweep(argc, argv);

  struct Paper {
    std::size_t nodes;
    double cpu, mem, tx, rx;
  };
  const Paper paper[] = {{50, 6.07, 0.07, 5.67, 3.74},
                         {500, 9.58, 0.31, 8.74, 5.75},
                         {1250, 10.39, 0.64, 8.74, 5.74},
                         {2500, 10.34, 1.18, 9.73, 5.36}};

  int rc = 0;
  for (const auto& row : paper) {
    const std::string label = "flat N=" + std::to_string(row.nodes);
    sim::ExperimentConfig config;
    config.num_stages = row.nodes;
    config.duration = bench::bench_duration();
    telemetry.attach(config, label);
    sweep.add([&, label, row, config] {
      auto result = bench::run_repeated(config);
      return [&, label, row, result] {
        if (!result.is_ok()) {
          std::printf("N=%zu: %s\n", row.nodes,
                      result.status().to_string().c_str());
          rc = 1;
          return;
        }
        bench::print_resource_row(label, "global", result->global);
        telemetry.observe_usage(label, "global", result->global);
        std::printf("%-24s %-11s %9.2f %9.2f %9.2f %9.2f\n", "  (paper)",
                    "global", row.cpu, row.mem, row.tx, row.rx);
      };
    });
  }
  sweep.finish();
  return rc;
}
