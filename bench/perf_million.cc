// Million-stage control-cycle benchmark (the PR 7 tentpole): measures
// the columnar collect→compute hot path at 100k–1M stages.
//
//   store.update_msgs_per_sec       — full StageMetrics frames folded
//                                     into a warm 100k-slot MetricsStore.
//   store.delta_fold_msgs_per_sec   — StageMetricsDelta make+apply per
//                                     report (the steady-state path).
//   compute.*                       — incremental compute_from_store vs
//                                     the --psfa-full-recompute ablation
//                                     at low churn, with an in-bench
//                                     bit-identity assert every cycle.
//   sim.*                           — end-to-end hierarchical control
//                                     cycles at 100k stages (50 aggs ×
//                                     2000) with delta collect frames,
//                                     plus the full-recompute A/B.
//
// Writes BENCH_million.json (cwd, or $SDSCALE_BENCH_OUT/…). `--quick`
// shrinks every section for the `million`-labeled CTest smoke;
// `--extended` appends a 1M-stage (500 aggs × 2000) simulation row.
//
// Regression gates (the acceptance bars from DESIGN.md §14):
//   * incremental PSFA >= 5x faster than full recompute at 100k stages,
//     1% churn (>= 3x at the quick scale);
//   * delta frames cut modeled collect wire bytes >= 3x;
//   * every gated section asserts bit-identical allocations first.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/global.h"
#include "core/metrics_store.h"
#include "proto/messages.h"
#include "sim/experiment.h"

namespace {

using sds::JobId;
using sds::Nanos;
using sds::Rng;
using sds::StageId;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

sds::proto::StageMetrics slot_report(const sds::core::MetricsStore& store,
                                     std::uint32_t slot, std::uint64_t cycle,
                                     double data, double meta) {
  sds::proto::StageMetrics m;
  m.cycle_id = cycle;
  m.stage_id = store.stage_ids()[slot];
  m.job_id = store.job_ids()[slot];
  m.data_iops = data;
  m.meta_iops = meta;
  return m;
}

// -- Store fold throughput -------------------------------------------------

struct StoreThroughput {
  double full_msgs_per_sec = 0;
  double delta_msgs_per_sec = 0;
};

StoreThroughput store_throughput(std::size_t stages, std::size_t jobs,
                                 std::uint64_t cycles) {
  sds::core::MetricsStore store;
  for (std::uint32_t i = 0; i < stages; ++i) {
    (void)store.bind(StageId{i}, JobId{static_cast<std::uint32_t>(i % jobs)});
  }
  std::vector<sds::proto::StageMetrics> current(stages);
  for (std::uint32_t i = 0; i < stages; ++i) {
    current[i] = slot_report(store, i, 1, 1000.0 + i % 97, 100.0);
    (void)store.update(current[i]);
  }
  std::vector<std::uint32_t> scratch;
  store.drain_dirty(scratch);

  StoreThroughput out;
  // Full frames: every stage re-reports each cycle with a moved value.
  auto start = std::chrono::steady_clock::now();
  for (std::uint64_t cycle = 2; cycle < 2 + cycles; ++cycle) {
    for (std::uint32_t i = 0; i < stages; ++i) {
      current[i].cycle_id = cycle;
      current[i].data_iops += 1.0;
      (void)store.update(current[i]);
    }
    store.drain_dirty(scratch);
  }
  out.full_msgs_per_sec =
      static_cast<double>(cycles * stages) / seconds_since(start);

  // Deltas: one changed field per report, applied via the conn hint
  // (per-stage connections — the live server's resolution path).
  const std::uint64_t base = 2 + cycles;
  start = std::chrono::steady_clock::now();
  for (std::uint64_t cycle = base; cycle < base + cycles; ++cycle) {
    for (std::uint32_t i = 0; i < stages; ++i) {
      sds::proto::StageMetrics next = current[i];
      next.cycle_id = cycle;
      next.data_iops += 1.0;
      const auto delta = sds::proto::StageMetricsDelta::make(
          current[i], next, /*include_stage_id=*/false);
      if (store.apply_delta(delta, i) != sds::core::DeltaStatus::kApplied) {
        return {};
      }
      current[i] = next;
    }
    store.drain_dirty(scratch);
  }
  out.delta_msgs_per_sec =
      static_cast<double>(cycles * stages) / seconds_since(start);
  return out;
}

// -- Incremental vs full recompute ----------------------------------------

struct ComputeAb {
  double incremental_cycles_per_sec = 0;
  double full_cycles_per_sec = 0;
  double speedup = 0;
  std::uint64_t incremental_jobs_resummed = 0;
  std::uint64_t full_jobs_resummed = 0;
  bool identical = false;
};

// One arm of the A/B: a fresh (store, core) pair walked through the
// same seeded churn sequence. Only the compute_from_store calls are
// timed; after each cycle an FNV-1a hash over every rule's stage id and
// limit bit patterns is recorded (untimed) so the arms can be compared
// bit-for-bit cycle by cycle.
struct ComputeArm {
  double secs = 0;
  std::vector<std::uint64_t> cycle_hashes;
  std::uint64_t jobs_resummed = 0;
};

ComputeArm compute_arm(std::size_t stages, std::size_t jobs,
                       std::uint64_t cycles, double churn_fraction,
                       bool full_recompute) {
  sds::core::GlobalOptions options;
  options.budgets = {2.0 * static_cast<double>(stages) * 1000.0,
                     2.0 * static_cast<double>(stages) * 100.0};
  sds::core::GlobalControllerCore core(options);
  sds::core::MetricsStore store;
  for (std::uint32_t i = 0; i < stages; ++i) {
    (void)store.bind(StageId{i}, JobId{static_cast<std::uint32_t>(i % jobs)});
  }
  Rng rng(0x9e11107u);
  for (std::uint32_t i = 0; i < stages; ++i) {
    const double data = 500.0 + static_cast<double>(rng.next_below(1000));
    (void)store.update(slot_report(store, i, 1, data, data / 10));
  }
  // Untimed warm-up: the first store compute is always a full rebuild
  // (state construction + every job summed) in BOTH arms — it would
  // otherwise dominate the incremental arm's short timing window.
  (void)core.compute_from_store(store, full_recompute);

  const auto churn_jobs = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(churn_fraction *
                                    static_cast<double>(jobs)));
  ComputeArm arm;
  arm.cycle_hashes.reserve(cycles);
  for (std::uint64_t cycle = 2; cycle < 2 + cycles; ++cycle) {
    for (std::uint64_t c = 0; c < churn_jobs; ++c) {
      const auto job = static_cast<std::uint32_t>(rng.next_below(jobs));
      // Slots are bound round-robin, so job j owns slots j, j+jobs, ...
      for (std::uint32_t slot = job; slot < stages;
           slot += static_cast<std::uint32_t>(jobs)) {
        const double data =
            500.0 + static_cast<double>(rng.next_below(1000));
        (void)store.update(slot_report(store, slot, cycle, data, data / 10));
      }
    }
    const auto start = std::chrono::steady_clock::now();
    const auto& result = core.compute_from_store(store, full_recompute);
    arm.secs += seconds_since(start);

    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    for (const auto& rule : result.rules) {
      mix(rule.stage_id.value());
      mix(std::bit_cast<std::uint64_t>(rule.data_iops_limit));
      mix(std::bit_cast<std::uint64_t>(rule.meta_iops_limit));
    }
    arm.cycle_hashes.push_back(h);
  }
  arm.jobs_resummed = core.store_compute_stats().jobs_resummed;
  return arm;
}

// Churn is job-correlated (a job ramps as a whole): each cycle
// `churn_fraction` of the JOBS re-report every stage with moved demand,
// the rest stay silent — the steady-state shape of a large cluster. The
// budget is provisioned above total demand; under that regime an
// untouched job's allocation is a pure function of its own demand, so
// the incremental path re-splits only the churned jobs. (At saturation
// every demand move shifts the shared water level and ALL jobs re-split
// — incremental degenerates to full by necessity, not by defect.)
// The two arms run back to back — not interleaved, which would make
// each evict the other's columns and rules from cache every cycle.
ComputeAb compute_ab(std::size_t stages, std::size_t jobs,
                     std::uint64_t cycles, double churn_fraction) {
  const ComputeArm inc =
      compute_arm(stages, jobs, cycles, churn_fraction, false);
  const ComputeArm full =
      compute_arm(stages, jobs, cycles, churn_fraction, true);
  ComputeAb out;
  out.identical = inc.cycle_hashes == full.cycle_hashes &&
                  !inc.cycle_hashes.empty();
  out.incremental_cycles_per_sec =
      inc.secs > 0 ? static_cast<double>(cycles) / inc.secs : 0;
  out.full_cycles_per_sec =
      full.secs > 0 ? static_cast<double>(cycles) / full.secs : 0;
  out.speedup = inc.secs > 0 ? full.secs / inc.secs : 0;
  out.incremental_jobs_resummed = inc.jobs_resummed;
  out.full_jobs_resummed = full.jobs_resummed;
  return out;
}

// -- End-to-end simulation -------------------------------------------------

struct SimRow {
  bool ok = false;
  std::size_t stages = 0;
  std::size_t aggregators = 0;
  std::uint64_t cycles = 0;
  double cycles_per_sec = 0;
  double events_per_sec = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t wire_bytes_full = 0;
  double wire_ratio = 0;
  std::uint64_t frames_full = 0;
  std::uint64_t frames_delta = 0;
  double final_data_limit_sum = 0;
};

SimRow sim_row(std::size_t stages, std::size_t aggregators,
               std::uint64_t max_cycles, bool full_recompute) {
  sds::sim::ExperimentConfig config;
  config.num_stages = stages;
  config.num_aggregators = aggregators;
  config.stages_per_job = 50;
  config.duration = sds::seconds(120);  // max_cycles is the real bound
  config.max_cycles = max_cycles;
  config.delta_collect = true;
  config.delta_refresh = 64;
  config.psfa_full_recompute = full_recompute;
  config.lanes = 1;
  const auto start = std::chrono::steady_clock::now();
  const auto result = sds::sim::run_experiment(config);
  if (!result.is_ok()) {
    std::printf("FAIL: sim at %zu stages: %s\n", stages,
                result.status().to_string().c_str());
    return {};
  }
  const double secs = seconds_since(start);
  SimRow row;
  row.ok = true;
  row.stages = stages;
  row.aggregators = aggregators;
  row.cycles = result->cycles;
  row.cycles_per_sec = static_cast<double>(result->cycles) / secs;
  row.events_per_sec = static_cast<double>(result->events_executed) / secs;
  row.wire_bytes = result->collect_wire_bytes;
  row.wire_bytes_full = result->collect_wire_bytes_full;
  row.wire_ratio = row.wire_bytes > 0
                       ? static_cast<double>(row.wire_bytes_full) /
                             static_cast<double>(row.wire_bytes)
                       : 0;
  row.frames_full = result->collect_frames_full;
  row.frames_delta = result->collect_frames_delta;
  row.final_data_limit_sum = result->final_data_limit_sum;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool extended = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--extended") == 0) extended = true;
  }
  // Quick shrinks stage counts ~5x and cycle counts so the `million`
  // CTest smoke finishes in seconds while exercising every code path
  // and every gate (at a softer speedup bar — the incremental win
  // grows with scale).
  const std::size_t store_stages = quick ? 20'000 : 100'000;
  const std::size_t store_jobs = quick ? 400 : 2'000;
  const std::uint64_t store_cycles = quick ? 10 : 20;
  const std::uint64_t compute_cycles = quick ? 200 : 60;
  const double churn = 0.01;
  // Enough cycles to pass the initial limit ramp: while limits move,
  // every delta carries real field payloads; the 3x wire gate is about
  // the steady state that follows.
  const std::size_t sim_stages = quick ? 10'000 : 100'000;
  const std::size_t sim_aggs = quick ? 10 : 50;
  const std::uint64_t sim_cycles = 60;
  const double speedup_bar = quick ? 3.0 : 5.0;

  std::printf("perf_million (%s)\n", quick ? "quick" : "full");

  const StoreThroughput store =
      store_throughput(store_stages, store_jobs, store_cycles);
  std::printf("store.update_msgs_per_sec     %14.0f\n",
              store.full_msgs_per_sec);
  std::printf("store.delta_fold_msgs_per_sec %14.0f\n",
              store.delta_msgs_per_sec);
  if (store.full_msgs_per_sec <= 0 || store.delta_msgs_per_sec <= 0) {
    std::printf("FAIL: store fold rejected an in-sequence report\n");
    return 1;
  }

  const ComputeAb compute =
      compute_ab(store_stages, store_jobs, compute_cycles, churn);
  std::printf("compute.num_stages            %14zu\n", store_stages);
  std::printf("compute.churn_pct             %14.1f\n", churn * 100);
  std::printf("compute.incremental_cycles_per_sec %9.2f\n",
              compute.incremental_cycles_per_sec);
  std::printf("compute.full_cycles_per_sec   %14.2f\n",
              compute.full_cycles_per_sec);
  std::printf("compute.speedup               %13.2fx\n", compute.speedup);
  std::printf("compute.jobs_resummed         %8llu vs %llu full\n",
              static_cast<unsigned long long>(
                  compute.incremental_jobs_resummed),
              static_cast<unsigned long long>(compute.full_jobs_resummed));
  if (!compute.identical) {
    std::printf("FAIL: incremental PSFA diverged from --psfa-full-recompute\n");
    return 1;
  }
  if (compute.speedup < speedup_bar) {
    std::printf("FAIL: incremental speedup %.2fx below the %.1fx bar\n",
                compute.speedup, speedup_bar);
    return 1;
  }

  const SimRow sim = sim_row(sim_stages, sim_aggs, sim_cycles, false);
  if (!sim.ok) return 1;
  const SimRow sim_full = sim_row(sim_stages, sim_aggs, sim_cycles, true);
  if (!sim_full.ok) return 1;
  std::printf("sim.num_stages                %14zu\n", sim.stages);
  std::printf("sim.aggregators               %14zu\n", sim.aggregators);
  std::printf("sim.cycles                    %14llu\n",
              static_cast<unsigned long long>(sim.cycles));
  std::printf("sim.cycles_per_sec            %14.2f\n", sim.cycles_per_sec);
  std::printf("sim.events_per_sec            %14.0f\n", sim.events_per_sec);
  std::printf("sim.collect_wire_bytes        %14llu\n",
              static_cast<unsigned long long>(sim.wire_bytes));
  std::printf("sim.collect_wire_bytes_full   %14llu\n",
              static_cast<unsigned long long>(sim.wire_bytes_full));
  std::printf("sim.delta_compression         %13.2fx\n", sim.wire_ratio);
  if (sim.final_data_limit_sum != sim_full.final_data_limit_sum ||
      sim.cycles != sim_full.cycles) {
    std::printf("FAIL: end-to-end run diverged from --psfa-full-recompute "
                "(limit sum %.17g vs %.17g)\n",
                sim.final_data_limit_sum, sim_full.final_data_limit_sum);
    return 1;
  }
  if (sim.wire_ratio < 3.0) {
    std::printf("FAIL: delta compression %.2fx below the 3x bar\n",
                sim.wire_ratio);
    return 1;
  }

  SimRow million;
  if (extended) {
    million = sim_row(1'000'000, 500, 5, false);
    if (!million.ok) return 1;
    std::printf("sim1m.cycles_per_sec          %14.2f\n",
                million.cycles_per_sec);
    std::printf("sim1m.events_per_sec          %14.0f\n",
                million.events_per_sec);
    std::printf("sim1m.delta_compression       %13.2fx\n",
                million.wire_ratio);
  }

  std::string path = "BENCH_million.json";
  if (const char* dir = std::getenv("SDSCALE_BENCH_OUT")) {
    path = std::string(dir) + "/BENCH_million.json";
  }
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"perf_million\",\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"store\": {\n"
                 "    \"num_stages\": %zu,\n"
                 "    \"update_msgs_per_sec\": %.0f,\n"
                 "    \"delta_fold_msgs_per_sec\": %.0f\n"
                 "  },\n"
                 "  \"compute\": {\n"
                 "    \"num_stages\": %zu,\n"
                 "    \"num_jobs\": %zu,\n"
                 "    \"churn_pct\": %.1f,\n"
                 "    \"incremental_cycles_per_sec\": %.2f,\n"
                 "    \"full_recompute_cycles_per_sec\": %.2f,\n"
                 "    \"speedup\": %.2f,\n"
                 "    \"bit_identical\": %s\n"
                 "  },\n"
                 "  \"sim\": {\n"
                 "    \"num_stages\": %zu,\n"
                 "    \"num_aggregators\": %zu,\n"
                 "    \"cycles\": %llu,\n"
                 "    \"cycles_per_sec\": %.2f,\n"
                 "    \"events_per_sec\": %.0f,\n"
                 "    \"collect_wire_bytes\": %llu,\n"
                 "    \"collect_wire_bytes_full\": %llu,\n"
                 "    \"delta_compression\": %.2f,\n"
                 "    \"collect_frames_full\": %llu,\n"
                 "    \"collect_frames_delta\": %llu,\n"
                 "    \"full_recompute_bit_identical\": true\n"
                 "  }%s",
                 quick ? "quick" : "full", store_stages,
                 store.full_msgs_per_sec, store.delta_msgs_per_sec,
                 store_stages, store_jobs, churn * 100,
                 compute.incremental_cycles_per_sec,
                 compute.full_cycles_per_sec, compute.speedup,
                 compute.identical ? "true" : "false", sim.stages,
                 sim.aggregators,
                 static_cast<unsigned long long>(sim.cycles),
                 sim.cycles_per_sec, sim.events_per_sec,
                 static_cast<unsigned long long>(sim.wire_bytes),
                 static_cast<unsigned long long>(sim.wire_bytes_full),
                 sim.wire_ratio,
                 static_cast<unsigned long long>(sim.frames_full),
                 static_cast<unsigned long long>(sim.frames_delta),
                 extended ? ",\n" : "\n");
    if (extended) {
      std::fprintf(f,
                   "  \"sim_million\": {\n"
                   "    \"num_stages\": %zu,\n"
                   "    \"num_aggregators\": %zu,\n"
                   "    \"cycles\": %llu,\n"
                   "    \"cycles_per_sec\": %.2f,\n"
                   "    \"events_per_sec\": %.0f,\n"
                   "    \"delta_compression\": %.2f\n"
                   "  }\n",
                   million.stages, million.aggregators,
                   static_cast<unsigned long long>(million.cycles),
                   million.cycles_per_sec, million.events_per_sec,
                   million.wire_ratio);
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
