// Fig. 5 — Average latency of control cycles for the hierarchical design
// managing 10,000 compute nodes with 4 / 5 / 10 / 20 aggregator
// controllers.
//
// Paper reference: ~103 ms with 4 aggregators, under 80 ms with 10,
// under 70 ms with 20; the compute phase stays approximately constant
// while collect and enforce shrink as aggregators are added.
#include "bench/harness.h"
#include "bench/sweep.h"

using namespace sds;

int main(int argc, char** argv) {
  bench::print_lanes_note(bench::sim_lanes(argc, argv));
  bench::print_title(
      "Fig. 5 — hierarchical design: 10,000 nodes, varying aggregators");
  bench::print_latency_header();
  bench::DatWriter dat("fig5_hier_aggregators");
  bench::Telemetry telemetry("fig5_hier_aggregators", argc, argv);
  bench::Sweep sweep(argc, argv);

  struct Point {
    std::size_t nodes;
    std::size_t aggregators;
    double paper_ms;  // 5/10 read off the figure (approximate)
    std::size_t max_cycles = 0;  // 0 = run the full duration
  };
  std::vector<Point> points = {{10'000, 4, 103.0},
                               {10'000, 5, 95.0},
                               {10'000, 10, 79.0},
                               {10'000, 20, 69.0}};
  if (bench::extended_flag(argc, argv)) {
    // Projection beyond the paper: hierarchies at 100k and 1M stages
    // with 2,000 stages per aggregator (the per-node connection cap
    // still holds at every level). Bounded by cycle count — a 1M-stage
    // cycle moves ~1M collect messages, so the full duration would take
    // tens of minutes per repetition.
    points.push_back({100'000, 50, 0.0, 20});
    points.push_back({1'000'000, 500, 0.0, 5});
  }

  int rc = 0;
  for (const auto& point : points) {
    const std::string label =
        point.nodes == 10'000
            ? "hier A=" + std::to_string(point.aggregators)
            : "hier N=" + std::to_string(point.nodes) + " A=" +
                  std::to_string(point.aggregators);
    sim::ExperimentConfig config;
    config.num_stages = point.nodes;
    config.num_aggregators = point.aggregators;
    config.duration = bench::bench_duration();
    if (point.max_cycles > 0) config.max_cycles = point.max_cycles;
    telemetry.attach(config, label);
    sweep.add([&, label, point, config] {
      auto result = bench::run_repeated(config);
      return [&, label, point, result] {
        if (!result.is_ok()) {
          std::printf("A=%zu: %s\n", point.aggregators,
                      result.status().to_string().c_str());
          rc = 1;
          return;
        }
        bench::print_latency_row(label, *result, point.paper_ms);
        telemetry.observe(label, *result, point.paper_ms);
        dat.row(static_cast<double>(point.aggregators), *result,
                point.paper_ms);
      };
    });
  }
  sweep.finish();
  if (rc != 0) return rc;
  bench::print_paper_note(
      "103 ms with 4 aggregators, < 80 ms with 10, < 70 ms with 20; "
      "compute ~constant, collect/enforce shrink with more aggregators.");
  return 0;
}
