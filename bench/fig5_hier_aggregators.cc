// Fig. 5 — Average latency of control cycles for the hierarchical design
// managing 10,000 compute nodes with 4 / 5 / 10 / 20 aggregator
// controllers.
//
// Paper reference: ~103 ms with 4 aggregators, under 80 ms with 10,
// under 70 ms with 20; the compute phase stays approximately constant
// while collect and enforce shrink as aggregators are added.
#include "bench/harness.h"
#include "bench/sweep.h"

using namespace sds;

int main(int argc, char** argv) {
  bench::print_lanes_note(bench::sim_lanes(argc, argv));
  bench::print_title(
      "Fig. 5 — hierarchical design: 10,000 nodes, varying aggregators");
  bench::print_latency_header();
  bench::DatWriter dat("fig5_hier_aggregators");
  bench::Telemetry telemetry("fig5_hier_aggregators", argc, argv);
  bench::Sweep sweep(argc, argv);

  struct Point {
    std::size_t aggregators;
    double paper_ms;  // 5/10 read off the figure (approximate)
  };
  const Point points[] = {{4, 103.0}, {5, 95.0}, {10, 79.0}, {20, 69.0}};

  int rc = 0;
  for (const auto& point : points) {
    const std::string label = "hier A=" + std::to_string(point.aggregators);
    sim::ExperimentConfig config;
    config.num_stages = 10'000;
    config.num_aggregators = point.aggregators;
    config.duration = bench::bench_duration();
    telemetry.attach(config, label);
    sweep.add([&, label, point, config] {
      auto result = bench::run_repeated(config);
      return [&, label, point, result] {
        if (!result.is_ok()) {
          std::printf("A=%zu: %s\n", point.aggregators,
                      result.status().to_string().c_str());
          rc = 1;
          return;
        }
        bench::print_latency_row(label, *result, point.paper_ms);
        telemetry.observe(label, *result, point.paper_ms);
        dat.row(static_cast<double>(point.aggregators), *result,
                point.paper_ms);
      };
    });
  }
  sweep.finish();
  if (rc != 0) return rc;
  bench::print_paper_note(
      "103 ms with 4 aggregators, < 80 ms with 10, < 70 ms with 20; "
      "compute ~constant, collect/enforce shrink with more aggregators.");
  return 0;
}
