// Fig. 4 — Average latency of control cycles for a flat control plane
// design with a single global controller managing an increasing number of
// compute nodes (50 / 500 / 1,250 / 2,500), with the collect / compute /
// enforce phase breakdown.
//
// Paper reference points: 1.11 ms @ 50 nodes, 40.40 ms @ 2,500 nodes;
// enforce > collect > compute at every size; stdev below 6%.
#include "bench/harness.h"
#include "bench/sweep.h"

using namespace sds;

int main(int argc, char** argv) {
  bench::print_lanes_note(bench::sim_lanes(argc, argv));
  bench::print_title(
      "Fig. 4 — flat design: average control-cycle latency vs node count");
  bench::print_latency_header();
  bench::DatWriter dat("fig4_flat_scaling");
  bench::Telemetry telemetry("fig4_flat_scaling", argc, argv);
  bench::Sweep sweep(argc, argv);

  struct Point {
    std::size_t nodes;
    double paper_ms;  // 500/1250 read off the figure (approximate)
    bool uncapped = false;
    std::size_t max_cycles = 0;  // 0 = run the full duration
  };
  std::vector<Point> points = {
      {50, 1.11}, {500, 8.1}, {1250, 20.2}, {2500, 40.40}};
  if (bench::extended_flag(argc, argv)) {
    // Projection beyond the paper: the flat design past Frontera's
    // 2,500-connection cap (columnar store + delta collect keep the
    // controller itself viable; the cap is what stops flat at 2,500).
    // Lift the per-node cap and bound the horizon by cycle count — at
    // 100k stages a full 10-simulated-second horizon takes minutes per
    // repetition.
    points.push_back({10'000, 0.0, true, 50});
    points.push_back({100'000, 0.0, true, 20});
  }

  int rc = 0;
  for (const auto& point : points) {
    const std::string label = "flat N=" + std::to_string(point.nodes) +
                              (point.uncapped ? " uncap" : "");
    sim::ExperimentConfig config;
    config.num_stages = point.nodes;
    config.duration = bench::bench_duration();
    if (point.uncapped) {
      config.profile.max_connections_per_node = 0;  // projection: cap lifted
      config.max_cycles = point.max_cycles;
    }
    telemetry.attach(config, label);
    sweep.add([&, label, point, config] {
      auto result = bench::run_repeated(config);
      return [&, label, point, result] {
        if (!result.is_ok()) {
          std::printf("N=%zu: %s\n", point.nodes,
                      result.status().to_string().c_str());
          rc = 1;
          return;
        }
        bench::print_latency_row(label, *result, point.paper_ms);
        telemetry.observe(label, *result, point.paper_ms);
        dat.row(static_cast<double>(point.nodes), *result, point.paper_ms);
      };
    });
  }
  sweep.finish();
  if (rc != 0) return rc;
  bench::print_paper_note(
      "1.11 ms @ 50 nodes rising ~linearly to 40.40 ms @ 2,500 nodes; "
      "enforce > collect > compute; stdev < 6%.");
  return 0;
}
