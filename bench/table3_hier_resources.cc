// Table III — Resource utilization for the hierarchical design managing
// 10,000 compute nodes: global controller plus the average per-aggregator
// consumption, for 4 / 5 / 10 / 20 aggregators.
//
// Paper reference: global CPU rises 2.55→3.52% with aggregator count,
// global memory ~3.5 GB throughout, global tx 4.39→6.08 / rx 1.45→1.98
// MB/s; per-aggregator CPU falls 3.95→0.95%, memory 0.16→0.04 GB,
// tx 4.53→1.31, rx 2.53→0.73 MB/s.
#include "bench/harness.h"
#include "bench/sweep.h"

using namespace sds;

int main(int argc, char** argv) {
  bench::print_lanes_note(bench::sim_lanes(argc, argv));
  bench::print_title(
      "Table III — hierarchical design (10,000 nodes): resource utilization");
  bench::print_resource_header();
  bench::Telemetry telemetry("table3_hier_resources", argc, argv);
  bench::Sweep sweep(argc, argv);

  struct Paper {
    std::size_t aggs;
    double g_cpu, g_mem, g_tx, g_rx;
    double a_cpu, a_mem, a_tx, a_rx;
  };
  const Paper paper[] = {
      {4, 2.55, 3.52, 4.39, 1.45, 3.95, 0.16, 4.53, 2.53},
      {5, 2.81, 3.56, 4.73, 1.58, 3.40, 0.13, 4.13, 2.31},
      {10, 3.22, 3.53, 5.66, 1.82, 1.94, 0.08, 2.40, 1.34},
      {20, 3.52, 3.60, 6.08, 1.98, 0.95, 0.04, 1.31, 0.73},
  };

  int rc = 0;
  for (const auto& row : paper) {
    const std::string label = "hier A=" + std::to_string(row.aggs);
    sim::ExperimentConfig config;
    config.num_stages = 10'000;
    config.num_aggregators = row.aggs;
    config.duration = bench::bench_duration();
    telemetry.attach(config, label);
    sweep.add([&, label, row, config] {
      auto result = bench::run_repeated(config);
      return [&, label, row, result] {
        if (!result.is_ok()) {
          std::printf("A=%zu: %s\n", row.aggs,
                      result.status().to_string().c_str());
          rc = 1;
          return;
        }
        bench::print_resource_row(label, "global", result->global);
        telemetry.observe_usage(label, "global", result->global);
        std::printf("%-24s %-11s %9.2f %9.2f %9.2f %9.2f\n", "  (paper)",
                    "global", row.g_cpu, row.g_mem, row.g_tx, row.g_rx);
        bench::print_resource_row(label, "aggregator", result->aggregator);
        telemetry.observe_usage(label, "aggregator", result->aggregator);
        std::printf("%-24s %-11s %9.2f %9.2f %9.2f %9.2f\n", "  (paper)",
                    "aggregator", row.a_cpu, row.a_mem, row.a_tx, row.a_rx);
      };
    });
  }
  sweep.finish();
  return rc;
}
