// Projection — the paper's title question, answered for the actual
// machines of Table I: can these control-plane designs scale to
// Frontier (9,408 nodes), Aurora (10,624) and Fugaku (158,976)?
//
// For each system: the flat design (rejected beyond the connection cap),
// the hierarchical design with the minimum viable aggregator count
// (ceil(N / 2,500)) and with twice that, and — for Fugaku-class scale —
// the aggregator-local-decision mode that removes the global
// controller's per-stage work from the critical path.
#include "bench/harness.h"
#include "bench/sweep.h"

using namespace sds;

namespace {

void sweep_row(bench::Sweep& sweep, const std::string& label,
               sim::ExperimentConfig config, bench::Telemetry& telemetry) {
  config.duration = seconds(5);
  telemetry.attach(config, label);
  sweep.add([&telemetry, label, config] {
    auto result = bench::run_repeated(config, /*reps=*/1);
    return [&telemetry, label, result] {
      if (!result.is_ok()) {
        std::printf("%-28s %s\n", label.c_str(),
                    result.status().to_string().c_str());
        return;
      }
      std::printf("%-28s %10.2f %10.2f %10.2f %10.2f %8.0f\n", label.c_str(),
                  result->total_ms.mean(), result->collect_ms.mean(),
                  result->compute_ms.mean(), result->enforce_ms.mean(),
                  result->cycles.mean());
      telemetry.observe(label, *result, 0.0);
    };
  });
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_lanes_note(bench::sim_lanes(argc, argv));
  bench::print_title(
      "Projection — Table I systems under flat / hierarchical control");
  bench::Telemetry telemetry("projection_top500", argc, argv);
  bench::Sweep sweep(argc, argv);
  std::printf("%-28s %10s %10s %10s %10s %8s\n", "configuration", "total(ms)",
              "collect", "compute", "enforce", "cycles");

  const struct {
    const char* name;
    std::size_t nodes;
  } systems[] = {
      {"Frontier", 9'408}, {"Aurora", 10'624}, {"Fugaku", 158'976}};

  for (const auto& system : systems) {
    sweep.add([name = system.name, nodes = system.nodes] {
      return [name, nodes] {
        std::printf("\n-- %s (%zu nodes) --\n", name, nodes);
      };
    });

    sim::ExperimentConfig flat;
    flat.num_stages = system.nodes;
    sweep_row(sweep, std::string(system.name) + " flat", flat, telemetry);

    const std::size_t min_aggs = (system.nodes + 2'499) / 2'500;
    for (const std::size_t aggs : {min_aggs, 2 * min_aggs}) {
      sim::ExperimentConfig hier;
      hier.num_stages = system.nodes;
      hier.num_aggregators = aggs;
      sweep_row(sweep,
                std::string(system.name) + " hier A=" + std::to_string(aggs),
                hier, telemetry);
    }

    // Local decisions: the only way to keep Fugaku-class cycles fast —
    // the global controller's per-stage split/route otherwise dominates.
    sim::ExperimentConfig local;
    local.num_stages = system.nodes;
    local.num_aggregators = 2 * min_aggs;
    local.local_decisions = true;
    sweep_row(sweep,
              std::string(system.name) + " local A=" +
                  std::to_string(2 * min_aggs),
              local, telemetry);
  }
  sweep.finish();

  std::printf(
      "\nReading: Frontier/Aurora-scale systems run ~100 ms control cycles\n"
      "with the paper's 2-level hierarchy. Fugaku-scale (158,976 nodes)\n"
      "still *fits* in two levels (64+ aggregators) but central PSFA\n"
      "cycles grow toward a second — offloading decisions to aggregators\n"
      "(paper §VI) brings Fugaku back to Frontier-like latencies.\n");
  return 0;
}
