// Table IV — Resource utilization for the flat and hierarchical (single
// aggregator) designs handling 2,500 compute nodes.
//
// Paper reference: global CPU collapses 10.34 → 1.15% under the
// hierarchy (metric merging moves to the aggregator, which shows 7.83%);
// global memory 1.18 → 0.92 GB; the aggregator takes over most of the
// stage-facing traffic (tx 8.65 / rx 4.98 MB/s).
#include "bench/harness.h"

using namespace sds;

int main(int argc, char** argv) {
  bench::print_title(
      "Table IV — flat vs hierarchical (1 aggregator) at 2,500 nodes");
  bench::print_resource_header();
  bench::Telemetry telemetry("table4_flat_vs_hier_resources", argc, argv);

  sim::ExperimentConfig flat;
  flat.num_stages = 2500;
  flat.duration = bench::bench_duration();
  telemetry.attach(flat, "flat");
  auto flat_result = bench::run_repeated(flat);
  if (!flat_result.is_ok()) return 1;
  bench::print_resource_row("flat", "global", flat_result->global);
  telemetry.observe_usage("flat", "global", flat_result->global);
  std::printf("%-24s %-11s %9.2f %9.2f %9.2f %9.2f\n", "  (paper)", "global",
              10.34, 1.18, 9.73, 5.74);

  sim::ExperimentConfig hier = flat;
  hier.num_aggregators = 1;
  telemetry.attach(hier, "hierarchical");
  auto hier_result = bench::run_repeated(hier);
  if (!hier_result.is_ok()) return 1;
  bench::print_resource_row("hierarchical", "global", hier_result->global);
  telemetry.observe_usage("hierarchical", "global", hier_result->global);
  std::printf("%-24s %-11s %9.2f %9.2f %9.2f %9.2f\n", "  (paper)", "global",
              1.15, 0.92, 2.36, 0.77);
  bench::print_resource_row("hierarchical", "aggregator",
                            hier_result->aggregator);
  telemetry.observe_usage("hierarchical", "aggregator",
                          hier_result->aggregator);
  std::printf("%-24s %-11s %9.2f %9.2f %9.2f %9.2f\n", "  (paper)",
              "aggregator", 7.83, 0.22, 8.65, 4.98);
  return 0;
}
