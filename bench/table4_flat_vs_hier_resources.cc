// Table IV — Resource utilization for the flat and hierarchical (single
// aggregator) designs handling 2,500 compute nodes.
//
// Paper reference: global CPU collapses 10.34 → 1.15% under the
// hierarchy (metric merging moves to the aggregator, which shows 7.83%);
// global memory 1.18 → 0.92 GB; the aggregator takes over most of the
// stage-facing traffic (tx 8.65 / rx 4.98 MB/s).
#include "bench/harness.h"
#include "bench/sweep.h"

using namespace sds;

int main(int argc, char** argv) {
  bench::print_lanes_note(bench::sim_lanes(argc, argv));
  bench::print_title(
      "Table IV — flat vs hierarchical (1 aggregator) at 2,500 nodes");
  bench::print_resource_header();
  bench::Telemetry telemetry("table4_flat_vs_hier_resources", argc, argv);
  bench::Sweep sweep(argc, argv);

  int rc = 0;
  sim::ExperimentConfig flat;
  flat.num_stages = 2500;
  flat.duration = bench::bench_duration();
  telemetry.attach(flat, "flat");
  sweep.add([&, flat] {
    auto result = bench::run_repeated(flat);
    return [&, result] {
      if (!result.is_ok()) {
        rc = 1;
        return;
      }
      bench::print_resource_row("flat", "global", result->global);
      telemetry.observe_usage("flat", "global", result->global);
      std::printf("%-24s %-11s %9.2f %9.2f %9.2f %9.2f\n", "  (paper)",
                  "global", 10.34, 1.18, 9.73, 5.74);
    };
  });

  sim::ExperimentConfig hier = flat;
  hier.num_aggregators = 1;
  telemetry.attach(hier, "hierarchical");
  sweep.add([&, hier] {
    auto result = bench::run_repeated(hier);
    return [&, result] {
      if (!result.is_ok()) {
        rc = 1;
        return;
      }
      bench::print_resource_row("hierarchical", "global", result->global);
      telemetry.observe_usage("hierarchical", "global", result->global);
      std::printf("%-24s %-11s %9.2f %9.2f %9.2f %9.2f\n", "  (paper)",
                  "global", 1.15, 0.92, 2.36, 0.77);
      bench::print_resource_row("hierarchical", "aggregator",
                                result->aggregator);
      telemetry.observe_usage("hierarchical", "aggregator",
                              result->aggregator);
      std::printf("%-24s %-11s %9.2f %9.2f %9.2f %9.2f\n", "  (paper)",
                  "aggregator", 7.83, 0.22, 8.65, 4.98);
    };
  });

  sweep.finish();
  return rc;
}
