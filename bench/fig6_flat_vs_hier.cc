// Fig. 6 — Average latency of control cycles for flat and hierarchical
// (single aggregator) designs managing 2,500 compute nodes.
//
// Paper reference: ~41 ms flat vs ~53 ms hierarchical (+12.3 ms from the
// extra network hop in collect/enforce), with the *compute* phase
// decreasing under the hierarchy (Observation #7: aggregator-side metric
// merging is removed from the global controller's compute phase).
#include <optional>

#include "bench/harness.h"
#include "bench/sweep.h"

using namespace sds;

int main(int argc, char** argv) {
  bench::print_lanes_note(bench::sim_lanes(argc, argv));
  bench::print_title(
      "Fig. 6 — flat vs hierarchical (1 aggregator) at 2,500 nodes");
  bench::print_latency_header();
  bench::DatWriter dat("fig6_flat_vs_hier");
  bench::Telemetry telemetry("fig6_flat_vs_hier", argc, argv);
  bench::Sweep sweep(argc, argv);

  int rc = 0;
  std::optional<bench::RepeatedResult> flat_result;
  std::optional<bench::RepeatedResult> hier_result;

  sim::ExperimentConfig flat;
  flat.num_stages = 2500;
  flat.duration = bench::bench_duration();
  telemetry.attach(flat, "flat N=2500");
  sweep.add([&, flat] {
    auto result = bench::run_repeated(flat);
    return [&, result] {
      if (!result.is_ok()) {
        std::printf("flat: %s\n", result.status().to_string().c_str());
        rc = 1;
        return;
      }
      bench::print_latency_row("flat N=2500", *result, 40.40);
      telemetry.observe("flat N=2500", *result, 40.40);
      dat.row(0, *result, 40.40);
      flat_result = *result;
    };
  });

  sim::ExperimentConfig hier = flat;
  hier.num_aggregators = 1;
  telemetry.attach(hier, "hier N=2500 A=1");
  sweep.add([&, hier] {
    auto result = bench::run_repeated(hier);
    return [&, result] {
      if (!result.is_ok()) {
        std::printf("hier: %s\n", result.status().to_string().c_str());
        rc = 1;
        return;
      }
      bench::print_latency_row("hier N=2500 A=1", *result, 53.0);
      telemetry.observe("hier N=2500 A=1", *result, 53.0);
      dat.row(1, *result, 53.0);
      hier_result = *result;
    };
  });

  sweep.finish();
  if (rc != 0 || !flat_result || !hier_result) return 1;

  const double overhead =
      hier_result->total_ms.mean() - flat_result->total_ms.mean();
  std::printf("\nhierarchy overhead: %+.2f ms (paper: +12.3 ms)\n", overhead);
  std::printf("compute-phase change: %+.2f ms (paper: decreases, Obs. #7)\n",
              hier_result->compute_ms.mean() - flat_result->compute_ms.mean());
  return 0;
}
