// Fig. 6 — Average latency of control cycles for flat and hierarchical
// (single aggregator) designs managing 2,500 compute nodes.
//
// Paper reference: ~41 ms flat vs ~53 ms hierarchical (+12.3 ms from the
// extra network hop in collect/enforce), with the *compute* phase
// decreasing under the hierarchy (Observation #7: aggregator-side metric
// merging is removed from the global controller's compute phase).
#include "bench/harness.h"

using namespace sds;

int main(int argc, char** argv) {
  bench::print_title(
      "Fig. 6 — flat vs hierarchical (1 aggregator) at 2,500 nodes");
  bench::print_latency_header();
  bench::DatWriter dat("fig6_flat_vs_hier");
  bench::Telemetry telemetry("fig6_flat_vs_hier", argc, argv);

  sim::ExperimentConfig flat;
  flat.num_stages = 2500;
  flat.duration = bench::bench_duration();
  telemetry.attach(flat, "flat N=2500");
  auto flat_result = bench::run_repeated(flat);
  if (!flat_result.is_ok()) {
    std::printf("flat: %s\n", flat_result.status().to_string().c_str());
    return 1;
  }
  bench::print_latency_row("flat N=2500", *flat_result, 40.40);
  telemetry.observe("flat N=2500", *flat_result, 40.40);
  dat.row(0, *flat_result, 40.40);

  sim::ExperimentConfig hier = flat;
  hier.num_aggregators = 1;
  telemetry.attach(hier, "hier N=2500 A=1");
  auto hier_result = bench::run_repeated(hier);
  if (!hier_result.is_ok()) {
    std::printf("hier: %s\n", hier_result.status().to_string().c_str());
    return 1;
  }
  bench::print_latency_row("hier N=2500 A=1", *hier_result, 53.0);
  telemetry.observe("hier N=2500 A=1", *hier_result, 53.0);
  dat.row(1, *hier_result, 53.0);

  const double overhead =
      hier_result->total_ms.mean() - flat_result->total_ms.mean();
  std::printf("\nhierarchy overhead: %+.2f ms (paper: +12.3 ms)\n", overhead);
  std::printf("compute-phase change: %+.2f ms (paper: decreases, Obs. #7)\n",
              hier_result->compute_ms.mean() - flat_result->compute_ms.mean());
  return 0;
}
