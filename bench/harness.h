// Shared bench harness: runs a simulator configuration the way the paper
// runs its experiments (>= 3 repetitions with distinct seeds), aggregates
// cycle-latency and resource statistics across repetitions, and prints
// rows in the same shape the paper reports (mean latency + phase
// breakdown; CPU% / memory / tx / rx per controller).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "sim/experiment.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/span_tracer.h"
#include "telemetry/trace_export.h"

namespace sds::bench {

struct RepeatedResult {
  RunningStats total_ms;
  RunningStats collect_ms;
  RunningStats compute_ms;
  RunningStats enforce_ms;
  RunningStats cycles;
  sim::ControllerUsage global{};
  sim::ControllerUsage aggregator{};
  // -- Resilience accounting (all zero for fault-free runs) -------------
  /// Percentage of cycles closed on quorum/deadline instead of full
  /// replies.
  RunningStats degraded_pct;
  /// Stage-cycles decided on stale state, per executed cycle.
  RunningStats stale_per_cycle;
  /// Mean restart-to-first-fresh-collect gap (ms).
  RunningStats recovery_ms;
  /// Faults the plan injected per repetition.
  RunningStats faults;
  /// Coefficient of variation of the per-repetition mean total latency
  /// (the paper reports stdev below 6%).
  [[nodiscard]] double cv() const { return total_ms.cv(); }
};

/// Run `reps` repetitions of `config` with seeds seed, seed+1, ...
/// (paper §III-D: "Each test was repeated at least 3 times").
inline Result<RepeatedResult> run_repeated(sim::ExperimentConfig config,
                                           int reps = 3) {
  RepeatedResult out;
  sim::ControllerUsage global_sum{};
  sim::ControllerUsage agg_sum{};
  for (int r = 0; r < reps; ++r) {
    config.seed = 42 + static_cast<std::uint64_t>(r);
    // Spans are virtual-time stamped, so repetitions would overlap on the
    // same track; only the first repetition records into the tracer.
    if (r > 0) config.tracer = nullptr;
    auto result = sim::run_experiment(config);
    if (!result.is_ok()) return result.status();
    out.total_ms.add(result->stats.mean_total_ms());
    out.collect_ms.add(result->stats.mean_collect_ms());
    out.compute_ms.add(result->stats.mean_compute_ms());
    out.enforce_ms.add(result->stats.mean_enforce_ms());
    out.cycles.add(static_cast<double>(result->cycles));
    const auto cycles = static_cast<double>(result->cycles);
    out.degraded_pct.add(
        cycles > 0 ? 100.0 * static_cast<double>(result->degraded_cycles) / cycles
                   : 0.0);
    out.stale_per_cycle.add(
        cycles > 0 ? static_cast<double>(result->stale_stage_reports) / cycles
                   : 0.0);
    out.recovery_ms.add(result->mean_recovery_ms);
    out.faults.add(static_cast<double>(result->faults_injected));
    global_sum.cpu_percent += result->global.cpu_percent;
    global_sum.memory_gb += result->global.memory_gb;
    global_sum.transmitted_mbps += result->global.transmitted_mbps;
    global_sum.received_mbps += result->global.received_mbps;
    agg_sum.cpu_percent += result->aggregator.cpu_percent;
    agg_sum.memory_gb += result->aggregator.memory_gb;
    agg_sum.transmitted_mbps += result->aggregator.transmitted_mbps;
    agg_sum.received_mbps += result->aggregator.received_mbps;
  }
  const double n = reps;
  out.global = {global_sum.cpu_percent / n, global_sum.memory_gb / n,
                global_sum.transmitted_mbps / n, global_sum.received_mbps / n};
  out.aggregator = {agg_sum.cpu_percent / n, agg_sum.memory_gb / n,
                    agg_sum.transmitted_mbps / n, agg_sum.received_mbps / n};
  return out;
}

inline void print_title(const std::string& title) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%s\n", std::string(title.size(), '=').c_str());
}

inline void print_latency_header() {
  std::printf("%-24s %10s %10s %10s %10s %10s %8s %8s\n", "configuration",
              "total(ms)", "paper(ms)", "collect", "compute", "enforce",
              "cycles", "cv%");
}

inline void print_latency_row(const std::string& label,
                              const RepeatedResult& result, double paper_ms) {
  std::printf("%-24s %10.2f %10.1f %10.2f %10.2f %10.2f %8.0f %8.2f\n",
              label.c_str(), result.total_ms.mean(), paper_ms,
              result.collect_ms.mean(), result.compute_ms.mean(),
              result.enforce_ms.mean(), result.cycles.mean(),
              result.cv() * 100.0);
}

inline void print_resource_header() {
  std::printf("%-24s %-11s %9s %9s %9s %9s\n", "configuration", "controller",
              "cpu(%)", "mem(GB)", "tx(MB/s)", "rx(MB/s)");
}

inline void print_resource_row(const std::string& label,
                               const std::string& controller,
                               const sim::ControllerUsage& usage) {
  std::printf("%-24s %-11s %9.2f %9.2f %9.2f %9.2f\n", label.c_str(),
              controller.c_str(), usage.cpu_percent, usage.memory_gb,
              usage.transmitted_mbps, usage.received_mbps);
}

inline void print_paper_note(const char* note) { std::printf("  paper: %s\n", note); }

inline void print_resilience_header() {
  std::printf("%-24s %10s %10s %10s %10s %12s %8s %8s\n", "configuration",
              "total(ms)", "collect", "degraded%", "stale/cyc", "recovery(ms)",
              "faults", "cycles");
}

inline void print_resilience_row(const std::string& label,
                                 const RepeatedResult& result) {
  std::printf("%-24s %10.2f %10.2f %9.1f%% %10.2f %12.2f %8.0f %8.0f\n",
              label.c_str(), result.total_ms.mean(), result.collect_ms.mean(),
              result.degraded_pct.mean(), result.stale_per_cycle.mean(),
              result.recovery_ms.mean(), result.faults.mean(),
              result.cycles.mean());
}

/// Resolve the benches' `--fault-plan=FILE` flag: parse FILE (see
/// fault::FaultPlan::parse for the format) and return the plan, or
/// nullopt when the flag is absent. A malformed file aborts the bench —
/// silently falling back to a built-in plan would mislabel the results.
inline std::optional<fault::FaultPlan> fault_plan_flag(int argc, char** argv) {
  constexpr std::string_view kFlag = "--fault-plan=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, kFlag.size()) != kFlag) continue;
    const std::string path(arg.substr(kFlag.size()));
    auto plan = fault::FaultPlan::load(path);
    if (!plan.is_ok()) {
      std::fprintf(stderr, "--fault-plan=%s: %s\n", path.c_str(),
                   plan.status().to_string().c_str());
      std::exit(2);
    }
    std::printf("  fault plan: %s\n", path.c_str());
    return *plan;
  }
  return std::nullopt;
}

/// True when `--quick` was passed (smoke-test mode: tiny scales and a
/// short horizon so CTest can exercise the bench in milliseconds).
inline bool quick_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") return true;
  }
  return false;
}

/// True when `--extended` was passed. Figure benches that support it
/// append projection rows beyond the paper's scales (100k–1M stages,
/// million-stage control cycles); the default rows and their printed
/// output stay byte-identical whether or not the flag is given.
inline bool extended_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--extended") return true;
  }
  return false;
}

/// Resolve the simulator lane count for this bench process: --lanes=N
/// beats SDSCALE_SIM_LANES beats serial (mirroring sweep_jobs). The flag
/// is normalized into the env var, which run_experiment reads whenever a
/// config leaves `lanes` at 0 — so one call at the top of main() covers
/// every configuration the bench constructs. Lanes are deterministic:
/// results stay bit-identical to a serial run, only wall-clock changes.
/// Returns the resolved request (0 = serial default) for display.
inline std::size_t sim_lanes(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--lanes=", 8) == 0) {
      const long parsed = std::strtol(argv[i] + 8, nullptr, 10);
      if (parsed > 0) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%ld", parsed);
        ::setenv("SDSCALE_SIM_LANES", buf, 1);
      }
    }
  }
  if (const char* env = std::getenv("SDSCALE_SIM_LANES")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return 0;
}

/// Standard banner for benches honoring --lanes / SDSCALE_SIM_LANES.
/// Prints nothing in the serial default, so existing golden output is
/// unchanged unless lanes were explicitly requested.
inline void print_lanes_note(std::size_t lanes) {
  if (lanes > 0) {
    std::printf("  sim lanes: %zu (results bit-identical to serial)\n", lanes);
  }
}

/// Default simulated stress duration for bench runs. The paper runs >= 5
/// simulated minutes; the deterministic simulator converges to the same
/// means within seconds (cv < 1%), so benches default to 10 s. Override
/// with SDSCALE_BENCH_SECONDS.
inline Nanos bench_duration() {
  if (const char* env = std::getenv("SDSCALE_BENCH_SECONDS")) {
    const long secs = std::strtol(env, nullptr, 10);
    if (secs > 0) return seconds(secs);
  }
  return seconds(10);
}

/// Optional machine-readable output for the figure/table benches. Each
/// bench main() constructs one with its binary name; when
/// `--telemetry-out=<dir>` (or the SDSCALE_TELEMETRY_OUT env var) names a
/// directory, every sim run attach()ed to it shares one MetricsRegistry +
/// SpanTracer, and flush() (or the destructor) drops three artifacts next
/// to the printed table:
///   <dir>/<name>.metrics.jsonl  — JSONL snapshot (cycle histograms per
///                                 configuration + exact bench_* row gauges)
///   <dir>/<name>.prom           — Prometheus text exposition
///   <dir>/<name>.trace.json     — Chrome-tracing spans (one per cycle
///                                 phase), loadable at ui.perfetto.dev
class Telemetry {
 public:
  explicit Telemetry(std::string name, int argc = 0, char** argv = nullptr)
      : name_(std::move(name)) {
    constexpr std::string_view kFlag = "--telemetry-out=";
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg.substr(0, kFlag.size()) == kFlag) {
        out_dir_ = std::string(arg.substr(kFlag.size()));
      }
    }
    if (out_dir_.empty()) {
      if (const char* env = std::getenv("SDSCALE_TELEMETRY_OUT")) {
        out_dir_ = env;
      }
    }
    if (!out_dir_.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(out_dir_, ec);
    }
  }

  ~Telemetry() { flush(); }

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] bool enabled() const { return !out_dir_.empty(); }

  /// Point a sim config at the shared registry/tracer; `label` becomes the
  /// configuration="<label>" value distinguishing this run's series.
  void attach(sim::ExperimentConfig& config, const std::string& label) {
    if (!enabled()) return;
    config.metrics = &registry_;
    config.tracer = &tracer_;
    config.telemetry_label = label;
  }

  /// Record the exact values of one printed table row as gauges, so the
  /// JSONL snapshot reproduces the table verbatim.
  void observe(const std::string& label, const RepeatedResult& result,
               double paper_ms) {
    if (!enabled()) return;
    const telemetry::Labels labels{{"configuration", label}};
    registry_.gauge("bench_total_ms_mean", labels)->set(result.total_ms.mean());
    registry_.gauge("bench_collect_ms_mean", labels)
        ->set(result.collect_ms.mean());
    registry_.gauge("bench_compute_ms_mean", labels)
        ->set(result.compute_ms.mean());
    registry_.gauge("bench_enforce_ms_mean", labels)
        ->set(result.enforce_ms.mean());
    registry_.gauge("bench_paper_ms", labels)->set(paper_ms);
    registry_.gauge("bench_cycles_mean", labels)->set(result.cycles.mean());
    registry_.gauge("bench_cv_percent", labels)->set(result.cv() * 100.0);
  }

  /// Record one printed resilience row (degraded-cycle rate, decision
  /// staleness, recovery time, injected faults) as gauges.
  void observe_resilience(const std::string& label,
                          const RepeatedResult& result) {
    if (!enabled()) return;
    const telemetry::Labels labels{{"configuration", label}};
    registry_.gauge("bench_degraded_percent", labels)
        ->set(result.degraded_pct.mean());
    registry_.gauge("bench_stale_per_cycle", labels)
        ->set(result.stale_per_cycle.mean());
    registry_.gauge("bench_recovery_ms_mean", labels)
        ->set(result.recovery_ms.mean());
    registry_.gauge("bench_faults_injected_mean", labels)
        ->set(result.faults.mean());
  }

  /// Record one printed resource row (Tables II–IV shape) as gauges.
  void observe_usage(const std::string& label, const std::string& controller,
                     const sim::ControllerUsage& usage) {
    if (!enabled()) return;
    const telemetry::Labels labels{{"configuration", label},
                                   {"controller", controller}};
    registry_.gauge("bench_cpu_percent", labels)->set(usage.cpu_percent);
    registry_.gauge("bench_memory_gb", labels)->set(usage.memory_gb);
    registry_.gauge("bench_tx_mbps", labels)->set(usage.transmitted_mbps);
    registry_.gauge("bench_rx_mbps", labels)->set(usage.received_mbps);
  }

  [[nodiscard]] telemetry::MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] telemetry::SpanTracer& tracer() { return tracer_; }

  /// Write all three artifacts now (idempotent; also runs on destruction).
  void flush() {
    if (!enabled() || flushed_) return;
    flushed_ = true;
    const auto snapshot = registry_.snapshot();
    const std::string base = out_dir_ + "/" + name_;
    (void)telemetry::append_jsonl(base + ".metrics.jsonl", snapshot);
    (void)telemetry::write_prometheus(base + ".prom", snapshot);
    (void)telemetry::write_chrome_trace(base + ".trace.json", tracer_, name_);
    std::printf("  telemetry: %s.{metrics.jsonl,prom,trace.json}\n",
                base.c_str());
  }

 private:
  std::string name_;
  std::string out_dir_;
  bool flushed_ = false;
  telemetry::MetricsRegistry registry_;
  telemetry::SpanTracer tracer_;
};

/// Gnuplot-friendly data-file writer. When SDSCALE_BENCH_OUT names a
/// directory, each figure bench drops a whitespace-separated .dat there
/// (x  total  collect  compute  enforce  paper); tools/plots/*.gp turn
/// them into the paper's figures.
class DatWriter {
 public:
  explicit DatWriter(const std::string& name) {
    if (const char* dir = std::getenv("SDSCALE_BENCH_OUT")) {
      path_ = std::string(dir) + "/" + name + ".dat";
      file_ = std::fopen(path_.c_str(), "w");
      if (file_ != nullptr) {
        std::fprintf(file_,
                     "# x total_ms collect_ms compute_ms enforce_ms paper_ms\n");
      }
    }
  }

  ~DatWriter() {
    if (file_ != nullptr) {
      std::fclose(file_);
      std::printf("  wrote %s\n", path_.c_str());
    }
  }

  DatWriter(const DatWriter&) = delete;
  DatWriter& operator=(const DatWriter&) = delete;

  void row(double x, const RepeatedResult& result, double paper_ms) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%g %.4f %.4f %.4f %.4f %.4f\n", x,
                 result.total_ms.mean(), result.collect_ms.mean(),
                 result.compute_ms.mean(), result.enforce_ms.mean(), paper_ms);
  }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

/// DatWriter counterpart for the resilience figures, whose columns are
/// the degraded-cycle metrics rather than the phase breakdown.
class ResilienceDatWriter {
 public:
  explicit ResilienceDatWriter(const std::string& name) {
    if (const char* dir = std::getenv("SDSCALE_BENCH_OUT")) {
      path_ = std::string(dir) + "/" + name + ".dat";
      file_ = std::fopen(path_.c_str(), "w");
      if (file_ != nullptr) {
        std::fprintf(
            file_,
            "# x total_ms degraded_pct stale_per_cycle recovery_ms faults\n");
      }
    }
  }

  ~ResilienceDatWriter() {
    if (file_ != nullptr) {
      std::fclose(file_);
      std::printf("  wrote %s\n", path_.c_str());
    }
  }

  ResilienceDatWriter(const ResilienceDatWriter&) = delete;
  ResilienceDatWriter& operator=(const ResilienceDatWriter&) = delete;

  void row(double x, const RepeatedResult& result) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%g %.4f %.4f %.4f %.4f %.1f\n", x,
                 result.total_ms.mean(), result.degraded_pct.mean(),
                 result.stale_per_cycle.mean(), result.recovery_ms.mean(),
                 result.faults.mean());
  }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

}  // namespace sds::bench
