// Control-cycle fast-path microbenchmark. Three throughput pillars:
//
//   engine.events_per_sec        — the calendar-wheel DES core, plus an
//   engine.legacy_events_per_sec   A/B against the seed's
//                                  priority_queue<std::function> engine
//                                  (reproduced verbatim below), so the
//                                  speedup ratio is measured, not claimed.
//   codec.encode_msgs_per_sec    — StageMetrics encode into pooled
//   codec.decode_msgs_per_sec      SharedFrame images / decode back.
//   sim.cycles_per_sec           — end-to-end control cycles at N=500.
//
// Writes BENCH_cycle.json (cwd, or $SDSCALE_BENCH_OUT/BENCH_cycle.json)
// so successive commits can diff baselines. `--quick` shrinks the run
// for the `perf`-labeled CTest smoke.
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "proto/messages.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/span_tracer.h"
#include "wire/shared_frame.h"

namespace {

using sds::Nanos;

// The seed's engine, verbatim (minus the UB-adjacent const_cast fixed in
// the rewrite): one global priority_queue of type-erased std::functions.
// Kept here — not in src/ — purely as the A/B baseline.
class LegacyEngine {
 public:
  using EventFn = std::function<void()>;

  struct TimedEvent {
    Nanos at;
    EventFn fn;
  };

  [[nodiscard]] Nanos now() const { return now_; }

  void schedule_at(Nanos at, EventFn fn) {
    if (at < now_) at = now_;
    queue_.push(Event{at, next_seq_++, std::move(fn)});
  }

  void schedule_in(Nanos delay, EventFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  // What fan-out looked like before batching existed: one push per event.
  void schedule_batch(std::vector<TimedEvent>& batch) {
    for (auto& ev : batch) schedule_at(ev.at, std::move(ev.fn));
    batch.clear();
  }

  bool step() {
    if (queue_.empty()) return false;
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    event.fn();
    return true;
  }

  void run() {
    while (step()) {
    }
  }

 private:
  struct Event {
    Nanos at;
    std::uint64_t seq;
    EventFn fn;
    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Nanos now_{0};
  std::uint64_t next_seq_ = 0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// The send/arrival pattern of the simulated control plane at the
// paper's scale, two components mixed ~50/50 by event count:
//
//   * Steady timers: tens of thousands of in-flight self-rescheduling
//     timers (a 10,000-stage cluster keeps NIC serialization,
//     propagation, and cycle timers outstanding simultaneously), each
//     carrying ~70 bytes of captured state like sim::Host::send's
//     continuations. The capture overflows std::function's small-buffer
//     storage, so the legacy engine pays a heap allocation per
//     scheduled event on top of walking a deep cache-missing global
//     heap, while the wheel appends a 24-byte key O(1) into a bucket
//     and parks the closure in its allocation-free slab.
//
//   * Collect fan-out waves: every cycle the controller's collect
//     broadcast produces thousands of arrivals clustered in a narrow
//     window — scheduled through schedule_batch, which the legacy
//     engine can only emulate as one heap push per event, while the
//     wheel lands the whole wave in a couple of buckets and sorts each
//     bucket once when the cursor reaches it.
struct NicContext {  // what sim::Host::send captures per message
  std::uint64_t wire_bytes;
  std::uint64_t tx_free;
  std::uint64_t stage_id;
  std::uint64_t cycle_id;
  double latency_scale;
};

template <typename EngineT>
struct NicTimerChain {
  EngineT* engine;
  std::uint64_t* executed;
  std::uint64_t total;
  std::uint64_t stage_id;
  NicContext ctx;

  void operator()() {
    if (*executed >= total) return;
    const std::uint64_t n = ++*executed;
    // Deterministic pseudo-varied delays spanning ~488 wheel buckets.
    const std::uint64_t delay_ns = 500 + (n * 2654435761u) % spread_ns();
    NicTimerChain next = *this;
    next.ctx = NicContext{delay_ns, n, stage_id, n / 100'000, 1.0};
    engine->schedule_in(Nanos{static_cast<std::int64_t>(delay_ns)},
                        std::move(next));
  }

  static std::uint64_t spread_ns() {
    static const std::uint64_t v = [] {
      const char* s = std::getenv("SDSCALE_PERF_SPREAD_NS");
      return s ? std::strtoull(s, nullptr, 10) : 4'000'000ull;
    }();
    return v;
  }
};

// One collect-wave arrival: a compact closure (counter + routing ids)
// that still overflows std::function's ~16-byte inline storage.
struct WaveArrival {
  std::uint64_t* executed;
  std::uint64_t stage_id;
  std::uint64_t wire_bytes;
  void operator()() { ++*executed; }
};

// Drives one collect wave per control period: batch-schedules kFanout
// arrivals spread over a short window, then re-arms for the next cycle.
template <typename EngineT>
struct WaveDriver {
  static constexpr std::uint64_t kFanout = 2'500;
  static constexpr std::int64_t kWindowNs = 40'000;    // arrival jitter
  static constexpr std::int64_t kPeriodNs = 100'000;   // control period

  EngineT* engine;
  std::uint64_t* executed;
  std::uint64_t total;
  std::vector<typename EngineT::TimedEvent>* scratch;  // reused per wave
  std::uint64_t wave;

  void operator()() {
    if (*executed >= total) return;
    ++*executed;
    const Nanos now = engine->now();
    for (std::uint64_t i = 0; i < kFanout; ++i) {
      const std::int64_t jitter =
          static_cast<std::int64_t>(((wave * kFanout + i) * 2654435761u) %
                                    kWindowNs);
      scratch->push_back({now + Nanos{500 + jitter},
                          WaveArrival{executed, i, 64 + i % 256}});
    }
    engine->schedule_batch(*scratch);
    WaveDriver next = *this;
    ++next.wave;
    engine->schedule_in(Nanos{kPeriodNs}, std::move(next));
  }
};

template <typename EngineT>
double engine_events_per_sec(std::uint64_t total_events) {
  EngineT engine;
  std::uint64_t executed = 0;
  // Concurrent in-flight timers, sized like a 10,000-stage cluster with
  // several outstanding timers per stage...
  static const std::uint64_t kChains = [] {
    const char* s = std::getenv("SDSCALE_PERF_CHAINS");
    return s ? std::strtoull(s, nullptr, 10) : 50'000ull;
  }();
  std::vector<typename EngineT::TimedEvent> scratch;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t c = 0; c < kChains; ++c) {
    NicTimerChain<EngineT> chain{&engine, &executed, total_events, c,
                                 NicContext{}};
    chain();
  }
  // ...plus one collect wave per 100 us control period (25 arrivals/us,
  // matching the steady timers' event rate at the default spread).
  WaveDriver<EngineT> driver{&engine, &executed, total_events, &scratch, 0};
  driver();
  engine.run();
  return static_cast<double>(executed) / seconds_since(start);
}

sds::proto::StageMetrics sample_metrics() {
  sds::proto::StageMetrics m;
  m.cycle_id = 123456;
  m.stage_id = sds::StageId{4242};
  m.job_id = sds::JobId{7};
  m.data_iops = 1234.5;
  m.meta_iops = 222.2;
  m.data_limit = 987.6;
  m.meta_limit = 111.1;
  return m;
}

double encode_msgs_per_sec(std::uint64_t total) {
  const auto msg = sample_metrics();
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < total; ++i) {
    const sds::wire::SharedFrame frame = sds::proto::to_shared_frame(msg);
    if (frame.empty()) return 0;  // keep the loop observable
  }
  return static_cast<double>(total) / seconds_since(start);
}

double decode_msgs_per_sec(std::uint64_t total) {
  const auto msg = sample_metrics();
  const sds::wire::Frame frame = sds::proto::to_frame(msg);
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t ok = 0;
  for (std::uint64_t i = 0; i < total; ++i) {
    auto decoded = sds::proto::from_frame<sds::proto::StageMetrics>(frame);
    if (decoded.is_ok()) ++ok;
  }
  return static_cast<double>(ok) / seconds_since(start);
}

// The delta codec pair mirrors the full-frame pair: a low-churn update
// (one field moved, no stage id — the wire shape of a steady-state
// collect reply) built and encoded per iteration, and the same frame
// decoded back.
sds::proto::StageMetrics sample_metrics_next() {
  auto next = sample_metrics();
  ++next.cycle_id;
  next.data_iops += 17.25;  // one changed field
  return next;
}

double delta_encode_msgs_per_sec(std::uint64_t total) {
  const auto prev = sample_metrics();
  const auto curr = sample_metrics_next();
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < total; ++i) {
    const auto delta =
        sds::proto::StageMetricsDelta::make(prev, curr, /*include_stage_id=*/false);
    const sds::wire::SharedFrame frame = sds::proto::to_shared_frame(delta);
    if (frame.empty()) return 0;
  }
  return static_cast<double>(total) / seconds_since(start);
}

double delta_decode_msgs_per_sec(std::uint64_t total) {
  const auto prev = sample_metrics();
  const auto curr = sample_metrics_next();
  const auto delta =
      sds::proto::StageMetricsDelta::make(prev, curr, /*include_stage_id=*/false);
  const sds::wire::Frame frame = sds::proto::to_frame(delta);
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t ok = 0;
  for (std::uint64_t i = 0; i < total; ++i) {
    auto decoded = sds::proto::from_frame<sds::proto::StageMetricsDelta>(frame);
    if (decoded.is_ok() && decoded->apply(prev) == curr) ++ok;
  }
  return static_cast<double>(ok) / seconds_since(start);
}

double sim_cycles_per_sec(Nanos sim_duration) {
  sds::sim::ExperimentConfig config;
  config.num_stages = 500;
  config.duration = sim_duration;
  config.lanes = 1;  // pin serial: this pillar measures the DES core
  const auto start = std::chrono::steady_clock::now();
  auto result = sds::sim::run_experiment(config);
  if (!result.is_ok()) return 0;
  return static_cast<double>(result->cycles) / seconds_since(start);
}

// Serial-vs-lanes A/B on a hierarchical config (one aggregator subtree
// per lane). Alongside throughput, a fingerprint over the result's
// bit patterns asserts the parallel run is *identical* to serial — the
// speedup only counts if determinism holds.
struct LanesAb {
  double cycles_per_sec = 0;
  std::uint64_t fingerprint = 0;
  bool ok = false;
};

LanesAb sim_cycles_with_lanes(Nanos sim_duration, std::size_t lanes,
                              sds::telemetry::SpanTracer* tracer = nullptr,
                              sds::telemetry::FlightRecorder* flight = nullptr) {
  sds::sim::ExperimentConfig config;
  config.num_stages = 500;
  config.num_aggregators = 4;
  config.duration = sim_duration;
  config.lanes = lanes;  // explicit, so the env default never interferes
  config.tracer = tracer;
  config.flight = flight;
  const auto start = std::chrono::steady_clock::now();
  auto result = sds::sim::run_experiment(config);
  if (!result.is_ok()) return {};
  LanesAb out;
  out.ok = true;
  out.cycles_per_sec = static_cast<double>(result->cycles) /
                       seconds_since(start);
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over result bits
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(result->cycles);
  mix(result->events_executed);
  mix(static_cast<std::uint64_t>(result->elapsed.count()));
  mix(std::bit_cast<std::uint64_t>(result->stats.total().mean()));
  mix(std::bit_cast<std::uint64_t>(result->stats.collect().mean()));
  mix(std::bit_cast<std::uint64_t>(result->stats.compute().mean()));
  mix(std::bit_cast<std::uint64_t>(result->stats.enforce().mean()));
  mix(std::bit_cast<std::uint64_t>(result->final_data_limit_sum));
  mix(std::bit_cast<std::uint64_t>(result->mean_data_utilization));
  out.fingerprint = h;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::uint64_t engine_events = quick ? 1'000'000 : 4'000'000;
  const std::uint64_t codec_msgs = quick ? 100'000 : 1'000'000;
  const Nanos sim_duration = quick ? sds::seconds(2) : sds::seconds(10);

  std::printf("perf_cycle (%s)\n", quick ? "quick" : "full");

  const double wheel = engine_events_per_sec<sds::sim::Engine>(engine_events);
  const double legacy = engine_events_per_sec<LegacyEngine>(engine_events);
  const double speedup = legacy > 0 ? wheel / legacy : 0;
  std::printf("engine.events_per_sec         %12.0f\n", wheel);
  std::printf("engine.legacy_events_per_sec  %12.0f\n", legacy);
  std::printf("engine.speedup_vs_legacy      %12.2fx\n", speedup);

  const double enc = encode_msgs_per_sec(codec_msgs);
  const double dec = decode_msgs_per_sec(codec_msgs);
  const double denc = delta_encode_msgs_per_sec(codec_msgs);
  const double ddec = delta_decode_msgs_per_sec(codec_msgs);
  std::printf("codec.encode_msgs_per_sec     %12.0f\n", enc);
  std::printf("codec.decode_msgs_per_sec     %12.0f\n", dec);
  std::printf("codec.delta_encode_msgs_per_sec %10.0f\n", denc);
  std::printf("codec.delta_decode_msgs_per_sec %10.0f\n", ddec);

  const double cycles = sim_cycles_per_sec(sim_duration);
  std::printf("sim.cycles_per_sec            %12.2f\n", cycles);

  // Lanes A/B: same hierarchical experiment serial and with --lanes=4.
  const std::size_t kAbLanes = 4;
  const LanesAb serial = sim_cycles_with_lanes(sim_duration, 1);
  const LanesAb laned = sim_cycles_with_lanes(sim_duration, kAbLanes);
  const double lanes_speedup = serial.cycles_per_sec > 0
                                   ? laned.cycles_per_sec /
                                         serial.cycles_per_sec
                                   : 0;
  unsigned hw_threads = std::thread::hardware_concurrency();
  if (hw_threads == 0) hw_threads = 1;
  std::printf("sim.lanes.serial_cycles_per_sec %10.2f\n",
              serial.cycles_per_sec);
  std::printf("sim.lanes.lanes%zu_cycles_per_sec %10.2f\n", kAbLanes,
              laned.cycles_per_sec);
  std::printf("sim.lanes.speedup             %12.2fx  (hw threads: %u)\n",
              lanes_speedup, hw_threads);
  if (!serial.ok || !laned.ok ||
      serial.fingerprint != laned.fingerprint) {
    std::printf("FAIL: --lanes=%zu result diverges from serial "
                "(fingerprint %016llx vs %016llx)\n",
                kAbLanes,
                static_cast<unsigned long long>(laned.fingerprint),
                static_cast<unsigned long long>(serial.fingerprint));
    return 1;
  }

  // Tracing A/B: the same serial experiment with the span tracer AND the
  // flight recorder armed. Two gates: the simulated results must be
  // bit-identical (tracing only reads the virtual clock), and the
  // throughput cost of always-on tracing must stay within 5%.
  sds::telemetry::SpanTracer ab_tracer;
  sds::telemetry::FlightRecorder ab_flight;
  const LanesAb traced =
      sim_cycles_with_lanes(sim_duration, 1, &ab_tracer, &ab_flight);
  const double tracing_overhead_pct_raw =
      serial.cycles_per_sec > 0
          ? (1.0 - traced.cycles_per_sec / serial.cycles_per_sec) * 100.0
          : 0;
  // Run-to-run jitter on the shared CI box swings the raw figure a few
  // percent either way — a traced run can measure *faster* than serial
  // (raw as low as -4.6% observed). Clamp the reported overhead at the
  // zero noise floor so the <= 5% gate below judges real cost, not a
  // lucky negative sample masking a regression of equal size.
  const double tracing_overhead_pct =
      tracing_overhead_pct_raw > 0 ? tracing_overhead_pct_raw : 0.0;
  std::printf("sim.tracing.cycles_per_sec    %12.2f\n",
              traced.cycles_per_sec);
  std::printf("sim.tracing.overhead_pct      %12.2f  (raw %.2f)\n",
              tracing_overhead_pct, tracing_overhead_pct_raw);
  if (!traced.ok || traced.fingerprint != serial.fingerprint) {
    std::printf("FAIL: tracing changes simulated results "
                "(fingerprint %016llx vs %016llx)\n",
                static_cast<unsigned long long>(traced.fingerprint),
                static_cast<unsigned long long>(serial.fingerprint));
    return 1;
  }

  std::string path = "BENCH_cycle.json";
  if (const char* dir = std::getenv("SDSCALE_BENCH_OUT")) {
    path = std::string(dir) + "/BENCH_cycle.json";
  }
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"perf_cycle\",\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"engine\": {\n"
                 "    \"events_per_sec\": %.0f,\n"
                 "    \"legacy_events_per_sec\": %.0f,\n"
                 "    \"speedup_vs_legacy\": %.3f\n"
                 "  },\n"
                 "  \"codec\": {\n"
                 "    \"encode_msgs_per_sec\": %.0f,\n"
                 "    \"decode_msgs_per_sec\": %.0f,\n"
                 "    \"delta_encode_msgs_per_sec\": %.0f,\n"
                 "    \"delta_decode_msgs_per_sec\": %.0f\n"
                 "  },\n"
                 "  \"sim\": {\n"
                 "    \"num_stages\": 500,\n"
                 "    \"cycles_per_sec\": %.3f,\n"
                 "    \"lanes\": {\n"
                 "      \"serial_cycles_per_sec\": %.3f,\n"
                 "      \"lanes4_cycles_per_sec\": %.3f,\n"
                 "      \"speedup\": %.3f,\n"
                 "      \"hw_threads\": %u\n"
                 "    },\n"
                 "    \"tracing\": {\n"
                 "      \"cycles_per_sec\": %.3f,\n"
                 "      \"overhead_pct\": %.3f,\n"
                 "      \"overhead_pct_raw\": %.3f\n"
                 "    }\n"
                 "  }\n"
                 "}\n",
                 quick ? "quick" : "full", wheel, legacy, speedup, enc, dec,
                 denc, ddec, cycles, serial.cycles_per_sec,
                 laned.cycles_per_sec, lanes_speedup, hw_threads,
                 traced.cycles_per_sec, tracing_overhead_pct,
                 tracing_overhead_pct_raw);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }
  // Regression guard: the wheel engine must clearly beat the legacy
  // global-heap engine. On the 1-vCPU CI container the measured ratio
  // is ~2x (1.6-2.3x run to run): the per-event floor both engines
  // share — closure construction plus cold capture reads at invoke —
  // bounds the achievable ratio well below the engine-op speedup.
  // Failing below 1.4x still trips on genuine regressions (e.g.
  // reintroducing a per-event allocation or a global heap).
  if (!quick && speedup < 1.4) {
    std::printf("FAIL: speedup %.2fx below the 1.4x regression bar\n",
                speedup);
    return 1;
  }
  // Lanes gate, conditional on real concurrency: with >= 4 hardware
  // threads the lane team must actually pay off; on narrower boxes (the
  // 1-vCPU CI container) lanes run inline, so only guard against the
  // round/merge machinery costing more than a quarter of throughput.
  if (!quick) {
    if (hw_threads >= 4 && lanes_speedup < 1.25) {
      std::printf("FAIL: lanes speedup %.2fx below the 1.25x bar "
                  "(%u hw threads)\n",
                  lanes_speedup, hw_threads);
      return 1;
    }
    if (hw_threads < 4 && lanes_speedup < 0.70) {
      std::printf("FAIL: inline lanes overhead too high: %.2fx of serial "
                  "(%u hw threads)\n",
                  lanes_speedup, hw_threads);
      return 1;
    }
    // Always-on tracing must stay cheap: span emission is a handful of
    // hash derivations plus two ring writes per cycle.
    if (tracing_overhead_pct > 5.0) {
      std::printf("FAIL: tracing overhead %.2f%% above the 5%% bar\n",
                  tracing_overhead_pct);
      return 1;
    }
  }
  return 0;
}
