// Fig. 7 — control-plane resilience under churn, flat vs hierarchical,
// 50 to 10,000 compute nodes.
//
// The paper's experiments assume a healthy control plane; this figure
// extends them with the failure model of §VI: every stage fails with an
// MTBF of 60 s (2 s mean outage) while 1% of collect replies are lost
// and 5% are delayed. Controllers close phases on a 90% quorum instead
// of stalling, so the columns report what that costs: the fraction of
// cycles that closed degraded, how many stages per cycle were decided on
// stale state, and how long a restarted stage takes to rejoin the
// control loop.
//
// The plan is deterministic (seeded; see fault/plan.h), so rows are
// bit-identical across --lanes=N and across repeated runs. Pass
// --fault-plan=FILE to replay a custom plan instead of the built-in one.
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/sweep.h"

using namespace sds;

namespace {

fault::FaultPlan default_plan() {
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.quorum = 0.9;
  plan.phase_timeout = millis(50);
  plan.stage_mtbf_s = 60;
  plan.stage_downtime_s = 2;
  plan.drop_probability = 0.01;
  plan.delay_probability = 0.05;
  plan.delay = micros(200);
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_flag(argc, argv);
  bench::print_lanes_note(bench::sim_lanes(argc, argv));
  bench::print_title("Fig. 7 — resilience under churn, flat vs hierarchical");

  fault::FaultPlan plan = default_plan();
  if (auto custom = bench::fault_plan_flag(argc, argv)) {
    plan = *custom;
  } else {
    std::printf(
        "  plan: stage MTBF 60 s / downtime 2 s, drop 1%%, delay 5%%,\n"
        "        quorum 90%%, phase timeout 50 ms (override with"
        " --fault-plan=FILE)\n");
  }
  std::printf(
      "  flat rows beyond 2,500 nodes lift the per-node connection cap\n"
      "  (the paper's hard ceiling) to isolate resilience from the\n"
      "  connection wall.\n\n");

  bench::print_resilience_header();
  bench::ResilienceDatWriter dat("fig7_resilience");
  bench::Telemetry telemetry("fig7_resilience", argc, argv);
  bench::Sweep sweep(argc, argv);

  const std::vector<std::size_t> scales =
      quick ? std::vector<std::size_t>{50, 200}
            : std::vector<std::size_t>{50, 500, 2500, 10'000};

  int rc = 0;
  double x = 0;
  for (const std::size_t nodes : scales) {
    // Aggregator count per the paper's hierarchical runs: the minimum
    // forced by the 2,500-connection cap (4 at 10,000 nodes).
    const std::size_t aggs = std::max<std::size_t>(1, nodes / 2500);
    struct Topology {
      std::string label;
      std::size_t num_aggregators;
    };
    for (const Topology& topo :
         {Topology{"flat N=" + std::to_string(nodes), 0},
          Topology{"hier N=" + std::to_string(nodes) +
                       " A=" + std::to_string(aggs),
                   aggs}}) {
      sim::ExperimentConfig config;
      config.num_stages = nodes;
      config.num_aggregators = topo.num_aggregators;
      config.duration = quick ? seconds(1) : bench::bench_duration();
      if (quick) config.max_cycles = 6;
      config.fault_plan = &plan;
      if (topo.num_aggregators == 0 &&
          nodes > config.profile.max_connections_per_node) {
        config.profile.max_connections_per_node = 0;  // see note above
      }
      telemetry.attach(config, topo.label);
      const double row_x = x;
      sweep.add([&, config, topo, row_x] {
        auto result = bench::run_repeated(config);
        return [&, result, topo, row_x] {
          if (!result.is_ok()) {
            std::printf("%-24s %s\n", topo.label.c_str(),
                        result.status().to_string().c_str());
            rc = 1;
            return;
          }
          bench::print_resilience_row(topo.label, *result);
          telemetry.observe(topo.label, *result, 0.0);
          telemetry.observe_resilience(topo.label, *result);
          dat.row(row_x, *result);
        };
      });
      x += 1;
    }
  }
  sweep.finish();
  if (rc == 0) {
    std::printf(
        "\nThe quorum keeps cycle latency near the healthy baseline while\n"
        "churn shows up as degraded cycles and stale per-stage decisions;\n"
        "the hierarchy confines each outage to one aggregator subtree.\n");
  }
  return rc;
}
