// Ablation — aggregator pre-aggregation on/off (DESIGN.md decision #2).
//
// With pre-aggregation (Cheferd behaviour) the aggregators merge stage
// metrics into job summaries, so the global controller's compute phase
// only runs PSFA + rule splitting. In pass-through mode the raw entries
// are relayed upward and the global controller must merge them itself.
// This isolates the mechanism behind the paper's Observation #7.
#include "bench/harness.h"
#include "bench/sweep.h"

using namespace sds;

int main(int argc, char** argv) {
  bench::print_lanes_note(bench::sim_lanes(argc, argv));
  bench::print_title("Ablation — pre-aggregation vs pass-through relays");
  bench::print_latency_header();
  bench::Telemetry telemetry("ablation_preaggregation", argc, argv);
  bench::Sweep sweep(argc, argv);

  int rc = 0;
  for (const std::size_t aggs : {1ul, 4ul}) {
    for (const bool preagg : {true, false}) {
      sim::ExperimentConfig config;
      config.num_stages = aggs == 1 ? 2500 : 10'000;
      config.num_aggregators = aggs;
      config.preaggregate = preagg;
      config.duration = bench::bench_duration();
      const std::string label = "N=" + std::to_string(config.num_stages) +
                                " A=" + std::to_string(aggs) +
                                (preagg ? " pre-agg" : " passthru");
      telemetry.attach(config, label);
      sweep.add([&, label, config] {
        auto result = bench::run_repeated(config);
        return [&, label, result] {
          if (!result.is_ok()) {
            std::printf("error: %s\n", result.status().to_string().c_str());
            rc = 1;
            return;
          }
          bench::print_latency_row(label, *result, 0.0);
          telemetry.observe(label, *result, 0.0);
          bench::print_resource_row("  resources", "global", result->global);
          bench::print_resource_row("  resources", "aggregator",
                                    result->aggregator);
        };
      });
    }
  }
  sweep.finish();
  if (rc != 0) return rc;
  std::printf(
      "\nExpected: pass-through inflates the global compute phase and the\n"
      "global controller's CPU/rx (raw entries instead of job summaries),\n"
      "reproducing why Cheferd-style aggregation matters (Obs. #7).\n");
  return 0;
}
