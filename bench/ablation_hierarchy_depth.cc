// Ablation — hierarchy depth: when does a third control level pay off?
//
// Part 1, at the paper's scale (10,000 nodes, Frontera-grade 2,500-
// connection cap): a 2-level tree already fits comfortably, so a third
// level (super-aggregators) only adds hops — measurable pure overhead.
//
// Part 2, on constrained nodes (cap 64, e.g. tiny management VMs or very
// conservative connection budgets): a 2-level tree tops out at
// cap² = 4,096 stages, so 10,000 nodes *require* depth 3. The same logic
// scales to Fugaku: with cap 2,500 a 2-level tree covers 2,500² = 6.25 M
// stages — every Top500 system in Table I fits with two levels, which is
// why the paper never needed a third.
#include "bench/harness.h"
#include "bench/sweep.h"

using namespace sds;

namespace {

void sweep_row(bench::Sweep& sweep, const std::string& label,
               sim::ExperimentConfig config, bench::Telemetry& telemetry) {
  telemetry.attach(config, label);
  sweep.add([&telemetry, label, config] {
    auto result = bench::run_repeated(config);
    return [&telemetry, label, result] {
      if (!result.is_ok()) {
        std::printf("%-24s %s\n", label.c_str(),
                    result.status().to_string().c_str());
        return;
      }
      bench::print_latency_row(label, *result, 0.0);
      telemetry.observe(label, *result, 0.0);
    };
  });
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_lanes_note(bench::sim_lanes(argc, argv));
  bench::print_title("Ablation — 2-level vs 3-level hierarchies");
  bench::Telemetry telemetry("ablation_hierarchy_depth", argc, argv);
  bench::Sweep sweep(argc, argv);
  std::printf("\nAt 10,000 nodes with the Frontera cap (2,500 conns):\n");
  bench::print_latency_header();
  for (const std::size_t aggs : {8ul, 20ul}) {
    sim::ExperimentConfig two_level;
    two_level.num_stages = 10'000;
    two_level.num_aggregators = aggs;
    two_level.duration = bench::bench_duration();
    sweep_row(sweep, "2-level A=" + std::to_string(aggs), two_level,
              telemetry);

    sim::ExperimentConfig three_level = two_level;
    three_level.num_super_aggregators = 2;
    sweep_row(sweep, "3-level S=2 A=" + std::to_string(aggs), three_level,
              telemetry);
  }

  // The part-2 header travels the ordered emit stream so it stays below
  // every part-1 row regardless of completion order.
  sweep.add([] {
    return [] {
      std::printf("\nOn constrained nodes (cap 64 connections), 10,000 nodes:\n");
      bench::print_latency_header();
    };
  });
  {
    // 2-level: 64 aggregators is the most the global can hold; each
    // would need 157 stages > cap. Infeasible.
    sim::ExperimentConfig two_level;
    two_level.num_stages = 10'000;
    two_level.num_aggregators = 64;
    two_level.profile.max_connections_per_node = 64;
    two_level.duration = bench::bench_duration();
    sweep.add([two_level] {
      auto result = bench::run_repeated(two_level);
      return [result] {
        std::printf("%-24s %s\n", "2-level A=64",
                    result.is_ok() ? "(unexpectedly fit)"
                                   : result.status().to_string().c_str());
      };
    });

    // 3-level: 40 supers x 5 children x 50 stages fits under cap 64.
    sim::ExperimentConfig three_level = two_level;
    three_level.num_aggregators = 200;
    three_level.num_super_aggregators = 40;
    sweep_row(sweep, "3-level S=40 A=200", three_level, telemetry);
  }
  sweep.finish();

  std::printf(
      "\nExpected: at Frontera's cap the third level is pure overhead\n"
      "(extra hop + extra merge); it becomes necessary only once a\n"
      "2-level tree cannot fan out (stages > cap^2 — beyond every\n"
      "current Top500 system, Fugaku included).\n");
  return 0;
}
