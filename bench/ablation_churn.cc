// Ablation — churn rate vs control-plane degradation (fault model §VI).
//
// Fixes the scale (2,500 nodes, the paper's flat ceiling) and sweeps the
// per-stage MTBF from none to 10 s for both topologies, holding the
// degraded-cycle contract constant (90% quorum, 50 ms phase timeout,
// 2 s mean outage). The interesting quantity is the slope: how fast
// degraded-cycle rate and decision staleness grow as the cluster gets
// less reliable, and whether the hierarchy's per-subtree quorums flatten
// it. The mtbf=none rows are the healthy baseline — they must match the
// fault-free benches exactly (the fault hooks vanish without a plan).
#include <deque>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/sweep.h"

using namespace sds;

int main(int argc, char** argv) {
  const bool quick = bench::quick_flag(argc, argv);
  bench::print_lanes_note(bench::sim_lanes(argc, argv));
  bench::print_title("Ablation — churn rate vs degraded cycles at 2,500 nodes");
  std::printf(
      "  plan per row: stage MTBF as listed, downtime 2 s, quorum 90%%,\n"
      "  phase timeout 50 ms; seed fixed, so rows are reproducible.\n\n");
  bench::print_resilience_header();
  bench::ResilienceDatWriter dat("ablation_churn");
  bench::Telemetry telemetry("ablation_churn", argc, argv);
  bench::Sweep sweep(argc, argv);

  const std::size_t nodes = quick ? 200 : 2500;
  const std::vector<double> mtbfs =
      quick ? std::vector<double>{0, 30} : std::vector<double>{0, 120, 60, 30, 10};

  // Plans live here so the pointers handed to the configs stay valid
  // until sweep.finish() (deque: stable addresses across push_back).
  std::deque<fault::FaultPlan> plans;

  int rc = 0;
  double x = 0;
  for (const std::size_t aggs : {std::size_t{0}, std::size_t{4}}) {
    const std::string topo = aggs == 0 ? "flat" : "hier A=" + std::to_string(aggs);
    for (const double mtbf : mtbfs) {
      const std::string label =
          topo + (mtbf > 0 ? " mtbf=" + std::to_string(static_cast<int>(mtbf)) + "s"
                           : " mtbf=none");
      sim::ExperimentConfig config;
      config.num_stages = nodes;
      config.num_aggregators = aggs;
      config.duration = quick ? seconds(1) : bench::bench_duration();
      if (quick) config.max_cycles = 6;
      if (mtbf > 0) {
        fault::FaultPlan plan;
        plan.seed = 7;
        plan.quorum = 0.9;
        plan.phase_timeout = millis(50);
        plan.stage_mtbf_s = mtbf;
        plan.stage_downtime_s = 2;
        // The quick horizon (a few ms of virtual time) is far below the
        // MTBF, so Poisson churn would never fire; script one crash so
        // the smoke run still exercises the injection path.
        if (quick) plan.crash_stage(1, micros(50), millis(1));
        plans.push_back(plan);
        config.fault_plan = &plans.back();
      }
      telemetry.attach(config, label);
      const double row_x = x;
      sweep.add([&, config, label, row_x] {
        auto result = bench::run_repeated(config);
        return [&, result, label, row_x] {
          if (!result.is_ok()) {
            std::printf("%-24s %s\n", label.c_str(),
                        result.status().to_string().c_str());
            rc = 1;
            return;
          }
          bench::print_resilience_row(label, *result);
          telemetry.observe(label, *result, 0.0);
          telemetry.observe_resilience(label, *result);
          dat.row(row_x, *result);
        };
      });
      x += 1;
    }
  }
  sweep.finish();
  if (rc == 0) {
    std::printf(
        "\nDegradation scales with churn (outages ~ N * horizon / MTBF);\n"
        "the quorum turns each outage into bounded staleness instead of a\n"
        "stalled control cycle.\n");
  }
  return rc;
}
