// Ablation — offloading control decisions to aggregators (paper §VI
// future work: "hierarchical designs that further explore the processing
// logic that can be offloaded to aggregator nodes in order to be able to
// make independent decisions ... decreasing the computational load from
// the controllers of the top levels of the tree").
//
// In local-decision mode the global controller only re-leases per-subtree
// budgets (proportional to observed demand); each aggregator runs PSFA
// locally over its stages. The global compute phase nearly vanishes.
#include "bench/harness.h"
#include "bench/sweep.h"

using namespace sds;

int main(int argc, char** argv) {
  bench::print_lanes_note(bench::sim_lanes(argc, argv));
  bench::print_title("Ablation — centralized PSFA vs aggregator-local PSFA");
  bench::print_latency_header();
  bench::Telemetry telemetry("ablation_local_decisions", argc, argv);
  bench::Sweep sweep(argc, argv);

  int rc = 0;
  for (const std::size_t aggs : {4ul, 10ul, 20ul}) {
    for (const bool local : {false, true}) {
      sim::ExperimentConfig config;
      config.num_stages = 10'000;
      config.num_aggregators = aggs;
      config.local_decisions = local;
      config.duration = bench::bench_duration();
      const std::string label = "A=" + std::to_string(aggs) +
                                (local ? " local" : " central");
      telemetry.attach(config, label);
      sweep.add([&, label, config] {
        auto result = bench::run_repeated(config);
        return [&, label, result] {
          if (!result.is_ok()) {
            std::printf("error: %s\n", result.status().to_string().c_str());
            rc = 1;
            return;
          }
          bench::print_latency_row(label, *result, 0.0);
          telemetry.observe(label, *result, 0.0);
          bench::print_resource_row("  resources", "global", result->global);
          bench::print_resource_row("  resources", "aggregator",
                                    result->aggregator);
          telemetry.observe_usage(label, "global", result->global);
          telemetry.observe_usage(label, "aggregator", result->aggregator);
        };
      });
    }
  }
  sweep.finish();
  if (rc != 0) return rc;
  std::printf(
      "\nExpected: local decisions cut the global compute phase and global\n"
      "CPU sharply (it only computes budget leases); aggregators pick up\n"
      "the PSFA+split work. Budget guarantees are preserved because lease\n"
      "sums never exceed the global budget (tested in experiment_test).\n");
  return 0;
}
