// Micro-benchmarks (google-benchmark): hot paths of the controller stack.
//
//  * PSFA compute vs job count (the per-cycle compute phase kernel)
//  * Aggregator merge vs stage count
//  * Rule splitting vs stage count
//  * Codec: StageMetrics / EnforceBatch encode+decode throughput
//  * Token-bucket admission throughput
//  * Discrete-event engine throughput
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/aggregator.h"
#include "core/global.h"
#include "policy/psfa.h"
#include "sim/engine.h"
#include "stage/token_bucket.h"

using namespace sds;

namespace {

std::vector<policy::JobDemand> make_demands(std::size_t n) {
  Rng rng(1);
  std::vector<policy::JobDemand> demands;
  demands.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    demands.push_back({JobId{i}, rng.uniform(0, 5000), rng.uniform(0.5, 4)});
  }
  return demands;
}

std::vector<proto::StageMetrics> make_metrics(std::size_t n,
                                              std::size_t stages_per_job) {
  Rng rng(2);
  std::vector<proto::StageMetrics> metrics;
  metrics.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    proto::StageMetrics m;
    m.cycle_id = 1;
    m.stage_id = StageId{i};
    m.job_id = JobId{static_cast<std::uint32_t>(i / stages_per_job)};
    m.data_iops = rng.uniform(100, 2000);
    m.meta_iops = rng.uniform(10, 200);
    metrics.push_back(m);
  }
  return metrics;
}

void BM_PsfaCompute(benchmark::State& state) {
  const auto demands = make_demands(static_cast<std::size_t>(state.range(0)));
  policy::Psfa psfa;
  std::vector<policy::JobAllocation> out;
  for (auto _ : state) {
    psfa.compute(demands, 1e6, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PsfaCompute)->Range(8, 8192);

void BM_AggregatorMerge(benchmark::State& state) {
  const auto metrics =
      make_metrics(static_cast<std::size_t>(state.range(0)), 50);
  core::AggregatorCore agg(core::AggregatorOptions{ControllerId{0}});
  for (auto _ : state) {
    auto report = agg.aggregate(1, metrics);
    benchmark::DoNotOptimize(report.jobs.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AggregatorMerge)->Range(64, 16384);

void BM_GlobalFlatCompute(benchmark::State& state) {
  const auto metrics =
      make_metrics(static_cast<std::size_t>(state.range(0)), 50);
  core::GlobalControllerCore global;
  for (auto _ : state) {
    auto result = global.compute(metrics);
    benchmark::DoNotOptimize(result.rules.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GlobalFlatCompute)->Range(64, 16384);

void BM_EncodeStageMetrics(benchmark::State& state) {
  const auto metrics = make_metrics(1, 1);
  for (auto _ : state) {
    auto frame = proto::to_frame(metrics[0]);
    benchmark::DoNotOptimize(frame.payload.data());
  }
}
BENCHMARK(BM_EncodeStageMetrics);

void BM_DecodeStageMetrics(benchmark::State& state) {
  const auto frame = proto::to_frame(make_metrics(1, 1)[0]);
  for (auto _ : state) {
    auto decoded = proto::from_frame<proto::StageMetrics>(frame);
    benchmark::DoNotOptimize(&decoded);
  }
}
BENCHMARK(BM_DecodeStageMetrics);

void BM_EncodeEnforceBatch(benchmark::State& state) {
  proto::EnforceBatch batch;
  batch.cycle_id = 1;
  for (std::uint32_t i = 0; i < state.range(0); ++i) {
    batch.rules.push_back({StageId{i}, JobId{i / 50}, 1000.0, 100.0, 7});
  }
  for (auto _ : state) {
    auto frame = proto::to_frame(batch);
    benchmark::DoNotOptimize(frame.payload.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.wire_size()));
}
BENCHMARK(BM_EncodeEnforceBatch)->Range(64, 8192);

void BM_DecodeEnforceBatch(benchmark::State& state) {
  proto::EnforceBatch batch;
  batch.cycle_id = 1;
  for (std::uint32_t i = 0; i < state.range(0); ++i) {
    batch.rules.push_back({StageId{i}, JobId{i / 50}, 1000.0, 100.0, 7});
  }
  const auto frame = proto::to_frame(batch);
  for (auto _ : state) {
    auto decoded = proto::from_frame<proto::EnforceBatch>(frame);
    benchmark::DoNotOptimize(&decoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.wire_size()));
}
BENCHMARK(BM_DecodeEnforceBatch)->Range(64, 8192);

void BM_TokenBucketAdmit(benchmark::State& state) {
  stage::TokenBucket bucket(1e9, 1e6, Nanos{0});
  Nanos now{0};
  for (auto _ : state) {
    now += Nanos{100};
    benchmark::DoNotOptimize(bucket.try_acquire(1.0, now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TokenBucketAdmit);

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    const int n = 10'000;
    std::uint64_t sink = 0;
    for (int i = 0; i < n; ++i) {
      engine.schedule_at(Nanos{i % 97}, [&sink] { ++sink; });
    }
    engine.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EngineEventThroughput);

}  // namespace

BENCHMARK_MAIN();
