// Ablation — control-cycle periodicity vs QoS reaction (paper §II-B:
// "the periodicity of these control cycles determines how fast the
// control plane reacts to changes in the system", and Obs. #4 on bursty
// workloads needing low-latency cycles).
//
// Workload: 1,000 stages with staggered on/off bursts (1 s on at 2,000
// data ops/s, 1 s off at 50 ops/s), so roughly half the demand picture
// changes every second. Budget: 60% of peak aggregate demand — always
// contended. Metric: mean PFS load factor sampled at cycle boundaries;
// slow control planes strand budget on stages whose burst ended (stale
// high limits) while starving stages whose burst began (stale low
// limits), which shows up as lower utilization.
#include "bench/harness.h"
#include "bench/sweep.h"
#include "workload/generators.h"

using namespace sds;

int main(int argc, char** argv) {
  bench::print_lanes_note(bench::sim_lanes(argc, argv));
  bench::print_title("Ablation — control period vs PFS utilization (bursty)");
  std::printf("%-16s %10s %10s %12s %10s\n", "period", "cycles",
              "cycle(ms)", "data-util", "meta-util");
  bench::Telemetry telemetry("ablation_control_period", argc, argv);
  bench::Sweep parallel_sweep(argc, argv);

  const struct {
    Nanos period;
    const char* label;
  } sweeps[] = {
      {Nanos{0}, "stress (0)"}, {millis(100), "100 ms"},
      {millis(500), "500 ms"},  {seconds(1), "1 s"},
      {seconds(4), "4 s"},
  };

  int rc = 0;
  for (const auto& sweep : sweeps) {
    sim::ExperimentConfig config;
    config.num_stages = 1000;
    config.stages_per_job = 20;
    config.duration = seconds(40);
    config.cycle_period = sweep.period;
    // Peak aggregate ~ 1000 × 2000 × 50% duty = 1e6; budget = 60% of that.
    config.budgets = {600'000.0, 60'000.0};
    // A 2x headroom ramp: a throttled stage whose burst resumes recovers
    // its allocation in ~5 cycles instead of ~19 (headroom 1.2).
    config.psfa.headroom = 2.0;
    // 1.0 s on / 1.3 s off: the 2.3 s workload period shares no small
    // common multiple with any swept control period (avoids phase-lock
    // aliasing between stale limits and recurring demand).
    config.demand_factory = [](StageId stage, stage::Dimension dim) {
      const double scale = dim == stage::Dimension::kData ? 1.0 : 0.1;
      const Nanos phase = millis(static_cast<std::int64_t>(
          (stage.value() * 137) % 2300));
      return workload::bursty(2000.0 * scale, 50.0 * scale, seconds(1),
                              millis(1300), phase);
    };
    telemetry.attach(config, sweep.label);
    const char* label = sweep.label;
    parallel_sweep.add([&, label, config] {
      auto result = sim::run_experiment(config);
      return [&, label, result] {
        if (!result.is_ok()) {
          std::printf("%s: %s\n", label, result.status().to_string().c_str());
          rc = 1;
          return;
        }
        std::printf("%-16s %10llu %10.2f %12.3f %10.3f\n", label,
                    static_cast<unsigned long long>(result->cycles),
                    result->stats.mean_total_ms(),
                    result->mean_data_utilization,
                    result->mean_meta_utilization);
        if (telemetry.enabled()) {
          const telemetry::Labels labels{{"configuration", label}};
          auto& registry = telemetry.registry();
          registry.gauge("bench_total_ms_mean", labels)
              ->set(result->stats.mean_total_ms());
          registry.gauge("bench_data_utilization", labels)
              ->set(result->mean_data_utilization);
          registry.gauge("bench_meta_utilization", labels)
              ->set(result->mean_meta_utilization);
        }
      };
    });
  }
  parallel_sweep.finish();
  if (rc != 0) return rc;
  std::printf(
      "\nExpected: utilization degrades as the control period grows —\n"
      "with multi-second periods the enforced limits lag the bursts and\n"
      "the PFS budget is stranded on idle stages. This is the paper's\n"
      "case for low-latency control cycles under dynamic workloads.\n");
  return 0;
}
