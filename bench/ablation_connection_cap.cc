// Ablation — the per-node connection cap (DESIGN.md decision #4).
//
// The paper's flat design hits a hard wall at 2,500 stages: the
// controller node cannot hold more concurrent connections. This bench
// sweeps the cap and shows (a) the flat design failing beyond it and
// (b) the minimum aggregator count needed for 10,000 nodes as a function
// of the cap — exactly why the paper's hierarchical runs start at 4
// aggregators.
#include "bench/harness.h"
#include "bench/sweep.h"

using namespace sds;

int main(int argc, char** argv) {
  bench::print_lanes_note(bench::sim_lanes(argc, argv));
  bench::print_title("Ablation — per-node connection cap");
  bench::Telemetry telemetry("ablation_connection_cap", argc, argv);
  bench::Sweep sweep(argc, argv);

  std::printf("\nFlat design vs cap (N = nodes managed):\n");
  std::printf("%-12s %-10s %s\n", "cap", "N", "outcome");
  for (const std::size_t cap : {1000ul, 2500ul, 5000ul}) {
    for (const std::size_t nodes : {1000ul, 2500ul, 5000ul, 10'000ul}) {
      const std::string label = "cap=" + std::to_string(cap) +
                                " N=" + std::to_string(nodes);
      sim::ExperimentConfig config;
      config.num_stages = nodes;
      config.profile.max_connections_per_node = cap;
      config.max_cycles = 3;
      config.duration = seconds(2);
      telemetry.attach(config, label);
      sweep.add([&, label, cap, nodes, config] {
        auto result = sim::run_experiment(config);
        return [&, label, cap, nodes, result] {
          if (result.is_ok()) {
            std::printf("%-12zu %-10zu OK (%.2f ms/cycle)\n", cap, nodes,
                        result->stats.mean_total_ms());
            if (telemetry.enabled()) {
              telemetry.registry()
                  .gauge("bench_total_ms_mean", {{"configuration", label}})
                  ->set(result->stats.mean_total_ms());
            }
          } else {
            std::printf("%-12zu %-10zu REJECTED: %s\n", cap, nodes,
                        result.status().to_string().c_str());
            if (telemetry.enabled()) {
              telemetry.registry()
                  .counter("bench_rejected_total", {{"configuration", label}})
                  ->add();
            }
          }
        };
      });
    }
  }

  // Section header rides the ordered emit stream so it prints after every
  // part-1 row even when the searches below finish first.
  sweep.add([] {
    return [] {
      std::printf("\nMinimum aggregators for 10,000 nodes vs cap:\n");
      std::printf("%-12s %s\n", "cap", "min aggregators");
    };
  });
  for (const std::size_t cap : {1250ul, 2500ul, 5000ul}) {
    sweep.add([&, cap] {
      std::size_t aggs = 1;
      while (true) {
        sim::ExperimentConfig config;
        config.num_stages = 10'000;
        config.num_aggregators = aggs;
        config.profile.max_connections_per_node = cap;
        config.max_cycles = 1;
        config.duration = seconds(1);
        if (sim::run_experiment(config).is_ok()) break;
        ++aggs;
      }
      return [&, cap, aggs] {
        std::printf("%-12zu %zu\n", cap, aggs);
        if (telemetry.enabled()) {
          telemetry.registry()
              .gauge("bench_min_aggregators",
                     {{"configuration", "cap=" + std::to_string(cap)}})
              ->set(static_cast<double>(aggs));
        }
      };
    });
  }
  sweep.finish();
  std::printf(
      "\nPaper: each Frontera node sustains ~2,500 connections, hence the\n"
      "flat ceiling at 2,500 nodes and the minimum of 4 aggregators for\n"
      "10,000 nodes.\n");
  return 0;
}
