// Table I — Top500 context table (paper §II-A). Static data reproduced
// verbatim: it motivates the node-count axis of every other experiment.
#include <cstdio>

int main() {
  std::printf("\nTABLE I: Supercomputers Top500 rank, peak performance,\n"
              "number of nodes, and installation year (June 2024 list).\n\n");
  std::printf("%-10s %5s %15s %16s %6s\n", "System", "Rank", "Rmax (PFlop/s)",
              "Number of nodes", "Year");
  struct Row {
    const char* system;
    int rank;
    const char* rmax;
    const char* nodes;
    int year;
  };
  const Row rows[] = {
      {"Frontier", 1, "1,206", "9,408", 2021},
      {"Aurora", 2, "1,012", "10,624", 2023},
      {"Fugaku", 4, "442", "158,976", 2020},
      {"Summit", 9, "148.6", "4,608", 2018},
      {"Frontera", 33, "23.52", "8,368", 2019},
  };
  for (const auto& row : rows) {
    std::printf("%-10s %5d %15s %16s %6d\n", row.system, row.rank, row.rmax,
                row.nodes, row.year);
  }
  std::printf("\nThe scalability study targets this range: a flat design up\n"
              "to 2,500 nodes and hierarchical designs up to 10,000 nodes.\n");
  return 0;
}
