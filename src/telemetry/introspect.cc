#include "telemetry/introspect.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/log.h"
#include "telemetry/export.h"

namespace sds::telemetry {

namespace {

void write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; response is best-effort
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

IntrospectionServer::IntrospectionServer(Options options)
    : options_(std::move(options)) {}

IntrospectionServer::~IntrospectionServer() { stop(); }

Status IntrospectionServer::start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::failed_precondition("introspection server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::unavailable("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::invalid_argument("bad introspection host " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::unavailable("bind failed for introspection endpoint");
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::unavailable("listen failed for introspection endpoint");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  SDS_LOG(INFO) << "introspection endpoint on " << options_.host << ":"
                << port_ << " (/metrics /cycles /flight)";
  return Status::ok();
}

void IntrospectionServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Shut the listening socket down; the poll/accept loop notices and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void IntrospectionServer::serve_loop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (rc <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    serve_one(fd);
    ::close(fd);
  }
}

bool IntrospectionServer::handle(const std::string& path, std::string& body,
                                 std::string& content_type) const {
  if (path == "/metrics") {
    if (options_.registry == nullptr) return false;
    body = to_prometheus_text(options_.registry->snapshot());
    content_type = "text/plain; version=0.0.4";
    return true;
  }
  if (path == "/cycles") {
    if (!options_.cycles_json) return false;
    body = options_.cycles_json();
    content_type = "application/json";
    return true;
  }
  if (path == "/flight") {
    if (options_.flight == nullptr) return false;
    body = options_.flight->dump_json(options_.component, "http");
    content_type = "application/json";
    return true;
  }
  if (path == "/" || path.empty()) {
    body = "sds introspection: /metrics /cycles /flight\n";
    content_type = "text/plain";
    return true;
  }
  return false;
}

void IntrospectionServer::serve_one(int fd) const {
  // Read until the end of the request headers (or 4 KiB, whichever first);
  // only the request line matters.
  char buf[4096];
  std::size_t got = 0;
  while (got < sizeof(buf) - 1) {
    const ssize_t n = ::recv(fd, buf + got, sizeof(buf) - 1 - got, 0);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
    buf[got] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr) {
      break;
    }
  }
  if (got == 0) return;
  buf[got] = '\0';

  std::string method;
  std::string path;
  {
    const std::string_view req(buf, got);
    const auto line_end = req.find_first_of("\r\n");
    const auto line = req.substr(0, line_end);
    const auto sp1 = line.find(' ');
    if (sp1 == std::string_view::npos) return;
    const auto sp2 = line.find(' ', sp1 + 1);
    method = std::string(line.substr(0, sp1));
    auto target = sp2 == std::string_view::npos
                      ? line.substr(sp1 + 1)
                      : line.substr(sp1 + 1, sp2 - sp1 - 1);
    const auto query = target.find('?');
    if (query != std::string_view::npos) target = target.substr(0, query);
    path = std::string(target);
  }

  std::string body;
  std::string content_type;
  std::string status_line;
  if (method != "GET") {
    status_line = "HTTP/1.0 405 Method Not Allowed";
    body = "GET only\n";
    content_type = "text/plain";
  } else if (handle(path, body, content_type)) {
    status_line = "HTTP/1.0 200 OK";
  } else {
    status_line = "HTTP/1.0 404 Not Found";
    body = "unknown path (try /metrics /cycles /flight)\n";
    content_type = "text/plain";
  }

  std::string response;
  response.reserve(body.size() + 160);
  response += status_line;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: ";
  response += std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  write_all(fd, response);
}

}  // namespace sds::telemetry
