// TelemetryOptions — the one knob block every live component takes — and
// TelemetryReporter, the periodic snapshot/flush thread for the live
// runtime (GlobalControllerServer, AggregatorServer, StageHost, daemons).
//
// The reporter appends one JSONL snapshot per period to
// `<out_dir>/<component>.metrics.jsonl` and rewrites
// `<out_dir>/<component>.prom` (Prometheus text) in place, so a scrape of
// the freshest state and the full time series coexist. A final flush runs
// on stop() so short-lived processes still export.
#pragma once

#include <memory>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "telemetry/metrics.h"
#include "telemetry/span_tracer.h"

namespace sds::telemetry {

struct TelemetryOptions {
  /// Master switch; everything below is ignored when false.
  bool enabled = false;
  /// Directory for exporter output; empty = in-memory only (snapshots are
  /// still reachable through the registry, nothing is written).
  std::string out_dir;
  /// File-name prefix and value of the `component` label.
  std::string component = "sds";
  /// Reporter flush period.
  Nanos report_period = seconds(1);
  /// Use an external registry (shared across components in one process);
  /// the component owns a private one when null.
  MetricsRegistry* registry = nullptr;
  /// External span tracer; spans are dropped when null and no private
  /// tracer was requested via `trace`.
  SpanTracer* tracer = nullptr;
  /// When true (and `tracer` is null), the component owns a private
  /// tracer and the reporter flushes `<component>.trace.json` on stop.
  bool trace = false;
  /// Track id this component's spans record on. Distinct per component
  /// when several share one external tracer (0 = the global controller
  /// by convention).
  std::uint32_t track = 0;
  /// Serve live introspection over HTTP (/metrics, /cycles, /flight) on
  /// 127.0.0.1:`introspect_port` (0 = kernel-assigned ephemeral port).
  bool introspect = false;
  std::uint16_t introspect_port = 0;
};

class TelemetryReporter {
 public:
  /// `registry` must outlive the reporter. `tracer` may be null.
  TelemetryReporter(MetricsRegistry& registry, SpanTracer* tracer,
                    std::string out_dir, std::string component,
                    Nanos period);
  ~TelemetryReporter();

  TelemetryReporter(const TelemetryReporter&) = delete;
  TelemetryReporter& operator=(const TelemetryReporter&) = delete;

  void start() SDS_EXCLUDES(mu_);
  /// Stop the thread and flush one final snapshot (+ trace if present).
  void stop() SDS_EXCLUDES(mu_);

  /// Snapshot and write all sinks once (also called by the loop).
  Status flush();

  [[nodiscard]] std::string metrics_path() const;
  [[nodiscard]] std::string prometheus_path() const;
  [[nodiscard]] std::string trace_path() const;

 private:
  void loop() SDS_EXCLUDES(mu_);

  MetricsRegistry* registry_;
  SpanTracer* tracer_;
  const std::string out_dir_;
  const std::string component_;
  const Nanos period_;

  Mutex mu_{LockRank::kTelemetryReporter};
  CondVar cv_;
  bool stopping_ SDS_GUARDED_BY(mu_) = false;
  bool started_ SDS_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

}  // namespace sds::telemetry
