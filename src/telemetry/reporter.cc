#include "telemetry/reporter.h"

#include <chrono>

#include "common/log.h"
#include "telemetry/export.h"
#include "telemetry/trace_export.h"

namespace sds::telemetry {

TelemetryReporter::TelemetryReporter(MetricsRegistry& registry,
                                     SpanTracer* tracer, std::string out_dir,
                                     std::string component, Nanos period)
    : registry_(&registry),
      tracer_(tracer),
      out_dir_(std::move(out_dir)),
      component_(std::move(component)),
      period_(period) {}

TelemetryReporter::~TelemetryReporter() { stop(); }

std::string TelemetryReporter::metrics_path() const {
  return out_dir_ + "/" + component_ + ".metrics.jsonl";
}

std::string TelemetryReporter::prometheus_path() const {
  return out_dir_ + "/" + component_ + ".prom";
}

std::string TelemetryReporter::trace_path() const {
  return out_dir_ + "/" + component_ + ".trace.json";
}

void TelemetryReporter::start() {
  MutexLock lock(mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { loop(); });
}

void TelemetryReporter::stop() {
  {
    MutexLock lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    MutexLock lock(mu_);
    started_ = false;
  }
  if (const Status flushed = flush(); !flushed.is_ok()) {
    SDS_LOG(WARN) << "telemetry: final flush failed: " << flushed.to_string();
  }
  if (tracer_ != nullptr && !out_dir_.empty()) {
    const Status written =
        write_chrome_trace(trace_path(), *tracer_, component_);
    if (!written.is_ok()) {
      SDS_LOG(WARN) << "telemetry: trace export failed: "
                    << written.to_string();
    }
  }
}

Status TelemetryReporter::flush() {
  if (out_dir_.empty()) return Status::ok();
  const MetricsSnapshot snap = registry_->snapshot();
  SDS_RETURN_IF_ERROR(append_jsonl(metrics_path(), snap));
  return write_prometheus(prometheus_path(), snap);
}

void TelemetryReporter::loop() {
  for (;;) {
    {
      MutexLock lock(mu_);
      cv_.wait_for(lock, std::chrono::nanoseconds(period_.count()),
                   [this]() SDS_REQUIRES(mu_) { return stopping_; });
      if (stopping_) return;
    }
    // Flush outside the lock: exporters do file I/O and must not block
    // a concurrent stop().
    if (const Status flushed = flush(); !flushed.is_ok()) {
      SDS_LOG(WARN) << "telemetry: flush failed: " << flushed.to_string();
    }
  }
}

}  // namespace sds::telemetry
