#include "telemetry/span_tracer.h"

#include <algorithm>

namespace sds::telemetry {

SpanTracer::SpanTracer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void SpanTracer::record(Span span) {
  MutexLock lock(mu_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[head_] = std::move(span);
  head_ = (head_ + 1) % capacity_;
}

void SpanTracer::set_track_name(std::uint32_t track, std::string name) {
  MutexLock lock(mu_);
  track_names_[track] = std::move(name);
}

std::vector<Span> SpanTracer::snapshot() const {
  MutexLock lock(mu_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  // Oldest first: [head_, end) then [0, head_).
  for (std::size_t i = head_; i < ring_.size(); ++i) out.push_back(ring_[i]);
  for (std::size_t i = 0; i < head_; ++i) out.push_back(ring_[i]);
  return out;
}

std::map<std::uint32_t, std::string> SpanTracer::track_names() const {
  MutexLock lock(mu_);
  return track_names_;
}

std::uint64_t SpanTracer::recorded() const {
  MutexLock lock(mu_);
  return recorded_;
}

std::uint64_t SpanTracer::dropped() const {
  MutexLock lock(mu_);
  return recorded_ - ring_.size();
}

void SpanTracer::reset() {
  MutexLock lock(mu_);
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
}

}  // namespace sds::telemetry
