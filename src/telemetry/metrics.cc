#include "telemetry/metrics.h"

#include <algorithm>
#include <chrono>

namespace sds::telemetry {

namespace {

/// Canonical index key: name + sorted labels ("name|k=v|k=v").
std::string instrument_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key.push_back('|');
    key.append(k);
    key.push_back('=');
    key.append(v);
  }
  return key;
}

HistogramStats summarize(const Histogram& hist) {
  HistogramStats stats;
  stats.count = hist.count();
  stats.mean = hist.mean();
  stats.sum = hist.mean() * static_cast<double>(hist.count());
  stats.stddev = hist.stddev();
  stats.min = hist.min();
  stats.max = hist.max();
  stats.p50 = hist.percentile(0.50);
  stats.p90 = hist.percentile(0.90);
  stats.p99 = hist.percentile(0.99);
  return stats;
}

}  // namespace

const MetricSample* MetricsSnapshot::find(std::string_view name) const {
  for (const auto& sample : samples) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

const MetricSample* MetricsSnapshot::find(std::string_view name,
                                          const Labels& labels) const {
  for (const auto& sample : samples) {
    if (sample.name == name && sample.labels == labels) return &sample;
  }
  return nullptr;
}

MetricsRegistry::Instrument* MetricsRegistry::find_or_create(
    std::string_view name, Labels labels, MetricKind kind) {
  std::sort(labels.begin(), labels.end());
  const std::string key = instrument_key(name, labels);
  MutexLock lock(mu_);
  if (const auto it = index_.find(key); it != index_.end()) return it->second;
  Instrument& instrument = instruments_.emplace_back();
  instrument.name = std::string(name);
  instrument.labels = std::move(labels);
  instrument.kind = kind;
  index_.emplace(key, &instrument);
  return &instrument;
}

Counter* MetricsRegistry::counter(std::string_view name, Labels labels) {
  return &find_or_create(name, std::move(labels), MetricKind::kCounter)->counter;
}

Gauge* MetricsRegistry::gauge(std::string_view name, Labels labels) {
  return &find_or_create(name, std::move(labels), MetricKind::kGauge)->gauge;
}

HistogramMetric* MetricsRegistry::histogram(std::string_view name,
                                            Labels labels) {
  return &find_or_create(name, std::move(labels), MetricKind::kHistogram)
              ->histogram;
}

void MetricsRegistry::add_collector(
    std::function<void(MetricsRegistry&)> collector) {
  MutexLock lock(mu_);
  collectors_.push_back(std::move(collector));
}

std::size_t MetricsRegistry::size() const {
  MutexLock lock(mu_);
  return instruments_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() {
  std::vector<std::function<void(MetricsRegistry&)>> collectors;
  {
    MutexLock lock(mu_);
    collectors = collectors_;
  }
  // Collectors may create instruments, so they run outside the lock.
  for (const auto& collector : collectors) collector(*this);

  MetricsSnapshot snap;
  snap.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::system_clock::now().time_since_epoch())
                     .count();
  {
    MutexLock lock(mu_);
    snap.samples.reserve(instruments_.size());
    // The index map is sorted by key == (name, labels): deterministic order.
    for (const auto& [key, instrument] : index_) {
      MetricSample sample;
      sample.name = instrument->name;
      sample.labels = instrument->labels;
      sample.kind = instrument->kind;
      switch (instrument->kind) {
        case MetricKind::kCounter:
          sample.value = static_cast<double>(instrument->counter.value());
          break;
        case MetricKind::kGauge:
          sample.value = instrument->gauge.value();
          break;
        case MetricKind::kHistogram:
          sample.hist = summarize(instrument->histogram.snapshot());
          break;
      }
      snap.samples.push_back(std::move(sample));
    }
  }
  return snap;
}

}  // namespace sds::telemetry
