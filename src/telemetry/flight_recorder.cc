#include "telemetry/flight_recorder.h"

#include <algorithm>

#include "telemetry/trace_export.h"  // json_escape

namespace sds::telemetry {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.resize(capacity_);  // the one allocation; record() only copies
}

void FlightRecorder::record(const FlightRecord& rec) {
  MutexLock lock(mu_);
  ++recorded_;
  ring_[head_] = rec;
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  MutexLock lock(mu_);
  std::vector<FlightRecord> out;
  out.reserve(size_);
  // Oldest first: when full the oldest record sits at head_.
  const std::size_t start = size_ < capacity_ ? 0 : head_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  MutexLock lock(mu_);
  return recorded_;
}

std::uint64_t FlightRecorder::dropped() const {
  MutexLock lock(mu_);
  return recorded_ - size_;
}

void FlightRecorder::reset() {
  MutexLock lock(mu_);
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
}

std::string FlightRecorder::dump_json(std::string_view component,
                                      std::string_view reason) const {
  const auto records = snapshot();
  std::string out;
  out.reserve(128 + records.size() * 160);
  out += "{\"component\":\"";
  out += json_escape(std::string(component));
  out += "\",\"reason\":\"";
  out += json_escape(std::string(reason));
  out += "\",\"recorded\":";
  out += std::to_string(recorded());
  out += ",\"records\":[";
  bool first = true;
  for (const auto& rec : records) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += json_escape(std::string(rec.name_view()));
    out += "\",\"phase\":\"";
    out += to_string(rec.phase);
    out += "\",\"trace\":";
    out += std::to_string(rec.trace_id);
    out += ",\"span\":";
    out += std::to_string(rec.span_id);
    out += ",\"parent\":";
    out += std::to_string(rec.parent_span);
    out += ",\"cycle\":";
    out += std::to_string(rec.cycle);
    out += ",\"track\":";
    out += std::to_string(rec.track);
    out += ",\"start_ns\":";
    out += std::to_string(rec.start_ns);
    out += ",\"duration_ns\":";
    out += std::to_string(rec.duration_ns);
    out += '}';
  }
  out += "]}\n";
  return out;
}

}  // namespace sds::telemetry
