// Bounded in-memory span recorder for per-cycle / per-RPC tracing.
//
// The cycle engines (sim and live) record one span per control-cycle phase
// (collect / compute / enforce) plus an enclosing per-cycle span; the RPC
// layer can add per-gather spans. Spans live in a fixed-capacity ring —
// recording never allocates beyond the ring and never blocks for long —
// and are flushed to Chrome-tracing/Perfetto JSON by trace_export.h, so a
// hierarchical 3-level run is visually inspectable (one track per
// controller).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace sds::telemetry {

/// One completed span. Timestamps are whatever clock the producer used:
/// virtual nanoseconds in the simulator, steady-clock nanoseconds live.
struct Span {
  /// Event name ("collect", "compute", "enforce", "cycle", "gather").
  std::string name;
  /// Trace category ("cycle", "rpc").
  std::string category;
  /// Track the span renders on (one per controller / thread).
  std::uint32_t track = 0;
  /// Cycle id this span belongs to (0 when not cycle-scoped).
  std::uint64_t cycle = 0;
  /// Free-form detail rendered into the span's args ("stages=50").
  std::string detail;
  Nanos start{0};
  Nanos duration{0};
};

class SpanTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit SpanTracer(std::size_t capacity = kDefaultCapacity);

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Record a completed span; overwrites the oldest entry when full.
  void record(Span span) SDS_EXCLUDES(mu_);

  /// Human-readable name for a track (controller), shown by Perfetto.
  void set_track_name(std::uint32_t track, std::string name)
      SDS_EXCLUDES(mu_);

  /// Spans currently in the ring, oldest first.
  [[nodiscard]] std::vector<Span> snapshot() const SDS_EXCLUDES(mu_);
  [[nodiscard]] std::map<std::uint32_t, std::string> track_names() const
      SDS_EXCLUDES(mu_);

  /// Total spans ever recorded (>= snapshot().size()).
  [[nodiscard]] std::uint64_t recorded() const SDS_EXCLUDES(mu_);
  /// Spans evicted because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const SDS_EXCLUDES(mu_);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void reset() SDS_EXCLUDES(mu_);

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  std::vector<Span> ring_ SDS_GUARDED_BY(mu_);
  /// Next write slot once the ring wrapped.
  std::size_t head_ SDS_GUARDED_BY(mu_) = 0;
  std::uint64_t recorded_ SDS_GUARDED_BY(mu_) = 0;
  std::map<std::uint32_t, std::string> track_names_ SDS_GUARDED_BY(mu_);
};

/// RAII helper: times a region against `clock` and records on destruction.
class ScopedSpan {
 public:
  ScopedSpan(SpanTracer* tracer, const Clock& clock, Span prototype)
      : tracer_(tracer), clock_(&clock), span_(std::move(prototype)) {
    if (tracer_ != nullptr) span_.start = clock_->now();
  }
  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    span_.duration = clock_->now() - span_.start;
    tracer_->record(std::move(span_));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanTracer* tracer_;
  const Clock* clock_;
  Span span_;
};

}  // namespace sds::telemetry
