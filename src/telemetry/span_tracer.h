// Bounded in-memory span recorder for per-cycle / per-RPC tracing.
//
// The cycle engines (sim and live) record one span per control-cycle phase
// (collect / compute / enforce) plus an enclosing per-cycle span; the RPC
// layer can add per-gather spans. Spans live in a fixed-capacity ring —
// recording never allocates beyond the ring and never blocks for long —
// and are flushed to Chrome-tracing/Perfetto JSON by trace_export.h, so a
// hierarchical 3-level run is visually inspectable (one track per
// controller).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace sds::telemetry {

/// Control-cycle phase a span attributes time to. The five-phase split
/// refines the classic collect/compute/enforce triple: `aggregate` is the
/// tail of collection spent merging/relaying above the stages, and
/// `disseminate` is the head of enforcement spent pushing rules down
/// before any stage applies them.
enum class SpanPhase : std::uint8_t {
  kNone = 0,
  kCollect,
  kAggregate,
  kCompute,
  kDisseminate,
  kEnforce,
};

[[nodiscard]] constexpr const char* to_string(SpanPhase phase) {
  switch (phase) {
    case SpanPhase::kCollect: return "collect";
    case SpanPhase::kAggregate: return "aggregate";
    case SpanPhase::kCompute: return "compute";
    case SpanPhase::kDisseminate: return "disseminate";
    case SpanPhase::kEnforce: return "enforce";
    case SpanPhase::kNone: break;
  }
  return "none";
}

/// Deterministic span-id derivation: FNV-1a over (trace, track, name).
/// Ids must not depend on recording order — the parallel sim records
/// spans from several lanes — so they are pure functions of stable keys.
/// The same logical span re-recorded (e.g. a duplicated wire delivery)
/// derives the same id, which is how trace_report spots duplicates.
[[nodiscard]] constexpr std::uint64_t derive_span_id(
    std::uint64_t trace_id, std::uint32_t track, std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  for (int i = 0; i < 64; i += 8) {
    h = (h ^ ((trace_id >> i) & 0xff)) * kPrime;
  }
  for (int i = 0; i < 32; i += 8) {
    h = (h ^ ((track >> i) & 0xff)) * kPrime;
  }
  for (const char c : name) {
    h = (h ^ static_cast<std::uint8_t>(c)) * kPrime;
  }
  return h != 0 ? h : 1;  // 0 is reserved for "no span"
}

/// One completed span. Timestamps are whatever clock the producer used:
/// virtual nanoseconds in the simulator, steady-clock nanoseconds live.
struct Span {
  /// Event name ("collect", "compute", "enforce", "cycle", "gather").
  std::string name;
  /// Trace category ("cycle", "rpc").
  std::string category;
  /// Track the span renders on (one per controller / thread).
  std::uint32_t track = 0;
  /// Cycle id this span belongs to (0 when not cycle-scoped).
  std::uint64_t cycle = 0;
  /// Free-form detail rendered into the span's args ("stages=50").
  std::string detail;
  Nanos start{0};
  Nanos duration{0};
  /// Causal identity: which trace this span belongs to (cycle number by
  /// convention), its own id, and the id of the span that caused it
  /// (0 = root / unknown). Ids come from derive_span_id.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  /// Cycle phase this span attributes time to (kNone when not phased).
  SpanPhase phase = SpanPhase::kNone;
};

class SpanTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit SpanTracer(std::size_t capacity = kDefaultCapacity);

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Record a completed span; overwrites the oldest entry when full.
  void record(Span span) SDS_EXCLUDES(mu_);

  /// Human-readable name for a track (controller), shown by Perfetto.
  void set_track_name(std::uint32_t track, std::string name)
      SDS_EXCLUDES(mu_);

  /// Spans currently in the ring, oldest first.
  [[nodiscard]] std::vector<Span> snapshot() const SDS_EXCLUDES(mu_);
  [[nodiscard]] std::map<std::uint32_t, std::string> track_names() const
      SDS_EXCLUDES(mu_);

  /// Total spans ever recorded (>= snapshot().size()).
  [[nodiscard]] std::uint64_t recorded() const SDS_EXCLUDES(mu_);
  /// Spans evicted because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const SDS_EXCLUDES(mu_);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void reset() SDS_EXCLUDES(mu_);

 private:
  const std::size_t capacity_;
  mutable Mutex mu_{LockRank::kTelemetryTracer};
  std::vector<Span> ring_ SDS_GUARDED_BY(mu_);
  /// Next write slot once the ring wrapped.
  std::size_t head_ SDS_GUARDED_BY(mu_) = 0;
  std::uint64_t recorded_ SDS_GUARDED_BY(mu_) = 0;
  std::map<std::uint32_t, std::string> track_names_ SDS_GUARDED_BY(mu_);
};

/// RAII helper: times a region against `clock` and records on destruction.
class ScopedSpan {
 public:
  ScopedSpan(SpanTracer* tracer, const Clock& clock, Span prototype)
      : tracer_(tracer), clock_(&clock), span_(std::move(prototype)) {
    if (tracer_ != nullptr) span_.start = clock_->now();
  }
  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    span_.duration = clock_->now() - span_.start;
    tracer_->record(std::move(span_));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanTracer* tracer_;
  const Clock* clock_;
  Span span_;
};

}  // namespace sds::telemetry
