#include "telemetry/export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "telemetry/trace_export.h"

namespace sds::telemetry {

namespace {

/// %g loses no precision we care about and never emits locale separators.
std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

/// {k="v",k="v"} with an optional extra label (used for quantiles).
std::string prom_labels(const Labels& labels, std::string_view extra_key = {},
                        std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    out += prom_escape_label_value(v);
    out += "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out.push_back(',');
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string prom_escape_label_value(std::string_view raw) {
  // The exposition format escapes exactly three characters inside label
  // values: backslash, double quote, and line feed. JSON escaping is NOT
  // equivalent (it also rewrites \t, \r, and control bytes as \uXXXX,
  // which Prometheus would read literally).
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string to_prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const auto& sample : snapshot.samples) {
    if (sample.name != last_family) {
      last_family = sample.name;
      out += "# TYPE ";
      out += sample.name;
      switch (sample.kind) {
        case MetricKind::kCounter: out += " counter\n"; break;
        case MetricKind::kGauge: out += " gauge\n"; break;
        case MetricKind::kHistogram: out += " summary\n"; break;
      }
    }
    switch (sample.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += sample.name;
        out += prom_labels(sample.labels);
        out += " ";
        out += format_double(sample.value);
        out += "\n";
        break;
      case MetricKind::kHistogram: {
        const auto quantile = [&](const char* q, std::int64_t v) {
          out += sample.name;
          out += prom_labels(sample.labels, "quantile", q);
          out += " ";
          out += format_double(static_cast<double>(v));
          out += "\n";
        };
        quantile("0.5", sample.hist.p50);
        quantile("0.9", sample.hist.p90);
        quantile("0.99", sample.hist.p99);
        out += sample.name;
        out += "_sum";
        out += prom_labels(sample.labels);
        out += " ";
        out += format_double(sample.hist.sum);
        out += "\n";
        out += sample.name;
        out += "_count";
        out += prom_labels(sample.labels);
        out += " ";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, sample.hist.count);
        out += buf;
        out += "\n";
        break;
      }
    }
  }
  return out;
}

std::string to_jsonl(const MetricsSnapshot& snapshot) {
  std::string out;
  char buf[64];
  for (const auto& sample : snapshot.samples) {
    out += "{\"ts_ns\":";
    std::snprintf(buf, sizeof(buf), "%" PRId64, snapshot.wall_ns);
    out += buf;
    out += ",\"name\":\"";
    out += json_escape(sample.name);
    out += "\",\"kind\":\"";
    out += to_string(sample.kind);
    out += "\",\"labels\":{";
    bool first = true;
    for (const auto& [k, v] : sample.labels) {
      if (!first) out.push_back(',');
      first = false;
      out += "\"";
      out += json_escape(k);
      out += "\":\"";
      out += json_escape(v);
      out += "\"";
    }
    out += "}";
    switch (sample.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += ",\"value\":";
        out += format_double(sample.value);
        break;
      case MetricKind::kHistogram:
        std::snprintf(buf, sizeof(buf), ",\"count\":%" PRIu64,
                      sample.hist.count);
        out += buf;
        out += ",\"sum\":";
        out += format_double(sample.hist.sum);
        out += ",\"mean\":";
        out += format_double(sample.hist.mean);
        out += ",\"stddev\":";
        out += format_double(sample.hist.stddev);
        // Five int64 fields can reach ~140 chars; `buf` is too small.
        char hist_buf[192];
        std::snprintf(hist_buf, sizeof(hist_buf),
                      ",\"min\":%" PRId64 ",\"max\":%" PRId64
                      ",\"p50\":%" PRId64 ",\"p90\":%" PRId64
                      ",\"p99\":%" PRId64,
                      sample.hist.min, sample.hist.max, sample.hist.p50,
                      sample.hist.p90, sample.hist.p99);
        out += hist_buf;
        break;
    }
    out += "}\n";
  }
  return out;
}

Status write_prometheus(const std::string& path,
                        const MetricsSnapshot& snapshot) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::unavailable("cannot open " + path);
  file << to_prometheus_text(snapshot);
  file.close();
  if (!file) return Status::unavailable("write failed: " + path);
  return Status::ok();
}

Status append_jsonl(const std::string& path, const MetricsSnapshot& snapshot) {
  std::ofstream file(path, std::ios::app);
  if (!file) return Status::unavailable("cannot open " + path);
  file << to_jsonl(snapshot);
  file.close();
  if (!file) return Status::unavailable("write failed: " + path);
  return Status::ok();
}

}  // namespace sds::telemetry
