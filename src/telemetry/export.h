// Machine-readable exposition of MetricsSnapshots.
//
// Two formats:
//  * Prometheus text exposition (histograms rendered as summaries with
//    p50/p90/p99 quantiles plus _sum/_count) — scrapeable or diffable.
//  * JSONL — one self-describing JSON object per sample per line, suitable
//    for appending across snapshots (each line carries the snapshot
//    timestamp) and trivially parseable by pandas/jq.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "telemetry/metrics.h"

namespace sds::telemetry {

/// Escape a label value per the Prometheus exposition format: backslash,
/// double quote, and line feed only (NOT the JSON rules).
[[nodiscard]] std::string prom_escape_label_value(std::string_view raw);

/// Prometheus text exposition format (one block per family).
[[nodiscard]] std::string to_prometheus_text(const MetricsSnapshot& snapshot);

/// One JSON object per sample, newline-terminated.
[[nodiscard]] std::string to_jsonl(const MetricsSnapshot& snapshot);

/// Write Prometheus text to `path` (truncates: the file is a scrape).
[[nodiscard]] Status write_prometheus(const std::string& path,
                                      const MetricsSnapshot& snapshot);

/// Append a JSONL snapshot to `path` (appends: the file is a time series).
[[nodiscard]] Status append_jsonl(const std::string& path,
                                  const MetricsSnapshot& snapshot);

}  // namespace sds::telemetry
