// Minimal live-introspection HTTP endpoint.
//
// Every daemon (and the global controller server) can expose three GET
// routes on a loopback port:
//
//   /metrics   Prometheus text exposition of the component's registry
//   /cycles    JSON array of recent control-cycle summaries (per-phase
//              latency + degraded flag), newest last
//   /flight    JSON dump of the always-on flight recorder ring
//
// The server is deliberately tiny: HTTP/1.0, GET only, one short-lived
// connection per request, a single accept thread, no external
// dependencies. It exists for operators and tests (`curl
// localhost:PORT/flight`), not for load. Port 0 binds an ephemeral port;
// `port()` reports the bound one.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"

namespace sds::telemetry {

class IntrospectionServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = ephemeral (query via port() after start()).
    std::uint16_t port = 0;
    /// Component name stamped into /flight dumps (and the index page).
    std::string component;
    /// Source for /metrics (nullptr -> 404).
    MetricsRegistry* registry = nullptr;
    /// Source for /flight (nullptr -> 404).
    const FlightRecorder* flight = nullptr;
    /// Source for /cycles: returns a complete JSON document (nullptr ->
    /// 404). A callback keeps this layer independent of core::CycleStats.
    std::function<std::string()> cycles_json;
  };

  explicit IntrospectionServer(Options options);
  ~IntrospectionServer();

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  /// Bind + listen + start the accept thread. Call at most once.
  [[nodiscard]] Status start();
  /// Stop accepting and join the thread. Idempotent.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }
  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Route a request path to a response body + content type; exposed for
  /// tests that don't want to open sockets. Returns false -> 404.
  [[nodiscard]] bool handle(const std::string& path, std::string& body,
                            std::string& content_type) const;

 private:
  void serve_loop();
  void serve_one(int fd) const;

  Options options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace sds::telemetry
