// Chrome-tracing / Perfetto JSON export of SpanTracer rings.
//
// The emitted file is the Trace Event Format's "JSON object" flavour:
//   {"displayTimeUnit":"ms","traceEvents":[ ... ]}
// with one complete event ("ph":"X") per span (ts/dur in microseconds)
// plus thread_name metadata events naming each track. Load it at
// https://ui.perfetto.dev or chrome://tracing.
#pragma once

#include <string>

#include "common/status.h"
#include "telemetry/span_tracer.h"

namespace sds::telemetry {

/// Render the tracer's current spans as a Chrome-tracing JSON document.
[[nodiscard]] std::string to_chrome_trace_json(const SpanTracer& tracer,
                                               std::string_view process_name);

/// Write the JSON document to `path` (truncates).
[[nodiscard]] Status write_chrome_trace(const std::string& path,
                                        const SpanTracer& tracer,
                                        std::string_view process_name);

/// Escape a string for embedding inside a JSON string literal (shared with
/// the JSONL metrics exporter).
[[nodiscard]] std::string json_escape(std::string_view raw);

}  // namespace sds::telemetry
