#include "telemetry/trace_report.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

namespace sds::telemetry {

namespace {

/// Scan helpers over a single JSON object's text. Values we extract are
/// either numbers or strings with standard escapes; keys are unescaped
/// ASCII (which is all our emitters produce).
std::string_view find_value(std::string_view object, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  // Keys never appear inside our string values except "name" inside
  // args — search from the front; first hit wins, which matches the
  // emitters' field order.
  const auto pos = object.find(needle);
  if (pos == std::string_view::npos) return {};
  return object.substr(pos + needle.size());
}

bool parse_number(std::string_view text, double& out) {
  if (text.empty()) return false;
  char buf[64];
  const std::size_t len = std::min(text.size(), sizeof(buf) - 1);
  std::memcpy(buf, text.data(), len);
  buf[len] = '\0';
  char* end = nullptr;
  out = std::strtod(buf, &end);
  return end != buf;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  char buf[32];
  const std::size_t len = std::min(text.size(), sizeof(buf) - 1);
  std::memcpy(buf, text.data(), len);
  buf[len] = '\0';
  char* end = nullptr;
  out = std::strtoull(buf, &end, 10);
  return end != buf;
}

bool parse_string(std::string_view text, std::string& out) {
  if (text.empty() || text.front() != '"') return false;
  out.clear();
  for (std::size_t i = 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '"') return true;
    if (c == '\\' && i + 1 < text.size()) {
      ++i;
      switch (text[i]) {
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u':
          // \u00XX control escapes — decode the low byte.
          if (i + 4 < text.size()) {
            const std::string hex(text.substr(i + 1, 4));
            out.push_back(static_cast<char>(
                std::strtol(hex.c_str(), nullptr, 16) & 0xff));
            i += 4;
          }
          break;
        default: out.push_back(text[i]);
      }
      continue;
    }
    out.push_back(c);
  }
  return false;  // unterminated
}

/// Split the top-level "traceEvents" array into per-event object slices
/// (balanced braces, string-aware).
std::vector<std::string_view> split_events(std::string_view json) {
  std::vector<std::string_view> events;
  const auto array_pos = json.find("\"traceEvents\"");
  if (array_pos == std::string_view::npos) return events;
  std::size_t i = json.find('[', array_pos);
  if (i == std::string_view::npos) return events;
  int depth = 0;
  bool in_string = false;
  std::size_t start = 0;
  for (++i; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (depth == 0) start = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) events.push_back(json.substr(start, i - start + 1));
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
  return events;
}

std::string component_name(const ParsedTrace& trace, std::uint32_t track) {
  const auto it = trace.track_names.find(track);
  if (it != trace.track_names.end()) return it->second;
  return "track " + std::to_string(track);
}

}  // namespace

Result<ParsedTrace> parse_chrome_trace(const std::string& json) {
  const auto events = split_events(json);
  if (events.empty()) {
    return Status::invalid_argument("no traceEvents array found");
  }
  ParsedTrace out;
  for (const auto event : events) {
    std::string ph;
    if (!parse_string(find_value(event, "ph"), ph)) continue;
    if (ph == "M") {
      std::string meta_name;
      std::string value;
      if (!parse_string(find_value(event, "name"), meta_name)) continue;
      // The args object is last, so its "name" is the second occurrence.
      const auto args = find_value(event, "args");
      if (args.empty()) continue;
      if (!parse_string(find_value(args, "name"), value)) continue;
      if (meta_name == "process_name") {
        out.process_name = value;
      } else if (meta_name == "thread_name") {
        double tid = 0;
        if (parse_number(find_value(event, "tid"), tid)) {
          out.track_names[static_cast<std::uint32_t>(tid)] = value;
        }
      }
      continue;
    }
    if (ph != "X") continue;
    TraceSpan span;
    if (!parse_string(find_value(event, "name"), span.name)) continue;
    parse_string(find_value(event, "cat"), span.category);
    parse_string(find_value(event, "phase"), span.phase);
    double tid = 0;
    if (parse_number(find_value(event, "tid"), tid)) {
      span.track = static_cast<std::uint32_t>(tid);
    }
    parse_number(find_value(event, "ts"), span.ts_us);
    parse_number(find_value(event, "dur"), span.dur_us);
    parse_u64(find_value(event, "cycle"), span.cycle);
    parse_u64(find_value(event, "trace"), span.trace_id);
    parse_u64(find_value(event, "span"), span.span_id);
    parse_u64(find_value(event, "parent"), span.parent_span);
    out.spans.push_back(std::move(span));
  }
  return out;
}

TraceReport build_report(const ParsedTrace& trace) {
  TraceReport report;
  report.total_spans = trace.spans.size();

  // Duplicate detection: identical (trace, span) pairs mean the same
  // logical span was recorded more than once (duplicated delivery).
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(trace.spans.size() * 2);
  std::vector<const TraceSpan*> unique;
  unique.reserve(trace.spans.size());
  for (const auto& span : trace.spans) {
    if (span.span_id != 0) {
      // Mix trace and span ids; ids are FNV outputs so xor-mix is fine.
      const std::uint64_t key =
          span.trace_id * 0x9e3779b97f4a7c15ull ^ span.span_id;
      if (!seen.insert(key).second) {
        ++report.duplicate_spans;
        continue;
      }
    }
    unique.push_back(&span);
  }

  // Phase rows + cycle roots.
  std::map<std::string, PhaseRow> phases;
  const TraceSpan* slowest_root = nullptr;
  for (const auto* span : unique) {
    if (!span->phase.empty()) {
      auto& row = phases[span->phase];
      row.phase = span->phase;
      ++row.count;
      row.total_us += span->dur_us;
      row.max_us = std::max(row.max_us, span->dur_us);
    }
    if (span->category == "cycle" && span->name == "cycle") {
      ++report.cycles;
      report.total_cycle_us += span->dur_us;
      report.max_cycle_us = std::max(report.max_cycle_us, span->dur_us);
      if (slowest_root == nullptr || span->dur_us > slowest_root->dur_us) {
        slowest_root = span;
      }
    }
  }
  if (report.cycles > 0) {
    report.mean_cycle_us =
        report.total_cycle_us / static_cast<double>(report.cycles);
  }
  for (auto& [name, row] : phases) {
    row.mean_us = row.count > 0
                      ? row.total_us / static_cast<double>(row.count)
                      : 0;
    row.share_pct = report.total_cycle_us > 0
                        ? 100.0 * row.total_us / report.total_cycle_us
                        : 0;
    report.phases.push_back(row);
  }
  // Canonical phase order rather than alphabetical.
  const auto rank = [](const std::string& p) {
    if (p == "collect") return 0;
    if (p == "aggregate") return 1;
    if (p == "compute") return 2;
    if (p == "disseminate") return 3;
    if (p == "enforce") return 4;
    return 5;
  };
  std::sort(report.phases.begin(), report.phases.end(),
            [&](const PhaseRow& a, const PhaseRow& b) {
              return rank(a.phase) < rank(b.phase);
            });

  // Critical path of the slowest cycle: from the root, repeatedly descend
  // into the child whose end time is latest — the chain that gated cycle
  // completion.
  if (slowest_root != nullptr) {
    report.slowest_cycle = slowest_root->cycle;
    std::unordered_map<std::uint64_t, std::vector<const TraceSpan*>> children;
    for (const auto* span : unique) {
      if (span->trace_id == slowest_root->trace_id &&
          span->parent_span != 0) {
        children[span->parent_span].push_back(span);
      }
    }
    const TraceSpan* node = slowest_root;
    std::size_t guard = 0;
    while (node != nullptr && guard++ < 64) {
      report.critical_path.push_back(
          {node->name, component_name(trace, node->track), node->dur_us});
      const auto it = children.find(node->span_id);
      if (it == children.end()) break;
      const TraceSpan* next = nullptr;
      for (const auto* child : it->second) {
        if (next == nullptr ||
            child->ts_us + child->dur_us > next->ts_us + next->dur_us) {
          next = child;
        }
      }
      node = next;
    }
  }
  return report;
}

std::string format_report(const TraceReport& report) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "cycles: %zu   spans: %zu   duplicates flagged: %zu\n"
                "cycle latency: total %.3f ms   mean %.3f ms   max %.3f ms "
                "(cycle %llu)\n\n",
                report.cycles, report.total_spans, report.duplicate_spans,
                report.total_cycle_us / 1e3, report.mean_cycle_us / 1e3,
                report.max_cycle_us / 1e3,
                static_cast<unsigned long long>(report.slowest_cycle));
  out += buf;

  out += "per-phase breakdown\n";
  out +=
      "  phase        count      total_ms       mean_us        max_us  "
      "share\n";
  for (const auto& row : report.phases) {
    std::snprintf(buf, sizeof(buf),
                  "  %-11s %6zu %13.3f %13.3f %13.3f %5.1f%%\n",
                  row.phase.c_str(), row.count, row.total_us / 1e3,
                  row.mean_us, row.max_us, row.share_pct);
    out += buf;
  }

  if (!report.critical_path.empty()) {
    std::snprintf(buf, sizeof(buf), "\ncritical path (cycle %llu)\n",
                  static_cast<unsigned long long>(report.slowest_cycle));
    out += buf;
    for (const auto& hop : report.critical_path) {
      std::snprintf(buf, sizeof(buf), "  %-24s %-24s %13.3f us\n",
                    hop.name.c_str(), hop.component.c_str(), hop.dur_us);
      out += buf;
    }
  }
  return out;
}

std::string summarize_metrics_jsonl(const std::string& jsonl) {
  std::string out;
  out += "cycle metrics (latest snapshot per series)\n";
  out +=
      "  name                               phase            count       "
      "mean_ms        p99_ms\n";
  // Later lines overwrite earlier ones (the file appends snapshots).
  std::map<std::string, std::string> rows;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    auto end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string_view line(jsonl.data() + start, end - start);
    start = end + 1;
    std::string name;
    if (!parse_string(find_value(line, "name"), name)) continue;
    if (name.rfind("sds_cycle_", 0) != 0) continue;
    std::string kind;
    parse_string(find_value(line, "kind"), kind);
    if (kind != "histogram") continue;
    const auto labels = find_value(line, "labels");
    std::string phase;
    parse_string(find_value(labels, "phase"), phase);
    double count = 0;
    double mean = 0;
    double p99 = 0;
    parse_number(find_value(line, "count"), count);
    parse_number(find_value(line, "mean"), mean);
    parse_number(find_value(line, "p99"), p99);
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "  %-34s %-11s %10.0f %13.3f %13.3f\n", name.c_str(),
                  phase.empty() ? "-" : phase.c_str(), count, mean / 1e6,
                  p99 / 1e6);
    rows[name + "|" + phase] = buf;
  }
  for (const auto& [key, row] : rows) out += row;
  return out;
}

}  // namespace sds::telemetry
