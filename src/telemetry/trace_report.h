// Offline analysis of exported traces: per-phase breakdown and critical
// paths.
//
// `tools/trace_report` (and tests) feed this either a Chrome-tracing JSON
// document produced by trace_export.h or a metrics JSONL file produced by
// export.h, and get back per-cycle / per-phase attribution tables: where
// did each control cycle spend its time, which hop dominated the critical
// path, and were any spans delivered twice (duplicate wire deliveries
// derive identical span ids, so they are detectable after the fact).
//
// The JSON reader is scoped to the documents this repo emits (flat event
// objects with one level of "args" nesting) — it is not a general JSON
// parser.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace sds::telemetry {

/// One parsed trace event ("ph":"X" complete spans only).
struct TraceSpan {
  std::string name;
  std::string category;
  std::string phase;  // "" when unphased
  std::uint32_t track = 0;
  std::uint64_t cycle = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  double ts_us = 0;
  double dur_us = 0;
};

struct ParsedTrace {
  std::string process_name;
  std::map<std::uint32_t, std::string> track_names;
  std::vector<TraceSpan> spans;
};

/// Parse a Chrome-tracing JSON document (the trace_export.h flavour).
[[nodiscard]] Result<ParsedTrace> parse_chrome_trace(const std::string& json);

/// Aggregated per-phase attribution across all cycles in a trace.
struct PhaseRow {
  std::string phase;
  std::size_t count = 0;
  double total_us = 0;
  double mean_us = 0;
  double max_us = 0;
  /// Share of the summed cycle time (%; sub-phases overlap their parents,
  /// so rows need not sum to 100).
  double share_pct = 0;
};

/// One hop on the critical path of the slowest cycle.
struct CriticalHop {
  std::string name;
  std::string component;  // track name (or "track N")
  double dur_us = 0;
};

struct TraceReport {
  std::size_t cycles = 0;
  /// Sum / mean / max over per-cycle root span durations.
  double total_cycle_us = 0;
  double mean_cycle_us = 0;
  double max_cycle_us = 0;
  std::uint64_t slowest_cycle = 0;
  std::vector<PhaseRow> phases;
  /// Deepest-end-time walk from the slowest cycle's root span.
  std::vector<CriticalHop> critical_path;
  /// Span ids recorded more than once inside one trace (e.g. duplicated
  /// deliveries under chaos) — flagged, never double-counted.
  std::size_t duplicate_spans = 0;
  std::size_t total_spans = 0;
};

[[nodiscard]] TraceReport build_report(const ParsedTrace& trace);

/// Render the report as the fixed-width tables the CLI prints.
[[nodiscard]] std::string format_report(const TraceReport& report);

/// Summarize `sds_cycle_*` samples out of a metrics JSONL document (the
/// export.h flavour): one line per histogram family/phase label.
[[nodiscard]] std::string summarize_metrics_jsonl(const std::string& jsonl);

}  // namespace sds::telemetry
