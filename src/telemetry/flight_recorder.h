// Always-on, allocation-free flight recorder.
//
// Every component (global controller, aggregators, stage hosts, the sim's
// cycle driver) keeps a fixed-size ring of recent span records so that
// when something goes wrong — a fault-driver kill, a degraded cycle, an
// operator poking /flight — the last few thousand spans are available
// without having had tracing enabled. Unlike SpanTracer, records are POD:
// recording copies a fixed-size struct under a short critical section and
// never allocates, so the recorder is safe to leave on in the hot cycle
// path (the perf_cycle A/B leg gates its overhead at <= 5%).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "telemetry/span_tracer.h"

namespace sds::telemetry {

/// One fixed-size span record. Name is truncated to fit; everything else
/// mirrors telemetry::Span.
struct FlightRecord {
  static constexpr std::size_t kNameCapacity = 23;

  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::uint64_t cycle = 0;
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = 0;
  std::uint32_t track = 0;
  SpanPhase phase = SpanPhase::kNone;
  std::array<char, kNameCapacity + 1> name{};  // NUL-terminated

  void set_name(std::string_view n) {
    const std::size_t len = n.size() < kNameCapacity ? n.size() : kNameCapacity;
    for (std::size_t i = 0; i < len; ++i) name[i] = n[i];
    name[len] = '\0';
  }

  [[nodiscard]] std::string_view name_view() const {
    return std::string_view(name.data());
  }

  [[nodiscard]] static FlightRecord from_span(const Span& span) {
    FlightRecord rec;
    rec.trace_id = span.trace_id;
    rec.span_id = span.span_id;
    rec.parent_span = span.parent_span;
    rec.cycle = span.cycle;
    rec.start_ns = span.start.count();
    rec.duration_ns = span.duration.count();
    rec.track = span.track;
    rec.phase = span.phase;
    rec.set_name(span.name);
    return rec;
  }
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// The full ring is allocated up front; record() never allocates.
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(const FlightRecord& rec) SDS_EXCLUDES(mu_);
  void record(const Span& span) SDS_EXCLUDES(mu_) {
    record(FlightRecord::from_span(span));
  }

  /// Records currently held, oldest first.
  [[nodiscard]] std::vector<FlightRecord> snapshot() const SDS_EXCLUDES(mu_);

  /// Total records ever written / evicted by ring wrap.
  [[nodiscard]] std::uint64_t recorded() const SDS_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t dropped() const SDS_EXCLUDES(mu_);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void reset() SDS_EXCLUDES(mu_);

  /// JSON dump of the ring — the payload of /flight and of dump-on-fault
  /// artifacts. `reason` and `component` annotate the envelope.
  [[nodiscard]] std::string dump_json(std::string_view component = {},
                                      std::string_view reason = {}) const
      SDS_EXCLUDES(mu_);

 private:
  const std::size_t capacity_;
  mutable Mutex mu_{LockRank::kTelemetryTracer};
  std::vector<FlightRecord> ring_ SDS_GUARDED_BY(mu_);
  std::size_t head_ SDS_GUARDED_BY(mu_) = 0;
  std::size_t size_ SDS_GUARDED_BY(mu_) = 0;
  std::uint64_t recorded_ SDS_GUARDED_BY(mu_) = 0;
};

}  // namespace sds::telemetry
