#include "telemetry/trace_export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace sds::telemetry {

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string to_chrome_trace_json(const SpanTracer& tracer,
                                 std::string_view process_name) {
  const auto spans = tracer.snapshot();
  const auto tracks = tracer.track_names();

  std::string out;
  out.reserve(128 + spans.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

  char buf[256];
  bool first = true;
  const auto append_comma = [&] {
    if (!first) out.push_back(',');
    first = false;
  };

  append_comma();
  out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"";
  out += json_escape(process_name);
  out += "\"}}";

  for (const auto& [track, name] : tracks) {
    append_comma();
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":\"",
                  track);
    out += buf;
    out += json_escape(name);
    out += "\"}}";
  }

  for (const auto& span : spans) {
    append_comma();
    // ts/dur are microseconds (double) in the Trace Event Format.
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                  "\"dur\":%.3f,\"name\":\"",
                  span.track, to_micros(span.start),
                  to_micros(span.duration));
    out += buf;
    out += json_escape(span.name);
    out += "\",\"cat\":\"";
    out += json_escape(span.category);
    out += "\",\"args\":{\"cycle\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, span.cycle);
    out += buf;
    if (span.trace_id != 0 || span.span_id != 0) {
      // Causal identity: lets trace_report stitch parent/child chains and
      // flag duplicate deliveries (same span id recorded twice).
      std::snprintf(buf, sizeof(buf),
                    ",\"trace\":%" PRIu64 ",\"span\":%" PRIu64
                    ",\"parent\":%" PRIu64,
                    span.trace_id, span.span_id, span.parent_span);
      out += buf;
    }
    if (span.phase != SpanPhase::kNone) {
      out += ",\"phase\":\"";
      out += to_string(span.phase);
      out += "\"";
    }
    if (!span.detail.empty()) {
      out += ",\"detail\":\"";
      out += json_escape(span.detail);
      out += "\"";
    }
    out += "}}";
  }

  out += "]}";
  return out;
}

Status write_chrome_trace(const std::string& path, const SpanTracer& tracer,
                          std::string_view process_name) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::unavailable("cannot open " + path);
  file << to_chrome_trace_json(tracer, process_name);
  file.close();
  if (!file) return Status::unavailable("write failed: " + path);
  return Status::ok();
}

}  // namespace sds::telemetry
