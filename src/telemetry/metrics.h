// Unified metrics registry for sim + live runtime.
//
// One MetricsRegistry instance is the single sink every instrumented
// component registers into: CycleStats (per-phase latency histograms),
// ResourceMonitor (CPU/RSS/bandwidth gauges), the transports (byte/message
// counters), the RPC gather layer (fan-out, wave latency, timeouts), and
// the sim engine (events executed, virtual time). Snapshots are exported
// by the Prometheus-text / JSONL exporters in export.h.
//
// Concurrency contract: instrument lookup/creation takes a registry-wide
// mutex once; the returned Counter/Gauge/HistogramMetric pointers are
// stable for the registry's lifetime and safe to hammer from any thread.
// Counters and gauges are single relaxed atomics; histograms take a tiny
// per-instrument lock (uncontended in every current call site: one writer
// per instrument).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace sds::telemetry {

/// Sorted key=value pairs identifying one instrument of a named family.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    // No fetch_add for atomic<double> pre-C++20 on all targets; CAS loop.
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Thread-safe wrapper around the log-bucketed sds::Histogram.
class HistogramMetric {
 public:
  void record(std::int64_t value) SDS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    hist_.record(value);
  }
  void record(Nanos value) { record(value.count()); }

  /// Copy of the underlying distribution (for snapshots).
  [[nodiscard]] Histogram snapshot() const SDS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return hist_;
  }

 private:
  mutable Mutex mu_{LockRank::kTelemetryInstrument};
  Histogram hist_ SDS_GUARDED_BY(mu_);
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] constexpr std::string_view to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

/// Point-in-time distribution summary of one histogram instrument.
struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0;
  double mean = 0;
  double stddev = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::int64_t p50 = 0;
  std::int64_t p90 = 0;
  std::int64_t p99 = 0;
};

/// One instrument's state at snapshot time.
struct MetricSample {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  /// Counter (as double) or gauge value; unused for histograms.
  double value = 0;
  HistogramStats hist;
};

struct MetricsSnapshot {
  /// Wall-clock timestamp (nanoseconds since the UNIX epoch).
  std::int64_t wall_ns = 0;
  std::vector<MetricSample> samples;

  /// First sample matching name (+ labels when given); nullptr if absent.
  [[nodiscard]] const MetricSample* find(std::string_view name) const;
  [[nodiscard]] const MetricSample* find(std::string_view name,
                                         const Labels& labels) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create; the pointer stays valid for the registry's lifetime.
  /// Re-requesting the same (name, labels) returns the same instrument, so
  /// independent components share series naturally.
  Counter* counter(std::string_view name, Labels labels = {})
      SDS_EXCLUDES(mu_);
  Gauge* gauge(std::string_view name, Labels labels = {}) SDS_EXCLUDES(mu_);
  HistogramMetric* histogram(std::string_view name, Labels labels = {})
      SDS_EXCLUDES(mu_);

  /// Collectors run at the start of every snapshot(); they pull state that
  /// is cheaper to poll than to push (endpoint counter blocks, procfs).
  void add_collector(std::function<void(MetricsRegistry&)> collector)
      SDS_EXCLUDES(mu_);

  /// Run collectors, then copy out every instrument. Samples are ordered
  /// by (name, labels) so exports are deterministic.
  [[nodiscard]] MetricsSnapshot snapshot() SDS_EXCLUDES(mu_);

  [[nodiscard]] std::size_t size() const SDS_EXCLUDES(mu_);

 private:
  struct Instrument {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    // Exactly one is engaged, selected by `kind`. deque storage keeps the
    // element addresses stable as the registry grows (instruments hold
    // atomics/mutexes and are neither copyable nor movable).
    Counter counter;
    Gauge gauge;
    HistogramMetric histogram;
  };

  Instrument* find_or_create(std::string_view name, Labels labels,
                             MetricKind kind) SDS_EXCLUDES(mu_);

  mutable Mutex mu_{LockRank::kTelemetryRegistry};
  std::deque<Instrument> instruments_ SDS_GUARDED_BY(mu_);
  std::map<std::string, Instrument*> index_ SDS_GUARDED_BY(mu_);
  std::vector<std::function<void(MetricsRegistry&)>> collectors_
      SDS_GUARDED_BY(mu_);
};

}  // namespace sds::telemetry
