// Umbrella header: the whole sdscale public API.
//
//   #include "sdscale.h"
//
// For finer-grained builds include the per-layer headers directly; see
// README.md for the layer map.
#pragma once

#include "common/clock.h"       // IWYU pragma: export
#include "common/config.h"      // IWYU pragma: export
#include "common/histogram.h"   // IWYU pragma: export
#include "common/log.h"         // IWYU pragma: export
#include "common/rng.h"         // IWYU pragma: export
#include "common/status.h"      // IWYU pragma: export
#include "common/types.h"       // IWYU pragma: export

#include "wire/codec.h"         // IWYU pragma: export
#include "wire/frame.h"         // IWYU pragma: export
#include "proto/messages.h"     // IWYU pragma: export

#include "transport/inproc.h"   // IWYU pragma: export
#include "transport/tcp.h"      // IWYU pragma: export
#include "rpc/gather.h"         // IWYU pragma: export

#include "policy/algorithm.h"   // IWYU pragma: export
#include "policy/baselines.h"   // IWYU pragma: export
#include "policy/psfa.h"        // IWYU pragma: export
#include "policy/spec.h"        // IWYU pragma: export
#include "policy/splitter.h"    // IWYU pragma: export

#include "stage/limiter.h"      // IWYU pragma: export
#include "stage/posix_stage.h"  // IWYU pragma: export
#include "stage/token_bucket.h" // IWYU pragma: export
#include "stage/virtual_stage.h"// IWYU pragma: export

#include "core/aggregator.h"    // IWYU pragma: export
#include "core/coordinated.h"   // IWYU pragma: export
#include "core/cycle_stats.h"   // IWYU pragma: export
#include "core/global.h"        // IWYU pragma: export
#include "core/policy_table.h"  // IWYU pragma: export
#include "core/registry.h"      // IWYU pragma: export

#include "runtime/aggregator_server.h"  // IWYU pragma: export
#include "runtime/deployment.h"         // IWYU pragma: export
#include "runtime/global_server.h"      // IWYU pragma: export
#include "runtime/stage_host.h"         // IWYU pragma: export

#include "sim/engine.h"         // IWYU pragma: export
#include "sim/experiment.h"     // IWYU pragma: export
#include "sim/host.h"           // IWYU pragma: export
#include "sim/profile.h"        // IWYU pragma: export

#include "monitor/resource_monitor.h"   // IWYU pragma: export
#include "workload/generators.h"        // IWYU pragma: export
#include "workload/trace.h"             // IWYU pragma: export
