#include "workload/generators.h"

#include <algorithm>

namespace sds::workload {

stage::DemandFn constant(double ops_per_sec) {
  return [ops_per_sec](Nanos) { return ops_per_sec; };
}

stage::DemandFn uniform_constant(double lo, double hi, Rng& rng) {
  return constant(rng.uniform(lo, hi));
}

stage::DemandFn bursty(double high, double low, Nanos on, Nanos off,
                       Nanos phase) {
  const std::int64_t period = (on + off).count();
  return [=](Nanos t) {
    if (period <= 0) return high;
    std::int64_t pos = (t + phase).count() % period;
    if (pos < 0) pos += period;
    return pos < on.count() ? high : low;
  };
}

stage::DemandFn ramp(double start_rate, double end_rate, Nanos duration) {
  return [=](Nanos t) {
    if (duration.count() <= 0 || t >= duration) return end_rate;
    const double frac =
        static_cast<double>(t.count()) / static_cast<double>(duration.count());
    return start_rate + (end_rate - start_rate) * frac;
  };
}

stage::DemandFn sinusoidal(double mean, double amplitude, Nanos period,
                           Nanos phase) {
  return [=](Nanos t) {
    if (period.count() <= 0) return mean;
    const double angle = 2.0 * 3.14159265358979323846 *
                         static_cast<double>((t + phase).count()) /
                         static_cast<double>(period.count());
    return std::max(0.0, mean + amplitude * std::sin(angle));
  };
}

stage::DemandFn steps(std::vector<Step> schedule, double final_rate) {
  return [schedule = std::move(schedule), final_rate](Nanos t) {
    for (const auto& step : schedule) {
      if (t < step.until) return step.rate;
    }
    return final_rate;
  };
}

JobChurnSchedule::JobChurnSchedule(const JobChurnOptions& options,
                                   std::uint64_t seed)
    : options_(options) {
  Rng rng(seed);
  const double arrival_rate =
      1.0 / std::max(to_seconds(options.mean_interarrival), 1e-9);
  const double departure_rate =
      1.0 / std::max(to_seconds(options.mean_lifetime), 1e-9);
  Nanos t{0};
  while (t < options.horizon) {
    t += Nanos{static_cast<std::int64_t>(rng.exponential(arrival_rate) * 1e9)};
    if (t >= options.horizon) break;
    const Nanos lifetime{
        static_cast<std::int64_t>(rng.exponential(departure_rate) * 1e9)};
    episodes_.push_back({t, t + lifetime});
  }
  if (episodes_.empty()) {
    episodes_.push_back({Nanos{0}, options.horizon});  // always one job
  }
}

stage::DemandFn JobChurnSchedule::demand_for(std::size_t index) const {
  const JobEpisode episode = episodes_[index % episodes_.size()];
  const double rate = options_.active_rate;
  return [episode, rate](Nanos t) { return episode.active_at(t) ? rate : 0.0; };
}

std::size_t JobChurnSchedule::active_at(Nanos t) const {
  return static_cast<std::size_t>(
      std::count_if(episodes_.begin(), episodes_.end(),
                    [t](const JobEpisode& e) { return e.active_at(t); }));
}

}  // namespace sds::workload
