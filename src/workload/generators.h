// Synthetic demand generators for data-plane stages.
//
// Generators return a DemandFn — ops/s as a deterministic function of
// simulated (or real) time — covering the paper's stress workload plus
// the dynamic patterns its future-work section calls for (burstiness,
// ramps, diurnal load) and a Poisson job-churn model.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "stage/virtual_stage.h"

namespace sds::workload {

/// Constant demand (the paper's stress workload: metric values are
/// irrelevant; every stage always answers).
[[nodiscard]] stage::DemandFn constant(double ops_per_sec);

/// Constant-per-stage demand drawn uniformly from [lo, hi) at creation.
[[nodiscard]] stage::DemandFn uniform_constant(double lo, double hi, Rng& rng);

/// On/off burst pattern: `high` ops/s for `on` time, then `low` for
/// `off`, repeating with a per-stage phase shift.
[[nodiscard]] stage::DemandFn bursty(double high, double low, Nanos on,
                                     Nanos off, Nanos phase = Nanos{0});

/// Linear ramp from `start_rate` to `end_rate` over `duration`, constant
/// afterwards.
[[nodiscard]] stage::DemandFn ramp(double start_rate, double end_rate,
                                   Nanos duration);

/// Sinusoidal (diurnal-style) demand: mean + amplitude * sin(2πt/period).
[[nodiscard]] stage::DemandFn sinusoidal(double mean, double amplitude,
                                         Nanos period, Nanos phase = Nanos{0});

/// Piecewise-constant steps (deterministic trace).
struct Step {
  Nanos until;
  double rate;
};
[[nodiscard]] stage::DemandFn steps(std::vector<Step> schedule,
                                    double final_rate);

// ---------------------------------------------------------------------------
// Job churn (jobs entering and leaving the system, paper §I)

struct JobChurnOptions {
  /// Mean job inter-arrival time.
  Nanos mean_interarrival = seconds(30);
  /// Mean job lifetime (exponentially distributed).
  Nanos mean_lifetime = seconds(120);
  /// Demand of a live job's stage.
  double active_rate = 1000;
  /// Horizon to pre-generate.
  Nanos horizon = seconds(600);
};

/// A job's [start, end) activity window.
struct JobEpisode {
  Nanos start;
  Nanos end;

  [[nodiscard]] bool active_at(Nanos t) const { return t >= start && t < end; }
};

/// Pre-generates a Poisson arrival / exponential lifetime schedule; each
/// stage picks an episode and is idle outside it. Deterministic per seed.
class JobChurnSchedule {
 public:
  JobChurnSchedule(const JobChurnOptions& options, std::uint64_t seed);

  [[nodiscard]] const std::vector<JobEpisode>& episodes() const {
    return episodes_;
  }

  /// Demand function for a stage belonging to episode `index % size`.
  [[nodiscard]] stage::DemandFn demand_for(std::size_t index) const;

  /// Number of episodes active at time t.
  [[nodiscard]] std::size_t active_at(Nanos t) const;

 private:
  JobChurnOptions options_;
  std::vector<JobEpisode> episodes_;
};

}  // namespace sds::workload
