// Demand traces: record per-stage I/O demand over time and replay it as
// DemandFns — the bridge between the synthetic stress study and the
// paper's future-work call for "real workloads and applications".
//
// Format: CSV rows `time_ms,stage_id,data_iops,meta_iops` (header line
// optional, '#' comments allowed). Replay is piecewise-constant: a
// stage's demand holds its most recent sample (zero before the first).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/types.h"
#include "proto/messages.h"
#include "stage/virtual_stage.h"

namespace sds::workload {

class DemandTrace {
 public:
  struct Sample {
    Nanos at;
    double data_iops;
    double meta_iops;
  };

  DemandTrace() = default;

  /// Append a sample. Out-of-order times are tolerated (sorted on first
  /// replay/serialization).
  void add(Nanos at, StageId stage, double data_iops, double meta_iops);

  /// Parse CSV text (see format above).
  [[nodiscard]] static Result<DemandTrace> parse_csv(std::string_view text);
  [[nodiscard]] static Result<DemandTrace> load(const std::string& path);

  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] Status save(const std::string& path) const;

  /// Replay: piecewise-constant demand for `stage` in dimension `dim`.
  /// The returned function shares immutable snapshot state, so it stays
  /// valid (and cheap to copy) after the trace object is destroyed.
  /// Stages absent from the trace replay as constant zero.
  [[nodiscard]] stage::DemandFn demand_for(StageId stage,
                                           stage::Dimension dim) const;

  [[nodiscard]] std::size_t num_stages() const { return series_.size(); }
  [[nodiscard]] std::size_t num_samples() const;
  /// Timestamp of the last sample (Nanos{0} for an empty trace).
  [[nodiscard]] Nanos horizon() const;

  [[nodiscard]] const std::vector<Sample>* series(StageId stage) const;

 private:
  void sort_if_needed() const;

  // Mutable for lazy sorting; logically const after first replay.
  mutable std::map<StageId, std::shared_ptr<std::vector<Sample>>> series_;
  mutable bool sorted_ = true;
};

/// Records one row per collected StageMetrics — attach to a control loop
/// to capture a replayable workload trace of a live (or simulated) run.
class TraceRecorder {
 public:
  /// Record the *observed* rates from a collect-phase report.
  void record(Nanos at, const proto::StageMetrics& metrics);

  /// Record explicit rates.
  void record(Nanos at, StageId stage, double data_iops, double meta_iops);

  [[nodiscard]] const DemandTrace& trace() const { return trace_; }
  [[nodiscard]] DemandTrace take() { return std::move(trace_); }

 private:
  DemandTrace trace_;
};

}  // namespace sds::workload
