#include "workload/trace.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

namespace sds::workload {

void DemandTrace::add(Nanos at, StageId stage, double data_iops,
                      double meta_iops) {
  auto& series = series_[stage];
  if (!series) series = std::make_shared<std::vector<Sample>>();
  if (!series->empty() && series->back().at > at) sorted_ = false;
  series->push_back({at, data_iops, meta_iops});
}

void DemandTrace::sort_if_needed() const {
  if (sorted_) return;
  for (auto& [stage, series] : series_) {
    std::stable_sort(
        series->begin(), series->end(),
        [](const Sample& a, const Sample& b) { return a.at < b.at; });
  }
  sorted_ = true;
}

namespace {

std::string_view next_field(std::string_view& line) {
  const auto comma = line.find(',');
  std::string_view field = line.substr(0, comma);
  line = comma == std::string_view::npos ? std::string_view{}
                                         : line.substr(comma + 1);
  while (!field.empty() && std::isspace(static_cast<unsigned char>(field.front()))) {
    field.remove_prefix(1);
  }
  while (!field.empty() && std::isspace(static_cast<unsigned char>(field.back()))) {
    field.remove_suffix(1);
  }
  return field;
}

bool parse_double(std::string_view s, double& out) {
  // std::from_chars<double> is available in libstdc++ >= 11.
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

}  // namespace

Result<DemandTrace> DemandTrace::parse_csv(std::string_view text) {
  DemandTrace trace;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    if (line_no == 1 && line.find("time") != std::string_view::npos) {
      continue;  // header row
    }
    const auto time_field = next_field(line);
    const auto stage_field = next_field(line);
    const auto data_field = next_field(line);
    const auto meta_field = next_field(line);

    double time_ms = 0;
    double data = 0;
    double meta = 0;
    std::uint32_t stage = 0;
    const auto [sp, sec] =
        std::from_chars(stage_field.data(), stage_field.data() + stage_field.size(), stage);
    if (!parse_double(time_field, time_ms) || sec != std::errc{} ||
        sp != stage_field.data() + stage_field.size() ||
        !parse_double(data_field, data) || !parse_double(meta_field, meta)) {
      return Status::invalid_argument("trace line " + std::to_string(line_no) +
                                      ": expected time_ms,stage,data,meta");
    }
    trace.add(Nanos{static_cast<std::int64_t>(time_ms * 1e6)}, StageId{stage},
              data, meta);
  }
  return trace;
}

Result<DemandTrace> DemandTrace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::not_found("trace file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_csv(ss.str());
}

std::string DemandTrace::to_csv() const {
  sort_if_needed();
  std::ostringstream out;
  out << "time_ms,stage_id,data_iops,meta_iops\n";
  // Emit globally time-ordered rows for human-diffable output.
  std::vector<std::pair<StageId, Sample>> rows;
  rows.reserve(num_samples());
  for (const auto& [stage, series] : series_) {
    for (const Sample& sample : *series) rows.emplace_back(stage, sample);
  }
  std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.at < b.second.at;
  });
  out.precision(10);
  for (const auto& [stage, sample] : rows) {
    out << to_millis(sample.at) << ',' << stage.value() << ','
        << sample.data_iops << ',' << sample.meta_iops << '\n';
  }
  return out.str();
}

Status DemandTrace::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::internal("cannot open for writing: " + path);
  out << to_csv();
  return out ? Status::ok() : Status::internal("write failed: " + path);
}

stage::DemandFn DemandTrace::demand_for(StageId stage,
                                        stage::Dimension dim) const {
  sort_if_needed();
  const auto it = series_.find(stage);
  if (it == series_.end()) {
    return [](Nanos) { return 0.0; };
  }
  // Share the immutable sample vector; the closure outlives `this`.
  std::shared_ptr<const std::vector<Sample>> series = it->second;
  const bool data = dim == stage::Dimension::kData;
  return [series, data](Nanos t) {
    // Last sample with at <= t (piecewise-constant hold).
    const auto after = std::upper_bound(
        series->begin(), series->end(), t,
        [](Nanos value, const Sample& s) { return value < s.at; });
    if (after == series->begin()) return 0.0;
    const Sample& sample = *std::prev(after);
    return data ? sample.data_iops : sample.meta_iops;
  };
}

std::size_t DemandTrace::num_samples() const {
  std::size_t n = 0;
  for (const auto& [stage, series] : series_) n += series->size();
  return n;
}

Nanos DemandTrace::horizon() const {
  sort_if_needed();
  Nanos last{0};
  for (const auto& [stage, series] : series_) {
    if (!series->empty()) last = std::max(last, series->back().at);
  }
  return last;
}

const std::vector<DemandTrace::Sample>* DemandTrace::series(
    StageId stage) const {
  sort_if_needed();
  const auto it = series_.find(stage);
  return it == series_.end() ? nullptr : it->second.get();
}

void TraceRecorder::record(Nanos at, const proto::StageMetrics& metrics) {
  trace_.add(at, metrics.stage_id, metrics.data_iops, metrics.meta_iops);
}

void TraceRecorder::record(Nanos at, StageId stage, double data_iops,
                           double meta_iops) {
  trace_.add(at, stage, data_iops, meta_iops);
}

}  // namespace sds::workload
