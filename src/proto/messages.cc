#include "proto/messages.h"

#include <bit>

namespace sds::proto {

namespace {

using wire::Decoder;
using wire::Encoder;

void put_id32(Encoder& enc, std::uint32_t v) { enc.put_u32(v); }

template <typename Id>
Id get_id32(Decoder& dec) {
  return Id{dec.get_u32()};
}

}  // namespace

std::string_view to_string(MessageType t) {
  switch (t) {
    case MessageType::kInvalid: return "Invalid";
    case MessageType::kRegisterRequest: return "RegisterRequest";
    case MessageType::kRegisterAck: return "RegisterAck";
    case MessageType::kCollectRequest: return "CollectRequest";
    case MessageType::kStageMetrics: return "StageMetrics";
    case MessageType::kMetricsBatch: return "MetricsBatch";
    case MessageType::kAggregatedMetrics: return "AggregatedMetrics";
    case MessageType::kEnforceBatch: return "EnforceBatch";
    case MessageType::kEnforceAck: return "EnforceAck";
    case MessageType::kHeartbeat: return "Heartbeat";
    case MessageType::kHeartbeatAck: return "HeartbeatAck";
    case MessageType::kBudgetLease: return "BudgetLease";
    case MessageType::kError: return "Error";
    case MessageType::kStageMetricsDelta: return "StageMetricsDelta";
  }
  return "Unknown";
}

// --------------------------------------------------------------------------
// StageInfo

void StageInfo::encode(Encoder& enc) const {
  put_id32(enc, stage_id.value());
  put_id32(enc, node_id.value());
  put_id32(enc, job_id.value());
  enc.put_string(hostname);
}

Result<StageInfo> StageInfo::decode(Decoder& dec) {
  StageInfo info;
  info.stage_id = get_id32<StageId>(dec);
  info.node_id = get_id32<NodeId>(dec);
  info.job_id = get_id32<JobId>(dec);
  info.hostname = dec.get_string();
  if (!dec.ok()) return Status::invalid_argument("StageInfo: truncated");
  return info;
}

std::size_t StageInfo::wire_size() const {
  return 4 + 4 + 4 + Encoder::varint_size(hostname.size()) + hostname.size();
}

Result<RegisterRequest> RegisterRequest::decode(Decoder& dec) {
  auto info = StageInfo::decode(dec);
  if (!info.is_ok()) return info.status();
  return RegisterRequest{std::move(info).value()};
}

void RegisterAck::encode(Encoder& enc) const {
  enc.put_bool(accepted);
  enc.put_u32(epoch);
}

Result<RegisterAck> RegisterAck::decode(Decoder& dec) {
  RegisterAck ack;
  ack.accepted = dec.get_bool();
  ack.epoch = dec.get_u32();
  if (!dec.ok()) return Status::invalid_argument("RegisterAck: truncated");
  return ack;
}

// --------------------------------------------------------------------------
// Collect

void CollectRequest::encode(Encoder& enc) const {
  enc.put_varint(cycle_id);
  enc.put_bool(detailed);
}

Result<CollectRequest> CollectRequest::decode(Decoder& dec) {
  CollectRequest req;
  req.cycle_id = dec.get_varint();
  req.detailed = dec.get_bool();
  if (!dec.ok()) return Status::invalid_argument("CollectRequest: truncated");
  return req;
}

std::size_t CollectRequest::wire_size() const {
  return Encoder::varint_size(cycle_id) + 1;
}

void StageMetrics::encode(Encoder& enc) const {
  enc.put_varint(cycle_id);
  put_id32(enc, stage_id.value());
  put_id32(enc, job_id.value());
  enc.put_double(data_iops);
  enc.put_double(meta_iops);
  enc.put_double(data_limit);
  enc.put_double(meta_limit);
}

Result<StageMetrics> StageMetrics::decode(Decoder& dec) {
  StageMetrics m;
  m.cycle_id = dec.get_varint();
  m.stage_id = get_id32<StageId>(dec);
  m.job_id = get_id32<JobId>(dec);
  m.data_iops = dec.get_double();
  m.meta_iops = dec.get_double();
  m.data_limit = dec.get_double();
  m.meta_limit = dec.get_double();
  if (!dec.ok()) return Status::invalid_argument("StageMetrics: truncated");
  return m;
}

std::size_t StageMetrics::wire_size() const {
  return Encoder::varint_size(cycle_id) + 4 + 4 + 8 * 4;
}

namespace {

/// The four delta-carried metric fields of a StageMetrics, in field-bit
/// order, as raw IEEE-754 bit patterns.
std::array<std::uint64_t, StageMetricsDelta::kFieldCount> metric_bits(
    const StageMetrics& m) {
  return {std::bit_cast<std::uint64_t>(m.data_iops),
          std::bit_cast<std::uint64_t>(m.meta_iops),
          std::bit_cast<std::uint64_t>(m.data_limit),
          std::bit_cast<std::uint64_t>(m.meta_limit)};
}

}  // namespace

StageMetricsDelta StageMetricsDelta::make(const StageMetrics& prev,
                                          const StageMetrics& curr,
                                          bool include_stage_id) {
  StageMetricsDelta d;
  d.cycle_id = curr.cycle_id;
  d.base_cycle_id = prev.cycle_id;
  if (include_stage_id) d.stage_id = curr.stage_id;
  const auto before = metric_bits(prev);
  const auto after = metric_bits(curr);
  for (std::size_t i = 0; i < kFieldCount; ++i) {
    if (before[i] == after[i]) continue;
    d.fields |= static_cast<std::uint8_t>(1u << i);
    d.deltas[i] = after[i] - before[i];  // mod 2^64, exact by construction
  }
  return d;
}

StageMetrics StageMetricsDelta::apply(const StageMetrics& prev) const {
  StageMetrics m = prev;
  m.cycle_id = cycle_id;
  if (stage_id.has_value()) m.stage_id = *stage_id;
  auto bits = metric_bits(prev);
  for (std::size_t i = 0; i < kFieldCount; ++i) {
    if ((fields & (1u << i)) != 0) bits[i] += deltas[i];
  }
  m.data_iops = std::bit_cast<double>(bits[0]);
  m.meta_iops = std::bit_cast<double>(bits[1]);
  m.data_limit = std::bit_cast<double>(bits[2]);
  m.meta_limit = std::bit_cast<double>(bits[3]);
  return m;
}

void StageMetricsDelta::encode(Encoder& enc) const {
  const std::uint64_t base_age = cycle_id - base_cycle_id;
  std::uint8_t flags = fields;
  if (stage_id.has_value()) flags |= kHasStageId;
  if (base_age != 1) flags |= kHasBaseAge;
  enc.put_varint(cycle_id);
  enc.put_u8(flags);
  if (stage_id.has_value()) enc.put_varint(stage_id->value());
  if (base_age != 1) enc.put_varint(base_age);
  for (std::size_t i = 0; i < kFieldCount; ++i) {
    if ((fields & (1u << i)) != 0) {
      enc.put_svarint(static_cast<std::int64_t>(deltas[i]));
    }
  }
}

Result<StageMetricsDelta> StageMetricsDelta::decode(Decoder& dec) {
  StageMetricsDelta d;
  d.cycle_id = dec.get_varint();
  const std::uint8_t flags = dec.get_u8();
  if (!dec.ok()) return Status::invalid_argument("StageMetricsDelta: truncated");
  if ((flags & ~(kDataIops | kMetaIops | kDataLimit | kMetaLimit |
                 kHasStageId | kHasBaseAge)) != 0) {
    return Status::invalid_argument("StageMetricsDelta: reserved flag bits");
  }
  d.fields = flags & (kDataIops | kMetaIops | kDataLimit | kMetaLimit);
  if ((flags & kHasStageId) != 0) {
    d.stage_id = StageId{static_cast<std::uint32_t>(dec.get_varint())};
  }
  std::uint64_t base_age = 1;
  if ((flags & kHasBaseAge) != 0) base_age = dec.get_varint();
  if (base_age > d.cycle_id) {
    return Status::invalid_argument("StageMetricsDelta: base age before cycle 0");
  }
  d.base_cycle_id = d.cycle_id - base_age;
  for (std::size_t i = 0; i < kFieldCount; ++i) {
    if ((d.fields & (1u << i)) != 0) {
      d.deltas[i] = static_cast<std::uint64_t>(dec.get_svarint());
    }
  }
  if (!dec.ok()) return Status::invalid_argument("StageMetricsDelta: truncated");
  return d;
}

std::size_t StageMetricsDelta::wire_size() const {
  const std::uint64_t base_age = cycle_id - base_cycle_id;
  std::size_t size = Encoder::varint_size(cycle_id) + 1;
  if (stage_id.has_value()) size += Encoder::varint_size(stage_id->value());
  if (base_age != 1) size += Encoder::varint_size(base_age);
  for (std::size_t i = 0; i < kFieldCount; ++i) {
    if ((fields & (1u << i)) != 0) {
      const auto v = static_cast<std::int64_t>(deltas[i]);
      const std::uint64_t zigzag =
          (static_cast<std::uint64_t>(v) << 1) ^
          static_cast<std::uint64_t>(v >> 63);
      size += Encoder::varint_size(zigzag);
    }
  }
  return size;
}

void MetricsBatch::encode(Encoder& enc) const {
  enc.put_varint(cycle_id);
  put_id32(enc, from.value());
  enc.put_varint(entries.size());
  for (const auto& e : entries) e.encode(enc);
}

Result<MetricsBatch> MetricsBatch::decode(Decoder& dec) {
  MetricsBatch batch;
  batch.cycle_id = dec.get_varint();
  batch.from = get_id32<ControllerId>(dec);
  const std::uint64_t n = dec.get_varint();
  if (!dec.ok() || n > (1u << 26)) {
    return Status::invalid_argument("MetricsBatch: bad count");
  }
  batch.entries.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    auto entry = StageMetrics::decode(dec);
    if (!entry.is_ok()) return entry.status();
    batch.entries.push_back(std::move(entry).value());
  }
  return batch;
}

std::size_t MetricsBatch::wire_size() const {
  std::size_t size = Encoder::varint_size(cycle_id) + 4 +
                     Encoder::varint_size(entries.size());
  for (const auto& e : entries) size += e.wire_size();
  return size;
}

void JobMetrics::encode(Encoder& enc) const {
  put_id32(enc, job_id.value());
  enc.put_double(data_iops);
  enc.put_double(meta_iops);
  enc.put_u32(stage_count);
}

Result<JobMetrics> JobMetrics::decode(Decoder& dec) {
  JobMetrics m;
  m.job_id = get_id32<JobId>(dec);
  m.data_iops = dec.get_double();
  m.meta_iops = dec.get_double();
  m.stage_count = dec.get_u32();
  if (!dec.ok()) return Status::invalid_argument("JobMetrics: truncated");
  return m;
}

std::size_t JobMetrics::wire_size() const { return 4 + 8 + 8 + 4; }

void StageDigest::encode(Encoder& enc) const {
  put_id32(enc, stage_id.value());
  enc.put_f32(data_iops);
  enc.put_f32(meta_iops);
}

Result<StageDigest> StageDigest::decode(Decoder& dec) {
  StageDigest d;
  d.stage_id = get_id32<StageId>(dec);
  d.data_iops = dec.get_f32();
  d.meta_iops = dec.get_f32();
  if (!dec.ok()) return Status::invalid_argument("StageDigest: truncated");
  return d;
}

void AggregatedMetrics::encode(Encoder& enc) const {
  enc.put_varint(cycle_id);
  put_id32(enc, from.value());
  enc.put_u32(total_stages);
  enc.put_varint(jobs.size());
  for (const auto& j : jobs) j.encode(enc);
  enc.put_varint(digests.size());
  for (const auto& d : digests) d.encode(enc);
}

Result<AggregatedMetrics> AggregatedMetrics::decode(Decoder& dec) {
  AggregatedMetrics agg;
  agg.cycle_id = dec.get_varint();
  agg.from = get_id32<ControllerId>(dec);
  agg.total_stages = dec.get_u32();
  const std::uint64_t n = dec.get_varint();
  if (!dec.ok() || n > (1u << 26)) {
    return Status::invalid_argument("AggregatedMetrics: bad count");
  }
  agg.jobs.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    auto job = JobMetrics::decode(dec);
    if (!job.is_ok()) return job.status();
    agg.jobs.push_back(std::move(job).value());
  }
  const std::uint64_t d = dec.get_varint();
  if (!dec.ok() || d > (1u << 26)) {
    return Status::invalid_argument("AggregatedMetrics: bad digest count");
  }
  agg.digests.reserve(static_cast<std::size_t>(d));
  for (std::uint64_t i = 0; i < d; ++i) {
    auto digest = StageDigest::decode(dec);
    if (!digest.is_ok()) return digest.status();
    agg.digests.push_back(std::move(digest).value());
  }
  return agg;
}

std::size_t AggregatedMetrics::wire_size() const {
  std::size_t size = Encoder::varint_size(cycle_id) + 4 + 4 +
                     Encoder::varint_size(jobs.size());
  for (const auto& j : jobs) size += j.wire_size();
  size += Encoder::varint_size(digests.size()) +
          digests.size() * StageDigest::wire_size();
  return size;
}

// --------------------------------------------------------------------------
// Enforce

void Rule::encode(Encoder& enc) const {
  put_id32(enc, stage_id.value());
  put_id32(enc, job_id.value());
  enc.put_double(data_iops_limit);
  enc.put_double(meta_iops_limit);
  enc.put_varint(epoch);
}

Result<Rule> Rule::decode(Decoder& dec) {
  Rule r;
  r.stage_id = get_id32<StageId>(dec);
  r.job_id = get_id32<JobId>(dec);
  r.data_iops_limit = dec.get_double();
  r.meta_iops_limit = dec.get_double();
  r.epoch = dec.get_varint();
  if (!dec.ok()) return Status::invalid_argument("Rule: truncated");
  return r;
}

std::size_t Rule::wire_size() const {
  return 4 + 4 + 8 + 8 + Encoder::varint_size(epoch);
}

void EnforceBatch::encode(Encoder& enc) const {
  enc.put_varint(cycle_id);
  enc.put_varint(rules.size());
  for (const auto& r : rules) r.encode(enc);
}

Result<EnforceBatch> EnforceBatch::decode(Decoder& dec) {
  EnforceBatch batch;
  batch.cycle_id = dec.get_varint();
  const std::uint64_t n = dec.get_varint();
  if (!dec.ok() || n > (1u << 26)) {
    return Status::invalid_argument("EnforceBatch: bad count");
  }
  batch.rules.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    auto rule = Rule::decode(dec);
    if (!rule.is_ok()) return rule.status();
    batch.rules.push_back(std::move(rule).value());
  }
  return batch;
}

std::size_t EnforceBatch::wire_size() const {
  std::size_t size =
      Encoder::varint_size(cycle_id) + Encoder::varint_size(rules.size());
  for (const auto& r : rules) size += r.wire_size();
  return size;
}

void EnforceAck::encode(Encoder& enc) const {
  enc.put_varint(cycle_id);
  enc.put_u32(applied);
}

Result<EnforceAck> EnforceAck::decode(Decoder& dec) {
  EnforceAck ack;
  ack.cycle_id = dec.get_varint();
  ack.applied = dec.get_u32();
  if (!dec.ok()) return Status::invalid_argument("EnforceAck: truncated");
  return ack;
}

std::size_t EnforceAck::wire_size() const {
  return Encoder::varint_size(cycle_id) + 4;
}

// --------------------------------------------------------------------------
// Liveness / delegation

void Heartbeat::encode(Encoder& enc) const {
  put_id32(enc, from.value());
  enc.put_varint(seq);
}

Result<Heartbeat> Heartbeat::decode(Decoder& dec) {
  Heartbeat hb;
  hb.from = get_id32<ControllerId>(dec);
  hb.seq = dec.get_varint();
  if (!dec.ok()) return Status::invalid_argument("Heartbeat: truncated");
  return hb;
}

std::size_t Heartbeat::wire_size() const {
  return 4 + Encoder::varint_size(seq);
}

void HeartbeatAck::encode(Encoder& enc) const { enc.put_varint(seq); }

Result<HeartbeatAck> HeartbeatAck::decode(Decoder& dec) {
  HeartbeatAck ack;
  ack.seq = dec.get_varint();
  if (!dec.ok()) return Status::invalid_argument("HeartbeatAck: truncated");
  return ack;
}

std::size_t HeartbeatAck::wire_size() const {
  return Encoder::varint_size(seq);
}

void BudgetLease::encode(Encoder& enc) const {
  enc.put_varint(cycle_id);
  enc.put_double(data_budget);
  enc.put_double(meta_budget);
  enc.put_u64(valid_until_ns);
}

Result<BudgetLease> BudgetLease::decode(Decoder& dec) {
  BudgetLease lease;
  lease.cycle_id = dec.get_varint();
  lease.data_budget = dec.get_double();
  lease.meta_budget = dec.get_double();
  lease.valid_until_ns = dec.get_u64();
  if (!dec.ok()) return Status::invalid_argument("BudgetLease: truncated");
  return lease;
}

std::size_t BudgetLease::wire_size() const {
  return Encoder::varint_size(cycle_id) + 8 + 8 + 8;
}

void ErrorMessage::encode(Encoder& enc) const {
  enc.put_u32(code);
  enc.put_string(detail);
}

Result<ErrorMessage> ErrorMessage::decode(Decoder& dec) {
  ErrorMessage err;
  err.code = dec.get_u32();
  err.detail = dec.get_string();
  if (!dec.ok()) return Status::invalid_argument("ErrorMessage: truncated");
  return err;
}

std::size_t ErrorMessage::wire_size() const {
  return 4 + Encoder::varint_size(detail.size()) + detail.size();
}

}  // namespace sds::proto
