// Control-protocol messages exchanged between controllers and stages.
//
// Every message provides:
//   void encode(wire::Encoder&) const     — append body bytes
//   static Result<T> decode(wire::Decoder&) — parse body bytes
//   std::size_t wire_size() const          — exact encoded body size,
//                                            computable without encoding
//                                            (the simulator accounts
//                                            network bytes with this)
//   operator==                             — test support
//
// Message flow (one control cycle, hierarchical form; flat skips the
// aggregator hop):
//
//   global --CollectRequest--> aggregator --CollectRequest--> stages
//   stages --StageMetrics--> aggregator --AggregatedMetrics--> global
//   global --EnforceBatch--> aggregator --EnforceBatch(split)--> stages
//   stages --EnforceAck--> aggregator --EnforceAck(merged)--> global
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "wire/codec.h"
#include "wire/frame.h"
#include "wire/shared_frame.h"

namespace sds::proto {

enum class MessageType : std::uint16_t {
  kInvalid = 0,
  kRegisterRequest = 1,
  kRegisterAck = 2,
  kCollectRequest = 3,
  kStageMetrics = 4,
  kMetricsBatch = 5,
  kAggregatedMetrics = 6,
  kEnforceBatch = 7,
  kEnforceAck = 8,
  kHeartbeat = 9,
  kHeartbeatAck = 10,
  kBudgetLease = 11,
  kError = 12,
  kStageMetricsDelta = 13,
};

[[nodiscard]] std::string_view to_string(MessageType t);

/// How a stage throttles one operation class, in operations per second.
/// The paper's PSFA policy assigns per-job IOPS rates for data and
/// metadata operations; kUnlimited disables throttling for a class.
constexpr double kUnlimited = -1.0;

// ---------------------------------------------------------------------------
// Registration / membership

struct StageInfo {
  StageId stage_id;
  NodeId node_id;
  JobId job_id;
  std::string hostname;

  void encode(wire::Encoder& enc) const;
  static Result<StageInfo> decode(wire::Decoder& dec);
  [[nodiscard]] std::size_t wire_size() const;
  bool operator==(const StageInfo&) const = default;
};

struct RegisterRequest {
  static constexpr MessageType kType = MessageType::kRegisterRequest;
  StageInfo info;

  void encode(wire::Encoder& enc) const { info.encode(enc); }
  static Result<RegisterRequest> decode(wire::Decoder& dec);
  [[nodiscard]] std::size_t wire_size() const { return info.wire_size(); }
  bool operator==(const RegisterRequest&) const = default;
};

struct RegisterAck {
  static constexpr MessageType kType = MessageType::kRegisterAck;
  bool accepted = false;
  std::uint32_t epoch = 0;

  void encode(wire::Encoder& enc) const;
  static Result<RegisterAck> decode(wire::Decoder& dec);
  [[nodiscard]] std::size_t wire_size() const { return 1 + 4; }
  bool operator==(const RegisterAck&) const = default;
};

// ---------------------------------------------------------------------------
// Collect phase

struct CollectRequest {
  static constexpr MessageType kType = MessageType::kCollectRequest;
  std::uint64_t cycle_id = 0;
  /// When true, stages report per-class detail; otherwise two totals.
  bool detailed = false;

  void encode(wire::Encoder& enc) const;
  static Result<CollectRequest> decode(wire::Decoder& dec);
  [[nodiscard]] std::size_t wire_size() const;
  bool operator==(const CollectRequest&) const = default;
};

/// Instantaneous I/O telemetry from one data-plane stage.
struct StageMetrics {
  static constexpr MessageType kType = MessageType::kStageMetrics;
  std::uint64_t cycle_id = 0;
  StageId stage_id;
  JobId job_id;
  double data_iops = 0;   // submitted data-op rate since last collect
  double meta_iops = 0;   // submitted metadata-op rate since last collect
  double data_limit = kUnlimited;  // currently enforced limits (echo)
  double meta_limit = kUnlimited;

  void encode(wire::Encoder& enc) const;
  static Result<StageMetrics> decode(wire::Decoder& dec);
  [[nodiscard]] std::size_t wire_size() const;
  bool operator==(const StageMetrics&) const = default;
};

/// Flag-gated incremental form of StageMetrics: carries only the fields
/// whose IEEE-754 bit pattern changed since the stage's last report, as
/// zig-zag varints of the bit-pattern difference (mod 2^64). Nearby
/// doubles share exponent bits, so a low-churn stage's delta is 1–2
/// bytes per changed field and an unchanged stage's frame is just
/// cycle+flags. Receivers fold deltas into a columnar MetricsStore
/// (core/metrics_store.h); the chain is exact — applying a delta
/// reproduces the sender's StageMetrics bit-for-bit.
///
/// The stage id is optional (kHasStageId): on per-stage connections the
/// receiver already knows which stage a connection belongs to, and
/// omitting the id is what gets the frame under a third of the full
/// form. `base_cycle_id` defaults to cycle_id - 1 (the common
/// every-cycle cadence); kHasBaseAge carries an explicit base age when
/// a report was skipped. A receiver whose last applied cycle for the
/// stage differs from base_cycle_id must reject the delta and wait for
/// a full-frame refresh. Flag bits 6–7 are reserved and rejected.
struct StageMetricsDelta {
  static constexpr MessageType kType = MessageType::kStageMetricsDelta;
  // Field-changed bits (also the encode order of the delta varints).
  static constexpr std::uint8_t kDataIops = 1u << 0;
  static constexpr std::uint8_t kMetaIops = 1u << 1;
  static constexpr std::uint8_t kDataLimit = 1u << 2;
  static constexpr std::uint8_t kMetaLimit = 1u << 3;
  static constexpr std::uint8_t kHasStageId = 1u << 4;
  static constexpr std::uint8_t kHasBaseAge = 1u << 5;
  static constexpr std::size_t kFieldCount = 4;

  std::uint64_t cycle_id = 0;
  /// Cycle whose values the deltas are relative to (receiver-side
  /// precondition; encoded as the age cycle_id - base_cycle_id).
  std::uint64_t base_cycle_id = 0;
  std::optional<StageId> stage_id;
  /// kDataIops..kMetaLimit bits for fields present in `deltas`.
  std::uint8_t fields = 0;
  /// Per-field bit-pattern difference new - old (mod 2^64), indexed by
  /// field-bit position; slots for absent fields stay zero.
  std::array<std::uint64_t, kFieldCount> deltas{};

  /// Build the delta taking `curr` relative to `prev` (same stage,
  /// prev.cycle_id < curr.cycle_id).
  [[nodiscard]] static StageMetricsDelta make(const StageMetrics& prev,
                                              const StageMetrics& curr,
                                              bool include_stage_id);
  /// Fold this delta into `prev` (the receiver's value at
  /// base_cycle_id), reproducing the sender's metrics exactly.
  [[nodiscard]] StageMetrics apply(const StageMetrics& prev) const;

  void encode(wire::Encoder& enc) const;
  static Result<StageMetricsDelta> decode(wire::Decoder& dec);
  [[nodiscard]] std::size_t wire_size() const;
  bool operator==(const StageMetricsDelta&) const = default;
};

/// Raw per-stage metrics relayed in one message (aggregator w/o
/// pre-aggregation, used by the pre-aggregation ablation).
struct MetricsBatch {
  static constexpr MessageType kType = MessageType::kMetricsBatch;
  std::uint64_t cycle_id = 0;
  ControllerId from;
  std::vector<StageMetrics> entries;

  void encode(wire::Encoder& enc) const;
  static Result<MetricsBatch> decode(wire::Decoder& dec);
  [[nodiscard]] std::size_t wire_size() const;
  bool operator==(const MetricsBatch&) const = default;
};

/// Per-job summary produced by an aggregator (Cheferd-style merge).
struct JobMetrics {
  JobId job_id;
  double data_iops = 0;
  double meta_iops = 0;
  std::uint32_t stage_count = 0;

  void encode(wire::Encoder& enc) const;
  static Result<JobMetrics> decode(wire::Decoder& dec);
  [[nodiscard]] std::size_t wire_size() const;
  bool operator==(const JobMetrics&) const = default;
};

/// Compact per-stage demand hint carried alongside the job summaries.
/// Rates are quantized to float32 — enough precision for proportional
/// splitting, a third of the size of a full StageMetrics entry. This is
/// what lets the global controller keep demand-proportional per-stage
/// rules under the hierarchy (and why the paper's hierarchical global
/// controller still receives megabytes per second and holds per-stage
/// state for all 10,000 nodes).
struct StageDigest {
  StageId stage_id;
  float data_iops = 0;
  float meta_iops = 0;

  void encode(wire::Encoder& enc) const;
  static Result<StageDigest> decode(wire::Decoder& dec);
  [[nodiscard]] static constexpr std::size_t wire_size() { return 4 + 4 + 4; }
  bool operator==(const StageDigest&) const = default;
};

struct AggregatedMetrics {
  static constexpr MessageType kType = MessageType::kAggregatedMetrics;
  std::uint64_t cycle_id = 0;
  ControllerId from;
  std::uint32_t total_stages = 0;
  std::vector<JobMetrics> jobs;
  /// Optional per-stage digests (empty when digests are disabled).
  std::vector<StageDigest> digests;

  void encode(wire::Encoder& enc) const;
  static Result<AggregatedMetrics> decode(wire::Decoder& dec);
  [[nodiscard]] std::size_t wire_size() const;
  bool operator==(const AggregatedMetrics&) const = default;
};

// ---------------------------------------------------------------------------
// Enforce phase

/// One storage rule: rate limits for one stage. Epochs let stages detect
/// stale rules after controller failover (paper §VI dependability).
struct Rule {
  StageId stage_id;
  JobId job_id;
  double data_iops_limit = kUnlimited;
  double meta_iops_limit = kUnlimited;
  std::uint64_t epoch = 0;

  void encode(wire::Encoder& enc) const;
  static Result<Rule> decode(wire::Decoder& dec);
  [[nodiscard]] std::size_t wire_size() const;
  bool operator==(const Rule&) const = default;
};

struct EnforceBatch {
  static constexpr MessageType kType = MessageType::kEnforceBatch;
  std::uint64_t cycle_id = 0;
  std::vector<Rule> rules;

  void encode(wire::Encoder& enc) const;
  static Result<EnforceBatch> decode(wire::Decoder& dec);
  [[nodiscard]] std::size_t wire_size() const;
  bool operator==(const EnforceBatch&) const = default;
};

struct EnforceAck {
  static constexpr MessageType kType = MessageType::kEnforceAck;
  std::uint64_t cycle_id = 0;
  std::uint32_t applied = 0;

  void encode(wire::Encoder& enc) const;
  static Result<EnforceAck> decode(wire::Decoder& dec);
  [[nodiscard]] std::size_t wire_size() const;
  bool operator==(const EnforceAck&) const = default;
};

// ---------------------------------------------------------------------------
// Liveness and delegation

struct Heartbeat {
  static constexpr MessageType kType = MessageType::kHeartbeat;
  ControllerId from;
  std::uint64_t seq = 0;

  void encode(wire::Encoder& enc) const;
  static Result<Heartbeat> decode(wire::Decoder& dec);
  [[nodiscard]] std::size_t wire_size() const;
  bool operator==(const Heartbeat&) const = default;
};

struct HeartbeatAck {
  static constexpr MessageType kType = MessageType::kHeartbeatAck;
  std::uint64_t seq = 0;

  void encode(wire::Encoder& enc) const;
  static Result<HeartbeatAck> decode(wire::Decoder& dec);
  [[nodiscard]] std::size_t wire_size() const;
  bool operator==(const HeartbeatAck&) const = default;
};

/// Budget delegated to an aggregator that makes local PSFA decisions
/// (paper §VI: offloading processing logic to aggregator nodes).
struct BudgetLease {
  static constexpr MessageType kType = MessageType::kBudgetLease;
  std::uint64_t cycle_id = 0;
  double data_budget = 0;
  double meta_budget = 0;
  std::uint64_t valid_until_ns = 0;

  void encode(wire::Encoder& enc) const;
  static Result<BudgetLease> decode(wire::Decoder& dec);
  [[nodiscard]] std::size_t wire_size() const;
  bool operator==(const BudgetLease&) const = default;
};

struct ErrorMessage {
  static constexpr MessageType kType = MessageType::kError;
  std::uint32_t code = 0;
  std::string detail;

  void encode(wire::Encoder& enc) const;
  static Result<ErrorMessage> decode(wire::Decoder& dec);
  [[nodiscard]] std::size_t wire_size() const;
  bool operator==(const ErrorMessage&) const = default;
};

// ---------------------------------------------------------------------------
// Frame packing helpers

/// Encode a message into a transport Frame. When `trace` is set the frame
/// carries the causal trace context in its wire trailer (flags bit 0);
/// decoding strips it back into Frame::trace, so message codecs never see
/// it.
template <typename M>
[[nodiscard]] wire::Frame to_frame(
    const M& msg, std::optional<wire::TraceContext> trace = std::nullopt) {
  wire::Frame frame;
  frame.type = static_cast<std::uint16_t>(M::kType);
  frame.trace = trace;
  wire::Encoder enc(frame.payload);
  enc.reserve(msg.wire_size());
  msg.encode(enc);
  return frame;
}

/// Encode a message once into a ref-counted SharedFrame for broadcast:
/// every connection then queues the same immutable wire image instead of
/// re-serializing (or re-copying) the payload per destination. An optional
/// trace context rides the shared image's trailer — encoded once like the
/// payload.
template <typename M>
[[nodiscard]] wire::SharedFrame to_shared_frame(
    const M& msg, std::optional<wire::TraceContext> trace = std::nullopt) {
  return wire::SharedFrame::encode(
      static_cast<std::uint16_t>(M::kType), msg.wire_size(),
      [&msg](wire::Encoder& enc) { msg.encode(enc); }, trace);
}

/// Decode a frame's payload as message type M; checks the type tag and
/// that the payload is fully consumed.
template <typename M>
[[nodiscard]] Result<M> from_frame(const wire::Frame& frame) {
  if (frame.type != static_cast<std::uint16_t>(M::kType)) {
    return Status::invalid_argument("frame type mismatch");
  }
  wire::Decoder dec(frame.payload);
  auto msg = M::decode(dec);
  if (!msg.is_ok()) return msg;
  if (!dec.fully_consumed()) {
    return Status::invalid_argument("trailing bytes in frame payload");
  }
  return msg;
}

}  // namespace sds::proto
