// CoordinatedControllerCore — the paper's future-work "flat control
// design with multiple controllers that coordinate their actions ...
// each orchestrating different sets of nodes while maintaining global
// visibility" (§VI).
//
// Protocol: K peer controllers each own a disjoint stage set. Every
// cycle, each peer (1) collects from its own stages, (2) publishes a
// compact per-job demand summary to all peers, (3) merges every peer's
// summary — including its own — into the global demand picture and runs
// the control algorithm on it *deterministically*, and (4) enforces the
// resulting allocations on its own stages only.
//
// Because all peers run the same deterministic algorithm on the same
// merged input (summaries are merged in ascending peer-id order), they
// reach identical global allocations with no further coordination — one
// summary exchange round replaces a central controller.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/policy_table.h"
#include "core/registry.h"
#include "policy/algorithm.h"
#include "policy/psfa.h"
#include "policy/splitter.h"
#include "proto/messages.h"

namespace sds::core {

class CoordinatedControllerCore {
 public:
  CoordinatedControllerCore(
      ControllerId id, Budgets budgets,
      std::unique_ptr<policy::ControlAlgorithm> algorithm = nullptr);

  [[nodiscard]] ControllerId id() const { return id_; }
  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] PolicyTable& policies() { return policies_; }

  /// Phase 2: build this peer's demand summary from its own stages.
  /// (Reuses AggregatedMetrics: it is exactly a per-job summary.)
  [[nodiscard]] proto::AggregatedMetrics summarize(
      std::uint64_t cycle_id, std::span<const proto::StageMetrics> metrics) const;

  /// Phases 3+4: merge all summaries (callers must pass every peer's,
  /// including this one's) and compute rules for OWN stages only.
  /// `local_metrics` supplies per-stage demand for proportional splitting.
  [[nodiscard]] std::vector<proto::Rule> compute_own_rules(
      std::uint64_t cycle_id,
      std::span<const proto::AggregatedMetrics> all_summaries,
      std::span<const proto::StageMetrics> local_metrics) const;

 private:
  ControllerId id_;
  std::unique_ptr<policy::ControlAlgorithm> algorithm_;
  policy::RuleSplitter splitter_;
  Registry registry_;
  PolicyTable policies_;
};

}  // namespace sds::core
