// MetricsStore — columnar (struct-of-arrays) storage for per-stage
// metrics, keyed by dense stage index.
//
// The collect→compute hot path at 100k–1M stages is dominated by
// per-message decode + allocate + full re-merge work. The store removes
// it: stages are bound once to contiguous column slots, and every
// subsequent report — full StageMetrics frame or StageMetricsDelta —
// updates the columns in place with no allocation once warm.
//
// Two views per metric column:
//   * reported  — the exact last-reported value (IEEE bit pattern
//                 preserved). This is the delta-chain base: a
//                 StageMetricsDelta applies on top of it and must
//                 reproduce the sender's value bit-for-bit.
//   * compute   — what the control algorithm reads. It follows the
//                 reported value only when the move exceeds
//                 `activity_threshold` (ops/s), so metric jitter below
//                 the threshold never dirties a job. With threshold 0
//                 the views are numerically identical.
// Splitting the views is what makes incremental PSFA bit-identical to a
// full recompute at ANY threshold: both read the same compute view, so
// thresholding changes which cycles recompute, never what they compute.
//
// Dirty tracking is per stage: a slot whose compute view moved joins the
// dirty list exactly once per drain. `drain_dirty` returns indices
// sorted ascending so downstream consumers (incremental demand re-sums,
// FP-order-sensitive) are deterministic regardless of arrival order —
// the property the lane-sharded simulator relies on.
//
// Not thread-safe; callers serialize (the live global server holds its
// own mutex, the simulator is single-threaded per lane).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "proto/messages.h"

namespace sds::core {

/// Outcome of folding one StageMetricsDelta into the store.
enum class DeltaStatus {
  kApplied,
  /// No slot for the stage (never bound / no index hint).
  kUnknownStage,
  /// delta.cycle_id <= the slot's last applied cycle: a duplicate or
  /// out-of-order frame (e.g. a ChaosNetwork re-delivery). Dropped.
  kDuplicate,
  /// delta.base_cycle_id != the slot's last applied cycle: the chain
  /// broke (a lost report). The sender must refresh with a full frame.
  kBaseMismatch,
};

struct MetricsStoreOptions {
  /// Compute-view update threshold (ops/s): a reported move of at most
  /// this magnitude leaves the compute view (and the dirty set)
  /// untouched. 0 = follow every numeric change.
  double activity_threshold = 0.0;
};

class MetricsStore {
 public:
  static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

  explicit MetricsStore(MetricsStoreOptions options = {})
      : options_(options) {}

  /// Drop all slots (topology change); bumps the structure epoch so
  /// consumers caching per-slot state rebuild.
  void reset(std::size_t expected_stages = 0);

  /// Bind a stage to a dense slot (idempotent; returns the slot index).
  /// Binding is the cold path — do it at registration, not per cycle.
  std::uint32_t bind(StageId stage, JobId job);

  [[nodiscard]] std::uint32_t index_of(StageId stage) const {
    const auto it = index_.find(stage.value());
    return it == index_.end() ? kInvalidIndex : it->second;
  }

  /// Fold a full frame into the stage's slot. Reports older than the
  /// slot's last applied cycle are dropped (duplicate / out-of-order).
  /// Returns the slot index, or kInvalidIndex for an unbound stage.
  std::uint32_t update(const proto::StageMetrics& m);
  /// Same, with the slot already resolved (skips the id lookup).
  void update_at(std::uint32_t index, const proto::StageMetrics& m);

  /// Fold a delta into the stage's slot. `conn_hint` names the slot for
  /// deltas that omit the stage id (per-stage connections); a delta
  /// carrying an explicit stage id wins over the hint.
  DeltaStatus apply_delta(const proto::StageMetricsDelta& d,
                          std::uint32_t conn_hint = kInvalidIndex);

  /// Reconstruct the last-reported StageMetrics for a slot (refresh /
  /// debugging; not on the hot path).
  [[nodiscard]] proto::StageMetrics reported(std::uint32_t index) const;

  [[nodiscard]] std::size_t size() const { return stage_ids_.size(); }
  [[nodiscard]] bool empty() const { return stage_ids_.empty(); }
  /// Bumped by reset() and every new bind(): consumers caching per-slot
  /// derived state compare it to detect structural change.
  [[nodiscard]] std::uint64_t structure_epoch() const {
    return structure_epoch_;
  }

  // Columns (all size() long, indexed by slot).
  [[nodiscard]] std::span<const StageId> stage_ids() const {
    return stage_ids_;
  }
  [[nodiscard]] std::span<const JobId> job_ids() const { return job_ids_; }
  [[nodiscard]] std::span<const double> data_iops() const {
    return view_data_iops_;
  }
  [[nodiscard]] std::span<const double> meta_iops() const {
    return view_meta_iops_;
  }
  [[nodiscard]] std::span<const std::uint64_t> last_cycle() const {
    return last_cycle_;
  }

  [[nodiscard]] bool any_dirty() const { return !dirty_list_.empty(); }
  /// Move the dirty slot set into `out`, sorted ascending, and clear it.
  void drain_dirty(std::vector<std::uint32_t>& out);
  /// Clear the dirty set without consuming it (full-recompute ablation).
  void clear_dirty();

  struct Counters {
    std::uint64_t full_updates = 0;
    std::uint64_t stale_full_frames = 0;
    std::uint64_t deltas_applied = 0;
    std::uint64_t deltas_duplicate = 0;
    std::uint64_t deltas_base_mismatch = 0;
    std::uint64_t deltas_unknown_stage = 0;
    std::uint64_t view_updates = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  void fold(std::uint32_t i, std::uint64_t cycle, double data_iops,
            double meta_iops, double data_limit, double meta_limit);
  void mark_dirty(std::uint32_t i);

  MetricsStoreOptions options_;
  std::unordered_map<std::uint32_t, std::uint32_t> index_;
  std::vector<StageId> stage_ids_;
  std::vector<JobId> job_ids_;
  // Reported columns: exact last report (delta-chain base).
  std::vector<double> rep_data_iops_;
  std::vector<double> rep_meta_iops_;
  std::vector<double> rep_data_limit_;
  std::vector<double> rep_meta_limit_;
  std::vector<std::uint64_t> last_cycle_;
  // Compute-view columns (threshold-gated).
  std::vector<double> view_data_iops_;
  std::vector<double> view_meta_iops_;
  std::vector<std::uint8_t> dirty_;
  std::vector<std::uint32_t> dirty_list_;
  std::uint64_t structure_epoch_ = 0;
  Counters counters_;
};

}  // namespace sds::core
