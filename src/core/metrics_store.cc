#include "core/metrics_store.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace sds::core {

void MetricsStore::reset(std::size_t expected_stages) {
  index_.clear();
  stage_ids_.clear();
  job_ids_.clear();
  rep_data_iops_.clear();
  rep_meta_iops_.clear();
  rep_data_limit_.clear();
  rep_meta_limit_.clear();
  last_cycle_.clear();
  view_data_iops_.clear();
  view_meta_iops_.clear();
  dirty_.clear();
  dirty_list_.clear();
  if (expected_stages > 0) {
    index_.reserve(expected_stages);
    stage_ids_.reserve(expected_stages);
    job_ids_.reserve(expected_stages);
    rep_data_iops_.reserve(expected_stages);
    rep_meta_iops_.reserve(expected_stages);
    rep_data_limit_.reserve(expected_stages);
    rep_meta_limit_.reserve(expected_stages);
    last_cycle_.reserve(expected_stages);
    view_data_iops_.reserve(expected_stages);
    view_meta_iops_.reserve(expected_stages);
    dirty_.reserve(expected_stages);
    dirty_list_.reserve(expected_stages);
  }
  ++structure_epoch_;
}

std::uint32_t MetricsStore::bind(StageId stage, JobId job) {
  const auto [it, inserted] =
      index_.try_emplace(stage.value(), static_cast<std::uint32_t>(size()));
  if (!inserted) return it->second;
  stage_ids_.push_back(stage);
  job_ids_.push_back(job);
  rep_data_iops_.push_back(0.0);
  rep_meta_iops_.push_back(0.0);
  rep_data_limit_.push_back(proto::kUnlimited);
  rep_meta_limit_.push_back(proto::kUnlimited);
  last_cycle_.push_back(0);
  view_data_iops_.push_back(0.0);
  view_meta_iops_.push_back(0.0);
  dirty_.push_back(0);
  // A slot just bound should be visible to the next incremental compute
  // even if its first report is all zeros.
  dirty_list_.push_back(it->second);
  dirty_.back() = 1;
  ++structure_epoch_;
  return it->second;
}

// sdslint: hotpath — per-report store updates; no heap allocation once
// the dirty list's capacity is warm (reserved at reset/bind).

void MetricsStore::mark_dirty(std::uint32_t i) {
  if (dirty_[i] != 0) return;
  dirty_[i] = 1;
  dirty_list_.push_back(i);
}

void MetricsStore::fold(std::uint32_t i, std::uint64_t cycle,
                        double data_iops, double meta_iops, double data_limit,
                        double meta_limit) {
  rep_data_iops_[i] = data_iops;
  rep_meta_iops_[i] = meta_iops;
  rep_data_limit_[i] = data_limit;
  rep_meta_limit_[i] = meta_limit;
  last_cycle_[i] = cycle;
  const double threshold = options_.activity_threshold;
  bool moved = false;
  if (std::abs(data_iops - view_data_iops_[i]) > threshold) {
    view_data_iops_[i] = data_iops;
    moved = true;
  }
  if (std::abs(meta_iops - view_meta_iops_[i]) > threshold) {
    view_meta_iops_[i] = meta_iops;
    moved = true;
  }
  if (moved) {
    ++counters_.view_updates;
    mark_dirty(i);
  }
}

std::uint32_t MetricsStore::update(const proto::StageMetrics& m) {
  const std::uint32_t i = index_of(m.stage_id);
  if (i == kInvalidIndex) return kInvalidIndex;
  update_at(i, m);
  return i;
}

void MetricsStore::update_at(std::uint32_t index,
                             const proto::StageMetrics& m) {
  if (m.cycle_id < last_cycle_[index]) {
    ++counters_.stale_full_frames;
    return;
  }
  ++counters_.full_updates;
  fold(index, m.cycle_id, m.data_iops, m.meta_iops, m.data_limit,
       m.meta_limit);
}

DeltaStatus MetricsStore::apply_delta(const proto::StageMetricsDelta& d,
                                      std::uint32_t conn_hint) {
  std::uint32_t i = conn_hint;
  if (d.stage_id.has_value()) i = index_of(*d.stage_id);
  if (i == kInvalidIndex || i >= size()) {
    ++counters_.deltas_unknown_stage;
    return DeltaStatus::kUnknownStage;
  }
  if (d.cycle_id <= last_cycle_[i]) {
    ++counters_.deltas_duplicate;
    return DeltaStatus::kDuplicate;
  }
  if (d.base_cycle_id != last_cycle_[i]) {
    ++counters_.deltas_base_mismatch;
    return DeltaStatus::kBaseMismatch;
  }
  using Delta = proto::StageMetricsDelta;
  double data_iops = rep_data_iops_[i];
  double meta_iops = rep_meta_iops_[i];
  double data_limit = rep_data_limit_[i];
  double meta_limit = rep_meta_limit_[i];
  if ((d.fields & Delta::kDataIops) != 0) {
    data_iops = std::bit_cast<double>(std::bit_cast<std::uint64_t>(data_iops) +
                                      d.deltas[0]);
  }
  if ((d.fields & Delta::kMetaIops) != 0) {
    meta_iops = std::bit_cast<double>(std::bit_cast<std::uint64_t>(meta_iops) +
                                      d.deltas[1]);
  }
  if ((d.fields & Delta::kDataLimit) != 0) {
    data_limit = std::bit_cast<double>(
        std::bit_cast<std::uint64_t>(data_limit) + d.deltas[2]);
  }
  if ((d.fields & Delta::kMetaLimit) != 0) {
    meta_limit = std::bit_cast<double>(
        std::bit_cast<std::uint64_t>(meta_limit) + d.deltas[3]);
  }
  ++counters_.deltas_applied;
  fold(i, d.cycle_id, data_iops, meta_iops, data_limit, meta_limit);
  return DeltaStatus::kApplied;
}

void MetricsStore::drain_dirty(std::vector<std::uint32_t>& out) {
  out.clear();
  std::swap(out, dirty_list_);
  std::sort(out.begin(), out.end());
  for (const std::uint32_t i : out) dirty_[i] = 0;
  if (dirty_list_.capacity() < out.capacity()) {
    // Keep the warm capacity: swap handed our reserved buffer to `out`.
    dirty_list_.reserve(out.capacity());
  }
}

// sdslint: end-hotpath

void MetricsStore::clear_dirty() {
  for (const std::uint32_t i : dirty_list_) dirty_[i] = 0;
  dirty_list_.clear();
}

proto::StageMetrics MetricsStore::reported(std::uint32_t index) const {
  proto::StageMetrics m;
  m.cycle_id = last_cycle_[index];
  m.stage_id = stage_ids_[index];
  m.job_id = job_ids_[index];
  m.data_iops = rep_data_iops_[index];
  m.meta_iops = rep_meta_iops_[index];
  m.data_limit = rep_data_limit_[index];
  m.meta_limit = rep_meta_limit_[index];
  return m;
}

}  // namespace sds::core
