#include "core/registry.h"

#include <algorithm>

namespace sds::core {

Status Registry::add(StageRecord record) {
  const StageId id = record.info.stage_id;
  if (!id.valid()) return Status::invalid_argument("invalid stage id");
  const auto [it, inserted] = records_.try_emplace(id, std::move(record));
  if (!inserted) {
    return Status::already_exists("stage " + std::to_string(id.value()));
  }
  order_.push_back(id);
  ++job_counts_[it->second.info.job_id];
  return Status::ok();
}

Status Registry::remove(StageId stage_id) {
  const auto it = records_.find(stage_id);
  if (it == records_.end()) {
    return Status::not_found("stage " + std::to_string(stage_id.value()));
  }
  const JobId job = it->second.info.job_id;
  if (const auto jc = job_counts_.find(job); jc != job_counts_.end()) {
    if (--jc->second == 0) job_counts_.erase(jc);
  }
  records_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), stage_id), order_.end());
  return Status::ok();
}

const StageRecord* Registry::find(StageId stage_id) const {
  const auto it = records_.find(stage_id);
  return it == records_.end() ? nullptr : &it->second;
}

std::uint32_t Registry::job_stage_count(JobId job) const {
  const auto it = job_counts_.find(job);
  return it == job_counts_.end() ? 0 : it->second;
}

std::vector<JobId> Registry::jobs() const {
  std::vector<JobId> out;
  out.reserve(job_counts_.size());
  std::unordered_map<JobId, bool> seen;
  for (const StageId id : order_) {
    const JobId job = records_.at(id).info.job_id;
    if (!seen[job]) {
      seen[job] = true;
      out.push_back(job);
    }
  }
  return out;
}

std::vector<StageRecord> Registry::evict_via(ControllerId aggregator) {
  std::vector<StageRecord> evicted;
  std::vector<StageId> to_remove;
  for (const StageId id : order_) {
    const auto& record = records_.at(id);
    if (record.via == aggregator) {
      evicted.push_back(record);
      to_remove.push_back(id);
    }
  }
  for (const StageId id : to_remove) (void)remove(id);
  return evicted;
}

}  // namespace sds::core
