#include "core/global.h"

#include <algorithm>
#include <cassert>

namespace sds::core {

namespace {

/// Accumulates per-job demand while preserving first-seen order so that
/// results are deterministic regardless of map iteration order.
class DemandBuilder {
 public:
  explicit DemandBuilder(const PolicyTable& policies) : policies_(&policies) {}

  void add(JobId job, double data, double meta) {
    const auto [it, inserted] = index_.try_emplace(job, data_.size());
    if (inserted) {
      data_.push_back({job, 0.0, policies_->weight(job)});
      meta_.push_back({job, 0.0, policies_->weight(job)});
    }
    data_[it->second].demand += std::max(data, 0.0);
    meta_[it->second].demand += std::max(meta, 0.0);
  }

  std::vector<policy::JobDemand> take_data() { return std::move(data_); }
  std::vector<policy::JobDemand> take_meta() { return std::move(meta_); }

 private:
  const PolicyTable* policies_;
  std::unordered_map<JobId, std::size_t> index_;
  std::vector<policy::JobDemand> data_;
  std::vector<policy::JobDemand> meta_;
};

}  // namespace

GlobalControllerCore::GlobalControllerCore(
    GlobalOptions options, std::unique_ptr<policy::ControlAlgorithm> algorithm)
    : options_(options),
      algorithm_(algorithm ? std::move(algorithm)
                           : std::make_unique<policy::Psfa>()),
      splitter_(options.split),
      policies_(options.budgets) {}

proto::CollectRequest GlobalControllerCore::begin_cycle() {
  ++cycle_;
  proto::CollectRequest req;
  req.cycle_id = cycle_;
  req.detailed = false;
  return req;
}

std::uint64_t GlobalControllerCore::rule_epoch() const {
  // 24 bits of controller epoch above 40 bits of cycle counter: a newer
  // controller incarnation always outranks any cycle of an older one.
  return (static_cast<std::uint64_t>(options_.epoch) << 40) |
         (cycle_ & ((1ULL << 40) - 1));
}

void GlobalControllerCore::advance_epoch() { ++options_.epoch; }

ComputeResult GlobalControllerCore::compute(
    std::span<const proto::StageMetrics> metrics) const {
  DemandBuilder demands(policies_);
  for (const auto& m : metrics) demands.add(m.job_id, m.data_iops, m.meta_iops);
  return compute_from_job_demands(demands.take_data(), demands.take_meta(),
                                  metrics);
}

ComputeResult GlobalControllerCore::compute(
    std::span<const proto::AggregatedMetrics> aggregated) const {
  DemandBuilder demands(policies_);
  for (const auto& agg : aggregated) {
    for (const auto& job : agg.jobs) {
      demands.add(job.job_id, job.data_iops, job.meta_iops);
    }
  }

  // When every report carries per-stage digests, reconstruct the stage
  // detail so rules can be split proportionally to demand, as in the
  // flat design. Job identity comes from the registry.
  std::vector<proto::StageMetrics> detail;
  bool digests_complete = !aggregated.empty();
  for (const auto& agg : aggregated) {
    if (agg.digests.size() != agg.total_stages) {
      digests_complete = false;
      break;
    }
  }
  if (digests_complete) {
    for (const auto& agg : aggregated) {
      for (const auto& digest : agg.digests) {
        const StageRecord* record = registry_.find(digest.stage_id);
        if (record == nullptr) continue;  // departed since the collect
        proto::StageMetrics m;
        m.stage_id = digest.stage_id;
        m.job_id = record->info.job_id;
        m.data_iops = digest.data_iops;
        m.meta_iops = digest.meta_iops;
        detail.push_back(m);
      }
    }
  }
  return compute_from_job_demands(demands.take_data(), demands.take_meta(),
                                  detail);
}

ComputeResult GlobalControllerCore::compute_from_job_demands(
    std::vector<policy::JobDemand> data_demands,
    std::vector<policy::JobDemand> meta_demands,
    std::span<const proto::StageMetrics> stage_detail) const {
  ComputeResult result;
  algorithm_->compute(data_demands, policies_.budgets().data_iops,
                      result.data_allocations);
  algorithm_->compute(meta_demands, policies_.budgets().meta_iops,
                      result.meta_allocations);

  const std::uint64_t epoch = rule_epoch();

  if (!stage_detail.empty()) {
    // Flat path: split each dimension by observed per-stage demand.
    std::vector<policy::StageDemand> data_stage;
    std::vector<policy::StageDemand> meta_stage;
    data_stage.reserve(stage_detail.size());
    meta_stage.reserve(stage_detail.size());
    for (const auto& m : stage_detail) {
      data_stage.push_back({m.stage_id, m.job_id, m.data_iops});
      meta_stage.push_back({m.stage_id, m.job_id, m.meta_iops});
    }
    std::vector<policy::StageLimit> data_limits;
    std::vector<policy::StageLimit> meta_limits;
    splitter_.split(result.data_allocations, data_stage, data_limits);
    splitter_.split(result.meta_allocations, meta_stage, meta_limits);
    assert(data_limits.size() == stage_detail.size());
    assert(meta_limits.size() == stage_detail.size());

    result.rules.reserve(stage_detail.size());
    for (std::size_t i = 0; i < stage_detail.size(); ++i) {
      proto::Rule rule;
      rule.stage_id = stage_detail[i].stage_id;
      rule.job_id = stage_detail[i].job_id;
      rule.data_iops_limit = data_limits[i].limit;
      rule.meta_iops_limit = meta_limits[i].limit;
      rule.epoch = epoch;
      result.rules.push_back(rule);
    }
    return result;
  }

  // Hierarchical path: uniform split over each job's registered stages.
  std::unordered_map<JobId, std::pair<double, double>> per_stage_share;
  per_stage_share.reserve(result.data_allocations.size());
  for (std::size_t i = 0; i < result.data_allocations.size(); ++i) {
    const JobId job = result.data_allocations[i].job_id;
    const auto count = registry_.job_stage_count(job);
    if (count == 0) continue;
    per_stage_share[job] = {
        result.data_allocations[i].allocation / count,
        result.meta_allocations[i].allocation / count,
    };
  }

  result.rules.reserve(registry_.size());
  registry_.for_each([&](const StageRecord& record) {
    const auto it = per_stage_share.find(record.info.job_id);
    if (it == per_stage_share.end()) return;  // job idle this cycle
    proto::Rule rule;
    rule.stage_id = record.info.stage_id;
    rule.job_id = record.info.job_id;
    rule.data_iops_limit = it->second.first;
    rule.meta_iops_limit = it->second.second;
    rule.epoch = epoch;
    result.rules.push_back(rule);
  });
  return result;
}

std::unordered_map<ControllerId, proto::EnforceBatch>
GlobalControllerCore::group_rules(const ComputeResult& result) const {
  std::unordered_map<ControllerId, proto::EnforceBatch> batches;
  for (const auto& rule : result.rules) {
    const StageRecord* record = registry_.find(rule.stage_id);
    const ControllerId via = record ? record->via : ControllerId::invalid();
    auto& batch = batches[via];
    batch.cycle_id = cycle_;
    batch.rules.push_back(rule);
  }
  return batches;
}

}  // namespace sds::core
