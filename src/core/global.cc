#include "core/global.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace sds::core {

namespace {

/// Accumulates per-job demand while preserving first-seen order so that
/// results are deterministic regardless of map iteration order.
class DemandBuilder {
 public:
  explicit DemandBuilder(const PolicyTable& policies) : policies_(&policies) {}

  void add(JobId job, double data, double meta) {
    const auto [it, inserted] = index_.try_emplace(job, data_.size());
    if (inserted) {
      data_.push_back({job, 0.0, policies_->weight(job)});
      meta_.push_back({job, 0.0, policies_->weight(job)});
    }
    data_[it->second].demand += std::max(data, 0.0);
    meta_[it->second].demand += std::max(meta, 0.0);
  }

  std::vector<policy::JobDemand> take_data() { return std::move(data_); }
  std::vector<policy::JobDemand> take_meta() { return std::move(meta_); }

 private:
  const PolicyTable* policies_;
  std::unordered_map<JobId, std::size_t> index_;
  std::vector<policy::JobDemand> data_;
  std::vector<policy::JobDemand> meta_;
};

}  // namespace

GlobalControllerCore::GlobalControllerCore(
    GlobalOptions options, std::unique_ptr<policy::ControlAlgorithm> algorithm)
    : options_(options),
      algorithm_(algorithm ? std::move(algorithm)
                           : std::make_unique<policy::Psfa>()),
      splitter_(options.split),
      policies_(options.budgets) {}

proto::CollectRequest GlobalControllerCore::begin_cycle() {
  ++cycle_;
  proto::CollectRequest req;
  req.cycle_id = cycle_;
  req.detailed = false;
  return req;
}

std::uint64_t GlobalControllerCore::rule_epoch() const {
  // 24 bits of controller epoch above 40 bits of cycle counter: a newer
  // controller incarnation always outranks any cycle of an older one.
  return (static_cast<std::uint64_t>(options_.epoch) << 40) |
         (cycle_ & ((1ULL << 40) - 1));
}

void GlobalControllerCore::advance_epoch() { ++options_.epoch; }

ComputeResult GlobalControllerCore::compute(
    std::span<const proto::StageMetrics> metrics) const {
  DemandBuilder demands(policies_);
  for (const auto& m : metrics) demands.add(m.job_id, m.data_iops, m.meta_iops);
  return compute_from_job_demands(demands.take_data(), demands.take_meta(),
                                  metrics);
}

ComputeResult GlobalControllerCore::compute(
    std::span<const proto::AggregatedMetrics> aggregated) const {
  DemandBuilder demands(policies_);
  for (const auto& agg : aggregated) {
    for (const auto& job : agg.jobs) {
      demands.add(job.job_id, job.data_iops, job.meta_iops);
    }
  }

  // When every report carries per-stage digests, reconstruct the stage
  // detail so rules can be split proportionally to demand, as in the
  // flat design. Job identity comes from the registry.
  std::vector<proto::StageMetrics> detail;
  bool digests_complete = !aggregated.empty();
  for (const auto& agg : aggregated) {
    if (agg.digests.size() != agg.total_stages) {
      digests_complete = false;
      break;
    }
  }
  if (digests_complete) {
    for (const auto& agg : aggregated) {
      for (const auto& digest : agg.digests) {
        const StageRecord* record = registry_.find(digest.stage_id);
        if (record == nullptr) continue;  // departed since the collect
        proto::StageMetrics m;
        m.stage_id = digest.stage_id;
        m.job_id = record->info.job_id;
        m.data_iops = digest.data_iops;
        m.meta_iops = digest.meta_iops;
        detail.push_back(m);
      }
    }
  }
  return compute_from_job_demands(demands.take_data(), demands.take_meta(),
                                  detail);
}

ComputeResult GlobalControllerCore::compute_from_job_demands(
    std::vector<policy::JobDemand> data_demands,
    std::vector<policy::JobDemand> meta_demands,
    std::span<const proto::StageMetrics> stage_detail) const {
  ComputeResult result;
  algorithm_->compute(data_demands, policies_.budgets().data_iops,
                      result.data_allocations);
  algorithm_->compute(meta_demands, policies_.budgets().meta_iops,
                      result.meta_allocations);

  const std::uint64_t epoch = rule_epoch();

  if (!stage_detail.empty()) {
    // Flat path: split each dimension by observed per-stage demand.
    std::vector<policy::StageDemand> data_stage;
    std::vector<policy::StageDemand> meta_stage;
    data_stage.reserve(stage_detail.size());
    meta_stage.reserve(stage_detail.size());
    for (const auto& m : stage_detail) {
      data_stage.push_back({m.stage_id, m.job_id, m.data_iops});
      meta_stage.push_back({m.stage_id, m.job_id, m.meta_iops});
    }
    std::vector<policy::StageLimit> data_limits;
    std::vector<policy::StageLimit> meta_limits;
    splitter_.split(result.data_allocations, data_stage, data_limits);
    splitter_.split(result.meta_allocations, meta_stage, meta_limits);
    assert(data_limits.size() == stage_detail.size());
    assert(meta_limits.size() == stage_detail.size());

    result.rules.reserve(stage_detail.size());
    for (std::size_t i = 0; i < stage_detail.size(); ++i) {
      proto::Rule rule;
      rule.stage_id = stage_detail[i].stage_id;
      rule.job_id = stage_detail[i].job_id;
      rule.data_iops_limit = data_limits[i].limit;
      rule.meta_iops_limit = meta_limits[i].limit;
      rule.epoch = epoch;
      result.rules.push_back(rule);
    }
    return result;
  }

  // Hierarchical path: uniform split over each job's registered stages.
  std::unordered_map<JobId, std::pair<double, double>> per_stage_share;
  per_stage_share.reserve(result.data_allocations.size());
  for (std::size_t i = 0; i < result.data_allocations.size(); ++i) {
    const JobId job = result.data_allocations[i].job_id;
    const auto count = registry_.job_stage_count(job);
    if (count == 0) continue;
    per_stage_share[job] = {
        result.data_allocations[i].allocation / count,
        result.meta_allocations[i].allocation / count,
    };
  }

  result.rules.reserve(registry_.size());
  registry_.for_each([&](const StageRecord& record) {
    const auto it = per_stage_share.find(record.info.job_id);
    if (it == per_stage_share.end()) return;  // job idle this cycle
    proto::Rule rule;
    rule.stage_id = record.info.stage_id;
    rule.job_id = record.info.job_id;
    rule.data_iops_limit = it->second.first;
    rule.meta_iops_limit = it->second.second;
    rule.epoch = epoch;
    result.rules.push_back(rule);
  });
  return result;
}

void GlobalControllerCore::rebuild_store_state(const MetricsStore& store) {
  StoreState& st = store_state_;
  const std::size_t n = store.size();
  st.valid = true;
  st.structure_epoch = store.structure_epoch();
  st.job_of_stage.assign(n, 0);
  st.stages_of_job.clear();
  st.data_demands.clear();
  st.meta_demands.clear();
  const auto jobs = store.job_ids();
  const auto stages = store.stage_ids();
  // Job slots in ascending stage-slot first-seen order: exactly the
  // order DemandBuilder produces for slot-ordered input, so algorithm
  // inputs (and FP demand sums) match the batch path bit-for-bit.
  std::unordered_map<JobId, std::uint32_t> job_index;
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto [it, inserted] = job_index.try_emplace(
        jobs[i], static_cast<std::uint32_t>(st.data_demands.size()));
    if (inserted) {
      const double w = policies_.weight(jobs[i]);
      st.data_demands.push_back({jobs[i], 0.0, w});
      st.meta_demands.push_back({jobs[i], 0.0, w});
      st.stages_of_job.emplace_back();
    }
    st.job_of_stage[i] = it->second;
    st.stages_of_job[it->second].push_back(i);
  }
  const std::size_t num_jobs = st.data_demands.size();
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  st.prev_data_alloc.assign(num_jobs, kNan);
  st.prev_meta_alloc.assign(num_jobs, kNan);
  st.job_dirty.assign(num_jobs, 0);
  st.dirty_jobs.clear();
  st.dirty_jobs.reserve(num_jobs);
  st.dirty_stages.clear();
  st.dirty_stages.reserve(n);
  st.budgets = policies_.budgets();
  st.result.rules.assign(n, proto::Rule{});
  for (std::uint32_t i = 0; i < n; ++i) {
    st.result.rules[i].stage_id = stages[i];
    st.result.rules[i].job_id = jobs[i];
  }
  st.result.data_allocations.clear();
  st.result.meta_allocations.clear();
}

const ComputeResult& GlobalControllerCore::compute_from_store(
    MetricsStore& store, bool full_recompute) {
  if (!store_state_.valid ||
      store_state_.structure_epoch != store.structure_epoch()) {
    rebuild_store_state(store);
    full_recompute = true;
  }
  StoreState& st = store_state_;
  const std::size_t num_jobs = st.data_demands.size();
  ++store_stats_.cycles;

  // sdslint: hotpath — incremental compute; every container below was
  // sized at rebuild, so steady-state cycles allocate nothing.

  // 1. Administrative input movement (budgets, QoS weights) forces the
  //    algorithm to re-run even when no demand moved.
  bool algo_forced = full_recompute;
  const Budgets& budgets = policies_.budgets();
  if (budgets.data_iops != st.budgets.data_iops ||
      budgets.meta_iops != st.budgets.meta_iops) {
    st.budgets = budgets;
    algo_forced = true;
  }
  for (std::size_t j = 0; j < num_jobs; ++j) {
    const double w = policies_.weight(st.data_demands[j].job_id);
    if (w != st.data_demands[j].weight) {
      st.data_demands[j].weight = w;
      st.meta_demands[j].weight = w;
      algo_forced = true;
    }
  }

  // 2. Dirty stages → dirty jobs.
  store.drain_dirty(st.dirty_stages);
  st.dirty_jobs.clear();
  const auto mark_job = [&st](std::uint32_t j) {
    if (st.job_dirty[j] == 0) {
      st.job_dirty[j] = 1;
      st.dirty_jobs.push_back(j);
    }
  };
  if (full_recompute) {
    for (std::uint32_t j = 0; j < num_jobs; ++j) mark_job(j);
  } else {
    for (const std::uint32_t i : st.dirty_stages) {
      mark_job(st.job_of_stage[i]);
    }
  }

  // 3. Re-sum dirty jobs' demands — a fresh ascending-order sum over
  //    the job's member stages, not a running adjustment, so the value
  //    is bit-identical to a from-scratch pass at any time.
  const auto view_data = store.data_iops();
  const auto view_meta = store.meta_iops();
  bool demand_moved = false;
  for (const std::uint32_t j : st.dirty_jobs) {
    double data_sum = 0;
    double meta_sum = 0;
    for (const std::uint32_t i : st.stages_of_job[j]) {
      data_sum += std::max(view_data[i], 0.0);
      meta_sum += std::max(view_meta[i], 0.0);
    }
    if (data_sum != st.data_demands[j].demand) {
      st.data_demands[j].demand = data_sum;
      demand_moved = true;
    }
    if (meta_sum != st.meta_demands[j].demand) {
      st.meta_demands[j].demand = meta_sum;
      demand_moved = true;
    }
    ++store_stats_.jobs_resummed;
  }

  // 4. Water-filling runs only when its inputs could have changed; jobs
  //    whose allocation moved join the re-split set.
  if (algo_forced || demand_moved) {
    algorithm_->compute(st.data_demands, budgets.data_iops,
                        st.result.data_allocations);
    algorithm_->compute(st.meta_demands, budgets.meta_iops,
                        st.result.meta_allocations);
    store_stats_.algorithm_runs += 2;
    for (std::uint32_t j = 0; j < num_jobs; ++j) {
      if (st.result.data_allocations[j].allocation != st.prev_data_alloc[j] ||
          st.result.meta_allocations[j].allocation != st.prev_meta_alloc[j]) {
        mark_job(j);
      }
    }
  }

  // 5. Re-split only the dirty jobs. Per-stage limits replicate
  //    RuleSplitter::split exactly: the job demand sum doubles as the
  //    splitter's demand_sum (same max-clamped ascending sum). Only the
  //    re-split rules get the cycle's epoch: stages accept equal epochs
  //    (VirtualStage / Limiter reject strictly-older only), so an
  //    unchanged rule re-sent with its old stamp still applies — which
  //    keeps the steady-state cycle O(dirty), not O(stages).
  const std::uint64_t epoch = rule_epoch();
  const bool proportional =
      splitter_.strategy() == policy::SplitStrategy::kProportional;
  for (const std::uint32_t j : st.dirty_jobs) {
    const double data_alloc = st.result.data_allocations[j].allocation;
    const double meta_alloc = st.result.meta_allocations[j].allocation;
    const double data_sum = st.data_demands[j].demand;
    const double meta_sum = st.meta_demands[j].demand;
    const auto& members = st.stages_of_job[j];
    const auto stage_count = static_cast<double>(members.size());
    for (const std::uint32_t i : members) {
      proto::Rule& rule = st.result.rules[i];
      rule.data_iops_limit =
          proportional && data_sum > 0
              ? data_alloc * std::max(view_data[i], 0.0) / data_sum
              : data_alloc / stage_count;
      rule.meta_iops_limit =
          proportional && meta_sum > 0
              ? meta_alloc * std::max(view_meta[i], 0.0) / meta_sum
              : meta_alloc / stage_count;
      rule.epoch = epoch;
    }
    st.prev_data_alloc[j] = data_alloc;
    st.prev_meta_alloc[j] = meta_alloc;
    st.job_dirty[j] = 0;
    ++store_stats_.jobs_resplit;
    store_stats_.stages_resplit += members.size();
  }

  // sdslint: end-hotpath
  return st.result;
}

std::unordered_map<ControllerId, proto::EnforceBatch>
GlobalControllerCore::group_rules(const ComputeResult& result) const {
  std::unordered_map<ControllerId, proto::EnforceBatch> batches;
  for (const auto& rule : result.rules) {
    const StageRecord* record = registry_.find(rule.stage_id);
    const ControllerId via = record ? record->via : ControllerId::invalid();
    auto& batch = batches[via];
    batch.cycle_id = cycle_;
    batch.rules.push_back(rule);
  }
  return batches;
}

}  // namespace sds::core
