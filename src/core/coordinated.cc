#include "core/coordinated.h"

#include <algorithm>
#include <unordered_map>

namespace sds::core {

CoordinatedControllerCore::CoordinatedControllerCore(
    ControllerId id, Budgets budgets,
    std::unique_ptr<policy::ControlAlgorithm> algorithm)
    : id_(id),
      algorithm_(algorithm ? std::move(algorithm)
                           : std::make_unique<policy::Psfa>()),
      splitter_(policy::SplitStrategy::kProportional),
      policies_(budgets) {}

proto::AggregatedMetrics CoordinatedControllerCore::summarize(
    std::uint64_t cycle_id, std::span<const proto::StageMetrics> metrics) const {
  proto::AggregatedMetrics out;
  out.cycle_id = cycle_id;
  out.from = id_;
  out.total_stages = static_cast<std::uint32_t>(metrics.size());
  std::unordered_map<JobId, std::size_t> index;
  for (const auto& m : metrics) {
    const auto [it, inserted] = index.try_emplace(m.job_id, out.jobs.size());
    if (inserted) {
      proto::JobMetrics job;
      job.job_id = m.job_id;
      out.jobs.push_back(job);
    }
    auto& job = out.jobs[it->second];
    job.data_iops += std::max(m.data_iops, 0.0);
    job.meta_iops += std::max(m.meta_iops, 0.0);
    ++job.stage_count;
  }
  return out;
}

std::vector<proto::Rule> CoordinatedControllerCore::compute_own_rules(
    std::uint64_t cycle_id,
    std::span<const proto::AggregatedMetrics> all_summaries,
    std::span<const proto::StageMetrics> local_metrics) const {
  // Determinism: merge in ascending peer-id order so every peer sees the
  // same job ordering and therefore computes identical allocations.
  std::vector<const proto::AggregatedMetrics*> ordered;
  ordered.reserve(all_summaries.size());
  for (const auto& s : all_summaries) ordered.push_back(&s);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) { return a->from < b->from; });

  std::unordered_map<JobId, std::size_t> index;
  std::vector<policy::JobDemand> data_demands;
  std::vector<policy::JobDemand> meta_demands;
  std::unordered_map<JobId, std::uint32_t> global_stage_counts;
  for (const auto* summary : ordered) {
    for (const auto& job : summary->jobs) {
      const auto [it, inserted] = index.try_emplace(job.job_id, data_demands.size());
      if (inserted) {
        data_demands.push_back({job.job_id, 0.0, policies_.weight(job.job_id)});
        meta_demands.push_back({job.job_id, 0.0, policies_.weight(job.job_id)});
      }
      data_demands[it->second].demand += job.data_iops;
      meta_demands[it->second].demand += job.meta_iops;
      global_stage_counts[job.job_id] += job.stage_count;
    }
  }

  std::vector<policy::JobAllocation> data_alloc;
  std::vector<policy::JobAllocation> meta_alloc;
  algorithm_->compute(data_demands, policies_.budgets().data_iops, data_alloc);
  algorithm_->compute(meta_demands, policies_.budgets().meta_iops, meta_alloc);

  // Scale the global per-job allocation down to this peer's share: the
  // fraction of the job's global demand observed locally (uniform by
  // stage count when the job is idle).
  std::unordered_map<JobId, std::pair<double, double>> local_share;
  {
    std::unordered_map<JobId, std::pair<double, double>> local_demand;
    std::unordered_map<JobId, std::uint32_t> local_stages;
    for (const auto& m : local_metrics) {
      auto& d = local_demand[m.job_id];
      d.first += std::max(m.data_iops, 0.0);
      d.second += std::max(m.meta_iops, 0.0);
      ++local_stages[m.job_id];
    }
    for (std::size_t i = 0; i < data_alloc.size(); ++i) {
      const JobId job = data_alloc[i].job_id;
      const auto ld = local_demand.find(job);
      if (ld == local_demand.end()) continue;  // job not present locally
      const double global_data = data_demands[i].demand;
      const double global_meta = meta_demands[i].demand;
      const auto total_stages = global_stage_counts[job];
      const double stage_frac =
          total_stages ? static_cast<double>(local_stages[job]) / total_stages : 0.0;
      const double data_frac =
          global_data > 0 ? ld->second.first / global_data : stage_frac;
      const double meta_frac =
          global_meta > 0 ? ld->second.second / global_meta : stage_frac;
      local_share[job] = {data_alloc[i].allocation * data_frac,
                          meta_alloc[i].allocation * meta_frac};
    }
  }

  // Split this peer's job shares across its own stages by demand.
  std::vector<policy::JobAllocation> local_data_alloc;
  std::vector<policy::JobAllocation> local_meta_alloc;
  for (const auto& [job, share] : local_share) {
    local_data_alloc.push_back({job, share.first});
    local_meta_alloc.push_back({job, share.second});
  }
  std::vector<policy::StageDemand> data_stage;
  std::vector<policy::StageDemand> meta_stage;
  for (const auto& m : local_metrics) {
    data_stage.push_back({m.stage_id, m.job_id, m.data_iops});
    meta_stage.push_back({m.stage_id, m.job_id, m.meta_iops});
  }
  std::vector<policy::StageLimit> data_limits;
  std::vector<policy::StageLimit> meta_limits;
  splitter_.split(local_data_alloc, data_stage, data_limits);
  splitter_.split(local_meta_alloc, meta_stage, meta_limits);

  std::vector<proto::Rule> rules;
  rules.reserve(local_metrics.size());
  for (std::size_t i = 0; i < local_metrics.size(); ++i) {
    proto::Rule rule;
    rule.stage_id = local_metrics[i].stage_id;
    rule.job_id = local_metrics[i].job_id;
    rule.data_iops_limit = data_limits[i].limit;
    rule.meta_iops_limit = meta_limits[i].limit;
    rule.epoch = cycle_id;
    rules.push_back(rule);
  }
  return rules;
}

}  // namespace sds::core
