#include "core/aggregator.h"

#include <algorithm>
#include <unordered_map>

namespace sds::core {

AggregatorCore::AggregatorCore(
    AggregatorOptions options,
    std::unique_ptr<policy::ControlAlgorithm> local_algorithm)
    : options_(options),
      algorithm_(local_algorithm ? std::move(local_algorithm)
                                 : std::make_unique<policy::Psfa>()),
      splitter_(policy::SplitStrategy::kProportional),
      store_(MetricsStoreOptions{options.activity_threshold}) {}

proto::AggregatedMetrics AggregatorCore::aggregate(
    std::uint64_t cycle_id, std::span<const proto::StageMetrics> metrics) const {
  proto::AggregatedMetrics out;
  out.cycle_id = cycle_id;
  out.from = options_.id;
  out.total_stages = static_cast<std::uint32_t>(metrics.size());

  std::unordered_map<JobId, std::size_t> index;
  for (const auto& m : metrics) {
    const auto [it, inserted] = index.try_emplace(m.job_id, out.jobs.size());
    if (inserted) {
      proto::JobMetrics job;
      job.job_id = m.job_id;
      out.jobs.push_back(job);
    }
    auto& job = out.jobs[it->second];
    job.data_iops += std::max(m.data_iops, 0.0);
    job.meta_iops += std::max(m.meta_iops, 0.0);
    ++job.stage_count;
  }
  if (options_.include_digests) {
    out.digests.reserve(metrics.size());
    for (const auto& m : metrics) {
      proto::StageDigest digest;
      digest.stage_id = m.stage_id;
      digest.data_iops = static_cast<float>(std::max(m.data_iops, 0.0));
      digest.meta_iops = static_cast<float>(std::max(m.meta_iops, 0.0));
      out.digests.push_back(digest);
    }
  }
  return out;
}

proto::MetricsBatch AggregatorCore::passthrough(
    std::uint64_t cycle_id, std::span<const proto::StageMetrics> metrics) const {
  proto::MetricsBatch out;
  out.cycle_id = cycle_id;
  out.from = options_.id;
  out.entries.assign(metrics.begin(), metrics.end());
  return out;
}

void AggregatorCore::rebuild_store_state() {
  StoreState& st = store_state_;
  const std::size_t n = store_.size();
  st.valid = true;
  st.structure_epoch = store_.structure_epoch();
  st.job_of_stage.assign(n, 0);
  st.stages_of_job.clear();
  st.out.jobs.clear();
  st.out.digests.clear();
  const auto jobs = store_.job_ids();
  const auto stages = store_.stage_ids();
  std::unordered_map<JobId, std::uint32_t> job_index;
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto [it, inserted] = job_index.try_emplace(
        jobs[i], static_cast<std::uint32_t>(st.out.jobs.size()));
    if (inserted) {
      proto::JobMetrics job;
      job.job_id = jobs[i];
      st.out.jobs.push_back(job);
      st.stages_of_job.emplace_back();
    }
    st.job_of_stage[i] = it->second;
    st.stages_of_job[it->second].push_back(i);
  }
  for (std::uint32_t j = 0; j < st.out.jobs.size(); ++j) {
    st.out.jobs[j].stage_count =
        static_cast<std::uint32_t>(st.stages_of_job[j].size());
  }
  if (options_.include_digests) {
    st.out.digests.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      st.out.digests[i].stage_id = stages[i];
    }
  }
  st.job_dirty.assign(st.out.jobs.size(), 0);
  st.dirty_jobs.clear();
  st.dirty_jobs.reserve(st.out.jobs.size());
  st.dirty_stages.clear();
  st.dirty_stages.reserve(n);
  st.out.from = options_.id;
  st.out.total_stages = static_cast<std::uint32_t>(n);
  // First call after a rebuild re-sums everything.
  for (std::uint32_t j = 0; j < st.out.jobs.size(); ++j) {
    st.job_dirty[j] = 1;
    st.dirty_jobs.push_back(j);
  }
}

const proto::AggregatedMetrics& AggregatorCore::aggregate_from_store(
    std::uint64_t cycle_id) {
  const bool rebuilt = !store_state_.valid ||
                       store_state_.structure_epoch != store_.structure_epoch();
  if (rebuilt) rebuild_store_state();
  StoreState& st = store_state_;
  st.out.cycle_id = cycle_id;

  // sdslint: hotpath — steady-state summary refresh; all buffers were
  // sized at rebuild, so nothing here allocates once warm.
  store_.drain_dirty(st.dirty_stages);
  if (!rebuilt) {
    st.dirty_jobs.clear();
    for (const std::uint32_t i : st.dirty_stages) {
      const std::uint32_t j = st.job_of_stage[i];
      if (st.job_dirty[j] == 0) {
        st.job_dirty[j] = 1;
        st.dirty_jobs.push_back(j);
      }
    }
  }

  const auto view_data = store_.data_iops();
  const auto view_meta = store_.meta_iops();
  for (const std::uint32_t j : st.dirty_jobs) {
    double data_sum = 0;
    double meta_sum = 0;
    for (const std::uint32_t i : st.stages_of_job[j]) {
      data_sum += std::max(view_data[i], 0.0);
      meta_sum += std::max(view_meta[i], 0.0);
    }
    st.out.jobs[j].data_iops = data_sum;
    st.out.jobs[j].meta_iops = meta_sum;
    st.job_dirty[j] = 0;
  }
  if (options_.include_digests) {
    if (rebuilt) {
      for (std::uint32_t i = 0; i < store_.size(); ++i) {
        st.out.digests[i].data_iops =
            static_cast<float>(std::max(view_data[i], 0.0));
        st.out.digests[i].meta_iops =
            static_cast<float>(std::max(view_meta[i], 0.0));
      }
    } else {
      for (const std::uint32_t i : st.dirty_stages) {
        st.out.digests[i].data_iops =
            static_cast<float>(std::max(view_data[i], 0.0));
        st.out.digests[i].meta_iops =
            static_cast<float>(std::max(view_meta[i], 0.0));
      }
    }
  }
  // sdslint: end-hotpath
  return st.out;
}

AggregatorCore::RoutedRules AggregatorCore::route(
    const proto::EnforceBatch& batch) const {
  RoutedRules routed;
  routed.owned.reserve(batch.rules.size());
  for (const auto& rule : batch.rules) {
    if (registry_.contains(rule.stage_id)) {
      routed.owned.push_back(rule);
    } else {
      routed.unknown.push_back(rule);
    }
  }
  return routed;
}

proto::EnforceAck AggregatorCore::merge_acks(
    std::uint64_t cycle_id, std::span<const proto::EnforceAck> acks) const {
  proto::EnforceAck out;
  out.cycle_id = cycle_id;
  for (const auto& ack : acks) {
    if (ack.cycle_id == cycle_id) out.applied += ack.applied;
  }
  return out;
}

std::vector<proto::Rule> AggregatorCore::local_compute(
    std::uint64_t cycle_id, std::span<const proto::StageMetrics> metrics,
    std::uint64_t now_ns) const {
  std::vector<proto::Rule> rules;
  if (lease_.valid_until_ns < now_ns) return rules;  // lease expired

  // Same shape as the global flat path, scoped to this subtree and the
  // leased budgets.
  std::unordered_map<JobId, std::size_t> index;
  std::vector<policy::JobDemand> data_demands;
  std::vector<policy::JobDemand> meta_demands;
  for (const auto& m : metrics) {
    const auto [it, inserted] = index.try_emplace(m.job_id, data_demands.size());
    if (inserted) {
      data_demands.push_back({m.job_id, 0.0, policies_.weight(m.job_id)});
      meta_demands.push_back({m.job_id, 0.0, policies_.weight(m.job_id)});
    }
    data_demands[it->second].demand += std::max(m.data_iops, 0.0);
    meta_demands[it->second].demand += std::max(m.meta_iops, 0.0);
  }

  std::vector<policy::JobAllocation> data_alloc;
  std::vector<policy::JobAllocation> meta_alloc;
  algorithm_->compute(data_demands, lease_.data_budget, data_alloc);
  algorithm_->compute(meta_demands, lease_.meta_budget, meta_alloc);

  std::vector<policy::StageDemand> data_stage;
  std::vector<policy::StageDemand> meta_stage;
  data_stage.reserve(metrics.size());
  meta_stage.reserve(metrics.size());
  for (const auto& m : metrics) {
    data_stage.push_back({m.stage_id, m.job_id, m.data_iops});
    meta_stage.push_back({m.stage_id, m.job_id, m.meta_iops});
  }
  std::vector<policy::StageLimit> data_limits;
  std::vector<policy::StageLimit> meta_limits;
  splitter_.split(data_alloc, data_stage, data_limits);
  splitter_.split(meta_alloc, meta_stage, meta_limits);

  rules.reserve(metrics.size());
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    proto::Rule rule;
    rule.stage_id = metrics[i].stage_id;
    rule.job_id = metrics[i].job_id;
    rule.data_iops_limit = data_limits[i].limit;
    rule.meta_iops_limit = meta_limits[i].limit;
    rule.epoch = lease_.cycle_id << 8 | (cycle_id & 0xFF);
    rules.push_back(rule);
  }
  return rules;
}

}  // namespace sds::core
