#include "core/aggregator.h"

#include <algorithm>
#include <unordered_map>

namespace sds::core {

AggregatorCore::AggregatorCore(
    AggregatorOptions options,
    std::unique_ptr<policy::ControlAlgorithm> local_algorithm)
    : options_(options),
      algorithm_(local_algorithm ? std::move(local_algorithm)
                                 : std::make_unique<policy::Psfa>()),
      splitter_(policy::SplitStrategy::kProportional) {}

proto::AggregatedMetrics AggregatorCore::aggregate(
    std::uint64_t cycle_id, std::span<const proto::StageMetrics> metrics) const {
  proto::AggregatedMetrics out;
  out.cycle_id = cycle_id;
  out.from = options_.id;
  out.total_stages = static_cast<std::uint32_t>(metrics.size());

  std::unordered_map<JobId, std::size_t> index;
  for (const auto& m : metrics) {
    const auto [it, inserted] = index.try_emplace(m.job_id, out.jobs.size());
    if (inserted) {
      proto::JobMetrics job;
      job.job_id = m.job_id;
      out.jobs.push_back(job);
    }
    auto& job = out.jobs[it->second];
    job.data_iops += std::max(m.data_iops, 0.0);
    job.meta_iops += std::max(m.meta_iops, 0.0);
    ++job.stage_count;
  }
  if (options_.include_digests) {
    out.digests.reserve(metrics.size());
    for (const auto& m : metrics) {
      proto::StageDigest digest;
      digest.stage_id = m.stage_id;
      digest.data_iops = static_cast<float>(std::max(m.data_iops, 0.0));
      digest.meta_iops = static_cast<float>(std::max(m.meta_iops, 0.0));
      out.digests.push_back(digest);
    }
  }
  return out;
}

proto::MetricsBatch AggregatorCore::passthrough(
    std::uint64_t cycle_id, std::span<const proto::StageMetrics> metrics) const {
  proto::MetricsBatch out;
  out.cycle_id = cycle_id;
  out.from = options_.id;
  out.entries.assign(metrics.begin(), metrics.end());
  return out;
}

AggregatorCore::RoutedRules AggregatorCore::route(
    const proto::EnforceBatch& batch) const {
  RoutedRules routed;
  routed.owned.reserve(batch.rules.size());
  for (const auto& rule : batch.rules) {
    if (registry_.contains(rule.stage_id)) {
      routed.owned.push_back(rule);
    } else {
      routed.unknown.push_back(rule);
    }
  }
  return routed;
}

proto::EnforceAck AggregatorCore::merge_acks(
    std::uint64_t cycle_id, std::span<const proto::EnforceAck> acks) const {
  proto::EnforceAck out;
  out.cycle_id = cycle_id;
  for (const auto& ack : acks) {
    if (ack.cycle_id == cycle_id) out.applied += ack.applied;
  }
  return out;
}

std::vector<proto::Rule> AggregatorCore::local_compute(
    std::uint64_t cycle_id, std::span<const proto::StageMetrics> metrics,
    std::uint64_t now_ns) const {
  std::vector<proto::Rule> rules;
  if (lease_.valid_until_ns < now_ns) return rules;  // lease expired

  // Same shape as the global flat path, scoped to this subtree and the
  // leased budgets.
  std::unordered_map<JobId, std::size_t> index;
  std::vector<policy::JobDemand> data_demands;
  std::vector<policy::JobDemand> meta_demands;
  for (const auto& m : metrics) {
    const auto [it, inserted] = index.try_emplace(m.job_id, data_demands.size());
    if (inserted) {
      data_demands.push_back({m.job_id, 0.0, policies_.weight(m.job_id)});
      meta_demands.push_back({m.job_id, 0.0, policies_.weight(m.job_id)});
    }
    data_demands[it->second].demand += std::max(m.data_iops, 0.0);
    meta_demands[it->second].demand += std::max(m.meta_iops, 0.0);
  }

  std::vector<policy::JobAllocation> data_alloc;
  std::vector<policy::JobAllocation> meta_alloc;
  algorithm_->compute(data_demands, lease_.data_budget, data_alloc);
  algorithm_->compute(meta_demands, lease_.meta_budget, meta_alloc);

  std::vector<policy::StageDemand> data_stage;
  std::vector<policy::StageDemand> meta_stage;
  data_stage.reserve(metrics.size());
  meta_stage.reserve(metrics.size());
  for (const auto& m : metrics) {
    data_stage.push_back({m.stage_id, m.job_id, m.data_iops});
    meta_stage.push_back({m.stage_id, m.job_id, m.meta_iops});
  }
  std::vector<policy::StageLimit> data_limits;
  std::vector<policy::StageLimit> meta_limits;
  splitter_.split(data_alloc, data_stage, data_limits);
  splitter_.split(meta_alloc, meta_stage, meta_limits);

  rules.reserve(metrics.size());
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    proto::Rule rule;
    rule.stage_id = metrics[i].stage_id;
    rule.job_id = metrics[i].job_id;
    rule.data_iops_limit = data_limits[i].limit;
    rule.meta_iops_limit = meta_limits[i].limit;
    rule.epoch = lease_.cycle_id << 8 | (cycle_id & 0xFF);
    rules.push_back(rule);
  }
  return rules;
}

}  // namespace sds::core
