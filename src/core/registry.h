// Membership registry: the stages a controller orchestrates, with the
// routing information needed to reach them (direct connection for flat
// designs, owning aggregator for hierarchical ones).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "proto/messages.h"

namespace sds::core {

struct StageRecord {
  proto::StageInfo info;
  /// Connection over which the stage is reached (live runtime).
  ConnId conn;
  /// Aggregator responsible for the stage (hierarchical designs);
  /// invalid for directly-connected stages.
  ControllerId via;
};

class Registry {
 public:
  /// Register a stage; duplicate StageIds are rejected.
  Status add(StageRecord record);

  /// Remove a stage (e.g. its job finished or its node failed).
  Status remove(StageId stage_id);

  [[nodiscard]] const StageRecord* find(StageId stage_id) const;
  [[nodiscard]] bool contains(StageId stage_id) const { return find(stage_id) != nullptr; }
  [[nodiscard]] std::size_t size() const { return order_.size(); }

  /// Stage ids in registration order (deterministic iteration).
  [[nodiscard]] const std::vector<StageId>& stages() const { return order_; }

  /// Number of stages belonging to `job`.
  [[nodiscard]] std::uint32_t job_stage_count(JobId job) const;

  /// Distinct jobs present, in first-registration order.
  [[nodiscard]] std::vector<JobId> jobs() const;

  /// Visit every record in registration order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const StageId id : order_) fn(records_.at(id));
  }

  /// Remove every stage routed via `aggregator` (aggregator failure);
  /// returns the removed records so they can be re-registered elsewhere.
  std::vector<StageRecord> evict_via(ControllerId aggregator);

 private:
  std::unordered_map<StageId, StageRecord> records_;
  std::unordered_map<JobId, std::uint32_t> job_counts_;
  std::vector<StageId> order_;
};

}  // namespace sds::core
