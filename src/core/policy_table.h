// Per-job QoS policy table: weights for proportional sharing and the
// global PFS budgets administrators configure (paper §III-C: "the maximum
// rate of operations that can be handled efficiently by the PFS ... is
// defined by system administrators").
#pragma once

#include <unordered_map>

#include "common/types.h"

namespace sds::core {

struct Budgets {
  /// Maximum aggregate data-operation rate the PFS sustains (ops/s).
  double data_iops = 1'000'000;
  /// Maximum aggregate metadata-operation rate (ops/s).
  double meta_iops = 500'000;
};

class PolicyTable {
 public:
  explicit PolicyTable(Budgets budgets = {}) : budgets_(budgets) {}

  [[nodiscard]] const Budgets& budgets() const { return budgets_; }
  void set_budgets(Budgets budgets) { budgets_ = budgets; }

  /// Set a job's QoS weight (relative share under contention).
  void set_weight(JobId job, double weight) { weights_[job] = weight; }

  [[nodiscard]] double weight(JobId job) const {
    const auto it = weights_.find(job);
    return it == weights_.end() ? kDefaultWeight : it->second;
  }

  void clear_weight(JobId job) { weights_.erase(job); }

  static constexpr double kDefaultWeight = 1.0;

 private:
  Budgets budgets_;
  std::unordered_map<JobId, double> weights_;
};

}  // namespace sds::core
