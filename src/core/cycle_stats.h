// Per-phase control-cycle latency accounting.
//
// A control cycle has three coarse phases (paper §II-B): collect metrics
// from stages, compute the control algorithm, and enforce the resulting
// rules. The cycle engine records each phase's latency here; Figs. 4–6
// are breakdowns of exactly these numbers.
//
// PR 6 refines the triple into five attributed phases without touching
// the three coarse numbers (so every existing figure stays bit-identical):
// `aggregate` is the tail of `collect` spent merging/relaying metrics
// above the stages, and `disseminate` is the head of `enforce` spent
// pushing rules down before any stage applies them. They are sub-segments
// — collect + compute + enforce still partitions the cycle.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/mutex.h"
#include "telemetry/metrics.h"

namespace sds::core {

enum class Phase : std::uint8_t { kCollect = 0, kCompute = 1, kEnforce = 2 };

[[nodiscard]] constexpr std::string_view to_string(Phase p) {
  switch (p) {
    case Phase::kCollect: return "collect";
    case Phase::kCompute: return "compute";
    case Phase::kEnforce: return "enforce";
  }
  return "?";
}

struct PhaseBreakdown {
  Nanos collect{0};
  Nanos compute{0};
  Nanos enforce{0};
  /// Attributed sub-segments: aggregate ⊆ collect, disseminate ⊆ enforce.
  /// Zero when the topology has no such segment (flat collect) or the
  /// engine predates attribution.
  Nanos aggregate{0};
  Nanos disseminate{0};

  [[nodiscard]] Nanos total() const { return collect + compute + enforce; }
  /// Collect time spent sampling stages (below the aggregation layer).
  [[nodiscard]] Nanos collect_stages() const { return collect - aggregate; }
  /// Enforce time spent applying + acking (after rules reached stages).
  [[nodiscard]] Nanos enforce_apply() const { return enforce - disseminate; }
};

/// One recently completed cycle, kept for live introspection (/cycles).
struct RecentCycle {
  std::uint64_t cycle = 0;
  PhaseBreakdown breakdown;
  bool degraded = false;
  std::uint64_t stale_stages = 0;
};

/// Aggregated latency distributions across cycles.
///
/// Optionally bound to a telemetry::MetricsRegistry: after bind(), every
/// record() also feeds the shared `sds_cycle_phase_latency_ns{phase=...}`
/// histograms and the `sds_cycles_total` counter, so the same numbers the
/// benches print are visible to the exporters with no second stats path.
class CycleStats {
 public:
  static constexpr std::size_t kRecentCapacity = 64;

  CycleStats() = default;
  // Results carry CycleStats by value (ExperimentResult); the recent-ring
  // mutex makes default copies impossible, so copy everything but the
  // lock. Copies are taken after the producing engine quiesced.
  CycleStats(const CycleStats& other) { copy_from(other); }
  CycleStats& operator=(const CycleStats& other) {
    if (this != &other) copy_from(other);
    return *this;
  }
  CycleStats(CycleStats&& other) noexcept { copy_from(other); }
  CycleStats& operator=(CycleStats&& other) noexcept {
    if (this != &other) copy_from(other);
    return *this;
  }

  void record(const PhaseBreakdown& cycle) {
    record_cycle(cycles_, cycle, /*degraded=*/false, /*stale=*/0);
  }

  /// Full-detail record: cycle id for introspection, degraded flag for
  /// the degraded-phase histograms. Degraded/stale counters are still
  /// bumped via record_degraded() by callers that know staleness before
  /// the breakdown exists.
  void record(std::uint64_t cycle_id, const PhaseBreakdown& cycle,
              bool degraded, std::uint64_t stale_stages = 0) {
    record_cycle(cycle_id, cycle, degraded, stale_stages);
  }

  /// A cycle that closed on quorum/timeout instead of full replies.
  /// `stale_stages` is how many stages contributed no fresh metrics this
  /// cycle (the controller reused their last-known state).
  void record_degraded(std::size_t stale_stages) {
    ++degraded_cycles_;
    stale_stages_ += stale_stages;
    if (degraded_total_ != nullptr) {
      degraded_total_->add(1);
      stale_total_->add(stale_stages);
    }
  }

  /// Time from an entity's restart to its first fresh contribution.
  void record_recovery(Nanos recovery) {
    recovery_.record(recovery);
    if (tele_recovery_ != nullptr) tele_recovery_->record(recovery);
  }

  /// Register this cycle engine's instruments with `registry`. `labels`
  /// distinguish multiple engines sharing one registry (e.g.
  /// {{"component","global"}} or {{"configuration","flat N=500"}}).
  /// Pass nullptr to unbind.
  void bind(telemetry::MetricsRegistry* registry,
            telemetry::Labels labels = {}) {
    if (registry == nullptr) {
      cycles_total_ = degraded_total_ = stale_total_ = nullptr;
      tele_collect_ = tele_compute_ = tele_enforce_ = tele_total_ = nullptr;
      tele_aggregate_ = tele_disseminate_ = tele_degraded_total_ = nullptr;
      tele_recovery_ = nullptr;
      return;
    }
    const auto phase_labels = [&labels](std::string_view phase) {
      telemetry::Labels copy = labels;
      copy.emplace_back("phase", std::string(phase));
      return copy;
    };
    tele_collect_ = registry->histogram("sds_cycle_phase_latency_ns",
                                        phase_labels("collect"));
    tele_aggregate_ = registry->histogram("sds_cycle_phase_latency_ns",
                                          phase_labels("aggregate"));
    tele_compute_ = registry->histogram("sds_cycle_phase_latency_ns",
                                        phase_labels("compute"));
    tele_disseminate_ = registry->histogram("sds_cycle_phase_latency_ns",
                                            phase_labels("disseminate"));
    tele_enforce_ = registry->histogram("sds_cycle_phase_latency_ns",
                                        phase_labels("enforce"));
    tele_total_ =
        registry->histogram("sds_cycle_total_latency_ns", labels);
    // Degraded cycles additionally land here, so the exporters separate
    // clean-cycle latency from quorum/timeout-closed cycles (PR 5).
    tele_degraded_total_ =
        registry->histogram("sds_cycle_degraded_latency_ns", labels);
    tele_recovery_ = registry->histogram("sds_recovery_time_ns", labels);
    degraded_total_ = registry->counter("sds_cycle_degraded_total", labels);
    stale_total_ = registry->counter("sds_stage_stale_total", labels);
    cycles_total_ = registry->counter("sds_cycles_total", std::move(labels));
  }

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  [[nodiscard]] std::uint64_t degraded_cycles() const {
    return degraded_cycles_;
  }
  [[nodiscard]] std::uint64_t stale_stages() const { return stale_stages_; }
  [[nodiscard]] const Histogram& collect() const { return collect_; }
  [[nodiscard]] const Histogram& aggregate() const { return aggregate_; }
  [[nodiscard]] const Histogram& compute() const { return compute_; }
  [[nodiscard]] const Histogram& disseminate() const { return disseminate_; }
  [[nodiscard]] const Histogram& enforce() const { return enforce_; }
  [[nodiscard]] const Histogram& total() const { return total_; }
  [[nodiscard]] const Histogram& degraded_total_latency() const {
    return degraded_latency_;
  }
  [[nodiscard]] const Histogram& recovery() const { return recovery_; }

  /// Mean latencies in milliseconds (the unit the paper reports).
  [[nodiscard]] double mean_collect_ms() const { return collect_.mean() * 1e-6; }
  [[nodiscard]] double mean_compute_ms() const { return compute_.mean() * 1e-6; }
  [[nodiscard]] double mean_enforce_ms() const { return enforce_.mean() * 1e-6; }
  [[nodiscard]] double mean_total_ms() const { return total_.mean() * 1e-6; }
  [[nodiscard]] double mean_recovery_ms() const {
    return recovery_.mean() * 1e-6;
  }

  /// Recent cycles, oldest first (bounded by kRecentCapacity). Read from
  /// the introspection thread while the cycle engine records — hence the
  /// dedicated lock (the histograms stay single-writer as before).
  [[nodiscard]] std::vector<RecentCycle> recent() const
      SDS_EXCLUDES(recent_mu_) {
    MutexLock lock(recent_mu_);
    return {recent_.begin(), recent_.end()};
  }

  void reset() {
    collect_.reset();
    aggregate_.reset();
    compute_.reset();
    disseminate_.reset();
    enforce_.reset();
    total_.reset();
    degraded_latency_.reset();
    recovery_.reset();
    cycles_ = 0;
    degraded_cycles_ = 0;
    stale_stages_ = 0;
    MutexLock lock(recent_mu_);
    recent_.clear();
  }

 private:
  void copy_from(const CycleStats& other) {
    std::deque<RecentCycle> recent_copy;
    {
      MutexLock lock(other.recent_mu_);
      recent_copy = other.recent_;
    }
    collect_ = other.collect_;
    aggregate_ = other.aggregate_;
    compute_ = other.compute_;
    disseminate_ = other.disseminate_;
    enforce_ = other.enforce_;
    total_ = other.total_;
    degraded_latency_ = other.degraded_latency_;
    recovery_ = other.recovery_;
    cycles_ = other.cycles_;
    degraded_cycles_ = other.degraded_cycles_;
    stale_stages_ = other.stale_stages_;
    cycles_total_ = other.cycles_total_;
    degraded_total_ = other.degraded_total_;
    stale_total_ = other.stale_total_;
    tele_recovery_ = other.tele_recovery_;
    tele_collect_ = other.tele_collect_;
    tele_aggregate_ = other.tele_aggregate_;
    tele_compute_ = other.tele_compute_;
    tele_disseminate_ = other.tele_disseminate_;
    tele_enforce_ = other.tele_enforce_;
    tele_total_ = other.tele_total_;
    tele_degraded_total_ = other.tele_degraded_total_;
    MutexLock lock(recent_mu_);
    recent_ = std::move(recent_copy);
  }

  void record_cycle(std::uint64_t cycle_id, const PhaseBreakdown& cycle,
                    bool degraded, std::uint64_t stale) {
    collect_.record(cycle.collect);
    aggregate_.record(cycle.aggregate);
    compute_.record(cycle.compute);
    disseminate_.record(cycle.disseminate);
    enforce_.record(cycle.enforce);
    total_.record(cycle.total());
    if (degraded) degraded_latency_.record(cycle.total());
    ++cycles_;
    if (cycles_total_ != nullptr) {
      tele_collect_->record(cycle.collect);
      tele_aggregate_->record(cycle.aggregate);
      tele_compute_->record(cycle.compute);
      tele_disseminate_->record(cycle.disseminate);
      tele_enforce_->record(cycle.enforce);
      tele_total_->record(cycle.total());
      if (degraded) tele_degraded_total_->record(cycle.total());
      cycles_total_->add(1);
    }
    MutexLock lock(recent_mu_);
    recent_.push_back({cycle_id, cycle, degraded, stale});
    if (recent_.size() > kRecentCapacity) recent_.pop_front();
  }

  Histogram collect_;
  Histogram aggregate_;
  Histogram compute_;
  Histogram disseminate_;
  Histogram enforce_;
  Histogram total_;
  Histogram degraded_latency_;
  Histogram recovery_;
  std::uint64_t cycles_ = 0;
  std::uint64_t degraded_cycles_ = 0;
  std::uint64_t stale_stages_ = 0;
  mutable Mutex recent_mu_{LockRank::kCycleStats};
  std::deque<RecentCycle> recent_ SDS_GUARDED_BY(recent_mu_);
  // Bound telemetry instruments (owned by the registry, may be null).
  telemetry::Counter* cycles_total_ = nullptr;
  telemetry::Counter* degraded_total_ = nullptr;
  telemetry::Counter* stale_total_ = nullptr;
  telemetry::HistogramMetric* tele_recovery_ = nullptr;
  telemetry::HistogramMetric* tele_collect_ = nullptr;
  telemetry::HistogramMetric* tele_aggregate_ = nullptr;
  telemetry::HistogramMetric* tele_compute_ = nullptr;
  telemetry::HistogramMetric* tele_disseminate_ = nullptr;
  telemetry::HistogramMetric* tele_enforce_ = nullptr;
  telemetry::HistogramMetric* tele_total_ = nullptr;
  telemetry::HistogramMetric* tele_degraded_total_ = nullptr;
};

/// JSON document for the /cycles introspection route.
[[nodiscard]] inline std::string recent_cycles_json(const CycleStats& stats) {
  const auto recent = stats.recent();
  std::string out = "{\"cycles\":[";
  bool first = true;
  for (const auto& rc : recent) {
    if (!first) out += ',';
    first = false;
    out += "{\"cycle\":" + std::to_string(rc.cycle);
    out += ",\"total_ns\":" + std::to_string(rc.breakdown.total().count());
    out += ",\"collect_ns\":" + std::to_string(rc.breakdown.collect.count());
    out +=
        ",\"aggregate_ns\":" + std::to_string(rc.breakdown.aggregate.count());
    out += ",\"compute_ns\":" + std::to_string(rc.breakdown.compute.count());
    out += ",\"disseminate_ns\":" +
           std::to_string(rc.breakdown.disseminate.count());
    out += ",\"enforce_ns\":" + std::to_string(rc.breakdown.enforce.count());
    out += ",\"degraded\":";
    out += rc.degraded ? "true" : "false";
    out += ",\"stale_stages\":" + std::to_string(rc.stale_stages);
    out += '}';
  }
  out += "]}\n";
  return out;
}

}  // namespace sds::core
