// Per-phase control-cycle latency accounting.
//
// A control cycle has three phases (paper §II-B): collect metrics from
// stages, compute the control algorithm, and enforce the resulting rules.
// The cycle engine records each phase's latency here; Figs. 4–6 are
// breakdowns of exactly these numbers.
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/histogram.h"
#include "telemetry/metrics.h"

namespace sds::core {

enum class Phase : std::uint8_t { kCollect = 0, kCompute = 1, kEnforce = 2 };

[[nodiscard]] constexpr std::string_view to_string(Phase p) {
  switch (p) {
    case Phase::kCollect: return "collect";
    case Phase::kCompute: return "compute";
    case Phase::kEnforce: return "enforce";
  }
  return "?";
}

struct PhaseBreakdown {
  Nanos collect{0};
  Nanos compute{0};
  Nanos enforce{0};

  [[nodiscard]] Nanos total() const { return collect + compute + enforce; }
};

/// Aggregated latency distributions across cycles.
///
/// Optionally bound to a telemetry::MetricsRegistry: after bind(), every
/// record() also feeds the shared `sds_cycle_phase_latency_ns{phase=...}`
/// histograms and the `sds_cycles_total` counter, so the same numbers the
/// benches print are visible to the exporters with no second stats path.
class CycleStats {
 public:
  void record(const PhaseBreakdown& cycle) {
    collect_.record(cycle.collect);
    compute_.record(cycle.compute);
    enforce_.record(cycle.enforce);
    total_.record(cycle.total());
    ++cycles_;
    if (cycles_total_ != nullptr) {
      tele_collect_->record(cycle.collect);
      tele_compute_->record(cycle.compute);
      tele_enforce_->record(cycle.enforce);
      tele_total_->record(cycle.total());
      cycles_total_->add(1);
    }
  }

  /// A cycle that closed on quorum/timeout instead of full replies.
  /// `stale_stages` is how many stages contributed no fresh metrics this
  /// cycle (the controller reused their last-known state).
  void record_degraded(std::size_t stale_stages) {
    ++degraded_cycles_;
    stale_stages_ += stale_stages;
    if (degraded_total_ != nullptr) {
      degraded_total_->add(1);
      stale_total_->add(stale_stages);
    }
  }

  /// Time from an entity's restart to its first fresh contribution.
  void record_recovery(Nanos recovery) {
    recovery_.record(recovery);
    if (tele_recovery_ != nullptr) tele_recovery_->record(recovery);
  }

  /// Register this cycle engine's instruments with `registry`. `labels`
  /// distinguish multiple engines sharing one registry (e.g.
  /// {{"component","global"}} or {{"configuration","flat N=500"}}).
  /// Pass nullptr to unbind.
  void bind(telemetry::MetricsRegistry* registry,
            telemetry::Labels labels = {}) {
    if (registry == nullptr) {
      cycles_total_ = degraded_total_ = stale_total_ = nullptr;
      tele_collect_ = tele_compute_ = tele_enforce_ = tele_total_ = nullptr;
      tele_recovery_ = nullptr;
      return;
    }
    const auto phase_labels = [&labels](std::string_view phase) {
      telemetry::Labels copy = labels;
      copy.emplace_back("phase", std::string(phase));
      return copy;
    };
    tele_collect_ = registry->histogram("sds_cycle_phase_latency_ns",
                                        phase_labels("collect"));
    tele_compute_ = registry->histogram("sds_cycle_phase_latency_ns",
                                        phase_labels("compute"));
    tele_enforce_ = registry->histogram("sds_cycle_phase_latency_ns",
                                        phase_labels("enforce"));
    tele_total_ =
        registry->histogram("sds_cycle_total_latency_ns", labels);
    tele_recovery_ = registry->histogram("sds_recovery_time_ns", labels);
    degraded_total_ = registry->counter("sds_cycle_degraded_total", labels);
    stale_total_ = registry->counter("sds_stage_stale_total", labels);
    cycles_total_ = registry->counter("sds_cycles_total", std::move(labels));
  }

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  [[nodiscard]] std::uint64_t degraded_cycles() const {
    return degraded_cycles_;
  }
  [[nodiscard]] std::uint64_t stale_stages() const { return stale_stages_; }
  [[nodiscard]] const Histogram& collect() const { return collect_; }
  [[nodiscard]] const Histogram& compute() const { return compute_; }
  [[nodiscard]] const Histogram& enforce() const { return enforce_; }
  [[nodiscard]] const Histogram& total() const { return total_; }
  [[nodiscard]] const Histogram& recovery() const { return recovery_; }

  /// Mean latencies in milliseconds (the unit the paper reports).
  [[nodiscard]] double mean_collect_ms() const { return collect_.mean() * 1e-6; }
  [[nodiscard]] double mean_compute_ms() const { return compute_.mean() * 1e-6; }
  [[nodiscard]] double mean_enforce_ms() const { return enforce_.mean() * 1e-6; }
  [[nodiscard]] double mean_total_ms() const { return total_.mean() * 1e-6; }
  [[nodiscard]] double mean_recovery_ms() const {
    return recovery_.mean() * 1e-6;
  }

  void reset() {
    collect_.reset();
    compute_.reset();
    enforce_.reset();
    total_.reset();
    recovery_.reset();
    cycles_ = 0;
    degraded_cycles_ = 0;
    stale_stages_ = 0;
  }

 private:
  Histogram collect_;
  Histogram compute_;
  Histogram enforce_;
  Histogram total_;
  Histogram recovery_;
  std::uint64_t cycles_ = 0;
  std::uint64_t degraded_cycles_ = 0;
  std::uint64_t stale_stages_ = 0;
  // Bound telemetry instruments (owned by the registry, may be null).
  telemetry::Counter* cycles_total_ = nullptr;
  telemetry::Counter* degraded_total_ = nullptr;
  telemetry::Counter* stale_total_ = nullptr;
  telemetry::HistogramMetric* tele_recovery_ = nullptr;
  telemetry::HistogramMetric* tele_collect_ = nullptr;
  telemetry::HistogramMetric* tele_compute_ = nullptr;
  telemetry::HistogramMetric* tele_enforce_ = nullptr;
  telemetry::HistogramMetric* tele_total_ = nullptr;
};

}  // namespace sds::core
