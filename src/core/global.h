// GlobalControllerCore — the decision logic of the paper's global
// controller, free of any I/O or threading so the same code runs under
// the live runtime and the discrete-event simulator.
//
// Flat design: ingests raw per-stage metrics, runs the control algorithm
// (PSFA by default) per metric dimension, and derives one rule per stage
// using demand-proportional splitting.
//
// Hierarchical design: ingests pre-aggregated per-job metrics from
// aggregators, runs the same algorithm, and splits job allocations
// uniformly across each job's registered stages (per-stage demand is not
// visible through the aggregation — the memory/visibility trade-off the
// paper discusses).
#pragma once

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/metrics_store.h"
#include "core/policy_table.h"
#include "core/registry.h"
#include "policy/algorithm.h"
#include "policy/psfa.h"
#include "policy/splitter.h"
#include "proto/messages.h"

namespace sds::core {

struct GlobalOptions {
  Budgets budgets;
  policy::SplitStrategy split = policy::SplitStrategy::kProportional;
  /// Controller incarnation; bumped on failover so stages reject rules
  /// from a superseded controller (stale-rule detection).
  std::uint32_t epoch = 1;
};

/// Output of the compute phase.
struct ComputeResult {
  std::vector<proto::Rule> rules;
  std::vector<policy::JobAllocation> data_allocations;
  std::vector<policy::JobAllocation> meta_allocations;
};

class GlobalControllerCore {
 public:
  explicit GlobalControllerCore(
      GlobalOptions options = {},
      std::unique_ptr<policy::ControlAlgorithm> algorithm = nullptr);

  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] const Registry& registry() const { return registry_; }
  [[nodiscard]] PolicyTable& policies() { return policies_; }
  [[nodiscard]] const policy::ControlAlgorithm& algorithm() const { return *algorithm_; }

  /// Start cycle n+1 and build its collect request.
  proto::CollectRequest begin_cycle();
  [[nodiscard]] std::uint64_t current_cycle() const { return cycle_; }

  /// Flat path: per-stage metrics straight from the stages.
  [[nodiscard]] ComputeResult compute(std::span<const proto::StageMetrics> metrics) const;

  /// Hierarchical path: job summaries from aggregators.
  [[nodiscard]] ComputeResult compute(
      std::span<const proto::AggregatedMetrics> aggregated) const;

  /// Incremental flat path over a columnar MetricsStore: re-sums demand
  /// only for jobs with dirty stages, re-runs the control algorithm only
  /// when some job's (demand, weight) or a budget changed, and re-splits
  /// only jobs whose allocation or member-stage demand moved. The
  /// returned result is persistent (rules ordered by store slot index,
  /// updated in place; only re-split rules get the cycle's epoch stamp —
  /// stages accept equal epochs, so unchanged rules re-apply) and is
  /// limit-bit-identical
  /// to what `compute()` returns over the same stage values — asserted
  /// by the property tests and the --psfa-full-recompute ablation,
  /// which passes `full_recompute = true` to force the whole pipeline.
  const ComputeResult& compute_from_store(MetricsStore& store,
                                          bool full_recompute = false);

  struct StoreComputeStats {
    std::uint64_t cycles = 0;
    /// Control-algorithm invocations (2 per cycle when inputs moved).
    std::uint64_t algorithm_runs = 0;
    std::uint64_t jobs_resummed = 0;
    std::uint64_t jobs_resplit = 0;
    std::uint64_t stages_resplit = 0;
  };
  [[nodiscard]] const StoreComputeStats& store_compute_stats() const {
    return store_stats_;
  }

  /// Group rules by the aggregator responsible for each stage (rules for
  /// directly-connected stages appear under ControllerId::invalid()).
  [[nodiscard]] std::unordered_map<ControllerId, proto::EnforceBatch>
  group_rules(const ComputeResult& result) const;

  /// Bump the controller epoch (failover takeover).
  void advance_epoch();
  [[nodiscard]] std::uint32_t epoch() const { return options_.epoch; }

  /// Rule epoch for the current cycle: (controller epoch, cycle) packed so
  /// later controllers and later cycles always compare greater.
  [[nodiscard]] std::uint64_t rule_epoch() const;

 private:
  ComputeResult compute_from_job_demands(
      std::vector<policy::JobDemand> data_demands,
      std::vector<policy::JobDemand> meta_demands,
      std::span<const proto::StageMetrics> stage_detail) const;

  /// Per-store derived state for compute_from_store, rebuilt when the
  /// store's structure epoch moves. Job slots are in ascending
  /// stage-slot first-seen order — the same order DemandBuilder yields
  /// for slot-ordered input, which keeps FP sums bit-identical to the
  /// batch path.
  struct StoreState {
    bool valid = false;
    std::uint64_t structure_epoch = 0;
    std::vector<std::uint32_t> job_of_stage;
    std::vector<std::vector<std::uint32_t>> stages_of_job;
    std::vector<policy::JobDemand> data_demands;
    std::vector<policy::JobDemand> meta_demands;
    std::vector<double> prev_data_alloc;
    std::vector<double> prev_meta_alloc;
    std::vector<std::uint8_t> job_dirty;
    std::vector<std::uint32_t> dirty_jobs;
    std::vector<std::uint32_t> dirty_stages;
    Budgets budgets;
    ComputeResult result;
  };
  void rebuild_store_state(const MetricsStore& store);

  GlobalOptions options_;
  std::unique_ptr<policy::ControlAlgorithm> algorithm_;
  policy::RuleSplitter splitter_;
  Registry registry_;
  PolicyTable policies_;
  std::uint64_t cycle_ = 0;
  StoreState store_state_;
  StoreComputeStats store_stats_;
};

}  // namespace sds::core
