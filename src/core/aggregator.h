// AggregatorCore — decision logic of the hierarchical design's middle
// tier. Sits between the global controller and a disjoint set of stages:
// disseminates collect requests downward, merges stage metrics into
// per-job summaries upward (Cheferd-style pre-aggregation), routes
// enforcement rules to its stages, and merges their acks.
//
// Two extensions beyond the paper's prototype, both from its future-work
// section: pass-through mode (no pre-aggregation; the ablation for
// Observation #7) and local-decision mode, where the aggregator runs the
// control algorithm itself inside a budget lease granted by the global
// controller.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/metrics_store.h"
#include "core/policy_table.h"
#include "core/registry.h"
#include "policy/algorithm.h"
#include "policy/psfa.h"
#include "policy/splitter.h"
#include "proto/messages.h"

namespace sds::core {

struct AggregatorOptions {
  ControllerId id;
  /// Merge stage metrics into per-job summaries before forwarding.
  bool preaggregate = true;
  /// Attach compact per-stage digests to the upward summary so the
  /// global controller can split job allocations proportionally to
  /// per-stage demand (see proto::StageDigest).
  bool include_digests = true;
  /// Compute-view threshold of the backing MetricsStore (ops/s); see
  /// MetricsStoreOptions::activity_threshold.
  double activity_threshold = 0.0;
};

class AggregatorCore {
 public:
  explicit AggregatorCore(
      AggregatorOptions options,
      std::unique_ptr<policy::ControlAlgorithm> local_algorithm = nullptr);

  [[nodiscard]] ControllerId id() const { return options_.id; }
  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] const Registry& registry() const { return registry_; }
  [[nodiscard]] bool preaggregate() const { return options_.preaggregate; }

  /// Merge per-stage metrics into the upward job summary.
  [[nodiscard]] proto::AggregatedMetrics aggregate(
      std::uint64_t cycle_id, std::span<const proto::StageMetrics> metrics) const;

  /// Pass-through alternative: relay raw stage metrics in one batch.
  [[nodiscard]] proto::MetricsBatch passthrough(
      std::uint64_t cycle_id, std::span<const proto::StageMetrics> metrics) const;

  /// Columnar store backing the incremental collect path: the host binds
  /// its stages once, then folds full frames / deltas in as they arrive
  /// (no per-cycle scratch vector of StageMetrics).
  [[nodiscard]] MetricsStore& store() { return store_; }
  [[nodiscard]] const MetricsStore& store() const { return store_; }

  /// Incremental alternative to aggregate(): maintains a persistent
  /// upward summary over the store, re-summing only jobs whose stages
  /// moved since the last call and refreshing only the dirty stages'
  /// digests. Jobs and digests are emitted in ascending store-slot
  /// order (stable across cycles); values read the store's compute
  /// view, matching what the flat store path feeds PSFA. Stage counts
  /// cover every bound stage — a silent stage contributes its last
  /// report (decide-on-stale semantics).
  const proto::AggregatedMetrics& aggregate_from_store(std::uint64_t cycle_id);

  /// Split a global enforce batch into (stage, rule) pairs for stages this
  /// aggregator owns; rules for unknown stages are returned separately so
  /// the caller can report them.
  struct RoutedRules {
    std::vector<proto::Rule> owned;
    std::vector<proto::Rule> unknown;
  };
  [[nodiscard]] RoutedRules route(const proto::EnforceBatch& batch) const;

  /// Merge per-stage acks into the single upward ack.
  [[nodiscard]] proto::EnforceAck merge_acks(
      std::uint64_t cycle_id, std::span<const proto::EnforceAck> acks) const;

  // -- Local-decision mode (paper §VI) -------------------------------

  /// Install the lease under which local decisions are made.
  void set_lease(const proto::BudgetLease& lease) { lease_ = lease; }
  [[nodiscard]] const proto::BudgetLease& lease() const { return lease_; }
  [[nodiscard]] PolicyTable& policies() { return policies_; }

  /// Run the control algorithm locally over this subtree using the leased
  /// budgets; `now_ns` validates the lease. Returns rules for owned
  /// stages (empty if the lease expired — the safe failure mode).
  [[nodiscard]] std::vector<proto::Rule> local_compute(
      std::uint64_t cycle_id, std::span<const proto::StageMetrics> metrics,
      std::uint64_t now_ns) const;

 private:
  /// Derived per-slot state for aggregate_from_store, rebuilt when the
  /// store's structure epoch moves.
  struct StoreState {
    bool valid = false;
    std::uint64_t structure_epoch = 0;
    std::vector<std::uint32_t> job_of_stage;
    std::vector<std::vector<std::uint32_t>> stages_of_job;
    std::vector<std::uint8_t> job_dirty;
    std::vector<std::uint32_t> dirty_jobs;
    std::vector<std::uint32_t> dirty_stages;
    proto::AggregatedMetrics out;
  };
  void rebuild_store_state();

  AggregatorOptions options_;
  std::unique_ptr<policy::ControlAlgorithm> algorithm_;
  policy::RuleSplitter splitter_;
  Registry registry_;
  PolicyTable policies_;
  proto::BudgetLease lease_;
  MetricsStore store_;
  StoreState store_state_;
};

}  // namespace sds::core
