// Scale-experiment driver: reproduces the paper's methodology (§III) in
// the discrete-event simulator.
//
// A run deploys one global controller, optionally a layer of aggregator
// controllers, and N virtual data-plane stages, then executes the stress
// workload: control cycles back-to-back with no idle gap, each cycle
// collecting metrics from every stage, running PSFA, and enforcing rules
// on every stage. Latency per phase is recorded exactly as the paper
// measures it (at the global controller), and per-controller resource
// usage mirrors the REMORA columns of Tables II–IV.
//
// All control decisions are made by the real core:: logic; the simulator
// models only *time* and *resources*.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/cycle_stats.h"
#include "core/policy_table.h"
#include "fault/plan.h"
#include "policy/psfa.h"
#include "sim/profile.h"
#include "stage/virtual_stage.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/span_tracer.h"

namespace sds::sim {

struct ExperimentConfig {
  /// Virtual data-plane stages (the paper treats each as one compute
  /// node; §III-D).
  std::size_t num_stages = 50;
  /// Aggregator controllers; 0 selects the flat design.
  std::size_t num_aggregators = 0;
  /// Optional third control level: super-aggregators between the global
  /// controller and the aggregators (global → supers → aggregators →
  /// stages). Each super-aggregator relays collects downward, merges its
  /// children's summaries upward, and splits enforce batches per child.
  /// Requires num_aggregators > 0, pre-aggregation, parallel fan-out and
  /// central decisions. A deeper tree becomes *necessary* only when the
  /// 2-level fan-outs exceed the connection cap (cap² stages); below
  /// that it just adds a hop — which this mode lets you measure.
  std::size_t num_super_aggregators = 0;
  /// Coordinated flat peers (paper §VI future work #1): K controllers
  /// each own a disjoint stage set, exchange per-job demand summaries
  /// all-to-all each cycle, and deterministically compute the same
  /// global PSFA before enforcing their own subtree. Mutually exclusive
  /// with num_aggregators; 0 disables.
  std::size_t coordinated_peers = 0;
  /// Stages per job (jobs drive the PSFA input size).
  std::size_t stages_per_job = 50;
  /// Simulated stress duration (the paper runs >= 5 min; the default is
  /// shorter because the deterministic simulator needs no settling).
  Nanos duration = seconds(20);
  /// Optional hard cap on executed cycles (0 = run until `duration`).
  std::uint64_t max_cycles = 0;
  /// Control-cycle periodicity (paper §II-B: "usually set by the system
  /// administrator"). 0 = stress mode, cycles run back-to-back; > 0 =
  /// cycle n+1 starts `cycle_period` after cycle n started (or
  /// immediately, if the cycle ran longer than the period).
  Nanos cycle_period = Nanos{0};
  /// Aggregators merge stage metrics into job summaries before
  /// forwarding (ablation for Observation #7 when disabled).
  bool preaggregate = true;
  /// Aggregator subtrees work concurrently (ablation when disabled:
  /// the global controller walks aggregators one at a time).
  bool parallel_fanout = true;
  /// Future-work mode (§VI): aggregators run PSFA locally under budget
  /// leases; the global controller only re-leases budgets.
  bool local_decisions = false;
  core::Budgets budgets{};
  /// PSFA tuning (activity threshold, headroom ramp, probe share).
  policy::PsfaOptions psfa{};
  /// Columnar collect path: controllers fold stage reports into a
  /// core::MetricsStore in place and recompute incrementally from it
  /// (flat: GlobalControllerCore::compute_from_store; hierarchical:
  /// AggregatorCore::aggregate_from_store at each aggregator). Rules are
  /// bit-identical to the batch path on the flat topology; hierarchical
  /// summaries are store-slot-ordered instead of arrival-ordered, which
  /// only perturbs last-bit FP rounding. Silently falls back to the
  /// legacy batch path under a fault plan (degraded cycles need the
  /// received-only compaction), in coordinated mode, in pass-through
  /// mode and with local decisions.
  bool store_collect = true;
  /// Ablation: force the store-backed compute to rebuild every job from
  /// scratch each cycle. Identical decisions, none of the incremental
  /// savings — the control arm for the bit-identity claim.
  bool psfa_full_recompute = false;
  /// Delta-encoded collect frames (requires the store path): after its
  /// first report each stage sends a StageMetricsDelta carrying only
  /// the fields that changed since its previous report, with a full
  /// StageMetrics refresh every `delta_refresh` cycles (staggered by
  /// stage index so refresh bursts spread across cycles). Deltas
  /// reproduce the full frame bit-for-bit at the receiver, so decisions
  /// are unchanged — only the modeled collect wire bytes shrink.
  bool delta_collect = false;
  std::size_t delta_refresh = 64;
  /// MetricsStore compute-view threshold (ops/s): reported moves of at
  /// most this magnitude leave the compute view — and therefore the
  /// incremental dirty sets — untouched. 0 = track every change.
  double activity_threshold = 0.0;
  FronteraProfile profile{};
  /// Wall-clock-independent utilization sampling interval (see
  /// ExperimentResult::mean_data_utilization).
  Nanos utilization_sample_interval = millis(50);
  std::uint64_t seed = 42;
  /// Simulation lanes: the event population is sharded across this many
  /// engines and run in parallel between synchronization horizons (see
  /// sim/parallel.h). Results are bit-identical for every lane count.
  /// 0 = read SDSCALE_SIM_LANES from the environment (default 1).
  /// The effective count is clamped to the topology's parallel units
  /// (stages for flat, aggregators for hierarchical, peers for
  /// coordinated) and to 1 when the profile's wire latency — the
  /// conservative lookahead — is not positive.
  std::size_t lanes = 0;
  /// Optional fault plan (not owned; must outlive the run). When set,
  /// the plan is compiled against the topology and injected at event
  /// granularity: crashed/partitioned stages stay silent, slow windows
  /// multiply stage CPU work, and per-message fates drop/duplicate/delay
  /// replies and acks. Controllers then close phases on the plan's
  /// quorum/deadline instead of waiting forever, recording degraded
  /// cycles, stale stages and recovery times. Injection is a pure
  /// function of (plan seed, cycle, entity), so results stay
  /// bit-identical across lane counts. Supported for the flat and
  /// 2-level hierarchical topologies with central decisions,
  /// pre-aggregation and parallel fan-out; nullptr = fault-free (the
  /// hooks vanish and event schedules are byte-identical to pre-fault
  /// builds).
  const fault::FaultPlan* fault_plan = nullptr;
  /// Optional custom demand model; default: constant per-stage demand
  /// drawn uniformly from [500, 1500) data ops/s and [50, 150) meta
  /// ops/s.
  std::function<stage::DemandFn(StageId, stage::Dimension)> demand_factory;
  /// Optional telemetry sinks (all may be null). When `metrics` is set,
  /// the run feeds the shared cycle histograms/counters plus
  /// `sds_sim_events_executed` and `sds_sim_virtual_time_seconds`; when
  /// `tracer` is set, it records one span per cycle phase (collect /
  /// aggregate / compute / disseminate / enforce, with the cycle id and
  /// causal span ids) plus an enclosing cycle span and per-component
  /// child spans (aggregators, a representative stage), timestamped in
  /// virtual time — ready for Perfetto and tools/trace_report. When
  /// `flight` is set, the same phase spans also land in the fixed-size
  /// flight recorder ring (always allocation-free). None of the three
  /// perturbs simulated results: tracing reads the virtual clock and
  /// never touches RNG or event ordering.
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::SpanTracer* tracer = nullptr;
  telemetry::FlightRecorder* flight = nullptr;
  /// Label value distinguishing this configuration's series when several
  /// runs share one registry (exported as `configuration="<label>"`).
  std::string telemetry_label;
};

/// One controller's resource usage in the units of Tables II–IV.
struct ControllerUsage {
  double cpu_percent = 0;
  double memory_gb = 0;
  double transmitted_mbps = 0;
  double received_mbps = 0;
};

struct ExperimentResult {
  core::CycleStats stats;
  std::uint64_t cycles = 0;
  Nanos elapsed{0};
  ControllerUsage global;
  /// Average across the middle tier — aggregators in the hierarchical
  /// design or peer controllers in the coordinated-flat design (all
  /// zero for the plain flat design). In coordinated mode `global` is
  /// peer 0's usage (all peers are statistically identical).
  ControllerUsage aggregator;
  /// Average across super-aggregators (3-level hierarchies only).
  ControllerUsage super_aggregator;
  std::uint64_t events_executed = 0;
  /// Sum of enforced per-stage data limits in the final cycle —
  /// invariant-checked against the budget in tests.
  double final_data_limit_sum = 0;
  double final_meta_limit_sum = 0;
  /// Per-stage limits after the final cycle, indexed by stage id
  /// (kUnlimited where no rule was ever applied). Used to cross-validate
  /// simulated against live runs.
  std::vector<double> final_data_limits;
  std::vector<double> final_meta_limits;
  /// Time-averaged PFS load factor (sampled every
  /// `utilization_sample_interval` of simulated time):
  /// Σ_stages min(demand, enforced limit) / budget, per dimension.
  /// > 1 means the PFS is overloaded (limits not yet enforced);
  /// < 1 under contention means the control plane is reallocating too
  /// slowly (stale limits strand budget). The paper's reaction-time
  /// discussion (Obs. #1/#4) is about exactly this quantity.
  double mean_data_utilization = 0;
  double mean_meta_utilization = 0;
  // -- Resilience accounting (all zero without a fault plan) -----------
  /// Cycles that closed a phase on quorum/deadline instead of full
  /// replies (== stats.degraded_cycles()).
  std::uint64_t degraded_cycles = 0;
  /// Stage-cycles the controller decided on stale state
  /// (== stats.stale_stages()).
  std::uint64_t stale_stage_reports = 0;
  /// Faults the plan actually injected (swallowed replies, drops,
  /// duplicates, delays, slow-downs).
  std::uint64_t faults_injected = 0;
  /// Mean restart-to-first-fresh-collect time (ms; 0 when no stage
  /// recovered during the run).
  double mean_recovery_ms = 0;
  // -- Collect-path wire accounting -------------------------------------
  /// Bytes of accepted stage→controller collect report frames as modeled
  /// on the wire (delta frames when delta_collect is on). Coordinated
  /// mode does not fill these counters.
  std::uint64_t collect_wire_bytes = 0;
  /// What the same reports would have cost as full StageMetrics frames
  /// (== collect_wire_bytes when delta_collect is off). The ratio
  /// full/actual is the delta compression factor the wire benchmarks
  /// gate on.
  std::uint64_t collect_wire_bytes_full = 0;
  std::uint64_t collect_frames_full = 0;
  std::uint64_t collect_frames_delta = 0;
};

/// Run one configuration. Fails with kResourceExhausted when a topology
/// exceeds the per-node connection cap (e.g. flat beyond 2,500 stages) —
/// the hardware ceiling the paper identifies.
[[nodiscard]] Result<ExperimentResult> run_experiment(const ExperimentConfig& config);

}  // namespace sds::sim
