// LaneRunner — deterministic multi-lane execution of the DES engine.
//
// The event population is sharded across N lanes (one Engine each); the
// experiment driver keeps every aggregator subtree's virtual stages
// lane-local, so the only inter-lane traffic is controller-to-controller
// messaging, and every such hop already pays at least one wire latency.
// That minimum hop cost is the conservative lookahead L of a classic
// Chandy–Misra–Bryant scheme, which makes windowed parallel execution
// safe without rollback:
//
//   * Round structure. Each round, the coordinator (serially) delivers
//     buffered cross-lane mail, peeks every lane's next event time
//     next_j, and grants lane i the window
//         bound_i = min( min_{j != i} next_j + L,  next barrier time ).
//     Lanes then execute their events with timestamp < bound_i in
//     parallel, buffering cross-lane sends into per-lane outboxes.
//   * Safety. A cross-lane message created at source time s is delivered
//     at s + L or later, and s >= next_j for its source lane j, so its
//     delivery time is >= bound_i for every other lane i: no message
//     ever lands in a lane's past. (Debug-asserted on delivery.)
//   * Progress. The lane holding the globally earliest event always has
//     next_i < bound_i (L > 0), so every round executes at least one
//     event or one barrier — no null messages, no deadlock.
//   * Determinism. Within a lane, execution order is the engine's usual
//     (time, seq) order, and lane-local creation order is preserved
//     exactly as in a serial run. Cross-lane mail is merged in
//     (time, source lane, source seq) order — a total order on POD keys
//     — before being re-sequenced into the destination engine, so the
//     merged schedule is a pure function of the simulation, never of
//     thread timing. Results are bit-identical for every lane count.
//
// Barrier events run serially on the coordinator at an exact timestamp
// with every lane quiesced at that instant (no lane has an earlier
// pending event). The experiment driver uses them for whole-cluster
// inspection (the utilization sampler) in *all* modes, including one
// lane, so the observation schedule is lane-count-invariant.
//
// Execution backends: persistent worker threads (lanes > 1), or inline
// on the calling thread when the runner itself is invoked from a
// ThreadPool worker (bench --jobs composition: the sweep already owns
// the machine's parallelism) or when the machine has a single hardware
// thread. The backend never affects results — windows and merges are
// computed serially either way.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/small_fn.h"
#include "common/thread_annotations.h"
#include "sim/engine.h"
#include "telemetry/metrics.h"
#include "telemetry/span_tracer.h"

namespace sds::sim {

class LaneRunner {
 public:
  struct Options {
    /// Number of lanes (engines). Clamped to >= 1.
    std::size_t lanes = 1;
    /// Conservative lookahead: the minimum cross-lane delivery delay the
    /// workload guarantees (the profile's wire latency). Must be > 0
    /// when lanes > 1.
    Nanos lookahead{0};
    /// Seed for the per-lane RNG streams (stream i is a deterministic
    /// function of (seed, i), independent of the lane count).
    std::uint64_t seed = 0;
    /// Optional telemetry sinks (lane counters, per-lane spans).
    telemetry::MetricsRegistry* metrics = nullptr;
    telemetry::SpanTracer* tracer = nullptr;
    telemetry::Labels labels;
    /// Run the worker team even where the runner would fall back to
    /// inline execution (single hardware thread, nested under a sweep
    /// pool). Results are identical either way — this exists so tests
    /// and TSan exercise the cross-thread hand-off on any box.
    bool force_threads = false;
  };

  explicit LaneRunner(const Options& options);
  ~LaneRunner();

  LaneRunner(const LaneRunner&) = delete;
  LaneRunner& operator=(const LaneRunner&) = delete;

  [[nodiscard]] std::size_t lanes() const { return engines_.size(); }
  [[nodiscard]] Engine& lane(std::size_t i) { return *engines_[i]; }
  [[nodiscard]] Rng& lane_rng(std::size_t i) { return rngs_[i]; }
  [[nodiscard]] Nanos lookahead() const { return lookahead_; }

  /// Virtual time of the most recent barrier (0 before the first).
  [[nodiscard]] Nanos barrier_now() const { return barrier_now_; }

  /// Schedule a coordinator-run barrier event at absolute time `at`:
  /// `fn` executes serially once no lane holds an event earlier than
  /// `at`, before any lane executes an event at or after `at`.
  template <typename F>
  void schedule_barrier_at(Nanos at, F&& fn) {
    barriers_.push_back(Barrier{at < barrier_now_ ? barrier_now_ : at,
                                barrier_seq_++, SmallFn(std::forward<F>(fn))});
    std::push_heap(barriers_.begin(), barriers_.end(), BarrierLater{});
  }

  /// Schedule a barrier `delay` after the current barrier time.
  template <typename F>
  void schedule_barrier_in(Nanos delay, F&& fn) {
    schedule_barrier_at(barrier_now_ + delay, std::forward<F>(fn));
  }

  /// Invoked on the coordinator whenever every lane has drained and no
  /// cross-lane mail is buffered (pending barriers do not count). The
  /// callback may seed engines or schedule barriers — the runner is
  /// quiescent, so direct Engine access is safe — and must return true
  /// iff it scheduled new work. The experiment driver uses this as the
  /// deterministic "all participants finished" join for designs whose
  /// completion is not observed by any single lane (coordinated peers).
  void set_idle_callback(std::function<bool()> callback) {
    idle_callback_ = std::move(callback);
  }

  /// Run rounds until every lane drains and no mail, barriers, or idle
  /// work remain. Call at most once per runner.
  void run();

  /// Sum of events executed across lanes (lane-count-invariant: every
  /// scheduled closure executes exactly once on exactly one lane).
  [[nodiscard]] std::uint64_t total_executed() const;

  /// Latest lane clock — the virtual completion time of the run.
  [[nodiscard]] Nanos max_lane_now() const;

  [[nodiscard]] std::size_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t cross_messages() const {
    return cross_messages_;
  }
  [[nodiscard]] std::uint64_t barriers_run() const { return barriers_run_; }

  /// True when this runner executes lanes on worker threads (false for
  /// one lane, nested-in-ThreadPool callers, and 1-hardware-thread
  /// machines).
  [[nodiscard]] bool threaded() const { return use_threads_; }

 private:
  /// Timestamp ordering sentinel: no event is ever scheduled this late.
  static constexpr Nanos kNever{std::numeric_limits<std::int64_t>::max()};

  struct Barrier {
    Nanos at;
    std::uint64_t seq;
    SmallFn fn;
  };

  /// Min-heap comparator on (at, seq) for std::push_heap/pop_heap.
  struct BarrierLater {
    bool operator()(const Barrier& a, const Barrier& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// One buffered cross-lane event, tagged with its source lane so the
  /// merge order (at, src_lane, src_seq) is a total order.
  struct Mail {
    Engine::CrossEvent ev;
    std::uint32_t src_lane;
  };

  void deliver_mail();
  void collect_outboxes();
  void run_round(const std::vector<Nanos>& bounds);
  void run_barrier();
  void start_workers();
  void stop_workers();
  void worker_main(std::size_t lane_index);
  void finish_telemetry();

  const Nanos lookahead_;
  bool use_threads_ = false;

  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<Rng> rngs_;

  std::vector<Barrier> barriers_;  // min-heap on (at, seq)
  std::uint64_t barrier_seq_ = 0;
  Nanos barrier_now_{0};

  std::vector<Mail> mailbox_;
  std::function<bool()> idle_callback_;

  // Round scratch (coordinator-only).
  std::vector<Nanos> next_times_;
  std::vector<Nanos> bounds_;

  // Worker-team handshake: the coordinator publishes per-lane bounds and
  // bumps `generation_`; each worker runs its lane's window for that
  // generation and decrements `remaining_`. All engine state crossing
  // between coordinator and workers is ordered by this mutex.
  Mutex team_mu_{LockRank::kSimLaneTeam};
  CondVar team_cv_;
  std::uint64_t generation_ SDS_GUARDED_BY(team_mu_) = 0;
  std::size_t remaining_ SDS_GUARDED_BY(team_mu_) = 0;
  bool team_exit_ SDS_GUARDED_BY(team_mu_) = false;
  // sdslint: lane-runner
  std::vector<std::thread> workers_;
  // sdslint: end-lane-runner

  // Stats / telemetry. Coordinator-thread-only: written between worker
  // handshakes, never while the team runs a window.
  std::size_t rounds_ = 0;          // sdscheck: allow(unguarded-field)
  std::uint64_t cross_messages_ = 0;  // sdscheck: allow(unguarded-field)
  std::uint64_t barriers_run_ = 0;  // sdscheck: allow(unguarded-field)
  telemetry::MetricsRegistry* metrics_;
  telemetry::SpanTracer* tracer_;
  telemetry::Labels labels_;
};

}  // namespace sds::sim
