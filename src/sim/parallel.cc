#include "sim/parallel.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <string>
#include <utility>

#include "common/thread_pool.h"

namespace sds::sim {

namespace {

/// at + delta without overflowing past the kNever sentinel.
[[nodiscard]] Nanos saturating_add(Nanos at, Nanos delta) {
  constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
  if (at.count() > kMax - delta.count()) return Nanos{kMax};
  return at + delta;
}

}  // namespace

LaneRunner::LaneRunner(const Options& options)
    : lookahead_(options.lookahead),
      metrics_(options.metrics),
      tracer_(options.tracer),
      labels_(options.labels) {
  const std::size_t n = std::max<std::size_t>(1, options.lanes);
  assert(n == 1 || lookahead_ > Nanos{0});
  engines_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    engines_.push_back(std::make_unique<Engine>());
    engines_[i]->configure_lane(static_cast<std::uint32_t>(i),
                                /*capture_cross=*/n > 1, lookahead_);
  }
  // Stream i is the i-th split of a base generator seeded from the
  // config seed — a function of (seed, i) only, so a lane's stream does
  // not depend on how many other lanes exist.
  Rng base(options.seed);
  rngs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rngs_.push_back(base.split());
  next_times_.resize(n);
  bounds_.resize(n);
  // Parallel execution pays off only with real concurrency to spend:
  // run inline when nested under a ThreadPool worker (a bench --jobs
  // sweep already owns every core) or on a single-hardware-thread box.
  // sdslint: lane-runner
  use_threads_ = n > 1 && (options.force_threads ||
                           (!ThreadPool::in_worker() &&
                            std::thread::hardware_concurrency() > 1));
  // sdslint: end-lane-runner
}

LaneRunner::~LaneRunner() { stop_workers(); }

void LaneRunner::deliver_mail() {
  if (mailbox_.empty()) return;
  // (at, src_lane, src_seq) is a total order on POD fields — the merged
  // delivery order is a pure function of the simulation. Destination
  // engines re-sequence deliveries in this order, so tie-breaks among
  // same-timestamp deliveries are lane-count-invariant.
  std::sort(mailbox_.begin(), mailbox_.end(),
            [](const Mail& a, const Mail& b) {
              if (a.ev.at != b.ev.at) return a.ev.at < b.ev.at;
              if (a.src_lane != b.src_lane) return a.src_lane < b.src_lane;
              return a.ev.src_seq < b.ev.src_seq;
            });
  for (Mail& mail : mailbox_) {
    Engine& dest = *engines_[mail.ev.dest_lane];
    // Lookahead guarantee: deliveries never land in a lane's past.
    assert(mail.ev.at >= dest.now());
    dest.schedule_at(mail.ev.at, std::move(mail.ev.fn));
  }
  mailbox_.clear();
}

void LaneRunner::collect_outboxes() {
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    auto& outbox = engines_[i]->outbox();
    if (outbox.empty()) continue;
    cross_messages_ += outbox.size();
    for (auto& ev : outbox) {
      mailbox_.push_back(Mail{std::move(ev), static_cast<std::uint32_t>(i)});
    }
    engines_[i]->clear_outbox();
  }
}

void LaneRunner::run_barrier() {
  std::pop_heap(barriers_.begin(), barriers_.end(), BarrierLater{});
  Barrier barrier = std::move(barriers_.back());
  barriers_.pop_back();
  barrier_now_ = barrier.at;
  ++barriers_run_;
  barrier.fn();
}

void LaneRunner::run_round(const std::vector<Nanos>& bounds) {
  ++rounds_;
  if (!use_threads_) {
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      engines_[i]->run_before(bounds[i]);
    }
    return;
  }
  // Publish the window, wake the team, run lane 0 on this thread, then
  // wait for the team. The mutex orders every engine access between
  // coordinator and workers (TSan-visible happens-before).
  {
    MutexLock lock(team_mu_);
    remaining_ = engines_.size() - 1;
    ++generation_;
  }
  team_cv_.notify_all();
  engines_[0]->run_before(bounds[0]);
  {
    MutexLock lock(team_mu_);
    team_cv_.wait(lock, [this]() SDS_REQUIRES(team_mu_) {
      return remaining_ == 0;
    });
  }
}

void LaneRunner::worker_main(std::size_t lane_index) {
  std::uint64_t seen = 0;
  for (;;) {
    Nanos bound{0};
    {
      MutexLock lock(team_mu_);
      team_cv_.wait(lock, [&]() SDS_REQUIRES(team_mu_) {
        return team_exit_ || generation_ != seen;
      });
      if (team_exit_) return;
      seen = generation_;
      bound = bounds_[lane_index];
    }
    engines_[lane_index]->run_before(bound);
    {
      MutexLock lock(team_mu_);
      if (--remaining_ == 0) team_cv_.notify_all();
    }
  }
}

// The lane team is the one sanctioned thread-spawn site in src/sim —
// sdslint scopes its sim-thread rule to this region (see tools/sdslint).
// sdslint: lane-runner
void LaneRunner::start_workers() {
  if (!use_threads_ || !workers_.empty()) return;
  workers_.reserve(engines_.size() - 1);
  for (std::size_t i = 1; i < engines_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

void LaneRunner::stop_workers() {
  if (workers_.empty()) return;
  {
    MutexLock lock(team_mu_);
    team_exit_ = true;
  }
  team_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}
// sdslint: end-lane-runner

void LaneRunner::run() {
  start_workers();
  [[maybe_unused]] std::uint64_t last_progress = ~std::uint64_t{0};
  for (;;) {
    deliver_mail();
    bool any = false;
    Nanos min_next = kNever;
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      Nanos at{0};
      if (engines_[i]->peek_next(at)) {
        next_times_[i] = at;
        any = true;
        min_next = std::min(min_next, at);
      } else {
        next_times_[i] = kNever;
      }
    }
    if (!any) {
      // Quiescent: lanes drained, no mail in flight. Give the driver its
      // deterministic join point first; barriers only fire once the
      // driver has nothing left to start before them.
      if (idle_callback_ && idle_callback_()) continue;
      if (!barriers_.empty()) {
        run_barrier();
        continue;
      }
      break;
    }
    const Nanos tb = barriers_.empty() ? kNever : barriers_.front().at;
    if (tb <= min_next) {
      // Every lane is already at or past the barrier instant: the
      // barrier runs now, before any event at or after its timestamp.
      run_barrier();
      continue;
    }
    // Conservative windows: lane i may run strictly below the earliest
    // event any *other* lane could still mail it (their next event time
    // plus the lookahead), and never past the next barrier.
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      Nanos other_min = kNever;
      for (std::size_t j = 0; j < engines_.size(); ++j) {
        if (j != i) other_min = std::min(other_min, next_times_[j]);
      }
      bounds_[i] = std::min(saturating_add(other_min, lookahead_), tb);
    }
    // Progress proof: the lane holding min_next has bound > min_next
    // (lookahead > 0 and tb > min_next here), so every round executes
    // at least one event.
    assert([&] {
      const std::uint64_t before = total_executed();
      const bool progress = before != last_progress;
      last_progress = before;
      return progress || rounds_ == 0;
    }());
    run_round(bounds_);
    collect_outboxes();
  }
  stop_workers();
  finish_telemetry();
}

std::uint64_t LaneRunner::total_executed() const {
  std::uint64_t total = 0;
  for (const auto& engine : engines_) total += engine->executed();
  return total;
}

Nanos LaneRunner::max_lane_now() const {
  Nanos latest{0};
  for (const auto& engine : engines_) latest = std::max(latest, engine->now());
  return latest;
}

void LaneRunner::finish_telemetry() {
  if (metrics_ != nullptr) {
    metrics_->counter("sds_sim_lane_rounds_total", labels_)->add(rounds_);
    metrics_->counter("sds_sim_lane_cross_messages_total", labels_)
        ->add(cross_messages_);
    metrics_->counter("sds_sim_lane_barriers_total", labels_)
        ->add(barriers_run_);
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      telemetry::Labels lane_labels = labels_;
      lane_labels.emplace_back("lane", std::to_string(i));
      metrics_->gauge("sds_sim_lane_events_executed", lane_labels)
          ->set(static_cast<double>(engines_[i]->executed()));
    }
  }
  if (tracer_ != nullptr) {
    // One span per lane on its own track: the lane's share of virtual
    // time, annotated with its event count — enough to see imbalance in
    // a Perfetto view of the run.
    constexpr std::uint32_t kLaneTrackBase = 100;
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      const auto track = static_cast<std::uint32_t>(kLaneTrackBase + i);
      tracer_->set_track_name(track, "sim lane " + std::to_string(i));
      tracer_->record({"lane", "sim", track, 0,
                       "events=" + std::to_string(engines_[i]->executed()),
                       Nanos{0}, engines_[i]->now()});
    }
  }
}

}  // namespace sds::sim
