// FronteraProfile — every calibration constant of the cluster model in
// one documented place.
//
// The model's *structure* (per-message CPU costs serialized on a
// controller's core, NIC serialization + wire latency, per-entry
// aggregation/compute costs, per-connection and per-stage memory state)
// produces the paper's scaling shapes; these constants only set absolute
// magnitudes. They were calibrated once against the paper's headline
// numbers (flat @2,500 ≈ 41 ms; hierarchical @10,000/4 aggs ≈ 103 ms;
// Tables II–IV resource columns) and are never tuned per experiment:
// every figure and table reproduction runs the same profile.
#pragma once

#include <cstdint>

#include "common/clock.h"

namespace sds::sim {

struct FronteraProfile {
  // -- Wire / NIC ------------------------------------------------------
  /// One-way network latency between any two nodes (InfiniBand fabric,
  /// including kernel/verbs handoff).
  Nanos wire_latency = micros(5);
  /// Effective control-message throughput of one node's RPC stack in
  /// bytes/ns. Far below HDR-100 line rate: small gRPC-style messages are
  /// message-rate-bound, not bandwidth-bound (~45 MB/s effective).
  double nic_bytes_per_ns = 0.038;
  /// Per-message framing overhead added on the wire (TCP/IP + RPC
  /// framing).
  std::size_t msg_overhead_bytes = 32;
  /// Extra wire bytes per enforcement rule: the real Cheferd rule payload
  /// carries enforcement-object paths and per-channel token
  /// configuration, which our compact proto::Rule does not. Applied by
  /// the simulator when sizing enforce messages so that the paper's
  /// "enforce messages are larger" property (and the Tables' tx > rx at
  /// the flat global controller) holds.
  std::size_t rule_extra_wire_bytes = 80;

  // -- Per-message CPU costs (controller-side, serialized on one core) --
  /// Fixed CPU cost to build/submit one outbound message.
  Nanos cpu_send_fixed = nanos(2800);
  /// Additional CPU per payload byte on send (serialization + copies).
  double cpu_send_per_byte_ns = 2.0;
  /// Fixed CPU cost to receive/dispatch one inbound message.
  Nanos cpu_recv_fixed = nanos(2800);
  /// Additional CPU per payload byte on receive.
  double cpu_recv_per_byte_ns = 0.5;

  // -- Compute-phase costs ----------------------------------------------
  /// Parsing + merging one raw stage-metric entry into job demand (flat
  /// global controller or pass-through mode).
  Nanos cpu_merge_per_stage = nanos(2200);
  /// Aggregator-side merge of one stage entry. The total aggregation
  /// work (entries × this) dwarfs the PSFA run (jobs × cpu_psfa_per_job),
  /// matching the paper's observation that aggregating 2,500 nodes costs
  /// more than running PSFA.
  Nanos cpu_agg_merge_per_stage = nanos(1300);
  /// PSFA cost per job entry.
  Nanos cpu_psfa_per_job = nanos(900);
  /// Pass-through relay cost per stage entry at an aggregator that does
  /// NOT pre-aggregate (copy into the upward batch).
  Nanos cpu_relay_per_stage = nanos(500);
  /// Deriving one per-stage rule from job allocations (split). This is
  /// per-stage work the global controller performs in BOTH designs — the
  /// aggregator-count-independent latency floor of Fig. 5.
  Nanos cpu_split_per_stage = nanos(2300);
  /// Enforce-phase routing: deciding which connection/aggregator carries
  /// each rule ("coordinating to which compute node each storage rule
  /// should be submitted").
  Nanos cpu_route_per_rule = nanos(2000);

  // -- Stage model -------------------------------------------------------
  /// Virtual-stage service time: receive a request, produce the reply.
  Nanos stage_service = micros(18);

  // -- Control-cycle fixed costs ------------------------------------------
  /// Non-CPU synchronization wait at each phase boundary (completion-queue
  /// wakeups, timer slack). Dominates only at small node counts — it is
  /// why 50 nodes cost ~1.1 ms rather than ~0.8 ms.
  Nanos phase_sync_overhead = micros(100);

  // -- Connection limit ---------------------------------------------------
  /// Concurrent connections one Frontera node sustains (paper §IV-A).
  std::size_t max_connections_per_node = 2500;

  // -- Resource model (Tables II–IV) --------------------------------------
  /// Baseline RSS of a controller process.
  double mem_base_bytes = 50e6;
  /// Per managed connection (channel buffers etc.) at the global
  /// controller.
  double mem_per_conn_bytes = 250e3;
  /// Per-stage control state held by the global controller (metric
  /// tables, rule state).
  double mem_per_stage_state_bytes = 220e3;
  /// Extra per-stage buffering at the global controller when stages are
  /// reached via aggregators (batched rule/ack buffers per subtree).
  double mem_per_stage_hier_bytes = 130e3;
  /// Aggregator memory per managed stage (connection + relay state).
  double mem_agg_per_stage_bytes = 70e3;
  /// Aggregator baseline RSS.
  double mem_agg_base_bytes = 12e6;

  /// REMORA-style CPU%: modeled busy fraction of the control thread,
  /// scaled to the multi-threaded RPC stack's node-level footprint.
  double cpu_percent_scale = 10.4;
  double agg_cpu_percent_scale = 10.0;

  /// Construct the default calibrated profile.
  static FronteraProfile calibrated() { return FronteraProfile{}; }
};

}  // namespace sds::sim
