// SimHost — time model of one controller node: a serial CPU queue and a
// serializing NIC transmit link, with byte/busy-time accounting.
//
// The model is deliberately simple (it is the paper's own observation
// that per-message controller work and the connection fan-out dominate):
//   * CPU work items execute FIFO on one core; `busy_ns` accumulates.
//   * Outbound messages first cost CPU (build/serialize), then occupy the
//     NIC for size/bandwidth, then arrive after the wire latency.
//   * Inbound messages cost CPU on receive before their handler runs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "sim/engine.h"
#include "sim/profile.h"

namespace sds::sim {

class SimHost {
 public:
  SimHost(Engine& engine, const FronteraProfile& profile, std::string name)
      : engine_(&engine), profile_(&profile), name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Execute `fn` after `cpu_cost` of serial CPU work on this host.
  void run(Nanos cpu_cost, Engine::EventFn fn) {
    const Nanos start = std::max(engine_->now(), cpu_free_);
    cpu_free_ = start + cpu_cost;
    busy_ns_ += cpu_cost.count();
    engine_->schedule_at(cpu_free_, std::move(fn));
  }

  /// Send a message of `payload_bytes`: charges send CPU (plus
  /// `extra_cpu`, e.g. per-rule routing work), serializes on the NIC,
  /// then invokes `on_arrival` at the destination time. The receiver is
  /// responsible for charging its own receive cost (use `receive` in the
  /// continuation).
  void send(std::size_t payload_bytes, Engine::EventFn on_arrival,
            Nanos extra_cpu = Nanos{0}) {
    const std::size_t wire_bytes = payload_bytes + profile_->msg_overhead_bytes;
    bytes_tx_ += wire_bytes;
    ++messages_tx_;
    const Nanos cpu_cost =
        extra_cpu + profile_->cpu_send_fixed +
        Nanos{static_cast<std::int64_t>(
            static_cast<double>(payload_bytes) * profile_->cpu_send_per_byte_ns)};
    run(cpu_cost, [this, wire_bytes, on_arrival = std::move(on_arrival)]() mutable {
      const Nanos serialize{static_cast<std::int64_t>(
          static_cast<double>(wire_bytes) / profile_->nic_bytes_per_ns)};
      const Nanos start = std::max(engine_->now(), tx_free_);
      tx_free_ = start + serialize;
      engine_->schedule_at(tx_free_ + profile_->wire_latency,
                           std::move(on_arrival));
    });
  }

  /// Account an inbound message and run `fn` after the receive CPU cost.
  void receive(std::size_t payload_bytes, Engine::EventFn fn) {
    bytes_rx_ += payload_bytes + profile_->msg_overhead_bytes;
    ++messages_rx_;
    const Nanos cpu_cost =
        profile_->cpu_recv_fixed +
        Nanos{static_cast<std::int64_t>(
            static_cast<double>(payload_bytes) * profile_->cpu_recv_per_byte_ns)};
    run(cpu_cost, std::move(fn));
  }

  // -- Accounting ------------------------------------------------------
  [[nodiscard]] Nanos busy() const { return Nanos{busy_ns_} ; }
  [[nodiscard]] std::uint64_t bytes_tx() const { return bytes_tx_; }
  [[nodiscard]] std::uint64_t bytes_rx() const { return bytes_rx_; }
  [[nodiscard]] std::uint64_t messages_tx() const { return messages_tx_; }
  [[nodiscard]] std::uint64_t messages_rx() const { return messages_rx_; }

  void reset_accounting() {
    busy_ns_ = Nanos{0}.count();
    bytes_tx_ = bytes_rx_ = 0;
    messages_tx_ = messages_rx_ = 0;
  }

 private:
  Engine* engine_;
  const FronteraProfile* profile_;
  std::string name_;

  Nanos cpu_free_{0};
  Nanos tx_free_{0};
  std::int64_t busy_ns_ = 0;
  std::uint64_t bytes_tx_ = 0;
  std::uint64_t bytes_rx_ = 0;
  std::uint64_t messages_tx_ = 0;
  std::uint64_t messages_rx_ = 0;
};

}  // namespace sds::sim
