// SimHost — time model of one controller node: a serial CPU queue and a
// serializing NIC transmit link, with byte/busy-time accounting.
//
// The model is deliberately simple (it is the paper's own observation
// that per-message controller work and the connection fan-out dominate):
//   * CPU work items execute FIFO on one core; `busy_ns` accumulates.
//   * Outbound messages first cost CPU (build/serialize), then occupy the
//     NIC for size/bandwidth, then arrive after the wire latency.
//   * Inbound messages cost CPU on receive before their handler runs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.h"
#include "sim/profile.h"

namespace sds::sim {

class SimHost {
 public:
  SimHost(Engine& engine, const FronteraProfile& profile, std::string name)
      : engine_(&engine), profile_(&profile), name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Execute `fn` after `cpu_cost` of serial CPU work on this host.
  void run(Nanos cpu_cost, Engine::EventFn fn) {
    const Nanos start = std::max(engine_->now(), cpu_free_);
    cpu_free_ = start + cpu_cost;
    busy_ns_ += cpu_cost.count();
    engine_->schedule_at(cpu_free_, std::move(fn));
  }

  /// Send a message of `payload_bytes`: charges send CPU (plus
  /// `extra_cpu`, e.g. per-rule routing work), serializes on the NIC,
  /// then invokes `on_arrival` at the destination time. The receiver is
  /// responsible for charging its own receive cost (use `receive` in the
  /// continuation).
  ///
  /// Templated on the arrival callable so the NIC continuation captures
  /// the raw closure (not a type-erased EventFn) — the common small
  /// captures then stay within SmallFn's inline buffer end to end.
  template <typename F>
  void send(std::size_t payload_bytes, F&& on_arrival,
            Nanos extra_cpu = Nanos{0}) {
    send_to(engine_->lane(), payload_bytes, std::forward<F>(on_arrival),
            extra_cpu);
  }

  /// send() with an explicit destination lane for parallel runs: the
  /// arrival closure executes on `dest_lane`'s engine. Timing is
  /// identical to send() — the destination lane only selects where the
  /// arrival runs, never when (arrivals always pay >= one wire latency,
  /// which is the lane runner's lookahead).
  template <typename F>
  void send_to(std::uint32_t dest_lane, std::size_t payload_bytes,
               F&& on_arrival, Nanos extra_cpu = Nanos{0}) {
    run(charge_send(payload_bytes, extra_cpu),
        make_nic_event(dest_lane, payload_bytes, std::forward<F>(on_arrival)));
  }

  /// Fan out `count` messages of identical `payload_bytes` in one batched
  /// engine insert. Exactly equivalent to calling send() `count` times in
  /// index order — same accounting, same event times, same FIFO ordering —
  /// but the per-message CPU-completion events enter the engine through
  /// one schedule_batch call instead of `count` heap pushes.
  /// `make_on_arrival(i)` is invoked synchronously for i in [0, count).
  template <typename MakeArrival>
  void broadcast(std::size_t count, std::size_t payload_bytes,
                 MakeArrival&& make_on_arrival, Nanos extra_cpu = Nanos{0}) {
    const std::uint32_t own = engine_->lane();
    broadcast_to(
        count, payload_bytes, std::forward<MakeArrival>(make_on_arrival),
        [own](std::size_t) { return own; }, extra_cpu);
  }

  /// broadcast() with per-recipient destination lanes: `lane_of(i)` names
  /// the lane the i-th arrival closure executes on. Accounting and event
  /// times are identical to broadcast().
  template <typename MakeArrival, typename LaneOf>
  void broadcast_to(std::size_t count, std::size_t payload_bytes,
                    MakeArrival&& make_on_arrival, LaneOf&& lane_of,
                    Nanos extra_cpu = Nanos{0}) {
    batch_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const Nanos cpu_cost = charge_send(payload_bytes, extra_cpu);
      const Nanos start = std::max(engine_->now(), cpu_free_);
      cpu_free_ = start + cpu_cost;
      busy_ns_ += cpu_cost.count();
      batch_.push_back(Engine::TimedEvent{
          cpu_free_,
          make_nic_event(lane_of(i), payload_bytes, make_on_arrival(i))});
    }
    engine_->schedule_batch(batch_);
  }

  /// Account an inbound message and run `fn` after the receive CPU cost.
  template <typename F>
  void receive(std::size_t payload_bytes, F&& fn) {
    bytes_rx_ += payload_bytes + profile_->msg_overhead_bytes;
    ++messages_rx_;
    const Nanos cpu_cost =
        profile_->cpu_recv_fixed +
        Nanos{static_cast<std::int64_t>(
            static_cast<double>(payload_bytes) * profile_->cpu_recv_per_byte_ns)};
    run(cpu_cost, std::forward<F>(fn));
  }

  // -- Accounting ------------------------------------------------------
  [[nodiscard]] Nanos busy() const { return Nanos{busy_ns_} ; }
  [[nodiscard]] std::uint64_t bytes_tx() const { return bytes_tx_; }
  [[nodiscard]] std::uint64_t bytes_rx() const { return bytes_rx_; }
  [[nodiscard]] std::uint64_t messages_tx() const { return messages_tx_; }
  [[nodiscard]] std::uint64_t messages_rx() const { return messages_rx_; }

  void reset_accounting() {
    busy_ns_ = Nanos{0}.count();
    bytes_tx_ = bytes_rx_ = 0;
    messages_tx_ = messages_rx_ = 0;
  }

 private:
  /// Account one outbound message and return its send-side CPU cost.
  Nanos charge_send(std::size_t payload_bytes, Nanos extra_cpu) {
    bytes_tx_ += payload_bytes + profile_->msg_overhead_bytes;
    ++messages_tx_;
    return extra_cpu + profile_->cpu_send_fixed +
           Nanos{static_cast<std::int64_t>(
               static_cast<double>(payload_bytes) *
               profile_->cpu_send_per_byte_ns)};
  }

  /// The NIC-serialization continuation shared by send() and broadcast():
  /// occupies the transmit link for size/bandwidth, then schedules
  /// `on_arrival` on `dest_lane` after the wire latency. The arrival is
  /// always >= one wire latency in the future, so cross-lane deliveries
  /// satisfy the lane runner's conservative lookahead by construction.
  template <typename F>
  auto make_nic_event(std::uint32_t dest_lane, std::size_t payload_bytes,
                      F&& on_arrival) {
    const std::size_t wire_bytes = payload_bytes + profile_->msg_overhead_bytes;
    return [this, dest_lane, wire_bytes,
            on_arrival = std::forward<F>(on_arrival)]() mutable {
      const Nanos serialize{static_cast<std::int64_t>(
          static_cast<double>(wire_bytes) / profile_->nic_bytes_per_ns)};
      const Nanos start = std::max(engine_->now(), tx_free_);
      tx_free_ = start + serialize;
      engine_->schedule_cross(dest_lane, tx_free_ + profile_->wire_latency,
                              std::move(on_arrival));
    };
  }

  Engine* engine_;
  const FronteraProfile* profile_;
  std::string name_;

  Nanos cpu_free_{0};
  Nanos tx_free_{0};
  std::vector<Engine::TimedEvent> batch_;  // broadcast scratch, reused
  std::int64_t busy_ns_ = 0;
  std::uint64_t bytes_tx_ = 0;
  std::uint64_t bytes_rx_ = 0;
  std::uint64_t messages_tx_ = 0;
  std::uint64_t messages_rx_ = 0;
};

}  // namespace sds::sim
