// Discrete-event simulation engine: a time-ordered event queue with a
// simulated clock. Deterministic — ties are broken by insertion order.
//
// The simulator exists because the paper's experiments need up to 10,000
// compute nodes; we model the cluster's time behaviour while running the
// *real* controller logic (core::GlobalControllerCore etc.) for every
// decision, so simulated experiments exercise the same code as live ones.
//
// Event core (allocation-lean fast path):
//   * Closures are placement-new'd once into SmallFn cells of a stable
//     slab (deque + free-list): constructed in place, executed in place,
//     never relocated, and no per-event heap allocation for the capture
//     sizes the cycle driver produces.
//   * The time-ordered structures shuffle only 24-byte POD keys
//     {at, seq, slot}, so ordering work is cheap POD moves instead of
//     type-erased closure relocations.
//   * Near-future keys live in a calendar time wheel (kWheelBuckets
//     buckets of 2^kBucketShift ns each). Scheduling is O(1): append to
//     the destination bucket's vector. A bitmap over buckets lets the
//     cursor skip empty slots in O(words).
//   * When the cursor reaches a bucket, its keys are sorted once by
//     exact (time, seq) and consumed linearly; keys scheduled into the
//     already-sorted window go to a (normally tiny) incoming min-heap
//     merged on the fly. Execution order is identical to a single
//     global priority queue — bucket boundaries never reorder events.
//   * Keys beyond the wheel horizon overflow to a min-heap and migrate
//     into the wheel as the cursor advances (amortized O(1) per event).
//   * schedule_batch() lets fan-out bursts (one collect to N stages)
//     enter the wheel through one call with scratch-vector reuse.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <limits>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/small_fn.h"

namespace sds::sim {

class Engine {
 public:
  using EventFn = SmallFn;

  /// A (time, closure) pair for schedule_batch bursts.
  struct TimedEvent {
    Nanos at;
    EventFn fn;
  };

  /// A cross-lane event captured by the lane outbox (parallel mode; see
  /// sim/parallel.h). `src_seq` is a per-source-engine counter so the
  /// lane runner can merge outboxes deterministically by
  /// (at, source lane, src_seq) — the same 24-byte POD ordering idea as
  /// Key, extended with the source lane as the middle tie-break.
  struct CrossEvent {
    Nanos at;
    std::uint32_t dest_lane;
    std::uint64_t src_seq;
    EventFn fn;
  };

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Nanos now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `at` (clamped to now).
  /// Accepts any void() callable; the closure is constructed directly in
  /// its slab cell (no intermediate EventFn when given a raw lambda).
  template <typename F>
  void schedule_at(Nanos at, F&& fn) {
    insert(at < now_ ? now_ : at, std::forward<F>(fn));
  }

  /// Schedule `fn` after a simulated delay.
  template <typename F>
  void schedule_in(Nanos delay, F&& fn) {
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule a burst in one call; events keep their relative order (the
  /// i-th entry gets the i-th sequence number, exactly as if schedule_at
  /// had been called in a loop). `batch` is left empty with its capacity
  /// intact so callers can reuse it as a scratch buffer.
  void schedule_batch(std::vector<TimedEvent>& batch) {
    for (auto& ev : batch) {
      insert(ev.at < now_ ? now_ : ev.at, std::move(ev.fn));
    }
    batch.clear();
  }

  // Lane hooks — used only by sim::LaneRunner (sim/parallel.h). A serial
  // engine never calls configure_lane, so capture_cross_ stays false and
  // schedule_cross degenerates to schedule_at with zero overhead beyond
  // one predictable branch.

  /// Mark this engine as lane `lane` of a parallel run. When
  /// `capture_cross` is set, schedule_cross calls addressed to another
  /// lane are diverted to the outbox instead of the local queue.
  /// `lookahead` is the lane runner's conservative lookahead L: once this
  /// lane emits a cross-lane message with delivery time d, the earliest
  /// causal echo another lane can mail back arrives at d + L, so
  /// run_before self-caps at min(outbox deliveries) + L. Without the cap
  /// a lane whose peers are idle gets an unbounded window and can run
  /// past the replies its own in-round sends will provoke.
  void configure_lane(std::uint32_t lane, bool capture_cross,
                      Nanos lookahead = Nanos{0}) {
    lane_ = lane;
    capture_cross_ = capture_cross;
    echo_lookahead_ = lookahead;
  }

  [[nodiscard]] std::uint32_t lane() const { return lane_; }

  /// Schedule `fn` at absolute time `at` on lane `dest_lane`. Same-lane
  /// (or serial-mode) destinations take the ordinary local path;
  /// cross-lane destinations are buffered in the outbox for the lane
  /// runner to deliver at the next synchronization horizon. Cross-lane
  /// timestamps must respect the runner's lookahead: at >= now + L.
  template <typename F>
  void schedule_cross(std::uint32_t dest_lane, Nanos at, F&& fn) {
    if (!capture_cross_ || dest_lane == lane_) {
      schedule_at(at, std::forward<F>(fn));
      return;
    }
    outbox_.push_back(
        CrossEvent{at, dest_lane, cross_seq_++, EventFn(std::forward<F>(fn))});
    outbox_min_at_ = std::min(outbox_min_at_, at);
  }

  [[nodiscard]] bool outbox_empty() const { return outbox_.empty(); }

  /// The buffered cross-lane events, in creation order (src_seq order).
  /// The lane runner moves these out between rounds via take_outbox.
  [[nodiscard]] std::vector<CrossEvent>& outbox() { return outbox_; }

  /// Reset the outbox (and its echo watermark) after the lane runner has
  /// moved the events out. Capacity is retained for reuse.
  void clear_outbox() {
    outbox_.clear();
    outbox_min_at_ = kNoEcho;
  }

  /// Report the timestamp of the next runnable event without executing
  /// it. Returns false when the queue is empty. (May migrate keys
  /// between internal containers, hence non-const.)
  [[nodiscard]] bool peek_next(Nanos& at) {
    if (!prepare_next()) return false;
    at = next_key().at;
    return true;
  }

  /// Execute events with timestamps strictly earlier than `bound`, and —
  /// in lane mode — strictly earlier than the echo horizon of this
  /// window's own cross-lane sends (earliest buffered delivery + L):
  /// replies those sends provoke can arrive from that instant on, and
  /// they are only merged in at the next round boundary. Unlike
  /// run_until, the clock is left at the last executed event — the lane
  /// runner owns the notion of global progress, and a lane must not
  /// advance its clock past events other lanes may still mail it.
  void run_before(Nanos bound) {
    while (prepare_next()) {
      Nanos limit = bound;
      if (outbox_min_at_ != kNoEcho) {
        limit = std::min(limit, outbox_min_at_ + echo_lookahead_);
      }
      if (next_key().at >= limit) break;
      step();
    }
  }

  /// Advance the clock to `t` without executing anything. The lane
  /// runner uses this to line a quiet lane's clock up with global
  /// progress before seeding it with new work.
  void advance_to(Nanos t) {
    if (now_ < t) now_ = t;
  }

  [[nodiscard]] bool empty() const { return pending_ == 0; }
  [[nodiscard]] std::size_t pending() const { return pending_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  // The step/insert/alloc_slot core is allocation-lean by construction
  // (slab reuse, POD key shuffling); sdslint keeps it that way.
  // sdslint: hotpath

  /// Execute the next event; returns false when the queue is empty.
  bool step() {
    if (!prepare_next()) return false;
    const Key key = pop_min();
    // The sorted window tells us which closures run next — warm their
    // slab cells while the current closure executes. (A global heap
    // cannot do this: its next event is unknown until the sift ends.)
    prefetch_upcoming();
    --pending_;
    now_ = key.at;
    ++executed_;
    // Run the closure in place: deque cells are address-stable, so events
    // this closure schedules (which may grow the slab) cannot move it.
    slab_[key.slot]();
    slab_[key.slot].reset();  // release captures promptly
    free_slots_.push_back(key.slot);
    return true;
  }

  /// Run until the queue drains.
  void run() {
    while (step()) {
    }
  }

  /// Run events with timestamps <= `deadline`; the clock ends at
  /// `deadline` even if the queue drained earlier.
  void run_until(Nanos deadline) {
    while (prepare_next() && next_key().at <= deadline) step();
    if (now_ < deadline) now_ = deadline;
  }

 private:
  /// POD ordering key; `slot` indexes the closure's slab cell.
  struct Key {
    Nanos at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// seq values are unique, so (at, seq) is a total order and FIFO among
  /// equal timestamps.
  [[nodiscard]] static bool earlier(const Key& a, const Key& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  /// Comparator for std::push_heap/pop_heap min-heaps.
  struct Later {
    bool operator()(const Key& a, const Key& b) const { return earlier(b, a); }
  };

  // 4096 buckets x 2.048 us = an 8.4 ms horizon, matched to the event
  // spacing the control-cycle driver produces (microseconds); coarser
  // timers (cycle periods, samplers) take the overflow heap.
  static constexpr int kBucketShift = 11;  // 2048 ns per bucket
  static constexpr std::size_t kWheelBuckets = 4096;
  static constexpr std::uint64_t kBucketMask = kWheelBuckets - 1;
  static constexpr std::size_t kBitmapWords = kWheelBuckets / 64;

  [[nodiscard]] static std::uint64_t bucket_of(Nanos at) {
    return static_cast<std::uint64_t>(at.count()) >> kBucketShift;
  }

  [[nodiscard]] Nanos active_end() const {
    return Nanos{static_cast<std::int64_t>((cursor_ + 1) << kBucketShift)};
  }

  [[nodiscard]] Nanos horizon_end() const {
    return Nanos{static_cast<std::int64_t>((cursor_ + kWheelBuckets)
                                           << kBucketShift)};
  }

  [[nodiscard]] bool active_drained() const {
    return active_idx_ >= active_.size() && incoming_.empty();
  }

  /// Park `fn` in a slab cell (reusing a freed one when possible) and
  /// return its index. Cells are only written here and in step(), so a
  /// cell is never reassigned while its closure is pending or running.
  template <typename F>
  std::uint32_t alloc_slot(F&& fn) {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      slab_[slot].emplace(std::forward<F>(fn));
      return slot;
    }
    slab_.emplace_back(std::forward<F>(fn));
    return static_cast<std::uint32_t>(slab_.size() - 1);
  }

  template <typename F>
  void insert(Nanos at, F&& fn) {
    ++pending_;
    const Key key{at, next_seq_++, alloc_slot(std::forward<F>(fn))};
    if (at < active_end()) {
      // Lands inside the already-sorted window: merge via the incoming
      // heap (normally a handful of short-delay events).
      incoming_.push_back(key);
      std::push_heap(incoming_.begin(), incoming_.end(), Later{});
      return;
    }
    if (at < horizon_end()) {
      wheel_insert(key);
      return;
    }
    overflow_.push_back(key);
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  }

  void wheel_insert(Key key) {
    const std::uint64_t slot = bucket_of(key.at) & kBucketMask;
    wheel_[slot].push_back(key);
    bitmap_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    ++wheel_count_;
  }
  // sdslint: end-hotpath

  /// The next key in execution order. Precondition: prepare_next() true.
  [[nodiscard]] const Key& next_key() const {
    if (!incoming_.empty() && (active_idx_ >= active_.size() ||
                               earlier(incoming_.front(), active_[active_idx_]))) {
      return incoming_.front();
    }
    return active_[active_idx_];
  }

  /// Pop the next key in execution order. Precondition: prepare_next().
  Key pop_min() {
    if (!incoming_.empty() && (active_idx_ >= active_.size() ||
                               earlier(incoming_.front(), active_[active_idx_]))) {
      std::pop_heap(incoming_.begin(), incoming_.end(), Later{});
      const Key key = incoming_.back();
      incoming_.pop_back();
      return key;
    }
    return active_[active_idx_++];
  }

  /// Hint the cache about the slab cells of the next few sorted-window
  /// keys; by the time they execute, their captures are resident.
  void prefetch_upcoming() const {
#if defined(__GNUC__) || defined(__clang__)
    const std::size_t look = active_idx_ + 3;
    if (look < active_.size()) {
      const auto* cell =
          reinterpret_cast<const unsigned char*>(&slab_[active_[look].slot]);
      __builtin_prefetch(cell);       // closure storage
      __builtin_prefetch(cell + 64);  // ops pointer (read first by invoke)
    }
#endif
  }

  /// Advance the cursor until the active window holds the next runnable
  /// event. Moves keys between containers only — never executes anything
  /// — so it is safe to call from run_until peeks.
  bool prepare_next() {
    while (active_drained()) {
      if (pending_ == 0) return false;
      if (wheel_count_ == 0) {
        // Everything pending is beyond the horizon: rebase the (empty)
        // wheel at the earliest overflow event instead of scanning.
        cursor_ = std::max(cursor_ + 1, bucket_of(overflow_.front().at));
      } else if (!advance_to_occupied_bucket()) {
        return false;  // unreachable while wheel_count_ > 0
      }
      drain_overflow();
      refill_active();
    }
    return true;
  }

  /// Move the cursor to the next occupied wheel bucket (bitmap scan).
  bool advance_to_occupied_bucket() {
    for (std::uint64_t probe = cursor_ + 1; probe <= cursor_ + kWheelBuckets;
         /* advanced below */) {
      const std::uint64_t slot = probe & kBucketMask;
      const std::uint64_t word = bitmap_[slot >> 6] >> (slot & 63);
      if (word != 0) {
        cursor_ = probe + static_cast<std::uint64_t>(std::countr_zero(word));
        return true;
      }
      probe += 64 - (slot & 63);  // next bitmap word boundary
    }
    return false;
  }

  /// Migrate overflow keys that now fall inside the wheel horizon.
  void drain_overflow() {
    const Nanos end = horizon_end();
    while (!overflow_.empty() && overflow_.front().at < end) {
      std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
      const Key key = overflow_.back();
      overflow_.pop_back();
      if (key.at < active_end()) {
        // The rebased cursor's own bucket belongs to the active window.
        incoming_.push_back(key);
        std::push_heap(incoming_.begin(), incoming_.end(), Later{});
      } else {
        wheel_insert(key);
      }
    }
  }

  /// Take the cursor bucket's keys as the active window, sorted once by
  /// exact (time, seq) and then consumed linearly. Only called when the
  /// previous window is fully drained (prepare_next loop condition), so
  /// swapping out the consumed vector is safe — and recycles capacity
  /// back into the bucket.
  void refill_active() {
    const std::uint64_t slot = cursor_ & kBucketMask;
    auto& bucket = wheel_[slot];
    if (bucket.empty()) return;
    wheel_count_ -= bucket.size();
    bitmap_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    active_.clear();
    active_.swap(bucket);
    active_idx_ = 0;
    std::sort(active_.begin(), active_.end(), earlier);
  }

  Nanos now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t pending_ = 0;

  /// Echo-watermark sentinel: "no cross-lane sends buffered".
  static constexpr Nanos kNoEcho{std::numeric_limits<std::int64_t>::max()};

  // Lane state (parallel mode; inert for serial engines).
  std::uint32_t lane_ = 0;
  bool capture_cross_ = false;
  std::uint64_t cross_seq_ = 0;
  std::vector<CrossEvent> outbox_;
  Nanos outbox_min_at_{kNoEcho};
  Nanos echo_lookahead_{0};

  /// Closure cells; deque for address stability (executing closures and
  /// slab growth never relocate a pending cell).
  std::deque<EventFn> slab_;
  std::vector<std::uint32_t> free_slots_;

  /// Absolute bucket number under the cursor; events with this bucket
  /// number (or clamped into it) form the active window.
  std::uint64_t cursor_ = 0;
  std::vector<Key> active_;    // sorted ascending; consumed via active_idx_
  std::size_t active_idx_ = 0;
  std::vector<Key> incoming_;  // min-heap: keys scheduled into the window
  std::array<std::vector<Key>, kWheelBuckets> wheel_;
  std::array<std::uint64_t, kBitmapWords> bitmap_{};
  std::size_t wheel_count_ = 0;
  std::vector<Key> overflow_;  // min-heap on (at, seq), beyond horizon
};

}  // namespace sds::sim
