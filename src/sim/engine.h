// Discrete-event simulation engine: a time-ordered event queue with a
// simulated clock. Deterministic — ties are broken by insertion order.
//
// The simulator exists because the paper's experiments need up to 10,000
// compute nodes; we model the cluster's time behaviour while running the
// *real* controller logic (core::GlobalControllerCore etc.) for every
// decision, so simulated experiments exercise the same code as live ones.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"

namespace sds::sim {

class Engine {
 public:
  using EventFn = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Nanos now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `at` (clamped to now).
  void schedule_at(Nanos at, EventFn fn) {
    if (at < now_) at = now_;
    queue_.push(Event{at, next_seq_++, std::move(fn)});
  }

  /// Schedule `fn` after a simulated delay.
  void schedule_in(Nanos delay, EventFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Execute the next event; returns false when the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    // Move the event out before popping so its closure may schedule.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    ++executed_;
    event.fn();
    return true;
  }

  /// Run until the queue drains.
  void run() {
    while (step()) {
    }
  }

  /// Run events with timestamps <= `deadline`; the clock ends at
  /// `deadline` even if the queue drained earlier.
  void run_until(Nanos deadline) {
    while (!queue_.empty() && queue_.top().at <= deadline) step();
    if (now_ < deadline) now_ = deadline;
  }

 private:
  struct Event {
    Nanos at;
    std::uint64_t seq;
    EventFn fn;

    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Nanos now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace sds::sim
