#include "sim/experiment.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/aggregator.h"
#include "core/coordinated.h"
#include "core/global.h"
#include "core/metrics_store.h"
#include "policy/incremental_psfa.h"
#include "sim/engine.h"
#include "sim/host.h"
#include "sim/parallel.h"

namespace sds::sim {

namespace {

template <typename M>
std::size_t frame_size(const M& msg) {
  return msg.wire_size() + wire::kFrameHeaderSize;
}

Nanos scaled(Nanos per_item, std::size_t count) {
  return Nanos{per_item.count() * static_cast<std::int64_t>(count)};
}

/// Lanes actually worth running: capped by the topology's independent
/// units (each unit's subtree is lane-local, so more lanes than units
/// would stay empty) and forced to 1 when the profile offers no
/// positive lookahead (cross-lane safety needs wire latency > 0).
std::size_t effective_lanes(const ExperimentConfig& cfg) {
  const std::size_t requested = std::max<std::size_t>(1, cfg.lanes);
  if (cfg.profile.wire_latency <= Nanos{0}) return 1;
  std::size_t units = cfg.num_stages;
  if (cfg.coordinated_peers > 0) {
    units = cfg.coordinated_peers;
  } else if (cfg.num_aggregators > 0) {
    units = cfg.num_aggregators;
  }
  return std::min(requested, std::max<std::size_t>(1, units));
}

LaneRunner::Options lane_options(const ExperimentConfig& cfg) {
  LaneRunner::Options options;
  options.lanes = effective_lanes(cfg);
  options.lookahead = cfg.profile.wire_latency;
  options.seed = cfg.seed;
  options.metrics = cfg.metrics;
  options.tracer = cfg.tracer;
  if (cfg.metrics != nullptr) {
    options.labels = {{"component", "sim"}};
    if (!cfg.telemetry_label.empty()) {
      options.labels.emplace_back("configuration", cfg.telemetry_label);
    }
  }
  return options;
}

/// One simulated run. Event closures capture `this` and plain indices;
/// all vectors are sized before the first event fires.
///
/// Lane discipline (see sim/parallel.h): every controller and stage is
/// pinned to one lane, all of its state is touched only by events on
/// that lane, and every controller-to-controller hop names its
/// destination lane (send_to / broadcast_to / schedule_cross). State
/// owned by the global controller (lane 0) is additionally read or
/// written by coordinator-context code — barrier events and the idle
/// callback — which the runner only invokes while every lane is
/// quiescent. Cross-cycle aggregates that used to accumulate in arrival
/// order (peer summaries, aggregator reports, passthrough batches) are
/// id-indexed instead, so the values a controller computes are a pure
/// function of the simulation, independent of lane count.
class Run {
 public:
  explicit Run(const ExperimentConfig& config)
      : cfg_(config),
        prof_(config.profile),
        lanes_(lane_options(config)),
        eng0_(lanes_.lane(0)),
        global_host_(eng0_, prof_, "global"),
        global_(core::GlobalOptions{config.budgets,
                                    policy::SplitStrategy::kProportional,
                                    /*epoch=*/1},
                std::make_unique<policy::IncrementalPsfa>(config.psfa)),
        store_(core::MetricsStoreOptions{config.activity_threshold}) {
    if (cfg_.metrics != nullptr) {
      telemetry::Labels labels{{"component", "sim"}};
      if (!cfg_.telemetry_label.empty()) {
        labels.emplace_back("configuration", cfg_.telemetry_label);
      }
      stats_.bind(cfg_.metrics, labels);
      events_gauge_ = cfg_.metrics->gauge("sds_sim_events_executed", labels);
      vtime_gauge_ =
          cfg_.metrics->gauge("sds_sim_virtual_time_seconds", labels);
    }
    if (cfg_.tracer != nullptr) {
      cfg_.tracer->set_track_name(0, "global controller");
      if (cfg_.num_aggregators > 0) {
        for (std::size_t a = 0; a < cfg_.num_aggregators; ++a) {
          cfg_.tracer->set_track_name(static_cast<std::uint32_t>(1 + a),
                                      "aggregator " + std::to_string(a));
        }
      } else if (cfg_.coordinated_peers == 0) {
        cfg_.tracer->set_track_name(1, "stage 0");
      }
    }
  }

  Status validate() const {
    const std::size_t cap = prof_.max_connections_per_node;
    if (cfg_.num_stages == 0) {
      return Status::invalid_argument("num_stages must be > 0");
    }
    if (cfg_.fault_plan != nullptr && !cfg_.fault_plan->empty()) {
      SDS_RETURN_IF_ERROR(cfg_.fault_plan->validate());
      if (coordinated() || deep() || cfg_.local_decisions) {
        return Status::invalid_argument(
            "fault injection supports only the flat and 2-level "
            "hierarchical topologies with central decisions");
      }
      if (!flat() && (!cfg_.preaggregate || !cfg_.parallel_fanout)) {
        return Status::invalid_argument(
            "fault injection in hierarchical mode requires pre-aggregation "
            "and parallel fan-out");
      }
    }
    if (cfg_.delta_collect) {
      if (!cfg_.store_collect) {
        return Status::invalid_argument(
            "delta_collect requires the store-backed collect path");
      }
      if (cfg_.delta_refresh == 0) {
        return Status::invalid_argument("delta_refresh must be > 0");
      }
      if (cfg_.fault_plan != nullptr && !cfg_.fault_plan->empty()) {
        return Status::invalid_argument(
            "delta_collect is incompatible with fault injection (a silent "
            "stage would break every subsequent delta chain)");
      }
      if (coordinated() ||
          (!flat() && (!cfg_.preaggregate || cfg_.local_decisions))) {
        return Status::invalid_argument(
            "delta_collect requires the flat or pre-aggregating "
            "hierarchical topology with central decisions");
      }
    }
    if (cfg_.coordinated_peers > 0) {
      if (cfg_.num_aggregators > 0) {
        return Status::invalid_argument(
            "coordinated_peers and num_aggregators are mutually exclusive");
      }
      const std::size_t k = cfg_.coordinated_peers;
      const std::size_t per_peer = (cfg_.num_stages + k - 1) / k;
      if (cap != 0 && per_peer + (k - 1) > cap) {
        return Status::resource_exhausted(
            "coordinated peer would hold " + std::to_string(per_peer + k - 1) +
            " connections, above the per-node cap of " + std::to_string(cap));
      }
      return Status::ok();
    }
    if (flat()) {
      if (cap != 0 && cfg_.num_stages > cap) {
        return Status::resource_exhausted(
            "flat design: " + std::to_string(cfg_.num_stages) +
            " stages exceed the per-node connection cap of " +
            std::to_string(cap));
      }
      return Status::ok();
    }
    if (deep()) {
      if (!cfg_.preaggregate || !cfg_.parallel_fanout || cfg_.local_decisions) {
        return Status::invalid_argument(
            "3-level hierarchies require pre-aggregation, parallel fan-out "
            "and central decisions");
      }
      if (cfg_.num_super_aggregators > cfg_.num_aggregators) {
        return Status::invalid_argument(
            "more super-aggregators than aggregators");
      }
      const std::size_t children =
          (cfg_.num_aggregators + cfg_.num_super_aggregators - 1) /
          cfg_.num_super_aggregators;
      if (cap != 0 && cfg_.num_super_aggregators > cap) {
        return Status::resource_exhausted("too many super-aggregators");
      }
      if (cap != 0 && children + 1 > cap) {
        return Status::resource_exhausted(
            "super-aggregator subtree exceeds the connection cap");
      }
      const std::size_t per_agg =
          (cfg_.num_stages + cfg_.num_aggregators - 1) / cfg_.num_aggregators;
      if (cap != 0 && per_agg + 1 > cap) {
        return Status::resource_exhausted(
            "aggregator subtree of " + std::to_string(per_agg) +
            " stages (+1 upstream link) exceeds the per-node connection "
            "cap of " + std::to_string(cap));
      }
      return Status::ok();
    }
    if (cap != 0 && cfg_.num_aggregators > cap) {
      return Status::resource_exhausted("too many aggregators for one node");
    }
    const std::size_t per_agg =
        (cfg_.num_stages + cfg_.num_aggregators - 1) / cfg_.num_aggregators;
    if (cap != 0 && per_agg > cap) {
      return Status::resource_exhausted(
          "aggregator subtree of " + std::to_string(per_agg) +
          " stages exceeds the per-node connection cap of " +
          std::to_string(cap));
    }
    return Status::ok();
  }

  ExperimentResult execute() {
    if (cfg_.fault_plan != nullptr && !cfg_.fault_plan->empty()) {
      // Compile once against the topology; horizon covers the run twice
      // over so late cycles still see churn. Everything below queries
      // this pure value only — injection is a function of (seed, cycle,
      // entity, virtual time), never of event interleaving.
      fault_ = std::make_unique<fault::CompiledPlan>(fault::CompiledPlan::compile(
          *cfg_.fault_plan, cfg_.num_stages, cfg_.num_aggregators,
          cfg_.duration * 2));
      lane_faults_.assign(lanes_.lanes(), 0);
      last_fresh_at_.assign(cfg_.num_stages, Nanos{-1});
    }
    // The store path keeps the legacy batch pipeline for the modes that
    // need per-cycle scratch vectors anyway (degraded compaction,
    // pass-through relays, local decisions, coordinated exchange).
    store_collect_ = cfg_.store_collect && fault_ == nullptr &&
                     !coordinated() &&
                     (flat() || (cfg_.preaggregate && !cfg_.local_decisions));
    delta_collect_ = cfg_.delta_collect && store_collect_;
    build_topology();
    lanes_.set_idle_callback([this] { return on_lanes_idle(); });
    schedule_utilization_sampler();
    start_cycle();
    lanes_.run();
    return finalize();
  }

 private:
  [[nodiscard]] bool coordinated() const { return cfg_.coordinated_peers > 0; }
  [[nodiscard]] bool deep() const {
    return cfg_.num_super_aggregators > 0 && cfg_.num_aggregators > 0;
  }
  [[nodiscard]] bool flat() const {
    return cfg_.num_aggregators == 0 && !coordinated();
  }

  [[nodiscard]] std::size_t num_jobs() const {
    return (cfg_.num_stages + cfg_.stages_per_job - 1) / cfg_.stages_per_job;
  }

  [[nodiscard]] Engine& eng(std::uint32_t lane) { return lanes_.lane(lane); }

  void build_topology() {
    const std::size_t L = lanes_.lanes();
    Rng rng(cfg_.seed);
    stages_.reserve(cfg_.num_stages);
    for (std::size_t i = 0; i < cfg_.num_stages; ++i) {
      proto::StageInfo info;
      info.stage_id = StageId{static_cast<std::uint32_t>(i)};
      info.node_id = NodeId{static_cast<std::uint32_t>(i)};
      info.job_id =
          JobId{static_cast<std::uint32_t>(i / cfg_.stages_per_job)};
      // Built in two steps: GCC 12's -Wrestrict misfires on the
      // operator+ temporary here under -O2 (PR 105329).
      info.hostname = "c";
      info.hostname += std::to_string(i);
      stage::DemandFn data;
      stage::DemandFn meta;
      if (cfg_.demand_factory) {
        data = cfg_.demand_factory(info.stage_id, stage::Dimension::kData);
        meta = cfg_.demand_factory(info.stage_id, stage::Dimension::kMeta);
      } else {
        const double d = rng.uniform(500.0, 1500.0);
        const double m = rng.uniform(50.0, 150.0);
        data = [d](Nanos) { return d; };
        meta = [m](Nanos) { return m; };
      }
      stages_.emplace_back(info, std::move(data), std::move(meta));
    }
    stage_lane_.assign(cfg_.num_stages, 0);

    if (coordinated()) {
      const std::size_t n = cfg_.num_stages;
      const std::size_t k = cfg_.coordinated_peers;
      peers_.reserve(k);
      for (std::size_t p = 0; p < k; ++p) {
        auto peer = std::make_unique<Peer>();
        peer->core = std::make_unique<core::CoordinatedControllerCore>(
            ControllerId{static_cast<std::uint32_t>(p)}, cfg_.budgets);
        peer->lane = static_cast<std::uint32_t>(p * L / k);
        peer->host = std::make_unique<SimHost>(eng(peer->lane), prof_,
                                               "peer" + std::to_string(p));
        const std::size_t begin = p * n / k;
        const std::size_t end = (p + 1) * n / k;
        for (std::size_t i = begin; i < end; ++i) {
          peer->stage_indices.push_back(i);
          stage_lane_[i] = peer->lane;
        }
        peers_.push_back(std::move(peer));
      }
      return;
    }

    if (!flat()) {
      aggs_.reserve(cfg_.num_aggregators);
      const std::size_t n = cfg_.num_stages;
      const std::size_t a_count = cfg_.num_aggregators;
      for (std::size_t a = 0; a < a_count; ++a) {
        auto agg = std::make_unique<Agg>();
        agg->core = std::make_unique<core::AggregatorCore>(
            core::AggregatorOptions{ControllerId{static_cast<std::uint32_t>(a)},
                                    cfg_.preaggregate,
                                    /*include_digests=*/true,
                                    cfg_.activity_threshold});
        agg->lane = static_cast<std::uint32_t>(a * L / a_count);
        agg->host = std::make_unique<SimHost>(eng(agg->lane), prof_,
                                              "agg" + std::to_string(a));
        const std::size_t begin = a * n / a_count;
        const std::size_t end = (a + 1) * n / a_count;
        for (std::size_t i = begin; i < end; ++i) {
          agg->stage_indices.push_back(i);
          stage_lane_[i] = agg->lane;
        }
        aggs_.push_back(std::move(agg));
      }

      if (deep()) {
        const std::size_t s_count = cfg_.num_super_aggregators;
        supers_.reserve(s_count);
        for (std::size_t s = 0; s < s_count; ++s) {
          auto super = std::make_unique<Super>();
          super->lane = static_cast<std::uint32_t>(s * L / s_count);
          super->host = std::make_unique<SimHost>(
              eng(super->lane), prof_, "super" + std::to_string(s));
          const std::size_t begin = s * a_count / s_count;
          const std::size_t end = (s + 1) * a_count / s_count;
          for (std::size_t a = begin; a < end; ++a) {
            super->children.push_back(a);
            aggs_[a]->parent = static_cast<int>(s);
            aggs_[a]->child_pos = super->children.size() - 1;
          }
          supers_.push_back(std::move(super));
        }
      }
    } else {
      for (std::size_t i = 0; i < cfg_.num_stages; ++i) {
        stage_lane_[i] = static_cast<std::uint32_t>(i * L / cfg_.num_stages);
      }
    }

    // Register every stage with the controllers that manage it.
    for (std::size_t i = 0; i < cfg_.num_stages; ++i) {
      const ControllerId via =
          flat() ? ControllerId::invalid()
                 : ControllerId{static_cast<std::uint32_t>(agg_of(i))};
      const Status added = global_.registry().add(
          {stages_[i].info(), ConnId{i}, via});
      assert(added.is_ok());
      (void)added;
      if (!flat()) {
        const Status agg_added = aggs_[agg_of(i)]->core->registry().add(
            {stages_[i].info(), ConnId{i}, ControllerId::invalid()});
        assert(agg_added.is_ok());
        (void)agg_added;
      }
    }

    // Bind every stage to its controller's columnar store. Binding in
    // ascending stage order makes the slot index equal the stage's index
    // (global for flat, subtree-local for hierarchical), which the
    // collect closures rely on to skip the id lookup.
    if (store_collect_) {
      if (flat()) {
        store_.reset(cfg_.num_stages);
        for (std::size_t i = 0; i < cfg_.num_stages; ++i) {
          const std::uint32_t slot = store_.bind(stages_[i].info().stage_id,
                                                 stages_[i].info().job_id);
          assert(slot == static_cast<std::uint32_t>(i));
          (void)slot;
        }
      } else {
        for (const auto& agg : aggs_) {
          core::MetricsStore& store = agg->core->store();
          store.reset(agg->stage_indices.size());
          for (const std::size_t idx : agg->stage_indices) {
            store.bind(stages_[idx].info().stage_id,
                       stages_[idx].info().job_id);
          }
        }
      }
    }
    lane_collect_bytes_.assign(L, 0);
    lane_collect_bytes_full_.assign(L, 0);
    lane_frames_full_.assign(L, 0);
    lane_frames_delta_.assign(L, 0);
    if (delta_collect_) {
      last_report_.assign(cfg_.num_stages, {});
      has_report_.assign(cfg_.num_stages, 0);
    }
  }

  [[nodiscard]] std::size_t agg_of(std::size_t stage_index) const {
    // Inverse of the contiguous block partition above.
    const std::size_t n = cfg_.num_stages;
    const std::size_t a_count = cfg_.num_aggregators;
    std::size_t a = stage_index * a_count / n;
    while (a + 1 < a_count && stage_index >= (a + 1) * n / a_count) ++a;
    while (a > 0 && stage_index < a * n / a_count) --a;
    return a;
  }

  // ------------------------------------------------------------------
  // Cycle driver

  /// Non-CPU synchronization wait at a phase boundary.
  void after_sync(Engine::EventFn fn) {
    eng0_.schedule_in(prof_.phase_sync_overhead, std::move(fn));
  }

  /// Wire size of one enforce message carrying `rules` rules (the real
  /// Cheferd payload is larger per rule; see FronteraProfile).
  [[nodiscard]] std::size_t enforce_frame_size(const proto::EnforceBatch& batch) const {
    return frame_size(batch) + batch.rules.size() * prof_.rule_extra_wire_bytes;
  }

  void start_cycle() {
    if (done_) return;
    const proto::CollectRequest req = global_.begin_cycle();
    cycle_ = global_.current_cycle();
    cycle_start_ = eng0_.now();
    agg_close_max_ = Nanos{-1};
    rule_apply_max_ = Nanos{-1};
    collect_req_size_ = frame_size(req);
    cycle_in_flight_ = true;
    if (coordinated()) {
      start_cycle_coordinated();
      return;
    }
    after_sync([this] {
      if (flat()) {
        start_collect_flat();
      } else {
        start_collect_hier();
      }
    });
  }

  /// Coordinator-context hook (lanes quiescent): joins finished
  /// coordinated cycles and launches deferred cycle starts. Returns
  /// true iff it advanced the simulation.
  bool on_lanes_idle() {
    if (!coordinated()) return false;
    if (cycle_in_flight_) {
      finish_cycle_coordinated();
      return true;
    }
    if (next_cycle_pending_ && !done_) {
      next_cycle_pending_ = false;
      eng0_.advance_to(next_cycle_at_);
      start_cycle();
      return true;
    }
    return false;
  }

  // -- Coordinated flat design (paper §VI future work #1) ----------------
  //
  // Phase accounting: peers pipeline independently, so phase boundaries
  // are taken as the time the LAST peer passes each stage — collect ends
  // when every peer holds all K summaries, compute when every peer has
  // computed, enforce when the last ack lands. Each peer records its own
  // lane-local completion instants; no single lane observes the whole
  // cycle, so the coordinator joins them from the runner's idle hook
  // once every lane has drained.

  void start_cycle_coordinated() {
    for (auto& peer : peers_) {
      peer->collected.clear();
      peer->pending_metrics = peer->stage_indices.size();
      peer->summaries.assign(peers_.size(), {});
      peer->summaries_received = 0;
      peer->pending_acks = 0;
      peer->exchange_done_at = Nanos{0};
      peer->compute_done_at = Nanos{0};
      peer->enforce_done_at = Nanos{0};
    }
    // Runs only with every lane quiescent (initial start or the idle
    // hook), so seeding peer engines directly is safe. All peers leave
    // the synchronization wait at the same instant, as before.
    const Nanos at = eng0_.now() + prof_.phase_sync_overhead;
    for (std::size_t p = 0; p < peers_.size(); ++p) {
      eng(peers_[p]->lane).schedule_at(at,
                                       [this, p] { peer_collect_fanout(p); });
    }
  }

  void peer_collect_fanout(std::size_t p) {
    const std::vector<std::size_t>& indices = peers_[p]->stage_indices;
    peers_[p]->host->broadcast(indices.size(), collect_req_size_, [&](std::size_t i) {
      const std::size_t idx = indices[i];
      return [this, p, idx] {
        Engine& eng_local = eng(peers_[p]->lane);
        const proto::StageMetrics m = stages_[idx].collect(cycle_, eng_local.now());
        const std::size_t sz = frame_size(m);
        eng_local.schedule_in(prof_.stage_service + prof_.wire_latency,
                              [this, p, m, sz] {
                                peers_[p]->host->receive(sz, [this, p, m] {
                                  peers_[p]->collected.push_back(m);
                                  if (--peers_[p]->pending_metrics == 0) {
                                    peer_broadcast_summary(p);
                                  }
                                });
                              });
      };
    });
  }

  void peer_broadcast_summary(std::size_t p) {
    Peer& peer = *peers_[p];
    const proto::AggregatedMetrics summary =
        peer.core->summarize(cycle_, peer.collected);
    const Nanos cost =
        scaled(prof_.cpu_agg_merge_per_stage, peer.stage_indices.size());
    const std::size_t sz = frame_size(summary);
    peer.host->run(cost, [this, p, summary, sz] {
      peer_accept_summary(p, p, summary);  // own summary, no wire
      peers_[p]->host->broadcast_to(
          peers_.size() - 1, sz,
          [&](std::size_t i) {
            const std::size_t q = i < p ? i : i + 1;  // skip self
            return [this, q, p, sz, summary] {
              peers_[q]->host->receive(sz, [this, q, p, summary] {
                peer_accept_summary(q, p, summary);
              });
            };
          },
          [this, p](std::size_t i) {
            const std::size_t q = i < p ? i : i + 1;
            return peers_[q]->lane;
          });
    });
  }

  void peer_accept_summary(std::size_t p, std::size_t src,
                           const proto::AggregatedMetrics& summary) {
    Peer& peer = *peers_[p];
    peer.summaries[src] = summary;
    if (++peer.summaries_received < peers_.size()) return;
    peer.exchange_done_at = eng(peer.lane).now();
    peer_compute(p);
  }

  void peer_compute(std::size_t p) {
    Peer& peer = *peers_[p];
    // Every peer runs the full global PSFA (the redundancy that buys
    // central-controller-free global visibility), then splits only its
    // own subtree.
    auto rules = std::make_shared<std::vector<proto::Rule>>(
        peer.core->compute_own_rules(cycle_, peer.summaries, peer.collected));
    const Nanos cost = scaled(prof_.cpu_psfa_per_job, num_jobs()) +
                       scaled(prof_.cpu_split_per_stage,
                              peer.stage_indices.size());
    peer.host->run(cost, [this, p, rules] {
      peers_[p]->compute_done_at = eng(peers_[p]->lane).now();
      peer_enforce(p, *rules);
    });
  }

  void peer_enforce(std::size_t p, const std::vector<proto::Rule>& rules) {
    Peer& peer = *peers_[p];
    peer.pending_acks = rules.size();
    if (rules.empty()) {
      peer_enforce_done(p);
      return;
    }
    for (const auto& rule : rules) {
      proto::EnforceBatch single;
      single.cycle_id = cycle_;
      single.rules.push_back(rule);
      const std::size_t sz = enforce_frame_size(single);
      peer.host->send(
          sz,
          [this, p, rule] {
            apply_rule_and_ack(rule, peers_[p]->host.get(), peers_[p]->lane,
                               [this, p](Nanos) {
                                 if (--peers_[p]->pending_acks == 0) {
                                   peer_enforce_done(p);
                                 }
                               });
          },
          prof_.cpu_route_per_rule);
    }
  }

  void peer_enforce_done(std::size_t p) {
    peers_[p]->enforce_done_at = eng(peers_[p]->lane).now();
  }

  /// Joins a finished coordinated cycle from coordinator context: the
  /// phase boundaries are the maxima of the per-peer completion
  /// instants, exactly the "last peer past each stage" definition.
  void finish_cycle_coordinated() {
    Nanos exchange{0};
    Nanos compute{0};
    Nanos enforce{0};
    for (const auto& peer : peers_) {
      exchange = std::max(exchange, peer->exchange_done_at);
      compute = std::max(compute, peer->compute_done_at);
      enforce = std::max(enforce, peer->enforce_done_at);
    }
    collect_end_ = exchange;
    compute_end_ = compute;
    eng0_.advance_to(enforce);
    finish_cycle();
  }

  // -- Fault-injection helpers -------------------------------------------
  //
  // Callable only when fault_ is set (except stage_latency, which is the
  // healthy constant otherwise). Injection counters are per-lane — each
  // slot is touched only by events on its lane, summed at finalize().

  /// Stage can emit/accept messages at `t` (up and not partitioned).
  [[nodiscard]] bool stage_reachable(std::size_t i, Nanos t) {
    if (fault_->stage_up(i, t) && !fault_->partitioned(i, t)) return true;
    ++lane_faults_[stage_lane_[i]];
    return false;
  }

  /// Stage-side service latency for one message, with any slow-window
  /// multiplier applied to the CPU share.
  [[nodiscard]] Nanos stage_latency(std::size_t i, Nanos t) {
    Nanos service = prof_.stage_service;
    if (fault_ != nullptr) {
      const double mult = fault_->service_multiplier(i, t);
      if (mult > 1.0) {
        service = Nanos{static_cast<std::int64_t>(
            static_cast<double>(service.count()) * mult)};
        ++lane_faults_[stage_lane_[i]];
      }
    }
    return service + prof_.wire_latency;
  }

  /// Apply the per-message fate for a reply/ack/report of `kind` from
  /// `entity` this cycle. Returns false when the message is dropped;
  /// otherwise adjusts `latency` (delay fate) and `copies` (duplicate
  /// fate — the extra copy pays receive cost but is discarded by the
  /// receiver's seen-guard). Counts injections on `lane`.
  [[nodiscard]] bool reply_fate(fault::MessageKind kind, std::uint64_t entity,
                                std::uint32_t lane, Nanos& latency,
                                std::size_t& copies) {
    switch (fault_->message_fate(kind, cycle_, entity)) {
      case fault::MessageFate::kDrop:
        ++lane_faults_[lane];
        return false;
      case fault::MessageFate::kDuplicate:
        ++lane_faults_[lane];
        copies = 2;
        return true;
      case fault::MessageFate::kDelay:
        ++lane_faults_[lane];
        latency = latency + fault_->delay();
        return true;
      case fault::MessageFate::kDeliver:
        return true;
    }
    return true;
  }

  /// Recovery accounting on a fresh (first-this-cycle) collect reply from
  /// stage `i` at `t`: if the stage restarted since its last fresh reply,
  /// the restart-to-now gap is one recovery sample. `last_fresh_at_[i]`
  /// is touched only on the lane that owns stage i's replies.
  void note_fresh_reply(std::size_t i, Nanos t, std::vector<Nanos>& sink) {
    const Nanos restart = fault_->last_stage_restart_before(i, t);
    if (restart.count() >= 0 && last_fresh_at_[i] < restart) {
      sink.push_back(t - restart);
    }
    last_fresh_at_[i] = t;
  }

  // -- Flat design -----------------------------------------------------

  void start_collect_flat() {
    // The store path folds reports in place; the scratch vector is only
    // the legacy/fault pipeline's.
    if (!store_collect_) flat_metrics_.assign(cfg_.num_stages, {});
    flat_pending_ = cfg_.num_stages;
    if (fault_ != nullptr) {
      collect_open_ = true;
      collect_extensions_ = 0;
      collect_seen_.assign(cfg_.num_stages, 0);
      eng0_.schedule_in(fault_->phase_timeout(), [this, c = cycle_] {
        on_flat_collect_deadline(c);
      });
    }
    global_host_.broadcast_to(
        cfg_.num_stages, collect_req_size_,
        [this](std::size_t i) {
          return [this, i] { on_stage_collect_flat(i); };
        },
        [this](std::size_t i) { return stage_lane_[i]; });
  }

  /// Frame a stage report for the wire: under delta_collect a stage
  /// that already reported sends the compact delta against its previous
  /// report, refreshed with a full frame every `delta_refresh` cycles
  /// (staggered by stage index). Runs on the stage's lane; the per-stage
  /// previous-report slots are owned by that lane.
  struct CollectFrame {
    proto::StageMetricsDelta delta;
    std::size_t wire = 0;       ///< modeled frame bytes (delta or full)
    std::size_t wire_full = 0;  ///< full-frame equivalent bytes
    bool is_delta = false;
  };
  CollectFrame frame_report(std::size_t i, const proto::StageMetrics& m) {
    CollectFrame f;
    f.wire_full = frame_size(m);
    f.wire = f.wire_full;
    if (delta_collect_) {
      if (has_report_[i] != 0 && (cycle_ + i) % cfg_.delta_refresh != 0) {
        f.delta = proto::StageMetricsDelta::make(last_report_[i], m,
                                                 /*include_stage_id=*/false);
        f.wire = frame_size(f.delta);
        f.is_delta = true;
      }
      last_report_[i] = m;
      has_report_[i] = 1;
    }
    return f;
  }

  void on_stage_collect_flat(std::size_t i) {
    Engine& eng_local = eng(stage_lane_[i]);
    if (fault_ != nullptr && !stage_reachable(i, eng_local.now())) return;
    const proto::StageMetrics m = stages_[i].collect(cycle_, eng_local.now());
    const CollectFrame fr = frame_report(i, m);
    const std::size_t sz = fr.wire;
    Nanos latency = stage_latency(i, eng_local.now());
    if (cfg_.tracer != nullptr && i == 0) {
      // Representative per-stage span (stage 0 only — one per cycle, not
      // one per stage) so flat traces also show a second component.
      telemetry::Span span;
      span.name = "stage.collect";
      span.category = "component";
      span.track = 1;
      span.cycle = cycle_;
      span.start = eng_local.now();
      span.duration = latency;
      span.trace_id = cycle_;
      span.span_id = telemetry::derive_span_id(cycle_, 1, span.name);
      span.parent_span = telemetry::derive_span_id(cycle_, 0, "collect");
      span.phase = telemetry::SpanPhase::kCollect;
      cfg_.tracer->record(std::move(span));
    }
    std::size_t copies = 1;
    if (fault_ != nullptr &&
        !reply_fate(fault::MessageKind::kCollectReply, i, stage_lane_[i],
                    latency, copies)) {
      return;
    }
    for (std::size_t copy = 0; copy < copies; ++copy) {
      const bool first = copy == 0;
      eng_local.schedule_cross(
          0, eng_local.now() + latency,
          [this, i, m, fr, sz, first, c = cycle_] {
            global_host_.receive(sz, [this, i, m, fr, first, c] {
              if (fault_ != nullptr &&
                  (!first || !collect_open_ || c != cycle_ ||
                   collect_seen_[i] != 0)) {
                return;  // duplicate or post-deadline straggler
              }
              if (fault_ != nullptr) {
                collect_seen_[i] = 1;
                note_fresh_reply(i, eng0_.now(), cycle_recoveries_);
              }
              account_collect_frame(0, fr);
              if (store_collect_) {
                if (fr.is_delta) {
                  const core::DeltaStatus status = store_.apply_delta(
                      fr.delta, static_cast<std::uint32_t>(i));
                  assert(status == core::DeltaStatus::kApplied);
                  (void)status;
                } else {
                  store_.update_at(static_cast<std::uint32_t>(i), m);
                }
              } else {
                flat_metrics_[i] = m;
              }
              if (--flat_pending_ == 0) close_collect_flat(false);
            });
          });
    }
  }

  /// Wire accounting for one accepted collect report, on the receiving
  /// controller's lane (each slot is touched only by its lane's events;
  /// finalize() sums them with the lanes quiescent).
  void account_collect_frame(std::uint32_t lane, const CollectFrame& fr) {
    lane_collect_bytes_[lane] += fr.wire;
    lane_collect_bytes_full_[lane] += fr.wire_full;
    if (fr.is_delta) {
      ++lane_frames_delta_[lane];
    } else {
      ++lane_frames_full_[lane];
    }
  }

  void on_flat_collect_deadline(std::uint64_t c) {
    if (!collect_open_ || c != cycle_) return;
    const std::size_t received = cfg_.num_stages - flat_pending_;
    if (received < fault_->quorum_count(cfg_.num_stages) &&
        collect_extensions_++ < fault_->max_deadline_extensions()) {
      eng0_.schedule_in(fault_->phase_timeout(),
                        [this, c] { on_flat_collect_deadline(c); });
      return;
    }
    close_collect_flat(flat_pending_ > 0);
  }

  void close_collect_flat(bool degraded) {
    if (fault_ != nullptr) {
      collect_open_ = false;
      if (degraded) {
        cycle_degraded_ = true;
        cycle_stale_ += flat_pending_;
      }
    }
    collect_end_ = eng0_.now();
    compute_flat();
  }

  void compute_flat() {
    std::size_t received = cfg_.num_stages;
    if (fault_ != nullptr && flat_pending_ > 0) {
      // Compact the metrics that actually arrived: default-constructed
      // rows for silent stages would corrupt the PSFA input.
      flat_scratch_.clear();
      for (std::size_t i = 0; i < cfg_.num_stages; ++i) {
        if (collect_seen_[i] != 0) flat_scratch_.push_back(flat_metrics_[i]);
      }
      received = flat_scratch_.size();
      compute_result_ = global_.compute(std::span<const proto::StageMetrics>(
          flat_scratch_.data(), flat_scratch_.size()));
      compute_view_ = &compute_result_;
    } else if (store_collect_) {
      // Incremental path: only jobs whose stages moved are re-summed and
      // re-split; the returned result is persistent and bit-identical to
      // the batch compute below.
      compute_view_ =
          &global_.compute_from_store(store_, cfg_.psfa_full_recompute);
    } else {
      compute_result_ = global_.compute(std::span<const proto::StageMetrics>(
          flat_metrics_.data(), flat_metrics_.size()));
      compute_view_ = &compute_result_;
    }
    const Nanos cost = scaled(prof_.cpu_merge_per_stage, received) +
                       scaled(prof_.cpu_psfa_per_job, num_jobs()) +
                       scaled(prof_.cpu_split_per_stage, cfg_.num_stages);
    after_sync([this, cost] {
      global_host_.run(cost, [this] {
        compute_end_ = eng0_.now();
        after_sync([this] { enforce_flat(); });
      });
    });
  }

  void enforce_flat() {
    global_acks_pending_ = compute_view_->rules.size();
    if (global_acks_pending_ == 0) {
      finish_cycle();
      return;
    }
    if (fault_ != nullptr) {
      enforce_open_ = true;
      enforce_extensions_ = 0;
      enforce_expected_ = global_acks_pending_;
      eng0_.schedule_in(fault_->phase_timeout(), [this, c = cycle_] {
        on_enforce_deadline(c);
      });
    }
    for (const auto& rule : compute_view_->rules) {
      proto::EnforceBatch single;
      single.cycle_id = cycle_;
      single.rules.push_back(rule);
      const std::size_t sz = enforce_frame_size(single);
      global_host_.send_to(
          stage_lane_[rule.stage_id.value()], sz,
          [this, rule, c = cycle_] {
            apply_rule_and_ack(rule, &global_host_, 0, [this, c](Nanos at) {
              on_global_direct_ack(c, at);
            });
          },
          prof_.cpu_route_per_rule);
    }
  }

  void on_global_direct_ack(std::uint64_t c, Nanos applied_at) {
    if (fault_ != nullptr && (!enforce_open_ || c != cycle_)) return;
    rule_apply_max_ = std::max(rule_apply_max_, applied_at);
    if (--global_acks_pending_ == 0) {
      enforce_open_ = false;
      finish_cycle();
    }
  }

  void on_enforce_deadline(std::uint64_t c) {
    if (!enforce_open_ || c != cycle_) return;
    const std::size_t acked = enforce_expected_ - global_acks_pending_;
    if (acked < fault_->quorum_count(enforce_expected_) &&
        enforce_extensions_++ < fault_->max_deadline_extensions()) {
      eng0_.schedule_in(fault_->phase_timeout(),
                        [this, c] { on_enforce_deadline(c); });
      return;
    }
    enforce_open_ = false;
    cycle_degraded_ = true;  // closed with acks outstanding
    finish_cycle();
  }

  /// At the stage: apply `rule` (real logic), then send the ack back to
  /// `receiver` (on `receiver_lane`) which runs `done` — passing the
  /// virtual instant the stage applied the rule, for `disseminate`
  /// attribution — after its receive cost. Executes on the stage's
  /// lane. Under a fault plan a down/partitioned stage neither applies
  /// nor acks, and the ack is subject to the kEnforceAck message fate —
  /// silent stages surface as missing acks and the phase deadline
  /// closes the cycle degraded.
  void apply_rule_and_ack(const proto::Rule& rule, SimHost* receiver,
                          std::uint32_t receiver_lane,
                          std::function<void(Nanos)> done) {
    const std::size_t idx = rule.stage_id.value();
    assert(idx < stages_.size());
    Engine& eng_local = eng(stage_lane_[idx]);
    if (fault_ != nullptr && !stage_reachable(idx, eng_local.now())) return;
    stages_[idx].apply(rule);
    const Nanos applied_at = eng_local.now();
    proto::EnforceAck ack;
    ack.cycle_id = cycle_;
    ack.applied = 1;
    const std::size_t sz = frame_size(ack);
    Nanos latency = stage_latency(idx, eng_local.now());
    std::size_t copies = 1;
    if (fault_ != nullptr &&
        !reply_fate(fault::MessageKind::kEnforceAck, idx, stage_lane_[idx],
                    latency, copies)) {
      return;
    }
    auto shared_done =
        std::make_shared<std::function<void(Nanos)>>(std::move(done));
    for (std::size_t copy = 0; copy < copies; ++copy) {
      const bool first = copy == 0;
      eng_local.schedule_cross(
          receiver_lane, eng_local.now() + latency,
          [this, receiver, sz, first, applied_at, shared_done] {
            receiver->receive(sz, [first, applied_at, shared_done] {
              // The duplicate copy pays receive cost but is deduplicated.
              if (first) (*shared_done)(applied_at);
            });
          });
    }
  }

  // -- Hierarchical design ----------------------------------------------

  void start_collect_hier() {
    passthrough_metrics_.clear();
    for (auto& agg : aggs_) {
      agg->collected.clear();
      agg->pending_metrics = agg->stage_indices.size();
    }
    serial_cursor_ = 0;
    if (deep()) {
      agg_reports_.assign(supers_.size(), {});
      reports_pending_ = supers_.size();
      for (auto& super : supers_) {
        super->child_reports.assign(super->children.size(), {});
        super->pending_reports = super->children.size();
        super->child_close_max = Nanos{-1};
        super->acks_applied = 0;
        super->pending_acks = 0;
      }
      global_host_.broadcast_to(
          supers_.size(), collect_req_size_,
          [this](std::size_t s) {
            return [this, s] {
              supers_[s]->host->receive(collect_req_size_,
                                        [this, s] { super_collect_fanout(s); });
            };
          },
          [this](std::size_t s) { return supers_[s]->lane; });
      return;
    }
    agg_reports_.assign(aggs_.size(), {});
    passthrough_batches_.assign(aggs_.size(), {});
    reports_pending_ = aggs_.size();
    if (fault_ != nullptr) {
      report_open_ = true;
      report_extensions_ = 0;
      report_seen_.assign(aggs_.size(), 0);
      eng0_.schedule_in(fault_->phase_timeout(),
                        [this, c = cycle_] { on_report_deadline(c); });
    }
    if (cfg_.parallel_fanout) {
      global_host_.broadcast_to(
          aggs_.size(), collect_req_size_,
          [this](std::size_t a) {
            return [this, a] {
              aggs_[a]->host->receive(collect_req_size_,
                                      [this, a] { agg_collect_fanout(a); });
            };
          },
          [this](std::size_t a) { return aggs_[a]->lane; });
    } else {
      send_collect_to_agg(0);
    }
  }

  // -- Third level (super-aggregators) -----------------------------------

  void super_collect_fanout(std::size_t s) {
    const std::vector<std::size_t>& children = supers_[s]->children;
    supers_[s]->host->broadcast_to(
        children.size(), collect_req_size_,
        [&](std::size_t i) {
          const std::size_t a = children[i];
          return [this, a] {
            aggs_[a]->host->receive(collect_req_size_,
                                    [this, a] { agg_collect_fanout(a); });
          };
        },
        [&](std::size_t i) { return aggs_[children[i]]->lane; });
  }

  void super_accept_report(std::size_t s, std::size_t pos,
                           const proto::AggregatedMetrics& report,
                           Nanos child_close) {
    Super& super = *supers_[s];
    super.child_reports[pos] = report;
    super.child_close_max = std::max(super.child_close_max, child_close);
    if (--super.pending_reports > 0) return;

    // Merge the children's summaries (job rows merged, digests
    // concatenated so the global controller keeps per-stage visibility).
    // child_reports is child-position-indexed, so the merge input order
    // is canonical regardless of arrival order.
    proto::AggregatedMetrics merged;
    merged.cycle_id = cycle_;
    merged.from = ControllerId{
        static_cast<std::uint32_t>(0x40000000u + s)};  // super-tier ids
    std::unordered_map<JobId, std::size_t> index;
    std::size_t digest_count = 0;
    for (const auto& child : super.child_reports) {
      merged.total_stages += child.total_stages;
      digest_count += child.digests.size();
      for (const auto& job : child.jobs) {
        const auto [it, inserted] = index.try_emplace(job.job_id, merged.jobs.size());
        if (inserted) {
          merged.jobs.push_back(job);
        } else {
          auto& row = merged.jobs[it->second];
          row.data_iops += job.data_iops;
          row.meta_iops += job.meta_iops;
          row.stage_count += job.stage_count;
        }
      }
    }
    merged.digests.reserve(digest_count);
    for (const auto& child : super.child_reports) {
      merged.digests.insert(merged.digests.end(), child.digests.begin(),
                            child.digests.end());
    }
    const Nanos cost = scaled(prof_.cpu_relay_per_stage, digest_count);
    const std::size_t sz = frame_size(merged);
    const Nanos close_max = super.child_close_max;
    super.host->run(cost, [this, s, merged, sz, close_max] {
      supers_[s]->host->send_to(0, sz, [this, s, merged, sz, close_max] {
        global_host_.receive(sz, [this, s, merged, close_max] {
          agg_close_max_ = std::max(agg_close_max_, close_max);
          agg_reports_[s] = merged;
          if (--reports_pending_ == 0) {
            collect_end_ = eng0_.now();
            compute_hier();
          }
        });
      });
    });
  }

  void send_collect_to_agg(std::size_t a) {
    global_host_.send_to(aggs_[a]->lane, collect_req_size_, [this, a] {
      aggs_[a]->host->receive(collect_req_size_,
                              [this, a] { agg_collect_fanout(a); });
    });
  }

  void agg_collect_fanout(std::size_t a) {
    if (fault_ != nullptr) {
      Agg& agg = *aggs_[a];
      Engine& eng_a = eng(agg.lane);
      if (!fault_->aggregator_up(a, eng_a.now())) {
        // Crashed aggregator: the whole subtree stays silent this cycle;
        // the global report deadline counts its stages stale.
        ++lane_faults_[agg.lane];
        return;
      }
      // Per-agg fault state lives on the agg's lane — initialized here
      // (not at the global fan-out) so stragglers from the previous
      // cycle are ordered against it in lane-local virtual time.
      agg.fault_seen.assign(agg.stage_indices.size(), 0);
      agg.collect_open = true;
      agg.collect_extensions = 0;
      agg.fault_cycle = cycle_;
      agg.stale = 0;
      agg.recoveries.clear();
      eng_a.schedule_in(fault_->phase_timeout(), [this, a, c = cycle_] {
        on_agg_collect_deadline(a, c);
      });
    }
    const std::vector<std::size_t>& indices = aggs_[a]->stage_indices;
    aggs_[a]->host->broadcast(indices.size(), collect_req_size_, [&](std::size_t i) {
      const std::size_t idx = indices[i];
      return [this, a, i, idx] {
        Engine& eng_local = eng(aggs_[a]->lane);
        if (fault_ != nullptr && !stage_reachable(idx, eng_local.now())) {
          return;
        }
        const proto::StageMetrics m = stages_[idx].collect(cycle_, eng_local.now());
        const CollectFrame fr = frame_report(idx, m);
        const std::size_t sz = fr.wire;
        Nanos latency = stage_latency(idx, eng_local.now());
        std::size_t copies = 1;
        if (fault_ != nullptr &&
            !reply_fate(fault::MessageKind::kCollectReply, idx,
                        aggs_[a]->lane, latency, copies)) {
          return;
        }
        for (std::size_t copy = 0; copy < copies; ++copy) {
          const bool first = copy == 0;
          eng_local.schedule_in(
              latency, [this, a, i, idx, m, fr, sz, first, c = cycle_] {
                aggs_[a]->host->receive(sz, [this, a, i, idx, m, fr, first, c] {
                  Agg& agg = *aggs_[a];
                  if (fault_ != nullptr) {
                    if (!first || !agg.collect_open || agg.fault_cycle != c ||
                        agg.fault_seen[i] != 0) {
                      return;  // duplicate or post-deadline straggler
                    }
                    agg.fault_seen[i] = 1;
                    note_fresh_reply(idx, eng(agg.lane).now(), agg.recoveries);
                  }
                  account_collect_frame(agg.lane, fr);
                  if (store_collect_) {
                    // Slot index == position in stage_indices (bind order).
                    if (fr.is_delta) {
                      const core::DeltaStatus status =
                          agg.core->store().apply_delta(
                              fr.delta, static_cast<std::uint32_t>(i));
                      assert(status == core::DeltaStatus::kApplied);
                      (void)status;
                    } else {
                      agg.core->store().update_at(static_cast<std::uint32_t>(i),
                                                  m);
                    }
                  } else {
                    agg.collected.push_back(m);
                  }
                  if (--agg.pending_metrics == 0) {
                    agg_close_collect(a, false);
                  }
                });
              });
        }
      };
    });
  }

  void on_agg_collect_deadline(std::size_t a, std::uint64_t c) {
    Agg& agg = *aggs_[a];
    if (!agg.collect_open || agg.fault_cycle != c) return;
    const std::size_t expected = agg.stage_indices.size();
    const std::size_t received = expected - agg.pending_metrics;
    if (received < fault_->quorum_count(expected) &&
        agg.collect_extensions++ < fault_->max_deadline_extensions()) {
      eng(agg.lane).schedule_in(fault_->phase_timeout(), [this, a, c] {
        on_agg_collect_deadline(a, c);
      });
      return;
    }
    agg_close_collect(a, agg.pending_metrics > 0);
  }

  void agg_close_collect(std::size_t a, bool degraded) {
    Agg& agg = *aggs_[a];
    if (fault_ != nullptr) {
      agg.collect_open = false;
      if (degraded) agg.stale += agg.pending_metrics;
    }
    agg_report(a);
  }

  void agg_report(std::size_t a) {
    Agg& agg = *aggs_[a];
    const std::size_t n_a = agg.stage_indices.size();
    // Local sub-collect close instant (agg lane); crosses to lane 0 by
    // value with the report, where the max over aggregators bounds the
    // `aggregate` sub-segment.
    const Nanos local_close = eng(agg.lane).now();
    if (cfg_.tracer != nullptr) {
      telemetry::Span span;
      span.name = "agg.collect";
      span.category = "component";
      span.track = static_cast<std::uint32_t>(1 + a);
      span.cycle = cycle_;
      span.start = cycle_start_;
      span.duration = local_close - cycle_start_;
      span.trace_id = cycle_;
      span.span_id = telemetry::derive_span_id(cycle_, span.track, span.name);
      span.parent_span = telemetry::derive_span_id(cycle_, 0, "collect");
      span.phase = telemetry::SpanPhase::kCollect;
      cfg_.tracer->record(std::move(span));
    }
    if (cfg_.preaggregate) {
      // Store path: incremental slot-ordered summary (only dirty jobs
      // re-summed); legacy path: full arrival-ordered merge. Copied into
      // the report closure either way — it crosses to lane 0 by value.
      const proto::AggregatedMetrics report =
          store_collect_ ? agg.core->aggregate_from_store(cycle_)
                         : agg.core->aggregate(cycle_, agg.collected);
      const Nanos cost = scaled(prof_.cpu_agg_merge_per_stage, n_a);
      const std::size_t sz = frame_size(report);
      const int parent = agg.parent;
      // Degraded-subtree accounting crosses to lane 0 by value inside
      // the report closure, like the report itself.
      const std::size_t stale = fault_ != nullptr ? agg.stale : 0;
      std::vector<Nanos> recovered;
      if (fault_ != nullptr) recovered.swap(agg.recoveries);
      agg.host->run(cost, [this, a, report, sz, parent, stale, local_close,
                           recovered = std::move(recovered)] {
        if (parent >= 0) {
          // Three-level tree: report to the parent super-aggregator.
          const auto s = static_cast<std::size_t>(parent);
          const std::size_t pos = aggs_[a]->child_pos;
          aggs_[a]->host->send_to(
              supers_[s]->lane, sz, [this, s, pos, report, sz, local_close] {
                supers_[s]->host->receive(
                    sz, [this, s, pos, report, local_close] {
                      super_accept_report(s, pos, report, local_close);
                    });
              });
          return;
        }
        Nanos extra{0};
        std::size_t copies = 1;
        if (fault_ != nullptr) {
          Engine& eng_a = eng(aggs_[a]->lane);
          if (!fault_->aggregator_up(a, eng_a.now())) {
            // Aggregator died after collecting: report lost; the global
            // report deadline counts the subtree stale.
            ++lane_faults_[aggs_[a]->lane];
            return;
          }
          if (!reply_fate(fault::MessageKind::kAggregatorReport, a,
                          aggs_[a]->lane, extra, copies)) {
            return;
          }
        }
        for (std::size_t copy = 0; copy < copies; ++copy) {
          const bool first = copy == 0;
          aggs_[a]->host->send_to(0, sz, [this, a, report, sz, stale,
                                          recovered, extra, first,
                                          local_close, c = cycle_] {
            auto deliver = [this, a, report, stale, recovered, first,
                            local_close, c] {
              if (fault_ != nullptr) {
                if (!first || !report_open_ || c != cycle_ ||
                    report_seen_[a] != 0) {
                  return;  // duplicate or post-deadline straggler
                }
                report_seen_[a] = 1;
                cycle_stale_ += stale;
                if (stale > 0) cycle_degraded_ = true;
                cycle_recoveries_.insert(cycle_recoveries_.end(),
                                         recovered.begin(), recovered.end());
              }
              agg_close_max_ = std::max(agg_close_max_, local_close);
              agg_reports_[a] = report;
              on_agg_report_received(a);
            };
            if (extra > Nanos{0}) {
              eng0_.schedule_in(extra,
                                [this, sz, deliver = std::move(deliver)] {
                                  global_host_.receive(sz, std::move(deliver));
                                });
            } else {
              global_host_.receive(sz, std::move(deliver));
            }
          });
        }
      });
    } else {
      const proto::MetricsBatch batch = agg.core->passthrough(cycle_, agg.collected);
      const Nanos cost = scaled(prof_.cpu_relay_per_stage, n_a);
      const std::size_t sz = frame_size(batch);
      agg.host->run(cost, [this, a, batch, sz, local_close] {
        aggs_[a]->host->send_to(0, sz, [this, a, batch, sz, local_close] {
          global_host_.receive(sz, [this, a, batch, local_close] {
            agg_close_max_ = std::max(agg_close_max_, local_close);
            passthrough_batches_[a] = batch.entries;
            on_agg_report_received(a);
          });
        });
      });
    }
  }

  void on_agg_report_received(std::size_t a) {
    if (--reports_pending_ == 0) {
      close_reports(false);
      return;
    }
    if (!cfg_.parallel_fanout) {
      serial_cursor_ = a + 1;
      if (serial_cursor_ < aggs_.size()) send_collect_to_agg(serial_cursor_);
    }
  }

  void on_report_deadline(std::uint64_t c) {
    if (!report_open_ || c != cycle_) return;
    const std::size_t received = aggs_.size() - reports_pending_;
    if (received < fault_->quorum_count(aggs_.size()) &&
        report_extensions_++ < fault_->max_deadline_extensions()) {
      eng0_.schedule_in(fault_->phase_timeout(),
                        [this, c] { on_report_deadline(c); });
      return;
    }
    close_reports(reports_pending_ > 0);
  }

  void close_reports(bool degraded) {
    if (fault_ != nullptr) {
      report_open_ = false;
      if (degraded) {
        cycle_degraded_ = true;
        for (std::size_t a = 0; a < aggs_.size(); ++a) {
          if (report_seen_[a] == 0) {
            cycle_stale_ += aggs_[a]->stage_indices.size();
          }
        }
      }
    }
    collect_end_ = eng0_.now();
    compute_hier();
  }

  void compute_hier() {
    Nanos cost = scaled(prof_.cpu_psfa_per_job, num_jobs());
    if (cfg_.local_decisions) {
      // Global only recomputes per-aggregator budget leases.
      compute_leases();
    } else if (cfg_.preaggregate) {
      compute_result_ = global_.compute(std::span<const proto::AggregatedMetrics>(
          agg_reports_.data(), agg_reports_.size()));
      cost = cost + scaled(prof_.cpu_split_per_stage, cfg_.num_stages);
    } else {
      // Concatenate the per-aggregator batches in aggregator-id order —
      // canonical input regardless of which batch arrived last.
      passthrough_metrics_.clear();
      for (const auto& entries : passthrough_batches_) {
        passthrough_metrics_.insert(passthrough_metrics_.end(),
                                    entries.begin(), entries.end());
      }
      compute_result_ = global_.compute(std::span<const proto::StageMetrics>(
          passthrough_metrics_.data(), passthrough_metrics_.size()));
      cost = cost + scaled(prof_.cpu_merge_per_stage, cfg_.num_stages) +
             scaled(prof_.cpu_split_per_stage, cfg_.num_stages);
    }
    after_sync([this, cost] {
      global_host_.run(cost, [this] {
        compute_end_ = eng0_.now();
        after_sync([this] { enforce_hier(); });
      });
    });
  }

  /// Local-decision mode: split the global budgets across aggregators in
  /// proportion to their reported demand.
  void compute_leases() {
    double total_data = 0;
    double total_meta = 0;
    for (const auto& report : agg_reports_) {
      for (const auto& job : report.jobs) {
        total_data += job.data_iops;
        total_meta += job.meta_iops;
      }
    }
    leases_.assign(aggs_.size(), proto::BudgetLease{});
    for (const auto& report : agg_reports_) {
      double agg_data = 0;
      double agg_meta = 0;
      for (const auto& job : report.jobs) {
        agg_data += job.data_iops;
        agg_meta += job.meta_iops;
      }
      const std::size_t a = report.from.value();
      proto::BudgetLease lease;
      lease.cycle_id = cycle_;
      lease.data_budget =
          total_data > 0 ? cfg_.budgets.data_iops * agg_data / total_data
                         : cfg_.budgets.data_iops / static_cast<double>(aggs_.size());
      lease.meta_budget =
          total_meta > 0 ? cfg_.budgets.meta_iops * agg_meta / total_meta
                         : cfg_.budgets.meta_iops / static_cast<double>(aggs_.size());
      lease.valid_until_ns =
          static_cast<std::uint64_t>((eng0_.now() + seconds(10)).count());
      leases_[a] = lease;
    }
  }

  void enforce_hier() {
    serial_cursor_ = 0;
    if (cfg_.local_decisions) {
      global_acks_pending_ = aggs_.size();
      if (cfg_.parallel_fanout) {
        for (std::size_t a = 0; a < aggs_.size(); ++a) send_lease_to_agg(a);
      } else {
        send_lease_to_agg(0);
      }
      return;
    }

    enforce_batches_.clear();
    enforce_batches_.resize(aggs_.size());
    auto grouped = global_.group_rules(compute_result_);
    for (auto& [via, batch] : grouped) {
      if (!via.valid()) continue;  // no directly-attached stages here
      enforce_batches_[via.value()] = std::move(batch);
    }

    if (deep()) {
      global_acks_pending_ = supers_.size();
      for (std::size_t s = 0; s < supers_.size(); ++s) {
        // One combined batch per super-aggregator subtree.
        proto::EnforceBatch combined;
        combined.cycle_id = cycle_;
        for (const std::size_t a : supers_[s]->children) {
          combined.rules.insert(combined.rules.end(),
                                enforce_batches_[a].rules.begin(),
                                enforce_batches_[a].rules.end());
        }
        const std::size_t sz = enforce_frame_size(combined);
        const Nanos routing =
            scaled(prof_.cpu_route_per_rule, combined.rules.size());
        global_host_.send_to(
            supers_[s]->lane, sz,
            [this, s, sz] {
              supers_[s]->host->receive(sz,
                                        [this, s] { super_enforce_fanout(s); });
            },
            routing);
      }
      return;
    }

    global_acks_pending_ = aggs_.size();
    if (fault_ != nullptr) {
      enforce_open_ = true;
      enforce_extensions_ = 0;
      enforce_expected_ = aggs_.size();
      ack_seen_.assign(aggs_.size(), 0);
      eng0_.schedule_in(fault_->phase_timeout(), [this, c = cycle_] {
        on_enforce_deadline(c);
      });
    }
    if (cfg_.parallel_fanout) {
      for (std::size_t a = 0; a < aggs_.size(); ++a) send_enforce_to_agg(a);
    } else {
      send_enforce_to_agg(0);
    }
  }

  void super_enforce_fanout(std::size_t s) {
    Super& super = *supers_[s];
    super.pending_acks = super.children.size();
    super.acks_applied = 0;
    super.rule_applied_max = Nanos{-1};
    for (const std::size_t a : super.children) {
      const proto::EnforceBatch& batch = enforce_batches_[a];
      const std::size_t sz = enforce_frame_size(batch);
      const Nanos routing = scaled(prof_.cpu_route_per_rule, batch.rules.size());
      super.host->send_to(
          aggs_[a]->lane, sz,
          [this, a, sz] {
            aggs_[a]->host->receive(sz, [this, a] { agg_enforce_fanout(a); });
          },
          routing);
    }
  }

  void super_accept_ack(std::size_t s, std::uint32_t applied,
                        Nanos applied_max) {
    Super& super = *supers_[s];
    super.acks_applied += applied;
    super.rule_applied_max = std::max(super.rule_applied_max, applied_max);
    if (--super.pending_acks > 0) return;
    proto::EnforceAck merged;
    merged.cycle_id = cycle_;
    merged.applied = super.acks_applied;
    const std::size_t sz = frame_size(merged);
    const Nanos apply_max = super.rule_applied_max;
    super.host->send_to(0, sz, [this, sz, apply_max] {
      global_host_.receive(sz, [this, apply_max] {
        rule_apply_max_ = std::max(rule_apply_max_, apply_max);
        if (--global_acks_pending_ == 0) finish_cycle();
      });
    });
  }

  void send_enforce_to_agg(std::size_t a) {
    const proto::EnforceBatch& batch = enforce_batches_[a];
    const std::size_t sz = enforce_frame_size(batch);
    const Nanos routing = scaled(prof_.cpu_route_per_rule, batch.rules.size());
    global_host_.send_to(
        aggs_[a]->lane, sz,
        [this, a, sz] {
          if (fault_ != nullptr &&
              !fault_->aggregator_up(a, eng(aggs_[a]->lane).now())) {
            // Crashed aggregator: its subtree's rules are lost; the
            // global ack deadline closes the cycle degraded.
            ++lane_faults_[aggs_[a]->lane];
            return;
          }
          aggs_[a]->host->receive(sz, [this, a] { agg_enforce_fanout(a); });
        },
        routing);
  }

  void agg_enforce_fanout(std::size_t a) {
    Agg& agg = *aggs_[a];
    const auto routed = agg.core->route(enforce_batches_[a]);
    agg.pending_acks = routed.owned.size();
    agg.acks_applied = 0;
    agg.rule_applied_max = Nanos{-1};
    agg.enforce_expected = routed.owned.size();
    if (agg.pending_acks == 0) {
      agg_merged_ack(a);
      return;
    }
    if (fault_ != nullptr) {
      agg.enforce_open = true;
      agg.enforce_extensions = 0;
      agg.fault_cycle = cycle_;
      eng(agg.lane).schedule_in(fault_->phase_timeout(), [this, a, c = cycle_] {
        on_agg_enforce_deadline(a, c);
      });
    }
    for (const auto& rule : routed.owned) {
      send_rule_from_agg(a, rule);
    }
  }

  void on_agg_enforce_deadline(std::size_t a, std::uint64_t c) {
    Agg& agg = *aggs_[a];
    if (!agg.enforce_open || agg.fault_cycle != c) return;
    const std::size_t acked = agg.enforce_expected - agg.pending_acks;
    if (acked < fault_->quorum_count(agg.enforce_expected) &&
        agg.enforce_extensions++ < fault_->max_deadline_extensions()) {
      eng(agg.lane).schedule_in(fault_->phase_timeout(), [this, a, c] {
        on_agg_enforce_deadline(a, c);
      });
      return;
    }
    agg.enforce_open = false;
    agg_merged_ack(a);  // partial: applied < expected marks the cycle degraded
  }

  void send_rule_from_agg(std::size_t a, const proto::Rule& rule) {
    proto::EnforceBatch single;
    single.cycle_id = cycle_;
    single.rules.push_back(rule);
    const std::size_t sz = enforce_frame_size(single);
    aggs_[a]->host->send(
        sz,
        [this, a, rule, c = cycle_] {
          apply_rule_and_ack(rule, aggs_[a]->host.get(), aggs_[a]->lane,
                             [this, a, c](Nanos applied_at) {
                               Agg& agg = *aggs_[a];
                               if (fault_ != nullptr &&
                                   (!agg.enforce_open ||
                                    agg.fault_cycle != c)) {
                                 return;  // ack after the deadline closed
                               }
                               agg.rule_applied_max =
                                   std::max(agg.rule_applied_max, applied_at);
                               ++agg.acks_applied;
                               if (--agg.pending_acks == 0) {
                                 agg.enforce_open = false;
                                 agg_merged_ack(a);
                               }
                             });
        },
        prof_.cpu_route_per_rule);
  }

  void send_lease_to_agg(std::size_t a) {
    const std::size_t sz = frame_size(leases_[a]);
    global_host_.send_to(aggs_[a]->lane, sz, [this, a, sz] {
      aggs_[a]->host->receive(sz, [this, a] { agg_local_decide(a); });
    });
  }

  void agg_local_decide(std::size_t a) {
    Agg& agg = *aggs_[a];
    agg.core->set_lease(leases_[a]);
    const auto rules = agg.core->local_compute(
        cycle_, agg.collected,
        static_cast<std::uint64_t>(eng(agg.lane).now().count()));
    const std::size_t n_a = agg.stage_indices.size();
    const Nanos cost =
        scaled(prof_.cpu_psfa_per_job, std::max<std::size_t>(1, num_jobs() / aggs_.size())) +
        scaled(prof_.cpu_split_per_stage, n_a);
    agg.host->run(cost, [this, a, rules] {
      Agg& agg_ref = *aggs_[a];
      agg_ref.pending_acks = rules.size();
      agg_ref.acks_applied = 0;
      agg_ref.rule_applied_max = Nanos{-1};
      if (rules.empty()) {
        agg_merged_ack(a);
        return;
      }
      for (const auto& rule : rules) send_rule_from_agg(a, rule);
    });
  }

  void agg_merged_ack(std::size_t a) {
    Agg& agg = *aggs_[a];
    proto::EnforceAck merged;
    merged.cycle_id = cycle_;
    merged.applied = agg.acks_applied;
    const std::size_t sz = frame_size(merged);
    if (agg.parent >= 0) {
      const auto s = static_cast<std::size_t>(agg.parent);
      const std::uint32_t applied = merged.applied;
      const Nanos applied_max = agg.rule_applied_max;
      agg.host->send_to(
          supers_[s]->lane, sz, [this, s, sz, applied, applied_max] {
            supers_[s]->host->receive(sz, [this, s, applied, applied_max] {
              super_accept_ack(s, applied, applied_max);
            });
          });
      return;
    }
    Nanos extra{0};
    std::size_t copies = 1;
    bool short_acked = false;
    if (fault_ != nullptr) {
      short_acked =
          agg.enforce_expected > 0 && agg.acks_applied < agg.enforce_expected;
      Engine& eng_a = eng(agg.lane);
      if (!fault_->aggregator_up(a, eng_a.now())) {
        ++lane_faults_[agg.lane];
        return;  // merged ack lost; the global ack deadline closes
      }
      if (!reply_fate(fault::MessageKind::kAggregatorAck, a, agg.lane, extra,
                      copies)) {
        return;
      }
    }
    const Nanos applied_max = agg.rule_applied_max;
    for (std::size_t copy = 0; copy < copies; ++copy) {
      const bool first = copy == 0;
      agg.host->send_to(0, sz, [this, a, sz, extra, first, short_acked,
                                applied_max, c = cycle_] {
        auto deliver = [this, a, first, short_acked, applied_max, c] {
          if (fault_ != nullptr) {
            if (!first || !enforce_open_ || c != cycle_ ||
                ack_seen_[a] != 0) {
              return;  // duplicate or post-deadline straggler
            }
            ack_seen_[a] = 1;
            if (short_acked) cycle_degraded_ = true;
          }
          rule_apply_max_ = std::max(rule_apply_max_, applied_max);
          if (--global_acks_pending_ == 0) {
            enforce_open_ = false;
            finish_cycle();
            return;
          }
          if (!cfg_.parallel_fanout) {
            serial_cursor_ = a + 1;
            if (serial_cursor_ < aggs_.size()) {
              if (cfg_.local_decisions) {
                send_lease_to_agg(serial_cursor_);
              } else {
                send_enforce_to_agg(serial_cursor_);
              }
            }
          }
        };
        if (extra > Nanos{0}) {
          eng0_.schedule_in(extra, [this, sz, deliver = std::move(deliver)] {
            global_host_.receive(sz, std::move(deliver));
          });
        } else {
          global_host_.receive(sz, std::move(deliver));
        }
      });
    }
  }

  // ------------------------------------------------------------------

  void finish_cycle() {
    core::PhaseBreakdown breakdown;
    breakdown.collect = collect_end_ - cycle_start_;
    breakdown.compute = compute_end_ - collect_end_;
    breakdown.enforce = eng0_.now() - compute_end_;
    // Attributed sub-segments (see CycleStats): `aggregate` is the tail
    // of collect after the last aggregator closed its local sub-collect,
    // `disseminate` the head of enforce until the last stage applied a
    // rule. Nanos{-1} = no boundary observed → sub-segment stays 0.
    if (agg_close_max_ >= Nanos{0}) {
      breakdown.aggregate =
          std::clamp(collect_end_ - agg_close_max_, Nanos{0}, breakdown.collect);
    }
    if (rule_apply_max_ >= Nanos{0}) {
      breakdown.disseminate = std::clamp(rule_apply_max_ - compute_end_,
                                         Nanos{0}, breakdown.enforce);
    }
    stats_.record(cycle_, breakdown,
                  fault_ != nullptr && (cycle_degraded_ || cycle_stale_ > 0),
                  cycle_stale_);
    if (fault_ != nullptr) {
      if (cycle_degraded_ || cycle_stale_ > 0) {
        stats_.record_degraded(cycle_stale_);
      }
      for (const Nanos r : cycle_recoveries_) stats_.record_recovery(r);
      cycle_degraded_ = false;
      cycle_stale_ = 0;
      cycle_recoveries_.clear();
      collect_open_ = false;
      report_open_ = false;
      enforce_open_ = false;
    }
    last_cycle_end_ = eng0_.now();
    trace_cycle(breakdown);
    cycle_in_flight_ = false;

    const bool hit_cycle_cap =
        cfg_.max_cycles != 0 && stats_.cycles() >= cfg_.max_cycles;
    if (hit_cycle_cap || eng0_.now() >= cfg_.duration) {
      done_ = true;
      return;
    }
    if (cfg_.cycle_period > Nanos{0}) {
      const Nanos next = cycle_start_ + cfg_.cycle_period;
      if (next > eng0_.now()) {
        if (coordinated()) {
          // Deferred: the idle hook starts the cycle from coordinator
          // context (start_cycle_coordinated seeds every peer engine).
          next_cycle_pending_ = true;
          next_cycle_at_ = next;
        } else {
          eng0_.schedule_at(next, [this] { start_cycle(); });
        }
        return;
      }
    }
    start_cycle();  // stress workload: no idle gap between cycles
  }

  /// One span per phase plus an enclosing cycle span, in virtual time on
  /// the global controller's track. Phase boundaries are exactly the
  /// instants CycleStats measured, so the trace and the histograms agree.
  /// Span ids derive from (cycle, track, name) — stable under any lane
  /// count — and nest causally: cycle → {collect → aggregate, compute,
  /// enforce → disseminate}. The same spans land in the flight recorder
  /// ring when one is attached.
  void trace_cycle(const core::PhaseBreakdown& breakdown) {
    if (cfg_.tracer == nullptr && cfg_.flight == nullptr) return;
    const std::uint64_t trace = cycle_;
    const auto root_id = telemetry::derive_span_id(trace, 0, "cycle");
    const auto collect_id = telemetry::derive_span_id(trace, 0, "collect");
    const auto enforce_id = telemetry::derive_span_id(trace, 0, "enforce");
    const auto make = [&](const char* name, telemetry::SpanPhase phase,
                          std::uint64_t parent, Nanos start, Nanos duration) {
      telemetry::Span span;
      span.name = name;
      span.category = "cycle";
      span.track = 0;
      span.cycle = cycle_;
      span.start = start;
      span.duration = duration;
      span.trace_id = trace;
      span.span_id = telemetry::derive_span_id(trace, 0, name);
      span.parent_span = parent;
      span.phase = phase;
      return span;
    };
    const auto emit = [&](telemetry::Span span) {
      if (cfg_.flight != nullptr) cfg_.flight->record(span);
      if (cfg_.tracer != nullptr) cfg_.tracer->record(std::move(span));
    };
    telemetry::Span cycle_span =
        make("cycle", telemetry::SpanPhase::kNone, 0, cycle_start_,
             eng0_.now() - cycle_start_);
    cycle_span.detail = "stages=" + std::to_string(cfg_.num_stages);
    emit(std::move(cycle_span));
    emit(make("collect", telemetry::SpanPhase::kCollect, root_id, cycle_start_,
              breakdown.collect));
    emit(make("aggregate", telemetry::SpanPhase::kAggregate, collect_id,
              collect_end_ - breakdown.aggregate, breakdown.aggregate));
    emit(make("compute", telemetry::SpanPhase::kCompute, root_id, collect_end_,
              breakdown.compute));
    emit(make("disseminate", telemetry::SpanPhase::kDisseminate, enforce_id,
              compute_end_, breakdown.disseminate));
    emit(make("enforce", telemetry::SpanPhase::kEnforce, root_id, compute_end_,
              breakdown.enforce));
  }

  /// Sample the PFS load factor on a fixed simulated-time grid,
  /// independent of cycle boundaries (sampling only at enforcement
  /// instants would alias: limits are freshest exactly then). The
  /// sampler is a barrier event — it reads every stage with all lanes
  /// quiesced at the sample instant, in every mode including one lane,
  /// so the observation schedule is lane-count-invariant.
  void schedule_utilization_sampler() {
    if (cfg_.utilization_sample_interval <= Nanos{0}) return;
    lanes_.schedule_barrier_in(cfg_.utilization_sample_interval, [this] {
      if (done_) return;
      sample_utilization();
      schedule_utilization_sampler();
    });
  }

  /// PFS load factor: what each stage would submit now (its demand
  /// clipped by its enforced limit), summed, relative to the budget.
  void sample_utilization() {
    const Nanos now = lanes_.barrier_now();
    double data = 0;
    double meta = 0;
    for (const auto& stage : stages_) {
      const double dd = stage.demand(stage::Dimension::kData, now);
      const double dl = stage.limit(stage::Dimension::kData);
      data += dl < 0 ? dd : std::min(dd, dl);
      const double md = stage.demand(stage::Dimension::kMeta, now);
      const double ml = stage.limit(stage::Dimension::kMeta);
      meta += ml < 0 ? md : std::min(md, ml);
    }
    if (cfg_.budgets.data_iops > 0) {
      data_utilization_.add(data / cfg_.budgets.data_iops);
    }
    if (cfg_.budgets.meta_iops > 0) {
      meta_utilization_.add(meta / cfg_.budgets.meta_iops);
    }
  }

  ExperimentResult finalize() {
    ExperimentResult result;
    result.stats = stats_;
    result.cycles = stats_.cycles();
    result.elapsed = last_cycle_end_;
    result.events_executed = lanes_.total_executed();
    if (events_gauge_ != nullptr) {
      events_gauge_->set(static_cast<double>(lanes_.total_executed()));
      vtime_gauge_->set(to_seconds(lanes_.max_lane_now()));
    }
    result.mean_data_utilization = data_utilization_.mean();
    result.mean_meta_utilization = meta_utilization_.mean();
    for (std::size_t l = 0; l < lane_collect_bytes_.size(); ++l) {
      result.collect_wire_bytes += lane_collect_bytes_[l];
      result.collect_wire_bytes_full += lane_collect_bytes_full_[l];
      result.collect_frames_full += lane_frames_full_[l];
      result.collect_frames_delta += lane_frames_delta_[l];
    }
    if (fault_ != nullptr) {
      result.degraded_cycles = stats_.degraded_cycles();
      result.stale_stage_reports = stats_.stale_stages();
      result.mean_recovery_ms = stats_.mean_recovery_ms();
      std::uint64_t injected = 0;
      for (const std::uint64_t f : lane_faults_) injected += f;
      result.faults_injected = injected;
      if (cfg_.metrics != nullptr) {
        telemetry::Labels labels{{"component", "sim"}};
        if (!cfg_.telemetry_label.empty()) {
          labels.emplace_back("configuration", cfg_.telemetry_label);
        }
        cfg_.metrics->counter("sds_fault_injected_total", labels)
            ->add(injected);
      }
    }
    result.final_data_limits.reserve(stages_.size());
    result.final_meta_limits.reserve(stages_.size());
    for (const auto& stage : stages_) {
      const double dl = stage.limit(stage::Dimension::kData);
      const double ml = stage.limit(stage::Dimension::kMeta);
      result.final_data_limits.push_back(dl);
      result.final_meta_limits.push_back(ml);
      if (dl >= 0) result.final_data_limit_sum += dl;
      if (ml >= 0) result.final_meta_limit_sum += ml;
    }

    const double elapsed_s = std::max(to_seconds(last_cycle_end_), 1e-9);
    const auto usage = [&](const SimHost& host, double mem_bytes,
                           double cpu_scale) {
      ControllerUsage u;
      u.cpu_percent =
          to_seconds(host.busy()) / elapsed_s * cpu_scale;
      u.memory_gb = mem_bytes / 1e9;
      u.transmitted_mbps =
          static_cast<double>(host.bytes_tx()) / elapsed_s / 1e6;
      u.received_mbps = static_cast<double>(host.bytes_rx()) / elapsed_s / 1e6;
      return u;
    };

    const double n = static_cast<double>(cfg_.num_stages);
    if (coordinated()) {
      // Each peer looks like a small flat controller plus K-1 peer links.
      const double k = static_cast<double>(peers_.size());
      const auto peer_mem = [&](const Peer& peer) {
        return prof_.mem_base_bytes +
               static_cast<double>(peer.stage_indices.size()) *
                   (prof_.mem_per_conn_bytes + prof_.mem_per_stage_state_bytes) +
               (k - 1) * prof_.mem_per_conn_bytes;
      };
      result.global =
          usage(*peers_[0]->host, peer_mem(*peers_[0]), prof_.cpu_percent_scale);
      ControllerUsage sum;
      for (const auto& peer : peers_) {
        const ControllerUsage u =
            usage(*peer->host, peer_mem(*peer), prof_.cpu_percent_scale);
        sum.cpu_percent += u.cpu_percent;
        sum.memory_gb += u.memory_gb;
        sum.transmitted_mbps += u.transmitted_mbps;
        sum.received_mbps += u.received_mbps;
      }
      result.aggregator = {sum.cpu_percent / k, sum.memory_gb / k,
                           sum.transmitted_mbps / k, sum.received_mbps / k};
      return result;
    }
    if (flat()) {
      const double mem = prof_.mem_base_bytes +
                         n * (prof_.mem_per_conn_bytes +
                              prof_.mem_per_stage_state_bytes);
      result.global = usage(global_host_, mem, prof_.cpu_percent_scale);
    } else {
      const double mem =
          prof_.mem_base_bytes +
          static_cast<double>(aggs_.size()) * prof_.mem_per_conn_bytes +
          n * (prof_.mem_per_stage_state_bytes + prof_.mem_per_stage_hier_bytes);
      result.global = usage(global_host_, mem, prof_.cpu_percent_scale);

      ControllerUsage sum;
      for (const auto& agg : aggs_) {
        const double agg_mem =
            prof_.mem_agg_base_bytes +
            static_cast<double>(agg->stage_indices.size()) *
                prof_.mem_agg_per_stage_bytes;
        const ControllerUsage u =
            usage(*agg->host, agg_mem, prof_.agg_cpu_percent_scale);
        sum.cpu_percent += u.cpu_percent;
        sum.memory_gb += u.memory_gb;
        sum.transmitted_mbps += u.transmitted_mbps;
        sum.received_mbps += u.received_mbps;
      }
      const double a = static_cast<double>(aggs_.size());
      result.aggregator = {sum.cpu_percent / a, sum.memory_gb / a,
                           sum.transmitted_mbps / a, sum.received_mbps / a};

      if (!supers_.empty()) {
        ControllerUsage ssum;
        for (const auto& super : supers_) {
          const double super_mem =
              prof_.mem_agg_base_bytes +
              static_cast<double>(super->children.size()) *
                  prof_.mem_per_conn_bytes;
          const ControllerUsage u =
              usage(*super->host, super_mem, prof_.agg_cpu_percent_scale);
          ssum.cpu_percent += u.cpu_percent;
          ssum.memory_gb += u.memory_gb;
          ssum.transmitted_mbps += u.transmitted_mbps;
          ssum.received_mbps += u.received_mbps;
        }
        const double s = static_cast<double>(supers_.size());
        result.super_aggregator = {ssum.cpu_percent / s, ssum.memory_gb / s,
                                   ssum.transmitted_mbps / s,
                                   ssum.received_mbps / s};
      }
    }
    return result;
  }

  // ------------------------------------------------------------------

  struct Agg {
    std::unique_ptr<core::AggregatorCore> core;
    std::unique_ptr<SimHost> host;
    /// Home lane: the aggregator, its host and all of its stages.
    std::uint32_t lane = 0;
    std::vector<std::size_t> stage_indices;
    std::vector<proto::StageMetrics> collected;
    std::size_t pending_metrics = 0;
    std::size_t pending_acks = 0;
    std::uint32_t acks_applied = 0;
    /// Parent super-aggregator index (-1 = reports directly to global).
    int parent = -1;
    /// Position among the parent's children (canonical report slot).
    std::size_t child_pos = 0;
    // -- Fault state (touched only on the agg's lane) --------------------
    /// Local-stage-index-indexed reply guard for the current sub-collect.
    std::vector<char> fault_seen;
    bool collect_open = false;
    bool enforce_open = false;
    std::size_t collect_extensions = 0;
    std::size_t enforce_extensions = 0;
    std::size_t enforce_expected = 0;
    /// Cycle the open phase belongs to (staleness stamp for deadlines
    /// and late acks).
    std::uint64_t fault_cycle = 0;
    /// Silent stages this cycle; crosses to lane 0 inside the report.
    std::size_t stale = 0;
    /// Recovery samples this cycle; cross to lane 0 inside the report.
    std::vector<Nanos> recoveries;
    /// Latest instant one of this agg's stages applied a rule this cycle
    /// (agg lane; crosses to lane 0 by value with the merged ack, for
    /// the `disseminate` sub-segment). Nanos{-1} = none applied.
    Nanos rule_applied_max{-1};
  };

  /// Third-level controller (3-level hierarchies).
  struct Super {
    std::unique_ptr<SimHost> host;
    std::uint32_t lane = 0;
    std::vector<std::size_t> children;  // aggregator indices
    /// Child-position-indexed (canonical merge order).
    std::vector<proto::AggregatedMetrics> child_reports;
    std::size_t pending_reports = 0;
    std::size_t pending_acks = 0;
    std::uint32_t acks_applied = 0;
    /// Latest child local collect-close relayed this cycle (super lane;
    /// crosses to lane 0 with the merged report). Nanos{-1} = none.
    Nanos child_close_max{-1};
    /// Latest rule-apply instant among the children's acks (super lane).
    Nanos rule_applied_max{-1};
  };

  struct Peer {
    std::unique_ptr<core::CoordinatedControllerCore> core;
    std::unique_ptr<SimHost> host;
    /// Home lane: the peer, its host and all of its stages.
    std::uint32_t lane = 0;
    std::vector<std::size_t> stage_indices;
    std::vector<proto::StageMetrics> collected;
    /// All-to-all exchange buffer, indexed by source peer — every peer
    /// feeds PSFA the same input regardless of arrival order.
    std::vector<proto::AggregatedMetrics> summaries;
    std::size_t summaries_received = 0;
    std::size_t pending_metrics = 0;
    std::size_t pending_acks = 0;
    /// Lane-local phase completion instants, joined by the coordinator
    /// (idle hook) into the cycle's phase boundaries.
    Nanos exchange_done_at{0};
    Nanos compute_done_at{0};
    Nanos enforce_done_at{0};
  };

  const ExperimentConfig& cfg_;
  const FronteraProfile& prof_;
  LaneRunner lanes_;
  Engine& eng0_;  // lane 0: the global controller's engine
  SimHost global_host_;
  core::GlobalControllerCore global_;
  /// Columnar store backing the flat collect path (hierarchical runs use
  /// each AggregatorCore's own store instead).
  core::MetricsStore store_;
  /// Store path enabled for this run (cfg_.store_collect minus the modes
  /// that keep the legacy pipeline; resolved in execute()).
  bool store_collect_ = false;
  bool delta_collect_ = false;
  std::vector<std::unique_ptr<Agg>> aggs_;
  std::vector<std::unique_ptr<Super>> supers_;
  std::vector<std::unique_ptr<Peer>> peers_;
  std::vector<stage::VirtualStage> stages_;
  /// Home lane of each stage (its owning controller's lane).
  std::vector<std::uint32_t> stage_lane_;

  // Per-cycle state.
  std::uint64_t cycle_ = 0;
  Nanos cycle_start_{0};
  Nanos collect_end_{0};
  Nanos compute_end_{0};
  Nanos last_cycle_end_{0};
  // Phase-attribution instants (lane 0), max-folded from values that
  // cross inside the reply closures; Nanos{-1} = no boundary observed
  // this cycle (the sub-segment stays 0).
  /// Latest aggregator local collect-close → `aggregate` sub-segment.
  Nanos agg_close_max_{-1};
  /// Latest rule-apply instant at a stage → `disseminate` sub-segment.
  Nanos rule_apply_max_{-1};
  std::size_t collect_req_size_ = 0;
  std::vector<proto::StageMetrics> flat_metrics_;
  std::size_t flat_pending_ = 0;
  /// Aggregator-id-indexed (super-id-indexed in deep mode).
  std::vector<proto::AggregatedMetrics> agg_reports_;
  std::vector<proto::StageMetrics> passthrough_metrics_;
  /// Aggregator-id-indexed passthrough batches, concatenated in id
  /// order at compute time.
  std::vector<std::vector<proto::StageMetrics>> passthrough_batches_;
  std::size_t reports_pending_ = 0;
  std::vector<proto::EnforceBatch> enforce_batches_;
  std::vector<proto::BudgetLease> leases_;
  std::size_t global_acks_pending_ = 0;
  std::size_t serial_cursor_ = 0;
  core::ComputeResult compute_result_;
  /// What enforce_flat disseminates: &compute_result_ on the batch
  /// paths, GlobalControllerCore's persistent store-backed result on the
  /// incremental path. Set by compute_flat() before every enforce.
  const core::ComputeResult* compute_view_ = nullptr;
  /// Per-stage previous report + first-report flag for delta framing
  /// (each slot owned by the lane that runs the stage's collect).
  std::vector<proto::StageMetrics> last_report_;
  std::vector<char> has_report_;
  /// Collect wire accounting, indexed by receiving controller's lane
  /// (summed at finalize() with the lanes quiescent).
  std::vector<std::uint64_t> lane_collect_bytes_;
  std::vector<std::uint64_t> lane_collect_bytes_full_;
  std::vector<std::uint64_t> lane_frames_full_;
  std::vector<std::uint64_t> lane_frames_delta_;
  core::CycleStats stats_;
  RunningStats data_utilization_;
  RunningStats meta_utilization_;
  telemetry::Gauge* events_gauge_ = nullptr;
  telemetry::Gauge* vtime_gauge_ = nullptr;
  bool cycle_in_flight_ = false;
  bool next_cycle_pending_ = false;
  Nanos next_cycle_at_{0};
  bool done_ = false;

  // -- Fault-injection state (unallocated without a plan) ---------------
  std::unique_ptr<fault::CompiledPlan> fault_;
  /// Injections per lane; each slot touched only by its lane's events,
  /// summed at finalize() with the lanes quiescent.
  std::vector<std::uint64_t> lane_faults_;
  /// Virtual time of the last accepted collect reply per stage, for
  /// recovery accounting; each entry owned by the lane the stage's
  /// replies are delivered on. Nanos{-1} = never.
  std::vector<Nanos> last_fresh_at_;
  /// Received-only metrics, compacted for degraded flat computes.
  std::vector<proto::StageMetrics> flat_scratch_;
  // Lane-0 phase state: flat collect, hier reports, enforce acks.
  bool collect_open_ = false;
  bool report_open_ = false;
  bool enforce_open_ = false;
  std::size_t collect_extensions_ = 0;
  std::size_t report_extensions_ = 0;
  std::size_t enforce_extensions_ = 0;
  std::size_t enforce_expected_ = 0;
  std::vector<char> collect_seen_;
  std::vector<char> report_seen_;
  std::vector<char> ack_seen_;
  // Per-cycle degraded accounting, recorded and reset in finish_cycle().
  bool cycle_degraded_ = false;
  std::size_t cycle_stale_ = 0;
  std::vector<Nanos> cycle_recoveries_;
};

}  // namespace

Result<ExperimentResult> run_experiment(const ExperimentConfig& config) {
  ExperimentConfig cfg = config;
  if (cfg.lanes == 0) {
    cfg.lanes = 1;
    if (const char* env = std::getenv("SDSCALE_SIM_LANES")) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0' && v > 0) {
        cfg.lanes = static_cast<std::size_t>(v);
      }
    }
  }
  Run run(cfg);
  SDS_RETURN_IF_ERROR(run.validate());
  return run.execute();
}

}  // namespace sds::sim
