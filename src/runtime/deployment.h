// Deployment — convenience builder for a full live control plane on one
// transport network (in-process by default): a global controller, an
// optional layer of aggregators, and stage hosts with virtual stages.
// Used by the examples and the integration tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/aggregator_server.h"
#include "runtime/global_server.h"
#include "runtime/stage_host.h"
#include "transport/inproc.h"

namespace sds::runtime {

struct DeploymentOptions {
  std::size_t num_stages = 8;
  std::size_t num_aggregators = 0;  // 0 = flat
  std::size_t stages_per_job = 4;
  std::size_t stages_per_host = 8;  // paper: 50 virtual stages per node
  core::Budgets budgets{};
  Nanos phase_timeout = seconds(5);
  /// Global-controller gather quorum (GlobalServerOptions::collect_quorum).
  double collect_quorum = 1.0;
  /// Local-decision mode (paper §VI): lease budgets to aggregators that
  /// run PSFA over their own subtree. Requires num_aggregators > 0.
  bool local_decisions = false;
  /// Per-endpoint connection cap (0 = unlimited), mirroring the paper's
  /// per-node limit.
  std::size_t max_connections = 0;
  /// Stage hosts answer collects with StageMetricsDelta frames
  /// (StageHostOptions::delta_metrics); the flat global controller folds
  /// them through its columnar MetricsStore. Flat-only: aggregators do
  /// not reassemble deltas, so create() rejects this with aggregators.
  bool delta_metrics = false;
  std::size_t delta_refresh = 64;
  /// Disable the global controller's columnar store compute path
  /// (GlobalServerOptions::use_metrics_store; batch-pipeline ablation).
  bool use_metrics_store = true;
  /// Force a full rebuild of the store compute each cycle
  /// (GlobalServerOptions::psfa_full_recompute ablation).
  bool psfa_full_recompute = false;
  /// Demand for every stage when no factory is given.
  double data_demand = 1000;
  double meta_demand = 100;
  std::function<stage::DemandFn(StageId, stage::Dimension)> demand_factory;
};

class Deployment {
 public:
  /// Build and start the whole topology on `network`; registers all
  /// stages and waits until the global controller knows the full roster.
  static Result<std::unique_ptr<Deployment>> create(
      transport::Network& network, const DeploymentOptions& options);

  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  [[nodiscard]] GlobalControllerServer& global() { return *global_; }
  [[nodiscard]] std::vector<std::unique_ptr<AggregatorServer>>& aggregators() {
    return aggregators_;
  }
  [[nodiscard]] std::vector<std::unique_ptr<StageHost>>& stage_hosts() {
    return stage_hosts_;
  }

  /// Limit currently enforced at a stage (searches all hosts).
  [[nodiscard]] Result<double> stage_limit(StageId stage,
                                           stage::Dimension dim) const;

  // Fault controls (used by FaultDriver and the failover tests). A kill
  // shuts the server down in place — peers observe connection-closed
  // events exactly as for a real crash; the dead object stays in its
  // slot so indices remain stable. A restart replaces the slot with a
  // fresh server bound to the same address (the in-process transport
  // unbinds on shutdown, so rebinding succeeds) and, for stage hosts,
  // re-adds and re-registers the host's virtual stages.
  Status kill_aggregator(std::size_t index);
  Status restart_aggregator(std::size_t index);
  Status kill_stage_host(std::size_t index);
  Status restart_stage_host(std::size_t index);

  void shutdown();

 private:
  Deployment() = default;

  [[nodiscard]] Result<std::unique_ptr<AggregatorServer>> make_aggregator(
      std::size_t index) const;
  [[nodiscard]] Result<std::unique_ptr<StageHost>> make_stage_host(
      std::size_t index) const;

  transport::Network* network_ = nullptr;
  DeploymentOptions options_;
  std::unique_ptr<GlobalControllerServer> global_;
  std::vector<std::unique_ptr<AggregatorServer>> aggregators_;
  std::vector<std::unique_ptr<StageHost>> stage_hosts_;
};

}  // namespace sds::runtime
