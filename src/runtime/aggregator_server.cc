#include "runtime/aggregator_server.h"

#include <algorithm>

#include "common/log.h"
#include "rpc/broadcast.h"

namespace sds::runtime {

AggregatorServer::AggregatorServer(transport::Network& network,
                                   std::string address,
                                   AggregatorServerOptions options,
                                   const Clock& clock)
    : network_(&network),
      address_(std::move(address)),
      options_(std::move(options)),
      clock_(&clock),
      core_(core::AggregatorOptions{options_.id, /*preaggregate=*/true}) {}

AggregatorServer::~AggregatorServer() { shutdown(); }

Status AggregatorServer::start(
    const transport::EndpointOptions& endpoint_options) {
  {
    MutexLock lock(mu_);
    if (started_) return Status::failed_precondition("already started");
    auto endpoint = network_->bind(address_, endpoint_options);
    if (!endpoint.is_ok()) return endpoint.status();
    endpoint_ = std::move(endpoint).value();
    started_ = true;
  }
  dispatcher_.set_fallback(
      [this](ConnId conn, wire::Frame frame) { on_frame(conn, std::move(frame)); });
  endpoint_->set_frame_handler([this](ConnId conn, wire::Frame frame) {
    dispatcher_.on_frame(conn, std::move(frame));
  });
  endpoint_->set_conn_handler([this](ConnId conn, transport::ConnEvent event) {
    dispatcher_.on_conn_event(conn, event);
    if (event == transport::ConnEvent::kClosed) on_conn_closed(conn);
  });

  if (options_.telemetry.enabled) {
    telemetry::TelemetryOptions opts = options_.telemetry;
    if (opts.component == "sds") opts.component = "aggregator";
    telemetry_.init(opts, endpoint_.get(), dispatcher_);
    cycles_counter_ = telemetry_.registry()->counter(
        "sds_aggregator_cycles_served_total", {{"component", opts.component}});
  }

  worker_ = std::thread([this] {
    while (auto task = work_.pop()) (*task)();
  });

  auto upstream = endpoint_->connect(options_.upstream_address);
  if (!upstream.is_ok()) return upstream.status();
  {
    MutexLock lock(mu_);
    upstream_ = upstream.value();
  }
  proto::Heartbeat intro;
  intro.from = options_.id;
  intro.seq = 0;
  return endpoint_->send(upstream.value(), proto::to_frame(intro));
}

void AggregatorServer::on_frame(ConnId conn, wire::Frame frame) {
  using proto::MessageType;
  switch (static_cast<MessageType>(frame.type)) {
    case MessageType::kRegisterRequest: {
      const auto request = proto::from_frame<proto::RegisterRequest>(frame);
      if (!request.is_ok()) return;
      proto::RegisterAck ack;
      ConnId upstream;
      {
        MutexLock lock(mu_);
        // Upsert: a stage reconnecting (e.g. after a transient drop) may
        // re-register before its old connection is reaped.
        Status added = core_.registry().add(
            {request->info, conn, ControllerId::invalid()});
        if (added.code() == StatusCode::kAlreadyExists) {
          (void)core_.registry().remove(request->info.stage_id);
          added = core_.registry().add(
              {request->info, conn, ControllerId::invalid()});
        }
        ack.accepted = added.is_ok();
        ack.epoch = 0;
        if (added.is_ok()) stages_by_conn_[conn].push_back(request->info.stage_id);
        upstream = upstream_;
      }
      (void)endpoint_->send(conn, proto::to_frame(ack));
      // Forward upstream so the global controller learns the roster; the
      // upstream ack is informational and ignored here.
      if (ack.accepted && upstream.valid()) {
        (void)endpoint_->send(upstream, frame);
      }
      break;
    }
    case MessageType::kCollectRequest: {
      auto request = proto::from_frame<proto::CollectRequest>(frame);
      if (!request.is_ok()) return;
      work_.push([this, req = std::move(request).value(), ctx = frame.trace] {
        serve_collect(req, ctx);
      });
      break;
    }
    case MessageType::kEnforceBatch: {
      auto batch = proto::from_frame<proto::EnforceBatch>(frame);
      if (!batch.is_ok()) return;
      work_.push([this, b = std::move(batch).value(), ctx = frame.trace] {
        serve_enforce(b, ctx);
      });
      break;
    }
    case MessageType::kBudgetLease: {
      auto lease = proto::from_frame<proto::BudgetLease>(frame);
      if (!lease.is_ok()) return;
      work_.push([this, l = std::move(lease).value(), ctx = frame.trace] {
        serve_lease(l, ctx);
      });
      break;
    }
    case MessageType::kHeartbeat: {
      // Liveness probe from the global controller.
      const auto hb = proto::from_frame<proto::Heartbeat>(frame);
      if (!hb.is_ok()) return;
      proto::HeartbeatAck ack;
      ack.seq = hb->seq;
      (void)endpoint_->send(conn, proto::to_frame(ack));
      break;
    }
    case MessageType::kRegisterAck:
    case MessageType::kHeartbeatAck:
      break;  // upstream responses to forwarded traffic
    default:
      SDS_LOG(DEBUG) << address_ << ": unrouted frame type " << frame.type;
  }
}

std::optional<wire::TraceContext> AggregatorServer::child_context(
    const std::optional<wire::TraceContext>& ctx, const char* name) const {
  if (!ctx.has_value()) return std::nullopt;
  return wire::TraceContext{
      ctx->trace_id,
      telemetry::derive_span_id(ctx->trace_id, telemetry_.track(), name)};
}

void AggregatorServer::record_hop(const std::optional<wire::TraceContext>& ctx,
                                  const char* name, std::uint64_t cycle,
                                  Nanos begin, telemetry::SpanPhase phase) {
  if (!ctx.has_value()) return;
  const std::uint32_t track = telemetry_.track();
  telemetry::Span span;
  span.name = name;
  span.category = "component";
  span.track = track;
  span.cycle = cycle;
  span.start = begin;
  span.duration = clock_->now() - begin;
  span.trace_id = ctx->trace_id;
  span.span_id = telemetry::derive_span_id(ctx->trace_id, track, name);
  span.parent_span = ctx->parent_span;
  span.phase = phase;
  telemetry_.flight().record(span);
  if (telemetry_.tracer() != nullptr) telemetry_.tracer()->record(span);
}

void AggregatorServer::serve_collect(proto::CollectRequest request,
                                     std::optional<wire::TraceContext> ctx) {
  const Nanos begin = clock_->now();
  std::vector<ConnId> conns;
  ConnId upstream;
  {
    MutexLock lock(mu_);
    core_.registry().for_each(
        [&](const core::StageRecord& record) { conns.push_back(record.conn); });
    upstream = upstream_;
    ++cycles_served_;
  }
  if (cycles_counter_ != nullptr) cycles_counter_->add();

  // Downstream hops hang off OUR span, so the stage-side spans nest under
  // this aggregator in the stitched trace.
  const auto child_ctx = child_context(ctx, "agg.collect");
  auto gather = dispatcher_.start_gather(proto::MessageType::kStageMetrics,
                                         request.cycle_id, conns);
  // Encode once; every stage connection queues the same shared image.
  rpc::broadcast(*endpoint_, conns, request, child_ctx);
  const Status wait = gather->wait_for(options_.phase_timeout);
  if (!wait.is_ok()) {
    SDS_LOG(WARN) << address_ << ": collect incomplete in cycle "
                  << request.cycle_id;
  }
  std::vector<proto::StageMetrics> metrics;
  for (auto& reply : gather->take_replies()) {
    auto m = proto::from_frame<proto::StageMetrics>(reply.frame);
    if (m.is_ok()) metrics.push_back(std::move(m).value());
  }
  dispatcher_.finish(gather);

  proto::AggregatedMetrics report;
  {
    MutexLock lock(mu_);
    report = core_.aggregate(request.cycle_id, metrics);
    last_collected_ = std::move(metrics);
    last_collect_cycle_ = request.cycle_id;
  }
  record_hop(ctx, "agg.collect", request.cycle_id, begin,
             telemetry::SpanPhase::kCollect);
  if (upstream.valid()) {
    (void)endpoint_->send(upstream, proto::to_frame(report, child_ctx));
  }
}

void AggregatorServer::serve_lease(proto::BudgetLease lease,
                                   std::optional<wire::TraceContext> ctx) {
  std::vector<proto::Rule> rules;
  {
    MutexLock lock(mu_);
    core_.set_lease(lease);
    rules = core_.local_compute(
        lease.cycle_id, last_collected_,
        static_cast<std::uint64_t>(clock_->now().count()));
  }
  enforce_rules(lease.cycle_id, rules, ctx);
}

void AggregatorServer::serve_enforce(proto::EnforceBatch batch,
                                     std::optional<wire::TraceContext> ctx) {
  core::AggregatorCore::RoutedRules routed;
  {
    MutexLock lock(mu_);
    routed = core_.route(batch);
  }
  if (!routed.unknown.empty()) {
    SDS_LOG(WARN) << address_ << ": " << routed.unknown.size()
                  << " rules for unknown stages";
  }
  enforce_rules(batch.cycle_id, routed.owned, ctx);
}

void AggregatorServer::enforce_rules(
    std::uint64_t cycle_id, const std::vector<proto::Rule>& rules,
    const std::optional<wire::TraceContext>& ctx) {
  const Nanos begin = clock_->now();
  const auto child_ctx = child_context(ctx, "agg.enforce");
  ConnId upstream;
  std::vector<std::pair<ConnId, proto::EnforceBatch>> deliveries;
  {
    MutexLock lock(mu_);
    upstream = upstream_;
    for (const auto& rule : rules) {
      const core::StageRecord* record = core_.registry().find(rule.stage_id);
      if (record == nullptr) continue;
      proto::EnforceBatch single;
      single.cycle_id = cycle_id;
      single.rules.push_back(rule);
      deliveries.emplace_back(record->conn, std::move(single));
    }
  }

  std::vector<ConnId> conns;
  conns.reserve(deliveries.size());
  for (const auto& [conn, _] : deliveries) conns.push_back(conn);
  auto gather = dispatcher_.start_gather(proto::MessageType::kEnforceAck,
                                         cycle_id, conns);
  for (const auto& [conn, single] : deliveries) {
    (void)endpoint_->send(conn, proto::to_frame(single, child_ctx));
  }
  const Status wait = gather->wait_for(options_.phase_timeout);
  if (!wait.is_ok()) {
    SDS_LOG(WARN) << address_ << ": enforce incomplete in cycle "
                  << cycle_id;
  }
  std::vector<proto::EnforceAck> acks;
  for (auto& reply : gather->take_replies()) {
    auto ack = proto::from_frame<proto::EnforceAck>(reply.frame);
    if (ack.is_ok()) acks.push_back(std::move(ack).value());
  }
  dispatcher_.finish(gather);

  proto::EnforceAck merged;
  {
    MutexLock lock(mu_);
    merged = core_.merge_acks(cycle_id, acks);
  }
  record_hop(ctx, "agg.enforce", cycle_id, begin,
             telemetry::SpanPhase::kEnforce);
  if (upstream.valid()) {
    (void)endpoint_->send(upstream, proto::to_frame(merged, child_ctx));
  }
}

void AggregatorServer::on_conn_closed(ConnId conn) {
  MutexLock lock(mu_);
  if (conn == upstream_) {
    SDS_LOG(WARN) << address_ << ": upstream connection lost";
    upstream_ = ConnId::invalid();
    return;
  }
  if (const auto it = stages_by_conn_.find(conn); it != stages_by_conn_.end()) {
    for (const StageId stage : it->second) {
      // Skip stages that already re-registered over a newer connection.
      const core::StageRecord* record = core_.registry().find(stage);
      if (record != nullptr && record->conn == conn) {
        (void)core_.registry().remove(stage);
      }
    }
    stages_by_conn_.erase(it);
  }
}

std::size_t AggregatorServer::registered_stages() const {
  MutexLock lock(mu_);
  return core_.registry().size();
}

std::uint64_t AggregatorServer::cycles_served() const {
  MutexLock lock(mu_);
  return cycles_served_;
}

void AggregatorServer::shutdown() {
  {
    MutexLock lock(mu_);
    if (!started_) return;
    started_ = false;
  }
  work_.close();
  if (worker_.joinable()) worker_.join();
  telemetry_.stop();
  endpoint_->shutdown();
}

}  // namespace sds::runtime
