// GlobalControllerServer — the live global controller: binds an endpoint,
// accepts stage/aggregator registrations, and drives collect → compute →
// enforce control cycles over real transports using the sans-I/O
// GlobalControllerCore for every decision.
//
// Topologies:
//  * Flat: stages register directly; the collect/enforce fan-out goes to
//    one connection per stage (Fig. 2).
//  * Hierarchical: aggregators introduce themselves (Heartbeat) and
//    forward their stages' registrations; fan-out goes to one connection
//    per aggregator (Fig. 3). Mixed topologies also work — directly
//    attached stages are folded into the hierarchical compute path.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "core/cycle_stats.h"
#include "core/global.h"
#include "core/metrics_store.h"
#include "monitor/resource_monitor.h"
#include "rpc/gather.h"
#include "runtime/server_telemetry.h"
#include "transport/transport.h"

namespace sds::runtime {

struct GlobalServerOptions {
  core::GlobalOptions core;
  /// Deadline for each gather (collect replies / enforce acks).
  Nanos phase_timeout = seconds(5);
  /// Fraction of expected replies that lets a gather wave proceed before
  /// its deadline (degraded-cycle contract, DESIGN.md §12). 1.0 keeps
  /// the pre-fault behaviour: wait the full deadline for every reply.
  /// Below 1.0, a cycle that closes on quorum is recorded as degraded
  /// with the silent stages counted stale instead of stalling the plane.
  double collect_quorum = 1.0;
  /// Observability: when enabled, cycle histograms, transport counters
  /// and gather stats register into one MetricsRegistry (shared when
  /// `telemetry.registry` is set) and a TelemetryReporter thread exports
  /// JSONL/Prometheus snapshots to `telemetry.out_dir`.
  telemetry::TelemetryOptions telemetry = {};
  /// Local-decision mode (paper §VI): instead of computing per-stage
  /// rules centrally, grant each aggregator a demand-proportional budget
  /// lease and let it run PSFA over its own subtree. Requires a purely
  /// hierarchical topology (no directly-attached stages).
  bool local_decisions = false;
  /// How long each granted lease stays valid.
  Nanos lease_validity = seconds(10);
  /// Columnar compute path: fold collect replies into a core::MetricsStore
  /// and run GlobalControllerCore::compute_from_store (incremental PSFA)
  /// instead of the batch compute. Takes effect on cycles with no
  /// registered aggregators — the hierarchical path keeps the batch
  /// pipeline. Decisions are bit-identical to the batch path; a roster
  /// change (registration, eviction) rebuilds the store bindings before
  /// the next compute.
  bool use_metrics_store = true;
  /// Accept StageMetricsDelta collect replies and fold them through the
  /// store (requires use_metrics_store; only sensible when the stage
  /// hosts enable delta_metrics). A delta that fails validation —
  /// unknown slot, duplicate/out-of-order cycle, broken base chain
  /// (e.g. after a lost reply or a store rebuild) — is dropped and its
  /// stage counted stale for the cycle; the sender's periodic full
  /// refresh re-anchors the chain.
  bool accept_deltas = true;
  /// MetricsStore compute-view threshold (ops/s); see
  /// MetricsStoreOptions::activity_threshold.
  double activity_threshold = 0.0;
  /// Ablation: force the store path to rebuild every job each cycle.
  bool psfa_full_recompute = false;
};

class GlobalControllerServer {
 public:
  GlobalControllerServer(
      transport::Network& network, std::string address,
      GlobalServerOptions options,
      std::unique_ptr<policy::ControlAlgorithm> algorithm = nullptr,
      const Clock& clock = SystemClock::instance());
  ~GlobalControllerServer();

  GlobalControllerServer(const GlobalControllerServer&) = delete;
  GlobalControllerServer& operator=(const GlobalControllerServer&) = delete;

  Status start(const transport::EndpointOptions& endpoint_options = {});

  /// Run one full control cycle; returns its phase breakdown. Partial
  /// collect/enforce rounds (timeouts, dead peers) still complete the
  /// cycle over the replies that did arrive.
  Result<core::PhaseBreakdown> run_cycle();

  /// Run `n` back-to-back cycles (the paper's stress workload).
  Status run_cycles(std::size_t n);

  [[nodiscard]] const core::CycleStats& stats() const { return stats_; }

  /// Set a job's QoS weight (thread-safe).
  void set_job_weight(JobId job, double weight);
  void set_budgets(core::Budgets budgets);

  /// Liveness probe (paper §VI dependability): heartbeat every known
  /// aggregator and directly-attached stage connection, wait up to
  /// `timeout` for acks, and return the peers that did not answer —
  /// candidates for eviction/failover. A hung peer (process alive,
  /// thread stuck) is detected here even though its connection stays
  /// open.
  struct DeadPeer {
    ConnId conn;
    /// Valid when the silent peer was an aggregator.
    ControllerId aggregator = ControllerId::invalid();
  };
  [[nodiscard]] Result<std::vector<DeadPeer>> probe_liveness(Nanos timeout);

  /// Evict a silent peer: drop its registry entries and close the
  /// connection (its stages will re-register via their failover list).
  void evict(const DeadPeer& peer);

  [[nodiscard]] std::size_t registered_stages() const;
  [[nodiscard]] std::size_t known_aggregators() const;
  [[nodiscard]] std::uint32_t epoch() const;
  /// Failover takeover: bump the rule epoch (newer rules supersede).
  void advance_epoch();

  [[nodiscard]] transport::Endpoint* endpoint() { return endpoint_.get(); }
  /// Telemetry registry/tracer (null unless options.telemetry.enabled).
  [[nodiscard]] telemetry::MetricsRegistry* metrics() {
    return telemetry_.registry();
  }
  [[nodiscard]] telemetry::SpanTracer* tracer() { return telemetry_.tracer(); }
  /// Always-on flight recorder (cycle phase spans; dumped on faults and
  /// the first degraded cycle).
  [[nodiscard]] telemetry::FlightRecorder& flight() {
    return telemetry_.flight();
  }
  /// Live introspection endpoint (null unless telemetry.introspect).
  [[nodiscard]] telemetry::IntrospectionServer* introspection() {
    return telemetry_.introspection();
  }
  /// Trigger a flight-recorder dump (also called by FaultDriver hooks).
  void dump_flight(const std::string& reason) {
    telemetry_.dump_flight(reason);
  }
  /// Bound address (the resolved one — e.g. the actual port when the
  /// endpoint was bound to port 0).
  [[nodiscard]] const std::string& address() const {
    return endpoint_ ? endpoint_->address() : address_;
  }

  void shutdown();

 private:
  struct CycleTargets {
    std::vector<ConnId> stage_conns;              // direct stages
    std::vector<std::pair<ConnId, ControllerId>> aggregators;
  };

  void on_frame(ConnId conn, wire::Frame frame);
  void on_conn_closed(ConnId conn);
  /// Record collect/compute/enforce spans for a finished cycle.
  void trace_cycle(std::uint64_t cycle, const core::PhaseBreakdown& breakdown);
  [[nodiscard]] CycleTargets snapshot_targets() const;
  /// Local-decision mode: compute + grant budget leases and await the
  /// aggregators' merged enforcement acks.
  Result<core::PhaseBreakdown> run_lease_phase(
      std::uint64_t cycle,
      const std::vector<proto::AggregatedMetrics>& aggregated,
      const CycleTargets& targets, core::PhaseBreakdown breakdown,
      Stopwatch& phase);

  transport::Network* network_;
  const std::string address_;
  GlobalServerOptions options_;
  const Clock* clock_;

  std::unique_ptr<transport::Endpoint> endpoint_;
  rpc::Dispatcher dispatcher_;
  ServerTelemetry telemetry_;

  /// Rebind the store to the current flat roster if it changed.
  void sync_store() SDS_REQUIRES(mu_);
  /// Store slot for a delta that omitted its stage id: the slot of the
  /// connection's single registered stage (kInvalidIndex when the conn
  /// is unknown or carries several stages — ambiguous, so rejected).
  [[nodiscard]] std::uint32_t store_hint(ConnId conn) const SDS_REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kRuntimeServer};
  core::GlobalControllerCore core_ SDS_GUARDED_BY(mu_);
  /// Columnar metrics store backing the flat incremental compute path.
  core::MetricsStore store_ SDS_GUARDED_BY(mu_);
  /// Roster moved since the last sync_store() (starts true: first cycle
  /// binds the initial roster).
  bool store_roster_changed_ SDS_GUARDED_BY(mu_) = true;
  std::unordered_map<ConnId, std::vector<StageId>> stages_by_conn_
      SDS_GUARDED_BY(mu_);
  std::unordered_map<ConnId, ControllerId> aggregators_by_conn_
      SDS_GUARDED_BY(mu_);
  /// Touched only by the control thread driving run_cycle(); the stats()
  /// accessor is safe once cycles stop (test introspection).
  core::CycleStats stats_;  // sdscheck: allow(unguarded-field)
  /// Per-phase CPU/RSS attribution (control thread only; inert unless
  /// telemetry is enabled).
  monitor::PhaseResourceProbe phase_probe_;  // sdscheck: allow(unguarded-field)
  /// First degraded cycle dumps the flight ring once per server run.
  bool flight_dumped_ = false;  // sdscheck: allow(unguarded-field)
  /// First cycle time each currently-silent peer went missing (control
  /// thread only). A later fresh reply records the gap as recovery time.
  std::unordered_map<ConnId, Nanos> missing_since_;  // sdscheck: allow(unguarded-field)
  std::uint64_t heartbeat_seq_ SDS_GUARDED_BY(mu_) = 0;
  bool started_ SDS_GUARDED_BY(mu_) = false;
};

}  // namespace sds::runtime
