// Shared telemetry wiring for the live servers (GlobalControllerServer,
// AggregatorServer, StageHost): resolves TelemetryOptions into a registry
// and tracer (external or owned), binds the endpoint's transport counters
// and the dispatcher's gather instruments, runs the periodic
// TelemetryReporter when an output directory is configured, keeps the
// component's always-on flight recorder, and serves the live
// introspection endpoint (/metrics, /cycles, /flight) when requested.
#pragma once

#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "common/log.h"
#include "rpc/gather.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/introspect.h"
#include "telemetry/metrics.h"
#include "telemetry/reporter.h"
#include "telemetry/span_tracer.h"
#include "transport/telemetry.h"

namespace sds::runtime {

class ServerTelemetry {
 public:
  /// No-op when `options.enabled` is false. Call after the endpoint is
  /// bound; safe to call at most once. `cycles_json` (may be null) backs
  /// the introspection endpoint's /cycles route.
  void init(const telemetry::TelemetryOptions& options,
            const transport::Endpoint* endpoint, rpc::Dispatcher& dispatcher,
            std::function<std::string()> cycles_json = nullptr) {
    if (!options.enabled) return;
    component_ = options.component;
    out_dir_ = options.out_dir;
    track_ = options.track;
    registry_ = options.registry != nullptr
                    ? options.registry
                    : (owned_registry_ =
                           std::make_unique<telemetry::MetricsRegistry>())
                          .get();
    if (options.tracer != nullptr) {
      tracer_ = options.tracer;
    } else if (options.trace) {
      owned_tracer_ = std::make_unique<telemetry::SpanTracer>();
      tracer_ = owned_tracer_.get();
    }
    const telemetry::Labels labels{{"component", options.component}};
    transport::bind_endpoint_metrics(*registry_, endpoint, labels);
    dispatcher.bind_telemetry(*registry_, labels);
    if (!options.out_dir.empty()) {
      reporter_ = std::make_unique<telemetry::TelemetryReporter>(
          *registry_, tracer_, options.out_dir, options.component,
          options.report_period);
      reporter_->start();
    }
    if (options.introspect) {
      telemetry::IntrospectionServer::Options iopts;
      iopts.port = options.introspect_port;
      iopts.component = options.component;
      iopts.registry = registry_;
      iopts.flight = &flight_;
      iopts.cycles_json = std::move(cycles_json);
      introspect_ =
          std::make_unique<telemetry::IntrospectionServer>(std::move(iopts));
      const Status started = introspect_->start();
      if (!started.is_ok()) {
        SDS_LOG(WARN) << options.component
                      << ": introspection server failed to start: "
                      << started.to_string();
        introspect_.reset();
      }
    }
  }

  /// Stop the introspection server and the reporter (final flush + trace
  /// export). Idempotent.
  void stop() {
    if (introspect_ != nullptr) introspect_->stop();
    if (reporter_ != nullptr) reporter_->stop();
  }

  /// Dump the flight-recorder ring: to `<out_dir>/<component>.flight.json`
  /// when an output directory is configured, to the log otherwise. Called
  /// on faults and degraded cycles so the last spans before the event
  /// survive.
  void dump_flight(const std::string& reason) {
    const std::string json = flight_.dump_json(component_, reason);
    if (!out_dir_.empty()) {
      const std::string path = out_dir_ + "/" + component_ + ".flight.json";
      std::ofstream out(path, std::ios::trunc);
      if (out) {
        out << json << '\n';
        return;
      }
      SDS_LOG(WARN) << component_ << ": cannot write flight dump to " << path;
    }
    SDS_LOG(INFO) << component_ << ": flight dump (" << reason
                  << "): " << flight_.recorded() << " spans recorded";
  }

  [[nodiscard]] telemetry::MetricsRegistry* registry() { return registry_; }
  [[nodiscard]] telemetry::SpanTracer* tracer() { return tracer_; }
  /// Always-on allocation-free span ring (valid even before init()).
  [[nodiscard]] telemetry::FlightRecorder& flight() { return flight_; }
  [[nodiscard]] const telemetry::FlightRecorder& flight() const {
    return flight_;
  }
  /// Track id this component's spans record on.
  [[nodiscard]] std::uint32_t track() const { return track_; }
  /// Introspection server (null unless started); port() gives the bound
  /// port when the options asked for an ephemeral one.
  [[nodiscard]] telemetry::IntrospectionServer* introspection() {
    return introspect_.get();
  }

 private:
  std::unique_ptr<telemetry::MetricsRegistry> owned_registry_;
  std::unique_ptr<telemetry::SpanTracer> owned_tracer_;
  telemetry::MetricsRegistry* registry_ = nullptr;
  telemetry::SpanTracer* tracer_ = nullptr;
  std::unique_ptr<telemetry::TelemetryReporter> reporter_;
  /// Fixed-size ring, preallocated at construction; record() never
  /// allocates, so it stays armed even when telemetry is disabled.
  telemetry::FlightRecorder flight_;
  std::unique_ptr<telemetry::IntrospectionServer> introspect_;
  std::string component_ = "sds";
  std::string out_dir_;
  std::uint32_t track_ = 0;
};

}  // namespace sds::runtime
