// Shared telemetry wiring for the live servers (GlobalControllerServer,
// AggregatorServer, StageHost): resolves TelemetryOptions into a registry
// and tracer (external or owned), binds the endpoint's transport counters
// and the dispatcher's gather instruments, and runs the periodic
// TelemetryReporter when an output directory is configured.
#pragma once

#include <memory>
#include <string>

#include "rpc/gather.h"
#include "telemetry/metrics.h"
#include "telemetry/reporter.h"
#include "telemetry/span_tracer.h"
#include "transport/telemetry.h"

namespace sds::runtime {

class ServerTelemetry {
 public:
  /// No-op when `options.enabled` is false. Call after the endpoint is
  /// bound; safe to call at most once.
  void init(const telemetry::TelemetryOptions& options,
            const transport::Endpoint* endpoint, rpc::Dispatcher& dispatcher) {
    if (!options.enabled) return;
    registry_ = options.registry != nullptr
                    ? options.registry
                    : (owned_registry_ =
                           std::make_unique<telemetry::MetricsRegistry>())
                          .get();
    if (options.tracer != nullptr) {
      tracer_ = options.tracer;
    } else if (options.trace) {
      owned_tracer_ = std::make_unique<telemetry::SpanTracer>();
      tracer_ = owned_tracer_.get();
    }
    const telemetry::Labels labels{{"component", options.component}};
    transport::bind_endpoint_metrics(*registry_, endpoint, labels);
    dispatcher.bind_telemetry(*registry_, labels);
    if (!options.out_dir.empty()) {
      reporter_ = std::make_unique<telemetry::TelemetryReporter>(
          *registry_, tracer_, options.out_dir, options.component,
          options.report_period);
      reporter_->start();
    }
  }

  /// Stop the reporter (final flush + trace export). Idempotent.
  void stop() {
    if (reporter_ != nullptr) reporter_->stop();
  }

  [[nodiscard]] telemetry::MetricsRegistry* registry() { return registry_; }
  [[nodiscard]] telemetry::SpanTracer* tracer() { return tracer_; }

 private:
  std::unique_ptr<telemetry::MetricsRegistry> owned_registry_;
  std::unique_ptr<telemetry::SpanTracer> owned_tracer_;
  telemetry::MetricsRegistry* registry_ = nullptr;
  telemetry::SpanTracer* tracer_ = nullptr;
  std::unique_ptr<telemetry::TelemetryReporter> reporter_;
};

}  // namespace sds::runtime
